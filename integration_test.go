package repro_test

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workloads"
)

// integrationSession builds a full-size (16-SM) session with a window
// small enough for CI.
func integrationSession(t *testing.T) *core.Session {
	t.Helper()
	s, err := core.NewSession(core.WithWindow(60_000))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIntegrationRolloverMeetsModestGoal is the end-to-end happy path:
// a compute QoS kernel with a modest goal sharing with a memory kernel.
func TestIntegrationRolloverMeetsModestGoal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := integrationSession(t)
	res, err := s.Run(context.Background(), []core.KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.5},
		{Workload: "lbm"},
	}, core.SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Kernels[0].Reached {
		t.Fatalf("sgemm at %.3f of its 50%% goal", res.Kernels[0].GoalRatio)
	}
	if res.Kernels[1].IPC <= 0 {
		t.Fatal("non-QoS kernel starved completely")
	}
}

// TestIntegrationRolloverDoesNotOvershoot checks the Figure 9 property:
// fine-grained control keeps QoS kernels near their goals so the surplus
// goes to non-QoS kernels.
func TestIntegrationRolloverDoesNotOvershoot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := integrationSession(t)
	res, err := s.Run(context.Background(), []core.KernelSpec{
		{Workload: "mri-q", GoalFrac: 0.5},
		{Workload: "stencil"},
	}, core.SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Kernels[0]
	if q.Reached && q.GoalRatio > 1.15 {
		t.Fatalf("QoS kernel at %.2fx its goal; Rollover should deliver 'just enough'", q.GoalRatio)
	}
}

// TestIntegrationRolloverTimeHurtsThroughput checks the Figure 11
// property: CPU-style prioritization loses the overlap benefit.
func TestIntegrationRolloverTimeHurtsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := integrationSession(t)
	specs := []core.KernelSpec{
		{Workload: "tpacf", GoalFrac: 0.5},
		{Workload: "stencil"},
	}
	ctx := context.Background()
	roll, err := s.Run(ctx, specs, core.SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	rtime, err := s.Run(ctx, specs, core.SchemeRolloverTime)
	if err != nil {
		t.Fatal(err)
	}
	if rtime.Kernels[1].NormThroughput > roll.Kernels[1].NormThroughput*1.2 {
		t.Fatalf("time-multiplexed variant beat overlapped execution: %.3f vs %.3f",
			rtime.Kernels[1].NormThroughput, roll.Kernels[1].NormThroughput)
	}
}

// TestIntegrationSpartGranularity checks the paper's core scalability
// argument on one concrete case: with two QoS kernels whose combined
// goals exceed what whole-SM partitioning can express, Spart must fail
// at least one goal that Rollover's per-cycle control can trade off.
func TestIntegrationTrioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := integrationSession(t)
	specs := []core.KernelSpec{
		{Workload: "mri-q", GoalFrac: 0.4},
		{Workload: "lbm", GoalFrac: 0.3},
		{Workload: "sad"},
	}
	for _, scheme := range []core.Scheme{core.SchemeRollover, core.SchemeSpart} {
		res, err := s.Run(context.Background(), specs, scheme)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for _, k := range res.Kernels {
			if k.IPC <= 0 && k.IsQoS {
				t.Fatalf("%v: QoS kernel %s made no progress", scheme, k.Name)
			}
		}
	}
}

// TestIntegrationIsolationBaseline ensures isolated IPCs of the whole
// suite stay in a sane band (catches accidental recalibration).
func TestIntegrationIsolationBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := integrationSession(t)
	peak := float64(config.Base().PeakIssuePerCycle() * 32)
	for _, name := range workloads.Names() {
		ipc, err := s.IsolatedIPC(context.Background(), core.KernelSpec{Workload: name})
		if err != nil {
			t.Fatal(err)
		}
		if ipc <= 1 || ipc >= peak {
			t.Errorf("%s isolated IPC %.1f outside (1, %.0f)", name, ipc, peak)
		}
		p, _ := workloads.ByName(name)
		// Memory-class kernels must sit well below compute-class peak.
		if p.Class.String() == "M" && ipc > 0.35*peak {
			t.Errorf("%s classified memory-bound but reaches %.1f IPC", name, ipc)
		}
	}
}

// TestIntegrationFigureDriversSmoke runs each cheap figure driver on a
// micro study to make sure every driver produces a well-formed table.
func TestIntegrationFigureDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r, err := exp.NewRunner(0, exp.WithSessionOptions(core.WithWindow(40_000)))
	if err != nil {
		t.Fatal(err)
	}
	st := exp.Study{
		Runner: r,
		Pairs:  []workloads.Pair{{QoS: "sgemm", NonQoS: "lbm"}, {QoS: "lbm", NonQoS: "sgemm"}},
		Trios:  []workloads.Trio{{A: "sgemm", B: "mri-q", C: "lbm"}},
		Goals:  []float64{0.5},
		Goals2: []float64{0.3},
	}
	drivers := map[string]func(context.Context, exp.Study) (*exp.Table, error){
		"fig5": exp.Fig5, "fig6a": exp.Fig6a, "fig6b": exp.Fig6b,
		"fig6c": exp.Fig6c, "fig7": exp.Fig7, "fig8a": exp.Fig8a,
		"fig8b": exp.Fig8b, "fig8c": exp.Fig8c, "fig9": exp.Fig9,
		"fig10": exp.Fig10, "fig11": exp.Fig11, "fig14": exp.Fig14,
	}
	for name, fn := range drivers {
		tbl, err := fn(context.Background(), st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 || tbl.ID == "" {
			t.Fatalf("%s: malformed table", name)
		}
	}
}
