package repro_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files from the current simulator output")

// goldenSpecs is the 2-kernel Rollover micro-run the golden trace pins:
// a compute QoS kernel sharing with a memory kernel. The aggressive goal
// leaves unconsumed quota each epoch, so the golden stream exercises the
// full grant → consume → carry lifecycle.
func goldenSpecs() []core.KernelSpec {
	return []core.KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.95},
		{Workload: "lbm"},
	}
}

// TestGoldenRolloverTrace byte-compares the JSONL export of a traced
// Rollover micro-run against testdata/rollover_trace.golden.jsonl. The
// simulator is deterministic, so any diff means the event stream changed:
// either intentionally (rerun with -update-golden and review the diff) or
// because an emit point moved, double-fired, or vanished.
func TestGoldenRolloverTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s, err := core.NewSession(core.WithWindow(30_000))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.DefaultRingSize)
	ctx := context.Background()
	if _, err := s.RunTraced(ctx, goldenSpecs(), core.SchemeRollover, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; grow the ring so the golden run is complete", tr.Dropped())
	}

	var buf bytes.Buffer
	if err := trace.Export(&buf, tr, trace.FormatJSONL); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "rollover_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes, %d events)", path, len(got), tr.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenRolloverTrace -update-golden` to create it)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Find the first differing line for a readable failure.
	gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("trace length changed: %d lines, golden has %d", len(gotLines), len(wantLines))
}

// TestGoldenTraceHasQuotaLifecycle asserts the acceptance property
// directly on the event stream: every epoch of the micro-run carries a
// quota grant for the QoS slot, and consume/carry events appear once the
// run is under way.
func TestGoldenTraceHasQuotaLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s, err := core.NewSession(core.WithWindow(30_000))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.DefaultRingSize)
	if _, err := s.RunTraced(context.Background(), goldenSpecs(), core.SchemeRollover, tr); err != nil {
		t.Fatal(err)
	}
	grants := map[int32]bool{}
	var consumed, carried, rolls int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindQuotaGrant:
			if ev.Slot == 0 {
				grants[ev.Epoch] = true
			}
		case trace.KindQuotaConsumed:
			consumed++
		case trace.KindQuotaCarry:
			carried++
		case trace.KindEpochRoll:
			rolls++
		}
	}
	if rolls == 0 {
		t.Fatal("no epoch rolls traced in a 3-epoch window")
	}
	if len(grants) < 2 {
		t.Fatalf("QoS slot granted quota in %d epochs, want every epoch", len(grants))
	}
	if consumed == 0 {
		t.Fatal("no quota-consumed events traced")
	}
	if carried == 0 {
		t.Fatal("no quota-carry events traced under Rollover")
	}
}
