// Datacenter consolidation: the paper's headline scenario (abstract,
// Figures 6c/8c) — three tenants share one GPU, two of them with QoS
// contracts, and fine-grained Rollover management is compared against
// spatial partitioning.
//
// Tenant A runs an online inference service (mri-q) that must keep 50% of
// its isolated throughput; tenant B runs a stream-processing pipeline
// (lbm) that must keep 40%; tenant C is a best-effort batch job (sad).
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	ctx := context.Background()
	session, err := core.NewSession(core.WithWindow(300_000))
	if err != nil {
		log.Fatal(err)
	}

	specs := []core.KernelSpec{
		{Workload: "mri-q", GoalFrac: 0.50}, // inference SLA
		{Workload: "lbm", GoalFrac: 0.40},   // streaming SLA
		{Workload: "sad"},                   // batch filler
	}

	fmt.Println("two QoS tenants + one batch tenant on a single GPU")
	fmt.Println()
	for _, scheme := range []core.Scheme{core.SchemeSpart, core.SchemeRollover} {
		res, err := session.Run(ctx, specs, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %v ===\n", scheme)
		for _, k := range res.Kernels {
			if k.IsQoS {
				fmt.Printf("  %-6s SLA %s: %8.1f IPC vs goal %8.1f (%.1f%%)\n",
					k.Name, verdict(k.Reached), k.IPC, k.GoalIPC, 100*k.GoalRatio)
			} else {
				fmt.Printf("  %-6s batch:    %8.1f IPC (%.1f%% of isolated)\n",
					k.Name, k.IPC, 100*k.NormThroughput)
			}
		}
		fmt.Printf("  both SLAs met: %v | total %.1f IPC | %.2e instr/J\n\n",
			res.AllReached, res.TotalIPC, res.Power.InstrPerJoule)
	}
	fmt.Println("the paper's claim: with multiple QoS tenants, per-cycle quota control")
	fmt.Println("meets SLAs that whole-SM partitioning cannot express (Section 4.2).")
}

func verdict(ok bool) string {
	if ok {
		return "MET   "
	}
	return "MISSED"
}
