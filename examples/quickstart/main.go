// Quickstart: share a simulated GPU between a latency-critical kernel and
// a best-effort batch kernel, and let the Rollover QoS manager guarantee
// the first kernel 80% of its isolated throughput.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A Session fixes the GPU configuration (the paper's Table 1 by
	// default) and caches isolated-throughput measurements.
	ctx := context.Background()
	session, err := core.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// sgemm is the QoS kernel: it must keep 80% of the throughput it
	// would have when owning the whole GPU. lbm is a best-effort
	// sharer that soaks up whatever is left.
	specs := []core.KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.80},
		{Workload: "lbm"},
	}

	res, err := session.Run(ctx, specs, core.SchemeRollover)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme: %v, window: %d cycles\n\n", res.Scheme, res.Cycles)
	for _, k := range res.Kernels {
		role := "best-effort"
		if k.IsQoS {
			role = "QoS"
		}
		fmt.Printf("%-6s [%-11s] IPC %8.1f (isolated %8.1f", k.Name, role, k.IPC, k.IsolatedIPC)
		if k.IsQoS {
			fmt.Printf(", goal %8.1f, reached=%v, %.1f%% of goal", k.GoalIPC, k.Reached, 100*k.GoalRatio)
		} else {
			fmt.Printf(", %.1f%% of isolated", 100*k.NormThroughput)
		}
		fmt.Println(")")
	}
	fmt.Printf("\ncombined throughput: %.1f IPC, avg power %.1f W, %.2e instr/J\n",
		res.TotalIPC, res.Power.AvgPowerW, res.Power.InstrPerJoule)
}
