// Video analytics: translate a frame-rate requirement into an
// architectural IPC goal (paper Section 3.2) and enforce it while a batch
// training job shares the GPU.
//
// The pipeline decodes 60 frames per second; each frame is processed by
// one launch of a vision kernel. The OS-resident scheduler knows the
// kernel's instruction count per frame, subtracts the PCI-E transfer time
// from the per-frame budget, and asks the QoS manager for the resulting
// IPC.
//
// Run with:
//
//	go run ./examples/videoanalytics
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	cfg := config.Base()
	ctx := context.Background()
	session, err := core.NewSession(core.WithGPU(cfg))
	if err != nil {
		log.Fatal(err)
	}

	// The vision kernel is modelled by the suite's stencil benchmark
	// (convolution-style memory behaviour). Work out its per-frame
	// instruction volume from the kernel description.
	vision, err := workloads.Kernel("stencil", 0)
	if err != nil {
		log.Fatal(err)
	}
	instrsPerFrame := vision.InstrsPerThread() *
		int64(vision.Profile.ThreadsPerTB) * int64(vision.Profile.GridTBs)

	// 60 fps leaves 16.67ms per frame end to end. Each frame ships
	// 8MB over PCI-E at 16GB/s before the kernel may start.
	const fps = 60.0
	frameBudget := 1.0 / fps
	transfer := core.PCIeTransferSeconds(8<<20, 16, 50e-6)
	kernelBudget := frameBudget - transfer

	ipcGoal, err := core.IPCGoalForDeadline(cfg, instrsPerFrame, kernelBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame budget %.2fms - %.2fms PCI-E = %.2fms kernel time\n",
		frameBudget*1e3, transfer*1e3, kernelBudget*1e3)
	fmt.Printf("%.2e instructions per frame -> IPC goal %.1f\n\n", float64(instrsPerFrame), ipcGoal)

	// Sanity-check feasibility against the isolated throughput, the
	// way a datacenter admission controller would.
	iso, err := session.IsolatedIPC(ctx, core.KernelSpec{Workload: "stencil"})
	if err != nil {
		log.Fatal(err)
	}
	if ipcGoal > iso {
		fmt.Printf("requested IPC %.1f exceeds isolated %.1f: the frame rate is infeasible on this part\n", ipcGoal, iso)
		return
	}
	fmt.Printf("goal is %.1f%% of the kernel's isolated IPC (%.1f) — admitting\n\n", 100*ipcGoal/iso, iso)

	// Co-run with a best-effort training job (sgemm) under Rollover.
	res, err := session.Run(ctx, []core.KernelSpec{
		{Workload: "stencil", GoalIPC: ipcGoal},
		{Workload: "sgemm"},
	}, core.SchemeRollover)
	if err != nil {
		log.Fatal(err)
	}
	q, batch := res.Kernels[0], res.Kernels[1]
	fmt.Printf("vision kernel: %.1f IPC vs goal %.1f -> frame deadline %s\n",
		q.IPC, q.GoalIPC, verdict(q.Reached))
	fmt.Printf("training job:  %.1f IPC (%.1f%% of what it gets alone)\n",
		batch.IPC, 100*batch.NormThroughput)
}

func verdict(ok bool) string {
	if ok {
		return "MET"
	}
	return "MISSED"
}
