// OS-level kernel scheduler integration (paper Section 3.2, "Benefit to
// OS resident kernel schedulers"): a queue of jobs with end-to-end
// deadlines arrives at a GPU node. The admission controller translates
// each deadline into an IPC goal, checks feasibility against the profile
// store, and dispatches feasible jobs alongside the resident batch kernel
// under fine-grained QoS — even jobs with a late start can be caught up,
// because the manager controls progress inside the GPU.
//
// Run with:
//
//	go run ./examples/schedulersim
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workloads"
)

// job is one queued request with an end-to-end service-time target.
type job struct {
	name     string  // workload executed by the job
	deadline float64 // seconds of pure kernel time the SLA allows
	bytes    int64   // input shipped over PCI-E
}

func main() {
	ctx := context.Background()
	session, err := core.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	cfg := session.GPUConfig()

	queue := []job{
		{name: "mri-q", deadline: 0.0016, bytes: 8 << 20},    // tight but feasible
		{name: "stencil", deadline: 0.0060, bytes: 16 << 20}, // moderate
		{name: "sgemm", deadline: 0.0040, bytes: 60 << 20},   // transfers eat the budget
		{name: "lbm", deadline: 0.0020, bytes: 8 << 20},      // needs more than isolated
	}

	for _, j := range queue {
		k, err := workloads.Kernel(j.name, 0)
		if err != nil {
			log.Fatal(err)
		}
		instrs := k.InstrsPerThread() *
			int64(k.Profile.ThreadsPerTB) * int64(k.Profile.GridTBs)

		// The scheduler is "fully aware of those factors" (Section
		// 3.2): subtract the transfer time before deriving the goal.
		budget := j.deadline - core.PCIeTransferSeconds(j.bytes, 16, 50e-6)
		if budget <= 0 {
			fmt.Printf("%-8s REJECTED: transfers alone exceed the deadline\n", j.name)
			continue
		}
		goal, err := core.IPCGoalForDeadline(cfg, instrs, budget)
		if err != nil {
			log.Fatal(err)
		}
		iso, err := session.IsolatedIPC(ctx, core.KernelSpec{Workload: j.name})
		if err != nil {
			log.Fatal(err)
		}
		if goal > iso {
			fmt.Printf("%-8s REJECTED: needs IPC %.0f, isolated peak is %.0f\n", j.name, goal, iso)
			continue
		}

		res, err := session.Run(ctx, []core.KernelSpec{
			{Workload: j.name, GoalIPC: goal},
			{Workload: "lbm"}, // the node's resident batch tenant
		}, core.SchemeRollover)
		if err != nil {
			log.Fatal(err)
		}
		q := res.Kernels[0]
		fmt.Printf("%-8s ADMITTED: goal %.0f IPC (%.0f%% of isolated) -> %s, batch kept %.0f%% throughput\n",
			j.name, goal, 100*goal/iso, verdict(q.Reached), 100*res.Kernels[1].NormThroughput)
	}
}

func verdict(ok bool) string {
	if ok {
		return "SLA met"
	}
	return "SLA missed"
}
