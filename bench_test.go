// Package repro_test holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (Section 4), each regenerating the
// figure's rows on a reduced study (subsampled pairs/trios and goals) so
// `go test -bench=.` completes on a laptop. cmd/qossim -full runs the
// complete 900/600-case sweeps.
//
// Every benchmark reports the figure's headline quantity as a custom
// metric (e.g. QoSreach/% or tput/norm) so regressions in the reproduced
// RESULTS — not just runtime — are visible in benchmark diffs.
package repro_test

import (
	"context"
	"strconv"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workloads"
)

// benchStudy returns a reduced study shared by all benchmarks. The window
// and subsampling trade fidelity for time; EXPERIMENTS.md records results
// from the larger cmd/qossim runs.
func benchStudy(b *testing.B, cfg config.GPU) exp.Study {
	b.Helper()
	r, err := exp.NewRunner(0, exp.WithSessionOptions(core.WithGPU(cfg), core.WithWindow(60_000)))
	if err != nil {
		b.Fatal(err)
	}
	st := exp.ReducedStudy(r, 30) // 3 pairs, 2 trios, 5 goals
	return st
}

var (
	baseStudyOnce sync.Once
	baseStudyVal  exp.Study
)

// baseStudy caches one runner across benchmarks so isolated-IPC
// measurements and memoized scheme sweeps are shared.
func baseStudy(b *testing.B) exp.Study {
	baseStudyOnce.Do(func() {
		r, err := exp.NewRunner(0, exp.WithSessionOptions(core.WithGPU(config.Base()), core.WithWindow(60_000)))
		if err != nil {
			panic(err)
		}
		baseStudyVal = exp.ReducedStudy(r, 24) // 4 pairs, 3 trios, 5 goals
	})
	st := baseStudyVal
	return st
}

// runFigure runs a figure driver b.N times and reports a headline metric
// extracted from the resulting table.
func runFigure(b *testing.B, st exp.Study, fn func(context.Context, exp.Study) (*exp.Table, error),
	metricName string, metric func(*exp.Table) float64) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		t, err := fn(ctx, st)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("figure produced no rows")
		}
		if metric != nil {
			b.ReportMetric(metric(t), metricName)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// lastCell parses the last row's column c as a float (percent suffixes
// stripped).
func lastCell(t *exp.Table, c int) float64 {
	row := t.Rows[len(t.Rows)-1]
	cell := row[c]
	pct := false
	if n := len(cell); n > 0 && cell[n-1] == '%' {
		cell = cell[:n-1]
		pct = true
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return -1
	}
	if pct {
		v /= 100
	}
	return v
}

func BenchmarkTable01Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Table1(config.Base())
		if len(t.Rows) < 10 {
			b.Fatal("Table 1 incomplete")
		}
	}
}

func BenchmarkFig05NaiveHistoryMisses(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig5, "overshoot/frac", nil)
}

func BenchmarkFig06aPairQoSReach(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig6a, "rollover-reach/frac",
		func(t *exp.Table) float64 { return lastCell(t, 4) })
}

func BenchmarkFig06bTrioQoSReach(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig6b, "rollover-reach/frac",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig06cTrioTwoQoS(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig6c, "rollover-reach/frac",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig07PerKernel(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig7, "", nil)
}

func BenchmarkFig08aPairNonQoSTput(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig8a, "rollover-tput/norm",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig08bTrioNonQoSTput(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig8b, "rollover-tput/norm",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig08cTrioTwoQoSTput(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig8c, "rollover-tput/norm",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig09Overshoot(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig9, "rollover-overshoot/x",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig10RolloverTime(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig10, "rt-reach/frac",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig11RolloverTimeTput(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig11, "rt-tput/norm",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig12ScaleSMs(b *testing.B) {
	runFigure(b, benchStudy(b, config.Scale56()), exp.Fig12, "rollover-reach/frac",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig13ScaleTput(b *testing.B) {
	runFigure(b, benchStudy(b, config.Scale56()), exp.Fig13, "rollover-tput/norm",
		func(t *exp.Table) float64 { return lastCell(t, 2) })
}

func BenchmarkFig14PowerEff(b *testing.B) {
	runFigure(b, baseStudy(b), exp.Fig14, "improvement/frac",
		func(t *exp.Table) float64 { return lastCell(t, 1) })
}

func BenchmarkAblateHistory(b *testing.B) {
	runFigure(b, baseStudy(b), exp.AblateHistory, "on-reach/frac",
		func(t *exp.Table) float64 { return lastCell(t, 1) })
}

func BenchmarkAblateStatic(b *testing.B) {
	// The static-management ablation needs M+M pairs; the shared study
	// subsample may exclude them, so select M+M pairs explicitly.
	st := baseStudy(b)
	st.Pairs = nil
	for _, p := range exp.FullStudy(st.Runner).Pairs {
		if cls, err := workloads.PairClass(p.QoS, p.NonQoS); err == nil && cls == "M+M" {
			st.Pairs = append(st.Pairs, p)
			if len(st.Pairs) == 3 {
				break
			}
		}
	}
	runFigure(b, st, exp.AblateStatic, "", nil)
}

func BenchmarkAblatePreemption(b *testing.B) {
	runFigure(b, baseStudy(b), exp.AblatePreemption, "", nil)
}

func BenchmarkAblateEpochLength(b *testing.B) {
	st := baseStudy(b)
	runFigure(b, st, func(ctx context.Context, s exp.Study) (*exp.Table, error) {
		return exp.AblateEpochLength(ctx, s, []int64{5_000, 10_000, 20_000})
	}, "", nil)
}

func BenchmarkAblateNonQoSInit(b *testing.B) {
	st := baseStudy(b)
	runFigure(b, st, func(ctx context.Context, s exp.Study) (*exp.Table, error) {
		return exp.AblateNonQoSInit(ctx, s, []float64{1, 32})
	}, "", nil)
}

// BenchmarkSimulatorCycles measures raw simulator throughput: cycles
// simulated per second for a representative co-run, independent of the
// figure harness. Together with the sharded variant below it feeds the
// committed BENCH_core.json baseline that `make bench-gate` enforces
// (see internal/benchgate); the cycles/s metric and -benchmem allocs/op
// are the gated quantities.
func BenchmarkSimulatorCycles(b *testing.B) {
	benchSimulatorCycles(b, 1)
}

// BenchmarkSimulatorCyclesSharded is the same co-run stepped at
// -shards=4. Results are bit-identical to serial; only wall clock
// differs, so the benchmark doubles as a throughput check on the sharded
// stepper.
func BenchmarkSimulatorCyclesSharded(b *testing.B) {
	benchSimulatorCycles(b, 4)
}

func benchSimulatorCycles(b *testing.B, shards int) {
	ctx := context.Background()
	s, err := core.NewSession(core.WithWindow(50_000), core.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	specs := []core.KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.7},
		{Workload: "lbm"},
	}
	// Warm the isolated-IPC cache outside the timed region.
	if _, err := s.IsolatedIPC(ctx, specs[0]); err != nil {
		b.Fatal(err)
	}
	if _, err := s.IsolatedIPC(ctx, specs[1]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(ctx, specs, core.SchemeRollover); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "cycles/s")
}
