package workloads

import "repro/internal/kern"

// Microbenchmarks: synthetic corner-case kernels used to calibrate the
// simulator and to stress specific subsystems in tests. They are not part
// of the paper's Parboil suite (Pairs/Trios never include them) but are
// available to Kernel/ByName-style lookups via the Micro* constructors.

// MicroALU is a pure-compute kernel: no global memory, no barriers. Its
// isolated IPC calibrates the issue/latency model (it should approach the
// issue-bound peak for its TLP).
func MicroALU() kern.Profile {
	return kern.Profile{
		Name: "micro-alu", Class: kern.ClassCompute,
		BodyInstrs: 32, Iterations: 200,
		DepDensity:     0.25,
		CoalesceDegree: 1, ReuseFrac: 0,
		HotBytes: 1 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 128, RegsPerThread: 24, GridTBs: 512,
	}
}

// MicroStream is a bandwidth-saturating streamer: perfectly coalesced
// loads and stores over a huge footprint with no reuse. Its isolated
// lines/cycle calibrates the DRAM bandwidth model.
func MicroStream() kern.Profile {
	return kern.Profile{
		Name: "micro-stream", Class: kern.ClassMemory,
		BodyInstrs: 16, Iterations: 300,
		FracGlobalMem: 0.5, FracStore: 0.5,
		DepDensity:     0.1,
		CoalesceDegree: 1, ReuseFrac: 0,
		HotBytes: 1 << 10, FootprintBytes: 512 << 20,
		ThreadsPerTB: 128, RegsPerThread: 16, GridTBs: 512,
	}
}

// MicroPChase is a latency-bound pointer chase: every load is scattered
// (worst-case coalescing) and the next instruction depends on it. Its
// isolated IPC calibrates the memory round-trip latency.
func MicroPChase() kern.Profile {
	return kern.Profile{
		Name: "micro-pchase", Class: kern.ClassMemory,
		BodyInstrs: 8, Iterations: 400,
		FracGlobalMem: 0.4, FracStore: 0,
		DepDensity:     0.95,
		CoalesceDegree: 16, ReuseFrac: 0,
		HotBytes: 1 << 10, FootprintBytes: 256 << 20,
		ThreadsPerTB: 64, RegsPerThread: 12, GridTBs: 512,
	}
}

// MicroBarrier is a synchronization-heavy kernel: a barrier every few
// instructions. It calibrates barrier cost and exposes convoy effects.
func MicroBarrier() kern.Profile {
	return kern.Profile{
		Name: "micro-barrier", Class: kern.ClassCompute,
		BodyInstrs: 24, Iterations: 250,
		FracShared:     0.2,
		DepDensity:     0.3,
		CoalesceDegree: 1, ReuseFrac: 0,
		HotBytes: 1 << 10, FootprintBytes: 1 << 20,
		BarrierEvery: 6,
		ThreadsPerTB: 256, RegsPerThread: 20, SharedMemPerTB: 4 << 10, GridTBs: 256,
	}
}

// Micro returns all microbenchmark profiles.
func Micro() []kern.Profile {
	return []kern.Profile{MicroALU(), MicroStream(), MicroPChase(), MicroBarrier()}
}
