package workloads

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func microIPC(t *testing.T, p kern.Profile) (float64, *gpu.GPU) {
	t.Helper()
	k, err := kern.Build(0, p, Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Base()
	cfg.NumSMs = 4
	g, err := gpu.New(cfg, []*kern.Kernel{k})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(40_000)
	return g.IPC(0), g
}

func TestMicroProfilesValid(t *testing.T) {
	for _, p := range Micro() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestMicroALUApproachesIssueBound(t *testing.T) {
	ipc, g := microIPC(t, MicroALU())
	peak := float64(g.Cfg.PeakIssuePerCycle() * g.Cfg.WarpSize)
	if ipc < 0.5*peak {
		t.Fatalf("pure-ALU kernel at %.0f IPC, want > half of peak %.0f", ipc, peak)
	}
}

func TestMicroStreamSaturatesBandwidth(t *testing.T) {
	// Use the full 16-SM part: with few SMs the per-SM injection
	// credits bind before DRAM bandwidth does.
	k, err := kern.Build(0, MicroStream(), Seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.New(config.Base(), []*kern.Kernel{k})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(40_000)
	lines := float64(g.Stats[0].MemTxns) / float64(g.Now)
	// 4 MCs accepting ~1 line/cycle each (half that effective for
	// DRAM-bound streams): the streamer must keep them busy.
	if lines < 1.0 {
		t.Fatalf("streamer injects only %.2f lines/cycle", lines)
	}
}

func TestMicroPChaseIsLatencyBound(t *testing.T) {
	chase, _ := microIPC(t, MicroPChase())
	alu, _ := microIPC(t, MicroALU())
	if chase > alu/10 {
		t.Fatalf("pointer chase at %.0f IPC vs ALU %.0f; should be latency-crippled", chase, alu)
	}
	if chase <= 0 {
		t.Fatal("pointer chase made no progress")
	}
}

func TestMicroBarrierCostsThroughput(t *testing.T) {
	// With abundant TLP, other thread blocks hide barrier stalls (that
	// is the point of latency hiding); expose the cost by running a
	// single TB per SM.
	with := MicroBarrier()
	with.GridTBs = 4
	bar, _ := microIPC(t, with)
	free := with
	free.BarrierEvery = 0
	noBar, _ := microIPC(t, free)
	if bar >= noBar {
		t.Fatalf("barriers free even at 1 TB/SM: %.0f IPC with vs %.0f without", bar, noBar)
	}
}

func TestMicroNotInSuite(t *testing.T) {
	for _, p := range Micro() {
		if _, err := ByName(p.Name); err == nil {
			t.Errorf("%s leaked into the Parboil suite", p.Name)
		}
	}
}
