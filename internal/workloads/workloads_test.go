package workloads

import (
	"testing"

	"repro/internal/kern"
)

func TestSuiteSize(t *testing.T) {
	if got := len(Profiles()); got != 10 {
		t.Fatalf("suite has %d benchmarks, want 10 (Parboil minus bfs)", got)
	}
}

func TestAllProfilesBuild(t *testing.T) {
	for i, p := range Profiles() {
		if _, err := kern.Build(i, p, Seed); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate benchmark name %q", n)
		}
		seen[n] = true
	}
}

func TestClassSplit(t *testing.T) {
	compute, memory := 0, 0
	for _, p := range Profiles() {
		switch p.Class {
		case kern.ClassCompute:
			compute++
		case kern.ClassMemory:
			memory++
		}
	}
	if compute != 5 || memory != 5 {
		t.Fatalf("class split C=%d M=%d, want 5/5", compute, memory)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != kern.ClassCompute {
		t.Error("sgemm should be compute-intensive")
	}
	if _, err := ByName("bfs"); err == nil {
		t.Error("bfs should be absent (excluded by the paper)")
	}
}

func TestKernelBuildsWithSlotID(t *testing.T) {
	k0, err := Kernel("lbm", 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := Kernel("lbm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if k0.AddrBase() == k1.AddrBase() {
		t.Fatal("same workload in different slots must get disjoint address spaces")
	}
}

func TestPairsEnumeration(t *testing.T) {
	pairs := Pairs()
	if len(pairs) != 90 {
		t.Fatalf("%d pairs, want 90 (paper Section 4.1)", len(pairs))
	}
	seen := make(map[Pair]bool)
	for _, p := range pairs {
		if p.QoS == p.NonQoS {
			t.Fatalf("pair %v co-runs a kernel with itself", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestTriosEnumeration(t *testing.T) {
	trios := Trios()
	if len(trios) != 60 {
		t.Fatalf("%d trios, want 60 (paper Section 4.1)", len(trios))
	}
	seen := make(map[Trio]bool)
	names := make(map[string]bool)
	for _, tr := range trios {
		if tr.A == tr.B || tr.B == tr.C || tr.A == tr.C {
			t.Fatalf("trio %v has duplicate members", tr)
		}
		if seen[tr] {
			t.Fatalf("duplicate trio %v", tr)
		}
		seen[tr] = true
		names[tr.A], names[tr.B], names[tr.C] = true, true, true
	}
	if len(names) != 10 {
		t.Errorf("trios only cover %d of 10 benchmarks", len(names))
	}
}

func TestPairClass(t *testing.T) {
	cases := []struct {
		q, n, want string
	}{
		{"sgemm", "cutcp", "C+C"},
		{"sgemm", "lbm", "C+M"},
		{"lbm", "sgemm", "C+M"},
		{"lbm", "spmv", "M+M"},
	}
	for _, c := range cases {
		got, err := PairClass(c.q, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("PairClass(%s,%s) = %s, want %s", c.q, c.n, got, c.want)
		}
	}
	if _, err := PairClass("nope", "sgemm"); err == nil {
		t.Error("PairClass accepted unknown benchmark")
	}
}

func TestHistoIsShortRunning(t *testing.T) {
	histo, _ := ByName("histo")
	for _, p := range Profiles() {
		if p.Name == "histo" {
			continue
		}
		if int64(p.GridTBs)*int64(p.Iterations)*int64(p.BodyInstrs) <
			int64(histo.GridTBs)*int64(histo.Iterations)*int64(histo.BodyInstrs) {
			t.Errorf("%s has less total work than histo; histo must be the short benchmark", p.Name)
		}
	}
}
