// Package workloads defines the benchmark suite used in the evaluation.
//
// The paper evaluates 10 kernels from Parboil (bfs excluded as too small).
// We cannot run the real Parboil binaries — there is no PTX front end —
// so each benchmark is modelled as a kern.Profile whose instruction mix,
// memory behaviour and geometry match the benchmark's published character:
// cutcp/mri-q/sgemm/sad/tpacf are compute-intensive, and
// histo/lbm/mri-gridding/spmv/stencil are memory-intensive. histo is
// deliberately short-running (the paper notes neither scheme handles its
// short kernels well, Figure 7).
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/kern"
)

// Seed is the deterministic seed used to expand every profile.
const Seed = 0x5eed_15ca_2017

// Names lists the benchmark names in the paper's figure order.
func Names() []string {
	names := make([]string, len(table))
	for i, p := range table {
		names[i] = p.Name
	}
	return names
}

var table = []kern.Profile{
	{
		Name: "cutcp", Class: kern.ClassCompute,
		BodyInstrs: 48, Iterations: 160,
		FracGlobalMem: 0.03, FracStore: 0.15, FracShared: 0.13, FracSFU: 0.08,
		DepDensity: 0.42, DivergenceFrac: 0.05,
		CoalesceDegree: 1.3, ReuseFrac: 0.80,
		HotBytes: 20 << 10, FootprintBytes: 96 << 20,
		BarrierEvery: 24,
		ThreadsPerTB: 128, RegsPerThread: 38, SharedMemPerTB: 4 << 10, GridTBs: 640,
	},
	{
		Name: "histo", Class: kern.ClassMemory,
		BodyInstrs: 26, Iterations: 28,
		FracGlobalMem: 0.22, FracStore: 0.45, FracShared: 0.12, FracSFU: 0.00,
		DepDensity: 0.35, DivergenceFrac: 0.12,
		CoalesceDegree: 3.0, ReuseFrac: 0.35,
		HotBytes: 256 << 10, FootprintBytes: 128 << 20,
		BarrierEvery: 0,
		ThreadsPerTB: 256, RegsPerThread: 22, SharedMemPerTB: 8 << 10, GridTBs: 88,
	},
	{
		Name: "lbm", Class: kern.ClassMemory,
		BodyInstrs: 64, Iterations: 110,
		FracGlobalMem: 0.28, FracStore: 0.40, FracShared: 0.00, FracSFU: 0.02,
		DepDensity: 0.30, DivergenceFrac: 0.02,
		CoalesceDegree: 2.0, ReuseFrac: 0.06,
		HotBytes: 128 << 10, FootprintBytes: 384 << 20,
		BarrierEvery: 0,
		PhasePeriod:  24, PhaseMemBoost: 0.12,
		ThreadsPerTB: 128, RegsPerThread: 46, SharedMemPerTB: 0, GridTBs: 720,
	},
	{
		Name: "mri-gridding", Class: kern.ClassMemory,
		BodyInstrs: 40, Iterations: 140,
		FracGlobalMem: 0.22, FracStore: 0.30, FracShared: 0.06, FracSFU: 0.06,
		DepDensity: 0.38, DivergenceFrac: 0.18,
		CoalesceDegree: 4.0, ReuseFrac: 0.25,
		HotBytes: 256 << 10, FootprintBytes: 192 << 20,
		BarrierEvery: 0,
		PhasePeriod:  32, PhaseMemBoost: 0.10,
		ThreadsPerTB: 256, RegsPerThread: 30, SharedMemPerTB: 2 << 10, GridTBs: 448,
	},
	{
		Name: "mri-q", Class: kern.ClassCompute,
		BodyInstrs: 44, Iterations: 170,
		FracGlobalMem: 0.03, FracStore: 0.10, FracShared: 0.06, FracSFU: 0.16,
		DepDensity: 0.48, DivergenceFrac: 0.01,
		CoalesceDegree: 1.1, ReuseFrac: 0.85,
		HotBytes: 16 << 10, FootprintBytes: 48 << 20,
		BarrierEvery: 0,
		ThreadsPerTB: 256, RegsPerThread: 26, SharedMemPerTB: 0, GridTBs: 416,
	},
	{
		Name: "sad", Class: kern.ClassCompute,
		BodyInstrs: 36, Iterations: 130,
		FracGlobalMem: 0.06, FracStore: 0.20, FracShared: 0.14, FracSFU: 0.00,
		DepDensity: 0.34, DivergenceFrac: 0.08,
		CoalesceDegree: 1.8, ReuseFrac: 0.65,
		HotBytes: 24 << 10, FootprintBytes: 64 << 20,
		BarrierEvery: 18,
		ThreadsPerTB: 64, RegsPerThread: 32, SharedMemPerTB: 2 << 10, GridTBs: 1024,
	},
	{
		Name: "sgemm", Class: kern.ClassCompute,
		BodyInstrs: 56, Iterations: 150,
		FracGlobalMem: 0.04, FracStore: 0.08, FracShared: 0.25, FracSFU: 0.00,
		DepDensity: 0.30, DivergenceFrac: 0.00,
		CoalesceDegree: 1.0, ReuseFrac: 0.90,
		HotBytes: 24 << 10, FootprintBytes: 64 << 20,
		BarrierEvery: 14,
		ThreadsPerTB: 128, RegsPerThread: 48, SharedMemPerTB: 8 << 10, GridTBs: 576,
	},
	{
		Name: "spmv", Class: kern.ClassMemory,
		BodyInstrs: 30, Iterations: 120,
		FracGlobalMem: 0.28, FracStore: 0.12, FracShared: 0.00, FracSFU: 0.00,
		DepDensity: 0.46, DivergenceFrac: 0.22,
		CoalesceDegree: 5.0, ReuseFrac: 0.30,
		HotBytes: 384 << 10, FootprintBytes: 256 << 20,
		BarrierEvery: 0,
		ThreadsPerTB: 192, RegsPerThread: 20, SharedMemPerTB: 0, GridTBs: 576,
	},
	{
		Name: "stencil", Class: kern.ClassMemory,
		BodyInstrs: 42, Iterations: 125,
		FracGlobalMem: 0.24, FracStore: 0.30, FracShared: 0.10, FracSFU: 0.00,
		DepDensity: 0.33, DivergenceFrac: 0.03,
		CoalesceDegree: 1.6, ReuseFrac: 0.45,
		HotBytes: 512 << 10, FootprintBytes: 320 << 20,
		BarrierEvery: 20,
		PhasePeriod:  28, PhaseMemBoost: 0.10,
		ThreadsPerTB: 128, RegsPerThread: 28, SharedMemPerTB: 4 << 10, GridTBs: 640,
	},
	{
		Name: "tpacf", Class: kern.ClassCompute,
		BodyInstrs: 50, Iterations: 145,
		FracGlobalMem: 0.04, FracStore: 0.05, FracShared: 0.18, FracSFU: 0.10,
		DepDensity: 0.44, DivergenceFrac: 0.15,
		CoalesceDegree: 1.4, ReuseFrac: 0.75,
		HotBytes: 20 << 10, FootprintBytes: 32 << 20,
		BarrierEvery: 25,
		ThreadsPerTB: 256, RegsPerThread: 34, SharedMemPerTB: 4 << 10, GridTBs: 384,
	},
}

// Profiles returns a copy of the suite's profiles in figure order.
func Profiles() []kern.Profile {
	out := make([]kern.Profile, len(table))
	copy(out, table)
	return out
}

// ByName returns the profile with the given name, searching the paper
// suite first and then the open-world set (openworld.go).
func ByName(name string) (kern.Profile, error) {
	for _, p := range table {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range openWorld {
		if p.Name == name {
			return p, nil
		}
	}
	return kern.Profile{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Kernel builds the kernel for the named benchmark with the given runtime
// kernel ID (IDs separate address spaces of co-running kernels).
func Kernel(name string, id int) (*kern.Kernel, error) {
	p, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return kern.Build(id, p, Seed)
}

// Pair is one evaluation case: a QoS kernel co-running with a non-QoS one.
type Pair struct {
	QoS    string
	NonQoS string
}

// Pairs enumerates the paper's 90 ordered pairs (every QoS benchmark with
// every distinct non-QoS benchmark).
func Pairs() []Pair {
	var out []Pair
	for _, q := range table {
		for _, n := range table {
			if q.Name == n.Name {
				continue
			}
			out = append(out, Pair{QoS: q.Name, NonQoS: n.Name})
		}
	}
	return out
}

// Trio is one three-kernel evaluation case. Members are benchmark names;
// the harness decides which of them carry QoS goals (the first one for
// 1-QoS trios, the first two for 2-QoS trios, Section 4.1).
type Trio struct {
	A, B, C string
}

// Trios enumerates 60 deterministic trios. The paper tests "60 trios of
// all possible combinations" out of the C(10,3)=120 unordered triples; we
// take every second triple of the lexicographic enumeration, which keeps
// every benchmark represented in every role.
func Trios() []Trio {
	names := Names()
	sort.Strings(names)
	var all []Trio
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			for k := j + 1; k < len(names); k++ {
				all = append(all, Trio{A: names[i], B: names[j], C: names[k]})
			}
		}
	}
	out := make([]Trio, 0, 60)
	for i := 0; i < len(all) && len(out) < 60; i += 2 {
		out = append(out, all[i])
	}
	return out
}

// PairClass returns the pairing class label. For the paper suite these
// are its figure labels "C+C", "C+M" and "M+M" (the C/M order is merged
// regardless of which kernel carries the goal); pairs involving an
// open-world class keep the QoS kernel's class first ("I+M", "R+C", …)
// since those grids are not merged in any paper figure.
func PairClass(qos, nonqos string) (string, error) {
	q, err := ByName(qos)
	if err != nil {
		return "", err
	}
	n, err := ByName(nonqos)
	if err != nil {
		return "", err
	}
	paper := func(c kern.Class) bool { return c == kern.ClassCompute || c == kern.ClassMemory }
	if !paper(q.Class) || !paper(n.Class) {
		return q.Class.String() + "+" + n.Class.String(), nil
	}
	switch {
	case q.Class == kern.ClassCompute && n.Class == kern.ClassCompute:
		return "C+C", nil
	case q.Class == kern.ClassMemory && n.Class == kern.ClassMemory:
		return "M+M", nil
	default:
		return "C+M", nil
	}
}
