package workloads

import "repro/internal/kern"

// Open-world workload classes: behavioural kernels beyond the paper's
// Parboil suite, modelling the two traffic shapes ROADMAP's
// open-world item names — serving-style LLM inference (latency-SLO'd,
// memory-bandwidth-bound, phase-bursty) and real-time periodic
// processing (hard per-activation deadlines, in the spirit of
// contention-aware real-time GPU partitioning). They live outside the
// paper `table` on purpose: Names/Profiles/Pairs/Trios still enumerate
// exactly the paper's suite (golden traces and figure drivers are
// untouched), while ByName/Kernel — and therefore qosd, the fleet and
// the stream driver — resolve them like any other benchmark.

var openWorld = []kern.Profile{
	{
		// infer models an LLM decode step: weight streaming dominates
		// (high global-mem fraction, near-ideal coalescing, almost no
		// reuse outside the hot KV region), softmax/activation work shows
		// as SFU, and attention/FFN alternation produces pronounced
		// memory-boost phases — the bursty epoch-to-epoch IPC that makes
		// latency SLOs hard under sharing.
		Name: "infer", Class: kern.ClassInfer,
		BodyInstrs: 40, Iterations: 120,
		FracGlobalMem: 0.30, FracStore: 0.10, FracShared: 0.06, FracSFU: 0.04,
		DepDensity: 0.40, DivergenceFrac: 0.04,
		CoalesceDegree: 1.2, ReuseFrac: 0.15,
		HotBytes: 1 << 20, FootprintBytes: 448 << 20,
		BarrierEvery: 0,
		PhasePeriod:  16, PhaseMemBoost: 0.18,
		ThreadsPerTB: 128, RegsPerThread: 40, SharedMemPerTB: 8 << 10, GridTBs: 512,
	},
	{
		// rtdet models a real-time detection/control activation: short,
		// tiled convolution-style work (frequent barriers, high shared-mem
		// traffic, good reuse) with a moderate streaming component. Its
		// per-activation deadline comes from a periodic goal, not the
		// profile.
		Name: "rtdet", Class: kern.ClassRT,
		BodyInstrs: 36, Iterations: 90,
		FracGlobalMem: 0.12, FracStore: 0.25, FracShared: 0.16, FracSFU: 0.06,
		DepDensity: 0.36, DivergenceFrac: 0.06,
		CoalesceDegree: 1.5, ReuseFrac: 0.60,
		HotBytes: 96 << 10, FootprintBytes: 48 << 20,
		BarrierEvery: 18,
		ThreadsPerTB: 128, RegsPerThread: 32, SharedMemPerTB: 6 << 10, GridTBs: 288,
	},
}

// OpenWorld returns a copy of the open-world profiles.
func OpenWorld() []kern.Profile {
	out := make([]kern.Profile, len(openWorld))
	copy(out, openWorld)
	return out
}

// OpenWorldNames lists the open-world benchmark names.
func OpenWorldNames() []string {
	names := make([]string, len(openWorld))
	for i, p := range openWorld {
		names[i] = p.Name
	}
	return names
}

// OpenWorldPairs enumerates the open-world pair grid: each open-world
// kernel as the QoS kernel against every paper benchmark. It is the
// sweep grid of the `sweep -suite openworld` study, deliberately
// separate from Pairs() so the paper's 90-pair enumeration (and every
// golden artifact keyed to it) is unchanged.
func OpenWorldPairs() []Pair {
	var out []Pair
	for _, q := range openWorld {
		for _, n := range table {
			out = append(out, Pair{QoS: q.Name, NonQoS: n.Name})
		}
	}
	return out
}
