// Package benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on it. Two kinds of benchmark are gated:
//
//   - throughput ("cycles/s" or "decisions/s"): a run whose simulator
//     (or decision-path) throughput drops more than the tolerance below
//     the baseline, or whose steady-state allocations rise above it,
//     fails;
//   - latency ("p50-ns", "speedup-x"): a run whose median latency rises
//     above the baseline ceiling, or whose speedup over its in-benchmark
//     reference falls below the absolute MinSpeedupX floor, fails;
//   - overhead ("overhead-pct"): a run whose relative slowdown over its
//     in-benchmark reference path exceeds the absolute MaxOverheadPct
//     ceiling fails (e.g. the distributed-sweep coordination tax over an
//     in-process run of the same grid).
//
// Baselines are recorded on the slowest reference machine so faster CI
// runners clear throughput floors and latency ceilings with margin;
// allocs/op, speedup-x and overhead-pct are machine-independent (ratios
// of same-machine measurements) and gated tightly.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the baseline file format. v4 added ops-throughput
// (decisions/s) entries; v3 added overhead; v2 added latency; older
// files still load.
const Schema = "benchgate/v4"

// Prior formats, accepted on load.
const (
	schemaV1 = "benchgate/v1" // throughput only
	schemaV2 = "benchgate/v2" // + latency entries
	schemaV3 = "benchgate/v3" // + overhead entries
)

// Entry kinds.
const (
	// KindThroughput gates a cycles/s floor and an allocs/op ceiling.
	KindThroughput = "throughput"
	// KindLatency gates a p50-ns ceiling and a speedup-x floor.
	KindLatency = "latency"
	// KindOverhead gates an overhead-pct ceiling (MaxOverheadPct).
	KindOverhead = "overhead"
)

// Entry records one benchmark's gated metrics.
type Entry struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// -GOMAXPROCS suffix stripped (e.g. "SimulatorCycles").
	Name string `json:"name"`
	// Kind is KindThroughput or KindLatency (empty means throughput, for
	// v1 files).
	Kind string `json:"kind,omitempty"`
	// CyclesPerSec is the simulator-throughput custom metric
	// (throughput entries).
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// OpsPerSec is the decision-throughput custom metric ("decisions/s")
	// of throughput entries that measure sustained request streams (the
	// stream-admission gate) rather than simulated cycles. A throughput
	// entry carries exactly one of CyclesPerSec and OpsPerSec.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// AllocsPerOp comes from -benchmem and is machine-independent. It is
	// gated for throughput entries and informational for latency ones.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// NsPerOp is informational; it is not gated (wall time tracks
	// machine speed, which cycles_per_sec already captures).
	NsPerOp float64 `json:"ns_per_op"`
	// P50Ns is the median-latency custom metric (latency entries).
	P50Ns float64 `json:"p50_ns,omitempty"`
	// SpeedupX is the latency improvement over the benchmark's own
	// in-run reference path (latency entries); being a ratio of two
	// same-machine measurements it is machine-independent.
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// OverheadPct is the percentage slowdown over the benchmark's own
	// in-run reference path (overhead entries) — machine-independent for
	// the same reason SpeedupX is.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// File is the committed baseline (BENCH_core.json).
type File struct {
	Schema string `json:"schema"`
	// Go records the toolchain that produced the baseline, for context
	// when reading diffs; it is not compared.
	Go string `json:"go"`
	// WindowCycles is the simulated window per benchmark op.
	WindowCycles int64   `json:"window_cycles"`
	Benchmarks   []Entry `json:"benchmarks"`
}

// Parse extracts gated entries from `go test -bench -benchmem` text
// output. A benchmark reporting cycles/s becomes a throughput entry; one
// reporting p50-ns becomes a latency entry. Benchmarks reporting neither
// are ignored: the gate covers the core benchmarks, not figure drivers.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		e := Entry{Name: normalize(f[0]), AllocsPerOp: -1}
		hasCycles, hasOps, hasP50, hasOverhead := false, false, false, false
		// After the name and iteration count the line is value/unit
		// pairs: `1234 ns/op  330000 cycles/s  2024 allocs/op`.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", f[i], line)
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "cycles/s":
				e.CyclesPerSec = v
				hasCycles = true
			case "decisions/s":
				e.OpsPerSec = v
				hasOps = true
			case "p50-ns":
				e.P50Ns = v
				hasP50 = true
			case "speedup-x":
				e.SpeedupX = v
			case "overhead-pct":
				e.OverheadPct = v
				hasOverhead = true
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			}
		}
		kinds := 0
		for _, h := range []bool{hasCycles, hasOps, hasP50, hasOverhead} {
			if h {
				kinds++
			}
		}
		if kinds > 1 {
			return nil, fmt.Errorf("benchgate: %s reports more than one of cycles/s, decisions/s, p50-ns and overhead-pct", e.Name)
		}
		switch {
		case hasCycles, hasOps:
			if e.AllocsPerOp < 0 {
				return nil, fmt.Errorf("benchgate: %s reports no allocs/op; run with -benchmem", e.Name)
			}
			e.Kind = KindThroughput
		case hasP50:
			e.Kind = KindLatency
			if e.AllocsPerOp < 0 {
				e.AllocsPerOp = 0
			}
		case hasOverhead:
			e.Kind = KindOverhead
			if e.AllocsPerOp < 0 {
				e.AllocsPerOp = 0
			}
		default:
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// normalize strips the Benchmark prefix and the -GOMAXPROCS suffix.
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// Load reads a baseline file.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if f.Schema != Schema && f.Schema != schemaV1 && f.Schema != schemaV2 && f.Schema != schemaV3 {
		return nil, fmt.Errorf("benchgate: %s: schema %q, want %q", path, f.Schema, Schema)
	}
	// v1 files predate entry kinds; everything they gate is throughput.
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Kind == "" {
			f.Benchmarks[i].Kind = KindThroughput
		}
	}
	return &f, nil
}

// Write writes a baseline file with stable formatting (one benchmark per
// line keeps diffs reviewable).
func (f *File) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// AllocSlackFrac absorbs run-to-run allocation jitter from one-time
// growth (heap resizes of the wake queues, pool warm-up) that -benchtime
// cannot fully amortize. Real hot-path regressions allocate per cycle and
// blow far past 5%.
const AllocSlackFrac = 0.05

// MinSpeedupX is the absolute floor on every latency benchmark's
// speedup-x metric, independent of the committed baseline: the fast
// path must stay at least this much faster than its in-benchmark
// reference (the issue's ≥50× admission fast-path requirement).
const MinSpeedupX = 50.0

// MaxOverheadPct is the absolute ceiling on every overhead benchmark's
// overhead-pct metric, independent of the committed baseline: the
// distributed sweep path must stay within 5% of the in-process runner's
// cases/s on the same grid.
const MaxOverheadPct = 5.0

// Compare gates cur against base: each baseline benchmark must be
// present and within limits. tolFrac is the allowed fractional
// throughput drop for throughput entries (e.g. 0.10); latTolFrac is the
// allowed fractional median-latency rise for latency entries (e.g.
// 0.50 — latency ceilings carry more slack than throughput floors
// because a p50 in nanoseconds is noisier than a cycles/s mean). The
// returned strings are human-readable violations; an empty slice means
// the gate passes.
func Compare(base, cur *File, tolFrac, latTolFrac float64) []string {
	var bad []string
	curByName := make(map[string]Entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		curByName[e.Name] = e
	}
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if b.Kind == KindOverhead {
			if c.OverheadPct > MaxOverheadPct {
				bad = append(bad, fmt.Sprintf(
					"%s: overhead %.1f%% exceeds the %.0f%% ceiling",
					b.Name, c.OverheadPct, MaxOverheadPct))
			}
			continue
		}
		if b.Kind == KindLatency {
			if ceil := b.P50Ns * (1 + latTolFrac); c.P50Ns > ceil {
				bad = append(bad, fmt.Sprintf(
					"%s: p50 %.0f ns is %.1f%% above baseline %.0f (ceiling %.0f)",
					b.Name, c.P50Ns, 100*(c.P50Ns/b.P50Ns-1), b.P50Ns, ceil))
			}
			if c.SpeedupX < MinSpeedupX {
				bad = append(bad, fmt.Sprintf(
					"%s: speedup %.1fx is below the required %.0fx floor",
					b.Name, c.SpeedupX, MinSpeedupX))
			}
			continue
		}
		if floor := b.CyclesPerSec * (1 - tolFrac); b.CyclesPerSec > 0 && c.CyclesPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"%s: throughput %.0f cycles/s is %.1f%% below baseline %.0f (floor %.0f)",
				b.Name, c.CyclesPerSec,
				100*(1-c.CyclesPerSec/b.CyclesPerSec), b.CyclesPerSec, floor))
		}
		if floor := b.OpsPerSec * (1 - tolFrac); b.OpsPerSec > 0 && c.OpsPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"%s: throughput %.0f decisions/s is %.1f%% below baseline %.0f (floor %.0f)",
				b.Name, c.OpsPerSec,
				100*(1-c.OpsPerSec/b.OpsPerSec), b.OpsPerSec, floor))
		}
		if ceil := int64(float64(b.AllocsPerOp) * (1 + AllocSlackFrac)); c.AllocsPerOp > ceil {
			bad = append(bad, fmt.Sprintf(
				"%s: %d allocs/op exceeds baseline %d (ceiling %d)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, ceil))
		}
	}
	return bad
}

// ApplyHandicap scales every throughput benchmark down by frac
// (cycles/s and decisions/s alike). It exists to prove the gate trips:
// `BENCHGATE_HANDICAP=0.15 make ci` must fail. frac <= 0 is a no-op.
func ApplyHandicap(f *File, frac float64) {
	if frac <= 0 {
		return
	}
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Kind != KindThroughput {
			continue
		}
		f.Benchmarks[i].CyclesPerSec *= 1 - frac
		f.Benchmarks[i].OpsPerSec *= 1 - frac
	}
}

// ApplyOverheadHandicap injects a synthetic coordination-tax regression:
// every overhead benchmark's overhead-pct is raised by pts percentage
// points, so BENCHGATE_OVERHEAD_HANDICAP can prove the overhead gate
// trips. pts <= 0 is a no-op.
func ApplyOverheadHandicap(f *File, pts float64) {
	if pts <= 0 {
		return
	}
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Kind != KindOverhead {
			continue
		}
		f.Benchmarks[i].OverheadPct += pts
	}
}

// ApplyLatencyHandicap injects a synthetic latency regression: every
// latency benchmark's p50 is inflated by frac and its speedup deflated
// to match, so BENCHGATE_LAT_HANDICAP can prove the latency gate trips.
// frac <= 0 is a no-op.
func ApplyLatencyHandicap(f *File, frac float64) {
	if frac <= 0 {
		return
	}
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Kind != KindLatency {
			continue
		}
		f.Benchmarks[i].P50Ns *= 1 + frac
		f.Benchmarks[i].SpeedupX /= 1 + frac
	}
}
