// Package benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on it: a run whose simulator throughput drops
// more than the tolerance below the baseline, or whose steady-state
// allocations rise above it, fails. Throughput baselines are recorded on
// the slowest reference machine so faster CI runners clear them with
// margin; allocs/op is machine-independent and gated tightly.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the baseline file format.
const Schema = "benchgate/v1"

// Entry records one benchmark's gated metrics.
type Entry struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// -GOMAXPROCS suffix stripped (e.g. "SimulatorCycles").
	Name string `json:"name"`
	// CyclesPerSec is the simulator-throughput custom metric.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// AllocsPerOp comes from -benchmem and is machine-independent.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// NsPerOp is informational; it is not gated (wall time tracks
	// machine speed, which cycles_per_sec already captures).
	NsPerOp float64 `json:"ns_per_op"`
}

// File is the committed baseline (BENCH_core.json).
type File struct {
	Schema string `json:"schema"`
	// Go records the toolchain that produced the baseline, for context
	// when reading diffs; it is not compared.
	Go string `json:"go"`
	// WindowCycles is the simulated window per benchmark op.
	WindowCycles int64   `json:"window_cycles"`
	Benchmarks   []Entry `json:"benchmarks"`
}

// Parse extracts gated entries from `go test -bench -benchmem` text
// output. Benchmarks that do not report a cycles/s metric are ignored:
// the gate covers the simulator-core benchmarks, not the figure drivers.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		e := Entry{Name: normalize(f[0]), AllocsPerOp: -1}
		hasCycles := false
		// After the name and iteration count the line is value/unit
		// pairs: `1234 ns/op  330000 cycles/s  2024 allocs/op`.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", f[i], line)
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "cycles/s":
				e.CyclesPerSec = v
				hasCycles = true
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			}
		}
		if !hasCycles {
			continue
		}
		if e.AllocsPerOp < 0 {
			return nil, fmt.Errorf("benchgate: %s reports no allocs/op; run with -benchmem", e.Name)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// normalize strips the Benchmark prefix and the -GOMAXPROCS suffix.
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// Load reads a baseline file.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchgate: %s: schema %q, want %q", path, f.Schema, Schema)
	}
	return &f, nil
}

// Write writes a baseline file with stable formatting (one benchmark per
// line keeps diffs reviewable).
func (f *File) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// AllocSlackFrac absorbs run-to-run allocation jitter from one-time
// growth (heap resizes of the wake queues, pool warm-up) that -benchtime
// cannot fully amortize. Real hot-path regressions allocate per cycle and
// blow far past 5%.
const AllocSlackFrac = 0.05

// Compare gates cur against base: each baseline benchmark must be present
// and within limits. tolFrac is the allowed fractional throughput drop
// (e.g. 0.10). The returned strings are human-readable violations; an
// empty slice means the gate passes.
func Compare(base, cur *File, tolFrac float64) []string {
	var bad []string
	curByName := make(map[string]Entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		curByName[e.Name] = e
	}
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if floor := b.CyclesPerSec * (1 - tolFrac); c.CyclesPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"%s: throughput %.0f cycles/s is %.1f%% below baseline %.0f (floor %.0f)",
				b.Name, c.CyclesPerSec,
				100*(1-c.CyclesPerSec/b.CyclesPerSec), b.CyclesPerSec, floor))
		}
		if ceil := int64(float64(b.AllocsPerOp) * (1 + AllocSlackFrac)); c.AllocsPerOp > ceil {
			bad = append(bad, fmt.Sprintf(
				"%s: %d allocs/op exceeds baseline %d (ceiling %d)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, ceil))
		}
	}
	return bad
}

// ApplyHandicap scales every benchmark's throughput down by frac. It
// exists to prove the gate trips: `BENCHGATE_HANDICAP=0.15 make ci` must
// fail. frac <= 0 is a no-op.
func ApplyHandicap(f *File, frac float64) {
	if frac <= 0 {
		return
	}
	for i := range f.Benchmarks {
		f.Benchmarks[i].CyclesPerSec *= 1 - frac
	}
}
