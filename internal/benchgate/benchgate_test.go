package benchgate

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable01Parameters-4         	     100	    120000 ns/op
BenchmarkSimulatorCycles-4           	       5	 160000000 ns/op	    312500 cycles/s	  606844 B/op	    2024 allocs/op
BenchmarkSimulatorCyclesSharded-4    	       5	 170000000 ns/op	    294117 cycles/s	  655360 B/op	    2200 allocs/op
BenchmarkAdmission-4                 	    1000	      8000 ns/op	      5200 p50-ns	      9800 speedup-x	    4402 B/op	      43 allocs/op
BenchmarkStreamAdmission-4           	   20000	     61000 ns/op	     16300 decisions/s	   10240 B/op	      98 allocs/op
BenchmarkDistSweepOverhead-4         	       5	 510000000 ns/op	        23.04 cases/s	         4.2 overhead-pct	 7712544 B/op	   12202 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Name: "Admission", Kind: KindLatency, P50Ns: 5200, SpeedupX: 9800, AllocsPerOp: 43, NsPerOp: 8000},
		{Name: "DistSweepOverhead", Kind: KindOverhead, OverheadPct: 4.2, AllocsPerOp: 12202, NsPerOp: 510000000},
		{Name: "SimulatorCycles", Kind: KindThroughput, CyclesPerSec: 312500, AllocsPerOp: 2024, NsPerOp: 160000000},
		{Name: "SimulatorCyclesSharded", Kind: KindThroughput, CyclesPerSec: 294117, AllocsPerOp: 2200, NsPerOp: 170000000},
		{Name: "StreamAdmission", Kind: KindThroughput, OpsPerSec: 16300, AllocsPerOp: 98, NsPerOp: 61000},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Parse = %+v, want %+v", got, want)
	}
}

func TestParseRejectsMissingBenchmem(t *testing.T) {
	in := "BenchmarkSimulatorCycles-4 5 160000000 ns/op 312500 cycles/s\n"
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Fatal("Parse accepted a cycles/s benchmark without allocs/op")
	}
}

func TestNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSimulatorCycles-16": "SimulatorCycles",
		"BenchmarkSimulatorCycles":    "SimulatorCycles",
		"BenchmarkFoo-bar":            "Foo-bar", // non-numeric suffix kept
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func baseFile() *File {
	return &File{
		Schema:       Schema,
		Go:           "go1.24",
		WindowCycles: 50_000,
		Benchmarks: []Entry{
			{Name: "Admission", Kind: KindLatency, P50Ns: 5000, SpeedupX: 9000, AllocsPerOp: 43, NsPerOp: 8000},
			{Name: "SimulatorCycles", Kind: KindThroughput, CyclesPerSec: 300_000, AllocsPerOp: 2000, NsPerOp: 1e8},
			{Name: "DistSweepOverhead", Kind: KindOverhead, OverheadPct: 3.0, AllocsPerOp: 12000, NsPerOp: 5e8},
			{Name: "StreamAdmission", Kind: KindThroughput, OpsPerSec: 15_000, AllocsPerOp: 100, NsPerOp: 65000},
		},
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name       string
		mutate     func(*File)
		violations int
	}{
		{"identical", func(f *File) {}, 0},
		{"faster is fine", func(f *File) { f.Benchmarks[1].CyclesPerSec = 900_000 }, 0},
		{"within tolerance", func(f *File) { f.Benchmarks[1].CyclesPerSec = 275_000 }, 0},
		{"throughput regression", func(f *File) { f.Benchmarks[1].CyclesPerSec = 265_000 }, 1},
		{"alloc jitter within slack", func(f *File) { f.Benchmarks[1].AllocsPerOp = 2080 }, 0},
		{"alloc regression", func(f *File) { f.Benchmarks[1].AllocsPerOp = 2500 }, 1},
		{"both regress", func(f *File) {
			f.Benchmarks[1].CyclesPerSec = 100_000
			f.Benchmarks[1].AllocsPerOp = 9984
		}, 2},
		{"benchmark vanished", func(f *File) { f.Benchmarks = f.Benchmarks[:2] }, 2},
		// Ops-throughput entries (decisions/s) gate like cycles/s.
		{"ops faster is fine", func(f *File) { f.Benchmarks[3].OpsPerSec = 40_000 }, 0},
		{"ops within tolerance", func(f *File) { f.Benchmarks[3].OpsPerSec = 13_700 }, 0},
		{"ops regression", func(f *File) { f.Benchmarks[3].OpsPerSec = 13_000 }, 1},
		{"ops alloc regression", func(f *File) { f.Benchmarks[3].AllocsPerOp = 200 }, 1},
		// Latency entries: p50 is gated against a ceiling, speedup
		// against the absolute MinSpeedupX floor; allocs are not gated.
		{"lower latency is fine", func(f *File) { f.Benchmarks[0].P50Ns = 900 }, 0},
		{"latency within tolerance", func(f *File) { f.Benchmarks[0].P50Ns = 7400 }, 0},
		{"latency regression", func(f *File) { f.Benchmarks[0].P50Ns = 7600 }, 1},
		{"latency allocs not gated", func(f *File) { f.Benchmarks[0].AllocsPerOp = 9000 }, 0},
		{"speedup below floor", func(f *File) { f.Benchmarks[0].SpeedupX = 49 }, 1},
		{"speedup above floor but below baseline", func(f *File) { f.Benchmarks[0].SpeedupX = 51 }, 0},
		{"latency and speedup regress", func(f *File) {
			f.Benchmarks[0].P50Ns = 1e6
			f.Benchmarks[0].SpeedupX = 2
		}, 2},
		// Overhead entries: gated against the absolute MaxOverheadPct
		// ceiling only; the baseline value and allocs are informational.
		{"overhead below ceiling", func(f *File) { f.Benchmarks[2].OverheadPct = 4.9 }, 0},
		{"overhead above ceiling", func(f *File) { f.Benchmarks[2].OverheadPct = 5.1 }, 1},
		{"zero overhead is fine", func(f *File) { f.Benchmarks[2].OverheadPct = 0 }, 0},
		{"overhead allocs not gated", func(f *File) { f.Benchmarks[2].AllocsPerOp = 90_000 }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := baseFile()
			tc.mutate(cur)
			bad := Compare(baseFile(), cur, 0.10, 0.50)
			if len(bad) != tc.violations {
				t.Fatalf("Compare found %d violations %v, want %d", len(bad), bad, tc.violations)
			}
		})
	}
}

func TestApplyHandicapTripsGate(t *testing.T) {
	cur := baseFile()
	ApplyHandicap(cur, 0.15)
	// Both throughput entries (cycles/s and decisions/s) must trip.
	if bad := Compare(baseFile(), cur, 0.10, 0.50); len(bad) != 2 {
		t.Fatalf("15%% handicap against a 10%% tolerance produced %v, want 2 violations", bad)
	}
	unhit := baseFile()
	ApplyHandicap(unhit, 0)
	if !reflect.DeepEqual(unhit, baseFile()) {
		t.Fatal("zero handicap mutated the file")
	}
}

// TestApplyLatencyHandicapTripsGate proves the latency tripwire: a
// synthetic p50 inflation beyond the tolerance must fail the gate, and
// a deep one must also drag the speedup below its floor.
func TestApplyLatencyHandicapTripsGate(t *testing.T) {
	cur := baseFile()
	ApplyLatencyHandicap(cur, 0.75)
	if bad := Compare(baseFile(), cur, 0.10, 0.50); len(bad) != 1 {
		t.Fatalf("75%% latency handicap against a 50%% tolerance produced %v, want 1 violation", bad)
	}
	// Throughput entries are untouched.
	if cur.Benchmarks[1] != baseFile().Benchmarks[1] {
		t.Fatal("latency handicap mutated a throughput entry")
	}
	deep := baseFile()
	ApplyLatencyHandicap(deep, 300)
	if bad := Compare(baseFile(), deep, 0.10, 0.50); len(bad) != 2 {
		t.Fatalf("deep latency handicap produced %v, want p50 + speedup violations", bad)
	}
	unhit := baseFile()
	ApplyLatencyHandicap(unhit, 0)
	if !reflect.DeepEqual(unhit, baseFile()) {
		t.Fatal("zero latency handicap mutated the file")
	}
}

// TestApplyOverheadHandicapTripsGate proves the coordination-tax
// tripwire: synthetic overhead points pushed past the absolute ceiling
// must fail the gate, and only overhead entries may be touched.
func TestApplyOverheadHandicapTripsGate(t *testing.T) {
	cur := baseFile()
	ApplyOverheadHandicap(cur, 10)
	bad := Compare(baseFile(), cur, 0.10, 0.50)
	if len(bad) != 1 || !strings.Contains(bad[0], "overhead") {
		t.Fatalf("+10pt overhead handicap against the %.0f%% ceiling produced %v, want 1 overhead violation", MaxOverheadPct, bad)
	}
	if cur.Benchmarks[0] != baseFile().Benchmarks[0] || cur.Benchmarks[1] != baseFile().Benchmarks[1] {
		t.Fatal("overhead handicap mutated a non-overhead entry")
	}
	unhit := baseFile()
	ApplyOverheadHandicap(unhit, 0)
	if !reflect.DeepEqual(unhit, baseFile()) {
		t.Fatal("zero overhead handicap mutated the file")
	}
}

// TestLoadAcceptsV1 pins the one-release compatibility shim: a v1
// (throughput-only) baseline still loads, with kinds defaulted.
func TestLoadAcceptsV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := &File{
		Schema: schemaV1,
		Benchmarks: []Entry{
			{Name: "SimulatorCycles", CyclesPerSec: 300_000, AllocsPerOp: 2000, NsPerOp: 1e8},
		},
	}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Kind != KindThroughput {
		t.Fatalf("v1 entry kind = %q, want %q", got.Benchmarks[0].Kind, KindThroughput)
	}
}

// TestLoadAcceptsOlderSchemas pins the ops-throughput migration: every
// prior schema version still loads under the v4 reader.
func TestLoadAcceptsOlderSchemas(t *testing.T) {
	for _, s := range []string{schemaV1, schemaV2, schemaV3} {
		path := filepath.Join(t.TempDir(), "bench.json")
		f := baseFile()
		f.Schema = s
		if err := f.Write(path); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			t.Errorf("Load rejected schema %q: %v", s, err)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := baseFile()
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip: %+v, want %+v", got, f)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := baseFile()
	f.Schema = "benchgate/v0"
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted an unknown schema")
	}
}
