package benchgate

import (
	"path/filepath"
	"testing"
)

// gateTolFrac / gateLatTolFrac mirror the cmd/benchgate defaults wired
// into `make bench-gate`; keep them in sync with cmd/benchgate/main.go.
const (
	gateTolFrac    = 0.10
	gateLatTolFrac = 0.50
)

// preWheelCyclesPerSec are the committed throughput baselines from
// before the event-wheel conversion (the values BENCH_core.json carried
// through PR 7). The self-test below freezes them so reverting either
// the wheel or the ratchet is caught even if the revert is "clean".
var preWheelCyclesPerSec = map[string]float64{
	"SimulatorCycles":        220_000,
	"SimulatorCyclesSharded": 200_000,
}

// loadCommittedBaseline loads the repo's real BENCH_core.json, not a
// fixture: the whole point is to gate the committed file.
func loadCommittedBaseline(t *testing.T) *File {
	t.Helper()
	f, err := Load(filepath.Join("..", "..", "BENCH_core.json"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	return f
}

// TestBaselineRatchetTripsOnRevert is the tripwire self-test for the
// event-wheel ratchet: a tree reverted to pre-wheel throughput must
// fail the gate against the committed baseline. Equivalently, the
// committed floors must sit strictly above the pre-wheel numbers — if a
// revert also rolls BENCH_core.json back, this test fails instead of
// the gate, so the regression cannot land silently either way.
func TestBaselineRatchetTripsOnRevert(t *testing.T) {
	base := loadCommittedBaseline(t)

	reverted := *base
	reverted.Benchmarks = append([]Entry(nil), base.Benchmarks...)
	found := 0
	for i, e := range reverted.Benchmarks {
		if old, ok := preWheelCyclesPerSec[e.Name]; ok {
			reverted.Benchmarks[i].CyclesPerSec = old
			found++
		}
	}
	if found != len(preWheelCyclesPerSec) {
		t.Fatalf("committed baseline gates %d of the %d simulator throughput benchmarks",
			found, len(preWheelCyclesPerSec))
	}

	bad := Compare(base, &reverted, gateTolFrac, gateLatTolFrac)
	trips := map[string]bool{}
	for _, v := range bad {
		for name := range preWheelCyclesPerSec {
			if len(v) >= len(name) && v[:len(name)] == name {
				trips[name] = true
			}
		}
	}
	for name, old := range preWheelCyclesPerSec {
		if !trips[name] {
			t.Errorf("pre-wheel throughput (%s at %.0f cycles/s) passes the gate; "+
				"ratchet BENCH_core.json so the floor exceeds it", name, old)
		}
	}
}

// TestBaselineSelfConsistent pins the other half of the tripwire: the
// committed baseline must pass its own gate (a run reproducing the
// baseline exactly is by definition not a regression), and the CI
// handicap — the synthetic 40% revert `BENCHGATE_HANDICAP=0.6` injects —
// must trip it. Together with the pre-wheel test above this proves the
// gate is live in both directions.
func TestBaselineSelfConsistent(t *testing.T) {
	base := loadCommittedBaseline(t)
	if bad := Compare(base, base, gateTolFrac, gateLatTolFrac); len(bad) != 0 {
		t.Fatalf("committed baseline fails its own gate: %v", bad)
	}

	handicapped := *base
	handicapped.Benchmarks = append([]Entry(nil), base.Benchmarks...)
	ApplyHandicap(&handicapped, 0.6)
	if bad := Compare(base, &handicapped, gateTolFrac, gateLatTolFrac); len(bad) == 0 {
		t.Fatal("60% throughput handicap passes the gate; the tripwire is dead")
	}
}
