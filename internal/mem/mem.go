// Package mem models the GPU memory system below the L1s: the on-chip
// interconnect, the memory partitions (one L2 slice + memory controller
// each), and DRAM with row-buffer timing.
//
// The model is an analytic queueing model at cycle resolution: every
// partition tracks the time its controller is next free, so a request's
// service start is max(arrival, nextFree) and the queueing delay seen by
// bandwidth-saturating kernels emerges naturally. This is the behaviour
// that matters for the paper's M+M results (Section 4.2, Figure 7): Spart
// cannot partition bandwidth, while quota throttling reduces traffic.
package mem

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
)

// AccessKind distinguishes reads from (posted) writes.
type AccessKind uint8

const (
	// Read is a load miss that needs a data response.
	Read AccessKind = iota
	// Write is a posted store: it consumes bandwidth but the issuing
	// warp does not wait for it.
	Write
)

// PartitionStats accumulates per-partition counters.
type PartitionStats struct {
	Requests  int64
	L2Hits    int64
	DRAMReads int64 // DRAM data bursts (reads+writes that miss L2)
	RowHits   int64
	// StallCycles accumulates the queueing delay experienced by
	// requests (service start minus arrival), a congestion signal.
	StallCycles int64
}

// partition is one L2 slice + memory controller + DRAM channel.
type partition struct {
	l2       *cache.Cache
	nextFree int64
	// openRow[bank] is the currently open DRAM row (+1; 0 = none).
	openRow []uint64
	stats   PartitionStats
}

// System is the complete memory system shared by all SMs.
type System struct {
	cfg        config.GPU
	parts      []*partition
	lineShift  uint
	totalTxns  int64
	totalReads int64
}

// New builds the memory system for a GPU configuration.
func New(cfg config.GPU) *System {
	shift := uint(0)
	for 1<<shift < cfg.L2.LineBytes {
		shift++
	}
	s := &System{cfg: cfg, lineShift: shift}
	s.parts = make([]*partition, cfg.NumMemControllers)
	for i := range s.parts {
		s.parts[i] = &partition{
			l2:      cache.New(cfg.L2),
			openRow: make([]uint64, cfg.DRAMBanksPerMC),
		}
	}
	return s
}

// PartitionOf returns the index of the partition servicing addr
// (line-interleaved across controllers, as on real parts).
func (s *System) PartitionOf(addr uint64) int {
	return int((addr >> s.lineShift) % uint64(len(s.parts)))
}

// Access submits one 128B transaction to the memory system at time now and
// returns the cycle at which the response reaches the requesting SM. For
// writes the return value is when the write is accepted (posted); the
// caller should not block the warp on it beyond the configured
// WriteLatency.
func (s *System) Access(now int64, addr uint64, kind AccessKind) int64 {
	s.totalTxns++
	if kind == Read {
		s.totalReads++
	}
	p := s.parts[s.PartitionOf(addr)]
	p.stats.Requests++

	arrival := now + s.cfg.InterconnectDelay
	start := arrival
	if p.nextFree > start {
		start = p.nextFree
	}
	p.stats.StallCycles += start - arrival
	p.nextFree = start + s.cfg.MCServiceInterval

	// L2 slice lookup at service time.
	if p.l2.Access(addr) {
		p.stats.L2Hits++
		if kind == Write {
			return start + s.cfg.MCServiceInterval
		}
		done := start + s.cfg.L2HitLatency
		return done + s.cfg.InterconnectDelay
	}

	// DRAM access with row-buffer behaviour.
	p.stats.DRAMReads++
	bank := int((addr >> 14) % uint64(len(p.openRow)))
	row := (addr >> 18) + 1
	lat := s.cfg.DRAMRowMissLatency
	if p.openRow[bank] == row {
		p.stats.RowHits++
		lat = s.cfg.DRAMRowHitLatency
	}
	p.openRow[bank] = row
	// DRAM occupancy extends the controller's busy window a little
	// beyond the fixed service interval, so streams of misses saturate
	// earlier than streams of L2 hits.
	p.nextFree += s.cfg.MCServiceInterval
	if kind == Write {
		// A posted write is off the requester's hands once the
		// controller accepts it; only bandwidth was consumed.
		return start + s.cfg.MCServiceInterval
	}
	done := start + s.cfg.L2HitLatency + lat
	return done + s.cfg.InterconnectDelay
}

// noEvent mirrors gpu.NoEvent (this package cannot import gpu): the
// sentinel returned when no cycle at/after the queried one needs the
// main loop's attention.
const noEvent = int64(1) << 62

// NextEventAt implements the memory system's side of the event-wheel
// contract: the earliest cycle >= a at which the system requires the
// main loop to process a cycle. The model is fully reactive — every
// access computes its completion time at issue, queue state (nextFree)
// advances only when Access is called, and the completion's future
// effects (MSHR release, credit release, warp wake) live in the issuing
// SM's heaps, which the SM's own NextEventAt already bounds. The memory
// system therefore never schedules an independent event.
func (s *System) NextEventAt(a int64) int64 { return noEvent }

// Backlog returns the worst per-partition queueing backlog, in cycles, at
// time now. The SMs use it as backpressure: when the memory system is
// this congested, new memory instructions stall at issue (a bounded-queue
// model — real parts bound in-flight requests the same way).
func (s *System) Backlog(now int64) int64 {
	worst := int64(0)
	for _, p := range s.parts {
		if d := p.nextFree - now; d > worst {
			worst = d
		}
	}
	return worst
}

// Stats returns aggregate statistics across partitions.
func (s *System) Stats() (agg PartitionStats) {
	for _, p := range s.parts {
		agg.Requests += p.stats.Requests
		agg.L2Hits += p.stats.L2Hits
		agg.DRAMReads += p.stats.DRAMReads
		agg.RowHits += p.stats.RowHits
		agg.StallCycles += p.stats.StallCycles
	}
	return agg
}

// PartitionStats returns the counters of one partition (for tests).
func (s *System) PartitionStats(i int) PartitionStats { return s.parts[i].stats }

// L2Stats returns combined L2 statistics for the power model.
func (s *System) L2Stats() (agg cache.Stats) {
	for _, p := range s.parts {
		st := p.l2.Stats
		agg.Accesses += st.Accesses
		agg.Misses += st.Misses
		agg.Evicts += st.Evicts
	}
	return agg
}

// NumPartitions returns the number of memory partitions.
func (s *System) NumPartitions() int { return len(s.parts) }

// String summarizes the system state.
func (s *System) String() string {
	st := s.Stats()
	return fmt.Sprintf("mem{parts:%d reqs:%d l2hit:%.1f%% rowhit:%.1f%%}",
		len(s.parts), st.Requests,
		pct(st.L2Hits, st.Requests), pct(st.RowHits, st.DRAMReads))
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
