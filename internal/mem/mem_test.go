package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func sys() *System { return New(config.Base()) }

func TestPartitionRouting(t *testing.T) {
	s := sys()
	// Line-interleaved: consecutive 128B lines round-robin across MCs.
	for i := 0; i < 16; i++ {
		want := i % s.NumPartitions()
		if got := s.PartitionOf(uint64(i) * 128); got != want {
			t.Fatalf("PartitionOf(line %d) = %d, want %d", i, got, want)
		}
	}
	// Offsets within a line stay in the same partition.
	if s.PartitionOf(0) != s.PartitionOf(127) {
		t.Fatal("addresses within one line map to different partitions")
	}
}

func TestReadLatencyComponents(t *testing.T) {
	cfg := config.Base()
	s := New(cfg)
	done := s.Access(0, 0, Read)
	// Cold read: interconnect + L2 lookup + DRAM row miss + interconnect.
	min := cfg.InterconnectDelay*2 + cfg.L2HitLatency + cfg.DRAMRowHitLatency
	if done <= min {
		t.Fatalf("cold read completed at %d, want > %d", done, min)
	}
	// Second access to the same line hits L2 and returns sooner.
	hit := s.Access(1000, 0, Read) - 1000
	miss := done - 0
	if hit >= miss {
		t.Fatalf("L2 hit latency %d not faster than cold miss %d", hit, miss)
	}
}

func TestWriteAcceptsEarly(t *testing.T) {
	cfg := config.Base()
	s := New(cfg)
	accept := s.Access(0, 1<<20, Write)
	read := s.Access(0, 2<<20, Read)
	if accept >= read {
		t.Fatalf("posted write accept time %d should precede read completion %d", accept, read)
	}
}

func TestQueueingUnderBurst(t *testing.T) {
	s := sys()
	// Slam one partition with many requests at the same cycle; later
	// requests must observe growing queueing delay.
	var first, last int64
	for i := 0; i < 64; i++ {
		addr := uint64(i) * 128 * uint64(s.NumPartitions()) // same partition
		done := s.Access(0, addr, Read)
		if i == 0 {
			first = done
		}
		last = done
	}
	if last <= first {
		t.Fatal("no queueing delay under a same-cycle burst")
	}
	if s.Backlog(0) <= 0 {
		t.Fatal("backlog not visible after burst")
	}
	if s.Backlog(1<<30) != 0 {
		t.Fatal("backlog should drain with time")
	}
}

func TestRowBufferHitFaster(t *testing.T) {
	cfg := config.Base()
	cfg.L2 = config.Cache{SizeBytes: 1024, LineBytes: 128, Assoc: 2} // tiny L2: force DRAM
	s := New(cfg)
	base := uint64(1 << 30)
	var times []int64
	now := int64(0)
	for i := 0; i < 3; i++ {
		// Distinct lines in the same DRAM row (row bits are addr>>18),
		// spaced a full L2-set stride apart so they do not hit in L2.
		addr := base + uint64(i)*128*uint64(s.NumPartitions())*4
		start := now
		done := s.Access(start, addr, Read)
		times = append(times, done-start)
		now = done + 1000
	}
	if times[1] >= times[0] {
		t.Fatalf("row-buffer hit %d not faster than row miss %d", times[1], times[0])
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := sys()
	for i := 0; i < 10; i++ {
		s.Access(int64(i*100), uint64(i)*128, Read)
	}
	st := s.Stats()
	if st.Requests != 10 {
		t.Fatalf("requests = %d", st.Requests)
	}
	l2 := s.L2Stats()
	if l2.Accesses != 10 {
		t.Fatalf("L2 accesses = %d", l2.Accesses)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuickCompletionAfterNow(t *testing.T) {
	s := sys()
	f := func(now uint32, addr uint64, write bool) bool {
		kind := Read
		if write {
			kind = Write
		}
		n := int64(now % 1_000_000)
		return s.Access(n, addr, kind) > n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBacklogMonotoneDrain(t *testing.T) {
	s := sys()
	for i := 0; i < 100; i++ {
		s.Access(0, uint64(i)*128, Read)
	}
	b0 := s.Backlog(0)
	b1 := s.Backlog(10)
	if b1 > b0 {
		t.Fatalf("backlog grew with time with no new requests: %d -> %d", b0, b1)
	}
}
