// Package power is an event-energy power model in the spirit of
// GPUWattch (Leng et al., ISCA'13), which the paper uses for its
// Figure 14 energy-efficiency comparison. Dynamic energy is charged per
// architectural event (instruction class, cache access, DRAM burst) and
// static energy per SM-cycle; instructions-per-watt falls out of total
// work over average power. Absolute joules are not calibrated to any real
// part — only the *relative* efficiency between management schemes
// matters for the reproduction, and that is driven by utilization, which
// the event counts capture.
package power

import (
	"repro/internal/gpu"
)

// Energy costs in picojoules per event. Values are in the range reported
// by GPUWattch-era literature for a 28nm part.
type Costs struct {
	ALUOp      float64 // integer/float ALU thread-op
	SFUOp      float64 // special-function thread-op
	SharedOp   float64 // shared-memory thread-op
	L1Access   float64 // per 128B L1 probe
	L2Access   float64 // per 128B L2 probe
	DRAMAccess float64 // per 128B DRAM burst
	IssueBase  float64 // per warp instruction (fetch/decode/issue)
	SMLeakage  float64 // per SM per cycle (static)
	BaseLeak   float64 // per cycle, rest of chip (MCs, NoC, PLLs)
}

// DefaultCosts returns the model's default energy table.
func DefaultCosts() Costs {
	return Costs{
		ALUOp:      8,
		SFUOp:      40,
		SharedOp:   16,
		L1Access:   60,
		L2Access:   180,
		DRAMAccess: 2600,
		IssueBase:  120,
		SMLeakage:  900,
		BaseLeak:   9000,
	}
}

// Report summarizes a run's energy.
type Report struct {
	Cycles        int64
	ThreadInstrs  int64
	DynamicPJ     float64
	StaticPJ      float64
	TotalPJ       float64
	AvgPowerW     float64 // with the configured core clock
	InstrPerJoule float64
	// InstrPerWatt is the paper's Figure 14 metric: instructions per
	// watt of average power = instrs * T / E.
	InstrPerWatt float64
}

// Measure computes the energy report for a finished GPU run.
func Measure(g *gpu.GPU, c Costs) Report {
	var r Report
	r.Cycles = g.Now
	var dyn float64
	for _, st := range g.Stats {
		r.ThreadInstrs += st.ThreadInstrs
		// Per-thread-op energies scale with the kernel's mean active
		// lanes; divergent kernels burn less datapath energy.
		lanes := 32.0
		if st.WarpInstrs > 0 {
			lanes = float64(st.ThreadInstrs) / float64(st.WarpInstrs)
		}
		dyn += float64(st.ALUInstrs) * lanes * c.ALUOp
		dyn += float64(st.SFUInstrs) * lanes * c.SFUOp
		dyn += float64(st.SharedInstrs) * lanes * c.SharedOp
		dyn += float64(st.WarpInstrs) * c.IssueBase
		dyn += float64(st.L1Accesses) * c.L1Access
	}
	l2 := g.Mem.L2Stats()
	dyn += float64(l2.Accesses) * c.L2Access
	dyn += float64(l2.Misses) * c.DRAMAccess
	r.DynamicPJ = dyn
	r.StaticPJ = float64(r.Cycles) * (float64(g.Cfg.NumSMs)*c.SMLeakage + c.BaseLeak)
	r.TotalPJ = r.DynamicPJ + r.StaticPJ

	if r.TotalPJ > 0 {
		r.InstrPerJoule = float64(r.ThreadInstrs) / (r.TotalPJ * 1e-12)
	}
	// Average power: E/T with T = cycles / f.
	f := float64(g.Cfg.CoreClockMHz) * 1e6
	if r.Cycles > 0 && f > 0 {
		seconds := float64(r.Cycles) / f
		r.AvgPowerW = r.TotalPJ * 1e-12 / seconds
		if r.AvgPowerW > 0 {
			r.InstrPerWatt = float64(r.ThreadInstrs) / r.AvgPowerW
		}
	}
	return r
}
