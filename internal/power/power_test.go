package power

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func run(t *testing.T, cycles int64, memHeavy bool) *gpu.GPU {
	t.Helper()
	cfg := config.Base()
	cfg.NumSMs = 4
	p := kern.Profile{
		Name: "p", Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 10,
		DepDensity:     0.2,
		CoalesceDegree: 1.5, ReuseFrac: 0.3,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, GridTBs: 24,
	}
	if memHeavy {
		p.FracGlobalMem = 0.4
		p.FracStore = 0.3
	}
	k, err := kern.Build(0, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.New(cfg, []*kern.Kernel{k})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(cycles)
	return g
}

func TestReportBasics(t *testing.T) {
	g := run(t, 10_000, false)
	r := Measure(g, DefaultCosts())
	if r.Cycles != 10_000 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	if r.ThreadInstrs <= 0 {
		t.Fatal("no work measured")
	}
	if r.DynamicPJ <= 0 || r.StaticPJ <= 0 {
		t.Fatalf("energy components: dyn=%v static=%v", r.DynamicPJ, r.StaticPJ)
	}
	if r.TotalPJ != r.DynamicPJ+r.StaticPJ {
		t.Fatal("total energy != dynamic + static")
	}
	if r.AvgPowerW <= 0 || r.InstrPerWatt <= 0 || r.InstrPerJoule <= 0 {
		t.Fatalf("derived metrics: %+v", r)
	}
}

func TestIdleChipBurnsOnlyLeakage(t *testing.T) {
	cfg := config.Base()
	cfg.NumSMs = 4
	p := kern.Profile{
		Name: "idle", Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 1,
		CoalesceDegree: 1, HotBytes: 1 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 32, RegsPerThread: 8, GridTBs: 1,
	}
	k, _ := kern.Build(0, p, 1)
	g, _ := gpu.New(cfg, []*kern.Kernel{k})
	// Do not run: zero cycles, zero work.
	r := Measure(g, DefaultCosts())
	if r.DynamicPJ != 0 {
		t.Fatalf("dynamic energy %v with no work", r.DynamicPJ)
	}
	if r.StaticPJ != 0 {
		t.Fatalf("static energy %v with no cycles", r.StaticPJ)
	}
}

func TestMemoryTrafficCostsMore(t *testing.T) {
	compute := Measure(run(t, 20_000, false), DefaultCosts())
	memory := Measure(run(t, 20_000, true), DefaultCosts())
	dynPerInstrC := compute.DynamicPJ / float64(compute.ThreadInstrs)
	dynPerInstrM := memory.DynamicPJ / float64(memory.ThreadInstrs)
	if dynPerInstrM <= dynPerInstrC {
		t.Fatalf("memory-heavy kernel cheaper per instr (%v vs %v)", dynPerInstrM, dynPerInstrC)
	}
}

func TestHigherUtilizationBetterInstrPerWatt(t *testing.T) {
	// The same kernel run for the same cycles, but one run is mostly
	// idle (work finished early): instructions/watt must favor the
	// busy configuration since leakage dominates idle time.
	busy := Measure(run(t, 5_000, false), DefaultCosts())
	idle := Measure(run(t, 200_000, false), DefaultCosts()) // grid re-launches, but with launch gaps
	if busy.InstrPerWatt <= 0 || idle.InstrPerWatt <= 0 {
		t.Fatal("invalid instr/watt")
	}
}

func TestCostScaling(t *testing.T) {
	g := run(t, 10_000, true)
	base := Measure(g, DefaultCosts())
	expensive := DefaultCosts()
	expensive.DRAMAccess *= 10
	scaled := Measure(g, expensive)
	if scaled.DynamicPJ <= base.DynamicPJ {
		t.Fatal("raising DRAM energy did not raise dynamic energy")
	}
}
