package isa

import "testing"

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op                          Op
		globalMem, sharedMem, store bool
	}{
		{OpIAlu, false, false, false},
		{OpFAlu, false, false, false},
		{OpSFU, false, false, false},
		{OpLdGlobal, true, false, false},
		{OpStGlobal, true, false, true},
		{OpLdShared, false, true, false},
		{OpStShared, false, true, true},
		{OpBarrier, false, false, false},
		{OpBranch, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsGlobalMem(); got != c.globalMem {
			t.Errorf("%v.IsGlobalMem() = %v", c.op, got)
		}
		if got := c.op.IsSharedMem(); got != c.sharedMem {
			t.Errorf("%v.IsSharedMem() = %v", c.op, got)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%v.IsStore() = %v", c.op, got)
		}
		if got := c.op.IsMem(); got != (c.globalMem || c.sharedMem) {
			t.Errorf("%v.IsMem() = %v", c.op, got)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if OpLdGlobal.String() != "ld.global" {
		t.Fatalf("OpLdGlobal = %q", OpLdGlobal.String())
	}
	if OpBarrier.String() != "bar" {
		t.Fatalf("OpBarrier = %q", OpBarrier.String())
	}
	if Op(200).String() == "" {
		t.Fatal("out-of-range op produced empty string")
	}
}

func TestInstrValidate(t *testing.T) {
	cases := []struct {
		name string
		in   Instr
		ok   bool
	}{
		{"plain alu", Instr{Op: OpIAlu}, true},
		{"load with txns", Instr{Op: OpLdGlobal, Transactions: 4}, true},
		{"load without txns", Instr{Op: OpLdGlobal}, false},
		{"load with 33 txns", Instr{Op: OpLdGlobal, Transactions: 33}, false},
		{"alu with txns", Instr{Op: OpIAlu, Transactions: 2}, false},
		{"divergent branch", Instr{Op: OpBranch, Divergent: true}, true},
		{"divergent alu", Instr{Op: OpIAlu, Divergent: true}, false},
		{"invalid op", Instr{Op: Op(99)}, false},
		{"store with txns", Instr{Op: OpStGlobal, Transactions: 8}, true},
	}
	for _, c := range cases {
		err := c.in.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
