// Package isa defines the miniature SIMT instruction set executed by the
// simulator.
//
// Kernels are not real PTX/SASS programs: each kernel carries a generated
// "loop body" of Instr descriptors that every thread iterates a fixed
// number of times. The descriptors carry exactly the information the
// timing model needs — operation class, dependence on the previous
// instruction, and memory behaviour — and nothing else, which keeps
// instruction issue extremely cheap.
package isa

import "fmt"

// Op is the operation class of an instruction.
type Op uint8

// Operation classes. The split follows what the timing and power models
// distinguish: integer/float ALU, special function unit, the three memory
// spaces, barriers and control flow.
const (
	OpIAlu Op = iota // integer arithmetic/logic
	OpFAlu           // single-precision floating point
	OpSFU            // transcendental / special function
	OpLdGlobal
	OpStGlobal
	OpLdShared
	OpStShared
	OpBarrier
	OpBranch
	numOps
)

var opNames = [numOps]string{
	"ialu", "falu", "sfu", "ld.global", "st.global", "ld.shared", "st.shared", "bar", "bra",
}

// String returns the assembly-style mnemonic of the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsGlobalMem reports whether the op accesses device (global) memory.
func (o Op) IsGlobalMem() bool { return o == OpLdGlobal || o == OpStGlobal }

// IsSharedMem reports whether the op accesses the SM scratchpad.
func (o Op) IsSharedMem() bool { return o == OpLdShared || o == OpStShared }

// IsMem reports whether the op is any memory access.
func (o Op) IsMem() bool { return o.IsGlobalMem() || o.IsSharedMem() }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o == OpStGlobal || o == OpStShared }

// Instr is one instruction descriptor in a kernel's loop body.
//
// Memory instructions generate addresses as a pure function of
// (warp identity, iteration, instruction index), so replaying a warp is
// deterministic regardless of scheduling order. Reuse selects between a
// small hot region (cache-friendly) and the kernel's full streaming
// footprint; Transactions is the post-coalescing transaction count for a
// fully active warp.
type Instr struct {
	Op            Op
	DependsOnPrev bool // true: must wait for the previous result latency

	// Memory behaviour (global memory ops only).
	Transactions uint8 // coalesced 128B transactions per warp access, 1..WarpSize
	Reuse        bool  // address falls in the kernel's hot region

	// Control behaviour (branch ops only).
	Divergent bool // branch deactivates some lanes for the rest of the iter
}

// Validate reports whether the descriptor is well formed.
func (in Instr) Validate() error {
	if in.Op >= numOps {
		return fmt.Errorf("isa: invalid op %d", uint8(in.Op))
	}
	if in.Op.IsGlobalMem() {
		if in.Transactions == 0 || in.Transactions > 32 {
			return fmt.Errorf("isa: %v has %d transactions, want 1..32", in.Op, in.Transactions)
		}
	} else if in.Transactions != 0 {
		return fmt.Errorf("isa: %v must not set Transactions", in.Op)
	}
	if in.Divergent && in.Op != OpBranch {
		return fmt.Errorf("isa: %v must not set Divergent", in.Op)
	}
	return nil
}
