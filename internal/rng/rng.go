// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator must be bit-for-bit reproducible across runs and across
// machines: every stochastic decision (address generation, divergence,
// instruction-mix jitter) is drawn from an explicitly seeded Source, never
// from math/rand's global state. Sources can be forked into independent
// streams so that, for example, every warp owns its own address stream and
// the result does not depend on warp interleaving.
package rng

// Source is a deterministic 64-bit PRNG (splitmix64 core). The zero value
// is a valid source seeded with 0; prefer New for an explicit seed.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are statistically independent for simulation purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next value in the stream (splitmix64 step).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Fork derives an independent child stream from this source and the given
// stream identifier. Forking does not advance the parent stream, so the
// set of children is a pure function of (parent seed, stream id).
func (s *Source) Fork(stream uint64) *Source {
	return New(Mix(s.state, stream))
}

// Mix combines two 64-bit values into a well-scrambled seed. It is used to
// derive per-warp and per-instruction streams from structural identifiers
// so that results do not depend on simulation event ordering.
func Mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 scrambles a single 64-bit value (splitmix64 finalizer). It is the
// stateless companion of Source for pure-function address generation.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
