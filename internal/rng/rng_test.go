package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestForkIndependence(t *testing.T) {
	parent := New(11)
	before := parent.state
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if parent.state != before {
		t.Fatal("Fork advanced the parent stream")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked streams with distinct ids start identically")
	}
	// Forking again with the same id reproduces the same child stream.
	if parent.Fork(1).Uint64() != New(Mix(11, 1)).Uint64() {
		t.Fatal("Fork is not a pure function of (seed, stream)")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(0x1234_5678_9abc_def0)
	flipped := Hash64(0x1234_5678_9abc_def1)
	diff := base ^ flipped
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 || bits > 48 {
		t.Fatalf("Hash64 avalanche too weak: %d differing bits", bits)
	}
}

func TestMixCommutesNowhere(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix(1,2) == Mix(2,1): ordering information lost")
	}
}

func TestQuickUint64NoShortCycles(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		first := s.Uint64()
		for i := 0; i < 64; i++ {
			if s.Uint64() == first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			if v := s.Intn(m); v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
