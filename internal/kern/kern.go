// Package kern models GPU kernels: their static resource demands, grid
// geometry, and a generated SIMT loop body that the simulator executes.
//
// A Profile is a behavioural description (instruction mix, dependence
// density, divergence, coalescing quality, cache reuse, barrier cadence,
// phase behaviour). Build expands a Profile into a concrete Kernel whose
// loop body is a deterministic function of the profile and a seed, so two
// simulations of the same workload are identical.
package kern

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
)

// Class is the coarse workload classification. ClassCompute and
// ClassMemory are the paper's (Section 4.2, Figure 7 groups pairs into
// C+C, C+M and M+M); ClassInfer and ClassRT extend the taxonomy to the
// open-world behavioural classes (serving-style inference with a
// latency SLO, real-time periodic with a hard deadline).
type Class uint8

const (
	// ClassCompute marks kernels limited by issue slots and ALU latency.
	ClassCompute Class = iota
	// ClassMemory marks kernels limited by memory bandwidth/latency.
	ClassMemory
	// ClassInfer marks serving-style inference kernels:
	// memory-bandwidth-bound, phase-bursty, carrying a latency SLO.
	ClassInfer
	// ClassRT marks real-time periodic kernels with a hard deadline.
	ClassRT
)

// String returns the class label: "C"/"M" matching the paper's figure
// labels, "I"/"R" for the open-world classes.
func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "C"
	case ClassInfer:
		return "I"
	case ClassRT:
		return "R"
	default:
		return "M"
	}
}

// Profile describes a kernel's behaviour and shape.
type Profile struct {
	Name  string
	Class Class

	// Program shape.
	BodyInstrs int // instructions per loop iteration (before barriers)
	Iterations int // loop iterations per thread

	// Instruction mix, as fractions of BodyInstrs. The remainder after
	// memory/SFU/shared fractions is integer+float ALU work.
	FracGlobalMem float64 // global loads+stores
	FracStore     float64 // portion of global accesses that are stores
	FracShared    float64 // shared-memory accesses
	FracSFU       float64 // special-function ops

	// Timing behaviour.
	DepDensity     float64 // P(instruction depends on the previous one)
	DivergenceFrac float64 // mean fraction of lanes idled by divergence
	CoalesceDegree float64 // mean 128B transactions per warp access (1=ideal)
	ReuseFrac      float64 // P(global access falls in the hot region)

	// Memory footprint.
	HotBytes       int // cache-friendly region (per kernel)
	FootprintBytes int // streaming region (per kernel)

	// Barrier cadence: a barrier every BarrierEvery body instructions
	// (0 disables barriers). Kernels with inter-thread tiling (sgemm,
	// stencil) synchronize often; streaming kernels never do.
	BarrierEvery int

	// Phase behaviour: the kernel alternates between its base mix and a
	// memory-boosted mix every PhasePeriod iterations (0 disables).
	// This produces the epoch-to-epoch IPC variance that motivates the
	// paper's history/elastic/rollover schemes (Section 3.4).
	PhasePeriod   int
	PhaseMemBoost float64 // additive global-mem fraction during the phase

	// Geometry and static resources.
	ThreadsPerTB   int
	RegsPerThread  int // 4-byte registers per thread
	SharedMemPerTB int // bytes of scratchpad per TB
	GridTBs        int // TBs per launch
}

// Validate reports whether the profile is self-consistent.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("kern: profile needs a name")
	case p.BodyInstrs < 2:
		return fmt.Errorf("kern: %s: BodyInstrs %d < 2", p.Name, p.BodyInstrs)
	case p.Iterations <= 0:
		return fmt.Errorf("kern: %s: Iterations must be positive", p.Name)
	case p.FracGlobalMem < 0 || p.FracShared < 0 || p.FracSFU < 0:
		return fmt.Errorf("kern: %s: negative mix fraction", p.Name)
	case p.FracGlobalMem+p.FracShared+p.FracSFU > 0.95:
		return fmt.Errorf("kern: %s: mix fractions sum to >0.95", p.Name)
	case p.FracStore < 0 || p.FracStore > 1:
		return fmt.Errorf("kern: %s: FracStore out of [0,1]", p.Name)
	case p.DepDensity < 0 || p.DepDensity > 1:
		return fmt.Errorf("kern: %s: DepDensity out of [0,1]", p.Name)
	case p.DivergenceFrac < 0 || p.DivergenceFrac > 0.9:
		return fmt.Errorf("kern: %s: DivergenceFrac out of [0,0.9]", p.Name)
	case p.CoalesceDegree < 1 || p.CoalesceDegree > 32:
		return fmt.Errorf("kern: %s: CoalesceDegree out of [1,32]", p.Name)
	case p.ReuseFrac < 0 || p.ReuseFrac > 1:
		return fmt.Errorf("kern: %s: ReuseFrac out of [0,1]", p.Name)
	case p.HotBytes <= 0 || p.FootprintBytes <= 0:
		return fmt.Errorf("kern: %s: footprints must be positive", p.Name)
	case p.BarrierEvery < 0:
		return fmt.Errorf("kern: %s: BarrierEvery must be >= 0", p.Name)
	case p.ThreadsPerTB <= 0 || p.ThreadsPerTB%32 != 0 || p.ThreadsPerTB > 1024:
		return fmt.Errorf("kern: %s: ThreadsPerTB %d invalid", p.Name, p.ThreadsPerTB)
	case p.RegsPerThread <= 0 || p.RegsPerThread > 255:
		return fmt.Errorf("kern: %s: RegsPerThread %d invalid", p.Name, p.RegsPerThread)
	case p.SharedMemPerTB < 0:
		return fmt.Errorf("kern: %s: SharedMemPerTB negative", p.Name)
	case p.GridTBs <= 0:
		return fmt.Errorf("kern: %s: GridTBs must be positive", p.Name)
	case p.PhasePeriod < 0 || p.PhaseMemBoost < 0:
		return fmt.Errorf("kern: %s: phase parameters must be >= 0", p.Name)
	}
	return nil
}

// Resources is the static per-TB resource demand used by SM admission.
type Resources struct {
	Threads  int
	RegBytes int
	ShmBytes int
	CtxBytes int // architectural context moved by a partial context switch
}

// Kernel is an executable kernel instance: a profile expanded into a
// concrete loop body plus identity used for address-space separation.
type Kernel struct {
	ID      int
	Profile Profile

	// Body is the per-iteration instruction sequence, shared by all
	// threads. BodyAlt is the memory-boosted variant used during phases.
	Body    []isa.Instr
	BodyAlt []isa.Instr

	seed uint64
}

// Build expands a profile into a Kernel. The body is generated with a
// deterministic stream derived from seed, so identical (profile, seed)
// pairs produce identical kernels.
func Build(id int, p Profile, seed uint64) (*Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := &Kernel{ID: id, Profile: p, seed: seed}
	k.Body = generateBody(p, p.FracGlobalMem, rng.New(rng.Mix(seed, uint64(id)*2+1)))
	if p.PhasePeriod > 0 {
		boosted := p.FracGlobalMem + p.PhaseMemBoost
		if max := 0.95 - p.FracShared - p.FracSFU; boosted > max {
			boosted = max
		}
		k.BodyAlt = generateBody(p, boosted, rng.New(rng.Mix(seed, uint64(id)*2+2)))
	} else {
		k.BodyAlt = k.Body
	}
	return k, nil
}

// MustBuild is Build for static workload tables; it panics on invalid
// profiles, which indicates a programming error in the table itself.
func MustBuild(id int, p Profile, seed uint64) *Kernel {
	k, err := Build(id, p, seed)
	if err != nil {
		panic(err)
	}
	return k
}

// generateBody lays out one loop iteration. Instruction kinds are placed
// by thresholding a deterministic stream so the realized mix converges to
// the profile's fractions; barriers are inserted at the configured cadence.
func generateBody(p Profile, fracMem float64, src *rng.Source) []isa.Instr {
	body := make([]isa.Instr, 0, p.BodyInstrs+4)
	for i := 0; i < p.BodyInstrs; i++ {
		if p.BarrierEvery > 0 && i > 0 && i%p.BarrierEvery == 0 {
			body = append(body, isa.Instr{Op: isa.OpBarrier})
		}
		in := isa.Instr{DependsOnPrev: src.Float64() < p.DepDensity}
		r := src.Float64()
		switch {
		case r < fracMem:
			if src.Float64() < p.FracStore {
				in.Op = isa.OpStGlobal
			} else {
				in.Op = isa.OpLdGlobal
			}
			in.Transactions = sampleTransactions(p.CoalesceDegree, src)
			in.Reuse = src.Float64() < p.ReuseFrac
		case r < fracMem+p.FracShared:
			if src.Float64() < 0.5 {
				in.Op = isa.OpLdShared
			} else {
				in.Op = isa.OpStShared
			}
		case r < fracMem+p.FracShared+p.FracSFU:
			in.Op = isa.OpSFU
		case p.DivergenceFrac > 0 && src.Float64() < 0.08:
			in.Op = isa.OpBranch
			in.Divergent = src.Float64() < 0.5
			in.DependsOnPrev = true
		case src.Float64() < 0.5:
			in.Op = isa.OpFAlu
		default:
			in.Op = isa.OpIAlu
		}
		body = append(body, in)
	}
	return body
}

// sampleTransactions draws a per-instruction transaction count whose mean
// matches the profile's coalescing degree: perfectly coalesced kernels
// always produce 1, scattered kernels mix small and large counts.
func sampleTransactions(mean float64, src *rng.Source) uint8 {
	if mean <= 1 {
		return 1
	}
	// Draw uniformly from [1, 2*mean-1] so E[t] == mean.
	hi := int(2*mean) - 1
	if hi < 1 {
		hi = 1
	}
	t := 1 + src.Intn(hi)
	if t > 32 {
		t = 32
	}
	return uint8(t)
}

// WarpsPerTB returns the number of 32-thread warps per thread block.
func (k *Kernel) WarpsPerTB() int { return (k.Profile.ThreadsPerTB + 31) / 32 }

// BodyFor returns the instruction body a warp executes on the given loop
// iteration, honouring the kernel's phase behaviour.
func (k *Kernel) BodyFor(iter int) []isa.Instr {
	p := k.Profile
	if p.PhasePeriod <= 0 {
		return k.Body
	}
	// Alternate base/boosted every PhasePeriod iterations.
	if (iter/p.PhasePeriod)%2 == 1 {
		return k.BodyAlt
	}
	return k.Body
}

// TBResources returns the static per-TB demand.
func (k *Kernel) TBResources() Resources {
	p := k.Profile
	return Resources{
		Threads:  p.ThreadsPerTB,
		RegBytes: p.ThreadsPerTB * p.RegsPerThread * 4,
		ShmBytes: p.SharedMemPerTB,
		CtxBytes: p.ThreadsPerTB * (p.RegsPerThread*4 + 16), // regs + PC/pred metadata
	}
}

// InstrsPerThread returns the total dynamic thread-instruction count of
// one thread over the whole kernel (used for QoS goal translation and
// sanity checks; barriers are counted like the paper counts them, as
// executed instructions).
func (k *Kernel) InstrsPerThread() int64 {
	// Phases alternate between two bodies of equal length, so either
	// body's length is exact.
	return int64(len(k.Body)) * int64(k.Profile.Iterations)
}

// AddrBase returns the base of this kernel's address space. Kernels get
// disjoint 1TB windows so they contend in caches without aliasing.
func (k *Kernel) AddrBase() uint64 { return uint64(k.ID+1) << 40 }

// GlobalAddr computes the deterministic address of a global access by
// (warp global id, iteration, pc, transaction index). Reuse accesses fall
// in the hot region; streaming accesses walk the full footprint.
func (k *Kernel) GlobalAddr(warpGID uint64, iter, pc, tx int, reuse bool) uint64 {
	h := rng.Hash64(k.seed ^ warpGID<<32 ^ uint64(iter)<<16 ^ uint64(pc)<<4 ^ uint64(tx))
	region := uint64(k.Profile.FootprintBytes)
	if reuse {
		region = uint64(k.Profile.HotBytes)
	}
	// Align to 128B transactions.
	off := (h % region) &^ 127
	return k.AddrBase() + off
}

// String implements fmt.Stringer.
func (k *Kernel) String() string {
	return fmt.Sprintf("%s(#%d,%s)", k.Profile.Name, k.ID, k.Profile.Class)
}
