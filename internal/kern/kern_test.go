package kern

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// testProfile returns a small valid profile for tests.
func testProfile() Profile {
	return Profile{
		Name: "test", Class: ClassCompute,
		BodyInstrs: 20, Iterations: 5,
		FracGlobalMem: 0.2, FracStore: 0.3, FracShared: 0.1, FracSFU: 0.05,
		DepDensity: 0.4, DivergenceFrac: 0.1,
		CoalesceDegree: 2.0, ReuseFrac: 0.5,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		BarrierEvery: 8,
		ThreadsPerTB: 64, RegsPerThread: 32, SharedMemPerTB: 1 << 10, GridTBs: 8,
	}
}

func TestBuildValidProfile(t *testing.T) {
	k, err := Build(0, testProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Body) < 20 {
		t.Fatalf("body has %d instrs, want >= BodyInstrs", len(k.Body))
	}
	for i, in := range k.Body {
		if err := in.Validate(); err != nil {
			t.Fatalf("body[%d] invalid: %v", i, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := Build(0, testProfile(), 7)
	b, _ := Build(0, testProfile(), 7)
	if len(a.Body) != len(b.Body) {
		t.Fatal("same (profile, seed) produced different body lengths")
	}
	for i := range a.Body {
		if a.Body[i] != b.Body[i] {
			t.Fatalf("same (profile, seed) diverged at instr %d", i)
		}
	}
	c, _ := Build(0, testProfile(), 8)
	same := true
	for i := range a.Body {
		if i < len(c.Body) && a.Body[i] != c.Body[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical bodies")
	}
}

func TestValidateRejections(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"tiny body", func(p *Profile) { p.BodyInstrs = 1 }},
		{"zero iterations", func(p *Profile) { p.Iterations = 0 }},
		{"mix over 0.95", func(p *Profile) { p.FracGlobalMem = 0.9; p.FracShared = 0.2 }},
		{"negative frac", func(p *Profile) { p.FracSFU = -0.1 }},
		{"dep density 1.5", func(p *Profile) { p.DepDensity = 1.5 }},
		{"divergence 0.95", func(p *Profile) { p.DivergenceFrac = 0.95 }},
		{"coalesce 0.5", func(p *Profile) { p.CoalesceDegree = 0.5 }},
		{"coalesce 40", func(p *Profile) { p.CoalesceDegree = 40 }},
		{"zero hot", func(p *Profile) { p.HotBytes = 0 }},
		{"threads not warp multiple", func(p *Profile) { p.ThreadsPerTB = 65 }},
		{"threads over 1024", func(p *Profile) { p.ThreadsPerTB = 2048 }},
		{"zero regs", func(p *Profile) { p.RegsPerThread = 0 }},
		{"zero grid", func(p *Profile) { p.GridTBs = 0 }},
		{"negative phase", func(p *Profile) { p.PhasePeriod = -1 }},
	}
	for _, m := range muts {
		p := testProfile()
		m.mut(&p)
		if _, err := Build(0, p, 1); err == nil {
			t.Errorf("%s: Build accepted invalid profile", m.name)
		}
	}
}

func TestBodyMixConvergence(t *testing.T) {
	p := testProfile()
	p.BodyInstrs = 4000
	p.BarrierEvery = 0
	k, err := Build(0, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var mem, shared int
	for _, in := range k.Body {
		if in.Op.IsGlobalMem() {
			mem++
		}
		if in.Op.IsSharedMem() {
			shared++
		}
	}
	memFrac := float64(mem) / float64(len(k.Body))
	if memFrac < 0.16 || memFrac > 0.24 {
		t.Errorf("global-mem fraction %v, want ~0.2", memFrac)
	}
	sharedFrac := float64(shared) / float64(len(k.Body))
	if sharedFrac < 0.07 || sharedFrac > 0.13 {
		t.Errorf("shared fraction %v, want ~0.1", sharedFrac)
	}
}

func TestBarrierCadence(t *testing.T) {
	k, _ := Build(0, testProfile(), 1)
	bars := 0
	for _, in := range k.Body {
		if in.Op == isa.OpBarrier {
			bars++
		}
	}
	// 20 instrs with a barrier every 8 → barriers inserted at i=8 and 16.
	if bars != 2 {
		t.Fatalf("body has %d barriers, want 2", bars)
	}
}

func TestNoBarriersWhenDisabled(t *testing.T) {
	p := testProfile()
	p.BarrierEvery = 0
	k, _ := Build(0, p, 1)
	for _, in := range k.Body {
		if in.Op == isa.OpBarrier {
			t.Fatal("barrier emitted with BarrierEvery=0")
		}
	}
}

func TestWarpsPerTB(t *testing.T) {
	p := testProfile()
	p.ThreadsPerTB = 96
	k, _ := Build(0, p, 1)
	if got := k.WarpsPerTB(); got != 3 {
		t.Fatalf("WarpsPerTB = %d, want 3", got)
	}
}

func TestTBResources(t *testing.T) {
	k, _ := Build(0, testProfile(), 1)
	r := k.TBResources()
	if r.Threads != 64 {
		t.Errorf("Threads = %d", r.Threads)
	}
	if r.RegBytes != 64*32*4 {
		t.Errorf("RegBytes = %d, want %d", r.RegBytes, 64*32*4)
	}
	if r.ShmBytes != 1<<10 {
		t.Errorf("ShmBytes = %d", r.ShmBytes)
	}
	if r.CtxBytes <= r.RegBytes {
		t.Errorf("CtxBytes = %d, want > RegBytes (includes metadata)", r.CtxBytes)
	}
}

func TestAddrSpaceSeparation(t *testing.T) {
	k0, _ := Build(0, testProfile(), 1)
	k1, _ := Build(1, testProfile(), 1)
	if k0.AddrBase() == k1.AddrBase() {
		t.Fatal("distinct kernel IDs share an address base")
	}
}

func TestGlobalAddrDeterministicAndInRange(t *testing.T) {
	k, _ := Build(0, testProfile(), 5)
	a1 := k.GlobalAddr(3, 2, 7, 0, false)
	a2 := k.GlobalAddr(3, 2, 7, 0, false)
	if a1 != a2 {
		t.Fatal("GlobalAddr is not deterministic")
	}
	f := func(gid uint64, iter, pc, tx uint8, reuse bool) bool {
		addr := k.GlobalAddr(gid, int(iter), int(pc), int(tx), reuse)
		off := addr - k.AddrBase()
		if addr < k.AddrBase() {
			return false
		}
		if addr%128 != 0 {
			return false // 128B transaction alignment
		}
		limit := uint64(k.Profile.FootprintBytes)
		if reuse {
			limit = uint64(k.Profile.HotBytes)
		}
		return off < limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseBodies(t *testing.T) {
	p := testProfile()
	p.PhasePeriod = 2
	p.PhaseMemBoost = 0.3
	p.BarrierEvery = 0
	p.BodyInstrs = 2000
	k, err := Build(0, p, 9)
	if err != nil {
		t.Fatal(err)
	}
	memFrac := func(body []isa.Instr) float64 {
		n := 0
		for _, in := range body {
			if in.Op.IsGlobalMem() {
				n++
			}
		}
		return float64(n) / float64(len(body))
	}
	base := memFrac(k.BodyFor(0))
	boost := memFrac(k.BodyFor(2))
	if boost <= base+0.15 {
		t.Fatalf("phase boost too small: base %v boosted %v", base, boost)
	}
	if &k.BodyFor(0)[0] != &k.BodyFor(1)[0] {
		t.Fatal("iterations 0 and 1 should share the base body")
	}
	if &k.BodyFor(0)[0] == &k.BodyFor(2)[0] {
		t.Fatal("iteration 2 should use the boosted body")
	}
}

func TestInstrsPerThread(t *testing.T) {
	k, _ := Build(0, testProfile(), 1)
	want := int64(len(k.Body)) * int64(k.Profile.Iterations)
	if got := k.InstrsPerThread(); got != want {
		t.Fatalf("InstrsPerThread = %d, want %d", got, want)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid profile")
		}
	}()
	p := testProfile()
	p.Name = ""
	MustBuild(0, p, 1)
}

func TestSampleTransactionsMean(t *testing.T) {
	p := testProfile()
	p.BodyInstrs = 5000
	p.FracGlobalMem = 0.5
	p.FracShared = 0
	p.FracSFU = 0
	p.BarrierEvery = 0
	p.CoalesceDegree = 4.0
	k, _ := Build(0, p, 11)
	var sum, n float64
	for _, in := range k.Body {
		if in.Op.IsGlobalMem() {
			sum += float64(in.Transactions)
			n++
		}
	}
	mean := sum / n
	if mean < 3.5 || mean > 4.5 {
		t.Fatalf("mean transactions %v, want ~4", mean)
	}
}
