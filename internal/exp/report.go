package exp

import (
	"fmt"
	"math"
	"time"
)

// PanicError wraps a panic recovered from an isolated sweep case, keeping
// the panic value and the goroutine stack for the failure report.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack travels separately so wrapped
// error chains stay one line.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// CaseError is one failed sweep case with its full coordinates, so a
// failure is attributable (which pair/trio, which goal, which attempt)
// without consulting the journal.
type CaseError struct {
	// Stage is the sweep stage label (usually the scheme name).
	Stage string
	// Index is the deterministic case index within the sweep grid.
	Index int
	// Case describes the case in grid coordinates, e.g.
	// "pair[3] sgemm+lbm @0.50".
	Case string
	// Attempts counts how many times the case was tried before giving up.
	Attempts int
	// Err is the final attempt's error.
	Err error
	// Stack is the recovered goroutine stack when the failure was a
	// panic, nil otherwise.
	Stack []byte
}

func (e *CaseError) Error() string {
	suffix := ""
	if e.Attempts > 1 {
		suffix = fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	return fmt.Sprintf("%s case %d (%s)%s: %v", e.Stage, e.Index, e.Case, suffix, e.Err)
}

func (e *CaseError) Unwrap() error { return e.Err }

// SweepReport summarizes how one sweep stage fared under the fault
// policy. Total = Completed + Skipped + len(Failed) always holds for a
// sweep that ran to the end (canceled sweeps return an error instead of a
// report).
type SweepReport struct {
	// Stage labels the sweep (usually the scheme name).
	Stage string
	// Total counts grid cases.
	Total int
	// Completed counts cases that produced a result this run.
	Completed int
	// Skipped counts cases restored from the checkpoint journal.
	Skipped int
	// Retried counts completed cases that needed more than one attempt.
	Retried int
	// Failed lists cases that exhausted their attempts, in ascending
	// case-index order.
	Failed []*CaseError
}

// Err returns nil when every case completed and otherwise a *SweepError
// aggregating the failures.
func (r *SweepReport) Err() error {
	if r == nil || len(r.Failed) == 0 {
		return nil
	}
	return &SweepError{Report: r}
}

// Summary renders a one-line account of the sweep for logs.
func (r *SweepReport) Summary() string {
	s := fmt.Sprintf("%d/%d cases ok", r.Completed+r.Skipped, r.Total)
	if r.Skipped > 0 {
		s += fmt.Sprintf(", %d resumed from journal", r.Skipped)
	}
	if r.Retried > 0 {
		s += fmt.Sprintf(", %d retried", r.Retried)
	}
	if len(r.Failed) > 0 {
		s += fmt.Sprintf(", %d FAILED", len(r.Failed))
	}
	return s
}

// SweepError reports a sweep that finished with failed cases. The partial
// results are still returned alongside it; callers decide whether partial
// coverage is acceptable (cmd/sweep emits the completed rows, the figure
// drivers reject incomplete grids).
type SweepError struct {
	Report *SweepReport
}

func (e *SweepError) Error() string {
	r := e.Report
	msg := fmt.Sprintf("exp: sweep %s: %d/%d cases failed", r.Stage, len(r.Failed), r.Total)
	const show = 3
	for i, ce := range r.Failed {
		if i == show {
			msg += fmt.Sprintf("; and %d more", len(r.Failed)-show)
			break
		}
		msg += "; " + ce.Error()
	}
	return msg
}

// Unwrap exposes the individual case errors to errors.Is/As, so callers
// can test for e.g. context.DeadlineExceeded across the whole sweep.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Report.Failed))
	for i, ce := range e.Report.Failed {
		errs[i] = ce
	}
	return errs
}

// sweepRate derives the progress-event rate fields. The first case can
// complete arbitrarily soon after the sweep clock starts (notably when
// restored from a warm cache), and a naive done/elapsed division then
// reports +Inf cases/s and a garbage ETA — so rates are suppressed until
// a full millisecond of wall time has accumulated, and non-finite values
// are clamped to the "unknown" zero just in case.
func sweepRate(done, total int, elapsed time.Duration) (casesPerSec float64, eta time.Duration) {
	if done <= 0 || elapsed < time.Millisecond {
		return 0, 0
	}
	casesPerSec = float64(done) / elapsed.Seconds()
	if casesPerSec <= 0 || math.IsInf(casesPerSec, 0) || math.IsNaN(casesPerSec) {
		return 0, 0
	}
	if remaining := total - done; remaining > 0 {
		eta = time.Duration(float64(remaining) / casesPerSec * float64(time.Second))
	}
	return casesPerSec, eta
}
