package exp

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestPairSweepWritesPerCaseTraces runs a small pair sweep on a parallel
// worker pool with per-case tracing on. Each case gets its own Tracer
// (tracers are deliberately unsynchronized), so this test doubles as the
// race-detector coverage for tracing under the concurrent sweep engine —
// `make ci` runs this package with -race.
func TestPairSweepWritesPerCaseTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	dir := t.TempDir()
	r, err := NewRunner(4,
		WithSessionOptions(core.WithWindow(20_000)),
		WithTraceDir(dir, trace.FormatJSONL))
	if err != nil {
		t.Fatal(err)
	}
	pairs := []workloads.Pair{
		{QoS: "sgemm", NonQoS: "lbm"},
		{QoS: "mri-q", NonQoS: "stencil"},
	}
	goals := []float64{0.3, 0.5}
	cases, err := r.PairSweep(context.Background(), pairs, goals, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Res == nil {
			t.Fatalf("case %s/%s g=%.2f failed", c.Pair.QoS, c.Pair.NonQoS, c.Goal)
		}
	}

	files, err := filepath.Glob(filepath.Join(dir, "*"+trace.FormatJSONL.Ext()))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pairs) * len(goals); len(files) != want {
		t.Fatalf("%d trace files written, want %d (one per case)", len(files), want)
	}
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("trace file %s is empty", f)
		}
	}
}

// TestTraceDirPropagatesThroughWith checks that a derived runner (the
// sweep engine clones runners via With for config overrides) keeps the
// trace destination.
func TestTraceDirPropagatesThroughWith(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRunner(1, WithTraceDir(dir, trace.FormatChrome))
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.With(core.WithWindow(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if d.traceDir != dir || d.traceFormat != trace.FormatChrome {
		t.Fatal("With dropped the trace configuration")
	}
}
