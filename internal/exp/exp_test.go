package exp

import (
	"context"
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

func TestGoalsSweep(t *testing.T) {
	g := Goals()
	if len(g) != 10 {
		t.Fatalf("%d goals, want 10 (50%%..95%% step 5%%)", len(g))
	}
	if math.Abs(g[0]-0.50) > 1e-9 || math.Abs(g[9]-0.95) > 1e-9 {
		t.Fatalf("goal sweep endpoints %v..%v", g[0], g[9])
	}
	g2 := TwoQoSGoals()
	if len(g2) != 10 || math.Abs(g2[0]-0.25) > 1e-9 || math.Abs(g2[9]-0.70) > 1e-9 {
		t.Fatalf("two-QoS sweep wrong: %v", g2)
	}
}

func fakeCase(goal float64, ratio, nq float64) PairCase {
	reached := ratio >= 1
	return PairCase{
		Pair: workloads.Pair{QoS: "sgemm", NonQoS: "lbm"},
		Goal: goal,
		Res: &core.Result{
			AllReached: reached,
			Kernels: []core.KernelResult{
				{Name: "sgemm", IsQoS: true, GoalIPC: 100, IPC: ratio * 100,
					GoalRatio: ratio, Reached: reached},
				{Name: "lbm", NormThroughput: nq},
			},
		},
	}
}

func TestPairReducers(t *testing.T) {
	cases := []PairCase{
		fakeCase(0.5, 1.02, 0.6),
		fakeCase(0.5, 0.97, 0.4),
		fakeCase(0.9, 1.01, 0.2),
		fakeCase(0.9, 1.03, 0.3),
	}
	goals := []float64{0.5, 0.9}
	reach := PairReachByGoal(cases, goals)
	if reach[0.5] != 0.5 || reach[0.9] != 1.0 {
		t.Fatalf("reach = %v", reach)
	}
	tput := PairNonQoSThroughputByGoal(cases, goals)
	if tput[0.5] != 0.6 { // only the successful case counts
		t.Fatalf("tput[0.5] = %v", tput[0.5])
	}
	if math.Abs(tput[0.9]-0.25) > 1e-9 {
		t.Fatalf("tput[0.9] = %v", tput[0.9])
	}
	over := PairOvershootByGoal(cases, goals)
	if math.Abs(over[0.9]-1.02) > 1e-9 {
		t.Fatalf("overshoot[0.9] = %v", over[0.9])
	}
	if got := AvgReach(cases); got != 0.75 {
		t.Fatalf("avg reach = %v", got)
	}
}

func TestMissBuckets(t *testing.T) {
	cases := []PairCase{
		fakeCase(0.5, 1.013, 0),  // success, overshoot 1.3%
		fakeCase(0.5, 0.995, 0),  // 0-1%
		fakeCase(0.5, 0.96, 0),   // 1-5%
		fakeCase(0.5, 0.92, 0),   // 5-10%
		fakeCase(0.5, 0.85, 0),   // 10-20%
		fakeCase(0.5, 0.50, 0),   // 20+%
		fakeCase(0.5, 0.9899, 0), // boundary: 1.01% → bucket 1-5%
	}
	b := Misses(cases)
	if b.Total != 7 || b.Successes != 1 || b.Failures != 6 {
		t.Fatalf("counts: %+v", b)
	}
	want := [5]int{1, 2, 1, 1, 1}
	if b.Counts != want {
		t.Fatalf("buckets = %v, want %v", b.Counts, want)
	}
	if math.Abs(b.MeanOvershoot-0.013) > 1e-9 {
		t.Fatalf("mean overshoot = %v", b.MeanOvershoot)
	}
}

func TestReachByQoSKernel(t *testing.T) {
	cases := []PairCase{
		fakeCase(0.5, 1.02, 0),
		fakeCase(0.7, 0.9, 0),
	}
	perK, perC, err := ReachByQoSKernel(cases)
	if err != nil {
		t.Fatal(err)
	}
	if perK["sgemm"] != 0.5 {
		t.Fatalf("per-kernel reach = %v", perK)
	}
	if perC["C+M"] != 0.5 {
		t.Fatalf("per-class reach = %v", perC)
	}
}

func TestStudyReduction(t *testing.T) {
	r, err := NewRunner(1, WithSessionOptions(core.WithWindow(40_000)))
	if err != nil {
		t.Fatal(err)
	}
	full := FullStudy(r)
	if len(full.Pairs) != 90 || len(full.Trios) != 60 {
		t.Fatalf("full study %d pairs / %d trios", len(full.Pairs), len(full.Trios))
	}
	red := ReducedStudy(r, 10)
	if len(red.Pairs) != 9 {
		t.Fatalf("reduced pairs = %d, want 9", len(red.Pairs))
	}
	if len(red.Goals) != 5 {
		t.Fatalf("reduced goals = %d, want 5", len(red.Goals))
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note"},
	}
	out := tbl.String()
	if out == "" || len(out) < 20 {
		t.Fatal("table did not render")
	}
	if got := Table1(config.Base()).String(); got == "" {
		t.Fatal("Table 1 did not render")
	}
}

// TestPairSweepSmoke runs a tiny real sweep end to end.
func TestPairSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := config.Base()
	cfg.NumSMs = 4
	s, err := core.NewSession(core.WithGPU(cfg), core.WithWindow(30_000))
	if err != nil {
		t.Fatal(err)
	}
	pairs := []workloads.Pair{{QoS: "sgemm", NonQoS: "lbm"}}
	goals := []float64{0.4}
	cases, err := PairSweep(context.Background(), s, pairs, goals, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 {
		t.Fatalf("%d cases", len(cases))
	}
	if cases[0].QoSKernel().Name != "sgemm" || cases[0].NonQoSKernel().Name != "lbm" {
		t.Fatal("case kernels mislabeled")
	}
}

// TestTrioSweepSmoke runs one trio end to end with 2 QoS kernels.
func TestTrioSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := config.Base()
	cfg.NumSMs = 4
	s, _ := core.NewSession(core.WithGPU(cfg), core.WithWindow(30_000))
	trios := []workloads.Trio{{A: "sgemm", B: "mri-q", C: "lbm"}}
	cases, err := TrioSweep(context.Background(), s, trios, []float64{0.25}, 2, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases[0].QoSGoals) != 2 {
		t.Fatal("2-QoS trio carries wrong goal count")
	}
	if _, err := TrioSweep(context.Background(), s, trios, []float64{0.25}, 3, core.SchemeRollover, nil); err == nil {
		t.Fatal("accepted nQoS=3")
	}
}
