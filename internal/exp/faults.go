package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/retry"
)

// FaultSpec scripts one injected fault for a single attempt of a case.
// The zero value is a clean attempt, so a one-element script models a
// transient fault: attempt 1 fails, every later attempt succeeds.
type FaultSpec struct {
	// Delay sleeps (context-aware) before the outcome below; combined
	// with the sweep's per-case deadline it models a hung case.
	Delay time.Duration
	// Panic crashes the run, exercising the engine's panic isolation.
	Panic bool
	// Err fails the run with this error (ignored when Panic is set).
	Err error
}

// ScriptedFaults is the standard core.FaultInjector for tests: a script
// keyed by deterministic case index, consumed one entry per attempt.
// Attempts beyond a case's script — and cases without one — run clean.
// Because decisions are keyed on the case index carried by the context
// (not call order), injection is deterministic no matter how the worker
// pool schedules cases.
type ScriptedFaults struct {
	mu     sync.Mutex
	script map[int][]FaultSpec
	seen   map[int]int
}

// NewScriptedFaults builds an injector from a per-case-index script.
func NewScriptedFaults(script map[int][]FaultSpec) *ScriptedFaults {
	return &ScriptedFaults{script: script, seen: make(map[int]int)}
}

// Attempts reports how many times the case was attempted so far.
func (f *ScriptedFaults) Attempts(index int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[index]
}

// Inject implements core.FaultInjector.
func (f *ScriptedFaults) Inject(ctx context.Context) error {
	index, ok := core.CaseIndexFromContext(ctx)
	if !ok {
		return nil // outside a sweep (e.g. an isolated baseline)
	}
	f.mu.Lock()
	attempt := f.seen[index]
	f.seen[index]++
	var spec FaultSpec
	if s := f.script[index]; attempt < len(s) {
		spec = s[attempt]
	}
	f.mu.Unlock()

	if spec.Delay > 0 {
		if err := retry.Sleep(ctx, spec.Delay); err != nil {
			return err
		}
	}
	if spec.Panic {
		panic(fmt.Sprintf("exp: injected panic at case %d attempt %d", index, attempt+1))
	}
	return spec.Err
}
