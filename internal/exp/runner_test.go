package exp

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/retry"
	"repro/internal/workloads"
)

// testRunner builds a small-device runner sized for CI; extra runner
// options (WithFaultPolicy, WithTraceDir) apply after the base ones.
func testRunner(t *testing.T, workers int, ropts ...Option) *Runner {
	t.Helper()
	cfg := config.Base()
	cfg.NumSMs = 4
	opts := append([]Option{WithSessionOptions(core.WithGPU(cfg), core.WithWindow(30_000))}, ropts...)
	r, err := NewRunner(workers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerDefaults(t *testing.T) {
	r := testRunner(t, 0)
	if r.Workers() < 1 {
		t.Fatalf("Workers() = %d", r.Workers())
	}
	if r.GPUConfig().NumSMs != 4 || r.Window() != 30_000 {
		t.Fatal("runner did not propagate options to sessions")
	}
	if r.Session() == nil {
		t.Fatal("no session exposed")
	}
}

// TestPairSweepSerialParallelEquivalence is the engine's core guarantee:
// the parallel sweep produces results bit-identical to the serial
// reference implementation, in the same deterministic case order.
func TestPairSweepSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pairs := []workloads.Pair{
		{QoS: "sgemm", NonQoS: "lbm"},
		{QoS: "mri-q", NonQoS: "stencil"},
		{QoS: "lbm", NonQoS: "sgemm"},
	}
	goals := []float64{0.4, 0.7}
	ctx := context.Background()

	serialSession, err := core.NewSession(core.WithGPU(func() config.GPU {
		c := config.Base()
		c.NumSMs = 4
		return c
	}()), core.WithWindow(30_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := PairSweep(ctx, serialSession, pairs, goals, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}

	r := testRunner(t, 4)
	got, err := r.PairSweep(ctx, pairs, goals, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel pair sweep diverged from the serial reference")
	}
	// A second run over the same runner must also be identical (the
	// isolated cache must not change results, only speed).
	again, err := r.PairSweep(ctx, pairs, goals, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("repeat parallel sweep diverged")
	}
}

func TestTrioSweepSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	trios := []workloads.Trio{
		{A: "sgemm", B: "mri-q", C: "lbm"},
		{A: "lbm", B: "stencil", C: "sgemm"},
	}
	goals := []float64{0.3}
	ctx := context.Background()

	r := testRunner(t, 4)
	got, err := r.TrioSweep(ctx, trios, goals, 2, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TrioSweep(ctx, r.Session(), trios, goals, 2, core.SchemeRollover, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel trio sweep diverged from the serial reference")
	}
}

// TestPairSweepProgress checks the progress stream: monotonic Done, one
// event per case, final event at Done == Total.
func TestPairSweepProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pairs := []workloads.Pair{{QoS: "sgemm", NonQoS: "lbm"}}
	goals := []float64{0.4, 0.6, 0.8}
	var events []Progress
	r := testRunner(t, 2)
	_, err := r.PairSweep(context.Background(), pairs, goals, core.SchemeRollover,
		func(p Progress) { events = append(events, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(pairs)*len(goals) {
		t.Fatalf("%d progress events, want %d", len(events), len(pairs)*len(goals))
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != 3 {
			t.Fatalf("event %d = %+v", i, p)
		}
	}
	last := events[len(events)-1]
	if last.CasesPerSec <= 0 || last.ETA != 0 {
		t.Fatalf("final event rate/ETA: %+v", last)
	}
	ms := r.Metrics()
	if len(ms) != 1 || ms[0].Cases != 3 || ms[0].Stage != core.SchemeRollover.String() {
		t.Fatalf("metrics = %+v", ms)
	}
}

// TestPairSweepCancelMidSweep cancels from inside the first progress
// callback and expects a prompt context.Canceled, not a full sweep.
func TestPairSweepCancelMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pairs := []workloads.Pair{
		{QoS: "sgemm", NonQoS: "lbm"},
		{QoS: "mri-q", NonQoS: "stencil"},
		{QoS: "lbm", NonQoS: "sgemm"},
		{QoS: "stencil", NonQoS: "mri-q"},
	}
	goals := Goals()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	_, err := testRunner(t, 2).PairSweep(ctx, pairs, goals, core.SchemeRollover,
		func(p Progress) {
			done = p.Done
			cancel()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done >= len(pairs)*len(goals) {
		t.Fatal("sweep ran to completion despite cancellation")
	}
}

func TestPairSweepPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := testRunner(t, 2).PairSweep(ctx,
		[]workloads.Pair{{QoS: "sgemm", NonQoS: "lbm"}}, []float64{0.5},
		core.SchemeRollover, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTrioSweepRejectsBadNQoS(t *testing.T) {
	r := testRunner(t, 1)
	if _, err := r.TrioSweep(context.Background(),
		[]workloads.Trio{{A: "sgemm", B: "mri-q", C: "lbm"}},
		[]float64{0.3}, 3, core.SchemeRollover, nil); err == nil {
		t.Fatal("accepted nQoS=3")
	}
}

// TestRunnerWith checks derived runners apply extra options on top of the
// base ones — the mechanism the ablation drivers use.
func TestRunnerWith(t *testing.T) {
	r := testRunner(t, 2)
	big := config.Base() // 16 SMs, overrides the base 4-SM option
	d, err := r.With(core.WithGPU(big))
	if err != nil {
		t.Fatal(err)
	}
	if d.GPUConfig().NumSMs != 16 {
		t.Fatalf("derived runner has %d SMs, want 16", d.GPUConfig().NumSMs)
	}
	if d.Workers() != r.Workers() {
		t.Fatal("derived runner changed worker count")
	}
	if r.GPUConfig().NumSMs != 4 {
		t.Fatal("derivation mutated the base runner")
	}
}

// TestRunnerDo checks the one-off evaluation path the qosd daemon uses:
// Do borrows pool sessions (blocking when all are busy), isolates panics
// as *PanicError, and honors the fault policy's retry budget.
func TestRunnerDo(t *testing.T) {
	r := testRunner(t, 2, WithFaultPolicy(FaultPolicy{
		Retry: retry.Policy{MaxAttempts: 2, Seed: 11},
	}))
	ctx := context.Background()

	// Plain success sees a usable session.
	if err := r.Do(ctx, 0, func(_ context.Context, s *core.Session) error {
		if s.GPUConfig().NumSMs != 4 {
			t.Error("Do handed out a session with the wrong config")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A panic surfaces as a *PanicError value, not a crash.
	err := r.Do(ctx, 1, func(context.Context, *core.Session) error {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}

	// A transient failure is retried within the policy's budget.
	attempts := 0
	if err := r.Do(ctx, 2, func(context.Context, *core.Session) error {
		attempts++
		if attempts == 1 {
			return errors.New("transient")
		}
		return nil
	}); err != nil || attempts != 2 {
		t.Fatalf("retry path: err=%v attempts=%d", err, attempts)
	}

	// With every slot held, Do must block until ctx cancels.
	hold := make(chan struct{})
	release := make(chan struct{})
	for i := 0; i < r.Workers(); i++ {
		go r.Do(ctx, 3, func(context.Context, *core.Session) error {
			hold <- struct{}{}
			<-release
			return nil
		})
	}
	for i := 0; i < r.Workers(); i++ {
		<-hold
	}
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := r.Do(shortCtx, 4, func(context.Context, *core.Session) error { return nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated pool: err = %v, want DeadlineExceeded", err)
	}
	close(release)
}

// TestRunnerSharesIsolatedCache checks all worker sessions see each
// other's isolated baselines (singleflight across the pool).
func TestRunnerSharesIsolatedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r := testRunner(t, 3)
	ctx := context.Background()
	spec := core.KernelSpec{Workload: "sgemm"}
	a, err := r.sessions[0].IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.sessions[2].IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("worker sessions disagree on the isolated baseline")
	}
}
