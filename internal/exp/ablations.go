package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/workloads"
)

// AblateHistory reproduces the Section 4.8 history-adjustment ablation:
// Rollover with and without the α factor.
func AblateHistory(ctx context.Context, st Study) (*Table, error) {
	on, err := st.Runner.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeRollover, st.progress("history-on"))
	if err != nil {
		return nil, err
	}
	noHist, err := st.Runner.With(core.WithQoSOptions(qos.Options{DisableHistory: true}))
	if err != nil {
		return nil, err
	}
	off, err := noHist.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeRollover, st.progress("history-off"))
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Ablation 4.8b", Title: "History-based quota adjustment on/off (Rollover QoSreach)",
		Header: []string{"Goal", "History on", "History off"}}
	ron := PairReachByGoal(on, st.Goals)
	roff := PairReachByGoal(off, st.Goals)
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), pct(ron[g]), pct(roff[g])})
	}
	aOn, aOff := AvgReach(on), AvgReach(off)
	t.Rows = append(t.Rows, []string{"AVG", pct(aOn), pct(aOff)})
	if aOff > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("enabling history covers %.1f%% more cases (paper: +86.4%%)",
			100*(aOn-aOff)/aOff))
	}
	return t, nil
}

// AblateStatic reproduces the Section 4.8 static-resource-management
// ablation on M+M pairs: non-QoS throughput with and without run-time TB
// adjustment (paper: +13.3% with).
func AblateStatic(ctx context.Context, st Study) (*Table, error) {
	var mm []workloads.Pair
	for _, p := range st.Pairs {
		cls, err := workloads.PairClass(p.QoS, p.NonQoS)
		if err != nil {
			return nil, err
		}
		if cls == "M+M" {
			mm = append(mm, p)
		}
	}
	if len(mm) == 0 {
		return nil, fmt.Errorf("exp: study subset has no M+M pairs")
	}
	on, err := st.Runner.PairSweep(ctx, mm, st.Goals, core.SchemeRollover, st.progress("static-on"))
	if err != nil {
		return nil, err
	}
	noAdj, err := st.Runner.With(core.WithQoSOptions(qos.Options{DisableStaticAdjust: true}))
	if err != nil {
		return nil, err
	}
	off, err := noAdj.PairSweep(ctx, mm, st.Goals, core.SchemeRollover, st.progress("static-off"))
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Ablation 4.8c", Title: "Static TB adjustment on/off, M+M pairs (non-QoS throughput)",
		Header: []string{"Goal", "Adjust on", "Adjust off"}}
	ron := PairNonQoSThroughputByGoal(on, st.Goals)
	roff := PairNonQoSThroughputByGoal(off, st.Goals)
	var s0, s1 float64
	var n int
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), num(ron[g]), num(roff[g])})
		if ron[g] > 0 && roff[g] > 0 {
			s0 += ron[g]
			s1 += roff[g]
			n++
		}
	}
	if n > 0 && s1 > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured M+M gain from static management: %+.1f%% (paper: +13.3%%)",
			100*(s0/s1-1)))
	}
	return t, nil
}

// AblatePreemption reproduces the Section 4.8 preemption-overhead study:
// non-QoS throughput with real context-switch costs vs free preemption
// (paper: 1.93% overhead).
func AblatePreemption(ctx context.Context, st Study) (*Table, error) {
	withCost, err := st.Runner.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeRollover, st.progress("preempt-cost"))
	if err != nil {
		return nil, err
	}
	// Free preemption: rebuild with a zero-cost engine via config.
	cfg := st.Runner.GPUConfig()
	cfg.CtxSaveBWBytes = 1 << 30 // effectively instantaneous context moves
	cfg.SMDrainPenalty = 0
	free, err := st.Runner.With(core.WithGPU(cfg))
	if err != nil {
		return nil, err
	}
	noCost, err := free.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeRollover, st.progress("preempt-free"))
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Ablation 4.8a", Title: "Preemption overhead on non-QoS throughput (Rollover)",
		Header: []string{"Goal", "Real cost", "Free"}}
	rc := PairNonQoSThroughputByGoal(withCost, st.Goals)
	fr := PairNonQoSThroughputByGoal(noCost, st.Goals)
	var s0, s1 float64
	var n int
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), num(rc[g]), num(fr[g])})
		if rc[g] > 0 && fr[g] > 0 {
			s0 += rc[g]
			s1 += fr[g]
			n++
		}
	}
	if n > 0 && s1 > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured preemption overhead: %.2f%% (paper: 1.93%%)",
			100*(1-s0/s1)))
	}
	return t, nil
}

// AblateEpochLength sweeps the quota epoch length (the paper fixes 10K
// cycles citing prior work; this shows the sensitivity).
func AblateEpochLength(ctx context.Context, st Study, lengths []int64) (*Table, error) {
	if len(lengths) == 0 {
		lengths = []int64{5_000, 10_000, 20_000, 40_000}
	}
	t := &Table{ID: "Ablation epoch", Title: "Epoch length sensitivity (Rollover)",
		Header: []string{"Epoch", "QoSreach", "Non-QoS tput"}}
	for _, l := range lengths {
		cfg := st.Runner.GPUConfig()
		cfg.EpochLength = l
		r, err := st.Runner.With(core.WithGPU(cfg))
		if err != nil {
			return nil, err
		}
		cases, err := r.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeRollover, st.progress(fmt.Sprintf("epoch-%d", l)))
		if err != nil {
			return nil, err
		}
		tput := PairNonQoSThroughputByGoal(cases, st.Goals)
		var sum float64
		var n int
		for _, g := range st.Goals {
			if tput[g] > 0 {
				sum += tput[g]
				n++
			}
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(l), pct(AvgReach(cases)), num(avg)})
	}
	return t, nil
}

// AblateNonQoSInit sweeps the initial artificial IPC of non-QoS kernels
// (paper Section 3.5 claims minimal impact on the final outcome).
func AblateNonQoSInit(ctx context.Context, st Study, inits []float64) (*Table, error) {
	if len(inits) == 0 {
		inits = []float64{1, 8, 32, 128}
	}
	t := &Table{ID: "Ablation nq-init", Title: "Non-QoS initial IPC sensitivity (Rollover)",
		Header: []string{"Init IPC", "QoSreach", "Non-QoS tput"}}
	for _, init := range inits {
		r, err := st.Runner.With(core.WithQoSOptions(qos.Options{NonQoSInitIPC: init}))
		if err != nil {
			return nil, err
		}
		cases, err := r.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeRollover, st.progress(fmt.Sprintf("init-%.0f", init)))
		if err != nil {
			return nil, err
		}
		tput := PairNonQoSThroughputByGoal(cases, st.Goals)
		var sum float64
		var n int
		for _, g := range st.Goals {
			if tput[g] > 0 {
				sum += tput[g]
				n++
			}
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", init), pct(AvgReach(cases)), num(avg)})
	}
	return t, nil
}
