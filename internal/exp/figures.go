package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Table is one reproduced figure or table, ready to print.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Study configures how much of the full evaluation a figure driver runs.
// The paper's full study is 90 pairs x 10 goals (900 cases per scheme)
// and 60 trios x 10 goals; Reduced trims both axes for quick runs. All
// sweeps execute on the Runner's worker pool.
type Study struct {
	Runner *Runner
	Pairs  []workloads.Pair
	Trios  []workloads.Trio
	Goals  []float64 // pair/1-QoS-trio goal sweep
	Goals2 []float64 // 2-QoS-trio goal sweep
	// Progress receives sweep progress events for long runs (may be nil).
	Progress ProgressFunc

	// cache memoizes pair sweeps across figure drivers (Figures 7, 8a,
	// 9 and 14 all reduce the same Spart and Rollover sweeps).
	cache map[core.Scheme][]PairCase
}

// FullStudy returns the paper's complete evaluation configuration.
func FullStudy(r *Runner) Study {
	return Study{
		Runner: r,
		Pairs:  workloads.Pairs(),
		Trios:  workloads.Trios(),
		Goals:  Goals(),
		Goals2: TwoQoSGoals(),
		cache:  make(map[core.Scheme][]PairCase),
	}
}

// ReducedStudy returns a subsampled configuration sized for benchmarks:
// every k-th pair/trio and every other goal.
func ReducedStudy(r *Runner, k int) Study {
	if k < 1 {
		k = 1
	}
	st := FullStudy(r)
	st.Pairs = everyPair(st.Pairs, k)
	st.Trios = everyTrio(st.Trios, k)
	st.Goals = everyGoal(st.Goals, 2)
	st.Goals2 = everyGoal(st.Goals2, 2)
	return st
}

func everyPair(in []workloads.Pair, k int) []workloads.Pair {
	var out []workloads.Pair
	for i := 0; i < len(in); i += k {
		out = append(out, in[i])
	}
	return out
}

func everyTrio(in []workloads.Trio, k int) []workloads.Trio {
	var out []workloads.Trio
	for i := 0; i < len(in); i += k {
		out = append(out, in[i])
	}
	return out
}

func everyGoal(in []float64, k int) []float64 {
	var out []float64
	for i := 0; i < len(in); i += k {
		out = append(out, in[i])
	}
	return out
}

// progress relabels the sweep's events with a figure-specific stage name
// before forwarding them to the study's stream.
func (st Study) progress(stage string) ProgressFunc {
	if st.Progress == nil {
		return nil
	}
	return func(p Progress) {
		p.Stage = stage
		st.Progress(p)
	}
}

func pct(v float64) string       { return fmt.Sprintf("%.1f%%", 100*v) }
func num(v float64) string       { return fmt.Sprintf("%.3f", v) }
func goalLabel(g float64) string { return fmt.Sprintf("%.0f%%", 100*g) }

// schemeSweep runs the pair sweep for several schemes, memoizing results
// per scheme so successive figure drivers share them. The cache is keyed
// by scheme only: it is valid because a Study's runner, pair list and
// goal sweep are immutable once built.
func (st Study) schemeSweep(ctx context.Context, schemes ...core.Scheme) (map[core.Scheme][]PairCase, error) {
	out := make(map[core.Scheme][]PairCase, len(schemes))
	for _, sc := range schemes {
		if st.cache != nil {
			if cases, ok := st.cache[sc]; ok {
				out[sc] = cases
				continue
			}
		}
		cases, err := st.Runner.PairSweep(ctx, st.Pairs, st.Goals, sc, st.progress(sc.String()))
		if err != nil {
			return nil, err
		}
		if st.cache != nil {
			st.cache[sc] = cases
		}
		out[sc] = cases
	}
	return out, nil
}

// Table1 reports the simulation parameters (paper Table 1).
func Table1(cfg config.GPU) *Table {
	t := &Table{ID: "Table 1", Title: "Simulation parameters",
		Header: []string{"Parameter", "Value"}}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("Core Freq.", fmt.Sprintf("%dMHz", cfg.CoreClockMHz))
	add("Mem. Freq.", fmt.Sprintf("%dMHz", cfg.MemClockMHz))
	add("# of SMs", fmt.Sprint(cfg.NumSMs))
	add("# of MC", fmt.Sprint(cfg.NumMemControllers))
	add("Sched. Policy", "GTO")
	add("Registers", fmt.Sprintf("%dKB", cfg.RegFileBytes>>10))
	add("Shared Memory", fmt.Sprintf("%dKB", cfg.SharedMemBytes>>10))
	add("Threads", fmt.Sprint(cfg.MaxThreadsPerSM))
	add("TB Limit", fmt.Sprint(cfg.MaxTBsPerSM))
	add("Warp Scheduler", fmt.Sprint(cfg.WarpSchedulers))
	return t
}

// Fig5 reproduces Figure 5: the Naive+History miss-distance histogram.
func Fig5(ctx context.Context, st Study) (*Table, error) {
	cases, err := st.Runner.PairSweep(ctx, st.Pairs, st.Goals, core.SchemeNaiveHistory, st.progress("fig5"))
	if err != nil {
		return nil, err
	}
	b := Misses(cases)
	labels := BucketLabels()
	t := &Table{ID: "Figure 5", Title: "Cases where Naive+History misses the IPC goal, by miss distance",
		Header: []string{"Bucket", "Cases"}}
	for i, l := range labels {
		t.Rows = append(t.Rows, []string{l, fmt.Sprint(b.Counts[i])})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total cases %d, failures %d, successes %d", b.Total, b.Failures, b.Successes),
		fmt.Sprintf("successful cases overshoot by %.1f%% on average (paper: 1.3%%)", 100*b.MeanOvershoot),
		"paper: >700 of 900 cases miss, most within 5% of the goal")
	return t, nil
}

// Fig6a reproduces Figure 6a: pair QoSreach for Spart/Naive/Elastic/Rollover.
func Fig6a(ctx context.Context, st Study) (*Table, error) {
	schemes := []core.Scheme{core.SchemeSpart, core.SchemeNaive, core.SchemeElastic, core.SchemeRollover}
	bySch, err := st.schemeSweep(ctx, schemes...)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 6a", Title: "QoSreach vs QoS goal, two-kernel pairs",
		Header: []string{"Goal"}}
	for _, sc := range schemes {
		t.Header = append(t.Header, sc.String())
	}
	for _, g := range st.Goals {
		row := []string{goalLabel(g)}
		for _, sc := range schemes {
			row = append(row, pct(PairReachByGoal(bySch[sc], []float64{g})[g]))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"AVG"}
	for _, sc := range schemes {
		avg = append(avg, pct(AvgReach(bySch[sc])))
	}
	t.Rows = append(t.Rows, avg)
	t.Notes = append(t.Notes, "paper averages: Naive 20.6%, Spart 78.8%, Rollover 88.4% (Rollover +12.2% over Spart)")
	return t, nil
}

// trioFig runs the Figure 6b/6c (reach) or 8b/8c (throughput) trio study.
func trioFig(ctx context.Context, st Study, nQoS int, goals []float64, throughput bool, id, title, paperNote string) (*Table, error) {
	t := &Table{ID: id, Title: title, Header: []string{"Goal", "Spart", "Rollover"}}
	spart, err := st.Runner.TrioSweep(ctx, st.Trios, goals, nQoS, core.SchemeSpart, st.progress(id+"/spart"))
	if err != nil {
		return nil, err
	}
	roll, err := st.Runner.TrioSweep(ctx, st.Trios, goals, nQoS, core.SchemeRollover, st.progress(id+"/rollover"))
	if err != nil {
		return nil, err
	}
	reduce := TrioReachByGoal
	format := pct
	if throughput {
		reduce = TrioNonQoSThroughputByGoal
		format = num
	}
	sp := reduce(spart, goals)
	ro := reduce(roll, goals)
	sum := [2]float64{}
	cnt := 0
	for _, g := range goals {
		label := goalLabel(g)
		if nQoS == 2 {
			label = "2x" + label
		}
		t.Rows = append(t.Rows, []string{label, format(sp[g]), format(ro[g])})
		sum[0] += sp[g]
		sum[1] += ro[g]
		cnt++
	}
	if cnt > 0 {
		t.Rows = append(t.Rows, []string{"AVG", format(sum[0] / float64(cnt)), format(sum[1] / float64(cnt))})
	}
	t.Notes = append(t.Notes, paperNote)
	return t, nil
}

// Fig6b reproduces Figure 6b: trio QoSreach, one QoS kernel.
func Fig6b(ctx context.Context, st Study) (*Table, error) {
	return trioFig(ctx, st, 1, st.Goals, false, "Figure 6b", "QoSreach vs goal, trios with one QoS kernel",
		"paper: Rollover reaches QoS goals 18.8% more often than Spart")
}

// Fig6c reproduces Figure 6c: trio QoSreach, two QoS kernels.
func Fig6c(ctx context.Context, st Study) (*Table, error) {
	return trioFig(ctx, st, 2, st.Goals2, false, "Figure 6c", "QoSreach vs goal, trios with two QoS kernels",
		"paper: Rollover +43.8% over Spart; Spart reaches no goal at (70%,70%)")
}

// Fig7 reproduces Figure 7: QoSreach per QoS benchmark and class.
func Fig7(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeSpart, core.SchemeRollover)
	if err != nil {
		return nil, err
	}
	perK := map[core.Scheme]map[string]float64{}
	perC := map[core.Scheme]map[string]float64{}
	for sc, cases := range bySch {
		k, c, err := ReachByQoSKernel(cases)
		if err != nil {
			return nil, err
		}
		perK[sc], perC[sc] = k, c
	}
	t := &Table{ID: "Figure 7", Title: "QoSreach per QoS kernel, two-kernel sharing",
		Header: []string{"QoS kernel", "Spart", "Rollover"}}
	var names []string
	for name := range perK[core.SchemeRollover] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Rows = append(t.Rows, []string{name,
			pct(perK[core.SchemeSpart][name]), pct(perK[core.SchemeRollover][name])})
	}
	for _, cls := range []string{"C+M", "C+C", "M+M"} {
		if _, ok := perC[core.SchemeRollover][cls]; !ok {
			continue
		}
		t.Rows = append(t.Rows, []string{cls,
			pct(perC[core.SchemeSpart][cls]), pct(perC[core.SchemeRollover][cls])})
	}
	t.Notes = append(t.Notes,
		"paper: C+C pairs meet goals in all cases for both schemes; Spart trails Rollover on M+M (no bandwidth control); histo is hard for both")
	return t, nil
}

// Fig8a reproduces Figure 8a: non-QoS normalized throughput, pairs.
func Fig8a(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeSpart, core.SchemeRollover)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 8a", Title: "Non-QoS kernel throughput normalized to isolated, pairs",
		Header: []string{"Goal", "Spart", "Rollover"}}
	sp := PairNonQoSThroughputByGoal(bySch[core.SchemeSpart], st.Goals)
	ro := PairNonQoSThroughputByGoal(bySch[core.SchemeRollover], st.Goals)
	var s0, s1 float64
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), num(sp[g]), num(ro[g])})
		s0 += sp[g]
		s1 += ro[g]
	}
	n := float64(len(st.Goals))
	t.Rows = append(t.Rows, []string{"AVG", num(s0 / n), num(s1 / n)})
	t.Notes = append(t.Notes, "paper: Rollover averages 15.9% higher than Spart; both fall as the goal rises")
	return t, nil
}

// Fig8b reproduces Figure 8b: non-QoS throughput, trios with one QoS kernel.
func Fig8b(ctx context.Context, st Study) (*Table, error) {
	return trioFig(ctx, st, 1, st.Goals, true, "Figure 8b", "Non-QoS throughput normalized to isolated, trios (1 QoS)",
		"paper: Rollover +19.9% over Spart; largest gain 75.5% at the 95% goal")
}

// Fig8c reproduces Figure 8c: non-QoS throughput, trios with two QoS kernels.
func Fig8c(ctx context.Context, st Study) (*Table, error) {
	return trioFig(ctx, st, 2, st.Goals2, true, "Figure 8c", "Non-QoS throughput normalized to isolated, trios (2 QoS)",
		"paper: Rollover +20.5% over Spart; >10x in the three highest goal categories")
}

// Fig9 reproduces Figure 9: QoS kernel throughput normalized to its goal.
func Fig9(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeSpart, core.SchemeRollover)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 9", Title: "QoS kernel throughput normalized to its goal (overshoot)",
		Header: []string{"Goal", "Spart", "Rollover"}}
	sp := PairOvershootByGoal(bySch[core.SchemeSpart], st.Goals)
	ro := PairOvershootByGoal(bySch[core.SchemeRollover], st.Goals)
	var s0, s1 float64
	var n0, n1 int
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), num(sp[g]), num(ro[g])})
		if sp[g] > 0 {
			s0 += sp[g]
			n0++
		}
		if ro[g] > 0 {
			s1 += ro[g]
			n1++
		}
	}
	avg := []string{"AVG", "-", "-"}
	if n0 > 0 {
		avg[1] = num(s0 / float64(n0))
	}
	if n1 > 0 {
		avg[2] = num(s1 / float64(n1))
	}
	t.Rows = append(t.Rows, avg)
	t.Notes = append(t.Notes, "paper: Spart exceeds goals by 11.6% on average, Rollover by only 2.8%")
	return t, nil
}

// Fig10 reproduces Figure 10: QoSreach, Rollover vs Rollover-Time.
func Fig10(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeRollover, core.SchemeRolloverTime)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 10", Title: "QoSreach: Rollover vs time-multiplexed Rollover",
		Header: []string{"Goal", "Rollover", "Rollover-Time"}}
	ro := PairReachByGoal(bySch[core.SchemeRollover], st.Goals)
	rt := PairReachByGoal(bySch[core.SchemeRolloverTime], st.Goals)
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), pct(ro[g]), pct(rt[g])})
	}
	t.Rows = append(t.Rows, []string{"AVG",
		pct(AvgReach(bySch[core.SchemeRollover])), pct(AvgReach(bySch[core.SchemeRolloverTime]))})
	t.Notes = append(t.Notes, "paper: the two differ by only ~3% on average")
	return t, nil
}

// Fig11 reproduces Figure 11: non-QoS throughput, Rollover vs Rollover-Time.
func Fig11(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeRollover, core.SchemeRolloverTime)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 11", Title: "Non-QoS throughput: Rollover vs time-multiplexed Rollover",
		Header: []string{"Goal", "Rollover", "Rollover-Time"}}
	ro := PairNonQoSThroughputByGoal(bySch[core.SchemeRollover], st.Goals)
	rt := PairNonQoSThroughputByGoal(bySch[core.SchemeRolloverTime], st.Goals)
	var s0, s1 float64
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), num(ro[g]), num(rt[g])})
		s0 += ro[g]
		s1 += rt[g]
	}
	n := float64(len(st.Goals))
	t.Rows = append(t.Rows, []string{"AVG", num(s0 / n), num(s1 / n)})
	if s1 > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured degradation: %.2fx (paper: 1.47x)", s0/s1))
	}
	return t, nil
}

// Fig12 reproduces Figure 12: QoSreach with 56 SMs. The study's session
// must be built with config.Scale56.
func Fig12(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeSpart, core.SchemeRollover)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 12", Title: "QoSreach vs goal, 56 SMs",
		Header: []string{"Goal", "Spart", "Rollover"}}
	sp := PairReachByGoal(bySch[core.SchemeSpart], st.Goals)
	ro := PairReachByGoal(bySch[core.SchemeRollover], st.Goals)
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), pct(sp[g]), pct(ro[g])})
	}
	t.Rows = append(t.Rows, []string{"AVG",
		pct(AvgReach(bySch[core.SchemeSpart])), pct(AvgReach(bySch[core.SchemeRollover]))})
	t.Notes = append(t.Notes, "paper: more SMs help Spart (finer spatial granularity) but it stays 4.76% behind Rollover")
	return t, nil
}

// Fig13 reproduces Figure 13: non-QoS throughput with 56 SMs.
func Fig13(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeSpart, core.SchemeRollover)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 13", Title: "Non-QoS throughput, 56 SMs",
		Header: []string{"Goal", "Spart", "Rollover"}}
	sp := PairNonQoSThroughputByGoal(bySch[core.SchemeSpart], st.Goals)
	ro := PairNonQoSThroughputByGoal(bySch[core.SchemeRollover], st.Goals)
	var s0, s1 float64
	for _, g := range st.Goals {
		t.Rows = append(t.Rows, []string{goalLabel(g), num(sp[g]), num(ro[g])})
		s0 += sp[g]
		s1 += ro[g]
	}
	n := float64(len(st.Goals))
	t.Rows = append(t.Rows, []string{"AVG", num(s0 / n), num(s1 / n)})
	t.Notes = append(t.Notes, "paper: Rollover improves non-QoS throughput by 30.65% on average at 56 SMs")
	return t, nil
}

// Fig14 reproduces Figure 14: instructions-per-watt improvement of
// Rollover over Spart, per goal, over cases both schemes satisfied.
func Fig14(ctx context.Context, st Study) (*Table, error) {
	bySch, err := st.schemeSweep(ctx, core.SchemeSpart, core.SchemeRollover)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 14", Title: "Instructions-per-watt improvement of Rollover over Spart",
		Header: []string{"Goal", "Improvement"}}
	sp := InstrPerWattByGoal(bySch[core.SchemeSpart], st.Goals)
	ro := InstrPerWattByGoal(bySch[core.SchemeRollover], st.Goals)
	var sum float64
	var n int
	for _, g := range st.Goals {
		if sp[g] <= 0 || ro[g] <= 0 {
			t.Rows = append(t.Rows, []string{goalLabel(g), "-"})
			continue
		}
		imp := ro[g]/sp[g] - 1
		sum += imp
		n++
		t.Rows = append(t.Rows, []string{goalLabel(g), pct(imp)})
	}
	if n > 0 {
		t.Rows = append(t.Rows, []string{"AVG", pct(sum / float64(n))})
	}
	t.Notes = append(t.Notes, "paper: +9.3% on average from better utilization")
	return t, nil
}
