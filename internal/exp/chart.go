package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Chart renders a Table whose value columns are numeric (plain floats or
// "NN.N%" percentages) as horizontal ASCII bar groups, one group per row,
// one bar per series — a terminal rendition of the paper's grouped bar
// figures. Non-numeric cells render as label-only lines.
func (t *Table) Chart(width int) string {
	if width < 20 {
		width = 20
	}
	series := t.Header[1:]
	// Find the maximum value to scale the bars.
	max := 0.0
	for _, row := range t.Rows {
		for _, cell := range row[1:] {
			if v, ok := parseCell(cell); ok && v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	labelW := 0
	for _, row := range t.Rows {
		if len(row[0]) > labelW {
			labelW = len(row[0])
		}
	}
	seriesW := 0
	for _, s := range series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	glyphs := []byte{'#', '=', '*', '+', '~', '-'}
	for _, row := range t.Rows {
		for i, cell := range row[1:] {
			v, ok := parseCell(cell)
			label := ""
			if i == 0 {
				label = row[0]
			}
			if !ok {
				fmt.Fprintf(&b, "%-*s %-*s | %s\n", labelW, label, seriesW, series[i], cell)
				continue
			}
			bar := int(v / max * float64(width))
			g := glyphs[i%len(glyphs)]
			fmt.Fprintf(&b, "%-*s %-*s |%s %s\n",
				labelW, label, seriesW, series[i],
				strings.Repeat(string(g), bar), strings.TrimSpace(cell))
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// parseCell reads a float from a plain or percent-suffixed cell.
func parseCell(cell string) (float64, bool) {
	cell = strings.TrimSpace(cell)
	if cell == "" || cell == "-" {
		return 0, false
	}
	pct := strings.HasSuffix(cell, "%")
	cell = strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, false
	}
	if pct {
		v /= 100
	}
	return v, true
}
