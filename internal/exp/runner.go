package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Progress is one event of the sweep progress stream. Events are emitted
// after every resolved case (completed, failed or restored from the
// journal); Done is monotonic even though cases finish out of order
// across workers. Rate fields describe only progress reporting — they
// never influence simulation results, which stay bit-identical to a
// serial run.
type Progress struct {
	// Stage labels the sweep (usually the scheme name; figure drivers
	// relabel it with the figure id).
	Stage string
	// Done and Total count cases.
	Done, Total int
	// Elapsed is wall time since the sweep started.
	Elapsed time.Duration
	// CasesPerSec is the sweep's current completion rate (0 until enough
	// wall time has accumulated for a meaningful rate).
	CasesPerSec float64
	// ETA estimates the remaining wall time at the current rate.
	ETA time.Duration
}

// ProgressFunc receives progress events. The runner serializes calls, so
// implementations need no locking.
type ProgressFunc func(Progress)

// SweepMetrics summarizes one completed sweep stage. Cases counts only
// cases executed this run (journal-restored cases cost no simulation
// time and are excluded from the rate).
type SweepMetrics struct {
	Stage       string
	Cases       int
	Wall        time.Duration
	CasesPerSec float64
}

// FaultPolicy configures how a Runner treats failing cases. The zero
// value reproduces a study run with no safety nets beyond isolation:
// every case is attempted once, panics and errors are collected into the
// SweepReport instead of aborting the sweep, and nothing is journaled.
type FaultPolicy struct {
	// FailFast restores the pre-fault-tolerance behavior: the first
	// failing case cancels the sweep and is returned as the error.
	FailFast bool
	// CaseTimeout bounds each case attempt; the deadline propagates into
	// gpu.RunCtx, which polls it at sub-epoch granularity, so a case
	// that stops progressing is reaped instead of pinning a worker slot.
	// 0 means no per-case deadline.
	CaseTimeout time.Duration
	// Retry re-executes failed cases with backoff. The zero value means
	// one attempt, no retries.
	Retry retry.Policy
	// Journal, when non-nil, records every completed case and is
	// consulted before sweeping to skip cases a previous (interrupted)
	// run already completed. Stage keys embed hashes of the session
	// configuration and the case grid, so one journal can safely back
	// several studies and derived (With) runners.
	Journal *journal.Journal
}

// Runner is the parallel sweep engine: a fixed pool of workers, each
// owning an independent core.Session, over which pair/trio case grids are
// fanned out. All sessions share one singleflight isolated-IPC cache, so
// the per-workload isolated baselines are measured exactly once no matter
// how many workers ask for them. Results are always merged in
// deterministic case order (pairs/trios outer, goals inner) regardless of
// completion order, and each case is bit-identical to what the serial
// PairSweep/TrioSweep functions produce: per-case determinism comes from
// the seeded RNG streams in internal/rng, not from scheduling.
//
// The runner is also the fault boundary of a study: each case executes
// under a recover() that converts panics into typed CaseErrors, under the
// FaultPolicy's per-case deadline and retry budget, and behind the
// checkpoint journal — so one sick case costs one case, not the sweep.
type Runner struct {
	workers  int
	opts     []core.Option
	sessions []*core.Session
	// slots is the session pool: sweeps and Do borrow sessions from it,
	// so a Runner shared by a daemon can interleave one-off evaluations
	// with sweeps without oversubscribing the worker budget.
	slots chan *core.Session
	fault FaultPolicy

	// Per-case trace output (WithTraceDir). Every traced case gets its
	// own trace.Tracer — tracers are unsynchronized by design, so
	// sharing one across workers would race.
	traceDir    string
	traceFormat trace.Format

	mu      sync.Mutex
	metrics []SweepMetrics
	reports []*SweepReport
}

// runnerSettings collects everything a runner Option can configure
// before validation.
type runnerSettings struct {
	session     []core.Option
	fault       FaultPolicy
	traceDir    string
	traceFormat trace.Format
}

// Option configures a Runner at construction (see NewRunner). A Runner
// is immutable once built — the qosd daemon shares one across request
// goroutines — so everything the deprecated setters used to mutate is
// now an option.
type Option func(*runnerSettings)

// WithSessionOptions appends core session options applied identically to
// every worker session (device, window, QoS tuning, seed). Passing
// core.WithIsolatedCache is redundant — the runner always installs a
// shared singleflight cache after these options, so it wins.
func WithSessionOptions(opts ...core.Option) Option {
	return func(s *runnerSettings) { s.session = append(s.session, opts...) }
}

// WithFaultPolicy installs the fault policy governing sweeps and Do
// calls: per-case deadlines, retries, panic containment mode and the
// checkpoint journal.
func WithFaultPolicy(p FaultPolicy) Option {
	return func(s *runnerSettings) { s.fault = p }
}

// WithTraceDir enables per-case event tracing: every case runs with its
// own tracer and writes one trace file into dir, named by its grid
// coordinates (sweep kind, case index, workloads, goal, scheme). An
// empty dir disables tracing. NewRunner creates the directory.
func WithTraceDir(dir string, f trace.Format) Option {
	return func(s *runnerSettings) { s.traceDir, s.traceFormat = dir, f }
}

// NewRunner builds a Runner with the given worker count (0 or negative
// means runtime.GOMAXPROCS(0)), configured by runner options
// (WithSessionOptions, WithFaultPolicy, WithTraceDir). All worker
// sessions share one singleflight isolated-IPC cache.
func NewRunner(workers int, opts ...Option) (*Runner, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st runnerSettings
	for _, o := range opts {
		o(&st)
	}
	if st.traceDir != "" {
		if err := os.MkdirAll(st.traceDir, 0o755); err != nil {
			return nil, err
		}
	}
	r := &Runner{
		workers:     workers,
		opts:        append([]core.Option(nil), st.session...),
		slots:       make(chan *core.Session, workers),
		fault:       st.fault,
		traceDir:    st.traceDir,
		traceFormat: st.traceFormat,
	}
	cache := core.NewIsolatedCache()
	withCache := append(append([]core.Option(nil), r.opts...), core.WithIsolatedCache(cache))
	for i := 0; i < workers; i++ {
		s, err := core.NewSession(withCache...)
		if err != nil {
			return nil, err
		}
		r.sessions = append(r.sessions, s)
		r.slots <- s
	}
	return r, nil
}

// With derives a Runner with the same worker count, fault policy and base
// session options plus extra ones (later options override earlier, so
// e.g. core.WithQoSOptions replaces the base tuning). The derived runner
// gets a fresh isolated cache: changed options may change baselines.
func (r *Runner) With(extra ...core.Option) (*Runner, error) {
	session := append(append([]core.Option(nil), r.opts...), extra...)
	return NewRunner(r.workers,
		WithSessionOptions(session...),
		WithFaultPolicy(r.fault),
		WithTraceDir(r.traceDir, r.traceFormat))
}

// runCase executes one sweep case, with a per-case tracer and trace file
// when WithTraceDir configured one. name must be unique within the sweep
// (it keys the output file).
func (r *Runner) runCase(ctx context.Context, s *core.Session, name string, specs []core.KernelSpec, scheme core.Scheme) (*core.Result, error) {
	if r.traceDir == "" {
		return s.Run(ctx, specs, scheme)
	}
	tr := trace.New(trace.DefaultRingSize)
	res, err := s.RunTraced(ctx, specs, scheme, tr)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(r.traceDir, name+r.traceFormat.Ext())
	if werr := trace.WriteFile(path, tr, r.traceFormat); werr != nil {
		return nil, fmt.Errorf("exp: write trace %s: %w", path, werr)
	}
	return res, nil
}

// Do borrows one worker session from the pool and runs fn under the same
// fault boundary a sweep case gets: panics are converted to *PanicError,
// the fault policy's per-case deadline bounds the call, and its retry
// budget re-runs transient failures (stream disambiguates the retry
// jitter sequence between concurrent callers). Do blocks while every
// worker session is busy — this is the backpressure a serving layer
// (cmd/qosd) relies on — and returns ctx's error if it is canceled
// before a session frees up.
func (r *Runner) Do(ctx context.Context, stream uint64, fn func(ctx context.Context, s *core.Session) error) error {
	var s *core.Session
	select {
	case s = <-r.slots:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { r.slots <- s }()
	fp := r.fault
	return fp.Retry.Do(ctx, stream, func(int) error {
		return doShielded(ctx, s, fp.CaseTimeout, fn)
	})
}

// doShielded is runShielded without the sweep-case index tagging: the
// fault boundary for one-off Do work.
func doShielded(ctx context.Context, s *core.Session, timeout time.Duration, fn func(context.Context, *core.Session) error) (err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, s)
}

// FaultPolicyInEffect returns the installed fault policy.
func (r *Runner) FaultPolicyInEffect() FaultPolicy { return r.fault }

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Session exposes one of the pool's sessions for serial work (isolated
// measurements, one-off runs) outside a sweep.
func (r *Runner) Session() *core.Session { return r.sessions[0] }

// GPUConfig returns the device configuration shared by all workers.
func (r *Runner) GPUConfig() config.GPU { return r.sessions[0].GPUConfig() }

// Window returns the measurement window shared by all workers.
func (r *Runner) Window() int64 { return r.sessions[0].Window() }

// Metrics returns per-stage wall-time summaries of every sweep this
// runner completed, in completion order.
func (r *Runner) Metrics() []SweepMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SweepMetrics(nil), r.metrics...)
}

// Reports returns the fault report of every sweep this runner completed,
// in completion order. Sweeps aborted by cancellation or fail-fast do not
// produce a report.
func (r *Runner) Reports() []*SweepReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*SweepReport(nil), r.reports...)
}

// runShielded executes one case attempt inside the fault boundary: the
// context is tagged with the case index (for fault injectors), bounded by
// the per-case deadline, and panics are converted into *PanicError so a
// crashing case surfaces as a value instead of killing the process.
func runShielded(ctx context.Context, s *core.Session, i int, timeout time.Duration, runCase func(context.Context, *core.Session, int) error) (err error) {
	caseCtx := core.ContextWithCaseIndex(ctx, i)
	if timeout > 0 {
		var cancel context.CancelFunc
		caseCtx, cancel = context.WithTimeout(caseCtx, timeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return runCase(caseCtx, s, i)
}

// sweep fans total cases out over the worker pool. runCase must write its
// result into caller-owned storage at index i (indices never collide, so
// no locking is needed on the result slice). Cases listed in skip are
// counted as already resolved and never executed; record (if non-nil) is
// invoked after each successful case to checkpoint it.
//
// Failure semantics follow the fault policy: each case gets
// Retry.MaxAttempts isolated attempts under CaseTimeout; a case that
// still fails becomes a *CaseError in the returned report (or, with
// FailFast, cancels the sweep and is returned as the error). External
// cancellation always aborts and surfaces the parent context's error.
func (r *Runner) sweep(parent context.Context, stage string, total int, skip map[int]bool, describe func(i int) string, runCase func(ctx context.Context, s *core.Session, i int) error, record func(i int) error, progress ProgressFunc) (*SweepReport, error) {
	rep := &SweepReport{Stage: stage, Total: total, Skipped: len(skip)}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if total == 0 {
		return rep, nil
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	fp := r.fault
	start := time.Now()
	pending := total - len(skip)
	workers := r.workers
	if workers > pending {
		workers = pending
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     = len(skip)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	// resolve accounts for one case reaching a final state (ce == nil for
	// success) and emits the progress event under the lock, so the
	// callback never sees events out of order and needs no
	// synchronization.
	resolve := func(ce *CaseError, retried bool) {
		mu.Lock()
		done++
		if ce != nil {
			rep.Failed = append(rep.Failed, ce)
		} else {
			rep.Completed++
			if retried {
				rep.Retried++
			}
		}
		if progress != nil {
			p := Progress{Stage: stage, Done: done, Total: total, Elapsed: time.Since(start)}
			p.CasesPerSec, p.ETA = sweepRate(done, total, p.Elapsed)
			progress(p)
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Borrow a session from the shared pool (rather than pinning
			// sessions to workers) so sweeps and concurrent Do callers
			// split the same worker budget.
			var s *core.Session
			select {
			case s = <-r.slots:
			case <-ctx.Done():
				return
			}
			defer func() { r.slots <- s }()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				attempts := 0
				err := fp.Retry.Do(ctx, uint64(i), func(attempt int) error {
					attempts = attempt
					return runShielded(ctx, s, i, fp.CaseTimeout, runCase)
				})
				if err != nil {
					if cerr := ctx.Err(); cerr != nil {
						// The sweep itself is being torn down; the case
						// error is a cancellation artifact, not a result.
						fail(cerr)
						return
					}
					ce := &CaseError{Stage: stage, Index: i, Case: describe(i), Attempts: attempts, Err: err}
					var pe *PanicError
					if errors.As(err, &pe) {
						ce.Stack = pe.Stack
					}
					if fp.FailFast {
						fail(ce)
						return
					}
					resolve(ce, false)
					continue
				}
				if record != nil {
					if rerr := record(i); rerr != nil {
						// A broken checkpoint journal means completed work
						// is silently unprotected; stop rather than let
						// the operator find out after the next crash.
						fail(fmt.Errorf("exp: journal %s case %d: %w", stage, i, rerr))
						return
					}
				}
				resolve(nil, attempts > 1)
			}
		}()
	}
feed:
	for i := 0; i < total; i++ {
		if skip[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		err = parent.Err()
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(rep.Failed, func(a, b int) bool { return rep.Failed[a].Index < rep.Failed[b].Index })
	wall := time.Since(start)
	m := SweepMetrics{Stage: stage, Cases: pending, Wall: wall}
	if secs := wall.Seconds(); secs > 0 {
		m.CasesPerSec = float64(pending) / secs
	}
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.reports = append(r.reports, rep)
	r.mu.Unlock()
	return rep, nil
}

// StageKey derives the journal key for one sweep stage: a readable prefix
// plus hashes of the session configuration (device, window, tuning, seed)
// and the case grid. Two sweeps share journaled cases only when both
// hashes agree, so derived runners and differently-subsampled studies can
// never splice each other's results. Exported so the distributed sweep
// coordinator (internal/distsweep) journals cases under exactly the keys
// a local Runner would use — a sweep may start local and finish
// distributed (or vice versa) against the same journal.
func StageKey(cfg core.Config, seed uint64, kind string, scheme core.Scheme, grid any) (string, error) {
	sess, err := journal.Hash(struct {
		Config core.Config
		Seed   uint64
	}{cfg, seed})
	if err != nil {
		return "", err
	}
	gh, err := journal.Hash(grid)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s/%s/%s/%s", kind, scheme.Name(), sess[:12], gh[:12]), nil
}

// stageKey derives the journal key for one of this runner's sweep stages.
func (r *Runner) stageKey(kind string, scheme core.Scheme, grid any) (string, error) {
	return StageKey(r.Session().Config(), r.Session().Seed(), kind, scheme, grid)
}

// journalHooks wires one sweep to the checkpoint journal: restore() is
// called for every journaled case of this stage (returning false rejects
// the payload), and the returned record hook checkpoints newly completed
// cases. With no journal configured both returns are nil.
func (r *Runner) journalHooks(kind string, scheme core.Scheme, grid any, total int, restore func(i int, raw json.RawMessage) bool, snapshot func(i int) any) (map[int]bool, func(i int) error, error) {
	j := r.fault.Journal
	if j == nil {
		return nil, nil, nil
	}
	key, err := r.stageKey(kind, scheme, grid)
	if err != nil {
		return nil, nil, err
	}
	skip := make(map[int]bool)
	for i, raw := range j.Completed(key) {
		if i < 0 || i >= total || !restore(i, raw) {
			continue
		}
		skip[i] = true
	}
	record := func(i int) error { return j.Append(key, i, snapshot(i)) }
	return skip, record, nil
}

// PairGrid is the hashed identity of a pair-sweep grid, shared with the
// distributed coordinator (internal/distsweep) so both journal cases
// under identical stage keys.
type PairGrid struct {
	Pairs []workloads.Pair
	Goals []float64
}

// PairSweep runs every pair at every goal under the scheme across the
// worker pool and returns the cases in deterministic (pair-major,
// goal-minor) order — identical, case for case, to the serial PairSweep.
//
// Under the fault policy, failed cases are left zero in the returned
// slice (Res == nil) and reported via a *SweepError; callers that can use
// partial grids inspect its Report, others treat it as fatal.
func (r *Runner) PairSweep(ctx context.Context, pairs []workloads.Pair, goals []float64, scheme core.Scheme, progress ProgressFunc) ([]PairCase, error) {
	out := make([]PairCase, len(pairs)*len(goals))
	describe := func(i int) string {
		p, g := pairs[i/len(goals)], goals[i%len(goals)]
		return fmt.Sprintf("pair[%d] %s+%s @%.2f", i/len(goals), p.QoS, p.NonQoS, g)
	}
	skip, record, err := r.journalHooks("pairs", scheme, PairGrid{pairs, goals}, len(out),
		func(i int, raw json.RawMessage) bool {
			var c PairCase
			if json.Unmarshal(raw, &c) != nil || c.Res == nil {
				return false
			}
			out[i] = c
			return true
		},
		func(i int) any { return out[i] })
	if err != nil {
		return nil, err
	}
	rep, err := r.sweep(ctx, scheme.String(), len(out), skip, describe, func(ctx context.Context, s *core.Session, i int) error {
		p, g := pairs[i/len(goals)], goals[i%len(goals)]
		name := fmt.Sprintf("pair%03d_%s+%s_g%.2f_%s", i, p.QoS, p.NonQoS, g, scheme.Name())
		res, err := r.runCase(ctx, s, name, PairSpecs(p, g), scheme)
		if err != nil {
			return err
		}
		out[i] = PairCase{Pair: p, Goal: g, Scheme: scheme, Res: res}
		return nil
	}, record, progress)
	if err != nil {
		return nil, err
	}
	if rerr := rep.Err(); rerr != nil {
		return out, rerr
	}
	return out, nil
}

// TrioGrid is the hashed identity of a trio-sweep grid, shared with the
// distributed coordinator (internal/distsweep).
type TrioGrid struct {
	Trios []workloads.Trio
	Goals []float64
	NQoS  int
}

// TrioSweep runs every trio at every goal with nQoS QoS kernels (1 or 2)
// across the worker pool, merging results in deterministic (trio-major,
// goal-minor) order — identical to the serial TrioSweep. Failure
// semantics match PairSweep.
func (r *Runner) TrioSweep(ctx context.Context, trios []workloads.Trio, goals []float64, nQoS int, scheme core.Scheme, progress ProgressFunc) ([]TrioCase, error) {
	if nQoS < 1 || nQoS > 2 {
		return nil, fmt.Errorf("exp: nQoS must be 1 or 2, got %d", nQoS)
	}
	out := make([]TrioCase, len(trios)*len(goals))
	describe := func(i int) string {
		t, g := trios[i/len(goals)], goals[i%len(goals)]
		return fmt.Sprintf("trio[%d] %s+%s+%s @%.2f", i/len(goals), t.A, t.B, t.C, g)
	}
	skip, record, err := r.journalHooks("trios", scheme, TrioGrid{trios, goals, nQoS}, len(out),
		func(i int, raw json.RawMessage) bool {
			var c TrioCase
			if json.Unmarshal(raw, &c) != nil || c.Res == nil {
				return false
			}
			out[i] = c
			return true
		},
		func(i int) any { return out[i] })
	if err != nil {
		return nil, err
	}
	rep, err := r.sweep(ctx, scheme.String(), len(out), skip, describe, func(ctx context.Context, s *core.Session, i int) error {
		t, g := trios[i/len(goals)], goals[i%len(goals)]
		specs, qg := TrioSpecs(t, g, nQoS)
		name := fmt.Sprintf("trio%03d_%s+%s+%s_g%.2f_q%d_%s", i, t.A, t.B, t.C, g, nQoS, scheme.Name())
		res, err := r.runCase(ctx, s, name, specs, scheme)
		if err != nil {
			return err
		}
		out[i] = TrioCase{Trio: t, QoSGoals: qg, Scheme: scheme, Res: res}
		return nil
	}, record, progress)
	if err != nil {
		return nil, err
	}
	if rerr := rep.Err(); rerr != nil {
		return out, rerr
	}
	return out, nil
}
