package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Progress is one event of the sweep progress stream. Events are emitted
// after every completed case; Done is monotonic even though cases finish
// out of order across workers. Rate fields describe only progress
// reporting — they never influence simulation results, which stay
// bit-identical to a serial run.
type Progress struct {
	// Stage labels the sweep (usually the scheme name; figure drivers
	// relabel it with the figure id).
	Stage string
	// Done and Total count cases.
	Done, Total int
	// Elapsed is wall time since the sweep started.
	Elapsed time.Duration
	// CasesPerSec is the sweep's current completion rate.
	CasesPerSec float64
	// ETA estimates the remaining wall time at the current rate.
	ETA time.Duration
}

// ProgressFunc receives progress events. The runner serializes calls, so
// implementations need no locking.
type ProgressFunc func(Progress)

// SweepMetrics summarizes one completed sweep stage.
type SweepMetrics struct {
	Stage       string
	Cases       int
	Wall        time.Duration
	CasesPerSec float64
}

// Runner is the parallel sweep engine: a fixed pool of workers, each
// owning an independent core.Session, over which pair/trio case grids are
// fanned out. All sessions share one singleflight isolated-IPC cache, so
// the per-workload isolated baselines are measured exactly once no matter
// how many workers ask for them. Results are always merged in
// deterministic case order (pairs/trios outer, goals inner) regardless of
// completion order, and each case is bit-identical to what the serial
// PairSweep/TrioSweep functions produce: per-case determinism comes from
// the seeded RNG streams in internal/rng, not from scheduling.
type Runner struct {
	workers  int
	opts     []core.Option
	sessions []*core.Session

	mu      sync.Mutex
	metrics []SweepMetrics
}

// NewRunner builds a Runner with the given worker count (0 or negative
// means runtime.GOMAXPROCS(0)). The options configure every worker
// session identically; passing core.WithIsolatedCache here is redundant —
// the runner always installs a shared cache (after the caller's options,
// so it wins).
func NewRunner(workers int, opts ...core.Option) (*Runner, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{workers: workers, opts: append([]core.Option(nil), opts...)}
	cache := core.NewIsolatedCache()
	withCache := append(append([]core.Option(nil), r.opts...), core.WithIsolatedCache(cache))
	for i := 0; i < workers; i++ {
		s, err := core.NewSession(withCache...)
		if err != nil {
			return nil, err
		}
		r.sessions = append(r.sessions, s)
	}
	return r, nil
}

// With derives a Runner with the same worker count and base options plus
// extra ones (later options override earlier, so e.g.
// core.WithQoSOptions replaces the base tuning). The derived runner gets
// a fresh isolated cache: changed options may change baselines.
func (r *Runner) With(extra ...core.Option) (*Runner, error) {
	opts := append(append([]core.Option(nil), r.opts...), extra...)
	return NewRunner(r.workers, opts...)
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Session exposes one of the pool's sessions for serial work (isolated
// measurements, one-off runs) outside a sweep.
func (r *Runner) Session() *core.Session { return r.sessions[0] }

// GPUConfig returns the device configuration shared by all workers.
func (r *Runner) GPUConfig() config.GPU { return r.sessions[0].GPUConfig() }

// Window returns the measurement window shared by all workers.
func (r *Runner) Window() int64 { return r.sessions[0].Window() }

// Metrics returns per-stage wall-time summaries of every sweep this
// runner completed, in completion order.
func (r *Runner) Metrics() []SweepMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SweepMetrics(nil), r.metrics...)
}

// sweep fans total cases out over the worker pool. runCase must write its
// result into caller-owned storage at index i (indices never collide, so
// no locking is needed on the result slice). The first error cancels the
// remaining cases and is returned; external cancellation surfaces as the
// parent context's error.
func (r *Runner) sweep(parent context.Context, stage string, total int, runCase func(ctx context.Context, s *core.Session, i int) error, progress ProgressFunc) error {
	if total == 0 {
		return parent.Err()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	start := time.Now()
	workers := r.workers
	if workers > total {
		workers = total
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		s := r.sessions[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := runCase(ctx, s, i); err != nil {
					fail(err)
					return
				}
				mu.Lock()
				done++
				if progress != nil {
					elapsed := time.Since(start)
					p := Progress{Stage: stage, Done: done, Total: total, Elapsed: elapsed}
					if secs := elapsed.Seconds(); secs > 0 {
						p.CasesPerSec = float64(done) / secs
						p.ETA = time.Duration(float64(total-done) / p.CasesPerSec * float64(time.Second))
					}
					// Emit under the lock so the callback never sees
					// events out of order and needs no synchronization.
					progress(p)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < total; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		err = parent.Err()
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)
	m := SweepMetrics{Stage: stage, Cases: total, Wall: wall}
	if secs := wall.Seconds(); secs > 0 {
		m.CasesPerSec = float64(total) / secs
	}
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
	return nil
}

// PairSweep runs every pair at every goal under the scheme across the
// worker pool and returns the cases in deterministic (pair-major,
// goal-minor) order — identical, case for case, to the serial PairSweep.
func (r *Runner) PairSweep(ctx context.Context, pairs []workloads.Pair, goals []float64, scheme core.Scheme, progress ProgressFunc) ([]PairCase, error) {
	out := make([]PairCase, len(pairs)*len(goals))
	err := r.sweep(ctx, scheme.String(), len(out), func(ctx context.Context, s *core.Session, i int) error {
		p, g := pairs[i/len(goals)], goals[i%len(goals)]
		res, err := s.Run(ctx, pairSpecs(p, g), scheme)
		if err != nil {
			return fmt.Errorf("pair %s+%s @%.2f: %w", p.QoS, p.NonQoS, g, err)
		}
		out[i] = PairCase{Pair: p, Goal: g, Scheme: scheme, Res: res}
		return nil
	}, progress)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TrioSweep runs every trio at every goal with nQoS QoS kernels (1 or 2)
// across the worker pool, merging results in deterministic (trio-major,
// goal-minor) order — identical to the serial TrioSweep.
func (r *Runner) TrioSweep(ctx context.Context, trios []workloads.Trio, goals []float64, nQoS int, scheme core.Scheme, progress ProgressFunc) ([]TrioCase, error) {
	if nQoS < 1 || nQoS > 2 {
		return nil, fmt.Errorf("exp: nQoS must be 1 or 2, got %d", nQoS)
	}
	out := make([]TrioCase, len(trios)*len(goals))
	err := r.sweep(ctx, scheme.String(), len(out), func(ctx context.Context, s *core.Session, i int) error {
		t, g := trios[i/len(goals)], goals[i%len(goals)]
		specs, qg := trioSpecs(t, g, nQoS)
		res, err := s.Run(ctx, specs, scheme)
		if err != nil {
			return fmt.Errorf("trio %s+%s+%s @%.2f: %w", t.A, t.B, t.C, g, err)
		}
		out[i] = TrioCase{Trio: t, QoSGoals: qg, Scheme: scheme, Res: res}
		return nil
	}, progress)
	if err != nil {
		return nil, err
	}
	return out, nil
}
