package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// ModelFit distills a completed pair sweep into a perfmodel fit: each
// case contributes the pair's isolated IPCs and one degradation point
// (QoS and partner IPC retention at the swept goal fraction). The fit
// is bound to the session's configuration and seed, so only a daemon
// running the identical simulator can load it. Failed cases (Res nil)
// are skipped; an empty sweep is an error.
func ModelFit(cases []PairCase, scheme core.Scheme, sess *core.Session) (*perfmodel.Fit, error) {
	cfgHash, err := perfmodel.ConfigHash(sess.Config(), sess.Seed())
	if err != nil {
		return nil, err
	}
	fit := &perfmodel.Fit{
		Schema:     perfmodel.FitSchema,
		ConfigHash: cfgHash,
		Scheme:     scheme.Name(),
		Isolated:   make(map[string]float64),
		Pairs:      make(map[string][]perfmodel.PairPoint),
	}
	n := 0
	for _, c := range cases {
		if c.Res == nil || c.Scheme != scheme {
			continue
		}
		q, nq := c.QoSKernel(), c.NonQoSKernel()
		fit.Isolated[q.Name] = q.IsolatedIPC
		fit.Isolated[nq.Name] = nq.IsolatedIPC
		key := perfmodel.PairKey(q.Name, nq.Name)
		fit.Pairs[key] = append(fit.Pairs[key], perfmodel.PairPoint{
			Goal:           c.Goal,
			QoSRetention:   q.NormThroughput,
			OtherRetention: nq.NormThroughput,
		})
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("exp: no completed %s pair cases to fit a model from", scheme.Name())
	}
	if err := fit.Finalize(); err != nil {
		return nil, err
	}
	return fit, nil
}
