package exp

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/workloads"
)

// faultRunner builds a small-device runner whose sessions carry the given
// injector, sized for CI like testRunner.
func faultRunner(t *testing.T, workers int, fi core.FaultInjector, ropts ...Option) *Runner {
	t.Helper()
	cfg := config.Base()
	cfg.NumSMs = 4
	opts := append([]Option{
		WithSessionOptions(core.WithGPU(cfg), core.WithWindow(30_000), core.WithFaultInjector(fi)),
	}, ropts...)
	r, err := NewRunner(workers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

var faultPairs = []workloads.Pair{
	{QoS: "sgemm", NonQoS: "lbm"},
	{QoS: "mri-q", NonQoS: "stencil"},
	{QoS: "lbm", NonQoS: "sgemm"},
}

// TestSweepPanicIsolation injects panics into two chosen cases and runs
// the sweep with the default (collecting) policy: every other case must
// complete, the report must name exactly the injected cases, and the
// recovered stacks must be attached.
func TestSweepPanicIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	goals := []float64{0.4, 0.7}
	faults := NewScriptedFaults(map[int][]FaultSpec{
		1: {{Panic: true}},
		4: {{Panic: true}},
	})
	r := faultRunner(t, 3, faults)
	out, err := r.PairSweep(context.Background(), faultPairs, goals, core.SchemeRollover, nil)

	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	rep := se.Report
	if len(rep.Failed) != 2 || rep.Failed[0].Index != 1 || rep.Failed[1].Index != 4 {
		t.Fatalf("Failed = %+v, want cases 1 and 4", rep.Failed)
	}
	if rep.Completed != 4 || rep.Total != 6 {
		t.Fatalf("Completed/Total = %d/%d, want 4/6", rep.Completed, rep.Total)
	}
	for _, ce := range rep.Failed {
		var pe *PanicError
		if !errors.As(ce.Err, &pe) {
			t.Fatalf("case %d: err = %v, want *PanicError", ce.Index, ce.Err)
		}
		if len(ce.Stack) == 0 {
			t.Fatalf("case %d: no stack captured", ce.Index)
		}
		if ce.Case == "" || ce.Stage == "" {
			t.Fatalf("case %d: missing coordinates: %+v", ce.Index, ce)
		}
	}
	for i, c := range out {
		failed := i == 1 || i == 4
		if failed && c.Res != nil {
			t.Fatalf("case %d: failed case has a result", i)
		}
		if !failed && c.Res == nil {
			t.Fatalf("case %d: healthy case missing its result", i)
		}
	}
	// The report is also retained on the runner for later inspection.
	reps := r.Reports()
	if len(reps) != 1 || len(reps[0].Failed) != 2 {
		t.Fatalf("Reports() = %+v", reps)
	}
}

// TestSweepTransientRetry scripts one-shot faults (fail first attempt,
// clean after) on two cases: with a retry budget the sweep must finish
// fully clean and count the retried cases.
func TestSweepTransientRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	goals := []float64{0.5}
	transient := errors.New("transient fabric glitch")
	faults := NewScriptedFaults(map[int][]FaultSpec{
		0: {{Err: transient}},
		2: {{Panic: true}},
	})
	r := faultRunner(t, 2, faults,
		WithFaultPolicy(FaultPolicy{Retry: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 7}}))
	out, err := r.PairSweep(context.Background(), faultPairs, goals, core.SchemeRollover, nil)
	if err != nil {
		t.Fatalf("sweep failed despite retry budget: %v", err)
	}
	for i, c := range out {
		if c.Res == nil {
			t.Fatalf("case %d missing result", i)
		}
	}
	rep := r.Reports()[0]
	if rep.Retried != 2 || rep.Completed != 3 || len(rep.Failed) != 0 {
		t.Fatalf("report = %s, want 2 retried / 3 completed / 0 failed", rep.Summary())
	}
	if got := faults.Attempts(0); got != 2 {
		t.Fatalf("case 0 attempted %d times, want 2", got)
	}
}

// TestSweepCaseTimeout wedges one case (a scripted delay far beyond the
// per-case deadline, on every attempt) and expects the engine to reap it
// as DeadlineExceeded while the rest of the sweep completes.
func TestSweepCaseTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	goals := []float64{0.5}
	faults := NewScriptedFaults(map[int][]FaultSpec{
		1: {{Delay: 10 * time.Minute}, {Delay: 10 * time.Minute}},
	})
	// The deadline must be generous enough that healthy cases (fast, but
	// ~10x slower under -race) never trip it, while still reaping the
	// 10-minute wedge quickly.
	r := faultRunner(t, 2, faults,
		WithFaultPolicy(FaultPolicy{CaseTimeout: 5 * time.Second, Retry: retry.Policy{MaxAttempts: 2, Seed: 3}}))
	start := time.Now()
	_, err := r.PairSweep(context.Background(), faultPairs, goals, core.SchemeRollover, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in the chain", err)
	}
	var se *SweepError
	if !errors.As(err, &se) || len(se.Report.Failed) != 1 || se.Report.Failed[0].Index != 1 {
		t.Fatalf("err = %v, want a SweepError failing exactly case 1", err)
	}
	if se.Report.Failed[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (deadline errors are retryable)", se.Report.Failed[0].Attempts)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("sweep took %v; the wedged case was not reaped", elapsed)
	}
}

// TestSweepFailFast restores the legacy first-error-aborts semantics and
// checks the error still carries full case coordinates.
func TestSweepFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	goals := []float64{0.5}
	boom := errors.New("boom")
	faults := NewScriptedFaults(map[int][]FaultSpec{2: {{Err: boom}, {Err: boom}}})
	r := faultRunner(t, 2, faults, WithFaultPolicy(FaultPolicy{FailFast: true}))
	_, err := r.PairSweep(context.Background(), faultPairs, goals, core.SchemeRollover, nil)
	var ce *CaseError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CaseError", err)
	}
	if ce.Index != 2 || ce.Case != "pair[2] lbm+sgemm @0.50" {
		t.Fatalf("coordinates = %d %q", ce.Index, ce.Case)
	}
	if !errors.Is(err, boom) {
		t.Fatal("CaseError does not unwrap to the root cause")
	}
	if len(r.Reports()) != 0 {
		t.Fatal("aborted sweep must not publish a report")
	}
}

// TestSweepJournalResume is the acceptance test for crash recovery: run a
// journaled sweep, kill it mid-flight (simulated crash via context
// cancel), then resume into a fresh runner from the journal file. The
// resumed sweep must skip the checkpointed cases and the merged results
// must be bit-identical to an uninterrupted reference run.
func TestSweepJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pairs := faultPairs
	goals := []float64{0.4, 0.7}
	scheme := core.SchemeElastic
	hash := "exp-fault-test"

	// Reference: uninterrupted, no journal.
	want, err := testRunner(t, 3).PairSweep(context.Background(), pairs, goals, scheme, nil)
	if err != nil {
		t.Fatal(err)
	}

	// First run: journaled, "crashes" (ctx cancel) once ≥2 cases landed.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := journal.Create(path, hash)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r1 := testRunner(t, 2, WithFaultPolicy(FaultPolicy{Journal: j}))
	_, err = r1.PairSweep(ctx, pairs, goals, scheme, func(p Progress) {
		if p.Done >= 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed run: err = %v, want Canceled", err)
	}
	j.Close()

	// Resume: reopen the journal (config hash must match) into a fresh
	// runner, as a restarted process would.
	j2, err := journal.Open(path, hash)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() < 2 {
		t.Fatalf("journal holds %d cases after crash, want >= 2", j2.Len())
	}
	r2 := testRunner(t, 3, WithFaultPolicy(FaultPolicy{Journal: j2}))
	got, err := r2.PairSweep(context.Background(), pairs, goals, scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from the uninterrupted reference run")
	}
	rep := r2.Reports()[0]
	if rep.Skipped < 2 || rep.Skipped+rep.Completed != rep.Total {
		t.Fatalf("resume accounting wrong: %s", rep.Summary())
	}

	// A journal written under a different session config must not be
	// spliced in: a runner with another window derives a different stage
	// key and re-runs everything.
	r3, err := NewRunner(2,
		WithSessionOptions(core.WithGPU(func() config.GPU {
			c := config.Base()
			c.NumSMs = 4
			return c
		}()), core.WithWindow(20_000)),
		WithFaultPolicy(FaultPolicy{Journal: j2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.PairSweep(context.Background(), pairs, goals, scheme, nil); err != nil {
		t.Fatal(err)
	}
	if rep := r3.Reports()[0]; rep.Skipped != 0 {
		t.Fatalf("foreign-config runner resumed %d cases from the journal", rep.Skipped)
	}
}

// TestSweepRate covers the satellite fix: no +Inf/NaN rates on cases that
// complete before the clock meaningfully advances.
func TestSweepRate(t *testing.T) {
	if cps, eta := sweepRate(1, 10, 0); cps != 0 || eta != 0 {
		t.Fatalf("zero elapsed: (%v, %v), want zeros", cps, eta)
	}
	if cps, eta := sweepRate(1, 10, 10*time.Nanosecond); cps != 0 || eta != 0 {
		t.Fatalf("sub-ms elapsed: (%v, %v), want zeros", cps, eta)
	}
	if cps, eta := sweepRate(0, 10, time.Second); cps != 0 || eta != 0 {
		t.Fatalf("nothing done: (%v, %v), want zeros", cps, eta)
	}
	cps, eta := sweepRate(5, 10, 10*time.Second)
	if cps != 0.5 || eta != 10*time.Second {
		t.Fatalf("(%v, %v), want (0.5, 10s)", cps, eta)
	}
	if _, eta := sweepRate(10, 10, time.Second); eta != 0 {
		t.Fatalf("finished sweep ETA = %v, want 0", eta)
	}
}

// TestScriptedFaultsOutsideSweep: an injector must be inert for runs that
// carry no case index (isolated baselines).
func TestScriptedFaultsOutsideSweep(t *testing.T) {
	f := NewScriptedFaults(map[int][]FaultSpec{0: {{Panic: true}}})
	if err := f.Inject(context.Background()); err != nil {
		t.Fatalf("Inject outside a sweep = %v", err)
	}
}
