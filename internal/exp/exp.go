// Package exp is the experiment harness: it re-runs the paper's
// evaluation (Section 4) on the simulator and reduces raw co-run results
// into the quantities each figure reports — QoSreach, normalized non-QoS
// throughput, QoS overshoot, miss histograms and energy efficiency.
//
// Every figure of the paper has a driver in figures.go returning a Table
// that cmd/qossim prints. Sweeps are deterministic; a Study controls the
// subset of pairs/trios/goals so benchmarks can run reduced versions of
// the full 900/600-case studies. The Runner in runner.go fans case grids
// out over a worker pool with bit-identical results to the serial sweeps.
package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Goals returns the paper's QoS-goal sweep: 50%..95% in 5% steps.
func Goals() []float64 {
	out := make([]float64, 0, 10)
	for g := 0.50; g < 0.951; g += 0.05 {
		out = append(out, g)
	}
	return out
}

// TwoQoSGoals returns the Figure 6c sweep: (25%,25%)..(70%,70%).
func TwoQoSGoals() []float64 {
	out := make([]float64, 0, 10)
	for g := 0.25; g < 0.701; g += 0.05 {
		out = append(out, g)
	}
	return out
}

// PairCase is one (pair, goal, scheme) run outcome.
type PairCase struct {
	Pair   workloads.Pair
	Goal   float64
	Scheme core.Scheme
	Res    *core.Result
}

// QoSKernel returns the QoS kernel's result.
func (c PairCase) QoSKernel() core.KernelResult { return c.Res.Kernels[0] }

// NonQoSKernel returns the non-QoS kernel's result.
func (c PairCase) NonQoSKernel() core.KernelResult { return c.Res.Kernels[1] }

// PairSpecs builds the two-kernel spec list for one pair case. It is
// the single definition of how a (pair, goal) grid coordinate becomes
// simulator input, shared by the serial sweeps, the parallel Runner and
// the distributed sweep workers (internal/distsweep) — so every
// execution path is bit-identical by construction.
func PairSpecs(p workloads.Pair, goal float64) []core.KernelSpec {
	return []core.KernelSpec{
		{Workload: p.QoS, GoalFrac: goal},
		{Workload: p.NonQoS},
	}
}

// TrioSpecs builds the three-kernel spec list for one trio case along
// with its per-QoS-kernel goal list. Like PairSpecs it is shared by
// every execution path (serial, pooled, distributed).
func TrioSpecs(t workloads.Trio, goal float64, nQoS int) ([]core.KernelSpec, []float64) {
	specs := []core.KernelSpec{
		{Workload: t.A, GoalFrac: goal},
		{Workload: t.B},
		{Workload: t.C},
	}
	qg := []float64{goal}
	if nQoS == 2 {
		specs[1].GoalFrac = goal
		qg = []float64{goal, goal}
	}
	return specs, qg
}

// serialProgress emits Progress events for the in-order serial sweeps so
// they feed the same stream the parallel Runner does.
func serialProgress(stage string, total int, progress ProgressFunc) func(done int) {
	if progress == nil {
		return func(int) {}
	}
	start := time.Now()
	return func(done int) {
		p := Progress{Stage: stage, Done: done, Total: total, Elapsed: time.Since(start)}
		p.CasesPerSec, p.ETA = sweepRate(done, total, p.Elapsed)
		progress(p)
	}
}

// PairSweep runs every pair at every goal under the scheme, serially on
// one session. Progress (if non-nil) is invoked after each case for
// long-run visibility. Runner.PairSweep is the parallel equivalent and
// produces identical results.
func PairSweep(ctx context.Context, s *core.Session, pairs []workloads.Pair, goals []float64, scheme core.Scheme, progress ProgressFunc) ([]PairCase, error) {
	out := make([]PairCase, 0, len(pairs)*len(goals))
	tick := serialProgress(scheme.String(), len(pairs)*len(goals), progress)
	for _, p := range pairs {
		for _, g := range goals {
			res, err := s.Run(ctx, PairSpecs(p, g), scheme)
			if err != nil {
				return nil, fmt.Errorf("pair %s+%s @%.2f: %w", p.QoS, p.NonQoS, g, err)
			}
			out = append(out, PairCase{Pair: p, Goal: g, Scheme: scheme, Res: res})
			tick(len(out))
		}
	}
	return out, nil
}

// TrioCase is one trio run outcome. QoSGoals lists the goal fraction per
// QoS kernel (the first len(QoSGoals) members carry goals).
type TrioCase struct {
	Trio     workloads.Trio
	QoSGoals []float64
	Scheme   core.Scheme
	Res      *core.Result
}

// TrioSweep runs every trio at every goal with nQoS QoS kernels (1 or 2),
// serially on one session. For nQoS==1 the goal applies to the trio's
// first member; for nQoS==2 the same goal applies to the first two (the
// paper's 2x25%..2x70%). Runner.TrioSweep is the parallel equivalent.
func TrioSweep(ctx context.Context, s *core.Session, trios []workloads.Trio, goals []float64, nQoS int, scheme core.Scheme, progress ProgressFunc) ([]TrioCase, error) {
	if nQoS < 1 || nQoS > 2 {
		return nil, fmt.Errorf("exp: nQoS must be 1 or 2, got %d", nQoS)
	}
	out := make([]TrioCase, 0, len(trios)*len(goals))
	tick := serialProgress(scheme.String(), len(trios)*len(goals), progress)
	for _, t := range trios {
		for _, g := range goals {
			specs, qg := TrioSpecs(t, g, nQoS)
			res, err := s.Run(ctx, specs, scheme)
			if err != nil {
				return nil, fmt.Errorf("trio %s+%s+%s @%.2f: %w", t.A, t.B, t.C, g, err)
			}
			out = append(out, TrioCase{Trio: t, QoSGoals: qg, Scheme: scheme, Res: res})
			tick(len(out))
		}
	}
	return out, nil
}

// ---- reducers ----

// QoSReach returns the fraction of cases whose QoS goals were all met.
func QoSReach(ok func(i int) bool, n int) float64 {
	if n == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < n; i++ {
		if ok(i) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// PairReachByGoal buckets pair QoSreach per goal value.
func PairReachByGoal(cases []PairCase, goals []float64) map[float64]float64 {
	out := make(map[float64]float64, len(goals))
	for _, g := range goals {
		sub := filterPairs(cases, g)
		out[g] = QoSReach(func(i int) bool { return sub[i].Res.AllReached }, len(sub))
	}
	return out
}

// PairNonQoSThroughputByGoal averages the non-QoS kernel's normalized
// throughput per goal, counting only cases that met the QoS goal — the
// paper's Figure 8 methodology ("we only include the results from the
// cases that meet the QoS goals").
func PairNonQoSThroughputByGoal(cases []PairCase, goals []float64) map[float64]float64 {
	out := make(map[float64]float64, len(goals))
	for _, g := range goals {
		sum, n := 0.0, 0
		for _, c := range filterPairs(cases, g) {
			if !c.Res.AllReached {
				continue
			}
			sum += c.NonQoSKernel().NormThroughput
			n++
		}
		if n > 0 {
			out[g] = sum / float64(n)
		}
	}
	return out
}

// PairOvershootByGoal averages QoS-kernel throughput normalized to the
// goal (Figure 9), over successful cases.
func PairOvershootByGoal(cases []PairCase, goals []float64) map[float64]float64 {
	out := make(map[float64]float64, len(goals))
	for _, g := range goals {
		sum, n := 0.0, 0
		for _, c := range filterPairs(cases, g) {
			if !c.Res.AllReached {
				continue
			}
			sum += c.QoSKernel().GoalRatio
			n++
		}
		if n > 0 {
			out[g] = sum / float64(n)
		}
	}
	return out
}

// MissBuckets is the Figure 5 histogram: how far failed cases missed the
// goal, bucketed as 0-1%, 1-5%, 5-10%, 10-20% and 20+%.
type MissBuckets struct {
	Counts    [5]int
	Total     int // all cases
	Failures  int
	Successes int
	// MeanOvershoot is the average GoalRatio-1 over successes (the
	// paper reports +1.3% for Naive+History).
	MeanOvershoot float64
}

// BucketLabels returns the figure's x-axis labels.
func BucketLabels() [5]string {
	return [5]string{"0-1%", "1-5%", "5-10%", "10-20%", "20+%"}
}

// Misses computes the Figure 5 histogram over pair cases.
func Misses(cases []PairCase) MissBuckets {
	var b MissBuckets
	var overshootSum float64
	for _, c := range cases {
		b.Total++
		q := c.QoSKernel()
		if q.Reached {
			b.Successes++
			overshootSum += q.GoalRatio - 1
			continue
		}
		b.Failures++
		miss := 1 - q.GoalRatio
		switch {
		case miss < 0.01:
			b.Counts[0]++
		case miss < 0.05:
			b.Counts[1]++
		case miss < 0.10:
			b.Counts[2]++
		case miss < 0.20:
			b.Counts[3]++
		default:
			b.Counts[4]++
		}
	}
	if b.Successes > 0 {
		b.MeanOvershoot = overshootSum / float64(b.Successes)
	}
	return b
}

// TrioReachByGoal buckets trio QoSreach per goal value.
func TrioReachByGoal(cases []TrioCase, goals []float64) map[float64]float64 {
	out := make(map[float64]float64, len(goals))
	for _, g := range goals {
		sub := filterTrios(cases, g)
		out[g] = QoSReach(func(i int) bool { return sub[i].Res.AllReached }, len(sub))
	}
	return out
}

// TrioNonQoSThroughputByGoal averages normalized throughput of the trio's
// non-QoS kernels over successful cases.
func TrioNonQoSThroughputByGoal(cases []TrioCase, goals []float64) map[float64]float64 {
	out := make(map[float64]float64, len(goals))
	for _, g := range goals {
		sum, n := 0.0, 0
		for _, c := range filterTrios(cases, g) {
			if !c.Res.AllReached {
				continue
			}
			for _, k := range c.Res.Kernels {
				if !k.IsQoS {
					sum += k.NormThroughput
					n++
				}
			}
		}
		if n > 0 {
			out[g] = sum / float64(n)
		}
	}
	return out
}

// ReachByQoSKernel computes per-benchmark QoSreach (Figure 7) plus the
// C+C / C+M / M+M class summaries.
func ReachByQoSKernel(cases []PairCase) (perKernel map[string]float64, perClass map[string]float64, err error) {
	hits := make(map[string]int)
	tot := make(map[string]int)
	clsHits := make(map[string]int)
	clsTot := make(map[string]int)
	for _, c := range cases {
		tot[c.Pair.QoS]++
		cls, cerr := workloads.PairClass(c.Pair.QoS, c.Pair.NonQoS)
		if cerr != nil {
			return nil, nil, cerr
		}
		clsTot[cls]++
		if c.Res.AllReached {
			hits[c.Pair.QoS]++
			clsHits[cls]++
		}
	}
	perKernel = make(map[string]float64, len(tot))
	for k, t := range tot {
		perKernel[k] = float64(hits[k]) / float64(t)
	}
	perClass = make(map[string]float64, len(clsTot))
	for k, t := range clsTot {
		perClass[k] = float64(clsHits[k]) / float64(t)
	}
	return perKernel, perClass, nil
}

// AvgReach averages QoSreach over all cases.
func AvgReach(cases []PairCase) float64 {
	return QoSReach(func(i int) bool { return cases[i].Res.AllReached }, len(cases))
}

// AvgTrioReach averages QoSreach over all trio cases.
func AvgTrioReach(cases []TrioCase) float64 {
	return QoSReach(func(i int) bool { return cases[i].Res.AllReached }, len(cases))
}

// InstrPerWattByGoal averages instructions/watt per goal over successful
// cases (Figure 14 compares schemes on this).
func InstrPerWattByGoal(cases []PairCase, goals []float64) map[float64]float64 {
	out := make(map[float64]float64, len(goals))
	for _, g := range goals {
		sum, n := 0.0, 0
		for _, c := range filterPairs(cases, g) {
			if !c.Res.AllReached {
				continue
			}
			sum += c.Res.Power.InstrPerWatt
			n++
		}
		if n > 0 {
			out[g] = sum / float64(n)
		}
	}
	return out
}

func filterPairs(cases []PairCase, goal float64) []PairCase {
	var out []PairCase
	for _, c := range cases {
		if c.Goal == goal {
			out = append(out, c)
		}
	}
	return out
}

func filterTrios(cases []TrioCase, goal float64) []TrioCase {
	var out []TrioCase
	for _, c := range cases {
		if c.QoSGoals[0] == goal {
			out = append(out, c)
		}
	}
	return out
}
