package exp

import (
	"fmt"

	"repro/internal/workloads"
)

// CSV row builders shared by cmd/sweep (local execution) and cmd/sweepd
// (distributed coordinator), so both emit byte-identical rows for the
// same cases and offline plotting scripts cannot drift between the two
// front ends.

// PairCSVHeader returns the pair-study CSV header row.
func PairCSVHeader() []string {
	return []string{"scheme", "qos", "nonqos", "class", "goal", "reached",
		"qos_ipc", "qos_goal_ipc", "goal_ratio", "nonqos_norm_tput", "instr_per_watt"}
}

// PairCSVRow renders one completed pair case as a CSV row. Failed cases
// (Res == nil) have no row; callers skip them.
func PairCSVRow(c PairCase) []string {
	q, nq := c.QoSKernel(), c.NonQoSKernel()
	cls, _ := workloads.PairClass(c.Pair.QoS, c.Pair.NonQoS)
	return []string{
		c.Scheme.Name(), c.Pair.QoS, c.Pair.NonQoS, cls,
		fmt.Sprintf("%.2f", c.Goal),
		fmt.Sprint(c.Res.AllReached),
		fmt.Sprintf("%.2f", q.IPC),
		fmt.Sprintf("%.2f", q.GoalIPC),
		fmt.Sprintf("%.4f", q.GoalRatio),
		fmt.Sprintf("%.4f", nq.NormThroughput),
		fmt.Sprintf("%.3e", c.Res.Power.InstrPerWatt),
	}
}

// TrioCSVHeader returns the trio-study CSV header row.
func TrioCSVHeader() []string {
	return []string{"scheme", "a", "b", "c", "nqos", "goal", "reached",
		"ratio_a", "ratio_b", "nonqos_norm_tput"}
}

// TrioCSVRow renders one completed trio case as a CSV row.
func TrioCSVRow(c TrioCase, nQoS int) []string {
	ratioB := ""
	if nQoS == 2 {
		ratioB = fmt.Sprintf("%.4f", c.Res.Kernels[1].GoalRatio)
	}
	var nqNorm float64
	var nqCount int
	for _, k := range c.Res.Kernels {
		if !k.IsQoS {
			nqNorm += k.NormThroughput
			nqCount++
		}
	}
	if nqCount > 0 {
		nqNorm /= float64(nqCount)
	}
	return []string{
		c.Scheme.Name(), c.Trio.A, c.Trio.B, c.Trio.C,
		fmt.Sprint(nQoS),
		fmt.Sprintf("%.2f", c.QoSGoals[0]),
		fmt.Sprint(c.Res.AllReached),
		fmt.Sprintf("%.4f", c.Res.Kernels[0].GoalRatio),
		ratioB,
		fmt.Sprintf("%.4f", nqNorm),
	}
}
