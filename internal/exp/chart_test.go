package exp

import (
	"strings"
	"testing"
)

func chartTable() *Table {
	return &Table{
		ID: "Figure X", Title: "demo",
		Header: []string{"Goal", "Spart", "Rollover"},
		Rows: [][]string{
			{"50%", "80.0%", "90.0%"},
			{"90%", "40.0%", "60.0%"},
			{"AVG", "60.0%", "75.0%"},
		},
		Notes: []string{"a note"},
	}
}

func TestChartRenders(t *testing.T) {
	out := chartTable().Chart(40)
	if !strings.Contains(out, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "Spart") || !strings.Contains(out, "Rollover") {
		t.Fatal("missing series labels")
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("missing note")
	}
	// The largest value (90%) must render the longest bar.
	lines := strings.Split(out, "\n")
	longest, value90 := 0, 0
	for _, l := range lines {
		n := strings.Count(l, "=") // Rollover uses the second glyph
		if n > longest {
			longest = n
		}
		if strings.Contains(l, "90.0%") && strings.Contains(l, "Rollover") {
			value90 = n
		}
	}
	if value90 != longest || longest == 0 {
		t.Fatalf("90%% bar (%d) is not the longest (%d)", value90, longest)
	}
}

func TestChartHandlesNonNumeric(t *testing.T) {
	tbl := chartTable()
	tbl.Rows = append(tbl.Rows, []string{"odd", "-", "n/a"})
	out := tbl.Chart(30)
	if !strings.Contains(out, "n/a") {
		t.Fatal("non-numeric cell dropped")
	}
}

func TestChartMinWidth(t *testing.T) {
	if out := chartTable().Chart(1); out == "" {
		t.Fatal("degenerate width produced nothing")
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42.5", 42.5, true},
		{"80.0%", 0.8, true},
		{" 1.5 ", 1.5, true},
		{"-", 0, false},
		{"", 0, false},
		{"abc", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCell(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseCell(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}
