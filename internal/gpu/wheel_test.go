package gpu

import (
	"reflect"
	"testing"

	"repro/internal/kern"
)

// wheelPair runs the same scenario with event-wheel stepping on and off
// and returns both devices. The wheel contract is byte-identical state,
// so callers compare whatever they care about with reflect.DeepEqual.
func wheelPair(t *testing.T, cycles int64, build func() *GPU, chunk func(*GPU, int64)) (on, off *GPU) {
	t.Helper()
	on, off = build(), build()
	off.SetEventWheel(false)
	chunk(on, cycles)
	chunk(off, cycles)
	return on, off
}

func coRun(t *testing.T) *GPU {
	t.Helper()
	ks := make([]*kern.Kernel, 2)
	for i, p := range []kern.Profile{smallProfile("a"), memProfile("b")} {
		k, err := kern.Build(i, p, 13)
		if err != nil {
			t.Fatal(err)
		}
		ks[i] = k
	}
	g, err := New(smallCfg(), ks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWheelIdleAccountingEquivalence is the regression test for idle
// window accounting under skipped cycles: a run with the event wheel
// jumping over idle stretches must credit exactly the same per-slot idle
// samples and idle-skip windows as cycle-by-cycle stepping. The single
// small kernel drains its grid and sits behind the relaunch gate
// repeatedly, so the run has real fast-forwardable stretches. Sampled
// occupancy is compared per chunk because IdleWarpAverages resets its
// accumulators on read — any drift in idleAcc or idleSamples shows up in
// the first differing interval rather than washing out over the run.
func TestWheelIdleAccountingEquivalence(t *testing.T) {
	build := func() *GPU {
		g, err := New(smallCfg(), buildKernels(t, "a"))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	on, off := build(), build()
	off.SetEventWheel(false)
	for chunk := 0; chunk < 3; chunk++ {
		on.Run(20_000)
		off.Run(20_000)
		av, bv := on.IdleWarpAverages(), off.IdleWarpAverages()
		if !reflect.DeepEqual(av, bv) {
			t.Fatalf("chunk %d: sampled idle-warp averages diverged\nwheel:  %v\nlegacy: %v", chunk, av, bv)
		}
	}
	if on.WheelJumps == 0 {
		t.Fatal("wheel never jumped: the equivalence check is vacuous")
	}
	if off.WheelJumps != 0 {
		t.Fatalf("legacy run jumped %d times with the wheel disabled", off.WheelJumps)
	}
	if !reflect.DeepEqual(*on.Stats[0], *off.Stats[0]) {
		t.Fatalf("kernel stats diverged\nwheel:  %+v\nlegacy: %+v", *on.Stats[0], *off.Stats[0])
	}
	for i, s := range on.SMs {
		r := off.SMs[i]
		if s.IssuedWarpInstrs != r.IssuedWarpInstrs || s.ActiveCycles != r.ActiveCycles {
			t.Fatalf("SM%d counters diverged (issued %d/%d active %d/%d)",
				i, s.IssuedWarpInstrs, r.IssuedWarpInstrs, s.ActiveCycles, r.ActiveCycles)
		}
	}
}

// scriptedController fires a state-mutating action at scripted cycles and
// publishes them through the CycleScheduler contract, so the wheel is
// allowed to skip everything in between. It records the cycles at which
// its actions actually ran.
type scriptedController struct {
	g      *GPU
	events []int64 // ascending
	act    func(g *GPU, now int64, idx int)
	Hits   []int64
}

func (c *scriptedController) OnEpoch(now int64) {}
func (c *scriptedController) OnCycle(now int64) {
	for i, e := range c.events {
		if e == now {
			c.Hits = append(c.Hits, now)
			if c.act != nil {
				c.act(c.g, now, i)
			}
		}
	}
}
func (c *scriptedController) NextControlEvent(now int64) int64 {
	for _, e := range c.events {
		if e >= now {
			return e
		}
	}
	return NoEvent
}

// TestWheelSameCycleEventOrder collides controller events with the other
// event sources — one lands exactly on the scheduled epoch-roll cycle,
// one on an idle-warp sample boundary, one on a plain cycle — and makes
// each action reshape placement (mask flips force drains and
// re-dispatch). If the wheel processed same-cycle events in any order
// other than the legacy per-cycle one (dispatch, SMs, controller,
// sampling, epoch roll), the final counters would diverge.
func TestWheelSameCycleEventOrder(t *testing.T) {
	cfg := smallCfg()
	sampleEvery := cfg.EpochLength / int64(cfg.IdleWarpSamples)
	events := []int64{3*sampleEvery + 1, 7 * sampleEvery, cfg.EpochLength}
	act := func(g *GPU, now int64, idx int) {
		switch idx {
		case 0: // squeeze kernel 1 onto the top half of the device
			g.SetMask(1, []bool{false, false, true, true})
		case 1: // and give it the full device back at a sample boundary
			g.SetMask(1, []bool{true, true, true, true})
		case 2: // epoch-roll collision: nudge every sleeping SM
			g.WakeAll(now)
			g.RequestDispatch()
		}
	}
	var ctls [2]*scriptedController
	i := 0
	build := func() *GPU {
		g := coRun(t)
		c := &scriptedController{g: g, events: events, act: act}
		g.SetController(c)
		ctls[i] = c
		i++
		return g
	}
	on, off := wheelPair(t, 30_000, build, func(g *GPU, n int64) { g.Run(n) })
	if !reflect.DeepEqual(ctls[0].Hits, events) {
		t.Fatalf("wheel run fired actions at %v, want %v", ctls[0].Hits, events)
	}
	if !reflect.DeepEqual(ctls[0].Hits, ctls[1].Hits) {
		t.Fatalf("action cycles diverged: wheel %v legacy %v", ctls[0].Hits, ctls[1].Hits)
	}
	for slot := range on.Stats {
		if !reflect.DeepEqual(*on.Stats[slot], *off.Stats[slot]) {
			t.Fatalf("stats[%d] diverged\nwheel:  %+v\nlegacy: %+v", slot, *on.Stats[slot], *off.Stats[slot])
		}
	}
	if msg := on.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// chainController schedules its next event only while handling the
// current one: processing cycle T immediately arms T+1. The wheel asks
// for the next control event after advancing to T+1, so a correct
// implementation must treat "event at the cycle being asked about" as
// un-skippable; losing it would break the whole chain.
type chainController struct {
	pending int64
	left    int
	Hits    []int64
}

func (c *chainController) OnEpoch(now int64) {}
func (c *chainController) OnCycle(now int64) {
	if now != c.pending {
		return
	}
	c.Hits = append(c.Hits, now)
	if c.left > 0 {
		c.left--
		c.pending = now + 1 // schedule for the immediately next cycle
	} else {
		c.pending = -1
	}
}
func (c *chainController) NextControlEvent(now int64) int64 {
	if c.pending >= now {
		return c.pending
	}
	return NoEvent
}

// TestWheelCurrentCycleEventNotLost drives a chain of events where each
// one is scheduled during the handling of its predecessor, one cycle
// ahead — the tightest possible rescheduling. Every link must fire.
func TestWheelCurrentCycleEventNotLost(t *testing.T) {
	const first, links = 4_111, 5
	run := func(wheel bool) *chainController {
		g, err := New(smallCfg(), buildKernels(t, "a"))
		if err != nil {
			t.Fatal(err)
		}
		c := &chainController{pending: first, left: links}
		g.SetController(c)
		g.SetEventWheel(wheel)
		g.Run(20_000)
		return c
	}
	want := make([]int64, links+1)
	for i := range want {
		want[i] = first + int64(i)
	}
	on, off := run(true), run(false)
	if !reflect.DeepEqual(on.Hits, want) {
		t.Fatalf("wheel run fired %v, want %v (a link was lost)", on.Hits, want)
	}
	if !reflect.DeepEqual(on.Hits, off.Hits) {
		t.Fatalf("wheel %v and legacy %v chains diverged", on.Hits, off.Hits)
	}
}

// TestWheelWakeAllDuringDrain drains an SM mid-run (its warps context
// save and the SM blocks) and fires WakeAll while the drain's restore is
// still pending. The wake must re-arm sleeping schedulers without
// disturbing cycle-exactness, in serial and sharded stepping alike; the
// sharded runs force the worker pool wider than the machine so `go test
// -race` observes real goroutine interleavings across the wake.
func TestWheelWakeAllDuringDrain(t *testing.T) {
	const cycles = 25_000
	events := []int64{5_000, 5_050}
	act := func(g *GPU, now int64, idx int) {
		switch idx {
		case 0:
			g.DrainSM(now, 1)
		case 1:
			g.WakeAll(now)
			g.RequestDispatch()
		}
	}
	run := func(shards, workers int, wheel bool) *GPU {
		g := coRun(t)
		g.SetController(&scriptedController{g: g, events: events, act: act})
		g.SetShardWorkers(workers)
		g.SetShards(shards)
		g.SetEventWheel(wheel)
		g.Run(cycles)
		return g
	}
	ref := run(1, 0, false)
	if ref.Stats[0].ThreadInstrs == 0 || ref.Stats[1].ThreadInstrs == 0 {
		t.Fatal("no progress after drain + WakeAll")
	}
	for _, tc := range []struct {
		name            string
		shards, workers int
		wheel           bool
	}{
		{"serial-wheel", 1, 0, true},
		{"sharded-legacy", 4, 4, false},
		{"sharded-wheel", 4, 4, true},
	} {
		g := run(tc.shards, tc.workers, tc.wheel)
		for slot := range ref.Stats {
			if !reflect.DeepEqual(*ref.Stats[slot], *g.Stats[slot]) {
				t.Errorf("%s: stats[%d] diverged\ngot:  %+v\nwant: %+v", tc.name, slot, *g.Stats[slot], *ref.Stats[slot])
			}
		}
		if msg := g.CheckInvariants(); msg != "" {
			t.Errorf("%s: %s", tc.name, msg)
		}
	}
}
