package gpu

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunCtxPreExpiredDeadline(t *testing.T) {
	g, err := New(smallCfg(), buildKernels(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := g.RunCtx(ctx, 50_000); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if g.Now != 0 {
		t.Fatalf("simulated %d cycles under an expired deadline", g.Now)
	}
}

// TestRunCtxDeadlineReapsMidEpoch cancels a deadlined run from another
// goroutine and expects RunCtx to bail out well before the requested
// window: with a deadline present the context is polled at idle-warp
// sample boundaries, not just at epoch rollover.
func TestRunCtxDeadlineReapsMidEpoch(t *testing.T) {
	g, err := New(smallCfg(), buildKernels(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	const window = 500_000_000 // far more than 2ms of simulated work
	err = g.RunCtx(ctx, window)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if g.Now >= window {
		t.Fatal("run completed the full window despite cancellation")
	}
}
