package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kern"
)

// smallCfg is a 4-SM device for fast whole-GPU tests.
func smallCfg() config.GPU {
	cfg := config.Base()
	cfg.NumSMs = 4
	return cfg
}

func smallProfile(name string) kern.Profile {
	return kern.Profile{
		Name: name, Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 10,
		FracGlobalMem: 0.1, FracStore: 0.2,
		DepDensity:     0.2,
		CoalesceDegree: 1.5, ReuseFrac: 0.5,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, GridTBs: 24,
	}
}

func buildKernels(t *testing.T, names ...string) []*kern.Kernel {
	t.Helper()
	out := make([]*kern.Kernel, len(names))
	for i, n := range names {
		k, err := kern.Build(i, smallProfile(n), 13)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = k
	}
	return out
}

func TestNewValidates(t *testing.T) {
	if _, err := New(smallCfg(), nil); err == nil {
		t.Fatal("New accepted zero kernels")
	}
	bad := smallCfg()
	bad.NumSMs = 0
	if _, err := New(bad, buildKernels(t, "a")); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestIsolatedRunProgress(t *testing.T) {
	g, err := New(smallCfg(), buildKernels(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	g.Run(5_000)
	if g.IPC(0) <= 0 {
		t.Fatal("no progress in isolated run")
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		g, _ := New(smallCfg(), buildKernels(t, "a", "b"))
		g.Run(20_000)
		return g.Stats[0].ThreadInstrs, g.Stats[1].ThreadInstrs
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestIPCBoundedByPeak(t *testing.T) {
	cfg := smallCfg()
	g, _ := New(cfg, buildKernels(t, "a"))
	g.Run(10_000)
	peak := float64(cfg.PeakIssuePerCycle() * cfg.WarpSize)
	if g.IPC(0) > peak {
		t.Fatalf("IPC %v exceeds architectural peak %v", g.IPC(0), peak)
	}
}

func TestKernelRelaunch(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a"))
	g.Run(200_000)
	if g.Stats[0].Launches < 2 {
		t.Fatalf("kernel never relaunched (launches = %d)", g.Stats[0].Launches)
	}
	if g.Stats[0].TBsCompleted < int64(g.Kernels[0].Profile.GridTBs) {
		t.Fatal("first launch never drained")
	}
}

func TestMaskRestrictsPlacement(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a", "b"))
	g.SetMask(0, []bool{true, true, false, false})
	g.SetMask(1, []bool{false, false, true, true})
	// Check placement every cycle: TBs of a kernel must never appear
	// outside its mask, including across relaunches.
	for i := 0; i < 40; i++ {
		g.Run(50)
		if g.SMs[2].ResidentTBs(0)+g.SMs[3].ResidentTBs(0) != 0 {
			t.Fatal("kernel 0 placed outside its mask")
		}
		if g.SMs[0].ResidentTBs(1)+g.SMs[1].ResidentTBs(1) != 0 {
			t.Fatal("kernel 1 placed outside its mask")
		}
	}
	if g.Stats[0].ThreadInstrs == 0 || g.Stats[1].ThreadInstrs == 0 {
		t.Fatal("masked kernels made no progress")
	}
}

func TestBalancedDispatch(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a"))
	g.Run(100)
	min, max := 1<<30, 0
	for _, s := range g.SMs {
		n := s.ResidentTBs(0)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced dispatch: min %d max %d TBs per SM", min, max)
	}
}

func TestPreemptOneTBAndResume(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a", "b"))
	g.Run(500)
	before := g.SMs[0].ResidentTBs(0)
	if before == 0 {
		t.Skip("no TBs of kernel 0 on SM0")
	}
	if !g.PreemptOneTB(500, 0, 0) {
		t.Fatal("PreemptOneTB failed")
	}
	if g.SMs[0].ResidentTBs(0) != before-1 {
		t.Fatal("TB count unchanged after preemption")
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// The saved context resumes and the kernel still completes its grid.
	g.Run(300_000)
	if g.Stats[0].Launches < 2 {
		t.Fatal("kernel with preempted TB never completed a launch")
	}
}

func TestDrainSM(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a"))
	g.Run(500)
	g.DrainSM(500, 1)
	if g.SMs[1].ResidentTBs(0) != 0 {
		t.Fatal("SM not empty after drain")
	}
	if g.SMs[1].BlockedUntil <= 500 {
		t.Fatal("drained SM not blocked")
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestIdleWarpAveragesReset(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a"))
	g.Run(12_000)
	first := g.IdleWarpAverages()
	if len(first) != 4 {
		t.Fatalf("averages for %d SMs", len(first))
	}
	second := g.IdleWarpAverages()
	for i := range second {
		for j := range second[i] {
			if second[i][j] != 0 {
				t.Fatal("accumulators not reset after read")
			}
		}
	}
}

func TestControllerHooksFire(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a"))
	c := &countingController{}
	g.SetController(c)
	g.Run(25_000)
	if c.cycles == 0 {
		t.Fatal("OnCycle never fired")
	}
	if c.epochs != 2 {
		t.Fatalf("OnEpoch fired %d times in 25K cycles, want 2", c.epochs)
	}
}

type countingController struct {
	cycles int64
	epochs int
}

func (c *countingController) OnCycle(now int64) { c.cycles++ }
func (c *countingController) OnEpoch(now int64) { c.epochs++ }

func TestEpochRecorder(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a"))
	g.Run(35_000)
	if len(g.Rec.ByKernel[0]) != 3 {
		t.Fatalf("%d epoch records in 35K cycles, want 3", len(g.Rec.ByKernel[0]))
	}
	if g.Rec.MeanEpochInstrs(0) <= 0 {
		t.Fatal("epoch records carry no work")
	}
}

func TestRunIsResumable(t *testing.T) {
	g1, _ := New(smallCfg(), buildKernels(t, "a"))
	g1.Run(10_000)
	g1.Run(10_000)
	g2, _ := New(smallCfg(), buildKernels(t, "a"))
	g2.Run(20_000)
	if g1.Stats[0].ThreadInstrs != g2.Stats[0].ThreadInstrs {
		t.Fatal("split Run differs from a single Run of the same length")
	}
}

func TestTotalThreadInstrs(t *testing.T) {
	g, _ := New(smallCfg(), buildKernels(t, "a", "b"))
	g.Run(10_000)
	if g.TotalThreadInstrs() != g.Stats[0].ThreadInstrs+g.Stats[1].ThreadInstrs {
		t.Fatal("TotalThreadInstrs does not sum per-kernel counters")
	}
}
