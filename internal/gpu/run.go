package gpu

import (
	"context"

	"repro/internal/metrics"
)

// Run advances the GPU for the given number of cycles, driving the TB
// scheduler, the SMs, idle-warp sampling and the controller hooks. It can
// be called repeatedly to extend a simulation.
func (g *GPU) Run(cycles int64) {
	// context.Background never cancels, so the error can't happen.
	_ = g.RunCtx(context.Background(), cycles)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// once per quota epoch (the natural consistency point — counters have
// just been rolled and the controller consulted), so a cancel mid-window
// returns within one epoch of simulated work rather than after the full
// window. When the context carries a deadline — the sweep engine's
// per-case timeout — it is additionally polled at every idle-warp sample
// boundary, so a case that stops making progress (for example an epoch
// whose simulated work degenerates) is reaped at sub-epoch granularity
// instead of pinning its worker slot for a whole epoch. It returns the
// context's error when canceled, nil otherwise.
func (g *GPU) RunCtx(ctx context.Context, cycles int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// SMs batch ThrottledCycles attribution while idle-skipping; settle
	// before control returns so results read a consistent snapshot. In
	// sharded mode the per-SM stats shards are drained afterwards (the
	// settle writes throttle counts into the shards).
	defer func() {
		for _, s := range g.SMs {
			s.SettleIdle()
		}
		g.drainStatShards()
	}()
	var pool *shardPool
	if g.shards > 1 {
		pool = newShardPool(g)
		defer pool.stop()
	}
	_, deadlined := ctx.Deadline()
	end := g.Now + cycles
	sampleEvery := g.Cfg.EpochLength / int64(g.Cfg.IdleWarpSamples)
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	// Event-wheel stepping: after each processed cycle the loop asks
	// every event source for its next interesting cycle and jumps
	// straight there when that is in the future. A controller that does
	// not publish its next control event (CycleScheduler) pins the loop
	// to per-cycle stepping so its OnCycle hook keeps firing every cycle.
	wheel := !g.wheelOff
	var sched CycleScheduler
	if g.controller != nil {
		cs, ok := g.controller.(CycleScheduler)
		if !ok {
			wheel = false
		}
		sched = cs
	}
	for g.Now < end {
		now := g.Now
		// The TB scheduler runs when work completed or controllers
		// changed allocation; the periodic fallback picks up launch
		// gates and context-restore completions.
		if g.needDispatch || now%64 == 0 {
			g.dispatch(now)
		}
		// Rotate the SM service order every cycle: memory backpressure is
		// evaluated at issue time, so a fixed order would hand the
		// whole under-cap admission budget to the lowest-numbered SMs
		// every cycle and starve the rest. The modulo must happen in
		// int64: int(now)%n goes negative past 2^31 cycles on 32-bit
		// ints, turning the rotation index into a panic-grade offset.
		n := len(g.SMs)
		start := int(now % int64(n))
		if pool != nil {
			// Phase A: every SM advances in parallel, capturing its
			// shared-state effects. Phase B: replay the captures in the
			// same rotated order the serial stepper visits SMs in, so
			// the shared memory system, tracer and launch bookkeeping
			// observe the identical global sequence.
			pool.step(now)
			for _, s := range g.SMs[start:] {
				s.FlushDeferred(now)
			}
			for _, s := range g.SMs[:start] {
				s.FlushDeferred(now)
			}
		} else {
			// Two bounds-check-free sweeps replace the per-SM modulo of
			// the rotated index walk; this loop runs once per simulated
			// cycle per SM and the division was visible in profiles.
			for _, s := range g.SMs[start:] {
				s.Cycle(now)
			}
			for _, s := range g.SMs[:start] {
				s.Cycle(now)
			}
		}
		if g.controller != nil {
			g.controller.OnCycle(now)
		}
		if now%sampleEvery == 0 {
			for _, s := range g.SMs {
				s.SampleIdleWarps(now, g.idleAcc[s.ID])
			}
			g.idleSamples++
			if deadlined {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		if now >= g.nextEpochAt {
			// Scheduled roll. A controller that already forced a roll
			// this interval pushed nextEpochAt past now, so the two can
			// never fire for the same epoch.
			g.rollEpoch(now)
			g.nextEpochAt = now + g.Cfg.EpochLength
			g.cEpochs.Inc()
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		g.Now++
		if wheel {
			if next := g.nextEventAt(g.Now, end, sampleEvery, sched); next > g.Now {
				// Every cycle in [g.Now, next) is provably a no-op for
				// every source; the only legacy effect — per-SM idle
				// skip counting — is credited in bulk.
				for _, s := range g.SMs {
					s.CreditIdle(g.Now, next)
				}
				g.WheelJumps++
				g.WheelSkipped += next - g.Now
				g.Now = next
			}
		}
	}
	return nil
}

// nextEventAt returns the earliest cycle in [a, end] any event source has
// scheduled work for. A cycle t is "scheduled" when processing it with
// the per-cycle body could change state or emit observable effects:
//
//   - the TB scheduler must run (needDispatch, or a kernel-relaunch gate
//     crossing that the periodic now%64 fallback would pick up);
//   - an SM leaves its blocked/idle window (sm.NextEventAt);
//   - the controller's OnCycle hook could act (CycleScheduler);
//   - the memory system requires attention (mem.System.NextEventAt);
//   - an idle-warp sample boundary (now % sampleEvery == 0) — sampling,
//     idleSamples and the deadline poll must observe every boundary;
//   - the scheduled epoch roll (nextEpochAt).
//
// Every skipped cycle in between is a no-op in the legacy loop apart from
// per-SM idle-skip counting, which CreditIdle reproduces exactly.
func (g *GPU) nextEventAt(a, end int64, sampleEvery int64, sched CycleScheduler) int64 {
	if g.needDispatch {
		return a
	}
	next := end
	if g.nextEpochAt < next {
		next = g.nextEpochAt
	}
	if sb := ((a + sampleEvery - 1) / sampleEvery) * sampleEvery; sb < next {
		next = sb
	}
	if next <= a {
		return a
	}
	// The SM scan comes first: the min over sources is order-independent,
	// and on a busy machine the first active SM already pins the loop to
	// per-cycle stepping, so checking SMs before the controller, memory
	// and launch-gate sources lets the dense case return after one probe
	// instead of paying every scan every cycle.
	for _, s := range g.SMs {
		if t := s.NextEventAt(a); t < next {
			next = t
		}
		if next <= a {
			return a
		}
	}
	if sched != nil {
		if t := sched.NextControlEvent(a); t < next {
			next = t
		}
	}
	if t := g.Mem.NextEventAt(a); t < next {
		next = t
	}
	if next <= a {
		return a
	}
	// Kernel relaunches re-enter dispatch through the periodic now%64
	// fallback once their launch gate passes. A gate crossing not yet
	// seen by a dispatch run schedules the first %64 cycle at/after it;
	// all other dispatch triggers (retires, preemptions, mask and cap
	// changes, context restores becoming placeable) set needDispatch.
	for slot := range g.Kernels {
		if g.nextGridIdx[slot] >= g.Kernels[slot].Profile.GridTBs {
			continue
		}
		gate := g.launchGateAt[slot]
		if g.lastDispatchAt >= gate {
			continue
		}
		t := gate
		if t < a {
			t = a
		}
		if t = (t + 63) &^ 63; t < next {
			next = t
		}
	}
	if next < a {
		return a
	}
	return next
}

// rollEpoch snapshots per-kernel epoch counters, records them, and fires
// the controller's epoch hook.
func (g *GPU) rollEpoch(now int64) {
	// The epoch counters and the controller's epoch hook read the master
	// stats; fold in whatever the SMs accumulated privately first.
	g.drainStatShards()
	g.epochIdx++
	g.tracer.SetEpoch(g.epochIdx)
	for slot, st := range g.Stats {
		instrs := st.BeginEpoch()
		tbs := g.TotalResidentTBs(slot)
		g.Rec.Add(slot, metrics.EpochRecord{
			Epoch:    g.epochIdx,
			EndCycle: now,
			Instrs:   instrs,
			TBsHeld:  tbs,
		})
		g.tracer.EpochRoll(now, slot, instrs, tbs)
	}
	if g.controller != nil {
		g.controller.OnEpoch(now)
	}
}

// ForceEpochRoll rolls the epoch immediately — counters, records,
// controller hook — and restarts the scheduled epoch clock a full epoch
// from now. Controllers that shorten epochs (Elastic) call this instead
// of duplicating the roll locally, so the GPU's EpochRecords and the
// controller's OnEpoch observations always describe the same interval.
func (g *GPU) ForceEpochRoll(now int64) {
	g.rollEpoch(now)
	g.nextEpochAt = now + g.Cfg.EpochLength
	g.cForcedEpochs.Inc()
}

// EpochIndex returns the number of epoch rolls (scheduled plus forced) so
// far.
func (g *GPU) EpochIndex() int { return g.epochIdx }

// NextEpochAt returns the cycle of the next scheduled epoch roll.
func (g *GPU) NextEpochAt() int64 { return g.nextEpochAt }

// IdleWarpAverages returns the mean sampled idle-warp count per SM and
// kernel slot since the last call, then resets the accumulators. The
// static resource manager consumes this once per epoch (Section 3.6).
func (g *GPU) IdleWarpAverages() [][]float64 {
	out := make([][]float64, len(g.idleAcc))
	for i := range g.idleAcc {
		out[i] = make([]float64, len(g.idleAcc[i]))
		for j, v := range g.idleAcc[i] {
			if g.idleSamples > 0 {
				out[i][j] = float64(v) / float64(g.idleSamples)
			}
			g.idleAcc[i][j] = 0
		}
	}
	g.idleSamples = 0
	return out
}

// IPC returns kernel slot's thread-IPC over its active window (first
// issue through last issue). A kernel that launched late (relaunch
// delay, deferred context restore) or drained early is judged on the
// cycles it could actually issue in, not on wall-clock cycles it never
// saw — the dilution previously made goal-attainment checks pass or
// fail on scheduling artifacts.
func (g *GPU) IPC(slot int) float64 { return g.Stats[slot].ActiveIPC() }

// TotalThreadInstrs sums executed thread instructions across kernels.
func (g *GPU) TotalThreadInstrs() int64 {
	var sum int64
	for _, st := range g.Stats {
		sum += st.ThreadInstrs
	}
	return sum
}

// CheckInvariants validates cross-SM accounting; tests call this after
// runs. It returns "" when healthy.
func (g *GPU) CheckInvariants() string {
	for slot := range g.Kernels {
		resident := g.TotalResidentTBs(slot)
		if resident != g.outstanding[slot] {
			return "outstanding TB accounting mismatch"
		}
	}
	for _, s := range g.SMs {
		if msg := s.CheckInvariants(); msg != "" {
			return msg
		}
	}
	return ""
}
