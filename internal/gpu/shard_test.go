package gpu

import (
	"reflect"
	"testing"

	"repro/internal/kern"
)

// memProfile is a memory-heavy profile so the equivalence runs exercise
// the deferred memory-system path, MSHR/credit pressure and TB churn.
func memProfile(name string) kern.Profile {
	p := smallProfile(name)
	p.Class = kern.ClassMemory
	p.FracGlobalMem = 0.5
	p.ReuseFrac = 0.1
	p.Iterations = 30
	return p
}

// runOnce executes a fresh two-kernel co-run and returns the device for
// result comparison.
func runOnce(t *testing.T, shards, workers int, cycles int64) *GPU {
	t.Helper()
	ks := make([]*kern.Kernel, 2)
	for i, p := range []kern.Profile{smallProfile("a"), memProfile("b")} {
		k, err := kern.Build(i, p, 13)
		if err != nil {
			t.Fatal(err)
		}
		ks[i] = k
	}
	g, err := New(smallCfg(), ks)
	if err != nil {
		t.Fatal(err)
	}
	g.SetShardWorkers(workers)
	g.SetShards(shards)
	g.Run(cycles)
	return g
}

// TestShardEquivalence proves the sharded stepper is bit-identical to the
// serial one: same per-kernel stats, same epoch-record trajectories, same
// SM-level counters — across shard counts and with the worker pool forced
// wider than the machine (so `go test -race` observes real goroutine
// interleavings even on one CPU).
func TestShardEquivalence(t *testing.T) {
	const cycles = 25_000
	ref := runOnce(t, 1, 0, cycles)
	for _, n := range []int{2, 4} {
		g := runOnce(t, n, 4, cycles)
		for slot := range ref.Stats {
			if !reflect.DeepEqual(*ref.Stats[slot], *g.Stats[slot]) {
				t.Errorf("shards=%d: stats[%d] diverged\nserial: %+v\nsharded: %+v",
					n, slot, *ref.Stats[slot], *g.Stats[slot])
			}
			if !reflect.DeepEqual(ref.Rec.ByKernel[slot], g.Rec.ByKernel[slot]) {
				t.Errorf("shards=%d: epoch records of slot %d diverged\nserial: %+v\nsharded: %+v",
					n, slot, ref.Rec.ByKernel[slot], g.Rec.ByKernel[slot])
			}
			if ref.IPC(slot) != g.IPC(slot) {
				t.Errorf("shards=%d: IPC[%d] = %v, serial %v", n, slot, g.IPC(slot), ref.IPC(slot))
			}
		}
		for i, s := range g.SMs {
			r := ref.SMs[i]
			if s.IssuedWarpInstrs != r.IssuedWarpInstrs || s.ActiveCycles != r.ActiveCycles ||
				s.Outstanding() != r.Outstanding() {
				t.Errorf("shards=%d: SM%d counters diverged (issued %d/%d active %d/%d outstanding %d/%d)",
					n, i, s.IssuedWarpInstrs, r.IssuedWarpInstrs, s.ActiveCycles, r.ActiveCycles,
					s.Outstanding(), r.Outstanding())
			}
			if msg := s.CheckInvariants(); msg != "" {
				t.Errorf("shards=%d: SM%d invariant: %s", n, i, msg)
			}
		}
		if msg := g.CheckInvariants(); msg != "" {
			t.Errorf("shards=%d: %s", n, msg)
		}
	}
}

// TestShardsClampAndReset covers the mode switches: shard counts clamp to
// the SM count, and returning to serial drains the stat shards so no
// counts are stranded.
func TestShardsClampAndReset(t *testing.T) {
	g := runOnce(t, 64, 2, 12_000) // clamped to NumSMs=4
	if g.Shards() != 4 {
		t.Fatalf("Shards() = %d after SetShards(64) on a 4-SM device, want 4", g.Shards())
	}
	ref := runOnce(t, 1, 0, 12_000)
	instrs := g.Stats[0].ThreadInstrs + g.Stats[1].ThreadInstrs
	want := ref.Stats[0].ThreadInstrs + ref.Stats[1].ThreadInstrs
	if instrs != want {
		t.Fatalf("clamped sharded run executed %d instrs, serial %d", instrs, want)
	}
	// Switching back to serial must drain shards and detach capture mode.
	g.SetShards(1)
	if g.Shards() != 1 {
		t.Fatalf("Shards() = %d after SetShards(1), want 1", g.Shards())
	}
	g.Run(12_000)
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if g.Stats[0].ThreadInstrs+g.Stats[1].ThreadInstrs <= instrs {
		t.Fatal("no progress after switching back to serial stepping")
	}
}
