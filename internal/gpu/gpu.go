// Package gpu assembles the simulated device: the SMs, the memory system,
// the preemption engine, and the (enhanced) thread-block scheduler that
// implements the three sharing modes the paper compares:
//
//   - isolated execution (one kernel owns the whole GPU),
//   - fine-grained sharing (SMK-style: kernels co-reside within SMs,
//     subject to per-SM, per-kernel TB caps — Figure 2c), and
//   - spatial partitioning (each SM owned by one kernel — Figure 2b).
//
// A Controller (the QoS manager or the Spart hill climber) observes the
// run through per-cycle and per-epoch hooks and steers TB caps, SM masks
// and the warp schedulers' quota gate.
package gpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/preempt"
	"repro/internal/sm"
	"repro/internal/trace"
)

// Controller steers a running GPU. Implementations: qos.Manager,
// spart.Controller, or nil for unmanaged sharing.
type Controller interface {
	// OnCycle runs every cycle before SM issue; keep it cheap.
	OnCycle(now int64)
	// OnEpoch runs at fixed epoch boundaries (cfg.EpochLength), after
	// per-kernel epoch counters have been rolled.
	OnEpoch(now int64)
}

// NoEvent is the sentinel an event source returns when it has nothing
// scheduled: no cycle at or after the queried one needs its attention.
// It is far beyond any reachable cycle count.
const NoEvent = int64(1) << 62

// CycleScheduler is the optional Controller extension that lets the
// event-wheel stepper skip cycles. NextControlEvent(now) returns the
// earliest cycle >= now at which the controller's OnCycle hook could do
// anything other than return immediately (NoEvent when no such cycle is
// scheduled), under the promise that the GPU state the answer depends on
// does not change during a skipped stretch — every SM is idle, so no
// instruction issues and no counter moves. A Controller that does not
// implement CycleScheduler disables the event wheel: the loop falls back
// to ticking every cycle so the hook keeps firing per cycle.
type CycleScheduler interface {
	NextControlEvent(now int64) int64
}

// GPU is one simulated device executing a fixed co-run of kernels.
type GPU struct {
	Cfg    config.GPU
	SMs    []*sm.SM
	Mem    *mem.System
	Engine *preempt.Engine

	Kernels []*kern.Kernel
	Stats   []*metrics.KernelStats
	Rec     *metrics.Recorder

	controller Controller
	gate       sm.QuotaGate

	// Observability (nil-safe; nil when tracing is off).
	tracer        *trace.Tracer
	cEpochs       *trace.Counter // scheduled epoch rolls
	cForcedEpochs *trace.Counter // controller-forced (elastic) rolls

	// masks[slot][smID]: whether the kernel may hold TBs on the SM.
	masks [][]bool

	// Per-kernel launch state.
	nextGridIdx  []int             // next fresh TB of the current launch
	outstanding  []int             // dispatched but not yet completed TBs
	savedCtxs    [][]*sm.TBContext // preempted contexts awaiting resume
	ctxReadyAt   [][]int64         // earliest start for each saved context
	launchGateAt []int64           // relaunch delay gate

	// Idle-warp sampling accumulators (smID x slot).
	idleAcc     [][]int64
	idleSamples int64

	needDispatch bool
	Now          int64
	epochIdx     int

	// Event-wheel stepping (see run.go). wheelOff disables the
	// whole-machine cycle skipping (escape hatch; the per-SM idle fast
	// path inside sm.Cycle stays on). lastDispatchAt records the cycle
	// of the last TB-scheduler invocation, so the wheel knows whether a
	// pending kernel-relaunch gate crossing has been serviced yet.
	wheelOff       bool
	lastDispatchAt int64
	// WheelJumps / WheelSkipped count the wheel's forward jumps and the
	// total cycles they fast-forwarded over; purely observational (the
	// equivalence tests use them to prove a run actually exercised
	// skipping, and experiment reports quote them).
	WheelJumps   int64
	WheelSkipped int64

	// Sharded stepping (see shard.go). shards <= 1 is the serial
	// stepper; shardStats holds each SM's private stats shard while
	// sharding is on.
	shards       int
	shardWorkers int
	shardStats   [][]*metrics.KernelStats

	// nextEpochAt is the cycle of the next scheduled epoch roll. Epochs
	// are tracked as a moving deadline rather than `now % EpochLength`:
	// a controller that restarts an epoch early (Elastic, Section 3.4.3)
	// calls ForceEpochRoll, which rolls the counters *and* pushes the
	// deadline out a full epoch — so a forced roll and the fixed modulo
	// can never both fire for the same interval (the double-roll bug
	// that mis-attributed instructions to the wrong EpochRecord).
	nextEpochAt int64
}

// New builds a GPU for the configuration and co-running kernels. The
// returned GPU has every kernel allowed on every SM (fine-grained default)
// with no TB caps and no controller; use the setters before Run.
func New(cfg config.GPU, kernels []*kern.Kernel) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("gpu: need at least one kernel")
	}
	g := &GPU{
		Cfg:     cfg,
		Mem:     mem.New(cfg),
		Engine:  preempt.New(cfg),
		Kernels: kernels,
		Rec:     metrics.NewRecorder(len(kernels)),
	}
	g.Stats = make([]*metrics.KernelStats, len(kernels))
	for i := range g.Stats {
		g.Stats[i] = &metrics.KernelStats{}
	}
	g.SMs = make([]*sm.SM, cfg.NumSMs)
	for i := range g.SMs {
		s := sm.New(i, cfg, g.Mem)
		s.Configure(kernels, g.Stats, nil)
		s.OnTBComplete = g.onTBComplete
		g.SMs[i] = s
	}
	g.masks = make([][]bool, len(kernels))
	for s := range g.masks {
		g.masks[s] = make([]bool, cfg.NumSMs)
		for i := range g.masks[s] {
			g.masks[s][i] = true
		}
	}
	n := len(kernels)
	g.nextGridIdx = make([]int, n)
	g.outstanding = make([]int, n)
	g.savedCtxs = make([][]*sm.TBContext, n)
	g.ctxReadyAt = make([][]int64, n)
	g.launchGateAt = make([]int64, n)
	for i := range kernels {
		g.Stats[i].Launches = 1
	}
	g.idleAcc = make([][]int64, cfg.NumSMs)
	for i := range g.idleAcc {
		g.idleAcc[i] = make([]int64, n)
	}
	g.needDispatch = true
	g.lastDispatchAt = -1
	g.nextEpochAt = cfg.EpochLength
	return g, nil
}

// SetController installs the run controller (may be nil).
func (g *GPU) SetController(c Controller) { g.controller = c }

// SetEventWheel enables or disables event-wheel stepping (the default is
// on). Wheel runs are bit-identical to per-cycle runs; the switch exists
// as a debugging escape hatch and for the equivalence tests that prove
// that claim.
func (g *GPU) SetEventWheel(on bool) { g.wheelOff = !on }

// EventWheel reports whether event-wheel stepping is enabled.
func (g *GPU) EventWheel() bool { return !g.wheelOff }

// SetTracer attaches the observability tracer to the device and every SM
// (nil detaches). Controllers read it back via Tracer.
func (g *GPU) SetTracer(tr *trace.Tracer) {
	g.tracer = tr
	g.cEpochs = tr.Registry().Counter("epochs")
	g.cForcedEpochs = tr.Registry().Counter("epochs_forced")
	for _, s := range g.SMs {
		s.SetTracer(tr)
	}
}

// Tracer returns the attached tracer (possibly nil).
func (g *GPU) Tracer() *trace.Tracer { return g.tracer }

// SetGate installs the warp schedulers' quota gate on every SM without
// disturbing TB caps or residency.
func (g *GPU) SetGate(gate sm.QuotaGate) {
	g.gate = gate
	for _, s := range g.SMs {
		s.SetGate(gate)
	}
}

// SetMask restricts a kernel slot to the given SM set.
func (g *GPU) SetMask(slot int, allowed []bool) {
	if len(allowed) != g.Cfg.NumSMs {
		panic("gpu: mask length mismatch")
	}
	copy(g.masks[slot], allowed)
	g.needDispatch = true
}

// Mask returns (a copy of) the slot's SM mask.
func (g *GPU) Mask(slot int) []bool {
	out := make([]bool, g.Cfg.NumSMs)
	copy(out, g.masks[slot])
	return out
}

// Allowed reports whether slot may hold TBs on smID.
func (g *GPU) Allowed(slot, smID int) bool { return g.masks[slot][smID] }

// TotalResidentTBs returns the kernel's TB count across all SMs.
func (g *GPU) TotalResidentTBs(slot int) int {
	n := 0
	for _, s := range g.SMs {
		n += s.ResidentTBs(slot)
	}
	return n
}

// WakeAll clears every SM's scheduler sleep cache (quota replenishment).
func (g *GPU) WakeAll(now int64) {
	for _, s := range g.SMs {
		s.Wake(now)
	}
}

// RequestDispatch asks the TB scheduler to run at the next opportunity
// (controllers call this after changing caps or masks).
func (g *GPU) RequestDispatch() { g.needDispatch = true }

// onTBComplete is the SM completion callback.
func (g *GPU) onTBComplete(smID, slot int) {
	g.outstanding[slot]--
	g.needDispatch = true
	// Relaunch the kernel when the grid fully drains (Section 4.1: a
	// benchmark ending before the measurement window is re-executed).
	if g.outstanding[slot] == 0 &&
		g.nextGridIdx[slot] >= g.Kernels[slot].Profile.GridTBs &&
		len(g.savedCtxs[slot]) == 0 {
		g.nextGridIdx[slot] = 0
		g.launchGateAt[slot] = g.Now + g.Cfg.KernelLaunchDelay
		g.Stats[slot].Launches++
		g.tracer.KernelRelaunch(g.Now, slot, g.Stats[slot].Launches)
	}
}

// PreemptOneTB saves one TB of slot on smID for later resumption and
// charges the context-move cost. It reports whether a TB was preempted.
func (g *GPU) PreemptOneTB(now int64, smID, slot int) bool {
	ctx, bytes, ok := g.SMs[smID].PreemptTB(now, slot)
	if !ok {
		return false
	}
	doneAt := g.Engine.BeginSwap(now, smID, bytes)
	g.savedCtxs[slot] = append(g.savedCtxs[slot], ctx)
	g.ctxReadyAt[slot] = append(g.ctxReadyAt[slot], doneAt)
	g.outstanding[slot]--
	g.needDispatch = true
	return true
}

// DrainSM preempts every TB on smID (spatial repartitioning) and blocks
// the SM for the drain penalty. Saved contexts resume elsewhere.
func (g *GPU) DrainSM(now int64, smID int) {
	s := g.SMs[smID]
	ctxs, bytes := s.DrainAll(now)
	doneAt := g.Engine.BeginDrain(now, smID, bytes)
	s.BlockedUntil = doneAt
	for _, ctx := range ctxs {
		g.savedCtxs[ctx.Slot] = append(g.savedCtxs[ctx.Slot], ctx)
		g.ctxReadyAt[ctx.Slot] = append(g.ctxReadyAt[ctx.Slot], doneAt)
		g.outstanding[ctx.Slot]--
	}
	g.needDispatch = true
}

// dispatch runs the enhanced TB scheduler: it balances TBs of each kernel
// across its allowed SMs (symmetric allocation, Section 3.6), resuming
// saved contexts first. One TB is placed per kernel per round so sharer
// kernels interleave fairly.
func (g *GPU) dispatch(now int64) {
	g.needDispatch = false
	g.lastDispatchAt = now
	progress := true
	for progress {
		progress = false
		for slot := range g.Kernels {
			if !g.hasWork(now, slot) {
				continue
			}
			smID := g.pickSM(slot)
			if smID < 0 {
				continue
			}
			g.placeTB(now, smID, slot)
			progress = true
		}
	}
}

// hasWork reports whether slot has a TB ready to place at now. Saved
// contexts are always placeable — their warps simply start once the
// context restore completes (deferred start).
func (g *GPU) hasWork(now int64, slot int) bool {
	if len(g.savedCtxs[slot]) > 0 {
		return true
	}
	return g.nextGridIdx[slot] < g.Kernels[slot].Profile.GridTBs && now >= g.launchGateAt[slot]
}

// pickSM returns the allowed, admitting SM with the fewest TBs of slot
// (balanced placement), or -1.
func (g *GPU) pickSM(slot int) int {
	best, bestTBs := -1, 1<<30
	for i, s := range g.SMs {
		if !g.masks[slot][i] || !s.FreeFor(slot) {
			continue
		}
		if n := s.ResidentTBs(slot); n < bestTBs {
			best, bestTBs = i, n
		}
	}
	return best
}

// placeTB dispatches one TB of slot onto smID, resuming a saved context
// when one is pending (restore cost defers the warps' first issue).
func (g *GPU) placeTB(now int64, smID, slot int) {
	s := g.SMs[smID]
	if len(g.savedCtxs[slot]) > 0 {
		ctx := g.savedCtxs[slot][0]
		readyAt := g.ctxReadyAt[slot][0]
		g.savedCtxs[slot] = g.savedCtxs[slot][1:]
		g.ctxReadyAt[slot] = g.ctxReadyAt[slot][1:]
		restoreDone := g.Engine.BeginSwap(now, smID, ctx.Kernel.TBResources().CtxBytes)
		if readyAt > restoreDone {
			restoreDone = readyAt
		}
		tb := s.Dispatch(now, slot, ctx.GridIdx, ctx)
		s.DeferTB(tb, restoreDone)
		g.outstanding[slot]++
		return
	}
	idx := g.nextGridIdx[slot]
	g.nextGridIdx[slot]++
	s.Dispatch(now, slot, idx, nil)
	g.outstanding[slot]++
}
