package gpu

import (
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Sharded stepping: RunCtx splits each GPU cycle into a parallel phase A,
// where every SM advances touching only SM-private state (the SMs run in
// deferred-capture mode — see internal/sm), and a serial phase B, where
// each SM replays its captured shared-state effects in the exact rotated
// SM order the serial stepper uses. Because every shared structure (the
// memory system, the tracer, the GPU's launch bookkeeping, the stats
// masters) is only touched in phase B, and in the identical global order,
// a sharded run is bit-identical to a serial one — the mode is a pure
// wall-clock optimization, opt-in via SetShards / core.WithShards.

// SetShards selects the stepping mode: n <= 1 is the default serial
// stepper; n > 1 steps the SMs in n shards (SM i belongs to shard
// i mod n) on a small worker pool. The value is clamped to the SM count.
// Safe to call between Run invocations; switching back to serial drains
// the per-SM stats shards into the masters first.
func (g *GPU) SetShards(n int) {
	if n > len(g.SMs) {
		n = len(g.SMs)
	}
	if n < 1 {
		n = 1
	}
	if n <= 1 {
		if g.shardStats != nil {
			g.drainStatShards()
			for _, s := range g.SMs {
				s.SetStats(g.Stats)
				s.SetDeferred(false)
			}
			g.shardStats = nil
		}
		g.shards = 1
		return
	}
	g.shards = n
	if g.shardStats == nil {
		g.shardStats = make([][]*metrics.KernelStats, len(g.SMs))
		for i, s := range g.SMs {
			rows := make([]*metrics.KernelStats, len(g.Kernels))
			for j := range rows {
				rows[j] = &metrics.KernelStats{}
			}
			g.shardStats[i] = rows
			s.SetStats(rows)
			s.SetDeferred(true)
		}
	}
}

// Shards returns the configured shard count (1 = serial stepping).
func (g *GPU) Shards() int {
	if g.shards < 1 {
		return 1
	}
	return g.shards
}

// SetShardWorkers overrides the worker-pool size for sharded stepping.
// The default (0) uses min(shards, GOMAXPROCS). Tests force a value
// above GOMAXPROCS so the race detector observes real goroutine
// interleavings even on single-CPU machines.
func (g *GPU) SetShardWorkers(w int) { g.shardWorkers = w }

// drainStatShards folds every SM's private stats shard into the GPU-wide
// masters. Called at every point a reader can observe the masters: epoch
// rolls (the controller reads epoch instruction counts and active-window
// IPCs) and run exit.
func (g *GPU) drainStatShards() {
	if g.shardStats == nil {
		return
	}
	for smID := range g.SMs {
		rows := g.shardStats[smID]
		for slot := range rows {
			metrics.DrainInto(g.Stats[slot], rows[slot])
		}
	}
}

// shardPool runs phase A of each cycle: worker w steps shards w,
// w+workers, ... and shard s owns SMs s, s+shards, ... The pool lives
// for one RunCtx call; release/done channels give the necessary
// happens-before edges around each cycle (workers only run strictly
// between a step call's release and its collection, so the main loop's
// serial phases never overlap a worker).
type shardPool struct {
	g       *GPU
	shards  int
	workers int
	release []chan int64
	wg      sync.WaitGroup
}

// newShardPool starts the extra workers (worker 0 is the caller itself,
// stepping its shards inline between release and collection).
func newShardPool(g *GPU) *shardPool {
	w := g.shardWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > g.shards {
		w = g.shards
	}
	if w < 1 {
		w = 1
	}
	p := &shardPool{
		g:       g,
		shards:  g.shards,
		workers: w,
		release: make([]chan int64, w),
	}
	for i := 1; i < w; i++ {
		ch := make(chan int64)
		p.release[i] = ch
		go func(worker int) {
			for now := range ch {
				p.run(worker, now)
				p.wg.Done()
			}
		}(i)
	}
	return p
}

// step advances every SM one cycle in parallel and returns when all are
// done (the phase-A barrier).
func (p *shardPool) step(now int64) {
	p.wg.Add(p.workers - 1)
	for i := 1; i < p.workers; i++ {
		p.release[i] <- now
	}
	p.run(0, now)
	p.wg.Wait()
}

// run steps every SM owned by the worker's shards.
func (p *shardPool) run(worker int, now int64) {
	sms := p.g.SMs
	for sh := worker; sh < p.shards; sh += p.workers {
		for smID := sh; smID < len(sms); smID += p.shards {
			sms[smID].Cycle(now)
		}
	}
}

// stop terminates the extra workers. The pool must be idle (between
// steps).
func (p *shardPool) stop() {
	for i := 1; i < p.workers; i++ {
		close(p.release[i])
	}
}
