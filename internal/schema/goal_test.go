package schema_test

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/schema"
)

// The frac form must round-trip as a bare JSON number: the distributed
// sweep has always shipped its goal axis as "goals":[0.5,0.9], and the
// union must not change those wire bytes (stage keys hash them).
func TestGoalFracBareNumberWire(t *testing.T) {
	b, err := json.Marshal(schema.FracGoals([]float64{0.5, 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[0.5,0.9]" {
		t.Fatalf("frac goals marshal = %s, want bare numbers [0.5,0.9]", b)
	}
	var back []schema.Goal
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != schema.FracGoal(0.5) || back[1] != schema.FracGoal(0.9) {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestGoalUnionJSONForms(t *testing.T) {
	cases := []struct {
		in   string
		want schema.Goal
	}{
		{`null`, schema.Goal{}},
		{`0.75`, schema.FracGoal(0.75)},
		{`{"frac":0.5}`, schema.FracGoal(0.5)},
		{`{"ipc":2.5}`, schema.IPCGoal(2.5)},
		{`{"deadline":{"instrs":1000,"seconds":0.5}}`,
			schema.DeadlineGoal(schema.Deadline{Instrs: 1000, Seconds: 0.5})},
		{`{"latency":{"instrs":2000,"seconds":0.002,"percentile":0.99}}`,
			schema.LatencyGoal(schema.Latency{Instrs: 2000, Seconds: 0.002, Percentile: 0.99})},
		{`{"latency":{"instrs":2000,"seconds":0.002}}`, // percentile defaults at lowering, not decode
			schema.LatencyGoal(schema.Latency{Instrs: 2000, Seconds: 0.002})},
		{`{"periodic":{"instrs":500,"period_s":0.033}}`,
			schema.PeriodicGoal(schema.Periodic{Instrs: 500, PeriodS: 0.033})},
		{`{"periodic":{"instrs":500,"period_s":0.033,"deadline_s":0.01}}`,
			schema.PeriodicGoal(schema.Periodic{Instrs: 500, PeriodS: 0.033, DeadlineS: 0.01})},
	}
	for _, c := range cases {
		var g schema.Goal
		if err := json.Unmarshal([]byte(c.in), &g); err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if g != c.want {
			t.Fatalf("%s: got %+v want %+v", c.in, g, c.want)
		}
		// Every form must round-trip through its canonical encoding.
		b, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.in, err)
		}
		var back schema.Goal
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: reparse %s: %v", c.in, b, err)
		}
		if back != g {
			t.Fatalf("%s: round trip %s -> %+v", c.in, b, back)
		}
	}
}

func TestGoalUnionRejects(t *testing.T) {
	for _, in := range []string{
		`{"frac":0.5,"ipc":2}`, // two forms
		`{}`,                   // zero forms in object encoding
		`"fast"`,               // wrong JSON type
		`{"nonsense":1}`,       // unknown key
	} {
		var g schema.Goal
		if err := json.Unmarshal([]byte(in), &g); !errors.Is(err, schema.ErrBadGoal) {
			t.Fatalf("%s: err = %v, want ErrBadGoal", in, err)
		}
	}
}

func TestGoalValidate(t *testing.T) {
	ok := []schema.Goal{
		{},
		schema.FracGoal(0.5),
		schema.FracGoal(1),
		schema.IPCGoal(3),
		schema.DeadlineGoal(schema.Deadline{Instrs: 10, Seconds: 1}),
		schema.LatencyGoal(schema.Latency{Instrs: 10, Seconds: 0.01}),
		schema.LatencyGoal(schema.Latency{Instrs: 10, Seconds: 0.01, Percentile: 0.999}),
		schema.PeriodicGoal(schema.Periodic{Instrs: 10, PeriodS: 0.05}),
		schema.PeriodicGoal(schema.Periodic{Instrs: 10, PeriodS: 0.05, DeadlineS: 0.05}),
	}
	for _, g := range ok {
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
	}
	bad := []schema.Goal{
		schema.FracGoal(0),
		schema.FracGoal(1.5),
		schema.FracGoal(-0.1),
		schema.IPCGoal(-1),
		schema.DeadlineGoal(schema.Deadline{Instrs: 0, Seconds: 1}),
		schema.DeadlineGoal(schema.Deadline{Instrs: 10, Seconds: 0}),
		schema.LatencyGoal(schema.Latency{Instrs: 0, Seconds: 0.01}),
		schema.LatencyGoal(schema.Latency{Instrs: 10, Seconds: 0}),
		schema.LatencyGoal(schema.Latency{Instrs: 10, Seconds: 0.01, Percentile: 0.3}),
		schema.LatencyGoal(schema.Latency{Instrs: 10, Seconds: 0.01, Percentile: 1}),
		schema.PeriodicGoal(schema.Periodic{Instrs: 0, PeriodS: 0.05}),
		schema.PeriodicGoal(schema.Periodic{Instrs: 10, PeriodS: 0}),
		schema.PeriodicGoal(schema.Periodic{Instrs: 10, PeriodS: 0.05, DeadlineS: 0.06}),
		schema.PeriodicGoal(schema.Periodic{Instrs: 10, PeriodS: 0.05, DeadlineS: -1}),
		{Kind: "bogus"},
	}
	for _, g := range bad {
		if err := g.Validate(); !errors.Is(err, schema.ErrBadGoal) {
			t.Fatalf("%+v: err = %v, want ErrBadGoal", g, err)
		}
	}
}

func TestGoalFromForms(t *testing.T) {
	if g, err := schema.GoalFromForms(0.5, 0, nil); err != nil || g != schema.FracGoal(0.5) {
		t.Fatalf("frac form: %+v, %v", g, err)
	}
	if g, err := schema.GoalFromForms(0, 2, nil); err != nil || g != schema.IPCGoal(2) {
		t.Fatalf("ipc form: %+v, %v", g, err)
	}
	dl := &schema.Deadline{Instrs: 5, Seconds: 1}
	if g, err := schema.GoalFromForms(0, 0, dl); err != nil || g.Kind != schema.GoalDeadline {
		t.Fatalf("deadline form: %+v, %v", g, err)
	}
	if g, err := schema.GoalFromForms(0, 0, nil); err != nil || !g.IsZero() {
		t.Fatalf("none form: %+v, %v", g, err)
	}
	if _, err := schema.GoalFromForms(0.5, 2, nil); !errors.Is(err, schema.ErrBadGoal) {
		t.Fatalf("two forms: err = %v, want ErrBadGoal", err)
	}
}
