package schema

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Goal is the typed union of the QoS goal forms the system accepts,
// replacing the ad-hoc "at most one of goal_frac / goal_ipc / deadline"
// field triples that request decoding and sweep specs used to validate
// independently. A Goal is exactly one of:
//
//   - none:     best effort, no QoS target (the zero value)
//   - frac:     a fraction of isolated IPC in (0,1] — the paper's sweep axis
//   - ipc:      an absolute thread-IPC target
//   - deadline: an application deadline lowered to an IPC target per
//     GPU config (core.ResolveGoal)
//   - latency:  a serving-style per-request latency SLO at a tail
//     percentile (LLM-inference contracts)
//   - periodic: a real-time activation contract — Instrs per period,
//     each activation due within its relative deadline
//
// The JSON encoding keeps the fraction form wire-compatible with the
// bare numbers the distributed-sweep protocol has always shipped
// ("goals":[0.5,0.9]): a frac goal marshals as a bare number and a bare
// number unmarshals as a frac goal. The other forms are single-key
// objects: {"ipc":2.5}, {"deadline":{...}}, {"latency":{...}} and
// {"periodic":{...}}. null (or an omitted field) is the none form.

// Goal kind values of Goal.Kind.
const (
	GoalNone     = ""
	GoalFrac     = "frac"
	GoalIPC      = "ipc"
	GoalDeadline = "deadline"
	GoalLatency  = "latency"
	GoalPeriodic = "periodic"
)

// ErrBadGoal marks a structurally invalid goal: more than one form set,
// a fraction outside (0,1], a non-positive IPC target, or a deadline
// with no instruction count or time budget.
var ErrBadGoal = errors.New("schema: invalid goal")

// Deadline is the OS-scheduler form of a QoS goal (paper Section 3.2):
// run Instrs thread instructions within Seconds of end-to-end time.
// When TransferBytes is set, the PCI-E input-transfer component is
// subtracted from the budget before the IPC target is derived; Gbps
// defaults to 15.75 (PCIe 3.0 x16) and latency to 10us.
type Deadline struct {
	Instrs        int64   `json:"instrs"`
	Seconds       float64 `json:"seconds"`
	TransferBytes int64   `json:"transfer_bytes,omitempty"`
	PCIeGbps      float64 `json:"pcie_gbps,omitempty"`
	PCIeLatency   float64 `json:"pcie_latency_s,omitempty"`
}

// Latency is the serving-SLO form of a QoS goal, the contract of
// LLM-inference-style workloads: every request of Instrs thread
// instructions must complete within Seconds at the Percentile tail.
// Percentile 0 defaults to 0.99; valid values are [0.5, 1). The
// lowering (core.ResolveGoal) derives a mean-IPC target from the
// per-request bound plus a tail-headroom allowance for epoch-to-epoch
// IPC variance under sharing.
type Latency struct {
	Instrs     int64   `json:"instrs"`
	Seconds    float64 `json:"seconds"`
	Percentile float64 `json:"percentile,omitempty"`
}

// Periodic is the real-time form of a QoS goal (contention-aware
// real-time GPU partitioning): an activation of Instrs thread
// instructions is released every PeriodS seconds and must finish within
// DeadlineS of its release. DeadlineS 0 means an implicit deadline
// equal to the period; constrained deadlines (DeadlineS < PeriodS)
// tighten the derived IPC target.
type Periodic struct {
	Instrs    int64   `json:"instrs"`
	PeriodS   float64 `json:"period_s"`
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// Goal is one QoS target. The zero value is the none (best-effort)
// form. Construct non-zero goals with the form constructors
// (FracGoal/IPCGoal/DeadlineGoal/LatencyGoal/PeriodicGoal) so Kind and
// the payload field can never disagree.
type Goal struct {
	Kind     string
	Frac     float64
	IPC      float64
	Deadline Deadline
	Latency  Latency
	Periodic Periodic
}

// FracGoal returns the fraction-of-isolated-IPC form.
func FracGoal(f float64) Goal { return Goal{Kind: GoalFrac, Frac: f} }

// IPCGoal returns the absolute thread-IPC form.
func IPCGoal(ipc float64) Goal { return Goal{Kind: GoalIPC, IPC: ipc} }

// DeadlineGoal returns the application-deadline form.
func DeadlineGoal(d Deadline) Goal { return Goal{Kind: GoalDeadline, Deadline: d} }

// LatencyGoal returns the serving latency-SLO form.
func LatencyGoal(l Latency) Goal { return Goal{Kind: GoalLatency, Latency: l} }

// PeriodicGoal returns the real-time periodic form.
func PeriodicGoal(p Periodic) Goal { return Goal{Kind: GoalPeriodic, Periodic: p} }

// FracGoals lifts a slice of fractions (the sweep axis as every config
// file and flag writes it) into frac goals.
func FracGoals(fracs []float64) []Goal {
	out := make([]Goal, len(fracs))
	for i, f := range fracs {
		out[i] = FracGoal(f)
	}
	return out
}

// IsZero reports the none (best-effort) form. json omitzero hook.
func (g Goal) IsZero() bool { return g.Kind == GoalNone }

// Validate checks the invariants of whichever form is set.
func (g Goal) Validate() error {
	switch g.Kind {
	case GoalNone:
		return nil
	case GoalFrac:
		if g.Frac <= 0 || g.Frac > 1 {
			return fmt.Errorf("%w: goal fraction %v outside (0,1]", ErrBadGoal, g.Frac)
		}
	case GoalIPC:
		if g.IPC <= 0 {
			return fmt.Errorf("%w: IPC target %v must be positive", ErrBadGoal, g.IPC)
		}
	case GoalDeadline:
		if g.Deadline.Instrs <= 0 {
			return fmt.Errorf("%w: deadline needs a positive instruction count", ErrBadGoal)
		}
		if g.Deadline.Seconds <= 0 {
			return fmt.Errorf("%w: deadline needs a positive time budget", ErrBadGoal)
		}
	case GoalLatency:
		if g.Latency.Instrs <= 0 {
			return fmt.Errorf("%w: latency SLO needs a positive per-request instruction count", ErrBadGoal)
		}
		if g.Latency.Seconds <= 0 {
			return fmt.Errorf("%w: latency SLO needs a positive time bound", ErrBadGoal)
		}
		if p := g.Latency.Percentile; p != 0 && (p < 0.5 || p >= 1) {
			return fmt.Errorf("%w: latency percentile %v outside [0.5,1)", ErrBadGoal, p)
		}
	case GoalPeriodic:
		if g.Periodic.Instrs <= 0 {
			return fmt.Errorf("%w: periodic goal needs a positive per-activation instruction count", ErrBadGoal)
		}
		if g.Periodic.PeriodS <= 0 {
			return fmt.Errorf("%w: periodic goal needs a positive period", ErrBadGoal)
		}
		if d := g.Periodic.DeadlineS; d < 0 || d > g.Periodic.PeriodS {
			return fmt.Errorf("%w: periodic deadline %v outside (0,period]", ErrBadGoal, d)
		}
	default:
		return fmt.Errorf("%w: unknown goal kind %q", ErrBadGoal, g.Kind)
	}
	return nil
}

// GoalFromForms lowers the legacy v1 field triple (goal_frac, goal_ipc,
// deadline pointer) into the union, enforcing the "at most one form"
// rule that used to live in the server's request decoder.
func GoalFromForms(frac, ipc float64, dl *Deadline) (Goal, error) {
	forms := 0
	if frac != 0 {
		forms++
	}
	if ipc != 0 {
		forms++
	}
	if dl != nil {
		forms++
	}
	if forms > 1 {
		return Goal{}, fmt.Errorf("%w: set at most one of goal_frac, goal_ipc, deadline", ErrBadGoal)
	}
	switch {
	case frac != 0:
		return FracGoal(frac), nil
	case ipc != 0:
		return IPCGoal(ipc), nil
	case dl != nil:
		return DeadlineGoal(*dl), nil
	}
	return Goal{}, nil
}

// goalObject is the object encoding of the non-frac forms.
type goalObject struct {
	Frac     *float64  `json:"frac,omitempty"`
	IPC      *float64  `json:"ipc,omitempty"`
	Deadline *Deadline `json:"deadline,omitempty"`
	Latency  *Latency  `json:"latency,omitempty"`
	Periodic *Periodic `json:"periodic,omitempty"`
}

// MarshalJSON encodes frac goals as bare numbers (sweep wire compat),
// the other forms as single-key objects, and none as null.
func (g Goal) MarshalJSON() ([]byte, error) {
	switch g.Kind {
	case GoalNone:
		return []byte("null"), nil
	case GoalFrac:
		return json.Marshal(g.Frac)
	case GoalIPC:
		return json.Marshal(goalObject{IPC: &g.IPC})
	case GoalDeadline:
		return json.Marshal(goalObject{Deadline: &g.Deadline})
	case GoalLatency:
		return json.Marshal(goalObject{Latency: &g.Latency})
	case GoalPeriodic:
		return json.Marshal(goalObject{Periodic: &g.Periodic})
	}
	return nil, fmt.Errorf("%w: unknown goal kind %q", ErrBadGoal, g.Kind)
}

// UnmarshalJSON accepts a bare number (frac), null (none), or an object
// carrying exactly one of "frac", "ipc", "deadline", "latency",
// "periodic".
func (g *Goal) UnmarshalJSON(b []byte) error {
	var probe any
	if err := json.Unmarshal(b, &probe); err != nil {
		return err
	}
	switch probe.(type) {
	case nil:
		*g = Goal{}
		return nil
	case float64:
		var f float64
		if err := json.Unmarshal(b, &f); err != nil {
			return err
		}
		*g = FracGoal(f)
		return nil
	case map[string]any:
		var obj goalObject
		if err := DecodeStrict(b, &obj); err != nil {
			return fmt.Errorf("%w: %v", ErrBadGoal, err)
		}
		forms := 0
		if obj.Frac != nil {
			forms++
		}
		if obj.IPC != nil {
			forms++
		}
		if obj.Deadline != nil {
			forms++
		}
		if obj.Latency != nil {
			forms++
		}
		if obj.Periodic != nil {
			forms++
		}
		if forms != 1 {
			return fmt.Errorf("%w: goal object must carry exactly one of frac, ipc, deadline, latency, periodic", ErrBadGoal)
		}
		switch {
		case obj.Frac != nil:
			*g = FracGoal(*obj.Frac)
		case obj.IPC != nil:
			*g = IPCGoal(*obj.IPC)
		case obj.Deadline != nil:
			*g = DeadlineGoal(*obj.Deadline)
		case obj.Latency != nil:
			*g = LatencyGoal(*obj.Latency)
		default:
			*g = PeriodicGoal(*obj.Periodic)
		}
		return nil
	}
	return fmt.Errorf("%w: goal must be a number, null, or a one-key object", ErrBadGoal)
}
