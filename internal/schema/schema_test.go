package schema_test

import (
	"errors"
	"testing"

	"repro/internal/journal"
	"repro/internal/schema"
)

// TestCheck pins the shared version gate: the current version passes,
// every other version fails with the ErrVersion sentinel.
func TestCheck(t *testing.T) {
	if err := schema.Check(schema.Version); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	for _, v := range []int{0, -1, schema.Version + 1, schema.Version + 100} {
		if err := schema.Check(v); !errors.Is(err, schema.ErrVersion) {
			t.Fatalf("Check(%d) = %v, want ErrVersion", v, err)
		}
	}
}

// TestJournalSharesSchemaVersion guards the consolidation: the journal's
// on-disk version is the shared constant, and its version error is
// testable through both sentinels.
func TestJournalSharesSchemaVersion(t *testing.T) {
	if journal.Version != schema.Version {
		t.Fatalf("journal.Version = %d, schema.Version = %d; they must be one constant",
			journal.Version, schema.Version)
	}
	if !errors.Is(journal.ErrVersion, schema.ErrVersion) {
		t.Fatal("journal.ErrVersion does not wrap schema.ErrVersion")
	}
}
