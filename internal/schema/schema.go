// Package schema pins the single on-disk/on-wire schema version shared
// by every serialized artifact the system produces: the checkpoint
// journal's header (internal/journal), the JSONL trace export's header
// line (internal/trace), and the `/v1` API responses of the qosd
// admission daemon (internal/server). One constant means one bump
// changes them together, and every decoder can reject artifacts written
// by a different release with an errors.Is-able sentinel instead of
// silently misparsing them.
package schema

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the current schema version. Bump it when any serialized
// layout changes: journal line shape, trace JSONL line shape, or the v1
// API response envelope.
//
// v2 replaced the ad-hoc admission status fields with the first-class
// Verdict object (decision/tier/confidence/model_version/evidence_ref)
// shared by the /v1 API, SSE payloads and the decision journal; the v1
// `admitted` boolean was kept for one release as a compatibility mirror
// of `decision`.
//
// v3 removed that deprecated `admitted` mirror (read `decision`),
// introduced the typed Goal union (bare-number fractions, {"ipc":..},
// {"deadline":{..}}) shared by v1 request decoding and the sweep spec,
// and added the fleet /v2 API (fractional-GPU requests, placements,
// node views) plus the fleet placement journal — all stamped with this
// version (see README "v1 → v2 job API migration").
const Version = 3

// ErrVersion marks an artifact written under a different schema version.
// The journal, trace and server decoders all wrap it, so callers can
// test any of their errors with errors.Is(err, schema.ErrVersion).
var ErrVersion = errors.New("schema: version mismatch")

// Check returns nil when got matches Version and otherwise an error
// wrapping ErrVersion that names both sides.
func Check(got int) error {
	if got == Version {
		return nil
	}
	return fmt.Errorf("%w: artifact v%d, this build speaks v%d", ErrVersion, got, Version)
}

// DecodeStrict unmarshals one JSON value into v, rejecting unknown
// fields and trailing garbage. It is the shared decode discipline for
// schema-versioned wire payloads (the distributed-sweep lease/report
// protocol), so a peer speaking a newer layout fails loudly at the
// boundary instead of having its extra fields silently dropped.
func DecodeStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("schema: trailing data after JSON value")
	}
	return nil
}
