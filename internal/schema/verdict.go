package schema

// The first-class admission verdict shared by every surface that used
// to carry ad-hoc status fields: POST/GET /v1/jobs responses, SSE
// "verdict" events, and the decision journal (internal/server). One
// struct here means the wire form, the crash log and the replay tooling
// can never drift apart, and the version constant above governs all of
// them at once.

// Decision values of Verdict.Decision.
const (
	DecisionAdmit  = "admit"
	DecisionReject = "reject"
)

// Tier values of Verdict.Tier: which stage of the tiered decision path
// produced the verdict.
const (
	// TierCache is an exact hit in the canonical mix-signature cache.
	TierCache = "cache"
	// TierModel is the interpolated analytic performance model.
	TierModel = "model"
	// TierSim is the full what-if co-run simulation (the fallback tier,
	// and the only tier when the fast path is disabled).
	TierSim = "sim"
)

// Decision returns the Decision string for an admit/reject boolean.
func Decision(admitted bool) string {
	if admitted {
		return DecisionAdmit
	}
	return DecisionReject
}

// KernelOutcome is one kernel's result inside an admission verdict. For
// simulation-backed verdicts it mirrors core.KernelResult; for
// model-tier verdicts the IPC fields are the model's interpolated
// predictions.
type KernelOutcome struct {
	JobID          string  `json:"job_id,omitempty"`
	Workload       string  `json:"workload"`
	IsQoS          bool    `json:"is_qos"`
	GoalIPC        float64 `json:"goal_ipc,omitempty"`
	IPC            float64 `json:"ipc"`
	IsolatedIPC    float64 `json:"isolated_ipc"`
	Reached        bool    `json:"reached"`
	GoalRatio      float64 `json:"goal_ratio,omitempty"`
	NormThroughput float64 `json:"norm_throughput,omitempty"`
}

// Verdict is the admission decision with its evidence and provenance:
// what was decided, which tier decided it, how confident the deciding
// tier was, and the per-kernel outcome of the hypothetical mix
// (incumbents plus the candidate, candidate last).
type Verdict struct {
	// Decision is "admit" or "reject".
	Decision string `json:"decision"`
	// Tier records which tier decided: "cache", "model" or "sim".
	Tier string `json:"tier"`
	// Confidence is the deciding tier's confidence in [0,1]. Simulation
	// evidence is 1; the model reports its uncertainty-band margin
	// (clamped to 1); cache hits inherit the stored verdict's value.
	Confidence float64 `json:"confidence"`
	// ModelVersion is the fit hash of the analytic model when the
	// evidence came from the model tier (directly or via the cache).
	ModelVersion string `json:"model_version,omitempty"`
	// EvidenceRef names the canonical mix signature the verdict was
	// decided (and cached) under, as "sig:<prefix>".
	EvidenceRef string `json:"evidence_ref,omitempty"`
	Reason      string `json:"reason"`
	Scheme      string `json:"scheme"`
	// MixBefore lists the ids of the jobs admitted when the decision ran.
	MixBefore  []string        `json:"mix_before"`
	Candidate  KernelOutcome   `json:"candidate"`
	Incumbents []KernelOutcome `json:"incumbents,omitempty"`
	// Cycles is the simulated measurement window of the what-if run
	// backing the verdict (0 for model-tier verdicts: no run happened).
	Cycles int64 `json:"cycles"`
}

// IsAdmitted reports whether the verdict admits the candidate.
func (v *Verdict) IsAdmitted() bool { return v.Decision == DecisionAdmit }
