package perfmodel

import (
	"path/filepath"
	"testing"
)

// testFit builds a small hand-written fit: sgemm (iso 4.0) paired with
// lbm (iso 2.0) across three goal points.
func testFit(t *testing.T) *Fit {
	t.Helper()
	f := &Fit{
		Schema:     FitSchema,
		ConfigHash: "cfg-test",
		Scheme:     "rollover",
		Isolated:   map[string]float64{"sgemm": 4.0, "lbm": 2.0},
		Pairs: map[string][]PairPoint{
			PairKey("sgemm", "lbm"): {
				{Goal: 0.50, QoSRetention: 0.60, OtherRetention: 0.80},
				{Goal: 0.70, QoSRetention: 0.72, OtherRetention: 0.60},
				{Goal: 0.95, QoSRetention: 0.90, OtherRetention: 0.30},
			},
		},
	}
	if err := f.Finalize(); err != nil {
		t.Fatal(err)
	}
	return f
}

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(testFit(t))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictInterpolates(t *testing.T) {
	m := testModel(t)
	// Exactly on a grid point: retention 0.72 at goal 0.70 → ratio
	// 0.72/0.70.
	p, ok := m.Predict([]Kernel{{Workload: "sgemm", GoalFrac: 0.70}, {Workload: "lbm"}})
	if !ok {
		t.Fatal("covered mix escaped")
	}
	q, b := p.Kernels[0], p.Kernels[1]
	if !q.IsQoS || b.IsQoS {
		t.Fatalf("qos flags: %+v %+v", q, b)
	}
	if want := 4.0 * 0.72; q.IPC != want {
		t.Fatalf("qos IPC = %v, want %v", q.IPC, want)
	}
	if want := 2.0 * 0.60; b.IPC != want {
		t.Fatalf("partner IPC = %v, want %v", b.IPC, want)
	}
	// Midpoint: goal 0.60 → retention (0.60+0.72)/2 = 0.66.
	p, ok = m.Predict([]Kernel{{Workload: "sgemm", GoalFrac: 0.60}, {Workload: "lbm"}})
	if !ok {
		t.Fatal("escape")
	}
	if want := 4.0 * 0.66; abs(p.Kernels[0].IPC-want) > 1e-12 {
		t.Fatalf("interpolated IPC = %v, want %v", p.Kernels[0].IPC, want)
	}
	// Clamped below the grid.
	p, _ = m.Predict([]Kernel{{Workload: "sgemm", GoalFrac: 0.10}, {Workload: "lbm"}})
	if want := 4.0 * 0.60; p.Kernels[0].IPC != want {
		t.Fatalf("clamped IPC = %v, want %v", p.Kernels[0].IPC, want)
	}
	// An absolute-IPC goal resolves through isolated IPC: goal 2.8 IPC
	// on iso 4.0 is goal fraction 0.70.
	p, ok = m.Predict([]Kernel{{Workload: "sgemm", GoalIPC: 2.8}, {Workload: "lbm"}})
	if !ok || abs(p.Kernels[0].IPC-4.0*0.72) > 1e-12 {
		t.Fatalf("goal-ipc form: %+v ok=%v", p.Kernels[0], ok)
	}
}

func TestPredictEscapesOnMissingCoverage(t *testing.T) {
	m := testModel(t)
	for name, mix := range map[string][]Kernel{
		"unknown workload": {{Workload: "histo", GoalFrac: 0.5}},
		"unfitted pair":    {{Workload: "lbm", GoalFrac: 0.5}, {Workload: "sgemm"}}, // only sgemm|lbm fitted
	} {
		if _, ok := m.Predict(mix); ok {
			t.Errorf("%s: expected escape", name)
		}
	}
	// Single known kernel needs no pair data.
	if _, ok := m.Predict([]Kernel{{Workload: "sgemm", GoalFrac: 0.5}}); !ok {
		t.Error("single-kernel mix escaped")
	}
}

func TestDecideBand(t *testing.T) {
	m := testModel(t)
	// Goal 0.50 → retention 0.60 → ratio 1.2: clear admit at band 0.1,
	// uncertain at band 0.25.
	p, _ := m.Predict([]Kernel{{Workload: "sgemm", GoalFrac: 0.50}, {Workload: "lbm"}})
	if admit, clear := p.Decide(0.10); !admit || !clear {
		t.Fatalf("ratio 1.2 band 0.1: admit=%v clear=%v", admit, clear)
	}
	if _, clear := p.Decide(0.25); clear {
		t.Fatal("ratio 1.2 inside band 0.25 did not escape")
	}
	// Goal 0.95 → retention 0.90 → ratio ≈0.947: clear reject at band
	// 0.05 is false (0.947 > 0.95)… uncertain; at band 0.02 it is a
	// clear reject (0.947 ≤ 0.98 is false — check the actual boundary).
	p, _ = m.Predict([]Kernel{{Workload: "sgemm", GoalFrac: 0.95}, {Workload: "lbm"}})
	ratio := p.Kernels[0].Ratio
	if ratio >= 1 {
		t.Fatalf("fixture ratio = %v, want < 1", ratio)
	}
	if admit, clear := p.Decide(1 - ratio - 0.001); !clear || admit {
		t.Fatalf("ratio %v just outside band: admit=%v clear=%v", ratio, admit, clear)
	}
	if _, clear := p.Decide(1 - ratio + 0.001); clear {
		t.Fatalf("ratio %v just inside band decided", ratio)
	}
	// No QoS kernel: vacuous clear admit, margin 1. (Both best-effort:
	// no pairwise factor is required or applied.)
	p, ok := m.Predict([]Kernel{{Workload: "sgemm"}, {Workload: "lbm"}})
	if !ok {
		t.Fatal("best-effort mix escaped")
	}
	if admit, clear := p.Decide(0.5); !admit || !clear || p.Margin != 1 {
		t.Fatalf("vacuous mix: admit=%v clear=%v margin=%v", admit, clear, p.Margin)
	}
}

func TestFitRoundTripAndTamperDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fit.json")
	f := testFit(t)
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != f.Version || m.ConfigHash() != "cfg-test" || m.Scheme() != "rollover" {
		t.Fatalf("loaded model: %q %q %q", m.Version(), m.ConfigHash(), m.Scheme())
	}
	// Tampering with the body without re-finalizing must be rejected.
	tampered := testFit(t)
	tampered.Isolated["sgemm"] = 9.9 // Version now stale
	if err := tampered.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a fit whose version does not match its content")
	}
	// Version is deterministic: same content, same hash.
	if a, b := testFit(t).Version, testFit(t).Version; a != b {
		t.Fatalf("fit version unstable: %s vs %s", a, b)
	}
}
