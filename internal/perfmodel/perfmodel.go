// Package perfmodel is the analytic middle tier of the admission fast
// path: an interpolated performance model fitted from sweep/calibrate
// output. The fit holds each kernel's isolated IPC plus a pairwise
// contention-degradation matrix — for every ordered (QoS, other) pair,
// the measured IPC retention of both kernels across the goal-fraction
// grid. Predicting a hypothetical mix multiplies a kernel's isolated
// IPC by its interpolated pairwise retentions (the independence
// approximation of the QoS-aware microservices literature); the
// admission decision follows only when every QoS goal ratio is clearly
// outside a configurable uncertainty band, otherwise the decision
// escapes to full simulation.
//
// Fits are content-addressed: Version is the hash of the fit body, and
// a fit is bound to the exact simulator configuration and seed through
// ConfigHash, so a daemon can refuse a model trained on a different
// device, window or scheme.
package perfmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/schema"
)

// FitSchema identifies the model-fit file format.
const FitSchema = "perfmodel/v1"

// PairPoint is one fitted sample of an ordered (QoS, other) co-run: at
// Goal (the QoS kernel's goal fraction of isolated IPC), the QoS kernel
// retained QoSRetention of its isolated IPC and the partner retained
// OtherRetention of its own.
type PairPoint struct {
	Goal           float64 `json:"goal"`
	QoSRetention   float64 `json:"qos_retention"`
	OtherRetention float64 `json:"other_retention"`
}

// Fit is the serialized model: isolated IPC per workload plus the
// pairwise degradation matrix keyed by PairKey.
type Fit struct {
	Schema string `json:"schema"`
	// Version is the hex hash of the fit body with Version itself
	// zeroed; Finalize computes it and Load verifies it.
	Version string `json:"version"`
	// ConfigHash binds the fit to the simulator configuration and seed
	// it was measured under (ConfigHash below).
	ConfigHash string `json:"config_hash"`
	// Scheme names the QoS scheme the pair matrix was swept under.
	// Empty means an isolated-only fit (calibrate output), usable for
	// single-kernel mixes under any scheme.
	Scheme   string                 `json:"scheme,omitempty"`
	Isolated map[string]float64     `json:"isolated"`
	Pairs    map[string][]PairPoint `json:"pairs,omitempty"`
}

// PairKey keys the degradation matrix by ordered (QoS, other) pair.
func PairKey(qos, other string) string { return qos + "|" + other }

// ConfigHash hashes a simulator configuration and seed exactly the way
// fits and the admission daemon bind to them — one definition so the
// two sides can never disagree on the JSON shape.
func ConfigHash(cfg core.Config, seed uint64) (string, error) {
	return journal.Hash(struct {
		Config core.Config
		Seed   uint64
	}{cfg, seed})
}

// hash computes the content hash with Version zeroed.
func (f *Fit) hash() (string, error) {
	clone := *f
	clone.Version = ""
	return journal.Hash(clone)
}

// Finalize sorts every pair's points by goal and stamps Version.
func (f *Fit) Finalize() error {
	if f.Schema == "" {
		f.Schema = FitSchema
	}
	for _, pts := range f.Pairs {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Goal < pts[j].Goal })
	}
	h, err := f.hash()
	if err != nil {
		return err
	}
	f.Version = h
	return nil
}

// Save writes the fit as indented JSON.
func (f *Fit) Save(path string) error {
	if f.Version == "" {
		if err := f.Finalize(); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads and verifies a fit file and wraps it in a Model.
func Load(path string) (*Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Fit
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("perfmodel: %s: %w", path, err)
	}
	m, err := New(&f)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: %s: %w", path, err)
	}
	return m, nil
}

// Model is a verified, immutable fit ready for prediction.
type Model struct {
	fit *Fit
}

// New verifies the fit's schema and content hash.
func New(f *Fit) (*Model, error) {
	if f.Schema != FitSchema {
		return nil, fmt.Errorf("%w: fit schema %q, want %q", schema.ErrVersion, f.Schema, FitSchema)
	}
	want, err := f.hash()
	if err != nil {
		return nil, err
	}
	if f.Version != want {
		return nil, fmt.Errorf("fit version %q does not match content hash %q (corrupted or hand-edited fit)",
			f.Version, want)
	}
	return &Model{fit: f}, nil
}

// Version returns the fit's content hash.
func (m *Model) Version() string { return m.fit.Version }

// ConfigHash returns the configuration binding of the fit.
func (m *Model) ConfigHash() string { return m.fit.ConfigHash }

// Scheme returns the scheme the fit was swept under ("" = isolated-only).
func (m *Model) Scheme() string { return m.fit.Scheme }

// Kernel is one kernel of a hypothetical mix to predict. GoalIPC takes
// precedence over GoalFrac, matching core.KernelSpec semantics.
type Kernel struct {
	Workload string
	GoalFrac float64
	GoalIPC  float64
}

// KernelPrediction is the model's estimate for one kernel of the mix.
type KernelPrediction struct {
	Workload string
	IsQoS    bool
	GoalIPC  float64
	// IPC is the predicted co-run IPC: isolated IPC times the product of
	// interpolated pairwise retentions.
	IPC      float64
	Isolated float64
	// Ratio is IPC / GoalIPC for QoS kernels (0 otherwise).
	Ratio float64
}

// Prediction is the model's view of a hypothetical mix.
type Prediction struct {
	Kernels []KernelPrediction
	// Margin is the smallest distance of any QoS goal ratio from 1.0
	// (1 when the mix has no QoS kernel): how far the mix is from the
	// admit/reject boundary.
	Margin float64
}

// Confidence clamps the margin into [0,1] for verdict reporting.
func (p *Prediction) Confidence() float64 {
	if p.Margin > 1 {
		return 1
	}
	if p.Margin < 0 {
		return 0
	}
	return p.Margin
}

// Decide applies the uncertainty band: (true, true) when every QoS goal
// ratio clears 1+band, (false, true) when any ratio falls at or below
// 1-band, and (false, false) — escape to simulation — when any ratio
// lands inside the band. A mix with no QoS kernel admits vacuously.
func (p *Prediction) Decide(band float64) (admit, clear bool) {
	allClear := true
	for _, k := range p.Kernels {
		if !k.IsQoS {
			continue
		}
		if k.Ratio <= 1-band {
			return false, true
		}
		if k.Ratio < 1+band {
			allClear = false
		}
	}
	return allClear, allClear
}

// Predict estimates the mix. ok is false — the caller must fall through
// to simulation — when any required coverage is missing: an unknown
// workload, or a pair the degradation matrix was never fitted on.
// Contention between two best-effort kernels is not modeled (no goal
// axis to fit it on); it cannot affect the admission decision, which
// depends only on QoS goal ratios, so those IPC estimates are upper
// bounds and labeled as such by the missing pairwise factor.
func (m *Model) Predict(kernels []Kernel) (*Prediction, bool) {
	type resolved struct {
		iso, goalIPC, goalFrac float64
		qos                    bool
	}
	rs := make([]resolved, len(kernels))
	for i, k := range kernels {
		iso, ok := m.fit.Isolated[k.Workload]
		if !ok || iso <= 0 {
			return nil, false
		}
		r := resolved{iso: iso}
		switch {
		case k.GoalIPC > 0:
			r.goalIPC, r.goalFrac, r.qos = k.GoalIPC, k.GoalIPC/iso, true
		case k.GoalFrac > 0:
			r.goalIPC, r.goalFrac, r.qos = k.GoalFrac*iso, k.GoalFrac, true
		}
		rs[i] = r
	}
	p := &Prediction{Kernels: make([]KernelPrediction, len(kernels)), Margin: 1}
	for i, k := range kernels {
		retention := 1.0
		for j, other := range kernels {
			if i == j {
				continue
			}
			switch {
			case rs[i].qos:
				pts := m.fit.Pairs[PairKey(k.Workload, other.Workload)]
				if len(pts) == 0 {
					return nil, false
				}
				retention *= interp(pts, rs[i].goalFrac, true)
			case rs[j].qos:
				pts := m.fit.Pairs[PairKey(other.Workload, k.Workload)]
				if len(pts) == 0 {
					return nil, false
				}
				retention *= interp(pts, rs[j].goalFrac, false)
			}
		}
		kp := KernelPrediction{
			Workload: k.Workload,
			IsQoS:    rs[i].qos,
			GoalIPC:  rs[i].goalIPC,
			Isolated: rs[i].iso,
			IPC:      rs[i].iso * retention,
		}
		if kp.IsQoS {
			kp.Ratio = kp.IPC / kp.GoalIPC
			if d := abs(kp.Ratio - 1); d < p.Margin {
				p.Margin = d
			}
		}
		p.Kernels[i] = kp
	}
	return p, true
}

// interp linearly interpolates the retention curve at goal, clamped to
// the fitted grid's ends. qos selects which retention column to read.
func interp(pts []PairPoint, goal float64, qos bool) float64 {
	val := func(p PairPoint) float64 {
		if qos {
			return p.QoSRetention
		}
		return p.OtherRetention
	}
	if goal <= pts[0].Goal {
		return val(pts[0])
	}
	last := pts[len(pts)-1]
	if goal >= last.Goal {
		return val(last)
	}
	for i := 1; i < len(pts); i++ {
		if goal <= pts[i].Goal {
			lo, hi := pts[i-1], pts[i]
			if hi.Goal == lo.Goal {
				return val(hi)
			}
			t := (goal - lo.Goal) / (hi.Goal - lo.Goal)
			return val(lo) + t*(val(hi)-val(lo))
		}
	}
	return val(last)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
