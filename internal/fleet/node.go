package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/schema"
	"repro/internal/verdict"
)

// capEps absorbs float accumulation error in the capacity ledger so a
// node packed with 10× 0.1 shares still counts as exactly full.
const capEps = 1e-9

// MixEntry is one kernel of a node's resident mix as journaled with
// every decision (enough to rebuild the what-if spec on replay).
type MixEntry struct {
	JobID    string  `json:"job_id"`
	Workload string  `json:"workload"`
	GoalFrac float64 `json:"goal_frac,omitempty"`
	GoalIPC  float64 `json:"goal_ipc,omitempty"`
}

// NodeDecision is one per-node admission decision journal entry: the
// resident mix, the candidate, and the verdict the tiered decider
// produced. Replaying the sequence re-evolves the node's verdict cache
// exactly, so a restarted node serves the same tiers for the same
// future traffic.
type NodeDecision struct {
	JobID     string          `json:"job_id"`
	Mix       []MixEntry      `json:"mix,omitempty"`
	Candidate MixEntry        `json:"candidate"`
	Verdict   *schema.Verdict `json:"verdict"`
}

// placedEntry is one job resident on a node.
type placedEntry struct {
	job    *Job
	spec   core.KernelSpec
	shares Shares
}

// evalReq asks a node's decision loop for a what-if verdict on the
// given spec list (mix + candidate last). The spec snapshot is built
// by the placement goroutine, so repartition searches can pose
// counterfactual mixes ("A's mix without m, plus j") with the same
// machinery as plain placement.
type evalReq struct {
	specs []core.KernelSpec
	ids   []string
	jobID string
	reply chan evalResp
}

type evalResp struct {
	v   *schema.Verdict
	err error
}

// node is one simulated GPU in the fleet: its own simulator session,
// tiered verdict decider, crash-safe decision journal, and a decision
// loop goroutine so nodes evaluate placements concurrently.
type node struct {
	id     string
	name   string
	idx    int
	cfg    config.GPU
	sess   *core.Session
	dec    *verdict.Decider
	scheme core.Scheme
	maxMix int
	jnl    *journal.Journal // nil when journaling is disabled
	ctx    context.Context
	evalCh chan evalReq

	mu       sync.Mutex
	mix      []*placedEntry // admission order
	usedSM   float64
	usedMem  float64
	tiers    map[string]int
	simEvals int
	nextDec  int // next decision journal index
}

// NodeView is the wire-ready snapshot of one node.
type NodeView struct {
	ID           string         `json:"id"`
	Name         string         `json:"name,omitempty"`
	NumSMs       int            `json:"num_sms"`
	WindowCycles int64          `json:"window_cycles"`
	MaxMix       int            `json:"max_mix"`
	UsedSM       float64        `json:"used_sm"`
	UsedMem      float64        `json:"used_mem"`
	Jobs         []string       `json:"jobs,omitempty"`
	Tiers        map[string]int `json:"tiers,omitempty"`
	SimEvals     int            `json:"sim_evals"`
	CacheLen     int            `json:"verdict_cache_len"`
	Decisions    int            `json:"decisions"`
}

const decisionStage = "decisions"

// loop is the node's decision loop: it serializes what-if evaluations
// on this device while other nodes evaluate in parallel.
func (n *node) loop() {
	for req := range n.evalCh {
		v, err := n.evaluate(req)
		req.reply <- evalResp{v: v, err: err}
	}
}

// eval runs one synchronous what-if evaluation through the node loop.
func (n *node) eval(specs []core.KernelSpec, ids []string, jobID string) (*schema.Verdict, error) {
	reply := make(chan evalResp, 1)
	n.evalCh <- evalReq{specs: specs, ids: ids, jobID: jobID, reply: reply}
	r := <-reply
	return r.v, r.err
}

// evaluate decides one what-if co-run through the tiered path: exact
// cache, perf model inside its confidence band, then full simulation.
// Every successful decision is journaled before the verdict is
// returned, so a crash can never admit a job the journal forgot.
func (n *node) evaluate(req evalReq) (*schema.Verdict, error) {
	scheme := verdict.EffectiveScheme(n.scheme, req.specs)
	sigs := verdict.KernelSigsOf(req.specs)
	sig := n.dec.SignatureFor(sigs, scheme.Name())
	fr := n.dec.TryFast(sig, sigs, req.ids, scheme.Name())
	v := fr.V
	if v == nil {
		res, err := n.sess.Run(n.ctx, req.specs, scheme)
		if err != nil {
			return nil, err
		}
		v = verdict.SimVerdict(res, req.ids, sig)
		n.dec.Store(sig, v, sigs)
		n.mu.Lock()
		n.simEvals++
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.tiers[v.Tier]++
	idx := n.nextDec
	n.nextDec++
	n.mu.Unlock()
	if n.jnl != nil {
		d := NodeDecision{JobID: req.jobID, Verdict: v}
		for i, s := range req.specs {
			me := MixEntry{JobID: req.ids[i], Workload: s.Workload, GoalFrac: s.GoalFrac, GoalIPC: s.GoalIPC}
			if i == len(req.specs)-1 {
				d.Candidate = me
			} else {
				d.Mix = append(d.Mix, me)
			}
		}
		if err := n.jnl.Append(decisionStage, idx, d); err != nil {
			return nil, fmt.Errorf("node %s: journal decision %d: %w", n.id, idx, err)
		}
	}
	return v, nil
}

// recover replays the node's decision journal in index order,
// re-evolving the verdict cache: cache-tier hits refresh LRU recency,
// model- and sim-tier verdicts are stored. No simulation runs.
func (n *node) recover() error {
	if n.jnl == nil {
		return nil
	}
	done := n.jnl.Completed(decisionStage)
	idxs := make([]int, 0, len(done))
	for i := range done {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		var d NodeDecision
		if err := json.Unmarshal(done[i], &d); err != nil {
			return fmt.Errorf("node %s: decision %d: %w", n.id, i, err)
		}
		if d.Verdict == nil {
			return fmt.Errorf("node %s: decision %d: missing verdict", n.id, i)
		}
		entries := append(append([]MixEntry(nil), d.Mix...), d.Candidate)
		specs := make([]core.KernelSpec, len(entries))
		for k, e := range entries {
			specs[k] = core.KernelSpec{Workload: e.Workload, GoalFrac: e.GoalFrac, GoalIPC: e.GoalIPC}
		}
		scheme := verdict.EffectiveScheme(n.scheme, specs)
		sigs := verdict.KernelSigsOf(specs)
		sig := n.dec.SignatureFor(sigs, scheme.Name())
		switch d.Verdict.Tier {
		case schema.TierCache:
			n.dec.Touch(sig)
		default:
			n.dec.Store(sig, d.Verdict, sigs)
		}
		n.tiers[d.Verdict.Tier]++
		if d.Verdict.Tier == schema.TierSim {
			n.simEvals++
		}
		n.nextDec = i + 1
	}
	return nil
}

// fits reports whether shares (plus one more mix slot) are available.
func (n *node) fits(s Shares) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fitsLocked(s)
}

func (n *node) fitsLocked(s Shares) bool {
	return len(n.mix) < n.maxMix &&
		n.usedSM+s.SM <= 1+capEps &&
		n.usedMem+s.Mem <= 1+capEps
}

// fitsWithout reports whether shares fit once the entry for jobID is
// evicted — the capacity question the repartition search asks.
func (n *node) fitsWithout(jobID string, s Shares) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	used := Shares{SM: n.usedSM, Mem: n.usedMem}
	slots := len(n.mix)
	for _, e := range n.mix {
		if e.job.id == jobID {
			used.SM -= e.shares.SM
			used.Mem -= e.shares.Mem
			slots--
			break
		}
	}
	return slots < n.maxMix && used.SM+s.SM <= 1+capEps && used.Mem+s.Mem <= 1+capEps
}

// leftover is the best-fit score: total unused capacity if shares were
// placed here (smaller = tighter = preferred).
func (n *node) leftover(s Shares) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return (1 - n.usedSM - s.SM) + (1 - n.usedMem - s.Mem)
}

// add makes a job resident.
func (n *node) add(j *Job, spec core.KernelSpec, s Shares) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mix = append(n.mix, &placedEntry{job: j, spec: spec, shares: s})
	n.usedSM += s.SM
	n.usedMem += s.Mem
}

// remove evicts a job, freeing its capacity.
func (n *node) remove(jobID string) *placedEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, e := range n.mix {
		if e.job.id == jobID {
			n.mix = append(n.mix[:i], n.mix[i+1:]...)
			n.usedSM -= e.shares.SM
			n.usedMem -= e.shares.Mem
			if n.usedSM < 0 {
				n.usedSM = 0
			}
			if n.usedMem < 0 {
				n.usedMem = 0
			}
			return e
		}
	}
	return nil
}

// mixSnapshot returns the resident specs/ids in admission order, and
// optionally skips one job (for repartition counterfactuals).
func (n *node) mixSnapshot(skipJobID string) ([]core.KernelSpec, []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	specs := make([]core.KernelSpec, 0, len(n.mix))
	ids := make([]string, 0, len(n.mix))
	for _, e := range n.mix {
		if e.job.id == skipJobID {
			continue
		}
		specs = append(specs, e.spec)
		ids = append(ids, e.job.id)
	}
	return specs, ids
}

// entries snapshots the resident entries in admission order.
func (n *node) entries() []*placedEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*placedEntry(nil), n.mix...)
}

// view snapshots the node for the /v2/nodes API.
func (n *node) view() NodeView {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := NodeView{
		ID:           n.id,
		Name:         n.name,
		NumSMs:       n.cfg.NumSMs,
		WindowCycles: n.sess.Window(),
		MaxMix:       n.maxMix,
		UsedSM:       n.usedSM,
		UsedMem:      n.usedMem,
		SimEvals:     n.simEvals,
		CacheLen:     n.dec.CacheLen(),
		Decisions:    n.nextDec,
		Tiers:        make(map[string]int, len(n.tiers)),
	}
	for k, c := range n.tiers {
		v.Tiers[k] = c
	}
	for _, e := range n.mix {
		v.Jobs = append(v.Jobs, e.job.id)
	}
	return v
}
