package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schema"
)

func goalOf(f float64) *schema.Goal {
	g := schema.FracGoal(f)
	return &g
}

// smallGPU is a half-size device so the test fleet is heterogeneous.
func smallGPU() config.GPU {
	g := config.Base()
	g.NumSMs = 8
	g.NumMemControllers = 2
	return g
}

// hetFleetConfig is the 4-node heterogeneous fleet from the issue's
// acceptance scenario: two full-size devices, two half-size.
func hetFleetConfig(dir string) Config {
	return Config{
		Nodes: []NodeSpec{
			{Name: "big-a", GPU: config.Base()},
			{Name: "big-b", GPU: config.Base()},
			{Name: "small-a", GPU: smallGPU()},
			{Name: "small-b", GPU: smallGPU()},
		},
		Scheme:     core.SchemeRollover,
		Window:     20_000,
		FastPath:   true,
		JournalDir: dir,
	}
}

// hetStream mixes QoS and best-effort jobs across the fractional
// request vocabulary.
func hetStream() []Request {
	return []Request{
		{Name: "q1", Workload: "sgemm", GPUFraction: 0.5, Goal: goalOf(0.5)},
		{Name: "b1", Workload: "histo", VGPUCores: 30, VGPUMemory: 50},
		{Name: "q2", Workload: "lbm", GPUFraction: 0.4, Goal: goalOf(0.3)},
		{Name: "b2", Workload: "sgemm", GPUFraction: 0.25},
		{Name: "q3", Workload: "spmv", VGPUCores: 50, Goal: goalOf(0.4)},
		{Name: "b3", Workload: "histo", GPUFraction: 0.2},
	}
}

func mustShutdown(t *testing.T, f *Fleet) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// submitAll pushes the stream and waits for every terminal outcome.
func submitAll(t *testing.T, f *Fleet, reqs []Request) {
	t.Helper()
	ids := make([]string, 0, len(reqs))
	for _, r := range reqs {
		j, err := f.Submit(r)
		if err != nil {
			t.Fatalf("submit %s: %v", r.Name, err)
		}
		ids = append(ids, j.ID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := f.Wait(ctx, id); err != nil && !errors.Is(err, ErrNoPlacement) {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
}

// journalBytes reads every journal file in dir keyed by file name.
func journalBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestFleetPlacementDeterminism is the issue's acceptance scenario: a
// 4-node heterogeneous fleet admits a mixed job stream with
// deterministic placements — two independent runs produce identical
// placement sequences and byte-identical journals, and a kill+restart
// mid-stream continues to the same bytes as the uninterrupted run.
func TestFleetPlacementDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation in -short")
	}
	stream := hetStream()

	run := func(dir string) []Placement {
		f, err := New(hetFleetConfig(dir))
		if err != nil {
			t.Fatal(err)
		}
		submitAll(t, f, stream)
		ps := f.Placements()
		mustShutdown(t, f)
		return ps
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	psA := run(dirA)
	psB := run(dirB)
	if !reflect.DeepEqual(psA, psB) {
		t.Fatalf("placement sequences differ across identical runs:\nA: %+v\nB: %+v", psA, psB)
	}
	if len(psA) == 0 {
		t.Fatal("no placements recorded")
	}
	placed := 0
	for _, p := range psA {
		if p.Kind == KindPlace {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("stream placed no jobs")
	}

	bytesA, bytesB := journalBytes(t, dirA), journalBytes(t, dirB)
	if len(bytesA) != 5 { // 4 node journals + placements.jnl
		t.Fatalf("expected 5 journal files, got %d: %v", len(bytesA), keys(bytesA))
	}
	for name, ba := range bytesA {
		if !bytes.Equal(ba, bytesB[name]) {
			t.Fatalf("journal %s differs between identical runs", name)
		}
	}

	// Kill + restart: first half, shut down, recover, second half.
	dirC := t.TempDir()
	half := len(stream) / 2
	fc, err := New(hetFleetConfig(dirC))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, fc, stream[:half])
	mustShutdown(t, fc)

	fc2, err := New(hetFleetConfig(dirC))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	// Recovery must rebuild the placement prefix exactly.
	if got := fc2.Placements(); !reflect.DeepEqual(got, psA[:len(got)]) {
		t.Fatalf("recovered placement prefix differs:\ngot:  %+v\nwant: %+v", got, psA[:len(got)])
	}
	submitAll(t, fc2, stream[half:])
	psC := fc2.Placements()
	mustShutdown(t, fc2)

	if !reflect.DeepEqual(psA, psC) {
		t.Fatalf("restart run placements differ:\nuninterrupted: %+v\nrestarted:     %+v", psA, psC)
	}
	bytesC := journalBytes(t, dirC)
	for name, ba := range bytesA {
		if !bytes.Equal(ba, bytesC[name]) {
			t.Fatalf("journal %s differs after kill+restart (%d vs %d bytes)", name, len(ba), len(bytesC[name]))
		}
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// repartFleetConfig is the minimal scenario where repartitioning beats
// first-fit: two identical nodes, two mix slots each.
func repartFleetConfig(firstFit, noRepart bool) Config {
	return Config{
		Nodes: []NodeSpec{
			{Name: "n0", GPU: config.Base()},
			{Name: "n1", GPU: config.Base()},
		},
		Scheme:        core.SchemeNone,
		Window:        20_000,
		MaxMixPerNode: 2,
		FastPath:      true,
		FirstFit:      firstFit,
		NoRepartition: noRepart,
	}
}

// repartStream fills node 0's mix slots with small jobs and node 1
// with a large one, so the final medium job fits nowhere outright —
// but migrating one small job to node 1 opens a slot.
func repartStream() []Request {
	return []Request{
		{Name: "a", Workload: "sgemm", GPUFraction: 0.1},
		{Name: "b", Workload: "sgemm", GPUFraction: 0.1},
		{Name: "c", Workload: "sgemm", GPUFraction: 0.9},
		{Name: "d", Workload: "sgemm", GPUFraction: 0.5},
	}
}

// TestRepartitionPlacesWhatFirstFitRejects is the issue's second
// acceptance scenario: at least one pending job is placed via the
// repartitioning search that the greedy baseline rejects.
func TestRepartitionPlacesWhatFirstFitRejects(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation in -short")
	}
	stream := repartStream()

	// Greedy baseline: first-fit, no repartitioning → job d is rejected.
	fb, err := New(repartFleetConfig(true, true))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, fb, stream)
	d, err := fb.Job("vjob-000003")
	if err != nil {
		t.Fatal(err)
	}
	if d.State != StateRejected {
		t.Fatalf("first-fit baseline: job d state = %s, want rejected", d.State)
	}
	if got := fb.Repartitions(); got != 0 {
		t.Fatalf("baseline repartitions = %d, want 0", got)
	}
	mustShutdown(t, fb)

	// Full scheduler: the repartition search migrates a small job and
	// places d.
	f, err := New(repartFleetConfig(false, false))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, f, stream)
	d, err = f.Job("vjob-000003")
	if err != nil {
		t.Fatal(err)
	}
	if d.State != StatePlaced {
		t.Fatalf("repartitioning scheduler: job d state = %s (%s), want placed", d.State, d.Error)
	}
	if got := f.Repartitions(); got != 1 {
		t.Fatalf("repartitions = %d, want 1", got)
	}
	var migrates, places int
	for _, p := range f.Placements() {
		switch p.Kind {
		case KindMigrate:
			migrates++
		case KindPlace:
			places++
		}
	}
	if migrates != 1 || places != 4 {
		t.Fatalf("placement kinds: %d migrates, %d places; want 1 and 4", migrates, places)
	}
	mustShutdown(t, f)
}

// TestSharesValidation covers the fractional request vocabulary.
func TestSharesValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want Shares
		ok   bool
	}{
		{"gpu_fraction", Request{GPUFraction: 0.5}, Shares{SM: 0.5, Mem: 0.5}, true},
		{"full device", Request{GPUFraction: 1}, Shares{SM: 1, Mem: 1}, true},
		{"vgpu both", Request{VGPUCores: 40, VGPUMemory: 60}, Shares{SM: 0.4, Mem: 0.6}, true},
		{"vgpu cores only", Request{VGPUCores: 25}, Shares{SM: 0.25}, true},
		{"vgpu memory only", Request{VGPUMemory: 75}, Shares{Mem: 0.75}, true},
		{"nothing set", Request{}, Shares{}, false},
		{"fraction and cores", Request{GPUFraction: 0.5, VGPUCores: 50}, Shares{}, false},
		{"fraction too big", Request{GPUFraction: 1.5}, Shares{}, false},
		{"negative fraction", Request{GPUFraction: -0.1}, Shares{}, false},
		{"cores over 100", Request{VGPUCores: 120}, Shares{}, false},
		{"negative memory", Request{VGPUMemory: -5}, Shares{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.req.shares()
			if tc.ok {
				if err != nil {
					t.Fatalf("shares(): %v", err)
				}
				if got != tc.want {
					t.Fatalf("shares() = %+v, want %+v", got, tc.want)
				}
				return
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("shares() err = %v, want ErrBadRequest", err)
			}
		})
	}
}

// TestSubmitValidation covers fleet-level request validation.
func TestSubmitValidation(t *testing.T) {
	f, err := New(Config{
		Nodes:  []NodeSpec{{GPU: config.Base()}},
		Scheme: core.SchemeRollover,
		Window: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, f)

	for _, tc := range []struct {
		name string
		req  Request
		want error
	}{
		{"missing workload", Request{GPUFraction: 0.5}, ErrBadRequest},
		{"no shares", Request{Workload: "sgemm"}, ErrBadRequest},
		{"bad goal", Request{Workload: "sgemm", GPUFraction: 0.5, Goal: goalOf(1.5)}, ErrBadRequest},
		{"scheme mismatch", Request{Workload: "sgemm", GPUFraction: 0.5, Scheme: "none"}, ErrBadRequest},
	} {
		if _, err := f.Submit(tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: Submit err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := f.Job("vjob-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Job(unknown) err = %v, want ErrUnknownJob", err)
	}
	if _, err := f.Node("node-99"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Node(unknown) err = %v, want ErrUnknownNode", err)
	}
	if err := f.Release("vjob-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Release(unknown) err = %v, want ErrUnknownJob", err)
	}
}

// TestReleaseFreesCapacity shows eviction returns fractional capacity:
// a full-device job blocks a second one until it is released.
func TestReleaseFreesCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	f, err := New(Config{
		Nodes:         []NodeSpec{{GPU: config.Base()}},
		Scheme:        core.SchemeNone,
		Window:        20_000,
		MaxMixPerNode: 2,
		NoRepartition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, f)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	j1, err := f.Submit(Request{Workload: "sgemm", GPUFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(ctx, j1.ID()); err != nil {
		t.Fatal(err)
	}

	j2, err := f.Submit(Request{Workload: "lbm", GPUFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(ctx, j2.ID()); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("full node: Wait err = %v, want ErrNoPlacement", err)
	}

	if err := f.Release(j1.ID()); err != nil {
		t.Fatalf("release: %v", err)
	}
	nv := f.Nodes()[0]
	if nv.UsedSM > capEps || nv.UsedMem > capEps {
		t.Fatalf("release did not free capacity: used %v/%v", nv.UsedSM, nv.UsedMem)
	}
	if err := f.Release(j1.ID()); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("double release err = %v, want ErrBadRequest", err)
	}

	j3, err := f.Submit(Request{Workload: "lbm", GPUFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Wait(ctx, j3.ID())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if v.Node != "node-0" {
		t.Fatalf("after release: placed on %q, want node-0", v.Node)
	}
}

// TestFleetDrain verifies Submit and Release refuse work after
// Shutdown begins.
func TestFleetDrain(t *testing.T) {
	f, err := New(Config{Nodes: []NodeSpec{{GPU: config.Base()}}, Window: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	mustShutdown(t, f)
	if _, err := f.Submit(Request{Workload: "sgemm", GPUFraction: 0.5}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after shutdown err = %v, want ErrDraining", err)
	}
}
