package fleet

import (
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schema"
)

// TestRequestNewGoalForms round-trips the open-world goal forms through
// the /v2 request wire encoding and the per-node lowering: a time-based
// SLO resolves against each node's clock (Section 3.2's translation is
// instrs/(freq*seconds)), so on a clock-heterogeneous fleet the same
// request must lower to a different IPC target per node — which is why
// placement re-resolves per node instead of lowering once at ingress.
func TestRequestNewGoalForms(t *testing.T) {
	base := config.Base()
	slow := base
	slow.CoreClockMHz /= 2

	t.Run("latency-per-node", func(t *testing.T) {
		body := `{"name":"llm","workload":"infer","gpu_fraction":0.5,
			"goal":{"latency":{"instrs":3000000,"seconds":0.0002,"percentile":0.99}}}`
		var req Request
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		if req.Goal == nil || req.Goal.Kind != schema.GoalLatency {
			t.Fatalf("decoded goal = %+v, want latency form", req.Goal)
		}
		onBase, err := req.SpecFor(base)
		if err != nil {
			t.Fatal(err)
		}
		onSlow, err := req.SpecFor(slow)
		if err != nil {
			t.Fatal(err)
		}
		if onBase.GoalIPC <= 0 || onSlow.GoalIPC <= 0 {
			t.Fatalf("lowered targets: base %v, half-clock %v", onBase.GoalIPC, onSlow.GoalIPC)
		}
		// Half the clock means the same wall-clock SLO needs twice the IPC.
		if onSlow.GoalIPC != 2*onBase.GoalIPC {
			t.Fatalf("half-clock node target = %v, want 2x the base node's %v", onSlow.GoalIPC, onBase.GoalIPC)
		}
		// The wire bytes must round-trip the typed union unchanged.
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var back Request
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Goal == nil || *back.Goal != *req.Goal {
			t.Fatalf("goal round trip = %+v, want %+v", back.Goal, req.Goal)
		}
	})

	t.Run("periodic-constrained-deadline", func(t *testing.T) {
		implicit := Request{Workload: "rtdet", GPUFraction: 0.5}
		g1 := schema.PeriodicGoal(schema.Periodic{Instrs: 2_000_000, PeriodS: 0.0005})
		implicit.Goal = &g1
		constrained := implicit
		g2 := schema.PeriodicGoal(schema.Periodic{Instrs: 2_000_000, PeriodS: 0.0005, DeadlineS: 0.0002})
		constrained.Goal = &g2

		si, err := implicit.SpecFor(base)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := constrained.SpecFor(base)
		if err != nil {
			t.Fatal(err)
		}
		if sc.GoalIPC <= si.GoalIPC {
			t.Fatalf("constrained deadline target %v not tighter than implicit-deadline target %v", sc.GoalIPC, si.GoalIPC)
		}
	})

	t.Run("invalid-form-rejected", func(t *testing.T) {
		g := schema.PeriodicGoal(schema.Periodic{Instrs: 10, PeriodS: 0.01, DeadlineS: 0.02})
		req := Request{Workload: "rtdet", GPUFraction: 0.5, Goal: &g}
		if _, err := req.SpecFor(base); err == nil {
			t.Fatal("deadline > period lowered without error")
		}
		if err := g.Validate(); err == nil {
			t.Fatal("Validate accepted deadline > period")
		} else if _, _, rerr := core.ResolveGoal(base, g); rerr == nil {
			t.Fatal("ResolveGoal accepted what Validate rejects")
		}
	})
}
