// Package fleet scales qosd's admission control from one simulated GPU
// to a registry of N simulated GPUs (heterogeneous configurations
// allowed) behind a single deterministic placement scheduler.
//
// Requests arrive in the fractional-GPU vocabulary of production
// schedulers (gpu_fraction / vgpu_cores / vgpu_memory, see Request) and
// are bin-packed across nodes: a best-fit search over every node with
// fractional capacity left, where each capacity-feasible candidate is
// proven by that node's tiered what-if admission check (exact verdict
// cache → perf model → full simulation — the same evidence path the
// single-GPU daemon uses, via verdict.Decider). Nodes evaluate
// concurrently, each on its own decision-loop goroutine, while a single
// placement goroutine owns all capacity state, so the placement
// sequence for a given submission stream is deterministic.
//
// When no node can host a pending job outright, the scheduler runs a
// bounded repartitioning search (in the spirit of nebuly's nos elastic
// quota partitioning): migrate one already-admitted job to another node
// that admits it, if doing so opens a feasible slot for the pending
// job. Only then is the job rejected.
//
// Crash safety mirrors internal/server: every node owns a decision
// journal (replaying it re-evolves the verdict cache tiers exactly) and
// the fleet owns a placement journal (place / migrate / release /
// reject records). Restarting a fleet over the same journal directory
// reconstructs placements, mixes, job ids and cache state such that the
// continuation of a submission stream produces byte-identical journals
// to an uninterrupted run.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/perfmodel"
	"repro/internal/schema"
	"repro/internal/verdict"
)

// Placement journal record kinds.
const (
	KindPlace   = "place"
	KindMigrate = "migrate"
	KindReject  = "reject"
	KindRelease = "release"
)

const placementStage = "placements"

// Defaults for Config zero values.
const (
	DefaultMaxMixPerNode = 3
	DefaultQueueDepth    = 16
)

// NodeSpec declares one simulated GPU in the fleet.
type NodeSpec struct {
	// Name is an optional operator label (echoed in views and journals).
	Name string
	// GPU is the device configuration; nodes may differ (heterogeneous
	// fleet).
	GPU config.GPU
	// Model optionally attaches a trained perf model for this node's
	// configuration, enabling the model tier of its decider.
	Model *perfmodel.Model
}

// Config assembles a Fleet.
type Config struct {
	// Nodes lists the devices; at least one is required.
	Nodes []NodeSpec
	// Scheme is the QoS scheme every node evaluates under (zero value =
	// SchemeNone, unmanaged sharing).
	Scheme core.Scheme
	// Window is the measurement window in cycles (0 = session default).
	Window int64
	// Seed seeds every node's simulator (0 = session default).
	Seed uint64
	// MaxMixPerNode bounds concurrent kernels per device (0 = 3).
	MaxMixPerNode int
	// QueueDepth bounds the pending placement queue (0 = 16).
	QueueDepth int
	// FastPath enables the cache/model tiers on every node's decider.
	FastPath bool
	// UncertaintyBand is the model-tier confidence band (0 = default).
	UncertaintyBand float64
	// VerdictCacheSize bounds each node's verdict cache (0 = default).
	VerdictCacheSize int
	// JournalDir, when set, holds one decision journal per node plus
	// the fleet placement journal; an existing directory is recovered.
	JournalDir string
	// FirstFit switches placement from best-fit (min leftover capacity)
	// to first-fit (lowest admitting node index) — the baseline policy.
	FirstFit bool
	// NoRepartition disables the repartitioning search, so jobs that do
	// not place outright are rejected immediately.
	NoRepartition bool
}

// Placement is one fleet placement journal record, and the unit the
// GET /v2/placements API serves. Index is the deterministic sequence
// number; replaying records in index order reconstructs every node's
// resident mix.
type Placement struct {
	Index   int             `json:"index"`
	Kind    string          `json:"kind"`
	JobID   string          `json:"job_id"`
	JobSeq  int             `json:"job_seq"`
	Node    string          `json:"node,omitempty"`
	From    string          `json:"from,omitempty"`
	Request Request         `json:"request"`
	Shares  Shares          `json:"shares"`
	Verdict *schema.Verdict `json:"verdict,omitempty"`
	Reason  string          `json:"reason,omitempty"`
}

// op is one unit of work for the placement goroutine.
type op struct {
	job       *Job       // place op
	releaseID string     // release op
	reply     chan error // release result
}

// Fleet is the node registry plus the placement scheduler.
type Fleet struct {
	scheme    core.Scheme
	firstFit  bool
	noRepart  bool
	nodes     []*node
	store     *jobStore
	queue     chan op
	baseCtx   context.Context
	cancel    context.CancelFunc
	loopDone  chan struct{}
	nodeWG    sync.WaitGroup
	pj        *journal.Journal // placement journal (nil when disabled)

	drainMu  sync.RWMutex
	draining bool

	mu           sync.Mutex
	placements   []Placement
	nextPlace    int
	repartitions int
}

// nodeBinding is hashed into each node journal header so a journal can
// never be replayed against a different device or admission setup.
type nodeBinding struct {
	Node       string `json:"node"`
	ConfigHash string `json:"config_hash"`
	Scheme     string `json:"scheme"`
	MaxMix     int    `json:"max_mix"`
	FastPath   bool   `json:"fast_path"`
	Band       string `json:"band"`
	CacheSize  int    `json:"cache_size"`
	Model      string `json:"model,omitempty"`
}

// fleetBinding is hashed into the placement journal header.
type fleetBinding struct {
	Nodes         []nodeBinding `json:"nodes"`
	FirstFit      bool          `json:"first_fit"`
	NoRepartition bool          `json:"no_repartition"`
	QueueDepth    int           `json:"queue_depth"`
}

// New builds the fleet: one session + tiered decider + decision loop
// per node, recovers any existing journals in cfg.JournalDir, then
// starts the placement loop.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: at least one node required")
	}
	if cfg.MaxMixPerNode <= 0 {
		cfg.MaxMixPerNode = DefaultMaxMixPerNode
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Fleet{
		scheme:   cfg.Scheme,
		firstFit: cfg.FirstFit,
		noRepart: cfg.NoRepartition,
		store:    newJobStore(),
		queue:    make(chan op, cfg.QueueDepth),
		baseCtx:  ctx,
		cancel:   cancel,
		loopDone: make(chan struct{}),
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			cancel()
			return nil, fmt.Errorf("fleet: journal dir: %w", err)
		}
	}

	bindings := make([]nodeBinding, 0, len(cfg.Nodes))
	for i, ns := range cfg.Nodes {
		n, bind, err := f.buildNode(ctx, i, ns, cfg)
		if err != nil {
			f.closeNodes()
			cancel()
			return nil, err
		}
		f.nodes = append(f.nodes, n)
		bindings = append(bindings, bind)
	}

	// Recover per-node decision journals first (cache state), then the
	// placement journal (mixes and jobs); placement replay re-resolves
	// each job's spec against its journaled node, which must succeed
	// because the journal header pins the node configurations.
	for _, n := range f.nodes {
		if err := n.recover(); err != nil {
			f.closeNodes()
			cancel()
			return nil, err
		}
	}
	if cfg.JournalDir != "" {
		hash, err := journal.Hash(fleetBinding{
			Nodes:         bindings,
			FirstFit:      cfg.FirstFit,
			NoRepartition: cfg.NoRepartition,
			QueueDepth:    cfg.QueueDepth,
		})
		if err != nil {
			f.closeNodes()
			cancel()
			return nil, err
		}
		pj, err := openOrCreate(filepath.Join(cfg.JournalDir, "placements.jnl"), hash)
		if err != nil {
			f.closeNodes()
			cancel()
			return nil, err
		}
		f.pj = pj
		if err := f.recoverPlacements(); err != nil {
			pj.Close()
			f.closeNodes()
			cancel()
			return nil, err
		}
	}

	for _, n := range f.nodes {
		f.nodeWG.Add(1)
		go func(n *node) {
			defer f.nodeWG.Done()
			n.loop()
		}(n)
	}
	go f.loop()
	return f, nil
}

// buildNode assembles one node (session, decider, journal).
func (f *Fleet) buildNode(ctx context.Context, idx int, ns NodeSpec, cfg Config) (*node, nodeBinding, error) {
	opts := []core.Option{core.WithGPU(ns.GPU)}
	if cfg.Window > 0 {
		opts = append(opts, core.WithWindow(cfg.Window))
	}
	if cfg.Seed != 0 {
		opts = append(opts, core.WithSeed(cfg.Seed))
	}
	sess, err := core.NewSession(opts...)
	if err != nil {
		return nil, nodeBinding{}, fmt.Errorf("fleet: node %d: %w", idx, err)
	}
	dec, err := verdict.NewDecider(sess, verdict.DeciderConfig{
		FastPath:        cfg.FastPath,
		Model:           ns.Model,
		UncertaintyBand: cfg.UncertaintyBand,
		CacheSize:       cfg.VerdictCacheSize,
		SchemeName:      cfg.Scheme.Name(),
	})
	if err != nil {
		return nil, nodeBinding{}, fmt.Errorf("fleet: node %d: %w", idx, err)
	}
	n := &node{
		id:     fmt.Sprintf("node-%d", idx),
		name:   ns.Name,
		idx:    idx,
		cfg:    ns.GPU,
		sess:   sess,
		dec:    dec,
		scheme: cfg.Scheme,
		maxMix: cfg.MaxMixPerNode,
		ctx:    ctx,
		evalCh: make(chan evalReq),
		tiers:  make(map[string]int),
	}
	bind := nodeBinding{
		Node:       n.id,
		ConfigHash: dec.ConfigHash(),
		Scheme:     cfg.Scheme.Name(),
		MaxMix:     cfg.MaxMixPerNode,
		FastPath:   cfg.FastPath,
		Band:       fmt.Sprintf("%.6f", dec.Band()),
		CacheSize:  dec.CacheCap(),
	}
	if ns.Model != nil {
		bind.Model = ns.Model.Version()
	}
	if cfg.JournalDir != "" {
		hash, err := journal.Hash(bind)
		if err != nil {
			return nil, nodeBinding{}, err
		}
		jnl, err := openOrCreate(filepath.Join(cfg.JournalDir, n.id+".jnl"), hash)
		if err != nil {
			return nil, nodeBinding{}, fmt.Errorf("fleet: node %d journal: %w", idx, err)
		}
		n.jnl = jnl
	}
	return n, bind, nil
}

// recoverPlacements replays the placement journal in index order,
// rebuilding jobs, node mixes and the id counter.
func (f *Fleet) recoverPlacements() error {
	done := f.pj.Completed(placementStage)
	idxs := make([]int, 0, len(done))
	for i := range done {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		var p Placement
		if err := json.Unmarshal(done[i], &p); err != nil {
			return fmt.Errorf("fleet: placement %d: %w", i, err)
		}
		switch p.Kind {
		case KindPlace:
			n := f.nodeByID(p.Node)
			if n == nil {
				return fmt.Errorf("fleet: placement %d: %w %q", i, ErrUnknownNode, p.Node)
			}
			j := f.store.adopt(p.JobSeq, p.Request, p.Shares)
			spec, err := p.Request.SpecFor(n.cfg)
			if err != nil {
				return fmt.Errorf("fleet: placement %d: %w", i, err)
			}
			n.add(j, spec, p.Shares)
			j.setPlaced(n.id, p.Verdict)
		case KindMigrate:
			j, ok := f.store.get(p.JobID)
			if !ok {
				return fmt.Errorf("fleet: placement %d: %w %q", i, ErrUnknownJob, p.JobID)
			}
			from, to := f.nodeByID(p.From), f.nodeByID(p.Node)
			if from == nil || to == nil {
				return fmt.Errorf("fleet: placement %d: %w", i, ErrUnknownNode)
			}
			e := from.remove(p.JobID)
			if e == nil {
				return fmt.Errorf("fleet: placement %d: job %q not on %q", i, p.JobID, p.From)
			}
			spec, err := p.Request.SpecFor(to.cfg)
			if err != nil {
				return fmt.Errorf("fleet: placement %d: %w", i, err)
			}
			to.add(j, spec, e.shares)
			j.setPlaced(to.id, p.Verdict)
		case KindRelease:
			j, ok := f.store.get(p.JobID)
			if !ok {
				return fmt.Errorf("fleet: placement %d: %w %q", i, ErrUnknownJob, p.JobID)
			}
			if n := f.nodeByID(p.Node); n != nil {
				n.remove(p.JobID)
			}
			j.setReleased()
		case KindReject:
			j := f.store.adopt(p.JobSeq, p.Request, p.Shares)
			j.finish(StateRejected, p.Reason)
		default:
			return fmt.Errorf("fleet: placement %d: unknown kind %q", i, p.Kind)
		}
		f.placements = append(f.placements, p)
		f.nextPlace = i + 1
	}
	return nil
}

// Submit validates and enqueues one job for placement. It returns as
// soon as the job is queued; callers observe the outcome via Done and
// View (or Wait).
func (f *Fleet) Submit(req Request) (*Job, error) {
	shares, err := f.validate(req)
	if err != nil {
		return nil, err
	}
	f.drainMu.RLock()
	defer f.drainMu.RUnlock()
	if f.draining {
		return nil, ErrDraining
	}
	j := f.store.create(req, shares)
	select {
	case f.queue <- op{job: j}:
		return j, nil
	default:
		j.finish(StateFailed, ErrQueueFull.Error())
		return nil, ErrQueueFull
	}
}

// Wait blocks until the job reaches a terminal placement outcome and
// returns its view; rejected and failed outcomes surface as errors.
func (f *Fleet) Wait(ctx context.Context, id string) (JobView, error) {
	j, ok := f.store.get(id)
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	v := j.View()
	switch v.State {
	case StateRejected:
		return v, fmt.Errorf("%w: %s", ErrNoPlacement, v.Error)
	case StateFailed:
		return v, errors.New(v.Error)
	}
	return v, nil
}

// Release evicts a placed job, freeing its fractional capacity.
func (f *Fleet) Release(id string) error {
	if _, ok := f.store.get(id); !ok {
		return ErrUnknownJob
	}
	f.drainMu.RLock()
	if f.draining {
		f.drainMu.RUnlock()
		return ErrDraining
	}
	reply := make(chan error, 1)
	f.queue <- op{releaseID: id, reply: reply}
	f.drainMu.RUnlock()
	return <-reply
}

// Job looks up a job by id.
func (f *Fleet) Job(id string) (JobView, error) {
	j, ok := f.store.get(id)
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	return j.View(), nil
}

// JobHandle returns the live job handle (for Done-channel waits).
func (f *Fleet) JobHandle(id string) (*Job, error) {
	j, ok := f.store.get(id)
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Jobs snapshots every job in submission order.
func (f *Fleet) Jobs() []JobView { return f.store.list() }

// Nodes snapshots every node in index order.
func (f *Fleet) Nodes() []NodeView {
	out := make([]NodeView, 0, len(f.nodes))
	for _, n := range f.nodes {
		out = append(out, n.view())
	}
	return out
}

// Node snapshots one node by id.
func (f *Fleet) Node(id string) (NodeView, error) {
	n := f.nodeByID(id)
	if n == nil {
		return NodeView{}, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	return n.view(), nil
}

// Placements snapshots the placement sequence so far.
func (f *Fleet) Placements() []Placement {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Placement(nil), f.placements...)
}

// Repartitions reports how many pending jobs were placed only thanks
// to the repartitioning search.
func (f *Fleet) Repartitions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.repartitions
}

// Shutdown drains the fleet: no new submissions, queued jobs finish
// placing, then loops stop and journals close. If ctx expires first,
// in-flight simulations are cancelled and their jobs fail.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.drainMu.Lock()
	if f.draining {
		f.drainMu.Unlock()
		<-f.loopDone
		return nil
	}
	f.draining = true
	close(f.queue)
	f.drainMu.Unlock()

	select {
	case <-f.loopDone:
	case <-ctx.Done():
		f.cancel() // abort in-flight node simulations
		<-f.loopDone
	}
	f.closeNodeLoops()
	f.cancel()
	return f.closeJournals()
}

// Close force-stops the fleet without draining (constructor error
// paths and tests).
func (f *Fleet) Close() error {
	f.drainMu.Lock()
	if !f.draining {
		f.draining = true
		close(f.queue)
	}
	f.drainMu.Unlock()
	f.cancel()
	<-f.loopDone
	f.closeNodeLoops()
	return f.closeJournals()
}

func (f *Fleet) closeNodeLoops() {
	for _, n := range f.nodes {
		close(n.evalCh)
	}
	f.nodeWG.Wait()
}

func (f *Fleet) closeJournals() error {
	var first error
	for _, n := range f.nodes {
		if n.jnl != nil {
			if err := n.jnl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if f.pj != nil {
		if err := f.pj.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeNodes releases node journals during constructor error unwinding
// (loops have not started yet).
func (f *Fleet) closeNodes() {
	for _, n := range f.nodes {
		if n.jnl != nil {
			n.jnl.Close()
		}
	}
}

func (f *Fleet) nodeByID(id string) *node {
	for _, n := range f.nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// openOrCreate opens an existing journal (recovering it) or creates a
// fresh one bound to hash (journal.Open handles the missing-file case).
func openOrCreate(path, hash string) (*journal.Journal, error) {
	return journal.Open(path, hash)
}
