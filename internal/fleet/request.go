package fleet

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schema"
)

// Request is one fractional-GPU job submission (the POST /v2/jobs
// body), modeled on the request vocabulary of real fractional-GPU
// schedulers (HAMi vGPU shares, KAI/volcano gpu-fraction /
// vgpu-cores / vgpu-memory annotations):
//
//   - gpu_fraction f ∈ (0,1] asks for f of a whole device — both
//     compute and memory-system share.
//   - vgpu_cores c ∈ (0,100] asks for c percent of the device's SMs
//     (compute share) only.
//   - vgpu_memory m ∈ (0,100] asks for m percent of the device's
//     bandwidth/cache (memory-system share) only.
//
// gpu_fraction is exclusive with the vgpu_* pair (it is both of them at
// once); vgpu_cores and vgpu_memory may be combined, and a dimension
// left unset is unconstrained. Exactly like the v1 API, the optional
// goal attaches a QoS contract the per-node admission check must prove
// feasible before the job may share a device.
type Request struct {
	// Name is an optional client label echoed back in views and events.
	Name string `json:"name,omitempty"`
	// Workload names a benchmark from internal/workloads.
	Workload string `json:"workload"`
	// Goal is the typed QoS goal union (bare fraction, {"ipc":..} or
	// {"deadline":{..}}); absent means best effort. Deadline goals are
	// resolved per node: a heterogeneous fleet derives a different IPC
	// target on every device configuration.
	Goal *schema.Goal `json:"goal,omitempty"`
	// GPUFraction is the whole-device share in (0,1].
	GPUFraction float64 `json:"gpu_fraction,omitempty"`
	// VGPUCores is the compute (SM) share in percent, (0,100].
	VGPUCores float64 `json:"vgpu_cores,omitempty"`
	// VGPUMemory is the memory-system share in percent, (0,100].
	VGPUMemory float64 `json:"vgpu_memory,omitempty"`
	// Scheme optionally pins the expected QoS scheme; it must match the
	// fleet's configured scheme.
	Scheme string `json:"scheme,omitempty"`
}

// Shares is a request lowered to per-device capacity fractions: how
// much of one node's SMs and memory system the job reserves for the
// bin-packing dimension of placement. A zero dimension is
// unconstrained (the job competes there under the QoS scheme alone).
type Shares struct {
	SM  float64 `json:"sm"`
	Mem float64 `json:"mem"`
}

// shares validates the fractional vocabulary and lowers it.
func (r Request) shares() (Shares, error) {
	if r.GPUFraction != 0 {
		if r.VGPUCores != 0 || r.VGPUMemory != 0 {
			return Shares{}, fmt.Errorf("%w: gpu_fraction is exclusive with vgpu_cores/vgpu_memory (it sets both)", ErrBadRequest)
		}
		if r.GPUFraction < 0 || r.GPUFraction > 1 {
			return Shares{}, fmt.Errorf("%w: gpu_fraction %v outside (0,1]", ErrBadRequest, r.GPUFraction)
		}
		return Shares{SM: r.GPUFraction, Mem: r.GPUFraction}, nil
	}
	if r.VGPUCores == 0 && r.VGPUMemory == 0 {
		return Shares{}, fmt.Errorf("%w: set gpu_fraction, vgpu_cores or vgpu_memory", ErrBadRequest)
	}
	if r.VGPUCores < 0 || r.VGPUCores > 100 {
		return Shares{}, fmt.Errorf("%w: vgpu_cores %v outside (0,100]", ErrBadRequest, r.VGPUCores)
	}
	if r.VGPUMemory < 0 || r.VGPUMemory > 100 {
		return Shares{}, fmt.Errorf("%w: vgpu_memory %v outside (0,100]", ErrBadRequest, r.VGPUMemory)
	}
	return Shares{SM: r.VGPUCores / 100, Mem: r.VGPUMemory / 100}, nil
}

// goal returns the typed goal (zero value when absent).
func (r Request) goal() schema.Goal {
	if r.Goal == nil {
		return schema.Goal{}
	}
	return *r.Goal
}

// SpecFor lowers the request to the kernel spec one node would
// evaluate, resolving deadline goals against that node's device
// configuration.
func (r Request) SpecFor(cfg config.GPU) (core.KernelSpec, error) {
	gf, gi, err := core.ResolveGoal(cfg, r.goal())
	if err != nil {
		return core.KernelSpec{}, err
	}
	return core.KernelSpec{Workload: r.Workload, GoalFrac: gf, GoalIPC: gi}, nil
}

// validate checks everything that does not depend on a node: workload
// presence, the share vocabulary, the goal form, and the scheme pin.
func (f *Fleet) validate(r Request) (Shares, error) {
	if r.Workload == "" {
		return Shares{}, fmt.Errorf("%w: workload is required", ErrBadRequest)
	}
	sh, err := r.shares()
	if err != nil {
		return Shares{}, err
	}
	if err := r.goal().Validate(); err != nil {
		return Shares{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.Scheme != "" {
		sc, err := core.ParseScheme(r.Scheme)
		if err != nil {
			return Shares{}, err
		}
		if sc != f.scheme {
			return Shares{}, fmt.Errorf("%w: fleet evaluates scheme %q, request pinned %q",
				ErrBadRequest, f.scheme.Name(), sc.Name())
		}
	}
	return sh, nil
}
