package fleet

import "errors"

// Sentinels of the fleet placement layer. internal/server's httpStatus
// is the single place they become HTTP status codes (the /v2 API).
var (
	// ErrQueueFull rejects a submission because the bounded placement
	// queue is at capacity. Clients should back off (429 + Retry-After).
	ErrQueueFull = errors.New("fleet: placement queue full")
	// ErrNoPlacement marks a job no node could host: either no node has
	// the fractional capacity, or every capacity-feasible what-if co-run
	// missed a QoS goal — even after the repartitioning search.
	ErrNoPlacement = errors.New("fleet: no feasible placement")
	// ErrUnknownJob is returned for job ids the fleet has never issued.
	ErrUnknownJob = errors.New("fleet: unknown job")
	// ErrUnknownNode is returned for node ids outside the registry.
	ErrUnknownNode = errors.New("fleet: unknown node")
	// ErrDraining rejects work because the fleet is shutting down.
	ErrDraining = errors.New("fleet: draining")
	// ErrBadRequest wraps request validation failures (missing workload,
	// conflicting share fields, shares outside (0,1]).
	ErrBadRequest = errors.New("fleet: bad request")
)
