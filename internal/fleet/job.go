package fleet

import (
	"fmt"
	"sync"

	"repro/internal/schema"
)

// Job states. A job moves queued → placing → placed | rejected |
// failed, and a placed job may later become released. A placed job may
// migrate between nodes (repartitioning) without changing state.
const (
	StateQueued   = "queued"
	StatePlacing  = "placing"
	StatePlaced   = "placed"
	StateRejected = "rejected"
	StateFailed   = "failed"
	StateReleased = "released"
)

// Job is one fractional-GPU job owned by the fleet. All mutation
// happens on the placement goroutine (or, during recovery, before any
// goroutine starts); readers go through View/Done.
type Job struct {
	id     string
	seq    int
	req    Request
	shares Shares

	mu      sync.Mutex
	state   string
	node    string // hosting node id while placed/released
	verdict *schema.Verdict
	errMsg  string
	done    chan struct{}
}

// JobView is the wire-ready snapshot of a job.
type JobView struct {
	ID      string          `json:"id"`
	Name    string          `json:"name,omitempty"`
	State   string          `json:"state"`
	Node    string          `json:"node,omitempty"`
	Request Request         `json:"request"`
	Shares  Shares          `json:"shares"`
	Verdict *schema.Verdict `json:"verdict,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// ID returns the fleet-issued job id.
func (j *Job) ID() string { return j.id }

// Done is closed once the job reaches a terminal placement outcome
// (placed, rejected or failed). Release does not reopen it.
func (j *Job) Done() <-chan struct{} { return j.done }

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Name:    j.req.Name,
		State:   j.state,
		Node:    j.node,
		Request: j.req,
		Shares:  j.shares,
		Error:   j.errMsg,
	}
	if j.verdict != nil {
		c := *j.verdict
		v.Verdict = &c
	}
	return v
}

func (j *Job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// setPlaced records a successful placement (or migration) on node.
func (j *Job) setPlaced(node string, v *schema.Verdict) {
	j.mu.Lock()
	first := j.state != StatePlaced
	j.state = StatePlaced
	j.node = node
	j.verdict = v
	j.mu.Unlock()
	if first {
		close(j.done)
	}
}

// finish records a terminal failure outcome.
func (j *Job) finish(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()
	close(j.done)
}

// setReleased marks a placed job released.
func (j *Job) setReleased() {
	j.mu.Lock()
	j.state = StateReleased
	j.mu.Unlock()
}

// jobStore issues ids and keeps the job index. Sequence numbers are
// part of the deterministic replay contract: recovery reserves the
// sequences found in the placement journal so restarted fleets keep
// issuing the same ids for the same submission order.
type jobStore struct {
	mu   sync.Mutex
	next int
	jobs map[string]*Job
	ids  []string // issue order, for List
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

func fleetJobID(seq int) string { return fmt.Sprintf("vjob-%06d", seq) }

// create issues the next id and registers a queued job.
func (s *jobStore) create(req Request, shares Shares) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.next
	s.next++
	j := &Job{
		id:     fleetJobID(seq),
		seq:    seq,
		req:    req,
		shares: shares,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.ids = append(s.ids, j.id)
	return j
}

// adopt registers a job recovered from the placement journal under its
// original sequence number and advances the id counter past it.
func (s *jobStore) adopt(seq int, req Request, shares Shares) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &Job{
		id:     fleetJobID(seq),
		seq:    seq,
		req:    req,
		shares: shares,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.ids = append(s.ids, j.id)
	if seq >= s.next {
		s.next = seq + 1
	}
	return j
}

// reserve advances the id counter past seq without registering a job
// (used when replaying reject records: the id was consumed).
func (s *jobStore) reserve(seq int) {
	s.mu.Lock()
	if seq >= s.next {
		s.next = seq + 1
	}
	s.mu.Unlock()
}

// get looks up a job by id.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list snapshots all jobs in issue order.
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.ids...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.View())
	}
	return out
}
