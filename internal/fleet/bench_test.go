package fleet

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// benchFleet builds a two-node fleet over a 30k-cycle window (the same
// device/window as BenchmarkAdmission, so the two latency gates are
// comparable).
func benchFleet(b *testing.B, fastPath bool) *Fleet {
	b.Helper()
	f, err := New(Config{
		Nodes: []NodeSpec{
			{Name: "a", GPU: config.Base()},
			{Name: "b", GPU: config.Base()},
		},
		Scheme:        core.SchemeRollover,
		Window:        30_000,
		MaxMixPerNode: 1,
		FastPath:      fastPath,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		f.Shutdown(ctx)
	})
	return f
}

// placeOnce drives one submit→place→release round trip and returns the
// submit-to-outcome latency.
func placeOnce(b *testing.B, f *Fleet, req Request) time.Duration {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	j, err := f.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	v, err := f.Wait(ctx, j.ID())
	if err != nil {
		b.Fatal(err)
	}
	d := time.Since(start)
	if v.State == StatePlaced {
		if err := f.Release(j.ID()); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

func p50(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// BenchmarkFleetPlacement measures the fleet scheduler's
// submit-to-placement latency on a cache-warm request stream and
// reports it against the simulate-every-candidate baseline:
//
//	p50-ns    — median placement decision latency (cache-warm)
//	speedup-x — baseline sim-tier p50 over fast-path p50
//
// benchgate enforces a ceiling on p50-ns and a ≥50× floor on speedup-x
// (BENCH_core.json). The stream alternates QoS and best-effort
// fractional requests so both placement dimensions are exercised.
func BenchmarkFleetPlacement(b *testing.B) {
	reqs := []Request{
		{Workload: "sgemm", GPUFraction: 0.5, Goal: goalOf(0.5)},
		{Workload: "sgemm", GPUFraction: 0.9, Goal: goalOf(0.95)},
		{Workload: "lbm", VGPUCores: 40, VGPUMemory: 60, Goal: goalOf(0.3)},
		{Workload: "histo", GPUFraction: 0.25},
	}

	// Baseline: fast path off — every capacity-feasible candidate node
	// simulates the what-if co-run.
	base := benchFleet(b, false)
	var baseLat []time.Duration
	for round := 0; round < 3; round++ {
		for _, req := range reqs {
			baseLat = append(baseLat, placeOnce(b, base, req))
		}
	}
	basePC := p50(baseLat)

	// Fast path: one warm-up pass seeds every node's verdict cache, then
	// every timed placement decides from exact-cache hits.
	f := benchFleet(b, true)
	for _, req := range reqs {
		placeOnce(b, f, req)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat = append(lat, placeOnce(b, f, reqs[i%len(reqs)]))
	}
	b.StopTimer()
	fast := p50(lat)
	if fast <= 0 {
		fast = 1
	}
	b.ReportMetric(float64(fast.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(basePC)/float64(fast), "speedup-x")
}
