package fleet

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/schema"
)

// loop is the placement goroutine: the only writer of node capacity
// ledgers, the job store and the placement journal, which is what
// makes the placement sequence deterministic for a given submission
// order. Nodes still evaluate what-if co-runs concurrently — the loop
// fans one candidate evaluation out to every capacity-feasible node
// and the per-node decision loops run them in parallel.
func (f *Fleet) loop() {
	defer close(f.loopDone)
	for o := range f.queue {
		if o.job != nil {
			f.place(o.job)
			continue
		}
		o.reply <- f.release(o.releaseID)
	}
}

// candidate is one node evaluated for a pending job.
type candidate struct {
	n    *node
	spec core.KernelSpec
	v    *schema.Verdict
	err  error
}

// place decides one pending job: capacity filter, concurrent what-if
// fan-out, policy pick (best-fit or first-fit), then the repartition
// fallback, then rejection.
func (f *Fleet) place(j *Job) {
	j.setState(StatePlacing)

	// Resolve the request per node configuration (deadline goals derive
	// different IPC targets on heterogeneous devices).
	cands := make([]candidate, 0, len(f.nodes))
	var specErr error
	for _, n := range f.nodes {
		spec, err := j.req.SpecFor(n.cfg)
		if err != nil {
			if specErr == nil {
				specErr = err
			}
			continue
		}
		if n.fits(j.shares) {
			cands = append(cands, candidate{n: n, spec: spec})
		}
	}
	if len(cands) == 0 && specErr != nil {
		// The request itself is unresolvable (e.g. infeasible deadline)
		// on every node: a request error, not a capacity rejection.
		j.finish(StateFailed, specErr.Error())
		return
	}

	// Concurrent what-if fan-out; each node's decision loop serializes
	// its own evaluations, so per-node journal order stays
	// deterministic.
	var wg sync.WaitGroup
	for i := range cands {
		c := &cands[i]
		specs, ids := c.n.mixSnapshot("")
		specs = append(specs, c.spec)
		ids = append(ids, j.id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.v, c.err = c.n.eval(specs, ids, j.id)
		}()
	}
	wg.Wait()

	var pick *candidate
	var evalErr error
	rejected := 0
	for i := range cands {
		c := &cands[i]
		if c.err != nil {
			if evalErr == nil {
				evalErr = c.err
			}
			continue
		}
		if !c.v.IsAdmitted() {
			rejected++
			continue
		}
		if pick == nil {
			pick = c
			if f.firstFit {
				break
			}
			continue
		}
		if !f.firstFit && c.n.leftover(j.shares) < pick.n.leftover(j.shares)-capEps {
			pick = c
		}
	}

	if pick != nil {
		if err := f.commitPlace(j, pick.n, pick.spec, pick.v); err != nil {
			j.finish(StateFailed, err.Error())
		}
		return
	}
	if len(cands) > 0 && rejected == 0 && evalErr != nil {
		// Every feasible node failed to evaluate (simulator error, not
		// a QoS rejection): the job failed, it was not crowded out.
		j.finish(StateFailed, evalErr.Error())
		return
	}

	if !f.noRepart && f.repartition(j) {
		return
	}

	reason := "no node with free fractional capacity"
	if rejected > 0 {
		reason = fmt.Sprintf("%d capacity-feasible node(s) denied admission under scheme %s", rejected, f.scheme.Name())
	}
	if err := f.appendPlacement(Placement{
		Kind:    KindReject,
		JobID:   j.id,
		JobSeq:  j.seq,
		Request: j.req,
		Shares:  j.shares,
		Reason:  reason,
	}); err != nil {
		j.finish(StateFailed, err.Error())
		return
	}
	j.finish(StateRejected, reason)
}

// repartition runs the single-move search: find an admitted job m on a
// destination node dst such that (a) moving m to some other node alt
// keeps m's QoS goal satisfied there, and (b) dst without m admits the
// pending job. The scan order (dst index, m admission order, alt
// index) is fixed and every what-if is evaluated synchronously, so the
// search is deterministic; the first feasible move wins.
func (f *Fleet) repartition(j *Job) bool {
	for _, dst := range f.nodes {
		dstSpec, err := j.req.SpecFor(dst.cfg)
		if err != nil {
			continue
		}
		for _, m := range dst.entries() {
			if !dst.fitsWithout(m.job.id, j.shares) {
				continue
			}
			for _, alt := range f.nodes {
				if alt == dst || !alt.fits(m.shares) {
					continue
				}
				mSpec, err := m.job.req.SpecFor(alt.cfg)
				if err != nil {
					continue
				}
				// Would alt admit the migrated job?
				specs, ids := alt.mixSnapshot("")
				vm, err := alt.eval(append(specs, mSpec), append(ids, m.job.id), m.job.id)
				if err != nil || !vm.IsAdmitted() {
					continue
				}
				// Would dst admit the pending job once m is gone?
				specs, ids = dst.mixSnapshot(m.job.id)
				vj, err := dst.eval(append(specs, dstSpec), append(ids, j.id), j.id)
				if err != nil || !vj.IsAdmitted() {
					continue
				}
				if !f.commitMigrate(m, dst, alt, mSpec, vm) {
					return false
				}
				if err := f.commitPlace(j, dst, dstSpec, vj); err != nil {
					j.finish(StateFailed, err.Error())
					return true // outcome decided, do not fall through to reject
				}
				f.mu.Lock()
				f.repartitions++
				f.mu.Unlock()
				return true
			}
		}
	}
	return false
}

// commitPlace makes a placement durable, then visible.
func (f *Fleet) commitPlace(j *Job, n *node, spec core.KernelSpec, v *schema.Verdict) error {
	if err := f.appendPlacement(Placement{
		Kind:    KindPlace,
		JobID:   j.id,
		JobSeq:  j.seq,
		Node:    n.id,
		Request: j.req,
		Shares:  j.shares,
		Verdict: v,
	}); err != nil {
		return err
	}
	n.add(j, spec, j.shares)
	j.setPlaced(n.id, v)
	return nil
}

// commitMigrate moves an admitted job between nodes.
func (f *Fleet) commitMigrate(m *placedEntry, from, to *node, spec core.KernelSpec, v *schema.Verdict) bool {
	if err := f.appendPlacement(Placement{
		Kind:    KindMigrate,
		JobID:   m.job.id,
		JobSeq:  m.job.seq,
		Node:    to.id,
		From:    from.id,
		Request: m.job.req,
		Shares:  m.shares,
		Verdict: v,
	}); err != nil {
		return false
	}
	from.remove(m.job.id)
	to.add(m.job, spec, m.shares)
	m.job.setPlaced(to.id, v)
	return true
}

// release evicts a placed job (runs on the placement goroutine).
func (f *Fleet) release(id string) error {
	j, ok := f.store.get(id)
	if !ok {
		return ErrUnknownJob
	}
	view := j.View()
	if view.State != StatePlaced {
		return fmt.Errorf("%w: job %s is %s, not placed", ErrBadRequest, id, view.State)
	}
	n := f.nodeByID(view.Node)
	if n == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, view.Node)
	}
	if err := f.appendPlacement(Placement{
		Kind:    KindRelease,
		JobID:   j.id,
		JobSeq:  j.seq,
		Node:    n.id,
		Request: j.req,
		Shares:  j.shares,
	}); err != nil {
		return err
	}
	n.remove(j.id)
	j.setReleased()
	return nil
}

// appendPlacement assigns the next index, journals the record (when
// journaling is on) and publishes it to the in-memory sequence.
func (f *Fleet) appendPlacement(p Placement) error {
	f.mu.Lock()
	p.Index = f.nextPlace
	f.nextPlace++
	f.mu.Unlock()
	if f.pj != nil {
		if err := f.pj.Append(placementStage, p.Index, p); err != nil {
			return fmt.Errorf("fleet: journal placement %d: %w", p.Index, err)
		}
	}
	f.mu.Lock()
	f.placements = append(f.placements, p)
	f.mu.Unlock()
	return nil
}
