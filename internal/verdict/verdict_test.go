package verdict

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/schema"
)

// sigFixture builds a mixed QoS/best-effort kernel list with duplicate
// workloads and both goal forms, the shapes the daemon actually sees.
func sigFixture() []KernelSig {
	return []KernelSig{
		{Workload: "sgemm", GoalFrac: 0.95},
		{Workload: "lbm"},
		{Workload: "sgemm", GoalFrac: 0.50},
		{Workload: "histo", GoalIPC: 3.25},
		{Workload: "lbm", GoalFrac: 0.50},
	}
}

// TestSignatureInvariance is the canonicalization property test: any
// permutation of the kernel list — i.e. any submission order, any job
// naming, any goal ordering — produces the identical signature.
func TestSignatureInvariance(t *testing.T) {
	base := sigFixture()
	want := Signature(base, "rollover", "cfg-a")
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(len(base))
		shuffled := make([]KernelSig, len(base))
		for i, p := range perm {
			shuffled[i] = base[p]
		}
		if got := Signature(shuffled, "rollover", "cfg-a"); got != want {
			t.Fatalf("trial %d: permutation %v changed the signature:\n  %s\n  %s", trial, perm, got, want)
		}
	}
}

// TestSignatureSensitivity checks the other half of the contract:
// anything that can change a simulation outcome must change the
// signature — goals, workloads, scheme, configuration hash, mix size.
func TestSignatureSensitivity(t *testing.T) {
	base := sigFixture()
	ref := Signature(base, "rollover", "cfg-a")
	mutations := map[string]func() string{
		"different scheme": func() string { return Signature(base, "spart", "cfg-a") },
		"different config": func() string { return Signature(base, "rollover", "cfg-b") },
		"changed goal": func() string {
			m := append([]KernelSig(nil), base...)
			m[0].GoalFrac = 0.90
			return Signature(m, "rollover", "cfg-a")
		},
		"goal form swapped": func() string {
			// The same numeric value as GoalIPC instead of GoalFrac is a
			// different contract; it must not collide.
			m := append([]KernelSig(nil), base...)
			m[0] = KernelSig{Workload: "sgemm", GoalIPC: 0.95}
			return Signature(m, "rollover", "cfg-a")
		},
		"changed workload": func() string {
			m := append([]KernelSig(nil), base...)
			m[1].Workload = "mri-q"
			return Signature(m, "rollover", "cfg-a")
		},
		"dropped kernel": func() string { return Signature(base[:len(base)-1], "rollover", "cfg-a") },
		"duplicated kernel": func() string {
			return Signature(append(append([]KernelSig(nil), base...), base[0]), "rollover", "cfg-a")
		},
	}
	seen := map[string]string{ref: "reference"}
	for name, f := range mutations {
		got := f()
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[got] = name
	}
}

// TestCanonicalStableTies pins the tie-breaking rule: identical specs
// keep their submission order, so the outcome-position mapping of a
// cache hit is deterministic.
func TestCanonicalStableTies(t *testing.T) {
	sigs := []KernelSig{
		{Workload: "lbm"},
		{Workload: "sgemm", GoalFrac: 0.5},
		{Workload: "lbm"},
	}
	perm := Canonical(sigs)
	want := []int{0, 2, 1} // lbm (first), lbm (second), sgemm
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("Canonical = %v, want %v", perm, want)
		}
	}
}

// TestCacheLRU exercises deterministic eviction: the least recently
// used signature (by Get/Put order) is dropped first.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	put := func(sig string) {
		c.Put(sig, Cached{Admitted: true, Outcomes: []schema.KernelOutcome{{Workload: sig}}})
	}
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	put("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, sig := range []string{"a", "c"} {
		if v, ok := c.Get(sig); !ok || v.Outcomes[0].Workload != sig {
			t.Fatalf("%s lost or corrupted: %+v ok=%v", sig, v, ok)
		}
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d", c.Len(), c.Cap())
	}
	// Refreshing an existing key must not evict anything.
	put("a")
	if c.Len() != 2 {
		t.Fatalf("refresh grew the cache to %d", c.Len())
	}
}

// TestSignatureFuzzNoFalseCollisions hammers random distinct mixes and
// checks distinct canonical forms never share a signature.
func TestSignatureFuzzNoFalseCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := []string{"sgemm", "lbm", "histo", "mri-q", "stencil"}
	seen := make(map[string]string) // signature -> canonical description
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(3)
		sigs := make([]KernelSig, n)
		for i := range sigs {
			sigs[i] = KernelSig{Workload: workloads[rng.Intn(len(workloads))]}
			if rng.Intn(2) == 0 {
				sigs[i].GoalFrac = float64(5+rng.Intn(10)) / 20
			}
		}
		scheme := []string{"rollover", "spart"}[rng.Intn(2)]
		canon := fmt.Sprintf("%s|%v", scheme, func() []KernelSig {
			out := make([]KernelSig, n)
			for i, p := range Canonical(sigs) {
				out[i] = sigs[p]
			}
			return out
		}())
		sig := Signature(sigs, scheme, "cfg")
		if prev, ok := seen[sig]; ok && prev != canon {
			t.Fatalf("collision: %q and %q share %s", prev, canon, sig)
		}
		seen[sig] = canon
	}
}
