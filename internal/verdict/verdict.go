// Package verdict implements the exact-match tier of the admission fast
// path: a canonical mix signature (order- and identity-invariant hash of
// the hypothetical mix, the effective scheme and the simulator
// configuration) and a bounded LRU cache mapping signatures to decided
// verdicts. Two submissions whose hypothetical mixes contain the same
// kernels with the same goals — regardless of submission order, job ids
// or client labels — share one signature, so the second decision is a
// cache hit instead of a simulation.
//
// Determinism contract: the cache is driven only by the single-goroutine
// decision loop (internal/server), in decision order. Eviction is plain
// LRU over that serial access sequence, so a serial replay of the
// decision log evolves an identical cache and reproduces every hit, miss
// and eviction — and therefore every verdict's deciding tier.
package verdict

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"

	"repro/internal/schema"
)

// KernelSig is the signature-relevant slice of one kernel of the
// hypothetical mix. Job identity and client labels are deliberately
// absent: they cannot change a simulation's outcome.
type KernelSig struct {
	Workload string  `json:"w"`
	GoalFrac float64 `json:"gf,omitempty"`
	GoalIPC  float64 `json:"gi,omitempty"`
}

// Canonical returns the permutation that sorts sigs into canonical
// order: perm[i] is the index in sigs of the i-th canonical kernel. The
// sort is stable (ties keep submission order), so the mapping between
// request positions and cached outcomes is itself deterministic.
func Canonical(sigs []KernelSig) []int {
	perm := make([]int, len(sigs))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		x, y := sigs[perm[a]], sigs[perm[b]]
		if x.Workload != y.Workload {
			return x.Workload < y.Workload
		}
		if x.GoalFrac != y.GoalFrac {
			return x.GoalFrac < y.GoalFrac
		}
		return x.GoalIPC < y.GoalIPC
	})
	return perm
}

// Signature hashes the canonicalized mix: sorted kernel sigs, the
// effective scheme name, and the configuration hash binding device,
// window and seed. Mixes differing only in kernel order or job identity
// collide by construction; mixes under different configurations or
// schemes never do (the hash input differs).
func Signature(sigs []KernelSig, scheme, configHash string) string {
	sorted := make([]KernelSig, len(sigs))
	for i, p := range Canonical(sigs) {
		sorted[i] = sigs[p]
	}
	b, err := json.Marshal(struct {
		Kernels []KernelSig `json:"kernels"`
		Scheme  string      `json:"scheme"`
		Config  string      `json:"config"`
	}{sorted, scheme, configHash})
	if err != nil {
		// KernelSig marshals unconditionally; keep the signature total.
		b = []byte(err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Cached is one stored verdict, with per-kernel outcomes in canonical
// order and job ids stripped. On a hit the caller maps outcomes back to
// the current request's positions via Canonical and re-attaches its own
// job ids.
type Cached struct {
	Admitted bool
	Scheme   string
	Cycles   int64
	// Confidence and Tier record the evidence origin ("sim" or "model")
	// and its confidence, inherited by verdicts served from the cache.
	Confidence   float64
	Tier         string
	ModelVersion string
	Outcomes     []schema.KernelOutcome
}

// Cache is a bounded LRU of decided verdicts keyed by mix signature.
// Get and Put are called only from the decision loop; the mutex exists
// so Len can be read from HTTP handlers without a race.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	val Cached
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the verdict stored under sig, refreshing its recency.
func (c *Cache) Get(sig string) (Cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[sig]
	if !ok {
		return Cached{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores (or refreshes) a verdict, evicting the least recently used
// entry beyond capacity.
func (c *Cache) Put(sig string, v Cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[sig]; ok {
		el.Value.(*cacheEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.byKey[sig] = c.order.PushFront(&cacheEntry{key: sig, val: v})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the configured capacity.
func (c *Cache) Cap() int { return c.cap }
