package verdict

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/schema"
)

// The tiered decision path, shared by the qosd decision loop, the
// serial Replayer and every node of a fleet. Tier 1 is the exact
// verdict cache above: a canonical mix signature either hits a decided
// verdict or misses. Tier 2 is the analytic performance model
// (internal/perfmodel): an instant interpolated prediction, trusted
// only when every QoS goal ratio lands clearly outside the uncertainty
// band. Tier 3 is the full what-if simulation, owned by the caller —
// the Decider scores its result (SimVerdict) and caches it (Store).
//
// Determinism contract: all mutation happens on one goroutine per
// Decider (a decision loop, a node loop, or a replayer), in decision
// order, so a serial replay of a decision log evolves an identical
// cache and reproduces every verdict — and its deciding tier — bit for
// bit.

// DefaultCacheSize bounds the exact-verdict cache when the fast path is
// enabled and DeciderConfig.CacheSize is zero.
const DefaultCacheSize = 4096

// DefaultUncertaintyBand is the model tier's goal-ratio margin when
// DeciderConfig.UncertaintyBand is zero: predictions within ±5% of a
// goal boundary escape to simulation.
const DefaultUncertaintyBand = 0.05

// DeciderConfig is the fast-path half of a daemon or node config.
type DeciderConfig struct {
	// FastPath enables tiers 1 and 2; off, every decision simulates.
	FastPath bool
	// Model is the optional analytic tier; requires FastPath and must be
	// fit under the session's exact config hash and scheme.
	Model *perfmodel.Model
	// UncertaintyBand overrides DefaultUncertaintyBand when positive.
	UncertaintyBand float64
	// CacheSize overrides DefaultCacheSize when positive.
	CacheSize int
	// SchemeName is the (already defaulted) QoS scheme the owner
	// evaluates under, checked against the model fit's scheme.
	SchemeName string
}

// Decider holds the fast-path state for one simulator session.
type Decider struct {
	enabled bool
	cache   *Cache
	model   *perfmodel.Model
	band    float64
	// cfgHash binds signatures to the exact simulator configuration and
	// seed (perfmodel.ConfigHash).
	cfgHash string
}

// NewDecider validates a fast-path config against the session it will
// decide for and returns the decider bound to that session's config
// hash.
func NewDecider(sess *core.Session, dc DeciderConfig) (*Decider, error) {
	cfgHash, err := perfmodel.ConfigHash(sess.Config(), sess.Seed())
	if err != nil {
		return nil, err
	}
	d := &Decider{enabled: dc.FastPath, band: dc.UncertaintyBand, cfgHash: cfgHash}
	if d.band <= 0 {
		d.band = DefaultUncertaintyBand
	}
	if !dc.FastPath {
		if dc.Model != nil {
			return nil, errors.New("verdict: DeciderConfig.Model requires FastPath")
		}
		return d, nil
	}
	size := dc.CacheSize
	if size <= 0 {
		size = DefaultCacheSize
	}
	d.cache = NewCache(size)
	if dc.Model != nil {
		if got := dc.Model.ConfigHash(); got != cfgHash {
			return nil, fmt.Errorf("verdict: model fit bound to config %.12s…, session runs %.12s… (refit under this device/window/seed)",
				got, cfgHash)
		}
		if sc := dc.Model.Scheme(); sc != "" && sc != dc.SchemeName {
			return nil, fmt.Errorf("verdict: model fit swept under scheme %q, decisions evaluate %q", sc, dc.SchemeName)
		}
		d.model = dc.Model
	}
	return d, nil
}

// Enabled reports whether the fast tiers are on.
func (d *Decider) Enabled() bool { return d.enabled }

// Band returns the model tier's uncertainty band.
func (d *Decider) Band() float64 { return d.band }

// Model returns the analytic tier's model (nil when absent).
func (d *Decider) Model() *perfmodel.Model { return d.model }

// ConfigHash returns the session config hash signatures are bound to.
func (d *Decider) ConfigHash() string { return d.cfgHash }

// CacheLen and CacheCap report the verdict cache's occupancy and
// capacity; both are 0 when the fast path is off.
func (d *Decider) CacheLen() int {
	if d.cache == nil {
		return 0
	}
	return d.cache.Len()
}

func (d *Decider) CacheCap() int {
	if d.cache == nil {
		return 0
	}
	return d.cache.Cap()
}

// SignatureFor hashes the mix under this decider's config hash.
func (d *Decider) SignatureFor(sigs []KernelSig, schemeName string) string {
	return Signature(sigs, schemeName, d.cfgHash)
}

// EffectiveScheme applies the goal-less-mix rule shared by evaluation
// and replay: a hypothetical mix with no QoS kernel has no contract to
// protect, so it runs (and is cached) under unmanaged sharing.
func EffectiveScheme(scheme core.Scheme, specs []core.KernelSpec) core.Scheme {
	for _, sp := range specs {
		if sp.GoalFrac > 0 || sp.GoalIPC > 0 {
			return scheme
		}
	}
	return core.SchemeNone
}

// KernelSigsOf lowers ordered kernel specs to signature form.
func KernelSigsOf(specs []core.KernelSpec) []KernelSig {
	sigs := make([]KernelSig, len(specs))
	for i, sp := range specs {
		sigs[i] = KernelSig{Workload: sp.Workload, GoalFrac: sp.GoalFrac, GoalIPC: sp.GoalIPC}
	}
	return sigs
}

// evidenceRef renders the signature reference carried on verdicts.
func evidenceRef(sig string) string {
	if len(sig) > 16 {
		sig = sig[:16]
	}
	return "sig:" + sig
}

// FastResult reports what the fast tiers did for one decision, so the
// caller can maintain counters without the decider knowing about them.
type FastResult struct {
	// V is the decided verdict; nil means the decision falls to
	// simulation.
	V *schema.Verdict
	// CacheMiss: the fast path is enabled and the exact cache missed.
	CacheMiss bool
	// ModelEscape: the model was consulted but declined (coverage hole
	// or a prediction inside the uncertainty band).
	ModelEscape bool
}

// TryFast runs tiers 1 and 2. ids lists the job ids in spec order
// (incumbents first, candidate last); schemeName is the effective
// scheme.
func (d *Decider) TryFast(sig string, sigs []KernelSig, ids []string, schemeName string) FastResult {
	if !d.enabled {
		return FastResult{}
	}
	if cv, ok := d.cache.Get(sig); ok {
		return FastResult{V: cachedVerdict(cv, sigs, ids, sig)}
	}
	out := FastResult{CacheMiss: true}
	if d.model == nil {
		return out
	}
	v := d.modelVerdict(sig, sigs, ids, schemeName)
	if v == nil {
		out.ModelEscape = true
		return out
	}
	// Model verdicts are cached too: the next identical mix is a tier-1
	// hit instead of a re-prediction.
	d.Store(sig, v, sigs)
	out.V = v
	return out
}

// cachedVerdict maps a stored verdict's canonical-order outcomes back to
// the current request's kernel positions and job ids.
func cachedVerdict(cv Cached, sigs []KernelSig, ids []string, sig string) *schema.Verdict {
	outs := make([]schema.KernelOutcome, len(sigs))
	for ci, oi := range Canonical(sigs) {
		o := cv.Outcomes[ci]
		o.JobID = ids[oi]
		outs[oi] = o
	}
	v := newVerdict(cv.Admitted, schema.TierCache, cv.Confidence, cv.Scheme, ids, outs, sig)
	v.ModelVersion = cv.ModelVersion
	v.Cycles = cv.Cycles
	v.Reason = verdictReason(cv.Admitted, cv.Tier, cv.Confidence, outs)
	return v
}

// modelVerdict runs the analytic tier; nil means escape to simulation.
func (d *Decider) modelVerdict(sig string, sigs []KernelSig, ids []string, schemeName string) *schema.Verdict {
	mk := make([]perfmodel.Kernel, len(sigs))
	for i, ks := range sigs {
		mk[i] = perfmodel.Kernel{Workload: ks.Workload, GoalFrac: ks.GoalFrac, GoalIPC: ks.GoalIPC}
	}
	pred, ok := d.model.Predict(mk)
	if !ok {
		return nil
	}
	admit, clear := pred.Decide(d.band)
	if !clear {
		return nil
	}
	conf := pred.Confidence()
	outs := make([]schema.KernelOutcome, len(sigs))
	for i, kp := range pred.Kernels {
		o := schema.KernelOutcome{
			JobID:       ids[i],
			Workload:    kp.Workload,
			IsQoS:       kp.IsQoS,
			GoalIPC:     kp.GoalIPC,
			IPC:         kp.IPC,
			IsolatedIPC: kp.Isolated,
		}
		if kp.Isolated > 0 {
			o.NormThroughput = kp.IPC / kp.Isolated
		}
		if kp.IsQoS {
			o.GoalRatio = kp.Ratio
			o.Reached = kp.Ratio >= 1
		}
		outs[i] = o
	}
	v := newVerdict(admit, schema.TierModel, conf, schemeName, ids, outs, sig)
	v.ModelVersion = d.model.Version()
	v.Reason = verdictReason(admit, schema.TierModel, conf, outs)
	return v
}

// SimVerdict scores a what-if simulation result (tier 3). The decision
// rule is the paper's QoS contract applied transitively: admit if and
// only if every QoS kernel of the hypothetical mix reaches its goal.
func SimVerdict(res *core.Result, ids []string, sig string) *schema.Verdict {
	outs := make([]schema.KernelOutcome, len(res.Kernels))
	for i, kr := range res.Kernels {
		outs[i] = schema.KernelOutcome{
			JobID:          ids[i],
			Workload:       kr.Name,
			IsQoS:          kr.IsQoS,
			GoalIPC:        kr.GoalIPC,
			IPC:            kr.IPC,
			IsolatedIPC:    kr.IsolatedIPC,
			Reached:        kr.Reached,
			GoalRatio:      kr.GoalRatio,
			NormThroughput: kr.NormThroughput,
		}
	}
	v := newVerdict(res.AllReached, schema.TierSim, 1, res.Scheme.Name(), ids, outs, sig)
	v.Cycles = res.Cycles
	v.Reason = verdictReason(res.AllReached, schema.TierSim, 1, outs)
	return v
}

// newVerdict assembles the shared envelope; outs is in request order
// with the candidate last.
func newVerdict(admitted bool, tier string, conf float64, schemeName string, ids []string, outs []schema.KernelOutcome, sig string) *schema.Verdict {
	n := len(outs)
	mixIDs := make([]string, n-1)
	copy(mixIDs, ids)
	v := &schema.Verdict{
		Decision:    schema.Decision(admitted),
		Tier:        tier,
		Confidence:  conf,
		EvidenceRef: evidenceRef(sig),
		Scheme:      schemeName,
		MixBefore:   mixIDs,
		Candidate:   outs[n-1],
	}
	if n > 1 {
		v.Incumbents = outs[:n-1]
	}
	return v
}

// verdictReason renders the deterministic human-readable explanation.
// evidenceTier is the origin of the evidence ("sim" or "model"), which a
// cache hit inherits from the stored verdict.
func verdictReason(admitted bool, evidenceTier string, confidence float64, outs []schema.KernelOutcome) string {
	if evidenceTier == schema.TierModel {
		if admitted {
			return fmt.Sprintf("analytic model predicts all QoS goals reached (confidence %.3f)", confidence)
		}
		return "analytic model predicts QoS goal missed by " + missedList(outs)
	}
	if admitted {
		return "all QoS goals reached in the what-if co-run"
	}
	return "QoS goal missed by " + missedList(outs)
}

// missedList names every QoS kernel below goal, in request order.
func missedList(outs []schema.KernelOutcome) string {
	var missed []string
	for _, o := range outs {
		if o.IsQoS && !o.Reached {
			missed = append(missed, fmt.Sprintf("%s (%s) at %.1f%% of goal", o.JobID, o.Workload, 100*o.GoalRatio))
		}
	}
	return strings.Join(missed, ", ")
}

// Store caches a decided verdict under its signature with outcomes in
// canonical order and job ids stripped. No-op when the fast path is off.
func (d *Decider) Store(sig string, v *schema.Verdict, sigs []KernelSig) {
	if !d.enabled {
		return
	}
	outs := make([]schema.KernelOutcome, 0, len(v.Incumbents)+1)
	outs = append(outs, v.Incumbents...)
	outs = append(outs, v.Candidate)
	canon := make([]schema.KernelOutcome, len(outs))
	for ci, oi := range Canonical(sigs) {
		o := outs[oi]
		o.JobID = ""
		canon[ci] = o
	}
	d.cache.Put(sig, Cached{
		Admitted:     v.IsAdmitted(),
		Scheme:       v.Scheme,
		Cycles:       v.Cycles,
		Confidence:   v.Confidence,
		Tier:         v.Tier,
		ModelVersion: v.ModelVersion,
		Outcomes:     canon,
	})
}

// Touch refreshes sig's LRU recency without storing anything, exactly
// as a live cache hit would. Journal recovery uses it to re-evolve the
// cache through logged cache-tier decisions.
func (d *Decider) Touch(sig string) {
	if d.enabled {
		d.cache.Get(sig)
	}
}
