package distsweep

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

// BenchmarkDistSweepOverhead measures the coordination tax: the same
// grid swept once in-process on a bare Runner and once through a real
// coordinator + one worker over loopback HTTP (leases, heartbeats,
// CRC-sealed result batches, merge). The reported overhead-pct metric —
// how much slower the distributed sweep's cases/s is than the local
// run's — is gated by benchgate at an absolute ceiling
// (MaxOverheadPct): being a ratio of two same-machine measurements it
// is machine-independent, like speedup-x. Simulation dominates both
// sides, so the control plane must stay in the noise.
func BenchmarkDistSweepOverhead(b *testing.B) {
	spec := chaosSpec()
	ctx := context.Background()
	var localTotal, distTotal time.Duration
	for i := 0; i < b.N; i++ {
		// Local reference: every case on one pooled session, serially —
		// the exact work the distributed path schedules.
		lr, err := exp.NewRunner(1, exp.WithSessionOptions(spec.SessionOptions()...))
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		for c := 0; c < spec.Total(); c++ {
			ci := c
			err := lr.Do(ctx, uint64(ci), func(ctx context.Context, s *core.Session) error {
				_, _, rerr := spec.RunCase(ctx, s, ci)
				return rerr
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		localTotal += time.Since(t0)

		// Distributed: coordinator + one worker over loopback.
		coord, err := New(Config{Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(coord.Handler())
		wr, err := exp.NewRunner(1, exp.WithSessionOptions(spec.SessionOptions()...))
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(WorkerConfig{
			Addr: ts.URL, Name: "bench", Runner: wr, Spec: spec,
			// Flush whole leases: a real sweep's batches amortize the
			// report round trip the same way.
			FlushCases: spec.Total(),
		})
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if err := w.Run(ctx); err != nil {
			b.Fatal(err)
		}
		select {
		case <-coord.Done():
		case <-time.After(time.Minute):
			b.Fatal("coordinator never completed")
		}
		distTotal += time.Since(t1)
		if _, err := coord.MergedPairs(); err != nil {
			b.Fatal(err)
		}
		ts.Close()
		coord.Close()
	}
	overhead := 100 * (distTotal.Seconds()/localTotal.Seconds() - 1)
	if overhead < 0 {
		overhead = 0
	}
	b.ReportMetric(overhead, "overhead-pct")
	b.ReportMetric(float64(spec.Total())*float64(b.N)/distTotal.Seconds(), "cases/s")
}
