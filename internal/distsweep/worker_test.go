package distsweep

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/retry"
	"repro/internal/schema"
)

// TestWorkerGivesUpOnDeadCoordinator pins the idle-poll bound: a worker
// whose coordinator has exited (sweep complete, or dead for good) must
// stop polling after MaxIdlePolls consecutive misses and return an
// error, not spin on a refused connection forever.
func TestWorkerGivesUpOnDeadCoordinator(t *testing.T) {
	ts := httptest.NewServer(nil)
	addr := ts.URL
	ts.Close() // nothing listens here anymore

	r, err := exp.NewRunner(1, exp.WithSessionOptions(testSpec().SessionOptions()...))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		Addr: addr, Name: "orphan", Runner: r, Spec: testSpec(),
		PollInterval: time.Millisecond,
		MaxIdlePolls: 3,
		Retry:        retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("Run returned %v, want coordinator-unreachable error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker kept polling a dead coordinator")
	}
	if st := w.Stats(); st.DegradedFlushes != 3 {
		t.Fatalf("DegradedFlushes = %d, want 3 (one per idle poll)", st.DegradedFlushes)
	}
}

// TestWorkerGiveUpReportsCarriedBatch pins the give-up accounting: a
// worker that degrades to local execution (its report deliveries keep
// failing), carries the computed batch forward, and finally exits after
// the stretched idle-poll bound must surface the carried cases in its
// exit error and final stats snapshot — not silently drop them.
func TestWorkerGiveUpReportsCarriedBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var mu sync.Mutex
	leased := false
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/leases", func(rw http.ResponseWriter, req *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if leased {
			// Coordinator "dies" after handing out one lease.
			http.Error(rw, `{"error":"gone"}`, http.StatusInternalServerError)
			return
		}
		leased = true
		json.NewEncoder(rw).Encode(LeaseResponse{
			Schema: schema.Version,
			Lease:  &Lease{ID: "L1", Start: 0, End: 2, TTLMs: 60_000},
		})
	})
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", func(rw http.ResponseWriter, req *http.Request) {
		json.NewEncoder(rw).Encode(HeartbeatResponse{Schema: schema.Version})
	})
	mux.HandleFunc("POST /v1/leases/{id}/results", func(rw http.ResponseWriter, req *http.Request) {
		// Every delivery attempt fails transiently: results are computed
		// but never acknowledged.
		http.Error(rw, `{"error":"disk full"}`, http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r, err := exp.NewRunner(1, exp.WithSessionOptions(testSpec().SessionOptions()...))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		Addr: ts.URL, Name: "carrier", Runner: r, Spec: testSpec(),
		PollInterval: time.Millisecond,
		MaxIdlePolls: 2, // stretched by undeliveredPatience while carrying
		FlushCases:   8, // whole lease lands in one batch
		Retry:        retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("worker never gave up")
	}
	if runErr == nil {
		t.Fatal("Run returned nil, want give-up error")
	}
	if !strings.Contains(runErr.Error(), "2 case result(s)") || !strings.Contains(runErr.Error(), "undelivered batch") {
		t.Fatalf("give-up error %q does not report the carried cases", runErr)
	}
	st := w.Stats()
	if st.CasesRun != 2 {
		t.Fatalf("CasesRun = %d, want 2", st.CasesRun)
	}
	if st.CasesDelivered != 0 {
		t.Fatalf("CasesDelivered = %d, want 0 (every delivery failed)", st.CasesDelivered)
	}
	if st.CasesUndelivered != 2 {
		t.Fatalf("CasesUndelivered = %d, want 2 (the carried batch's results)", st.CasesUndelivered)
	}
}
