package distsweep

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/retry"
)

// TestWorkerGivesUpOnDeadCoordinator pins the idle-poll bound: a worker
// whose coordinator has exited (sweep complete, or dead for good) must
// stop polling after MaxIdlePolls consecutive misses and return an
// error, not spin on a refused connection forever.
func TestWorkerGivesUpOnDeadCoordinator(t *testing.T) {
	ts := httptest.NewServer(nil)
	addr := ts.URL
	ts.Close() // nothing listens here anymore

	r, err := exp.NewRunner(1, exp.WithSessionOptions(testSpec().SessionOptions()...))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		Addr: addr, Name: "orphan", Runner: r, Spec: testSpec(),
		PollInterval: time.Millisecond,
		MaxIdlePolls: 3,
		Retry:        retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("Run returned %v, want coordinator-unreachable error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker kept polling a dead coordinator")
	}
	if st := w.Stats(); st.DegradedFlushes != 3 {
		t.Fatalf("DegradedFlushes = %d, want 3 (one per idle poll)", st.DegradedFlushes)
	}
}
