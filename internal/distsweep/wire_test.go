package distsweep

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/schema"
)

func TestDecodeLeaseRejects(t *testing.T) {
	good := LeaseResponse{Schema: schema.Version, Remaining: 3,
		Lease: &Lease{ID: "L1", Start: 0, End: 3, TTLMs: 1000}}
	b, _ := json.Marshal(good)
	if _, err := DecodeLease(b); err != nil {
		t.Fatalf("valid lease rejected: %v", err)
	}
	cases := map[string]string{
		"wrong schema":   `{"schema":99,"done":false,"remaining":0}`,
		"unknown field":  `{"schema":2,"done":false,"remaining":0,"bogus":1}`,
		"trailing data":  `{"schema":2,"done":false,"remaining":0}{}`,
		"empty id":       `{"schema":2,"remaining":1,"lease":{"id":"","start":0,"end":1,"ttl_ms":5}}`,
		"inverted range": `{"schema":2,"remaining":1,"lease":{"id":"L","start":3,"end":1,"ttl_ms":5}}`,
		"zero ttl":       `{"schema":2,"remaining":1,"lease":{"id":"L","start":0,"end":1,"ttl_ms":0}}`,
		"negative rem":   `{"schema":2,"remaining":-1}`,
		"not json":       `nope`,
	}
	for name, in := range cases {
		if _, err := DecodeLease([]byte(in)); err == nil {
			t.Errorf("%s: DecodeLease accepted %s", name, in)
		}
	}
}

func TestDecodeReportVerifiesCRC(t *testing.T) {
	cr := CaseResult{Index: 0, Data: json.RawMessage(`{"x":1}`)}
	cr.Seal()
	rr := ReportRequest{Schema: schema.Version, Worker: "w", Lease: "L1", Cases: []CaseResult{cr}}
	b, _ := json.Marshal(rr)
	if _, err := DecodeReport(b); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	// Flip one payload byte: the CRC must catch it.
	corrupt := strings.Replace(string(b), `{\"x\":1}`, `{\"x\":2}`, 1)
	if corrupt == string(b) {
		// Payload is embedded unescaped when RawMessage marshals inline.
		corrupt = strings.Replace(string(b), `{"x":1}`, `{"x":2}`, 1)
	}
	if corrupt == string(b) {
		t.Fatal("test bug: corruption did not apply")
	}
	if _, err := DecodeReport([]byte(corrupt)); err == nil {
		t.Fatal("corrupted payload passed CRC verification")
	}
	// Missing lease id.
	rr.Lease = ""
	b2, _ := json.Marshal(rr)
	if _, err := DecodeReport(b2); err == nil {
		t.Fatal("report without lease id accepted")
	}
}

// FuzzLeaseDecode hardens both strict wire decoders, mirroring
// FuzzJournalDecode: arbitrary bytes must never panic, and every
// accepted value must survive a marshal -> decode round trip intact.
func FuzzLeaseDecode(f *testing.F) {
	lease := LeaseResponse{Schema: schema.Version, Remaining: 5,
		Lease: &Lease{ID: "L7", Start: 8, End: 16, TTLMs: 10_000}}
	if b, err := json.Marshal(lease); err == nil {
		f.Add(b)
	}
	cr := CaseResult{Index: 2, Data: json.RawMessage(`{"Pair":{"QoS":"sgemm","NonQoS":"lbm"},"Goal":0.5}`), Trace: TraceSummary{Events: 12}}
	cr.Seal()
	if b, err := json.Marshal(ReportRequest{Schema: schema.Version, Worker: "w0", Lease: "L7",
		Cases: []CaseResult{cr}, Failed: []CaseFailure{{Index: 3, Error: "boom"}}}); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"schema":2,"done":true,"remaining":0}`))
	f.Add([]byte(`{"schema":1,"done":false}`))
	f.Add([]byte(`{"schema":2,"lease":{"id":"L","start":0,"end":-1,"ttl_ms":1}}`))
	f.Add([]byte(`{"schema":2,"worker":"w","lease":"L","cases":[{"index":0,"data":{},"crc":0}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, b []byte) {
		if lr, err := DecodeLease(b); err == nil {
			enc, err := json.Marshal(lr)
			if err != nil {
				t.Fatalf("accepted lease failed to re-encode: %v", err)
			}
			lr2, err := DecodeLease(enc)
			if err != nil {
				t.Fatalf("re-encoded lease failed to decode: %v", err)
			}
			if lr2.Done != lr.Done || lr2.Remaining != lr.Remaining ||
				(lr2.Lease == nil) != (lr.Lease == nil) {
				t.Fatalf("lease round trip changed fields: %+v -> %+v", lr, lr2)
			}
			if lr.Lease != nil && *lr2.Lease != *lr.Lease {
				t.Fatalf("lease round trip changed lease: %+v -> %+v", *lr.Lease, *lr2.Lease)
			}
		}
		if rr, err := DecodeReport(b); err == nil {
			enc, err := json.Marshal(rr)
			if err != nil {
				t.Fatalf("accepted report failed to re-encode: %v", err)
			}
			rr2, err := DecodeReport(enc)
			if err != nil {
				t.Fatalf("re-encoded report failed to decode: %v", err)
			}
			if rr2.Lease != rr.Lease || rr2.Worker != rr.Worker ||
				len(rr2.Cases) != len(rr.Cases) || len(rr2.Failed) != len(rr.Failed) {
				t.Fatalf("report round trip changed fields: %+v -> %+v", rr, rr2)
			}
			for i := range rr.Cases {
				if rr2.Cases[i].Index != rr.Cases[i].Index || rr2.Cases[i].CRC != rr.Cases[i].CRC {
					t.Fatalf("report round trip changed case %d", i)
				}
			}
		}
	})
}
