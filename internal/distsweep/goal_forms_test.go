package distsweep

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/schema"
)

// TestSpecNewGoalFormsDecodeButValidateRejects pins the contract the
// open-world goal forms have with the sweep protocol: the typed union
// decodes them faithfully off the wire (a coordinator must be able to
// say precisely what it refuses), but Validate rejects any non-frac
// axis — sweeps sweep the paper's fraction-of-isolated-IPC axis, and
// the journal stage keys hash its historical bare-number encoding.
func TestSpecNewGoalFormsDecodeButValidateRejects(t *testing.T) {
	cases := []struct {
		goalJSON string
		kind     string
	}{
		{`{"latency":{"instrs":1000,"seconds":0.001,"percentile":0.99}}`, schema.GoalLatency},
		{`{"periodic":{"instrs":500,"period_s":0.033}}`, schema.GoalPeriodic},
	}
	for _, c := range cases {
		raw := `{"mode":"pairs","pairs":[{"qos":"sgemm","nonqos":"lbm"}],
			"goals":[0.5,` + c.goalJSON + `],"scheme":"rollover"}`
		var sp Spec
		if err := json.Unmarshal([]byte(raw), &sp); err != nil {
			t.Fatalf("%s: decode: %v", c.kind, err)
		}
		if len(sp.Goals) != 2 || sp.Goals[0] != schema.FracGoal(0.5) || sp.Goals[1].Kind != c.kind {
			t.Fatalf("%s: decoded goals = %+v", c.kind, sp.Goals)
		}
		err := sp.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a non-frac sweep axis", c.kind)
		}
		if !strings.Contains(err.Error(), c.kind) {
			t.Fatalf("%s: Validate error %q does not name the offending form", c.kind, err)
		}
		// Re-encoding preserves the typed union: the coordinator can echo
		// the spec it refused without mangling the goal payload.
		b, err := json.Marshal(sp.Goals)
		if err != nil {
			t.Fatal(err)
		}
		var back []schema.Goal
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: reparse %s: %v", c.kind, b, err)
		}
		if back[1] != sp.Goals[1] {
			t.Fatalf("%s: goal round trip = %+v, want %+v", c.kind, back[1], sp.Goals[1])
		}
	}

	// Control: the same spec with an all-frac axis is a valid sweep.
	var ok Spec
	if err := json.Unmarshal([]byte(
		`{"mode":"pairs","pairs":[{"qos":"sgemm","nonqos":"lbm"}],"goals":[0.5,0.9],"scheme":"rollover"}`,
	), &ok); err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("all-frac control spec: %v", err)
	}
}
