// Package distsweep scales sweeps beyond one process: a coordinator
// (cmd/sweepd) owns a case grid and the CRC'd JSONL checkpoint journal
// as durable state, and leases contiguous case ranges over HTTP/JSON to
// workers (cmd/sweep -worker) that execute them on pooled simulator
// sessions and stream per-case results back.
//
// Robustness model, outermost first:
//
//   - The journal is the only durable state. Every accepted case is
//     journaled under exactly the stage key a local exp.Runner would use
//     (exp.StageKey), so a sweep may start local, continue distributed,
//     crash, and resume either way — without re-running committed cases.
//   - Leases expire when a worker stops heartbeating; their unfinished
//     indices return to the free pool and are re-issued. Cases already
//     committed under an expired lease are never re-issued.
//   - Result delivery is idempotent: cases are deduplicated by index, so
//     a worker that kept executing through a coordinator outage (or past
//     its own lease expiry) can deliver late or twice without poisoning
//     the journal. Per-case CRCs reject corrupt deliveries.
//   - Merge order is deterministic case-index order. Because each case
//     is bit-identical to a serial run (seeded RNG streams, not
//     scheduling), the merged results are byte-identical to a serial
//     in-process sweep under any worker interleaving and any kill
//     schedule — the chaos suite in chaos_test.go enforces this.
package distsweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/schema"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Spec describes one distributed sweep completely: the case grid, the
// scheme, and everything that determines simulation results (device
// configuration, window, seed). Workers fetch it from the coordinator
// and build sessions from it, so both sides agree on the grid-index →
// case mapping and on the journal identity.
type Spec struct {
	// Mode selects the grid shape: "pairs" or "trios".
	Mode string `json:"mode"`
	// Pairs is the pair grid (pairs mode).
	Pairs []workloads.Pair `json:"pairs,omitempty"`
	// Trios is the trio grid (trios mode).
	Trios []workloads.Trio `json:"trios,omitempty"`
	// Goals is the QoS-goal axis as typed goals (schema.Goal); cases are
	// ordered pair/trio-major, goal-minor, exactly like the serial
	// sweeps. Sweeps sweep the paper's fraction-of-isolated-IPC axis, so
	// every goal must be the frac form — which marshals as a bare JSON
	// number, keeping the wire bytes (and therefore journal stage keys)
	// identical to the historical []float64 encoding. Build with
	// schema.FracGoals.
	Goals []schema.Goal `json:"goals"`
	// NQoS is the QoS kernel count per trio (1 or 2; trios mode).
	NQoS int `json:"nqos,omitempty"`
	// Scheme names the QoS scheme (core.ParseScheme).
	Scheme string `json:"scheme"`
	// GPU is the device configuration; the zero value means config.Base().
	GPU config.GPU `json:"gpu"`
	// Window is the measurement window in cycles (0 means the session
	// default).
	Window int64 `json:"window,omitempty"`
	// Seed seeds the per-session RNG streams (0 means the session
	// default, workloads.Seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Sweep modes.
const (
	ModePairs = "pairs"
	ModeTrios = "trios"
)

// Validate checks the spec describes a runnable, non-empty sweep.
func (sp Spec) Validate() error {
	switch sp.Mode {
	case ModePairs:
		if len(sp.Pairs) == 0 {
			return errors.New("distsweep: spec has no pairs")
		}
	case ModeTrios:
		if len(sp.Trios) == 0 {
			return errors.New("distsweep: spec has no trios")
		}
		if sp.NQoS < 1 || sp.NQoS > 2 {
			return fmt.Errorf("distsweep: nQoS must be 1 or 2, got %d", sp.NQoS)
		}
	default:
		return fmt.Errorf("distsweep: unknown mode %q", sp.Mode)
	}
	if len(sp.Goals) == 0 {
		return errors.New("distsweep: spec has no goals")
	}
	for i, g := range sp.Goals {
		if g.Kind != schema.GoalFrac {
			return fmt.Errorf("distsweep: goal %d is %q-form; sweep axes are fractions of isolated IPC", i, g.Kind)
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("distsweep: goal %d: %w", i, err)
		}
	}
	if _, err := core.ParseScheme(sp.Scheme); err != nil {
		return err
	}
	return nil
}

// FracAxis lowers the goal axis to the bare fractions the exp grids and
// stage-key hashes have always used.
func (sp Spec) FracAxis() []float64 {
	out := make([]float64, len(sp.Goals))
	for i, g := range sp.Goals {
		out[i] = g.Frac
	}
	return out
}

// Total returns the case count of the grid.
func (sp Spec) Total() int {
	if sp.Mode == ModeTrios {
		return len(sp.Trios) * len(sp.Goals)
	}
	return len(sp.Pairs) * len(sp.Goals)
}

// SchemeValue resolves the scheme name.
func (sp Spec) SchemeValue() (core.Scheme, error) { return core.ParseScheme(sp.Scheme) }

// SessionOptions returns the core options a session must be built with
// to reproduce this sweep's results. Shard settings are deliberately
// absent: they are bit-identical by construction and stay a local
// worker choice.
func (sp Spec) SessionOptions() []core.Option {
	opts := []core.Option{}
	if sp.GPU.NumSMs != 0 {
		opts = append(opts, core.WithGPU(sp.GPU))
	}
	if sp.Window != 0 {
		opts = append(opts, core.WithWindow(sp.Window))
	}
	if sp.Seed != 0 {
		opts = append(opts, core.WithSeed(sp.Seed))
	}
	return opts
}

// Grid returns the hashed grid identity — the same value the local
// Runner hashes, so stage keys agree.
func (sp Spec) Grid() any {
	if sp.Mode == ModeTrios {
		return exp.TrioGrid{Trios: sp.Trios, Goals: sp.FracAxis(), NQoS: sp.NQoS}
	}
	return exp.PairGrid{Pairs: sp.Pairs, Goals: sp.FracAxis()}
}

// HeaderHash is the journal header hash binding a journal file to this
// sweep's device, window, mode and nQoS — the same derivation cmd/sweep
// uses, so sweepd and sweep can share one journal file.
func (sp Spec) HeaderHash() (string, error) {
	cfg := sp.GPU
	if cfg.NumSMs == 0 {
		cfg = config.Base()
	}
	window := sp.Window
	if window == 0 {
		window = 200_000
	}
	// cmd/sweep hashes its -nqos flag (default 1) even in pairs mode,
	// where the value is unused; mirror that so the files interoperate.
	nqos := sp.NQoS
	if nqos == 0 {
		nqos = 1
	}
	return journal.Hash(struct {
		GPU    config.GPU
		Window int64
		Mode   string
		NQoS   int
	}{cfg, window, sp.Mode, nqos})
}

// StageKey derives the journal stage key for this sweep by resolving a
// session from the spec's options — identical to the key a local
// exp.Runner built from SessionOptions would derive.
func (sp Spec) StageKey() (string, error) {
	scheme, err := sp.SchemeValue()
	if err != nil {
		return "", err
	}
	s, err := core.NewSession(sp.SessionOptions()...)
	if err != nil {
		return "", err
	}
	return exp.StageKey(s.Config(), s.Seed(), sp.Mode, scheme, sp.Grid())
}

// Describe renders one case's grid coordinates for logs and failure
// reports, mirroring the local Runner's describe strings.
func (sp Spec) Describe(i int) string {
	g := sp.Goals[i%len(sp.Goals)].Frac
	if sp.Mode == ModeTrios {
		t := sp.Trios[i/len(sp.Goals)]
		return fmt.Sprintf("trio[%d] %s+%s+%s @%.2f", i/len(sp.Goals), t.A, t.B, t.C, g)
	}
	p := sp.Pairs[i/len(sp.Goals)]
	return fmt.Sprintf("pair[%d] %s+%s @%.2f", i/len(sp.Goals), p.QoS, p.NonQoS, g)
}

// CaseSpecs maps a case index to its kernel spec list, via the same
// exp helpers every other execution path uses.
func (sp Spec) CaseSpecs(i int) ([]core.KernelSpec, error) {
	if i < 0 || i >= sp.Total() {
		return nil, fmt.Errorf("distsweep: case index %d outside grid [0,%d)", i, sp.Total())
	}
	g := sp.Goals[i%len(sp.Goals)].Frac
	if sp.Mode == ModeTrios {
		specs, _ := exp.TrioSpecs(sp.Trios[i/len(sp.Goals)], g, sp.NQoS)
		return specs, nil
	}
	return exp.PairSpecs(sp.Pairs[i/len(sp.Goals)], g), nil
}

// RunCase executes one case on a session and returns the journal-ready
// payload — the JSON encoding of the same exp.PairCase/exp.TrioCase
// value a local sweep would checkpoint, so distributed and local
// journals are interchangeable byte for byte.
func (sp Spec) RunCase(ctx context.Context, s *core.Session, i int) (json.RawMessage, *core.Result, error) {
	return sp.RunCaseTraced(ctx, s, i, nil)
}

// RunCaseTraced is RunCase with an observability tracer attached to the
// simulation (nil behaves like RunCase). The tracer never influences
// results — workers ship only its event counts as side evidence.
func (sp Spec) RunCaseTraced(ctx context.Context, s *core.Session, i int, tr *trace.Tracer) (json.RawMessage, *core.Result, error) {
	specs, err := sp.CaseSpecs(i)
	if err != nil {
		return nil, nil, err
	}
	scheme, err := sp.SchemeValue()
	if err != nil {
		return nil, nil, err
	}
	res, err := s.RunTraced(ctx, specs, scheme, tr)
	if err != nil {
		return nil, nil, err
	}
	g := sp.Goals[i%len(sp.Goals)].Frac
	var v any
	if sp.Mode == ModeTrios {
		_, qg := exp.TrioSpecs(sp.Trios[i/len(sp.Goals)], g, sp.NQoS)
		v = exp.TrioCase{Trio: sp.Trios[i/len(sp.Goals)], QoSGoals: qg, Scheme: scheme, Res: res}
	} else {
		v = exp.PairCase{Pair: sp.Pairs[i/len(sp.Goals)], Goal: g, Scheme: scheme, Res: res}
	}
	data, err := json.Marshal(v)
	if err != nil {
		return nil, nil, fmt.Errorf("distsweep: marshal case %d: %w", i, err)
	}
	return data, res, nil
}

// ValidCase reports whether a payload restores to a completed case of
// this sweep's mode — the same acceptance check the local Runner's
// journal restore applies.
func (sp Spec) ValidCase(raw json.RawMessage) bool {
	if sp.Mode == ModeTrios {
		var c exp.TrioCase
		return json.Unmarshal(raw, &c) == nil && c.Res != nil
	}
	var c exp.PairCase
	return json.Unmarshal(raw, &c) == nil && c.Res != nil
}

// RestorePairs decodes merged pair-case payloads in index order. Missing
// entries (nil payloads) become zero cases with Res == nil, matching the
// local Runner's partial-grid convention.
func (sp Spec) RestorePairs(results []json.RawMessage) ([]exp.PairCase, error) {
	if sp.Mode != ModePairs {
		return nil, fmt.Errorf("distsweep: RestorePairs on mode %q", sp.Mode)
	}
	out := make([]exp.PairCase, len(results))
	for i, raw := range results {
		if raw == nil {
			continue
		}
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("distsweep: case %d: %w", i, err)
		}
	}
	return out, nil
}

// RestoreTrios decodes merged trio-case payloads in index order.
func (sp Spec) RestoreTrios(results []json.RawMessage) ([]exp.TrioCase, error) {
	if sp.Mode != ModeTrios {
		return nil, fmt.Errorf("distsweep: RestoreTrios on mode %q", sp.Mode)
	}
	out := make([]exp.TrioCase, len(results))
	for i, raw := range results {
		if raw == nil {
			continue
		}
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("distsweep: case %d: %w", i, err)
		}
	}
	return out, nil
}
