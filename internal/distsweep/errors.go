package distsweep

import (
	"errors"
	"net/http"

	"repro/internal/journal"
	"repro/internal/schema"
)

// Sentinels of the distribution layer. Together with the journal and
// schema sentinels they form the coordinator's error taxonomy;
// httpStatus is the single place any of them becomes a status code,
// mirroring the qosd serving layer.
var (
	// ErrDraining rejects new leases because the coordinator is
	// shutting down. Reports are still accepted while draining so
	// in-flight work lands in the journal.
	ErrDraining = errors.New("distsweep: draining")
	// ErrBusy rejects a lease request because the coordinator is at its
	// bound on outstanding leases. Clients should back off (429 +
	// Retry-After).
	ErrBusy = errors.New("distsweep: too many outstanding leases")
	// ErrUnknownLease is returned for lease ids the coordinator never
	// issued (heartbeat only; result delivery tolerates unknown leases
	// because completed work is still worth committing).
	ErrUnknownLease = errors.New("distsweep: unknown lease")
	// ErrBadRequest wraps request validation failures (malformed JSON,
	// CRC mismatches, out-of-grid indices).
	ErrBadRequest = errors.New("distsweep: bad request")
)

// httpStatus maps every error the coordinator can surface to its HTTP
// status code — the only place errors become codes; handlers must not
// hand-pick them.
func httpStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownLease):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, schema.ErrVersion),
		errors.Is(err, journal.ErrVersion),
		errors.Is(err, journal.ErrConfigMismatch):
		return http.StatusBadRequest
	default:
		// Journal write failures and anything unclassified are internal;
		// workers retry via internal/retry and dedupe absorbs the rest.
		return http.StatusInternalServerError
	}
}
