package distsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/retry"
	"repro/internal/schema"
	"repro/internal/trace"
)

// Worker defaults.
const (
	// DefaultFlushCases is how many completed cases a worker batches
	// before streaming them to the coordinator.
	DefaultFlushCases = 4
	// DefaultPollInterval is the sleep between lease requests when every
	// remaining case is leased to someone else.
	DefaultPollInterval = 500 * time.Millisecond
	// DefaultMaxIdlePolls is how many consecutive lease polls may fail
	// (each after its full retry budget) before the worker concludes the
	// coordinator is gone and exits with an error.
	DefaultMaxIdlePolls = 8
	// undeliveredPatience stretches MaxIdlePolls while the worker still
	// holds computed-but-undelivered results: giving up then loses real
	// work, so the worker tries considerably longer first.
	undeliveredPatience = 4
	// workerRingSize bounds the per-case trace ring; only the summary
	// (event/drop counts) crosses the wire, so a small ring suffices.
	workerRingSize = 1 << 12
)

// WorkerEvent is one observable worker transition, for logging and for
// the chaos harness (which kills workers at scripted points).
type WorkerEvent struct {
	// Kind is one of "lease", "case", "flush", "heartbeat_miss",
	// "lease_expired", "degraded", "done".
	Kind string
	// Lease is the lease id in force ("" before the first lease).
	Lease string
	// Index is the case index for "case" events (-1 otherwise).
	Index int
	// Err carries the trigger for "heartbeat_miss"/"degraded".
	Err error
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	Leases          int
	CasesRun        int
	CasesDelivered  int
	CasesFailed     int
	Duplicates      int
	HeartbeatMisses int
	// DegradedFlushes counts result batches that could not be delivered
	// within the retry budget and were carried forward locally.
	DegradedFlushes int
	// CasesUndelivered gauges the case results (successes plus failures)
	// currently computed but not acknowledged by the coordinator. It is
	// nonzero while batches ride the carry-forward queue and, crucially,
	// in the final snapshot of a worker that gave up with work on board —
	// those results die with the worker and the exit summary must say so.
	CasesUndelivered int
}

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Addr is the coordinator base URL (e.g. "http://host:9121").
	Addr string
	// Name identifies the worker in leases and logs.
	Name string
	// Runner executes cases. Required; built from the fetched Spec's
	// SessionOptions plus local choices (pool size, shards, injectors).
	Runner *exp.Runner
	// Spec is the sweep being executed (fetched via FetchSpec).
	Spec Spec
	// Client is the HTTP client. Nil means http.DefaultClient; the chaos
	// harness injects transports that drop/duplicate/delay deliveries.
	Client *http.Client
	// Retry shapes re-attempts of transient coordinator errors. The zero
	// value gets a small deterministic default (seeded by the worker
	// name's length — callers wanting distinct jitter streams pass their
	// own seeds).
	Retry retry.Policy
	// FlushCases is the result batch size (0 means DefaultFlushCases).
	FlushCases int
	// PollInterval is the no-work re-poll sleep (0 means
	// DefaultPollInterval).
	PollInterval time.Duration
	// MaxIdlePolls bounds consecutive failed lease polls before the
	// worker gives up on an unreachable coordinator (0 means
	// DefaultMaxIdlePolls; the bound is stretched undeliveredPatience×
	// while computed results still await delivery).
	MaxIdlePolls int
	// Trace enables per-case trace collection; summaries ride along
	// with each result.
	Trace bool
	// Log receives progress lines. Nil silences logging.
	Log *log.Logger
	// OnEvent observes worker transitions (tests, chaos harness). Called
	// synchronously from the worker loop.
	OnEvent func(WorkerEvent)
}

// Worker pulls range leases from a coordinator, executes them on the
// pooled Runner, and streams results back in CRC-sealed batches.
//
// Fault model: the control plane (lease/heartbeat/report HTTP) may fail
// at any point without losing computed work. Transient errors are
// retried with seeded backoff; if the coordinator stays unreachable the
// worker degrades to local execution — it finishes the cases of the
// lease it holds, carries undelivered batches forward, and re-attempts
// delivery before asking for more work. Re-delivery after a lease
// expired (or after a duplicated send) is safe because the coordinator
// dedupes by case index.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	// statsMu guards stats: the heartbeat goroutine and tests read and
	// write concurrently with the execution loop.
	statsMu sync.Mutex
	stats   WorkerStats

	// undelivered carries computed-but-unacknowledged results across
	// delivery failures; keyed into batches by the lease they came from.
	undelivered []pendingBatch
}

type pendingBatch struct {
	lease  string
	cases  []CaseResult
	failed []CaseFailure
}

// NewWorker validates the config and returns a runnable worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Runner == nil {
		return nil, errors.New("distsweep: worker needs a Runner")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Addr == "" {
		return nil, errors.New("distsweep: worker needs a coordinator address")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.FlushCases <= 0 {
		cfg.FlushCases = DefaultFlushCases
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.MaxIdlePolls <= 0 {
		cfg.MaxIdlePolls = DefaultMaxIdlePolls
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = retry.Policy{
			MaxAttempts: 4,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Multiplier:  2,
			Jitter:      0.2,
			Seed:        uint64(len(cfg.Name)) + 1,
		}
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Worker{cfg: cfg, client: client}, nil
}

// Stats returns a snapshot of the run counters; safe to call while the
// worker is running.
func (w *Worker) Stats() WorkerStats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.stats
}

// bump applies one mutation to the counters under the lock.
func (w *Worker) bump(f func(*WorkerStats)) {
	w.statsMu.Lock()
	f(&w.stats)
	w.statsMu.Unlock()
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Printf("worker %s: %s", w.cfg.Name, fmt.Sprintf(format, args...))
	}
}

func (w *Worker) event(kind, leaseID string, index int, err error) {
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(WorkerEvent{Kind: kind, Lease: leaseID, Index: index, Err: err})
	}
}

// Run executes leases until the coordinator reports the sweep done or
// ctx is canceled. It returns nil on normal completion; a canceled ctx
// surfaces as ctx.Err() (the chaos harness kills workers this way). A
// coordinator that stays unreachable for MaxIdlePolls consecutive
// lease polls — each already carrying the full retry budget — ends the
// worker with an error: it has most likely completed and exited (or
// died for good), and a worker with no lease and no undelivered work
// has nothing left to degrade to.
func (w *Worker) Run(ctx context.Context) error {
	idleFails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Older work first: nothing new is leased while computed results
		// might still be sitting here undelivered.
		w.flushUndelivered(ctx)

		lr, err := w.acquireLease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Coordinator unreachable beyond the retry budget and no lease
			// held: nothing to degrade to — re-poll slowly, give up after
			// MaxIdlePolls consecutive misses (undelivered work stretches
			// the patience; those batches die with this worker otherwise).
			w.bump(func(st *WorkerStats) { st.DegradedFlushes++ })
			w.event("degraded", "", -1, err)
			idleFails++
			limit := w.cfg.MaxIdlePolls
			if len(w.undelivered) > 0 {
				limit *= undeliveredPatience
			}
			if idleFails >= limit {
				if n := len(w.undelivered); n > 0 {
					return fmt.Errorf("distsweep: coordinator unreachable for %d polls; giving up with %d case result(s) in %d undelivered batch(es): %w",
						idleFails, w.Stats().CasesUndelivered, n, err)
				}
				return fmt.Errorf("distsweep: coordinator unreachable for %d polls: %w", idleFails, err)
			}
			w.logf("coordinator unreachable (%v); re-polling (%d/%d)", err, idleFails, limit)
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		idleFails = 0
		if lr.Done {
			w.event("done", "", -1, nil)
			st := w.Stats()
			w.logf("sweep done: %d cases over %d leases, %d delivered, %d heartbeat misses",
				st.CasesRun, st.Leases, st.CasesDelivered, st.HeartbeatMisses)
			return nil
		}
		if lr.Lease == nil {
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		w.executeLease(ctx, *lr.Lease)
	}
}

// executeLease runs one lease's range, heartbeating in the background
// and streaming results in chunks. Control-plane failures never abort
// execution: results that cannot be delivered are carried forward.
func (w *Worker) executeLease(ctx context.Context, l Lease) {
	w.bump(func(st *WorkerStats) { st.Leases++ })
	w.event("lease", l.ID, -1, nil)
	w.logf("lease %s [%d,%d), ttl %dms", l.ID, l.Start, l.End, l.TTLMs)

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, l)

	var batch pendingBatch
	batch.lease = l.ID
	flush := func() {
		if len(batch.cases) == 0 && len(batch.failed) == 0 {
			return
		}
		w.deliver(ctx, batch)
		batch = pendingBatch{lease: l.ID}
	}
	for i := l.Start; i < l.End; i++ {
		if ctx.Err() != nil {
			return // killed mid-lease; undelivered work is lost with us
		}
		data, tr, err := w.runCase(ctx, i)
		w.bump(func(st *WorkerStats) { st.CasesRun++ })
		w.event("case", l.ID, i, err)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.bump(func(st *WorkerStats) { st.CasesFailed++ })
			batch.failed = append(batch.failed, CaseFailure{Index: i, Error: err.Error()})
			w.logf("case %d (%s) failed: %v", i, w.cfg.Spec.Describe(i), err)
		} else {
			cr := CaseResult{Index: i, Data: data, Trace: tr}
			cr.Seal()
			batch.cases = append(batch.cases, cr)
		}
		if len(batch.cases)+len(batch.failed) >= w.cfg.FlushCases {
			flush()
		}
	}
	flush()
}

// runCase executes one case on a borrowed pool session under the
// runner's fault boundary, tagging the context with the case index so
// deterministic fault injectors key on it.
func (w *Worker) runCase(ctx context.Context, i int) (json.RawMessage, TraceSummary, error) {
	var data json.RawMessage
	var sum TraceSummary
	err := w.cfg.Runner.Do(ctx, uint64(i), func(ctx context.Context, s *core.Session) error {
		ctx = core.ContextWithCaseIndex(ctx, i)
		var tr *trace.Tracer
		if w.cfg.Trace {
			tr = trace.New(workerRingSize)
		}
		d, _, err := w.cfg.Spec.RunCaseTraced(ctx, s, i, tr)
		if err != nil {
			return err
		}
		data = d
		sum = TraceSummary{Events: tr.Len(), Dropped: tr.Dropped()}
		return nil
	})
	return data, sum, err
}

// heartbeatLoop extends the lease every TTL/3. Misses are counted and
// surfaced, never fatal: execution continues (degraded) and idempotent
// delivery makes any resulting double-report harmless.
func (w *Worker) heartbeatLoop(ctx context.Context, l Lease) {
	interval := time.Duration(l.TTLMs) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		hr, err := w.postHeartbeat(ctx, l.ID)
		switch {
		case err != nil:
			w.bump(func(st *WorkerStats) { st.HeartbeatMisses++ })
			w.event("heartbeat_miss", l.ID, -1, err)
			w.logf("heartbeat %s missed: %v", l.ID, err)
		case hr.Expired:
			w.event("lease_expired", l.ID, -1, nil)
			w.logf("lease %s expired at coordinator; finishing range anyway (idempotent delivery)", l.ID)
			return
		}
	}
}

// deliver posts one batch, retrying transients; on exhaustion the batch
// is carried forward and re-attempted before the next lease.
func (w *Worker) deliver(ctx context.Context, b pendingBatch) {
	resp, err := w.postReport(ctx, b)
	if err != nil {
		w.bump(func(st *WorkerStats) { st.DegradedFlushes++ })
		w.undelivered = append(w.undelivered, b)
		w.noteUndelivered()
		w.event("degraded", b.lease, -1, err)
		w.logf("delivery of %d cases failed (%v); carrying forward", len(b.cases), err)
		return
	}
	w.bump(func(st *WorkerStats) {
		st.CasesDelivered += resp.Accepted
		st.Duplicates += resp.Duplicates
	})
	w.event("flush", b.lease, -1, nil)
}

// flushUndelivered re-attempts carried-forward batches in order.
func (w *Worker) flushUndelivered(ctx context.Context) {
	if len(w.undelivered) == 0 {
		return
	}
	pending := w.undelivered
	w.undelivered = nil
	for _, b := range pending {
		if ctx.Err() != nil {
			w.undelivered = append(w.undelivered, b)
			continue
		}
		w.deliver(ctx, b)
	}
	w.noteUndelivered()
}

// noteUndelivered refreshes the undelivered-case gauge after the
// carry-forward queue changed. Only the worker loop mutates the queue,
// so recomputing the sum here is race-free; the gauge itself lives in
// the stats snapshot readers see.
func (w *Worker) noteUndelivered() {
	n := 0
	for _, b := range w.undelivered {
		n += len(b.cases) + len(b.failed)
	}
	w.bump(func(st *WorkerStats) { st.CasesUndelivered = n })
}

// --- HTTP plumbing ----------------------------------------------------

// FetchSpec retrieves a coordinator's sweep spec, retrying transient
// errors under pol. It returns the spec and the journal stage key.
func FetchSpec(ctx context.Context, client *http.Client, addr string, pol retry.Policy) (Spec, string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var out SpecResponse
	err := pol.Do(ctx, 1, func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/spec", nil)
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return statusErr(resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			return retry.Permanent(err)
		}
		if err := schema.Check(out.Schema); err != nil {
			return retry.Permanent(err)
		}
		return nil
	})
	if err != nil {
		return Spec{}, "", err
	}
	if err := out.Spec.Validate(); err != nil {
		return Spec{}, "", err
	}
	return out.Spec, out.Stage, nil
}

// acquireLease requests work, retrying transient failures.
func (w *Worker) acquireLease(ctx context.Context) (LeaseResponse, error) {
	var out LeaseResponse
	err := w.cfg.Retry.Do(ctx, 2, func(int) error {
		body, err := json.Marshal(LeaseRequest{Schema: schema.Version, Worker: w.cfg.Name})
		if err != nil {
			return retry.Permanent(err)
		}
		b, err := w.post(ctx, "/v1/leases", body)
		if err != nil {
			return err
		}
		lr, err := DecodeLease(b)
		if err != nil {
			return retry.Permanent(err)
		}
		out = lr
		return nil
	})
	return out, err
}

func (w *Worker) postHeartbeat(ctx context.Context, leaseID string) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	// One attempt per tick: the ticker is the retry loop here.
	b, err := w.post(ctx, "/v1/leases/"+leaseID+"/heartbeat", nil)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, err
	}
	if err := schema.Check(out.Schema); err != nil {
		return out, err
	}
	return out, nil
}

func (w *Worker) postReport(ctx context.Context, b pendingBatch) (ReportResponse, error) {
	var out ReportResponse
	err := w.cfg.Retry.Do(ctx, 3, func(int) error {
		body, err := json.Marshal(ReportRequest{
			Schema: schema.Version,
			Worker: w.cfg.Name,
			Lease:  b.lease,
			Cases:  b.cases,
			Failed: b.failed,
		})
		if err != nil {
			return retry.Permanent(err)
		}
		rb, err := w.post(ctx, "/v1/leases/"+b.lease+"/results", body)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(rb, &out); err != nil {
			return retry.Permanent(err)
		}
		if err := schema.Check(out.Schema); err != nil {
			return retry.Permanent(err)
		}
		return nil
	})
	return out, err
}

// post issues one POST and classifies the response: 2xx returns the
// body, 4xx (except 429) is permanent, everything else is transient.
func (w *Worker) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err // network-level: transient
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		return rb, nil
	}
	return nil, statusErr(resp.StatusCode, rb)
}

// statusErr converts a non-2xx response into a typed error: client
// errors (except 429) are permanent, server errors and 429 transient.
func statusErr(status int, body []byte) error {
	var er errorResponse
	msg := fmt.Sprintf("http %d", status)
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = fmt.Sprintf("http %d: %s", status, er.Error)
	}
	err := errors.New(msg)
	if status >= 400 && status < 500 && status != http.StatusTooManyRequests {
		return retry.Permanent(err)
	}
	return err
}

// sleepCtx sleeps d or until ctx is done, reporting whether it slept
// the full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
