package distsweep

import (
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/schema"
)

// Wire types for the coordinator/worker protocol. Every response carries
// the shared schema version (internal/schema) like the qosd API, and
// every case payload carries a CRC32 so a corrupted delivery is rejected
// at decode time instead of poisoning the journal — the same checksum
// discipline the journal itself applies per line.
//
// DecodeLease and DecodeReport are the strict entry points for bytes
// that crossed a process boundary; both are fuzzed (FuzzLeaseDecode).

// Wire limits: bounds enforced by the strict decoders so a malformed or
// hostile payload cannot make the coordinator allocate absurd state.
const (
	// MaxWireCases bounds cases per report request.
	MaxWireCases = 4096
	// MaxWireBytes bounds one case payload's size.
	MaxWireBytes = 1 << 20
)

// Lease grants a worker a contiguous half-open case range [Start, End).
// The worker must heartbeat before TTLMs elapses or the coordinator
// reclaims the unfinished indices.
type Lease struct {
	ID    string `json:"id"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	TTLMs int64  `json:"ttl_ms"`
}

// Valid checks lease invariants shared by both sides.
func (l Lease) Valid() error {
	if l.ID == "" {
		return fmt.Errorf("distsweep: lease has no id")
	}
	if l.Start < 0 || l.End <= l.Start {
		return fmt.Errorf("distsweep: lease range [%d,%d) invalid", l.Start, l.End)
	}
	if l.TTLMs <= 0 {
		return fmt.Errorf("distsweep: lease ttl %dms invalid", l.TTLMs)
	}
	return nil
}

// SpecResponse is the body of GET /v1/spec.
type SpecResponse struct {
	Schema int    `json:"schema"`
	Spec   Spec   `json:"spec"`
	Stage  string `json:"stage"` // journal stage key, informational
}

// LeaseRequest is the body of POST /v1/leases.
type LeaseRequest struct {
	Schema int    `json:"schema"`
	Worker string `json:"worker"`
	// MaxCases caps the granted range (0 means coordinator default).
	MaxCases int `json:"max_cases,omitempty"`
}

// LeaseResponse is the body of POST /v1/leases. Lease is nil when no
// work is available; Done distinguishes "sweep complete, go home" from
// "all remaining cases are leased out, poll again".
type LeaseResponse struct {
	Schema    int    `json:"schema"`
	Done      bool   `json:"done"`
	Remaining int    `json:"remaining"`
	Lease     *Lease `json:"lease,omitempty"`
}

// HeartbeatResponse is the body of POST /v1/leases/{id}/heartbeat.
// Expired tells the worker its lease was reclaimed (it may finish and
// report anyway — delivery is idempotent — but should not count on the
// range being exclusively its own).
type HeartbeatResponse struct {
	Schema  int  `json:"schema"`
	Expired bool `json:"expired"`
	Done    bool `json:"done"`
}

// TraceSummary is the per-case trace evidence a worker streams back:
// how many control-decision events the simulation emitted and how many
// the ring dropped. It rides alongside the payload, never inside it, so
// it cannot perturb bit-identical merged results.
type TraceSummary struct {
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped,omitempty"`
}

// CaseResult is one completed case: the journal-ready payload (the JSON
// of an exp.PairCase/exp.TrioCase), its CRC32, and trace evidence.
type CaseResult struct {
	Index int             `json:"index"`
	Data  json.RawMessage `json:"data"`
	CRC   uint32          `json:"crc"`
	Trace TraceSummary    `json:"trace"`
}

// Checksum computes the CRC the wire carries for a payload.
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Seal stamps the CRC over Data. Workers call it once per case.
func (c *CaseResult) Seal() { c.CRC = Checksum(c.Data) }

// CaseFailure reports a case the worker could not complete (after its
// own retry budget), so the coordinator can count attempts and
// eventually fail the case permanently instead of re-leasing forever.
type CaseFailure struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// ReportRequest is the body of POST /v1/leases/{id}/results. A report
// may carry any subset of the lease's cases (workers stream in chunks),
// and may arrive after the lease expired — the coordinator dedupes by
// index.
type ReportRequest struct {
	Schema int           `json:"schema"`
	Worker string        `json:"worker"`
	Lease  string        `json:"lease"`
	Cases  []CaseResult  `json:"cases,omitempty"`
	Failed []CaseFailure `json:"failed,omitempty"`
}

// ReportResponse is the body of POST /v1/leases/{id}/results.
type ReportResponse struct {
	Schema int `json:"schema"`
	// Accepted counts cases newly committed to the journal.
	Accepted int `json:"accepted"`
	// Duplicates counts cases already committed (idempotent re-delivery).
	Duplicates int `json:"duplicates"`
	// Orphaned is true when the lease was unknown or expired; the cases
	// were still merged (delivery is idempotent), the flag is advisory.
	Orphaned bool `json:"orphaned,omitempty"`
	Done     bool `json:"done"`
}

// StateResponse is the body of GET /v1/state — coordinator progress for
// operators and tests.
type StateResponse struct {
	Schema    int   `json:"schema"`
	Total     int   `json:"total"`
	Committed int   `json:"committed"`
	Failed    int   `json:"failed"`
	Leased    int   `json:"leased"`
	Free      int   `json:"free"`
	Workers   int   `json:"workers"`
	Expired   int64 `json:"leases_expired"`
	Orphans   int64 `json:"orphan_reports"`
	Done      bool  `json:"done"`
}

// DecodeLease strictly decodes a LeaseResponse received by a worker:
// unknown fields rejected, schema checked, lease invariants enforced.
func DecodeLease(b []byte) (LeaseResponse, error) {
	var lr LeaseResponse
	if err := schema.DecodeStrict(b, &lr); err != nil {
		return LeaseResponse{}, fmt.Errorf("distsweep: lease: %w", err)
	}
	if err := schema.Check(lr.Schema); err != nil {
		return LeaseResponse{}, err
	}
	if lr.Remaining < 0 {
		return LeaseResponse{}, fmt.Errorf("distsweep: lease: negative remaining %d", lr.Remaining)
	}
	if lr.Lease != nil {
		if err := lr.Lease.Valid(); err != nil {
			return LeaseResponse{}, err
		}
	}
	return lr, nil
}

// DecodeReport strictly decodes a ReportRequest received by the
// coordinator: schema checked, bounds enforced, every case CRC verified.
// It is the single entry point for worker-supplied result bytes.
func DecodeReport(b []byte) (ReportRequest, error) {
	var rr ReportRequest
	if err := schema.DecodeStrict(b, &rr); err != nil {
		return ReportRequest{}, fmt.Errorf("distsweep: report: %w", err)
	}
	if err := schema.Check(rr.Schema); err != nil {
		return ReportRequest{}, err
	}
	if rr.Lease == "" {
		return ReportRequest{}, fmt.Errorf("distsweep: report has no lease id")
	}
	if len(rr.Cases) > MaxWireCases {
		return ReportRequest{}, fmt.Errorf("distsweep: report carries %d cases (max %d)", len(rr.Cases), MaxWireCases)
	}
	if len(rr.Failed) > MaxWireCases {
		return ReportRequest{}, fmt.Errorf("distsweep: report carries %d failures (max %d)", len(rr.Failed), MaxWireCases)
	}
	for i, c := range rr.Cases {
		if c.Index < 0 {
			return ReportRequest{}, fmt.Errorf("distsweep: report case %d: negative index %d", i, c.Index)
		}
		if len(c.Data) == 0 {
			return ReportRequest{}, fmt.Errorf("distsweep: report case %d (index %d): empty payload", i, c.Index)
		}
		if len(c.Data) > MaxWireBytes {
			return ReportRequest{}, fmt.Errorf("distsweep: report case %d (index %d): payload %d bytes (max %d)", i, c.Index, len(c.Data), MaxWireBytes)
		}
		if got := Checksum(c.Data); got != c.CRC {
			return ReportRequest{}, fmt.Errorf("distsweep: report case %d (index %d): CRC mismatch (stored %08x, computed %08x)", i, c.Index, c.CRC, got)
		}
		if c.Trace.Events < 0 || c.Trace.Dropped < 0 {
			return ReportRequest{}, fmt.Errorf("distsweep: report case %d (index %d): negative trace counts", i, c.Index)
		}
	}
	for i, f := range rr.Failed {
		if f.Index < 0 {
			return ReportRequest{}, fmt.Errorf("distsweep: report failure %d: negative index %d", i, f.Index)
		}
	}
	return rr, nil
}
