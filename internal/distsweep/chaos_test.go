package distsweep

// The deterministic chaos harness: real coordinator + real workers over
// real HTTP (httptest), with scripted failures at every seam —
// worker kills (context cancel at the Nth case), dropped / duplicated /
// delayed result deliveries (a chaos RoundTripper), blackholed
// heartbeats forcing lease-expiry races, and injected simulation faults
// (exp.ScriptedFaults on core.WithFaultInjector). Every scenario ends
// with the same two assertions:
//
//  1. the merged results are byte-identical to a serial in-process run
//     of the same grid (the headline robustness guarantee), and
//  2. the journal holds exactly one line per case — no committed case
//     was ever re-executed into a duplicate append.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/schema"
	"repro/internal/workloads"
)

// chaosSpec is the reference chaos grid: 3 pairs x 2 goals = 6 cases on
// the CI-sized device, small enough to sweep serially in-process for
// the byte-identity oracle.
func chaosSpec() Spec {
	cfg := config.Base()
	cfg.NumSMs = 4
	return Spec{
		Mode: ModePairs,
		Pairs: []workloads.Pair{
			{QoS: "sgemm", NonQoS: "lbm"},
			{QoS: "mri-q", NonQoS: "stencil"},
			{QoS: "lbm", NonQoS: "sgemm"},
		},
		Goals:  schema.FracGoals([]float64{0.4, 0.7}),
		Scheme: "rollover",
		GPU:    cfg,
		Window: 30_000,
	}
}

// serialOracle runs the grid serially in-process and returns the
// marshaled per-case payloads every distributed run must reproduce
// byte for byte.
func serialOracle(t *testing.T, sp Spec) [][]byte {
	t.Helper()
	s, err := core.NewSession(sp.SessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := sp.SchemeValue()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := exp.PairSweep(context.Background(), s, sp.Pairs, sp.FracAxis(), scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(cases))
	for i, c := range cases {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// assertMergedIdentical is the headline check: merged distributed
// results == serial run, byte for byte, in grid order.
func assertMergedIdentical(t *testing.T, c *Coordinator, want [][]byte) {
	t.Helper()
	got := c.Results()
	if len(got) != len(want) {
		t.Fatalf("merged %d cases, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] == nil {
			t.Fatalf("case %d missing from merge", i)
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("case %d differs from serial run:\n serial: %s\n merged: %s", i, want[i], got[i])
		}
	}
}

// assertJournalSingleLines parses the raw journal and fails on any
// duplicate case append — the bit-identical-resume poison the dedupe
// layer exists to prevent.
func assertJournalSingleLines(t *testing.T, path string, total int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	perIndex := map[int]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		rec, err := journal.Decode([]byte(line))
		if err != nil {
			t.Fatalf("journal line damaged: %v", err)
		}
		if !rec.Header {
			perIndex[rec.Index]++
		}
	}
	if len(perIndex) != total {
		t.Fatalf("journal holds %d cases, want %d", len(perIndex), total)
	}
	for i, n := range perIndex {
		if n != 1 {
			t.Fatalf("journal has %d lines for case %d, want exactly 1", n, i)
		}
	}
}

// chaosRule scripts one transport fault. Kind selects the request
// ("results", "heartbeat", "leases", "spec"); Nth is the 1-based match
// ordinal it fires on (0 = every match).
type chaosRule struct {
	kind   string
	nth    int
	action string // "drop" | "dupfail" | "delay"
	delay  time.Duration
}

// chaosTransport applies scripted faults to a worker's HTTP requests:
//
//	drop    — the request never reaches the coordinator; the worker sees
//	          a transport error (tests retry + degraded local execution)
//	dupfail — the request IS delivered, but the worker sees an error and
//	          retries, producing a duplicated delivery
//	delay   — the request is held before delivery, reordering it against
//	          other workers' traffic
type chaosTransport struct {
	base   http.RoundTripper
	mu     sync.Mutex
	counts map[string]int
	rules  []chaosRule
}

func newChaosTransport(rules ...chaosRule) *chaosTransport {
	return &chaosTransport{base: http.DefaultTransport, counts: map[string]int{}, rules: rules}
}

func reqKind(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasSuffix(p, "/results"):
		return "results"
	case strings.HasSuffix(p, "/heartbeat"):
		return "heartbeat"
	case strings.HasSuffix(p, "/leases"):
		return "leases"
	case strings.HasSuffix(p, "/spec"):
		return "spec"
	}
	return "other"
}

func (c *chaosTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	kind := reqKind(r)
	c.mu.Lock()
	c.counts[kind]++
	n := c.counts[kind]
	var rule *chaosRule
	for i := range c.rules {
		if c.rules[i].kind == kind && (c.rules[i].nth == 0 || c.rules[i].nth == n) {
			rule = &c.rules[i]
			break
		}
	}
	c.mu.Unlock()
	if rule == nil {
		return c.base.RoundTrip(r)
	}
	switch rule.action {
	case "drop":
		if r.Body != nil {
			r.Body.Close()
		}
		return nil, fmt.Errorf("chaos: dropped %s #%d", kind, n)
	case "dupfail":
		resp, err := c.base.RoundTrip(r)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: delivered-then-failed %s #%d", kind, n)
	case "delay":
		select {
		case <-r.Context().Done():
			return nil, r.Context().Err()
		case <-time.After(rule.delay):
		}
		return c.base.RoundTrip(r)
	}
	return c.base.RoundTrip(r)
}

// execRecorder tracks per-case execution counts across all workers, for
// the no-committed-case-re-executed assertion.
type execRecorder struct {
	mu    sync.Mutex
	count map[int]int
}

func newExecRecorder() *execRecorder { return &execRecorder{count: map[int]int{}} }

func (r *execRecorder) record(i int) {
	r.mu.Lock()
	r.count[i]++
	r.mu.Unlock()
}

func (r *execRecorder) snapshot() map[int]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]int, len(r.count))
	for k, v := range r.count {
		out[k] = v
	}
	return out
}

// chaosWorkerOpts configures one spawned test worker.
type chaosWorkerOpts struct {
	name      string
	transport *chaosTransport
	faults    *exp.ScriptedFaults
	onCase    func(w *Worker, ev WorkerEvent)
	flush     int
	retries   retry.Policy
}

// startWorker fetches the spec over the (possibly chaotic) transport,
// builds a single-session runner, and runs the worker in a goroutine.
func startWorker(t *testing.T, ctx context.Context, addr string, o chaosWorkerOpts, rec *execRecorder) (*Worker, <-chan error) {
	t.Helper()
	client := http.DefaultClient
	if o.transport != nil {
		client = &http.Client{Transport: o.transport}
	}
	fetchPol := retry.Policy{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond, Seed: 1}
	spec, _, err := FetchSpec(ctx, http.DefaultClient, addr, fetchPol) // spec fetch stays clean; chaos targets the work loop
	if err != nil {
		t.Fatal(err)
	}
	sessOpts := spec.SessionOptions()
	if o.faults != nil {
		sessOpts = append(sessOpts, core.WithFaultInjector(o.faults))
	}
	runner, err := exp.NewRunner(1,
		exp.WithSessionOptions(sessOpts...),
		exp.WithFaultPolicy(exp.FaultPolicy{Retry: retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 7}}))
	if err != nil {
		t.Fatal(err)
	}
	pol := o.retries
	if pol.MaxAttempts == 0 {
		pol = retry.Policy{MaxAttempts: 4, BaseDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: uint64(len(o.name))}
	}
	var w *Worker
	w, err = NewWorker(WorkerConfig{
		Addr:         addr,
		Name:         o.name,
		Runner:       runner,
		Spec:         spec,
		Client:       client,
		Retry:        pol,
		FlushCases:   o.flush,
		PollInterval: 50 * time.Millisecond,
		Trace:        true,
		OnEvent: func(ev WorkerEvent) {
			if ev.Kind == "case" {
				rec.record(ev.Index)
				if o.onCase != nil {
					o.onCase(w, ev)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(ctx) }()
	return w, errCh
}

// chaosCoordinator builds a journaled coordinator + HTTP server for the
// chaos grid.
func chaosCoordinator(t *testing.T, sp Spec, leaseCases int, ttl time.Duration) (*Coordinator, *httptest.Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.ckpt")
	c, err := New(Config{Spec: sp, Journal: path, LeaseCases: leaseCases, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() { ts.Close(); c.Close() })
	return c, ts, path
}

func waitDone(t *testing.T, c *Coordinator, timeout time.Duration) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(timeout):
		t.Fatalf("sweep did not complete: state %+v", c.State())
	}
}

// TestChaosDeliveryFaults drives two workers through dropped,
// duplicated and delayed result deliveries plus an injected transient
// simulation fault — and requires a byte-identical merge anyway.
func TestChaosDeliveryFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sp := chaosSpec()
	want := serialOracle(t, sp)
	coord, ts, jpath := chaosCoordinator(t, sp, 2, 5*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rec := newExecRecorder()

	// Worker A: first delivery dropped (retry heals it), second delivered
	// twice (dedupe absorbs it). Case 3 also fails its first simulation
	// attempt via the deterministic injector (runner-level retry heals it).
	faults := exp.NewScriptedFaults(map[int][]exp.FaultSpec{
		3: {{Err: fmt.Errorf("injected transient sim fault")}},
	})
	wA, errA := startWorker(t, ctx, ts.URL, chaosWorkerOpts{
		name: "chaos-a",
		transport: newChaosTransport(
			chaosRule{kind: "results", nth: 1, action: "drop"},
			chaosRule{kind: "results", nth: 2, action: "dupfail"},
		),
		faults: faults,
		flush:  2,
	}, rec)
	// Worker B: first delivery delayed behind A's traffic (reordering).
	_, errB := startWorker(t, ctx, ts.URL, chaosWorkerOpts{
		name: "chaos-b",
		transport: newChaosTransport(
			chaosRule{kind: "results", nth: 1, action: "delay", delay: 150 * time.Millisecond},
		),
		flush: 2,
	}, rec)

	waitDone(t, coord, 55*time.Second)
	if err := <-errA; err != nil {
		t.Fatalf("worker A: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("worker B: %v", err)
	}

	assertMergedIdentical(t, coord, want)
	assertJournalSingleLines(t, jpath, sp.Total())
	if st := coord.State(); !st.Done || st.Failed != 0 {
		t.Fatalf("state = %+v", st)
	}
	// The dupfail rule guarantees at least one duplicated delivery made
	// it to the coordinator and was absorbed.
	if wA.Stats().Duplicates == 0 {
		t.Fatal("chaos dupfail produced no observed duplicate — transport rule did not fire")
	}
}

// TestChaosLeaseExpiryRace blackholes one worker's heartbeats while an
// injected delay stretches its first case past the lease TTL: the lease
// expires mid-execution, the range is re-issued to a second worker, and
// both end up reporting overlapping cases. Dedupe must keep the journal
// single-lined and the merge byte-identical.
func TestChaosLeaseExpiryRace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sp := chaosSpec()
	want := serialOracle(t, sp)
	ttl := 300 * time.Millisecond
	coord, ts, jpath := chaosCoordinator(t, sp, 2, ttl)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rec := newExecRecorder()

	// Worker A: heartbeats never arrive, and case 0 stalls well past the
	// TTL inside the simulator.
	faults := exp.NewScriptedFaults(map[int][]exp.FaultSpec{
		0: {{Delay: 3 * ttl}},
	})
	_, errA := startWorker(t, ctx, ts.URL, chaosWorkerOpts{
		name:      "chaos-slow",
		transport: newChaosTransport(chaosRule{kind: "heartbeat", action: "drop"}),
		faults:    faults,
		flush:     1,
	}, rec)
	_, errB := startWorker(t, ctx, ts.URL, chaosWorkerOpts{
		name:  "chaos-fast",
		flush: 1,
	}, rec)

	waitDone(t, coord, 55*time.Second)
	if err := <-errA; err != nil {
		t.Fatalf("worker A: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("worker B: %v", err)
	}

	assertMergedIdentical(t, coord, want)
	assertJournalSingleLines(t, jpath, sp.Total())
	st := coord.State()
	if st.Expired == 0 {
		t.Fatal("scenario did not force a lease expiry — TTL race never happened")
	}
}

// TestSoakKillOne is the acceptance soak: three workers, one killed
// mid-lease before it delivers anything. Its lease expires, the range
// is re-issued, the survivors finish — and the merged report must be
// byte-identical to the serial run, with no journal-committed case
// re-executed afterwards (asserted by snapshotting execution counts at
// the kill and comparing against the committed set).
func TestSoakKillOne(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sp := chaosSpec()
	want := serialOracle(t, sp)
	coord, ts, jpath := chaosCoordinator(t, sp, 2, 400*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rec := newExecRecorder()

	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	var killOnce sync.Once
	type killState struct {
		execAtKill      map[int]int
		committedAtKill map[int]bool
		victimIndex     int
	}
	var ks killState

	// The victim dies synchronously inside its first case event — after
	// executing one case, before any delivery (flush size 2).
	victim, errV := startWorker(t, victimCtx, ts.URL, chaosWorkerOpts{
		name:  "victim",
		flush: 2,
		onCase: func(_ *Worker, ev WorkerEvent) {
			killOnce.Do(func() {
				ks.execAtKill = rec.snapshot()
				ks.committedAtKill = map[int]bool{}
				for i, raw := range coord.Results() {
					if raw != nil {
						ks.committedAtKill[i] = true
					}
				}
				ks.victimIndex = ev.Index
				kill()
			})
		},
	}, rec)
	_, err1 := startWorker(t, ctx, ts.URL, chaosWorkerOpts{name: "survivor-1", flush: 2}, rec)
	_, err2 := startWorker(t, ctx, ts.URL, chaosWorkerOpts{name: "survivor-2", flush: 2}, rec)

	if err := <-errV; err == nil {
		t.Fatal("victim was never killed")
	}
	if victim.Stats().CasesDelivered != 0 {
		t.Fatalf("victim delivered %d cases before dying; kill schedule broken", victim.Stats().CasesDelivered)
	}
	waitDone(t, coord, 55*time.Second)
	if err := <-err1; err != nil {
		t.Fatalf("survivor 1: %v", err)
	}
	if err := <-err2; err != nil {
		t.Fatalf("survivor 2: %v", err)
	}

	// Headline guarantee: kill-any-single-worker changes nothing.
	assertMergedIdentical(t, coord, want)
	assertJournalSingleLines(t, jpath, sp.Total())

	// No journal-committed case was re-executed: whatever was committed
	// at the kill kept its execution count to the end.
	final := rec.snapshot()
	for i := range ks.committedAtKill {
		if final[i] != ks.execAtKill[i] {
			t.Fatalf("committed case %d re-executed after the kill (%d -> %d executions)",
				i, ks.execAtKill[i], final[i])
		}
	}
	// The victim's in-flight case was lost with it and must have been
	// re-executed by a survivor.
	if final[ks.victimIndex] < 2 {
		t.Fatalf("victim's case %d executed %d times; lease re-issue never re-ran it", ks.victimIndex, final[ks.victimIndex])
	}
	if st := coord.State(); st.Expired == 0 {
		t.Fatalf("victim's lease never expired: %+v", st)
	}

	// The merged CSV equals one built straight from the serial cases.
	var distCSV bytes.Buffer
	if err := coord.WriteCSV(&distCSV); err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	{
		s, err := core.NewSession(sp.SessionOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		scheme, _ := sp.SchemeValue()
		cases, err := exp.PairSweep(context.Background(), s, sp.Pairs, sp.FracAxis(), scheme, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantCSV.WriteString(strings.Join(exp.PairCSVHeader(), ",") + "\n")
		for _, c := range cases {
			wantCSV.WriteString(strings.Join(exp.PairCSVRow(c), ",") + "\n")
		}
	}
	if distCSV.String() != wantCSV.String() {
		t.Fatalf("merged CSV differs from serial CSV:\n--- serial ---\n%s\n--- merged ---\n%s", wantCSV.String(), distCSV.String())
	}
}
