package distsweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/schema"
)

// Coordinator defaults.
const (
	// DefaultLeaseCases is the default contiguous range size per lease.
	DefaultLeaseCases = 8
	// DefaultLeaseTTL is the default heartbeat deadline.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultMaxLeases bounds outstanding leases (back-pressure, like
	// qosd's bounded admission queue).
	DefaultMaxLeases = 64
	// DefaultMaxCaseAttempts is how many distinct worker failures a case
	// may accumulate before the coordinator fails it permanently instead
	// of re-leasing it forever.
	DefaultMaxCaseAttempts = 3
)

// Config configures a Coordinator.
type Config struct {
	// Spec is the sweep to distribute. Required, must validate.
	Spec Spec
	// Journal is the checkpoint file path. Empty means in-memory only
	// (no durability — tests and throwaway runs).
	Journal string
	// Resume permits opening a journal that already has entries. Without
	// it an existing non-empty journal is refused, mirroring cmd/sweep's
	// explicit -resume contract.
	Resume bool
	// LeaseCases caps cases per lease (0 means DefaultLeaseCases).
	LeaseCases int
	// LeaseTTL is the heartbeat deadline (0 means DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxLeases bounds outstanding leases (0 means DefaultMaxLeases).
	MaxLeases int
	// MaxCaseAttempts bounds per-case failure reports before permanent
	// failure (0 means DefaultMaxCaseAttempts).
	MaxCaseAttempts int
	// Log receives progress lines. Nil silences logging.
	Log *log.Logger
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// lease is one outstanding grant: the contiguous range and which of its
// indices are still unaccounted for (neither committed nor failed).
type lease struct {
	id       string
	worker   string
	start    int
	end      int
	pending  map[int]struct{}
	deadline time.Time
}

// Coordinator owns a sweep's durable state — the CRC'd JSONL journal —
// and hands out expiring range leases over HTTP. It is the only writer
// of the journal; workers are stateless executors.
//
// Concurrency: one mutex guards all state. Every operation is a quick
// in-memory transition plus at most one journal append (buffered file
// write), so a single lock keeps the invariants trivially audit-able:
//
//   - an index is in exactly one of: free pool, a live lease's pending
//     set, the committed results, or the permanently-failed set;
//   - committed indices never re-enter the free pool, so a committed
//     case is never re-leased (and therefore never re-executed by a
//     worker that respects its lease);
//   - results[i] is written at most once — later deliveries of i count
//     as duplicates and do not touch the journal.
type Coordinator struct {
	cfg   Config
	stage string
	total int

	mu        sync.Mutex
	jnl       *journal.Journal
	free      []int // sorted uncommitted, unleased indices
	leases    map[string]*lease
	results   []json.RawMessage // committed payloads by index
	committed int
	attempts  map[int]int    // failure reports per index
	failed    map[int]string // permanently failed: index -> last error
	leaseSeq  int
	draining  bool
	doneOnce  sync.Once
	done      chan struct{}

	// counters (under mu; exported via /v1/state and /metrics)
	expired    int64
	orphans    int64
	duplicates int64
	granted    int64
	reports    int64
}

// New builds a coordinator for a sweep, opening (or creating) its
// journal and restoring every committed case from it. A journal written
// by a local `sweep` run of the same grid restores identically — the
// stage key and payload encoding are shared.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.LeaseCases <= 0 {
		cfg.LeaseCases = DefaultLeaseCases
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxLeases <= 0 {
		cfg.MaxLeases = DefaultMaxLeases
	}
	if cfg.MaxCaseAttempts <= 0 {
		cfg.MaxCaseAttempts = DefaultMaxCaseAttempts
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	stage, err := cfg.Spec.StageKey()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		stage:    stage,
		total:    cfg.Spec.Total(),
		leases:   make(map[string]*lease),
		results:  make([]json.RawMessage, cfg.Spec.Total()),
		attempts: make(map[int]int),
		failed:   make(map[int]string),
		done:     make(chan struct{}),
	}
	if cfg.Journal != "" {
		hash, err := cfg.Spec.HeaderHash()
		if err != nil {
			return nil, err
		}
		j, err := journal.Open(cfg.Journal, hash)
		if err != nil {
			return nil, err
		}
		if !cfg.Resume && len(j.Completed(stage)) > 0 {
			j.Close()
			return nil, fmt.Errorf("distsweep: journal %s already has results for this stage; pass Resume to continue it", cfg.Journal)
		}
		c.jnl = j
		for i, raw := range j.Completed(stage) {
			if i < 0 || i >= c.total || !cfg.Spec.ValidCase(raw) {
				continue // foreign or damaged entry; leave the case to re-run
			}
			if c.results[i] == nil {
				c.results[i] = raw
				c.committed++
			}
		}
	}
	for i := 0; i < c.total; i++ {
		if c.results[i] == nil {
			c.free = append(c.free, i)
		}
	}
	if c.committed+len(c.failed) == c.total {
		c.doneOnce.Do(func() { close(c.done) })
	}
	c.logf("coordinator: stage %s, %d cases (%d restored from journal)", stage, c.total, c.committed)
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log.Printf(format, args...)
	}
}

// Spec returns the sweep spec workers execute against.
func (c *Coordinator) Spec() Spec { return c.cfg.Spec }

// Stage returns the journal stage key of this sweep.
func (c *Coordinator) Stage() string { return c.stage }

// Done is closed when every case is committed or permanently failed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Drain stops granting new leases. Heartbeats and result deliveries
// keep working so in-flight ranges land in the journal before shutdown.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.logf("coordinator: draining, no new leases")
}

// Close releases the journal. Call after the serving loop has stopped.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jnl == nil {
		return nil
	}
	err := c.jnl.Close()
	c.jnl = nil
	return err
}

// expireLocked reclaims every lease whose heartbeat deadline has
// passed: unfinished indices return to the free pool for re-issue.
// Committed indices were already removed from the pending set at report
// time, so a re-issued range never contains a journal-committed case.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		for i := range l.pending {
			c.free = append(c.free, i)
		}
		sort.Ints(c.free)
		delete(c.leases, id)
		c.expired++
		c.logf("coordinator: lease %s (worker %s) expired, %d cases re-queued", id, l.worker, len(l.pending))
	}
}

// checkDoneLocked closes Done once nothing is outstanding.
func (c *Coordinator) checkDoneLocked() {
	if c.committed+len(c.failed) >= c.total {
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// Grant issues a lease of up to maxCases contiguous free indices.
// A nil lease with done=false means everything is leased out — poll
// again; done=true means the sweep is finished.
func (c *Coordinator) Grant(worker string, maxCases int) (*Lease, LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	resp := LeaseResponse{Schema: schema.Version}
	if c.committed+len(c.failed) >= c.total {
		resp.Done = true
		return nil, resp, nil
	}
	resp.Remaining = c.total - c.committed - len(c.failed)
	if c.draining {
		return nil, resp, ErrDraining
	}
	if len(c.free) == 0 {
		return nil, resp, nil // all outstanding; worker polls again
	}
	if len(c.leases) >= c.cfg.MaxLeases {
		return nil, resp, ErrBusy
	}
	n := c.cfg.LeaseCases
	if maxCases > 0 && maxCases < n {
		n = maxCases
	}
	// Contiguous prefix run of the sorted free pool.
	run := 1
	for run < len(c.free) && run < n && c.free[run] == c.free[run-1]+1 {
		run++
	}
	start, end := c.free[0], c.free[0]+run
	c.free = c.free[run:]
	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("L%d", c.leaseSeq),
		worker:   worker,
		start:    start,
		end:      end,
		pending:  make(map[int]struct{}, run),
		deadline: now.Add(c.cfg.LeaseTTL),
	}
	for i := start; i < end; i++ {
		l.pending[i] = struct{}{}
	}
	c.leases[l.id] = l
	c.granted++
	wire := &Lease{ID: l.id, Start: start, End: end, TTLMs: c.cfg.LeaseTTL.Milliseconds()}
	resp.Lease = wire
	c.logf("coordinator: lease %s [%d,%d) -> worker %s", l.id, start, end, worker)
	return wire, resp, nil
}

// Heartbeat extends a lease's deadline. Expired (or never-issued)
// leases report Expired=true; the worker may still deliver results.
func (c *Coordinator) Heartbeat(id string) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	resp := HeartbeatResponse{Schema: schema.Version, Done: c.committed+len(c.failed) >= c.total}
	l, ok := c.leases[id]
	if !ok {
		resp.Expired = true
		return resp
	}
	l.deadline = now.Add(c.cfg.LeaseTTL)
	return resp
}

// Report merges a batch of case results (and failures) into the
// coordinator's state. It is idempotent by case index: the first
// delivery of a case is journaled and counted, every later delivery —
// duplicated request, re-executed range after lease expiry, late
// arrival from a presumed-dead worker — counts as a duplicate and does
// not touch the journal. The request is trusted to have passed
// DecodeReport (CRCs verified, bounds checked).
func (c *Coordinator) Report(rr ReportRequest) (ReportResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	resp := ReportResponse{Schema: schema.Version}
	c.reports++

	l, live := c.leases[rr.Lease]
	if !live {
		resp.Orphaned = true
		c.orphans++
	}

	for _, cs := range rr.Cases {
		if cs.Index >= c.total {
			return resp, fmt.Errorf("%w: case index %d outside grid [0,%d)", ErrBadRequest, cs.Index, c.total)
		}
		if c.results[cs.Index] != nil {
			resp.Duplicates++
			c.duplicates++
			continue
		}
		if !c.cfg.Spec.ValidCase(cs.Data) {
			return resp, fmt.Errorf("%w: case %d payload does not restore", ErrBadRequest, cs.Index)
		}
		if c.jnl != nil {
			if err := c.jnl.Append(c.stage, cs.Index, cs.Data); err != nil {
				// Journal write failed: do not mark committed. The worker
				// sees a 500, retries the delivery, and dedupe absorbs any
				// partial overlap with this batch.
				return resp, fmt.Errorf("distsweep: journal append case %d: %w", cs.Index, err)
			}
		}
		c.results[cs.Index] = cs.Data
		c.committed++
		resp.Accepted++
		if live {
			delete(l.pending, cs.Index)
		} else {
			// The case may sit in some re-issued lease's pending set; drop
			// it there so that lease's expiry cannot re-queue it.
			for _, other := range c.leases {
				delete(other.pending, cs.Index)
			}
		}
		c.removeFreeLocked(cs.Index)
	}

	for _, f := range rr.Failed {
		if f.Index >= c.total {
			return resp, fmt.Errorf("%w: failed index %d outside grid [0,%d)", ErrBadRequest, f.Index, c.total)
		}
		if c.results[f.Index] != nil {
			continue // raced with a successful delivery; success wins
		}
		if _, dead := c.failed[f.Index]; dead {
			continue
		}
		c.attempts[f.Index]++
		if live {
			delete(l.pending, f.Index)
		}
		if c.attempts[f.Index] >= c.cfg.MaxCaseAttempts {
			c.failed[f.Index] = f.Error
			c.removeFreeLocked(f.Index)
			c.logf("coordinator: case %d (%s) permanently failed after %d attempts: %s",
				f.Index, c.cfg.Spec.Describe(f.Index), c.attempts[f.Index], f.Error)
		} else if !c.inFreeLocked(f.Index) {
			c.free = append(c.free, f.Index)
			sort.Ints(c.free)
		}
	}

	// A lease whose every case has been committed or failed is finished:
	// retire it now rather than letting it sit until TTL expiry, so it
	// stops holding a MaxLeases slot and never shows up as "expired".
	if live && len(l.pending) == 0 {
		delete(c.leases, rr.Lease)
	}

	c.checkDoneLocked()
	resp.Done = c.committed+len(c.failed) >= c.total
	if resp.Accepted > 0 {
		c.logf("coordinator: %d/%d committed (+%d, %d dup) via lease %s", c.committed, c.total, resp.Accepted, resp.Duplicates, rr.Lease)
	}
	return resp, nil
}

func (c *Coordinator) removeFreeLocked(idx int) {
	i := sort.SearchInts(c.free, idx)
	if i < len(c.free) && c.free[i] == idx {
		c.free = append(c.free[:i], c.free[i+1:]...)
	}
}

func (c *Coordinator) inFreeLocked(idx int) bool {
	i := sort.SearchInts(c.free, idx)
	return i < len(c.free) && c.free[i] == idx
}

// State snapshots progress for operators and tests.
func (c *Coordinator) State() StateResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	leased := 0
	for _, l := range c.leases {
		leased += len(l.pending)
	}
	workers := map[string]struct{}{}
	for _, l := range c.leases {
		workers[l.worker] = struct{}{}
	}
	return StateResponse{
		Schema:    schema.Version,
		Total:     c.total,
		Committed: c.committed,
		Failed:    len(c.failed),
		Leased:    leased,
		Free:      len(c.free),
		Workers:   len(workers),
		Expired:   c.expired,
		Orphans:   c.orphans,
		Done:      c.committed+len(c.failed) >= c.total,
	}
}

// Results returns a copy of the committed payloads by case index
// (nil where missing). The slice order is the deterministic merge
// order: grid index, independent of delivery order.
func (c *Coordinator) Results() []json.RawMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]json.RawMessage, len(c.results))
	copy(out, c.results)
	return out
}

// FailedCases returns permanently failed cases as index -> last error.
func (c *Coordinator) FailedCases() map[int]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]string, len(c.failed))
	for k, v := range c.failed {
		out[k] = v
	}
	return out
}

// MergedPairs restores the merged pair cases in grid order.
func (c *Coordinator) MergedPairs() ([]exp.PairCase, error) {
	return c.cfg.Spec.RestorePairs(c.Results())
}

// MergedTrios restores the merged trio cases in grid order.
func (c *Coordinator) MergedTrios() ([]exp.TrioCase, error) {
	return c.cfg.Spec.RestoreTrios(c.Results())
}

// WriteCSV renders the merged results with the same row builders the
// local sweep front end uses, skipping uncommitted/failed cases.
func (c *Coordinator) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if c.cfg.Spec.Mode == ModeTrios {
		cases, err := c.MergedTrios()
		if err != nil {
			return err
		}
		cw.Write(exp.TrioCSVHeader())
		for _, cse := range cases {
			if cse.Res != nil {
				cw.Write(exp.TrioCSVRow(cse, c.cfg.Spec.NQoS))
			}
		}
	} else {
		cases, err := c.MergedPairs()
		if err != nil {
			return err
		}
		cw.Write(exp.PairCSVHeader())
		for _, cse := range cases {
			if cse.Res != nil {
				cw.Write(exp.PairCSVRow(cse))
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// --- HTTP surface -----------------------------------------------------

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/spec", c.handleSpec)
	mux.HandleFunc("POST /v1/leases", c.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/leases/{id}/results", c.handleReport)
	mux.HandleFunc("GET /v1/state", c.handleState)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

// errorResponse mirrors the qosd error envelope.
type errorResponse struct {
	Schema int    `json:"schema"`
	Error  string `json:"error"`
	Code   int    `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (c *Coordinator) writeErr(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests {
		// One lease-TTL is the natural back-off unit: by then either a
		// slot freed up or an expiry returned work to the pool.
		w.Header().Set("Retry-After", strconv.Itoa(int(c.cfg.LeaseTTL/time.Second)+1))
	}
	writeJSON(w, status, errorResponse{Schema: schema.Version, Error: err.Error(), Code: status})
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SpecResponse{Schema: schema.Version, Spec: c.cfg.Spec, Stage: c.stage})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		c.writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	var req LeaseRequest
	if err := schema.DecodeStrict(body, &req); err != nil {
		c.writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if err := schema.Check(req.Schema); err != nil {
		c.writeErr(w, err)
		return
	}
	_, resp, err := c.Grant(req.Worker, req.MaxCases)
	if err != nil {
		c.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Heartbeat(r.PathValue("id")))
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(MaxWireCases)*MaxWireBytes))
	if err != nil {
		c.writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	rr, err := DecodeReport(body)
	if err != nil {
		c.writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if rr.Lease != r.PathValue("id") {
		c.writeErr(w, fmt.Errorf("%w: lease id mismatch (path %q, body %q)", ErrBadRequest, r.PathValue("id"), rr.Lease))
		return
	}
	resp, err := c.Report(rr)
	if err != nil {
		c.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.State())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := c.State()
	c.mu.Lock()
	granted, reports, dups := c.granted, c.reports, c.duplicates
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "distsweep_cases_total %d\n", st.Total)
	fmt.Fprintf(w, "distsweep_cases_committed %d\n", st.Committed)
	fmt.Fprintf(w, "distsweep_cases_failed %d\n", st.Failed)
	fmt.Fprintf(w, "distsweep_cases_leased %d\n", st.Leased)
	fmt.Fprintf(w, "distsweep_cases_free %d\n", st.Free)
	fmt.Fprintf(w, "distsweep_leases_granted_total %d\n", granted)
	fmt.Fprintf(w, "distsweep_leases_expired_total %d\n", st.Expired)
	fmt.Fprintf(w, "distsweep_reports_total %d\n", reports)
	fmt.Fprintf(w, "distsweep_reports_orphaned_total %d\n", st.Orphans)
	fmt.Fprintf(w, "distsweep_cases_duplicate_total %d\n", dups)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	st := c.State()
	writeJSON(w, http.StatusOK, struct {
		Schema    int    `json:"schema"`
		Status    string `json:"status"`
		Committed int    `json:"committed"`
		Total     int    `json:"total"`
		Done      bool   `json:"done"`
	}{schema.Version, status, st.Committed, st.Total, st.Done})
}
