package distsweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/schema"
	"repro/internal/workloads"
)

// testSpec is a small pair grid (2 pairs x 2 goals = 4 cases) on the
// CI-sized device.
func testSpec() Spec {
	cfg := config.Base()
	cfg.NumSMs = 4
	return Spec{
		Mode: ModePairs,
		Pairs: []workloads.Pair{
			{QoS: "sgemm", NonQoS: "lbm"},
			{QoS: "mri-q", NonQoS: "stencil"},
		},
		Goals:  schema.FracGoals([]float64{0.4, 0.7}),
		Scheme: "rollover",
		GPU:    cfg,
		Window: 30_000,
	}
}

// fakeClock is a mutable test clock for Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fakePayload fabricates a committed-looking case payload for index i
// without running the simulator: unit tests exercise the bookkeeping,
// the chaos suite exercises real execution.
func fakePayload(t *testing.T, sp Spec, i int) json.RawMessage {
	t.Helper()
	scheme, err := sp.SchemeValue()
	if err != nil {
		t.Fatal(err)
	}
	c := exp.PairCase{
		Pair:   sp.Pairs[i/len(sp.Goals)],
		Goal:   sp.Goals[i%len(sp.Goals)].Frac,
		Scheme: scheme,
		Res:    &core.Result{},
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sealedCase(t *testing.T, sp Spec, i int) CaseResult {
	t.Helper()
	cr := CaseResult{Index: i, Data: fakePayload(t, sp, i)}
	cr.Seal()
	return cr
}

func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Spec.Mode == "" {
		cfg.Spec = testSpec()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestGrantContiguousRanges(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseCases: 3})
	l1, resp, err := c.Grant("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Start != 0 || l1.End != 3 {
		t.Fatalf("lease 1 = [%d,%d), want [0,3)", l1.Start, l1.End)
	}
	if resp.Remaining != 4 || resp.Done {
		t.Fatalf("resp = %+v", resp)
	}
	l2, _, err := c.Grant("w2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Start != 3 || l2.End != 4 {
		t.Fatalf("lease 2 = [%d,%d), want [3,4)", l2.Start, l2.End)
	}
	if l1.ID == l2.ID {
		t.Fatal("lease ids must be unique")
	}
	// Everything is leased: no work, not done.
	l3, resp, err := c.Grant("w3", 0)
	if err != nil || l3 != nil || resp.Done {
		t.Fatalf("Grant with all leased = (%v, %+v, %v), want nil lease", l3, resp, err)
	}
}

func TestLeaseExpiryReissuesOnlyUncommitted(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Second
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseCases: 4, LeaseTTL: ttl})
	l1, _, err := c.Grant("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Commit case 1 under the live lease, then let it expire.
	if _, err := c.Report(ReportRequest{Lease: l1.ID, Worker: "w1", Cases: []CaseResult{sealedCase(t, c.Spec(), 1)}}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(ttl + time.Second)
	l2, _, err := c.Grant("w2", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous prefix of the free pool is [0,1); case 1 must be gone.
	if l2.Start != 0 || l2.End != 1 {
		t.Fatalf("re-issued lease = [%d,%d), want [0,1) — committed case re-leased?", l2.Start, l2.End)
	}
	l3, _, err := c.Grant("w2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l3.Start != 2 || l3.End != 4 {
		t.Fatalf("next lease = [%d,%d), want [2,4)", l3.Start, l3.End)
	}
	if st := c.State(); st.Expired != 1 {
		t.Fatalf("expired leases = %d, want 1", st.Expired)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Second
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseTTL: ttl, LeaseCases: 4})
	l, _, err := c.Grant("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clk.Advance(ttl / 2)
		if hr := c.Heartbeat(l.ID); hr.Expired {
			t.Fatalf("heartbeat %d reported expired", i)
		}
	}
	clk.Advance(ttl + time.Second)
	if hr := c.Heartbeat(l.ID); !hr.Expired {
		t.Fatal("missed heartbeat must expire the lease")
	}
}

// TestDoubleReportAfterReissueIsDeduped is the regression test for
// idempotent result merging: after a lease expires and its range is
// re-issued, BOTH the presumed-dead worker and the new worker report the
// same case. The journal must record the case exactly once and the
// second delivery must count as a duplicate — a duplicate append would
// poison bit-identical resume.
func TestDoubleReportAfterReissueIsDeduped(t *testing.T) {
	clk := newFakeClock()
	ttl := 5 * time.Second
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseTTL: ttl, LeaseCases: 2, Journal: path})
	sp := c.Spec()

	l1, _, err := c.Grant("slow", 0) // [0,2)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(ttl + time.Second) // slow worker misses its heartbeat
	l2, _, err := c.Grant("fast", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Start != l1.Start || l2.End != l1.End {
		t.Fatalf("re-issued lease [%d,%d) != original [%d,%d)", l2.Start, l2.End, l1.Start, l1.End)
	}

	// Fast worker completes the re-issued range first.
	r2, err := c.Report(ReportRequest{Lease: l2.ID, Worker: "fast",
		Cases: []CaseResult{sealedCase(t, sp, 0), sealedCase(t, sp, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Accepted != 2 || r2.Duplicates != 0 {
		t.Fatalf("fast report = %+v", r2)
	}
	merged := c.Results()

	// Slow worker wakes up and double-reports the same cases under its
	// expired lease.
	r1, err := c.Report(ReportRequest{Lease: l1.ID, Worker: "slow",
		Cases: []CaseResult{sealedCase(t, sp, 0), sealedCase(t, sp, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accepted != 0 || r1.Duplicates != 2 || !r1.Orphaned {
		t.Fatalf("late report = %+v, want 0 accepted / 2 duplicates / orphaned", r1)
	}

	// Merged results are unchanged by the duplicate delivery.
	for i, raw := range c.Results() {
		if !bytes.Equal(raw, merged[i]) {
			t.Fatalf("case %d changed after duplicate delivery", i)
		}
	}

	// The journal holds exactly one line per committed case: count raw
	// case lines, not just the (last-wins) restored map.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	perIndex := map[int]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		rec, err := journal.Decode([]byte(line))
		if err != nil {
			t.Fatalf("journal line damaged: %v", err)
		}
		if !rec.Header {
			perIndex[rec.Index]++
		}
	}
	for i, n := range perIndex {
		if n != 1 {
			t.Fatalf("journal has %d lines for case %d, want exactly 1", n, i)
		}
	}
	if len(perIndex) != 2 {
		t.Fatalf("journal holds %d cases, want 2", len(perIndex))
	}
}

func TestJournalResumeSkipsCommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	clk := newFakeClock()
	c := newTestCoordinator(t, Config{Now: clk.Now, Journal: path, LeaseCases: 4})
	sp := c.Spec()
	l, _, err := c.Grant("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(ReportRequest{Lease: l.ID, Worker: "w1",
		Cases: []CaseResult{sealedCase(t, sp, 0), sealedCase(t, sp, 2)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Without Resume, a journal with prior results is refused (the same
	// contract as cmd/sweep's -resume flag).
	if _, err := New(Config{Spec: sp, Journal: path}); err == nil {
		t.Fatal("reopening a non-empty journal without Resume must fail")
	}

	c2 := newTestCoordinator(t, Config{Spec: sp, Now: clk.Now, Journal: path, Resume: true, LeaseCases: 4})
	if st := c2.State(); st.Committed != 2 {
		t.Fatalf("restored committed = %d, want 2", st.Committed)
	}
	// Only the uncommitted cases are ever leased again.
	seen := map[int]bool{}
	for {
		l, resp, err := c2.Grant("w2", 0)
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			if resp.Done {
				t.Fatal("done before uncommitted cases leased")
			}
			break
		}
		for i := l.Start; i < l.End; i++ {
			seen[i] = true
		}
	}
	if seen[0] || seen[2] || !seen[1] || !seen[3] {
		t.Fatalf("re-leased cases = %v, want exactly {1,3}", seen)
	}
}

func TestPermanentFailureAfterMaxAttempts(t *testing.T) {
	clk := newFakeClock()
	ttl := 5 * time.Second
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseTTL: ttl, LeaseCases: 4, MaxCaseAttempts: 2})
	sp := c.Spec()
	for attempt := 0; attempt < 2; attempt++ {
		l, _, err := c.Grant("w1", 0)
		if err != nil {
			t.Fatal(err)
		}
		if l.Start != 0 {
			t.Fatalf("attempt %d leased [%d,%d), want start 0", attempt, l.Start, l.End)
		}
		var cases []CaseResult
		for i := l.Start + 1; i < l.End; i++ {
			if attempt == 0 {
				cases = append(cases, sealedCase(t, sp, i))
			}
		}
		if _, err := c.Report(ReportRequest{Lease: l.ID, Worker: "w1",
			Cases:  cases,
			Failed: []CaseFailure{{Index: 0, Error: "injected"}}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep must be done once every case is committed or permanently failed")
	}
	failed := c.FailedCases()
	if len(failed) != 1 || failed[0] != "injected" {
		t.Fatalf("failed = %v, want case 0 injected", failed)
	}
	if st := c.State(); !st.Done || st.Committed != 3 || st.Failed != 1 {
		t.Fatalf("state = %+v", st)
	}
}

func TestDrainStopsGrantsKeepsReports(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseCases: 2})
	sp := c.Spec()
	l, _, err := c.Grant("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if _, _, err := c.Grant("w2", 0); err != ErrDraining {
		t.Fatalf("Grant while draining = %v, want ErrDraining", err)
	}
	// In-flight results still land.
	r, err := c.Report(ReportRequest{Lease: l.ID, Worker: "w1", Cases: []CaseResult{sealedCase(t, sp, 0)}})
	if err != nil || r.Accepted != 1 {
		t.Fatalf("Report while draining = (%+v, %v)", r, err)
	}
}

func TestMaxLeasesBackpressure(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseCases: 1, MaxLeases: 2})
	for i := 0; i < 2; i++ {
		if _, _, err := c.Grant("w", 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Grant("w", 0); err != ErrBusy {
		t.Fatalf("Grant beyond MaxLeases = %v, want ErrBusy", err)
	}
}

func TestReportRejectsOutOfGridIndex(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(t, Config{Now: clk.Now, LeaseCases: 4})
	l, _, err := c.Grant("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := CaseResult{Index: 99, Data: fakePayload(t, c.Spec(), 0)}
	bad.Seal()
	if _, err := c.Report(ReportRequest{Lease: l.ID, Worker: "w1", Cases: []CaseResult{bad}}); err == nil {
		t.Fatal("out-of-grid index must be rejected")
	}
}

// TestStageKeyMatchesRunner pins the journal-interop contract: the
// coordinator's stage key equals the key a local Runner derives for the
// same grid, so journals written by either are interchangeable.
func TestStageKeyMatchesRunner(t *testing.T) {
	sp := testSpec()
	stage, err := sp.StageKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSession(sp.SessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := sp.SchemeValue()
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.StageKey(s.Config(), s.Seed(), "pairs", scheme, exp.PairGrid{Pairs: sp.Pairs, Goals: sp.FracAxis()})
	if err != nil {
		t.Fatal(err)
	}
	if stage != want {
		t.Fatalf("stage key %q != runner's %q", stage, want)
	}
	if !strings.HasPrefix(stage, "pairs/") {
		t.Fatalf("stage key %q misses kind prefix", stage)
	}
}
