package trace

import "sort"

// Counter is a monotonically increasing run-level statistic. Handles are
// obtained from a Registry once at setup and incremented on the hot path
// without any map lookup or allocation; a nil *Counter (from a nil
// registry) is a valid no-op sink.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v += delta
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a run-level statistic that can move in both directions
// (e.g. the current artificial IPC goal). Same handle discipline as
// Counter.
type Gauge struct {
	name string
	v    float64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value. Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Name returns the registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry holds named counters and gauges for one traced run. It is the
// "run-level counters" half of the observability layer: cheap handles on
// the hot path, a stable sorted snapshot at export time. Like the
// Tracer, a Registry is owned by one simulation and unsynchronized; the
// nil *Registry hands out nil handles, which are valid no-op sinks.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// Counter returns the named counter handle, creating it on first use.
// Nil-safe: a nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge handle, creating it on first use.
// Nil-safe: a nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Counters returns every registered counter sorted by name (stable
// export order). Nil-safe.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	out := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Gauges returns every registered gauge sorted by name. Nil-safe.
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	out := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
