// Package trace is the simulator's observability layer: a low-overhead,
// allocation-conscious event tracer plus a counter/gauge registry that
// every simulation layer (internal/gpu, internal/sm, internal/qos,
// internal/spart) emits into. It turns the epoch-driven control loops of
// the paper — quota refresh, history adjustment, elastic epochs, rollover
// carry, idle-warp-driven TB re-allocation — into inspectable artifacts:
// a run records *what the QoS Manager actually did* (every grant, carry,
// α factor, preemption and stall), exportable as JSONL or as a Chrome
// `trace_event` file that chrome://tracing and Perfetto load directly.
//
// Tracing is off by default and costs near zero when off: every emit
// helper is a method on *Tracer that is nil-safe and returns immediately
// when the tracer is nil or disabled, so the hot path pays one pointer
// test per (rare) emit site and no allocation ever. Events are fixed-size
// structs collected into a pre-allocated ring buffer; when the ring
// wraps, the oldest events are dropped and counted, never reallocated.
//
// A Tracer is intentionally not synchronized: one simulation (one
// gpu.GPU) owns one Tracer, matching the simulator's single-threaded
// cycle loop. The parallel sweep engine gives every case its own Tracer,
// so concurrent sweeps never share one (enforced by a race-detector test
// in internal/exp).
package trace

// Kind identifies the event type. The zero value is reserved so a
// forgotten Kind is visible in exports.
type Kind uint8

const (
	// KindInvalid marks an unset event kind.
	KindInvalid Kind = iota

	// --- per-epoch events (device-wide control decisions) ---

	// KindEpochRoll closes one kernel's epoch: A = thread instructions
	// executed during the epoch, B = resident TBs at the boundary.
	KindEpochRoll
	// KindQuotaGrant is the per-epoch quota allocation of a slot:
	// A = quota (thread instrs), B = α in force.
	KindQuotaGrant
	// KindQuotaCarry reports quota carried across an epoch boundary:
	// A = carry (positive: rollover credit, negative: elastic debt),
	// B = resulting allowance (quota + carry).
	KindQuotaCarry
	// KindQuotaConsumed reports how much of the previous allowance the
	// slot actually consumed: A = consumed thread instrs, B = leftover.
	KindQuotaConsumed
	// KindAlpha records a history-adjustment update: A = new α,
	// B = previous α.
	KindAlpha
	// KindElasticEpoch marks an elastic early epoch start (Section
	// 3.4.3): A = epoch length actually used (cycles).
	KindElasticEpoch
	// KindReplenish marks a mid-epoch non-QoS top-up (Section 3.4.1):
	// A = share granted on the SM.
	KindReplenish
	// KindArtificialGoal records the searched non-QoS IPC goal
	// (Section 3.5): A = new goal, B = previous goal.
	KindArtificialGoal
	// KindGoalCheck records per-epoch goal attainment of a QoS slot:
	// A = measured active-window IPC, B = goal IPC.
	KindGoalCheck

	// --- per-SM events (mechanism-level actions) ---

	// KindTBDispatch places a fresh TB: A = grid index.
	KindTBDispatch
	// KindTBRestore resumes a preempted TB context: A = grid index.
	KindTBRestore
	// KindTBPreempt saves one TB for later resumption: A = grid index,
	// B = context bytes moved.
	KindTBPreempt
	// KindGateStall marks a slot transitioning to quota-denied on an SM
	// (the Enhanced Warp Scheduler withholding issue): A = local
	// counter value at the transition.
	KindGateStall
	// KindSMDrain drains a whole SM for spatial repartitioning:
	// A = TBs drained, B = context bytes moved.
	KindSMDrain
	// KindTBAdjust is a static-management TB re-allocation decision
	// (Section 3.6): A = new cap, B = previous cap.
	KindTBAdjust
	// KindSMMove reassigns an SM between kernels (spatial baseline):
	// A = receiving slot.
	KindSMMove

	// --- run-level events ---

	// KindKernelRelaunch marks a drained kernel re-executing
	// (Section 4.1): A = launch count so far.
	KindKernelRelaunch

	kindCount // number of kinds; keep last
)

// String returns the canonical event name used by both exporters.
func (k Kind) String() string {
	switch k {
	case KindEpochRoll:
		return "epoch_roll"
	case KindQuotaGrant:
		return "quota_grant"
	case KindQuotaCarry:
		return "quota_carry"
	case KindQuotaConsumed:
		return "quota_consumed"
	case KindAlpha:
		return "alpha"
	case KindElasticEpoch:
		return "elastic_epoch"
	case KindReplenish:
		return "replenish"
	case KindArtificialGoal:
		return "artificial_goal"
	case KindGoalCheck:
		return "goal_check"
	case KindTBDispatch:
		return "tb_dispatch"
	case KindTBRestore:
		return "tb_restore"
	case KindTBPreempt:
		return "tb_preempt"
	case KindGateStall:
		return "gate_stall"
	case KindSMDrain:
		return "sm_drain"
	case KindTBAdjust:
		return "tb_adjust"
	case KindSMMove:
		return "sm_move"
	case KindKernelRelaunch:
		return "kernel_relaunch"
	}
	return "invalid"
}

// Event is one fixed-size trace record. SM and Slot are -1 when the
// event is device-wide or not slot-specific; Epoch is the epoch index in
// force when the event fired. A and B are kind-specific payloads
// (documented per Kind).
type Event struct {
	Cycle int64
	Kind  Kind
	SM    int16
	Slot  int16
	Epoch int32
	A, B  float64
}

// Tracer collects events into a fixed-capacity ring buffer and owns a
// counter registry. The zero Tracer and the nil *Tracer are both valid,
// permanently disabled collectors: every method is nil-safe, so emit
// sites never test for tracing themselves.
type Tracer struct {
	ring    []Event
	next    int   // ring write cursor
	filled  bool  // ring has wrapped at least once
	dropped int64 // events overwritten after wrap
	epoch   int32 // current epoch index, stamped into events
	enabled bool

	reg Registry
}

// DefaultRingSize is the default event capacity (fixed at construction;
// the ring never grows). At ~40 bytes per event this is ~2.6 MB per
// traced run.
const DefaultRingSize = 1 << 16

// New returns an enabled Tracer with the given ring capacity (<=0 means
// DefaultRingSize).
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]Event, ringSize), enabled: true}
}

// Enabled reports whether emits are collected. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetEnabled toggles collection at run time (a disabled tracer keeps its
// buffered events). Nil-safe no-op on a nil tracer.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled = on && t.ring != nil
	}
}

// SetEpoch stamps subsequent events with the given epoch index. The GPU
// loop calls this at every epoch roll. Nil-safe.
func (t *Tracer) SetEpoch(epoch int) {
	if t != nil {
		t.epoch = int32(epoch)
	}
}

// Emit appends a raw event. Prefer the typed helpers below; Emit exists
// for tests and external collectors. Nil-safe.
func (t *Tracer) Emit(ev Event) {
	if t == nil || !t.enabled {
		return
	}
	ev.Epoch = t.epoch
	if t.filled {
		t.dropped++ // overwriting the oldest event
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// emit is the internal fast path shared by the typed helpers.
func (t *Tracer) emit(cycle int64, kind Kind, sm, slot int, a, b float64) {
	if t == nil || !t.enabled {
		return
	}
	if t.filled {
		t.dropped++ // overwriting the oldest event
	}
	t.ring[t.next] = Event{Cycle: cycle, Kind: kind, SM: int16(sm), Slot: int16(slot), Epoch: t.epoch, A: a, B: b}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Typed emit helpers — one per Kind, so call sites stay readable and the
// no-op path is a single nil/enabled test with no argument boxing.

// EpochRoll records one kernel slot's closed epoch.
func (t *Tracer) EpochRoll(cycle int64, slot int, instrs int64, tbsHeld int) {
	t.emit(cycle, KindEpochRoll, -1, slot, float64(instrs), float64(tbsHeld))
}

// QuotaGrant records a slot's per-epoch quota and the α in force.
func (t *Tracer) QuotaGrant(cycle int64, slot int, quota, alpha float64) {
	t.emit(cycle, KindQuotaGrant, -1, slot, quota, alpha)
}

// QuotaCarry records carry across an epoch boundary and the resulting
// allowance.
func (t *Tracer) QuotaCarry(cycle int64, slot int, carry, allowance float64) {
	t.emit(cycle, KindQuotaCarry, -1, slot, carry, allowance)
}

// QuotaConsumed records how much of the previous allowance was consumed.
func (t *Tracer) QuotaConsumed(cycle int64, slot int, consumed, leftover float64) {
	t.emit(cycle, KindQuotaConsumed, -1, slot, consumed, leftover)
}

// Alpha records a history-adjustment update.
func (t *Tracer) Alpha(cycle int64, slot int, alpha, prev float64) {
	t.emit(cycle, KindAlpha, -1, slot, alpha, prev)
}

// ElasticEpoch records an elastic early epoch start.
func (t *Tracer) ElasticEpoch(cycle int64, epochLen int64) {
	t.emit(cycle, KindElasticEpoch, -1, -1, float64(epochLen), 0)
}

// Replenish records a mid-epoch non-QoS top-up on one SM.
func (t *Tracer) Replenish(cycle int64, smID, slot int, share float64) {
	t.emit(cycle, KindReplenish, smID, slot, share, 0)
}

// ArtificialGoal records the searched non-QoS IPC goal.
func (t *Tracer) ArtificialGoal(cycle int64, slot int, goal, prev float64) {
	t.emit(cycle, KindArtificialGoal, -1, slot, goal, prev)
}

// GoalCheck records per-epoch goal attainment of a QoS slot.
func (t *Tracer) GoalCheck(cycle int64, slot int, ipc, goal float64) {
	t.emit(cycle, KindGoalCheck, -1, slot, ipc, goal)
}

// TBDispatch records a fresh TB placement.
func (t *Tracer) TBDispatch(cycle int64, smID, slot, gridIdx int) {
	t.emit(cycle, KindTBDispatch, smID, slot, float64(gridIdx), 0)
}

// TBRestore records a preempted context resuming.
func (t *Tracer) TBRestore(cycle int64, smID, slot, gridIdx int) {
	t.emit(cycle, KindTBRestore, smID, slot, float64(gridIdx), 0)
}

// TBPreempt records one TB being saved for later resumption.
func (t *Tracer) TBPreempt(cycle int64, smID, slot, gridIdx, ctxBytes int) {
	t.emit(cycle, KindTBPreempt, smID, slot, float64(gridIdx), float64(ctxBytes))
}

// GateStall records a slot transitioning to quota-denied on an SM.
func (t *Tracer) GateStall(cycle int64, smID, slot int, counter float64) {
	t.emit(cycle, KindGateStall, smID, slot, counter, 0)
}

// SMDrain records a whole-SM drain for spatial repartitioning.
func (t *Tracer) SMDrain(cycle int64, smID, tbs, ctxBytes int) {
	t.emit(cycle, KindSMDrain, smID, -1, float64(tbs), float64(ctxBytes))
}

// TBAdjust records a static-management cap change on one SM.
func (t *Tracer) TBAdjust(cycle int64, smID, slot, newCap, oldCap int) {
	t.emit(cycle, KindTBAdjust, smID, slot, float64(newCap), float64(oldCap))
}

// SMMove records an SM changing owner under the spatial baseline.
func (t *Tracer) SMMove(cycle int64, smID, recvSlot int) {
	t.emit(cycle, KindSMMove, smID, recvSlot, 0, 0)
}

// KernelRelaunch records a drained kernel re-executing.
func (t *Tracer) KernelRelaunch(cycle int64, slot int, launches int64) {
	t.emit(cycle, KindKernelRelaunch, -1, slot, float64(launches), 0)
}

// Events returns the buffered events in emission order (oldest first).
// Nil-safe: a nil tracer returns nil.
func (t *Tracer) Events() []Event {
	if t == nil || t.ring == nil {
		return nil
	}
	if !t.filled {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns the number of buffered events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// Dropped returns how many events were overwritten after the ring
// wrapped. Nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Reset clears the buffered events (counters keep their values).
// Nil-safe.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.next = 0
	t.filled = false
	t.dropped = 0
	t.epoch = 0
}

// Registry returns the tracer's counter/gauge registry, or nil for a nil
// tracer (the registry's methods are themselves nil-safe).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return &t.reg
}
