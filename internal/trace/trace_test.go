package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/schema"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every emit helper must be a no-op, not a panic.
	tr.EpochRoll(1, 0, 10, 2)
	tr.QuotaGrant(1, 0, 100, 1)
	tr.QuotaCarry(1, 0, 5, 105)
	tr.QuotaConsumed(1, 0, 95, 5)
	tr.Alpha(1, 0, 1.5, 1)
	tr.ElasticEpoch(1, 500)
	tr.Replenish(1, 0, 1, 50)
	tr.ArtificialGoal(1, 1, 2, 1)
	tr.GoalCheck(1, 0, 10, 12)
	tr.TBDispatch(1, 0, 0, 3)
	tr.TBRestore(1, 0, 0, 3)
	tr.TBPreempt(1, 0, 0, 3, 4096)
	tr.GateStall(1, 0, 0, -1)
	tr.SMDrain(1, 0, 4, 1<<14)
	tr.TBAdjust(1, 0, 0, 3, 2)
	tr.SMMove(1, 0, 1)
	tr.KernelRelaunch(1, 0, 2)
	tr.SetEpoch(3)
	tr.SetEnabled(true)
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer holds state")
	}
	// Registry handles from a nil tracer are no-op sinks.
	c := tr.Registry().Counter("x")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := tr.Registry().Gauge("y")
	g.Set(4)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
}

func TestZeroTracerDisabled(t *testing.T) {
	var tr Tracer
	if tr.Enabled() {
		t.Fatal("zero tracer enabled")
	}
	tr.SetEnabled(true) // must stay off: no ring was allocated
	tr.EpochRoll(1, 0, 10, 2)
	if tr.Len() != 0 {
		t.Fatal("zero tracer collected an event")
	}
}

func TestEmissionOrderAndEpochStamp(t *testing.T) {
	tr := New(8)
	tr.QuotaGrant(100, 0, 50, 1)
	tr.SetEpoch(1)
	tr.QuotaGrant(200, 0, 60, 1.2)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Epoch != 0 || evs[1].Epoch != 1 {
		t.Fatalf("epoch stamps = %d,%d, want 0,1", evs[0].Epoch, evs[1].Epoch)
	}
	if evs[0].Cycle != 100 || evs[1].Cycle != 200 {
		t.Fatal("events out of order")
	}
	if evs[0].Kind != KindQuotaGrant || evs[0].Slot != 0 || evs[0].SM != -1 {
		t.Fatalf("bad event payload: %+v", evs[0])
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.TBDispatch(int64(i), 0, 0, i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want ring size 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (newest-kept order)", i, ev.Cycle, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
}

func TestSetEnabledPausesCollection(t *testing.T) {
	tr := New(8)
	tr.TBDispatch(1, 0, 0, 0)
	tr.SetEnabled(false)
	tr.TBDispatch(2, 0, 0, 1)
	tr.SetEnabled(true)
	tr.TBDispatch(3, 0, 0, 2)
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2 (paused emit collected)", tr.Len())
	}
}

func TestRegistryHandles(t *testing.T) {
	tr := New(8)
	c1 := tr.Registry().Counter("epochs")
	c2 := tr.Registry().Counter("epochs")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Inc()
	c2.Add(2)
	if c1.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c1.Value())
	}
	g := tr.Registry().Gauge("alpha")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatal("gauge lost value")
	}
	// Snapshot order is sorted by name.
	tr.Registry().Counter("a_first")
	cs := tr.Registry().Counters()
	if len(cs) != 2 || cs[0].Name() != "a_first" || cs[1].Name() != "epochs" {
		t.Fatalf("counters not sorted: %v, %v", cs[0].Name(), cs[1].Name())
	}
}

func TestKindStringsDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(1); k < kindCount; k++ {
		s := k.String()
		if s == "invalid" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"jsonl": FormatJSONL, "": FormatJSONL,
		"chrome": FormatChrome, "Chrome": FormatChrome, "trace_event": FormatChrome,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("accepted unknown format")
	}
}

func TestJSONLExportRoundTrips(t *testing.T) {
	tr := New(8)
	tr.QuotaGrant(500, 0, 1000, 1)
	tr.SetEpoch(1)
	tr.QuotaCarry(1000, 0, 37.5, 1037.5)
	tr.Registry().Counter("epochs").Add(2)
	tr.Registry().Gauge("alpha0").Set(1.25)

	var buf bytes.Buffer
	if err := Export(&buf, tr, FormatJSONL); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 2 events + counter + gauge + footer
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	if err := CheckJSONLHeader([]byte(lines[0])); err != nil {
		t.Fatalf("exported header rejected by its own decoder: %v", err)
	}
	var ev jsonlEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "quota_grant" || ev.Cycle != 500 || ev.A != 1000 {
		t.Fatalf("bad first event line: %+v", ev)
	}
	var foot jsonlFooter
	if err := json.Unmarshal([]byte(lines[5]), &foot); err != nil {
		t.Fatal(err)
	}
	if foot.Events != 2 || foot.Dropped != 0 {
		t.Fatalf("bad footer: %+v", foot)
	}
	// Deterministic: exporting twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := Export(&buf2, tr, FormatJSONL); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSONL export not deterministic")
	}
}

// TestJSONLHeaderVersionCheck pins the decode-time schema gate: the
// exporter's own header passes, a foreign version fails with the shared
// schema.ErrVersion sentinel, and junk fails with a readable error.
func TestJSONLHeaderVersionCheck(t *testing.T) {
	tr := New(4)
	tr.QuotaGrant(1, 0, 10, 1)
	var buf bytes.Buffer
	if err := Export(&buf, tr, FormatJSONL); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if err := CheckJSONLHeader([]byte(first)); err != nil {
		t.Fatalf("current export rejected: %v", err)
	}
	err := CheckJSONLHeader([]byte(fmt.Sprintf(`{"schema":%d}`, schema.Version+1)))
	if !errors.Is(err, schema.ErrVersion) {
		t.Fatalf("foreign version not rejected with schema.ErrVersion: %v", err)
	}
	for _, junk := range []string{"", "{}", "not json", `{"cycle":0}`} {
		if CheckJSONLHeader([]byte(junk)) == nil {
			t.Fatalf("accepted %q as a header", junk)
		}
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	tr := New(16)
	tr.QuotaGrant(500, 0, 1000, 1)
	tr.QuotaConsumed(1000, 0, 950, 50)
	tr.TBDispatch(3, 2, 1, 0)
	tr.GateStall(700, 1, 0, -3)
	tr.Registry().Counter("epochs").Add(2)

	var buf bytes.Buffer
	if err := Export(&buf, tr, FormatChrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	var instants, counters, metas int
	for _, ce := range doc.TraceEvents {
		switch ce.Ph {
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", ce.Ph)
		}
	}
	if instants != 4 {
		t.Fatalf("instants = %d, want 4", instants)
	}
	// quota grant + consumed each add a counter sample; registry adds one.
	if counters != 3 {
		t.Fatalf("counters = %d, want 3", counters)
	}
	if metas == 0 {
		t.Fatal("no track metadata emitted")
	}
	// Per-SM events land in the SM process with tid = smID.
	found := false
	for _, ce := range doc.TraceEvents {
		if ce.Name == "tb_dispatch" && ce.Pid == chromePidSMs && ce.Tid == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("tb_dispatch not routed to the SM track")
	}
}

func TestExportNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, nil, FormatJSONL); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"events":0`) {
		t.Fatalf("nil JSONL export missing footer: %s", buf.String())
	}
	buf.Reset()
	if err := Export(&buf, nil, FormatChrome); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil chrome export invalid")
	}
}

// BenchmarkEmitDisabled measures the no-op path cost of one emit call —
// the only cost the hot path pays when tracing is off (plus the inlined
// nil test at call sites).
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.TBDispatch(int64(i), 0, 0, i)
	}
}

// BenchmarkEmitEnabled measures the enabled ring-write path.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.TBDispatch(int64(i), 0, 0, i)
	}
}
