package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/schema"
)

// Format selects the export encoding.
type Format int

const (
	// FormatJSONL writes one JSON object per line: every event in
	// emission order, then one line per registered counter and gauge,
	// then a footer with ring statistics. Grep/jq-friendly.
	FormatJSONL Format = iota
	// FormatChrome writes a Chrome trace_event JSON document loadable
	// by chrome://tracing and Perfetto: device-wide control events and
	// per-SM mechanism events as instant events on labeled tracks, and
	// the quota grant/consume/carry trajectory of every kernel slot as
	// counter tracks.
	FormatChrome
)

// String returns the canonical flag value of the format.
func (f Format) String() string {
	if f == FormatChrome {
		return "chrome"
	}
	return "jsonl"
}

// Ext returns the conventional file extension for the format.
func (f Format) Ext() string {
	if f == FormatChrome {
		return ".trace.json"
	}
	return ".trace.jsonl"
}

// ParseFormat resolves a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "jsonl":
		return FormatJSONL, nil
	case "chrome", "trace_event", "chrometrace":
		return FormatChrome, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (known: jsonl, chrome)", s)
}

// Export writes the tracer's buffered events and counters to w in the
// given format. A nil tracer exports an empty but well-formed document.
func Export(w io.Writer, t *Tracer, f Format) error {
	if f == FormatChrome {
		return exportChrome(w, t)
	}
	return exportJSONL(w, t)
}

// WriteFile exports to path, creating parent-less files atomically
// enough for inspection tooling (plain create+write; traces are
// artifacts, not checkpoints).
func WriteFile(path string, t *Tracer, f Format) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	err = Export(file, t, f)
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	return err
}

// jsonlHeader is the first line of every JSONL export: the schema
// version shared with the checkpoint journal and the qosd v1 API
// (internal/schema), so offline tooling can refuse traces written by a
// different release before misreading a single event.
type jsonlHeader struct {
	Schema int `json:"schema"`
}

// CheckJSONLHeader validates the first line of a JSONL trace export:
// it must be a header object whose schema version matches this build's.
// A mismatch returns an error wrapping schema.ErrVersion.
func CheckJSONLHeader(firstLine []byte) error {
	var h struct {
		Schema *int `json:"schema"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(firstLine), &h); err != nil || h.Schema == nil {
		return fmt.Errorf("trace: missing JSONL schema header")
	}
	return schema.Check(*h.Schema)
}

// jsonlEvent is the JSONL line schema. Field order is the struct order
// (encoding/json preserves it), so output is byte-deterministic for a
// deterministic simulation — the golden-trace test depends on this.
type jsonlEvent struct {
	Cycle int64   `json:"cycle"`
	Epoch int32   `json:"epoch"`
	Kind  string  `json:"kind"`
	SM    int16   `json:"sm"`
	Slot  int16   `json:"slot"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
}

type jsonlCounter struct {
	Counter string `json:"counter"`
	Value   int64  `json:"value"`
}

type jsonlGauge struct {
	Gauge string  `json:"gauge"`
	Value float64 `json:"value"`
}

type jsonlFooter struct {
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped"`
}

func exportJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Schema: schema.Version}); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		if err := enc.Encode(jsonlEvent{
			Cycle: ev.Cycle, Epoch: ev.Epoch, Kind: ev.Kind.String(),
			SM: ev.SM, Slot: ev.Slot, A: ev.A, B: ev.B,
		}); err != nil {
			return err
		}
	}
	for _, c := range t.Registry().Counters() {
		if err := enc.Encode(jsonlCounter{Counter: c.Name(), Value: c.Value()}); err != nil {
			return err
		}
	}
	for _, g := range t.Registry().Gauges() {
		if err := enc.Encode(jsonlGauge{Gauge: g.Name(), Value: g.Value()}); err != nil {
			return err
		}
	}
	if err := enc.Encode(jsonlFooter{Events: t.Len(), Dropped: t.Dropped()}); err != nil {
		return err
	}
	return bw.Flush()
}

// Chrome trace_event schema subset: instant events ("ph":"i"), counter
// events ("ph":"C") and metadata ("ph":"M"). Timestamps are simulated
// cycles presented as microseconds. Process 0 carries device-wide
// control events (one thread per kernel slot); process 1 carries per-SM
// mechanism events (one thread per SM).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromePidDevice = 0
	chromePidSMs    = 1
)

// chromeArgs returns the human-readable payload of an event. Keys are
// chosen so the tracing UI shows meaningful labels per kind.
func chromeArgs(ev Event) map[string]any {
	switch ev.Kind {
	case KindEpochRoll:
		return map[string]any{"epoch": ev.Epoch, "instrs": ev.A, "tbs_held": ev.B}
	case KindQuotaGrant:
		return map[string]any{"quota": ev.A, "alpha": ev.B}
	case KindQuotaCarry:
		return map[string]any{"carry": ev.A, "allowance": ev.B}
	case KindQuotaConsumed:
		return map[string]any{"consumed": ev.A, "leftover": ev.B}
	case KindAlpha:
		return map[string]any{"alpha": ev.A, "prev": ev.B}
	case KindElasticEpoch:
		return map[string]any{"epoch_len": ev.A}
	case KindReplenish:
		return map[string]any{"share": ev.A}
	case KindArtificialGoal:
		return map[string]any{"goal": ev.A, "prev": ev.B}
	case KindGoalCheck:
		return map[string]any{"ipc": ev.A, "goal": ev.B}
	case KindTBDispatch, KindTBRestore:
		return map[string]any{"grid_idx": ev.A}
	case KindTBPreempt:
		return map[string]any{"grid_idx": ev.A, "ctx_bytes": ev.B}
	case KindGateStall:
		return map[string]any{"counter": ev.A}
	case KindSMDrain:
		return map[string]any{"tbs": ev.A, "ctx_bytes": ev.B}
	case KindTBAdjust:
		return map[string]any{"cap": ev.A, "prev_cap": ev.B}
	case KindSMMove:
		return map[string]any{"recv_slot": ev.Slot}
	case KindKernelRelaunch:
		return map[string]any{"launches": ev.A}
	}
	return map[string]any{"a": ev.A, "b": ev.B}
}

func exportChrome(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	write := func(ce chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline; that keeps the array one event per
		// line, which diffs and greps well.
		return enc.Encode(ce)
	}

	// Track labels. Slots and SMs present in the event stream get named
	// threads so the tracing UI reads "slot 0", "SM 3" instead of bare
	// tids.
	slots := map[int16]bool{}
	sms := map[int16]bool{}
	for _, ev := range t.Events() {
		if ev.Slot >= 0 {
			slots[ev.Slot] = true
		}
		if ev.SM >= 0 {
			sms[ev.SM] = true
		}
	}
	meta := func(pid, tid int, name, value string) error {
		return write(chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": value}})
	}
	if err := meta(chromePidDevice, 0, "process_name", "device (QoS manager)"); err != nil {
		return err
	}
	if err := meta(chromePidSMs, 0, "process_name", "SMs"); err != nil {
		return err
	}
	for slot := int16(0); int(slot) < 64; slot++ {
		if slots[slot] {
			if err := meta(chromePidDevice, int(slot), "thread_name", fmt.Sprintf("slot %d", slot)); err != nil {
				return err
			}
		}
	}
	for sm := int16(0); int(sm) < 1024; sm++ {
		if sms[sm] {
			if err := meta(chromePidSMs, int(sm), "thread_name", fmt.Sprintf("SM %d", sm)); err != nil {
				return err
			}
		}
	}

	for _, ev := range t.Events() {
		pid, tid := chromePidDevice, 0
		if ev.SM >= 0 {
			pid, tid = chromePidSMs, int(ev.SM)
		} else if ev.Slot >= 0 {
			tid = int(ev.Slot)
		}
		if err := write(chromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle, Pid: pid, Tid: tid,
			S: "t", Args: chromeArgs(ev),
		}); err != nil {
			return err
		}
		// The per-slot quota trajectory additionally renders as counter
		// tracks, the Chrome-native way to see grant/carry/consumed per
		// epoch at a glance.
		switch ev.Kind {
		case KindQuotaGrant, KindQuotaCarry, KindQuotaConsumed:
			series := map[Kind]string{
				KindQuotaGrant:    "grant",
				KindQuotaCarry:    "carry",
				KindQuotaConsumed: "consumed",
			}[ev.Kind]
			if err := write(chromeEvent{
				Name: fmt.Sprintf("quota slot %d", ev.Slot), Ph: "C",
				Ts: ev.Cycle, Pid: chromePidDevice, Tid: int(ev.Slot),
				Args: map[string]any{series: ev.A},
			}); err != nil {
				return err
			}
		}
	}

	// Run-level counters and gauges appear as a final counter sample at
	// the last event's timestamp.
	var lastTs int64
	if evs := t.Events(); len(evs) > 0 {
		lastTs = evs[len(evs)-1].Cycle
	}
	for _, c := range t.Registry().Counters() {
		if err := write(chromeEvent{Name: c.Name(), Ph: "C", Ts: lastTs,
			Pid: chromePidDevice, Tid: 0, Args: map[string]any{"value": c.Value()}}); err != nil {
			return err
		}
	}
	for _, g := range t.Registry().Gauges() {
		if err := write(chromeEvent{Name: g.Name(), Ph: "C", Ts: lastTs,
			Pid: chromePidDevice, Tid: 0, Args: map[string]any{"value": g.Value()}}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
