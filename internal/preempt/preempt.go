// Package preempt models the cost of partial context switches and SM
// drains. The paper (Sections 3.6, 4.8) charges preemption by the context
// bytes moved to device memory; most of that traffic overlaps with the
// execution of non-preempted TBs, so the model blocks only the moved
// context (and, for spatial repartitioning, the drained SM), not the
// whole GPU.
package preempt

import "repro/internal/config"

// Stats accumulates preemption-engine activity.
type Stats struct {
	Swaps      int64 // TB-granularity context moves
	SMDrains   int64 // whole-SM drains (spatial repartitioning)
	BytesMoved int64
	BusyCycles int64 // cycles the engine spent moving context
}

// Engine tracks per-SM context-movement occupancy.
type Engine struct {
	cfg       config.GPU
	busyUntil []int64

	// Enabled=false makes context movement free; the Section 4.8
	// preemption-overhead ablation flips this.
	Enabled bool

	Stats Stats
}

// New builds an engine for the configuration.
func New(cfg config.GPU) *Engine {
	return &Engine{
		cfg:       cfg,
		busyUntil: make([]int64, cfg.NumSMs),
		Enabled:   true,
	}
}

// MoveCost returns the cycles needed to move bytes of context.
func (e *Engine) MoveCost(bytes int) int64 {
	if !e.Enabled || bytes <= 0 {
		return 0
	}
	bw := int64(e.cfg.CtxSaveBWBytes)
	return (int64(bytes) + bw - 1) / bw
}

// BeginSwap schedules a TB context move on smID starting at now and
// returns the cycle the moved context is usable again.
func (e *Engine) BeginSwap(now int64, smID, bytes int) int64 {
	e.Stats.Swaps++
	e.Stats.BytesMoved += int64(bytes)
	start := now
	if e.busyUntil[smID] > start {
		start = e.busyUntil[smID]
	}
	done := start + e.MoveCost(bytes)
	e.busyUntil[smID] = done
	e.Stats.BusyCycles += done - start
	return done
}

// BeginDrain schedules a whole-SM drain (spatial repartition): the SM is
// unusable until the returned cycle.
func (e *Engine) BeginDrain(now int64, smID, bytes int) int64 {
	e.Stats.SMDrains++
	e.Stats.BytesMoved += int64(bytes)
	start := now
	if e.busyUntil[smID] > start {
		start = e.busyUntil[smID]
	}
	done := start + e.MoveCost(bytes)
	if e.Enabled {
		done += e.cfg.SMDrainPenalty
	}
	e.busyUntil[smID] = done
	e.Stats.BusyCycles += done - start
	return done
}

// Pending reports whether any context movement is still in flight at now.
// The paper's static adjuster defers swaps while preemption requests are
// pending (Section 3.6).
func (e *Engine) Pending(now int64) bool {
	for _, t := range e.busyUntil {
		if t > now {
			return true
		}
	}
	return false
}

// BusyUntil returns when smID's engine lane frees (for tests).
func (e *Engine) BusyUntil(smID int) int64 { return e.busyUntil[smID] }
