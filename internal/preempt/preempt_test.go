package preempt

import (
	"testing"

	"repro/internal/config"
)

func TestMoveCost(t *testing.T) {
	e := New(config.Base())
	if got := e.MoveCost(0); got != 0 {
		t.Fatalf("MoveCost(0) = %d", got)
	}
	bw := config.Base().CtxSaveBWBytes
	if got := e.MoveCost(bw); got != 1 {
		t.Fatalf("MoveCost(one bandwidth unit) = %d, want 1", got)
	}
	if got := e.MoveCost(bw*3 + 1); got != 4 {
		t.Fatalf("MoveCost rounds up: got %d, want 4", got)
	}
}

func TestDisabledEngineIsFree(t *testing.T) {
	e := New(config.Base())
	e.Enabled = false
	if e.MoveCost(1<<20) != 0 {
		t.Fatal("disabled engine charges for moves")
	}
	done := e.BeginDrain(100, 0, 1<<20)
	if done != 100 {
		t.Fatalf("disabled drain finished at %d, want 100", done)
	}
}

func TestSwapSerializesPerSM(t *testing.T) {
	e := New(config.Base())
	d1 := e.BeginSwap(0, 0, 1024)
	d2 := e.BeginSwap(0, 0, 1024)
	if d2 <= d1 {
		t.Fatal("second swap on the same SM did not queue behind the first")
	}
	// A different SM's lane is independent.
	d3 := e.BeginSwap(0, 1, 1024)
	if d3 != d1 {
		t.Fatalf("independent SM swap finished at %d, want %d", d3, d1)
	}
}

func TestDrainIncludesPenalty(t *testing.T) {
	cfg := config.Base()
	e := New(cfg)
	done := e.BeginDrain(0, 0, 0)
	if done != cfg.SMDrainPenalty {
		t.Fatalf("drain with no context finished at %d, want %d", done, cfg.SMDrainPenalty)
	}
}

func TestPending(t *testing.T) {
	e := New(config.Base())
	if e.Pending(0) {
		t.Fatal("fresh engine reports pending work")
	}
	done := e.BeginSwap(0, 3, 4096)
	if !e.Pending(done - 1) {
		t.Fatal("in-flight swap not pending")
	}
	if e.Pending(done) {
		t.Fatal("finished swap still pending")
	}
	if e.BusyUntil(3) != done {
		t.Fatal("BusyUntil mismatch")
	}
}

func TestStats(t *testing.T) {
	e := New(config.Base())
	e.BeginSwap(0, 0, 1000)
	e.BeginDrain(0, 1, 2000)
	if e.Stats.Swaps != 1 || e.Stats.SMDrains != 1 {
		t.Fatalf("stats = %+v", e.Stats)
	}
	if e.Stats.BytesMoved != 3000 {
		t.Fatalf("bytes moved = %d", e.Stats.BytesMoved)
	}
	if e.Stats.BusyCycles <= 0 {
		t.Fatal("busy cycles not accumulated")
	}
}
