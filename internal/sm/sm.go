// Package sm models one streaming multiprocessor at cycle granularity:
// warp contexts, GTO (greedy-then-oldest) warp schedulers, barriers,
// MSHR-limited global memory access through a private L1, static resource
// accounting for thread blocks, and the quota gate that makes the warp
// scheduler QoS-aware (the paper's Enhanced Warp Scheduler, Section 3.3).
//
// The SM is deliberately single-threaded and allocation-free on the issue
// path; a whole-GPU cycle advances every SM in a deterministic order.
package sm

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

// QuotaGate is the interface between the Enhanced Warp Scheduler and the
// QoS manager. A nil gate means unmanaged sharing (every issue allowed).
// Kernels are identified by their runtime slot (index into the co-run).
type QuotaGate interface {
	// CanIssue reports whether the scheduler may issue an instruction
	// of the kernel in the given slot on the given SM this cycle.
	CanIssue(smID, slot int) bool
	// OnIssue informs the gate that threadInstrs thread-instructions of
	// the kernel were just issued on the SM.
	OnIssue(smID, slot int, threadInstrs int)
}

// Warp is one 32-thread warp context.
type Warp struct {
	kernel *kern.Kernel
	slot   int
	tb     *TB
	gid    uint64 // stable global warp id (grid TB index * warpsPerTB + lane)

	body        []isa.Instr
	pc          int
	iter        int
	readyAt     int64
	atBarrier   bool
	done        bool
	activeLanes int
	divState    uint64 // per-warp divergence stream

	// Scheduler cache bookkeeping.
	schedIdx int   // owning scheduler index
	age      int64 // per-scheduler dispatch order (GTO seniority)
	inReady  bool  // currently filed in the scheduler's ready cache
}

// WarpState is the architectural state saved by a partial context switch.
type WarpState struct {
	PC          int
	Iter        int
	ActiveLanes int
	AtBarrier   bool
	Done        bool
	DivState    uint64
}

// TB is one resident thread block.
type TB struct {
	Kernel  *kern.Kernel
	Slot    int
	GridIdx int

	Warps       []*Warp
	LiveWarps   int
	BarrierWait int

	dispatchedAt int64
}

// TBContext is the saved state of a preempted thread block, sufficient to
// resume it on any SM later (partial context switch, Section 3.6).
type TBContext struct {
	Kernel  *kern.Kernel
	Slot    int
	GridIdx int
	Warps   []WarpState
}

// kernelState tracks per-kernel residency on this SM.
type kernelState struct {
	kernel *kern.Kernel
	stats  *metrics.KernelStats
	tbs    int
	cap    int // max TBs of this kernel on this SM; <0 = unlimited
}

// scheduler is one GTO warp scheduler. The GTO order is cached instead
// of rescanning every warp context each cycle: ready holds live warps
// whose readyAt has passed in age order (oldest first), wakeQ holds
// sleeping warps keyed by wake time. Both are invalidated lazily on warp
// state changes; warps at a barrier or awaiting a deferred memory
// completion are in neither until released.
type scheduler struct {
	warps       []*Warp    // every assigned warp, age order (lazily compacted)
	ready       []readyEnt // live ready/short-backoff warps, oldest first
	wakeQ       []wakeEnt  // long sleepers keyed by wake time
	parked      []readyEnt // quota-gated warps pulled out of scans (see pick)
	ageSeq      int64      // next dispatch-order stamp
	last        *Warp      // greedy target
	lastIdx     int        // position hint of last in ready
	nextWake    int64      // earliest cycle a scan can possibly issue
	structSleep bool       // sleeping on an MSHR/credit block; pops rouse it
	deadCnt     int        // lazily compacted finished warps

	// Scan-prefix cache: the first prefixLen ready entries are known
	// non-issuable — each is either waiting on a future readyAt (the
	// earliest of which is prefixUntil) or blocked on an MSHR/credit
	// recorded under prefixEpoch. The prefix holds no port-blocked
	// entries (those clear every cycle), so it stays valid until the
	// structural epoch moves, the earliest waiter matures, or an
	// insertion/removal disturbs the region — and scans restart past it
	// instead of re-proving the same blocks every cycle. prefixMSHR and
	// prefixCredit carry the skipped entries' block causes into the
	// scan's stall classification.
	prefixLen    int
	prefixUntil  int64
	prefixEpoch  int64
	prefixMSHR   bool
	prefixCredit bool
}

// SM is one streaming multiprocessor.
type SM struct {
	ID  int
	cfg config.GPU

	memSys *mem.System
	l1     *cache.Cache
	gate   QuotaGate
	tracer *trace.Tracer // nil when tracing is off; every emit is nil-safe

	scheds  []scheduler
	nextSch int // round-robin warp placement cursor

	tbs     []*TB
	kernels []kernelState

	// Static resource accounting.
	usedThreads int
	usedRegs    int
	usedShm     int
	usedTBSlots int

	// MSHR accounting: completion times of outstanding load misses.
	missHeap    []int64
	outstanding int

	// Credit-based memory flow control: completion times of every
	// in-flight 128B transaction this SM has injected (loads and
	// posted stores), tracked per kernel slot. When a kernel's budget
	// is spent, its new global-memory instructions stall at issue —
	// heavy requesters self-limit instead of freezing the whole chip,
	// and the budget is partitioned per resident kernel (as SMK
	// partitions other within-SM resources) so a streaming kernel
	// cannot starve a co-resident kernel's occasional requests.
	txnHeap         [][]int64
	txnFlight       []int
	txnTotal        int // in-flight transactions across all kernels
	residentKernels int // slots with at least one resident TB
	txnCapCache     int // per-kernel credit budget; tracks residentKernels

	// Per-cycle issue limits and cached per-cycle state.
	memIssues int
	gateOK    []bool // per-slot CanIssue result, valid until gateDirty

	// Quota-gate cache. CanIssue is a pure function of the gate's
	// per-SM counters, and every mutation that can flip its result for
	// this SM (a counter crossing zero on issue, a replenish or epoch
	// refresh, a gate swap, residency changes) wakes the SM — so the
	// per-slot results are recomputed only when gateDirty is set instead
	// of per cycle. gatedResident mirrors the slots with !gateOK and
	// resident TBs (the set charged ThrottledCycles each cycle).
	gateDirty     bool
	gatedResident []int32

	// Structural-block causes seen by the current pick scan; pick resets
	// them and uses them to compute an exact re-check time instead of
	// polling every cycle.
	sawPort   bool
	sawMSHR   bool
	sawCredit bool

	// Structural-block memo. Between invalidation points, blockedness is
	// monotone: within a cycle memIssues, outstanding, txnFlight and
	// txnTotal only grow, and across cycles they shrink only at a
	// completion-heap pop or a credit-budget raise (refreshTxnCap) — both
	// bump structEpoch. A scan can therefore skip a memory entry whose
	// block was already established (same epoch / same cycle for the
	// per-cycle port limit) without re-deriving it from the warp context.
	structEpoch    int64
	mshrEpoch      int64   // epoch the MSHR pool was last found full
	creditEpoch    []int64 // per slot: epoch its credit budget was found spent
	portBlockCycle int64   // cycle the LD/ST ports were last found saturated

	// Idle fast-path: when a Cycle issues nothing, every scheduler's
	// nextWake is in the future and the SM can skip whole cycles until
	// the earliest of them. Skipped cycles are counted and settled into
	// ThrottledCycles (for quota-gated resident kernels) before any state
	// mutation, so per-kernel accounting matches a cycle-by-cycle run.
	idleUntil int64
	idleSkips int64

	// Sharded-stepping capture state. When deferMode is on, Cycle runs
	// with capturing set: per-SM effects apply immediately while effects
	// on shared state (memory-system accesses, trace emits, TB-complete
	// callbacks) are recorded and replayed by FlushDeferred in the
	// serial phase, in the same order a serial run would produce them.
	deferMode  bool
	capturing  bool
	pendStalls []int    // slots with a quota-denied trace edge this cycle
	pendTxns   []txnReq // deferred memory-system transactions
	pendMems   []memEv  // per-instruction groups over pendTxns
	pendDones  []int    // slots of TBs retired this cycle

	// Preallocated scratch for SampleIdleWarps.
	sampleScratch []int

	// The SM is unavailable (draining for a spatial repartition or busy
	// with context movement) until this cycle.
	BlockedUntil int64

	// OnTBComplete, if set, is invoked when a TB retires; the GPU-level
	// TB scheduler uses it to dispatch follow-on work.
	OnTBComplete func(smID int, slot int)

	// IssuedWarpInstrs counts issued warp instructions for utilization
	// and power accounting.
	IssuedWarpInstrs int64
	ActiveCycles     int64 // cycles with at least one issue

	// Scheduler stall breakdown (scans that issued nothing).
	StallWaiting    int64 // every live warp waiting on a latency
	StallGate       int64 // ready warps existed but all quota-denied
	StallStructural int64 // ready warps existed but ports/MSHR/credits full

	// Structural-block cause counters (per blocked check).
	BlockPort   int64
	BlockMSHR   int64
	BlockCredit int64
}

// New builds an SM. Kernels are registered later via Configure.
func New(id int, cfg config.GPU, memSys *mem.System) *SM {
	s := &SM{
		ID:     id,
		cfg:    cfg,
		memSys: memSys,
		l1:     cache.New(cfg.L1),
		scheds: make([]scheduler, cfg.WarpSchedulers),
		// Epoch 0 is the zero value of the per-slot memo entries; start at
		// 1 so a fresh SM reads "nothing blocked". The port memo compares
		// against the current cycle, which starts at 0.
		structEpoch:    1,
		portBlockCycle: -1,
	}
	return s
}

// Configure registers the co-running kernels and their (GPU-wide) stats
// sinks. Slot order must match across all SMs of the GPU. Configure must
// run before any TB is dispatched; use SetGate to change the quota gate
// later without disturbing caps and residency accounting.
func (s *SM) Configure(kernels []*kern.Kernel, stats []*metrics.KernelStats, gate QuotaGate) {
	if len(kernels) != len(stats) {
		panic("sm: kernels and stats length mismatch")
	}
	if len(s.tbs) > 0 {
		panic("sm: Configure after dispatch")
	}
	s.kernels = make([]kernelState, len(kernels))
	s.gateOK = make([]bool, len(kernels))
	s.txnHeap = make([][]int64, len(kernels))
	s.txnFlight = make([]int, len(kernels))
	s.creditEpoch = make([]int64, len(kernels))
	s.gatedResident = make([]int32, 0, len(kernels))
	for i := range kernels {
		s.kernels[i] = kernelState{kernel: kernels[i], stats: stats[i], cap: -1}
	}
	s.sampleScratch = make([]int, len(kernels))
	// Seed the park buffers: a closing quota gate parks a whole slot's
	// ready warps at once, and growing the slices from nil on that hot
	// path costs a run of doubling allocations per scheduler.
	for i := range s.scheds {
		if cap(s.scheds[i].parked) == 0 {
			s.scheds[i].parked = make([]readyEnt, 0, 16)
		}
	}
	s.gate = gate
	s.gateDirty = true
	s.refreshTxnCap()
}

// SetStats swaps the per-slot stats sinks without disturbing residency
// or caps; the sharded stepping mode uses it to give each SM a private
// shard that is drained into the GPU-wide stats at synchronization
// points. Slot order must match Configure's.
func (s *SM) SetStats(stats []*metrics.KernelStats) {
	if len(stats) != len(s.kernels) {
		panic("sm: SetStats length mismatch")
	}
	for i := range s.kernels {
		s.kernels[i].stats = stats[i]
	}
}

// SetDeferred switches the SM into (or out of) sharded capture mode: see
// the capture-state fields and FlushDeferred.
func (s *SM) SetDeferred(on bool) { s.deferMode = on }

// SetGate replaces the quota gate, leaving caps and residency intact.
// Scheduler sleep caches are cleared: a new gate can make previously
// quota-denied warps issuable immediately.
func (s *SM) SetGate(gate QuotaGate) {
	s.settleIdle()
	s.idleUntil = 0
	s.gate = gate
	s.gateDirty = true
	for i := range s.scheds {
		s.scheds[i].nextWake = 0
	}
}

// SetTracer attaches the observability tracer (nil turns tracing off).
func (s *SM) SetTracer(tr *trace.Tracer) { s.tracer = tr }

// Tracer returns the attached tracer (possibly nil).
func (s *SM) Tracer() *trace.Tracer { return s.tracer }

// SetTBCap sets the per-SM thread-block cap for a kernel slot (<0 removes
// the cap). The static resource manager drives this.
func (s *SM) SetTBCap(slot, cap int) { s.kernels[slot].cap = cap }

// TBCap returns the current cap for the slot.
func (s *SM) TBCap(slot int) int { return s.kernels[slot].cap }

// ResidentTBs returns how many TBs of the slot this SM currently hosts.
func (s *SM) ResidentTBs(slot int) int { return s.kernels[slot].tbs }

// L1 exposes the L1 cache (stats for the power model and tests).
func (s *SM) L1() *cache.Cache { return s.l1 }

// Outstanding returns the in-flight global load misses (MSHR occupancy).
func (s *SM) Outstanding() int { return s.outstanding }

// UsedThreads returns the number of resident threads.
func (s *SM) UsedThreads() int { return s.usedThreads }

// FreeFor reports whether the SM has the static resources to host one
// more TB of the slot's kernel, honouring the per-kernel cap.
func (s *SM) FreeFor(slot int) bool {
	ks := &s.kernels[slot]
	if ks.cap >= 0 && ks.tbs >= ks.cap {
		return false
	}
	r := ks.kernel.TBResources()
	return s.usedThreads+r.Threads <= s.cfg.MaxThreadsPerSM &&
		s.usedRegs+r.RegBytes <= s.cfg.RegFileBytes &&
		s.usedShm+r.ShmBytes <= s.cfg.SharedMemBytes &&
		s.usedTBSlots+1 <= s.cfg.MaxTBsPerSM
}

// roomWithoutCap reports whether raw resources (ignoring the cap) can host
// one more TB of the kernel. The static adjuster uses it to decide whether
// raising a cap needs a victim.
func (s *SM) roomWithoutCap(slot int) bool {
	r := s.kernels[slot].kernel.TBResources()
	return s.usedThreads+r.Threads <= s.cfg.MaxThreadsPerSM &&
		s.usedRegs+r.RegBytes <= s.cfg.RegFileBytes &&
		s.usedShm+r.ShmBytes <= s.cfg.SharedMemBytes &&
		s.usedTBSlots+1 <= s.cfg.MaxTBsPerSM
}

// RoomWithoutCap is the exported form of roomWithoutCap.
func (s *SM) RoomWithoutCap(slot int) bool { return s.roomWithoutCap(slot) }

// DebugWarpStates summarizes warp states per kernel slot for diagnostics:
// counts of ready, waiting (future readyAt), at-barrier and done warps.
func (s *SM) DebugWarpStates(now int64) string {
	type agg struct{ ready, waiting, barrier, done int }
	per := make([]agg, len(s.kernels))
	minReady := make([]int64, len(s.kernels))
	for i := range s.scheds {
		for _, w := range s.scheds[i].warps {
			a := &per[w.slot]
			switch {
			case w.done:
				a.done++
			case w.atBarrier:
				a.barrier++
			case w.readyAt <= now:
				a.ready++
			default:
				a.waiting++
				if minReady[w.slot] == 0 || w.readyAt < minReady[w.slot] {
					minReady[w.slot] = w.readyAt
				}
			}
		}
	}
	out := ""
	for slot, a := range per {
		out += fmt.Sprintf("slot%d{rdy:%d wait:%d bar:%d done:%d minReady:%d} ",
			slot, a.ready, a.waiting, a.barrier, a.done, minReady[slot])
	}
	return out
}

// DebugSchedList renders scheduler i's warp list in age order: slot,
// state and head opcode for each live warp.
func (s *SM) DebugSchedList(now int64, i int) string {
	out := ""
	for _, w := range s.scheds[i].warps {
		if w.done {
			continue
		}
		state := "W"
		switch {
		case w.atBarrier:
			state = "B"
		case w.readyAt <= now:
			state = "R"
		}
		out += fmt.Sprintf("[s%d %s %v]", w.slot, state, w.body[w.pc].Op)
	}
	return out
}

// FreeThreads returns unused thread contexts on this SM.
func (s *SM) FreeThreads() int { return s.cfg.MaxThreadsPerSM - s.usedThreads }

// FreeRegBytes returns unused register-file bytes on this SM.
func (s *SM) FreeRegBytes() int { return s.cfg.RegFileBytes - s.usedRegs }

// FreeShmBytes returns unused shared-memory bytes on this SM.
func (s *SM) FreeShmBytes() int { return s.cfg.SharedMemBytes - s.usedShm }

// FreeTBSlots returns unused thread-block slots on this SM.
func (s *SM) FreeTBSlots() int { return s.cfg.MaxTBsPerSM - s.usedTBSlots }

// Dispatch places one TB of the slot's kernel on this SM, optionally
// resuming a previously preempted context. It panics if FreeFor is false;
// callers are expected to check admission first.
func (s *SM) Dispatch(now int64, slot, gridIdx int, resume *TBContext) *TB {
	if !s.FreeFor(slot) {
		panic(fmt.Sprintf("sm%d: dispatch without room for slot %d", s.ID, slot))
	}
	s.settleIdle()
	s.idleUntil = 0
	// Residency is about to change: the throttled-resident set (and,
	// with it, per-cycle ThrottledCycles attribution) may change too.
	s.gateDirty = true
	ks := &s.kernels[slot]
	k := ks.kernel
	r := k.TBResources()
	s.usedThreads += r.Threads
	s.usedRegs += r.RegBytes
	s.usedShm += r.ShmBytes
	s.usedTBSlots++
	ks.tbs++
	if ks.tbs == 1 {
		s.residentKernels++
		s.refreshTxnCap()
	}
	ks.stats.TBsDispatched++
	if resume != nil {
		s.tracer.TBRestore(now, s.ID, slot, gridIdx)
	} else {
		s.tracer.TBDispatch(now, s.ID, slot, gridIdx)
	}

	warpsPerTB := k.WarpsPerTB()
	tb := &TB{Kernel: k, Slot: slot, GridIdx: gridIdx, dispatchedAt: now}
	tb.Warps = make([]*Warp, warpsPerTB)
	// One contiguous allocation for the TB's warp contexts: the issue
	// path walks them constantly, and per-warp allocations cost dispatch
	// time and scatter the contexts across the heap. The block is not
	// recycled when the TB retires — scheduler caches may still hold
	// references until lazy compaction drops them.
	block := make([]Warp, warpsPerTB)
	for i := 0; i < warpsPerTB; i++ {
		w := &block[i]
		w.kernel = k
		w.slot = slot
		w.tb = tb
		w.gid = uint64(gridIdx)*uint64(warpsPerTB) + uint64(i)
		w.activeLanes = s.cfg.WarpSize
		w.readyAt = now
		w.divState = rng.Mix(uint64(k.ID)<<20, w.gid)
		if resume != nil {
			st := resume.Warps[i]
			w.pc, w.iter = st.PC, st.Iter
			w.activeLanes = st.ActiveLanes
			w.atBarrier = st.AtBarrier
			w.done = st.Done
			w.divState = st.DivState
			if w.atBarrier {
				tb.BarrierWait++
			}
		}
		w.body = k.BodyFor(w.iter)
		if !w.done {
			tb.LiveWarps++
		}
		tb.Warps[i] = w
		w.schedIdx = s.nextSch
		sch := &s.scheds[s.nextSch]
		s.nextSch = (s.nextSch + 1) % len(s.scheds)
		w.age = sch.ageSeq
		sch.ageSeq++
		sch.warps = append(sch.warps, w)
		if w.done {
			sch.deadCnt++
		} else {
			s.enqueue(sch, w, now)
		}
		if sch.nextWake > now {
			sch.nextWake = now
		}
	}
	s.tbs = append(s.tbs, tb)
	// A resumed TB that was saved exactly at a barrier boundary may be
	// immediately releasable.
	if tb.LiveWarps > 0 && tb.BarrierWait == tb.LiveWarps {
		s.releaseBarrier(now, tb)
	}
	if tb.LiveWarps == 0 {
		// Degenerate resume: every warp had already finished.
		s.retireTB(now, tb)
	}
	return tb
}

// DeferTB postpones the first issue of every warp in tb until the given
// cycle; the dispatcher uses this to charge context-restore latency.
// Ready-cache mirrors are refreshed in place: the scan's structural-block
// memo trusts a mirrored readyAt <= now without dereferencing the warp,
// so the mirror must never understate the warp's wake time. (Warps parked
// behind the quota gate keep their stale mirror — unparking re-files them
// from the warp's own readyAt.)
func (s *SM) DeferTB(tb *TB, until int64) {
	for _, w := range tb.Warps {
		if w.done || w.readyAt >= until {
			continue
		}
		w.readyAt = until
		if !w.inReady {
			continue
		}
		sch := &s.scheds[w.schedIdx]
		if i := findReady(sch, w); i >= 0 {
			sch.ready[i].readyAt = until
		}
	}
}

// Wake clears scheduler sleep caches so the next cycle rescans; the QoS
// manager calls this when quotas are replenished.
func (s *SM) Wake(now int64) {
	s.settleIdle()
	s.idleUntil = 0
	s.gateDirty = true
	for i := range s.scheds {
		if s.scheds[i].nextWake > now {
			s.scheds[i].nextWake = now
		}
	}
}

// NextEventAt returns the first cycle >= a at which Cycle would do real
// work: the SM is past both its blocked window (drain/context movement)
// and its idle window. Cycles before it are no-ops apart from idle-skip
// counting, which CreditIdle reproduces; the GPU's event wheel uses the
// pair to fast-forward stretches where every SM sleeps.
func (s *SM) NextEventAt(a int64) int64 {
	t := s.BlockedUntil
	if s.idleUntil > t {
		t = s.idleUntil
	}
	if t < a {
		return a
	}
	return t
}

// CreditIdle accounts the cycles in [from, to) the event wheel skipped
// for this SM exactly as per-cycle stepping would have: one idle skip for
// every cycle at/after BlockedUntil but before idleUntil (blocked cycles
// return before idle counting; active cycles cannot be inside a skipped
// stretch — NextEventAt bounds it).
func (s *SM) CreditIdle(from, to int64) {
	if s.BlockedUntil > from {
		from = s.BlockedUntil
	}
	if s.idleUntil < to {
		to = s.idleUntil
	}
	if to > from {
		s.idleSkips += to - from
	}
}
