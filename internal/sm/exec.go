package sm

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
)

// Cycle advances the SM by one cycle: retire completed load misses, then
// let each warp scheduler issue at most one warp instruction under GTO
// with the quota gate applied.
func (s *SM) Cycle(now int64) {
	if now < s.BlockedUntil {
		return
	}
	// Release MSHRs whose misses completed and transaction credits
	// whose requests drained.
	for s.outstanding > 0 && s.missHeap[0] <= now {
		s.popMiss()
	}
	for slot := range s.txnHeap {
		for s.txnFlight[slot] > 0 && s.txnHeap[slot][0] <= now {
			popHeap(&s.txnHeap[slot])
			s.txnFlight[slot]--
			s.txnTotal--
		}
	}
	s.memIssues = 0
	for slot := range s.kernels {
		ok := s.gate == nil || s.gate.CanIssue(s.ID, slot)
		if !ok && s.kernels[slot].tbs > 0 {
			s.kernels[slot].stats.ThrottledCycles++
			if s.gateOK[slot] {
				// Transition into quota-denied: trace the edge, not
				// every throttled cycle.
				s.tracer.GateStall(now, s.ID, slot, -1)
			}
		}
		s.gateOK[slot] = ok
	}

	issued := false
	for i := range s.scheds {
		sch := &s.scheds[i]
		if now < sch.nextWake {
			continue
		}
		if w := s.pick(now, sch); w != nil {
			s.issue(now, sch, w)
			issued = true
		}
	}
	if issued {
		s.ActiveCycles++
	}
}

// pick implements GTO: greedily reuse the last issued warp while it is
// issuable, otherwise take the oldest issuable warp. When nothing is
// issuable it computes the earliest cycle worth rescanning.
func (s *SM) pick(now int64, sch *scheduler) *Warp {
	// Greedy reuse applies to compute instructions only: letting the
	// last-issued warp snatch scarce memory-side resources (ports,
	// MSHRs, transaction credits) ahead of older warps starves sparse
	// memory requesters behind a streaming kernel indefinitely. Memory
	// instructions always arbitrate age-ordered.
	if w := sch.last; w != nil && !w.done && !w.atBarrier && w.readyAt <= now &&
		!w.body[w.pc].Op.IsGlobalMem() && s.issuable(now, w) {
		return w
	}
	var best *Warp
	next := int64(1) << 62
	sawStructural := false
	sawGated := false
	dead := 0
	for _, w := range sch.warps {
		if w.done {
			dead++
			continue
		}
		if w.atBarrier {
			continue // woken explicitly by barrier release
		}
		if w.readyAt > now {
			if w.readyAt < next {
				next = w.readyAt
			}
			continue
		}
		if !s.gateOK[w.slot] {
			// Quota throttling clears only on a quota event, and every
			// quota event wakes the SM; no need to re-poll each cycle.
			sawGated = true
			continue
		}
		if !s.structuralOK(w.slot, &w.body[w.pc]) {
			sawStructural = true
			continue
		}
		best = w
		break // warps are stored oldest-first
	}
	sch.deadCnt = dead
	if dead > 16 && dead > len(sch.warps)/2 {
		s.compact(sch)
	}
	if best == nil {
		switch {
		case sawStructural:
			s.StallStructural++
			// Port/MSHR/backpressure stalls can clear any cycle.
			sch.nextWake = now + 1
		case sawGated:
			s.StallGate++
			sch.nextWake = next
		default:
			s.StallWaiting++
			sch.nextWake = next
		}
	}
	return best
}

// issuable applies the quota gate and structural (LD/ST port, MSHR,
// memory backpressure) constraints to a ready warp.
func (s *SM) issuable(now int64, w *Warp) bool {
	return s.gateOK[w.slot] && s.structuralOK(w.slot, &w.body[w.pc])
}

// structuralOK checks the per-cycle structural constraints for the warp's
// next instruction.
func (s *SM) structuralOK(slot int, in *isa.Instr) bool {
	if in.Op.IsGlobalMem() {
		if s.memIssues >= s.cfg.MemPortsPerSM {
			s.BlockPort++
			return false
		}
		if in.Op == isa.OpLdGlobal && s.outstanding >= s.cfg.MSHRsPerSM {
			s.BlockMSHR++
			return false
		}
		// Credit-based flow control with a guaranteed minimum per
		// resident kernel: a kernel past its guaranteed share may
		// still borrow while the SM's total budget has slack (work
		// conserving), but under full contention every kernel keeps
		// its share — a streaming kernel can neither starve a
		// co-resident kernel nor strand credits it does not use.
		if s.txnFlight[slot] >= s.txnCap() && s.txnTotal >= s.cfg.TxnFlightCapPerSM {
			s.BlockCredit++
			return false
		}
	}
	return true
}

// issue executes one warp instruction of w at time now.
func (s *SM) issue(now int64, sch *scheduler, w *Warp) {
	in := &w.body[w.pc]
	lanes := w.activeLanes
	st := s.kernels[w.slot].stats
	st.WarpInstrs++
	st.ThreadInstrs += int64(lanes)
	st.NoteIssue(now)
	s.IssuedWarpInstrs++
	if s.gate != nil {
		s.gate.OnIssue(s.ID, w.slot, lanes)
	}
	sch.last = w

	switch in.Op {
	case isa.OpIAlu, isa.OpFAlu:
		st.ALUInstrs++
		s.finishCompute(now, w, s.cfg.ALULatency)
	case isa.OpSFU:
		st.SFUInstrs++
		s.finishCompute(now, w, s.cfg.SFULatency)
	case isa.OpLdShared, isa.OpStShared:
		st.SharedInstrs++
		s.finishCompute(now, w, s.cfg.SharedMemLat)
	case isa.OpBranch:
		st.Branches++
		if in.Divergent {
			// Divergence idles a deterministic per-warp fraction of
			// lanes until reconvergence at the loop back-edge.
			w.divState = rng.Hash64(w.divState)
			u := float64(w.divState>>11) / (1 << 53) // [0,1)
			frac := w.kernel.Profile.DivergenceFrac * 2 * u
			drop := int(frac * float64(s.cfg.WarpSize))
			if drop >= w.activeLanes {
				drop = w.activeLanes - 1
			}
			if drop > 0 {
				w.activeLanes -= drop
			}
		}
		s.finishCompute(now, w, s.cfg.ALULatency)
	case isa.OpBarrier:
		st.Barriers++
		w.atBarrier = true
		w.tb.BarrierWait++
		if w.tb.BarrierWait == w.tb.LiveWarps {
			s.releaseBarrier(now, w.tb)
		}
		sch.last = nil
	case isa.OpLdGlobal:
		st.GlobalLoads++
		s.memIssues++
		done := s.globalAccess(now, w, in, lanes, mem.Read)
		if s.nextDepends(w) {
			w.readyAt = done
		} else {
			// Hit-under-miss: the warp keeps going; the MSHR is held
			// until the data returns.
			w.readyAt = now + s.cfg.IssueBackoff
		}
		s.advance(now, w)
	case isa.OpStGlobal:
		st.GlobalStores++
		s.memIssues++
		s.globalAccess(now, w, in, lanes, mem.Write)
		w.readyAt = now + s.cfg.WriteLatency // posted
		s.advance(now, w)
	}
}

// finishCompute applies result latency: the warp stalls for the full
// latency only if the next instruction consumes this result; otherwise it
// can re-issue after the pipeline backoff.
func (s *SM) finishCompute(now int64, w *Warp, lat int64) {
	if s.nextDepends(w) {
		w.readyAt = now + lat
	} else {
		w.readyAt = now + s.cfg.IssueBackoff
	}
	s.advance(now, w)
}

// nextDepends reports whether the instruction after w.pc depends on the
// current one (wrapping across the loop back-edge).
func (s *SM) nextDepends(w *Warp) bool {
	if w.pc+1 < len(w.body) {
		return w.body[w.pc+1].DependsOnPrev
	}
	if w.iter+1 >= w.kernel.Profile.Iterations {
		return false
	}
	nb := w.kernel.BodyFor(w.iter + 1)
	return nb[0].DependsOnPrev
}

// globalAccess performs the coalesced transactions of a global memory
// instruction and returns the completion time of the slowest one.
func (s *SM) globalAccess(now int64, w *Warp, in *isa.Instr, lanes int, kind mem.AccessKind) int64 {
	st := s.kernels[w.slot].stats
	// Scale transaction count with the active lanes.
	n := (int(in.Transactions)*lanes + s.cfg.WarpSize - 1) / s.cfg.WarpSize
	if n < 1 {
		n = 1
	}
	done := now + s.cfg.L1HitLatency
	missed := false
	for t := 0; t < n; t++ {
		addr := w.kernel.GlobalAddr(w.gid, w.iter, w.pc, t, in.Reuse)
		st.MemTxns++
		if kind == mem.Write {
			// Write-through, no-allocate: writes bypass the L1 tag
			// array and consume partition bandwidth (and a credit
			// until the write drains).
			c := s.memSys.Access(now, addr, mem.Write)
			s.holdTxn(w.slot, c)
			continue
		}
		st.L1Accesses++
		if s.l1.Access(addr) {
			continue // L1 hit at base latency
		}
		st.L1Misses++
		missed = true
		c := s.memSys.Access(now, addr, mem.Read)
		s.holdTxn(w.slot, c)
		if c > done {
			done = c
		}
	}
	if kind == mem.Read && missed {
		s.pushMiss(done)
	}
	return done
}

// advance moves the warp past its current instruction, handling the loop
// back-edge, phase changes, reconvergence and warp completion.
func (s *SM) advance(now int64, w *Warp) {
	w.pc++
	if w.pc < len(w.body) {
		return
	}
	w.pc = 0
	w.iter++
	if w.iter >= w.kernel.Profile.Iterations {
		s.warpDone(now, w)
		return
	}
	w.body = w.kernel.BodyFor(w.iter)
	w.activeLanes = s.cfg.WarpSize // reconverge at the back-edge
}

// releaseBarrier wakes every warp of tb waiting at the barrier. The wait
// counter is cleared before advancing warps: advance may retire a warp,
// and a stale counter could otherwise re-trigger the release.
func (s *SM) releaseBarrier(now int64, tb *TB) {
	tb.BarrierWait = 0
	for _, w := range tb.Warps {
		if !w.atBarrier {
			continue
		}
		w.atBarrier = false
		w.readyAt = now + s.cfg.BarrierLat
		s.advance(now, w)
	}
	s.Wake(now + s.cfg.BarrierLat)
}

// warpDone retires a warp, possibly releasing a barrier its siblings wait
// at, and retires the TB when the last warp finishes.
func (s *SM) warpDone(now int64, w *Warp) {
	w.done = true
	tb := w.tb
	tb.LiveWarps--
	if tb.LiveWarps == 0 {
		s.retireTB(now, tb)
		return
	}
	if tb.BarrierWait > 0 && tb.BarrierWait == tb.LiveWarps {
		s.releaseBarrier(now, tb)
	}
}

// retireTB frees the TB's static resources and notifies the dispatcher.
func (s *SM) retireTB(now int64, tb *TB) {
	s.freeTB(tb)
	s.kernels[tb.Slot].stats.TBsCompleted++
	if s.OnTBComplete != nil {
		s.OnTBComplete(s.ID, tb.Slot)
	}
}

// freeTB removes tb from the resident list and releases its resources.
func (s *SM) freeTB(tb *TB) {
	r := tb.Kernel.TBResources()
	s.usedThreads -= r.Threads
	s.usedRegs -= r.RegBytes
	s.usedShm -= r.ShmBytes
	s.usedTBSlots--
	s.kernels[tb.Slot].tbs--
	if s.kernels[tb.Slot].tbs == 0 {
		s.residentKernels--
	}
	for i, t := range s.tbs {
		if t == tb {
			s.tbs = append(s.tbs[:i], s.tbs[i+1:]...)
			break
		}
	}
}

// compact drops finished warps from a scheduler's list, preserving age
// order.
func (s *SM) compact(sch *scheduler) {
	out := sch.warps[:0]
	for _, w := range sch.warps {
		if !w.done {
			out = append(out, w)
		}
	}
	for i := len(out); i < len(sch.warps); i++ {
		sch.warps[i] = nil
	}
	sch.warps = out
	sch.deadCnt = 0
}

// txnCap returns the per-kernel in-flight transaction budget: the SM
// total split across resident kernels, floored so a kernel is never
// locked out entirely.
func (s *SM) txnCap() int {
	n := s.residentKernels
	if n < 1 {
		n = 1
	}
	cap := s.cfg.TxnFlightCapPerSM / n
	if cap < 8 {
		cap = 8
	}
	return cap
}

// holdTxn charges one of the slot's in-flight transaction credits until
// time t.
func (s *SM) holdTxn(slot int, t int64) {
	pushHeap(&s.txnHeap[slot], t)
	s.txnFlight[slot]++
	s.txnTotal++
}

// ---- MSHR / credit min-heaps ----

func (s *SM) pushMiss(t int64) {
	pushHeap(&s.missHeap, t)
	s.outstanding++
}

func (s *SM) popMiss() {
	popHeap(&s.missHeap)
	s.outstanding--
}

// pushHeap inserts t into the min-heap h.
func pushHeap(h *[]int64, t int64) {
	a := append(*h, t)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

// popHeap removes the minimum of the min-heap h.
func popHeap(h *[]int64) {
	a := *h
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && a[l] < a[small] {
			small = l
		}
		if r < n && a[r] < a[small] {
			small = r
		}
		if small == i {
			break
		}
		a[i], a[small] = a[small], a[i]
		i = small
	}
	*h = a
}
