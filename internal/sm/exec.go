package sm

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
)

// deferredReadyAt is the placeholder wake time of a warp whose memory
// completion is not yet known (sharded stepping defers the shared
// memory-system access to the flush phase, which fills in the real
// time). It doubles as the "no wake pending" sentinel in scan results.
const deferredReadyAt = int64(1) << 62

// Cycle advances the SM by one cycle: retire completed load misses, then
// let each warp scheduler issue at most one warp instruction under GTO
// with the quota gate applied.
func (s *SM) Cycle(now int64) {
	if now < s.BlockedUntil {
		return
	}
	if now < s.idleUntil {
		// Every scheduler sleeps past this cycle and no tracked event
		// is due: skip the cycle. Quota-throttle accounting for the
		// skipped cycles is settled in bulk (the gate result is frozen
		// while idle — any quota event calls Wake, which settles and
		// ends the idle window).
		s.idleSkips++
		return
	}
	s.settleIdle()
	// Capture applies only within Cycle: TB retires reached from a
	// dispatch context (already in the serial phase) stay immediate.
	s.capturing = s.deferMode
	// Release MSHRs whose misses completed and transaction credits
	// whose requests drained.
	popped := false
	for s.outstanding > 0 && s.missHeap[0] <= now {
		s.popMiss()
		popped = true
	}
	for slot := range s.txnHeap {
		for s.txnFlight[slot] > 0 && s.txnHeap[slot][0] <= now {
			popHeap(&s.txnHeap[slot])
			s.txnFlight[slot]--
			s.txnTotal--
			popped = true
		}
	}
	if popped {
		// A freed MSHR or transaction credit can unblock a structurally
		// stalled scheduler; wake those sleepers for this cycle's scan.
		// (Completion times are not monotonic in issue order, so a sleep
		// time computed from heap tops at scan time could overshoot —
		// waking at pop time is exact.) The structural-block memo is
		// invalidated the same way: a pop is the only event that shrinks
		// MSHR or credit occupancy.
		s.structEpoch++
		for i := range s.scheds {
			if s.scheds[i].structSleep && s.scheds[i].nextWake > now {
				s.scheds[i].nextWake = now
			}
		}
	}
	s.memIssues = 0
	if s.gateDirty {
		s.refreshGate(now)
	}
	for _, slot := range s.gatedResident {
		s.kernels[slot].stats.ThrottledCycles++
	}

	issued := false
	for i := range s.scheds {
		sch := &s.scheds[i]
		if now < sch.nextWake {
			continue
		}
		if w, idx := s.pick(now, sch); w != nil {
			s.issue(now, sch, w)
			if w.inReady {
				// The issue may have shifted the cache (a barrier
				// release or TB retirement removes entries); validate
				// the index before using it.
				if idx >= len(sch.ready) || sch.ready[idx].w != w {
					idx = findReady(sch, w)
				}
				switch {
				case w.atBarrier:
					// Parked: the barrier release re-files it.
					removeReadyAt(sch, idx)
				case w.readyAt-now >= s.cfg.L1HitLatency:
					// Long sleep (memory wait): move to the wake heap
					// so scans skip it. Short backoffs stay in the
					// ready cache — cheaper to skip in the scan than
					// to churn the heap every couple of cycles.
					removeReadyAt(sch, idx)
					if w.readyAt < deferredReadyAt {
						pushWake(&sch.wakeQ, wakeEnt{w.readyAt, w})
					}
				default:
					// Refresh both mirrors: the issue advanced the warp
					// past its instruction, so its scan class may have
					// changed along with its wake time.
					sch.ready[idx].readyAt = w.readyAt
					sch.ready[idx].cls = opClass(w.body[w.pc].Op)
				}
			}
			issued = true
		}
	}
	if issued {
		s.ActiveCycles++
	} else {
		// Nothing issued and every scheduler set a wake time in the
		// future: the SM can sleep until the earliest of them. Any
		// asynchronous enabler (quota replenishment, dispatch, barrier
		// release, TB retirement raising the credit budget) ends the
		// window via Wake/Dispatch.
		idle := s.scheds[0].nextWake
		for i := 1; i < len(s.scheds); i++ {
			if s.scheds[i].nextWake < idle {
				idle = s.scheds[i].nextWake
			}
		}
		// Completion-heap events must still fire on time: a pop releases
		// an MSHR or credit (rousing structural sleepers) and keeps the
		// occupancy counters current. Length guards rather than counter
		// guards: in capture mode a push can be pending flush while the
		// counter already moved.
		if len(s.missHeap) > 0 && s.missHeap[0] < idle {
			idle = s.missHeap[0]
		}
		for slot := range s.txnHeap {
			if h := s.txnHeap[slot]; len(h) > 0 && h[0] < idle {
				idle = h[0]
			}
		}
		s.idleUntil = idle
	}
	s.capturing = false
}

// refreshGate recomputes the cached per-slot gate results. Called only
// when gateDirty (a quota event, gate swap or residency change since the
// last refresh), never per cycle: every mutation that can change
// CanIssue's answer for this SM wakes it, so a clean cache is exact.
// Reopened slots release their parked warps back into the scan caches;
// newly denied slots trace the stall edge exactly as the per-cycle
// recomputation did.
func (s *SM) refreshGate(now int64) {
	s.gateDirty = false
	s.gatedResident = s.gatedResident[:0]
	for slot := range s.kernels {
		ok := s.gate == nil || s.gate.CanIssue(s.ID, slot)
		if !ok && s.kernels[slot].tbs > 0 {
			s.gatedResident = append(s.gatedResident, int32(slot))
			if s.gateOK[slot] {
				// Transition into quota-denied: trace the edge, not
				// every throttled cycle.
				if s.capturing {
					if s.tracer != nil {
						s.pendStalls = append(s.pendStalls, slot)
					}
				} else {
					s.tracer.GateStall(now, s.ID, slot, -1)
				}
			}
		}
		if ok && !s.gateOK[slot] {
			s.unparkSlot(slot, now)
		}
		s.gateOK[slot] = ok
	}
}

// unparkSlot re-files every parked warp of a reopened slot into its
// scheduler's ready cache or wake heap. Parked entries are always live
// (a gated warp cannot issue, so it cannot finish or reach a barrier;
// preemption and retirement purge parked entries via removeReady).
func (s *SM) unparkSlot(slot int, now int64) {
	for i := range s.scheds {
		sch := &s.scheds[i]
		if len(sch.parked) == 0 {
			continue
		}
		kept := sch.parked[:0]
		for _, e := range sch.parked {
			if int(e.slot) != slot {
				kept = append(kept, e)
				continue
			}
			e.w.inReady = false
			s.enqueue(sch, e.w, now)
		}
		for j := len(kept); j < len(sch.parked); j++ {
			sch.parked[j] = readyEnt{}
		}
		sch.parked = kept
	}
}

// settleIdle folds idle-skipped cycles into the per-kernel quota
// throttle counters. The gated set is frozen across an idle window, so
// one bulk add per slot is exact.
func (s *SM) settleIdle() {
	n := s.idleSkips
	if n == 0 {
		return
	}
	s.idleSkips = 0
	for _, slot := range s.gatedResident {
		s.kernels[slot].stats.ThrottledCycles += n
	}
}

// SettleIdle flushes pending idle-cycle throttle accounting; the GPU
// calls it before reading final stats.
func (s *SM) SettleIdle() { s.settleIdle() }

// pick implements GTO: greedily reuse the last issued warp while it is
// issuable, otherwise take the oldest issuable warp. The scheduler keeps
// its GTO order cached instead of rescanning every warp context each
// cycle: live warps that are ready (or on a short pipeline backoff) sit
// in an age-ordered ready cache, while long sleepers — memory waits,
// deferred restores — sit in a wake-time min-heap that scans never
// touch. The split matters: short backoffs recur every few cycles, so
// skipping them in the scan is far cheaper than churning the heap; long
// sleeps are exactly the warps worth removing from the scan. Caches are
// invalidated on warp state changes, not rebuilt per cycle. When nothing
// is issuable, pick computes the earliest cycle worth rescanning.
func (s *SM) pick(now int64, sch *scheduler) (*Warp, int) {
	// Move sleepers whose wake time arrived into the ready cache.
	for len(sch.wakeQ) > 0 && sch.wakeQ[0].at <= now {
		w := sch.wakeQ[0].w
		popWake(&sch.wakeQ)
		if w.done || w.atBarrier || w.inReady {
			continue // finished or preempted while asleep, or re-filed
		}
		s.insertReady(sch, w)
	}
	// Greedy reuse applies to compute instructions only: letting the
	// last-issued warp snatch scarce memory-side resources (ports,
	// MSHRs, transaction credits) ahead of older warps starves sparse
	// memory requesters behind a streaming kernel indefinitely. Memory
	// instructions always arbitrate age-ordered.
	if w := sch.last; w != nil && w.inReady && !w.done && !w.atBarrier && w.readyAt <= now &&
		!w.body[w.pc].Op.IsGlobalMem() && s.issuable(now, w) {
		idx := sch.lastIdx
		if idx >= len(sch.ready) || sch.ready[idx].w != w {
			idx = findReady(sch, w)
			sch.lastIdx = idx
		}
		return w, idx
	}
	var best *Warp
	bestIdx := -1
	next := deferredReadyAt
	sawGated := false
	s.sawPort, s.sawMSHR, s.sawCredit = false, false, false
	longSleep := s.cfg.L1HitLatency
	a := sch.ready
	// Resume past the cached non-issuable prefix when it is still valid:
	// no structural epoch move (MSHR/credit blocks still hold), no waiter
	// matured, and no cache mutation disturbed the region (tracked by
	// insertReady/removeReadyAt). The skipped entries' block causes and
	// earliest wake still feed the stall classification below.
	start := 0
	preMSHR, preCredit := false, false
	preUntil := deferredReadyAt
	if sch.prefixLen > 0 {
		// The epoch guard only protects MSHR/credit-blocked members; a
		// prefix of pure future-waiters survives completion-heap pops.
		if now < sch.prefixUntil && sch.prefixLen <= len(a) &&
			(!(sch.prefixMSHR || sch.prefixCredit) || sch.prefixEpoch == s.structEpoch) {
			start = sch.prefixLen
			preMSHR, preCredit = sch.prefixMSHR, sch.prefixCredit
			preUntil = sch.prefixUntil
		} else {
			sch.prefixLen = 0
		}
	}
	for i := start; i < len(a); i++ {
		e := &a[i]
		// The entry mirrors the warp's slot, age and wake time so skip
		// decisions stay inside this contiguous slice instead of
		// dereferencing scattered warp contexts. The mirrored readyAt
		// can lag the warp's (DeferTB raises it in place); a lagging
		// value only costs one dereference to refresh — it never skips
		// a warp that is actually ready.
		if !s.gateOK[e.slot] {
			// Quota throttling clears only on a quota event; every quota
			// event wakes the SM and dirties the gate cache, and the
			// refresh un-parks reopened slots before any scan. Parking
			// the entry here removes the whole gated slot from every
			// subsequent scan instead of re-skipping it each cycle. Its
			// wake time needs no tracking: the gate is the binding
			// constraint, and the gate event re-files the warp.
			if e.readyAt <= now {
				sawGated = true
			}
			sch.parked = append(sch.parked, *e)
			copy(a[i:], a[i+1:])
			a[len(a)-1] = readyEnt{}
			sch.ready = a[:len(a)-1]
			a = sch.ready
			i--
			continue
		}
		if e.readyAt > now {
			if e.readyAt < next {
				next = e.readyAt
			}
			continue
		}
		// Structural-block memo: skip a memory entry whose block was
		// already established this cycle (ports) or since the last
		// completion-heap pop / budget raise (MSHRs, credits) without
		// dereferencing the warp — blockedness is monotone between those
		// invalidation points, so the memo answer equals structuralOK's.
		// The checks mirror structuralOK's order (port, MSHR, credit) so
		// the recorded first-failing cause matches a direct check.
		switch e.cls {
		case clsLdGlobal:
			if s.portBlockCycle == now {
				s.sawPort = true
				continue
			}
			if s.mshrEpoch == s.structEpoch {
				s.sawMSHR = true
				continue
			}
			if s.creditEpoch[e.slot] == s.structEpoch {
				s.sawCredit = true
				continue
			}
		case clsStGlobal:
			if s.portBlockCycle == now {
				s.sawPort = true
				continue
			}
			if s.creditEpoch[e.slot] == s.structEpoch {
				s.sawCredit = true
				continue
			}
		}
		w := e.w
		if w.done || w.atBarrier || w.readyAt-now >= longSleep {
			// Retired, preempted and barrier-parked warps are removed
			// eagerly, so this normally catches only a readyAt raised
			// while cached (a DeferTB'd restore): park it in the wake
			// heap and drop the entry.
			live := !w.done && !w.atBarrier
			removeReadyAt(sch, i)
			a = sch.ready
			if live && w.readyAt < deferredReadyAt {
				pushWake(&sch.wakeQ, wakeEnt{w.readyAt, w})
			}
			i--
			continue
		}
		if w.readyAt > now {
			e.readyAt = w.readyAt // refresh the lagging mirror
			if w.readyAt < next {
				next = w.readyAt
			}
			continue
		}
		if !s.structuralOK(now, int(e.slot), &w.body[w.pc]) {
			continue // cause recorded in sawPort/sawMSHR/sawCredit
		}
		best = w
		bestIdx = i
		break // the ready cache is age-ordered: oldest first
	}
	// Refresh the prefix cache: everything before bestIdx (or the whole
	// cache when nothing issued) was just proven non-issuable. A scan
	// that saw a port block cannot leave a prefix — ports free when the
	// per-cycle issue counter resets, so those entries must be retried
	// next cycle.
	if s.sawPort {
		sch.prefixLen = 0
	} else {
		if preUntil < next {
			next = preUntil
		}
		if best != nil {
			sch.prefixLen = bestIdx
		} else {
			sch.prefixLen = len(sch.ready)
		}
		sch.prefixUntil = next
		sch.prefixEpoch = s.structEpoch
		sch.prefixMSHR = s.sawMSHR || preMSHR
		sch.prefixCredit = s.sawCredit || preCredit
	}
	s.sawMSHR = s.sawMSHR || preMSHR
	s.sawCredit = s.sawCredit || preCredit
	if best == nil {
		if preUntil < next {
			next = preUntil
		}
		if len(sch.wakeQ) > 0 && sch.wakeQ[0].at < next {
			next = sch.wakeQ[0].at
		}
		switch {
		case s.sawPort || s.sawMSHR || s.sawCredit:
			s.StallStructural++
			// Port conflicts clear when the per-cycle issue counter
			// resets, so retry next cycle. MSHR and credit blocks clear
			// only at a completion-heap pop (or a budget raise, which
			// calls Wake): sleep on the ordinary wake estimate and let
			// the pop loop rouse structural sleepers the cycle a slot
			// actually frees.
			if s.sawPort {
				sch.nextWake = now + 1
				sch.structSleep = false
			} else {
				sch.nextWake = next
				sch.structSleep = true
			}
		case sawGated:
			s.StallGate++
			sch.nextWake = next
			sch.structSleep = false
		default:
			s.StallWaiting++
			sch.nextWake = next
			sch.structSleep = false
		}
	} else {
		sch.lastIdx = bestIdx
	}
	return best, bestIdx
}

// enqueue files a live warp into its scheduler's ready cache or wake
// heap according to its readyAt. Warps at a barrier are re-filed by the
// barrier release; warps awaiting a deferred memory completion are
// filed by FlushDeferred once the real completion time is known.
func (s *SM) enqueue(sch *scheduler, w *Warp, now int64) {
	if w.done || w.atBarrier || w.inReady {
		return
	}
	if w.readyAt-now >= s.cfg.L1HitLatency {
		if w.readyAt < deferredReadyAt {
			pushWake(&sch.wakeQ, wakeEnt{w.readyAt, w})
		}
		return
	}
	s.insertReady(sch, w)
}

// insertReady inserts w into the scheduler's ready cache at its age
// position (the cache stays oldest-first, preserving GTO order).
func (s *SM) insertReady(sch *scheduler, w *Warp) {
	w.inReady = true
	e := readyEnt{w: w, age: w.age, readyAt: w.readyAt, slot: int32(w.slot), cls: opClass(w.body[w.pc].Op)}
	a := append(sch.ready, e)
	i := len(a) - 1
	for i > 0 && a[i-1].age > e.age {
		a[i] = a[i-1]
		i--
	}
	a[i] = e
	sch.ready = a
	if i < sch.prefixLen {
		// A possibly-issuable entry landed inside the cached non-issuable
		// prefix; rescan from the top.
		sch.prefixLen = 0
	}
}

// removeReady removes w from the scheduler's ready cache — or from the
// parked list, where gated warps sit with inReady still set — if present.
func (s *SM) removeReady(sch *scheduler, w *Warp) {
	if !w.inReady {
		return
	}
	w.inReady = false
	if i := findReady(sch, w); i >= 0 {
		removeReadyAt(sch, i)
		return
	}
	for i := range sch.parked {
		if sch.parked[i].w == w {
			copy(sch.parked[i:], sch.parked[i+1:])
			sch.parked[len(sch.parked)-1] = readyEnt{}
			sch.parked = sch.parked[:len(sch.parked)-1]
			return
		}
	}
}

// findReady returns the index of w's entry in the ready cache, or -1.
func findReady(sch *scheduler, w *Warp) int {
	for i := range sch.ready {
		if sch.ready[i].w == w {
			return i
		}
	}
	return -1
}

// removeReadyAt deletes the ready-cache entry at index i, preserving
// order.
func removeReadyAt(sch *scheduler, i int) {
	a := sch.ready
	a[i].w.inReady = false
	copy(a[i:], a[i+1:])
	a[len(a)-1] = readyEnt{}
	sch.ready = a[:len(a)-1]
	if i < sch.prefixLen {
		// Removing a non-issuable entry keeps the rest of the prefix
		// non-issuable; prefixUntil and the block flags stay conservative
		// (the removed entry can only have tightened them).
		sch.prefixLen--
	}
}

// issuable applies the quota gate and structural (LD/ST port, MSHR,
// memory backpressure) constraints to a ready warp.
func (s *SM) issuable(now int64, w *Warp) bool {
	return s.gateOK[w.slot] && s.structuralOK(now, w.slot, &w.body[w.pc])
}

// structuralOK checks the per-cycle structural constraints for the warp's
// next instruction, recording every block in the scan memo so later
// entries of the same class skip the re-derivation (see pick).
func (s *SM) structuralOK(now int64, slot int, in *isa.Instr) bool {
	if in.Op.IsGlobalMem() {
		if s.memIssues >= s.cfg.MemPortsPerSM {
			s.BlockPort++
			s.sawPort = true
			s.portBlockCycle = now
			return false
		}
		if in.Op == isa.OpLdGlobal && s.outstanding >= s.cfg.MSHRsPerSM {
			s.BlockMSHR++
			s.sawMSHR = true
			s.mshrEpoch = s.structEpoch
			return false
		}
		// Credit-based flow control with a guaranteed minimum per
		// resident kernel: a kernel past its guaranteed share may
		// still borrow while the SM's total budget has slack (work
		// conserving), but under full contention every kernel keeps
		// its share — a streaming kernel can neither starve a
		// co-resident kernel nor strand credits it does not use.
		if s.txnFlight[slot] >= s.txnCapCache && s.txnTotal >= s.cfg.TxnFlightCapPerSM {
			s.BlockCredit++
			s.sawCredit = true
			s.creditEpoch[slot] = s.structEpoch
			return false
		}
	}
	return true
}

// issue executes one warp instruction of w at time now.
func (s *SM) issue(now int64, sch *scheduler, w *Warp) {
	in := &w.body[w.pc]
	lanes := w.activeLanes
	st := s.kernels[w.slot].stats
	st.WarpInstrs++
	st.ThreadInstrs += int64(lanes)
	st.NoteIssue(now)
	s.IssuedWarpInstrs++
	if s.gate != nil {
		s.gate.OnIssue(s.ID, w.slot, lanes)
	}
	sch.last = w

	switch in.Op {
	case isa.OpIAlu, isa.OpFAlu:
		st.ALUInstrs++
		s.finishCompute(now, w, s.cfg.ALULatency)
	case isa.OpSFU:
		st.SFUInstrs++
		s.finishCompute(now, w, s.cfg.SFULatency)
	case isa.OpLdShared, isa.OpStShared:
		st.SharedInstrs++
		s.finishCompute(now, w, s.cfg.SharedMemLat)
	case isa.OpBranch:
		st.Branches++
		if in.Divergent {
			// Divergence idles a deterministic per-warp fraction of
			// lanes until reconvergence at the loop back-edge.
			w.divState = rng.Hash64(w.divState)
			u := float64(w.divState>>11) / (1 << 53) // [0,1)
			frac := w.kernel.Profile.DivergenceFrac * 2 * u
			drop := int(frac * float64(s.cfg.WarpSize))
			if drop >= w.activeLanes {
				drop = w.activeLanes - 1
			}
			if drop > 0 {
				w.activeLanes -= drop
			}
		}
		s.finishCompute(now, w, s.cfg.ALULatency)
	case isa.OpBarrier:
		st.Barriers++
		w.atBarrier = true
		w.tb.BarrierWait++
		if w.tb.BarrierWait == w.tb.LiveWarps {
			s.releaseBarrier(now, w.tb)
		}
		sch.last = nil
	case isa.OpLdGlobal:
		st.GlobalLoads++
		s.memIssues++
		done := s.globalAccess(now, w, in, lanes, mem.Read)
		if s.nextDepends(w) {
			w.readyAt = done
			if done == deferredReadyAt {
				// The completion time comes from the deferred replay;
				// FlushDeferred files the warp back into the wake heap.
				s.pendMems[len(s.pendMems)-1].warp = w
			}
		} else {
			// Hit-under-miss: the warp keeps going; the MSHR is held
			// until the data returns.
			w.readyAt = now + s.cfg.IssueBackoff
		}
		s.advance(now, w)
	case isa.OpStGlobal:
		st.GlobalStores++
		s.memIssues++
		s.globalAccess(now, w, in, lanes, mem.Write)
		w.readyAt = now + s.cfg.WriteLatency // posted
		s.advance(now, w)
	}
}

// finishCompute applies result latency: the warp stalls for the full
// latency only if the next instruction consumes this result; otherwise it
// can re-issue after the pipeline backoff.
func (s *SM) finishCompute(now int64, w *Warp, lat int64) {
	if s.nextDepends(w) {
		w.readyAt = now + lat
	} else {
		w.readyAt = now + s.cfg.IssueBackoff
	}
	s.advance(now, w)
}

// nextDepends reports whether the instruction after w.pc depends on the
// current one (wrapping across the loop back-edge).
func (s *SM) nextDepends(w *Warp) bool {
	if w.pc+1 < len(w.body) {
		return w.body[w.pc+1].DependsOnPrev
	}
	if w.iter+1 >= w.kernel.Profile.Iterations {
		return false
	}
	nb := w.kernel.BodyFor(w.iter + 1)
	return nb[0].DependsOnPrev
}

// globalAccess performs the coalesced transactions of a global memory
// instruction and returns the completion time of the slowest one. In
// deferred (sharded) mode the shared memory system is not touched;
// the transactions are recorded for FlushDeferred and the returned
// completion time is the deferredReadyAt placeholder.
func (s *SM) globalAccess(now int64, w *Warp, in *isa.Instr, lanes int, kind mem.AccessKind) int64 {
	st := s.kernels[w.slot].stats
	// Scale transaction count with the active lanes.
	n := (int(in.Transactions)*lanes + s.cfg.WarpSize - 1) / s.cfg.WarpSize
	if n < 1 {
		n = 1
	}
	if s.capturing {
		return s.globalAccessDeferred(now, w, in, n, kind)
	}
	done := now + s.cfg.L1HitLatency
	missed := false
	for t := 0; t < n; t++ {
		addr := w.kernel.GlobalAddr(w.gid, w.iter, w.pc, t, in.Reuse)
		st.MemTxns++
		if kind == mem.Write {
			// Write-through, no-allocate: writes bypass the L1 tag
			// array and consume partition bandwidth (and a credit
			// until the write drains).
			c := s.memSys.Access(now, addr, mem.Write)
			s.holdTxn(w.slot, c)
			continue
		}
		st.L1Accesses++
		if s.l1.Access(addr) {
			continue // L1 hit at base latency
		}
		st.L1Misses++
		missed = true
		c := s.memSys.Access(now, addr, mem.Read)
		s.holdTxn(w.slot, c)
		if c > done {
			done = c
		}
	}
	if kind == mem.Read && missed {
		s.pushMiss(done)
	}
	return done
}

// globalAccessDeferred is globalAccess in sharded capture mode: per-SM
// effects (L1 tags, per-kernel counters, credit counts, MSHR occupancy)
// apply immediately, while accesses to the shared memory system are
// recorded for replay in the canonical serial order by FlushDeferred.
func (s *SM) globalAccessDeferred(now int64, w *Warp, in *isa.Instr, n int, kind mem.AccessKind) int64 {
	st := s.kernels[w.slot].stats
	off := len(s.pendTxns)
	missed := false
	for t := 0; t < n; t++ {
		addr := w.kernel.GlobalAddr(w.gid, w.iter, w.pc, t, in.Reuse)
		st.MemTxns++
		if kind == mem.Write {
			s.pendTxns = append(s.pendTxns, txnReq{addr: addr, kind: mem.Write})
			s.countTxn(w.slot)
			continue
		}
		st.L1Accesses++
		if s.l1.Access(addr) {
			continue // L1 hit at base latency
		}
		st.L1Misses++
		missed = true
		s.pendTxns = append(s.pendTxns, txnReq{addr: addr, kind: mem.Read})
		s.countTxn(w.slot)
	}
	if kind == mem.Read && missed {
		// The MSHR is held from issue; the completion-heap entry is
		// added at flush once the completion time is known.
		s.outstanding++
	}
	if len(s.pendTxns) == off {
		// Pure L1 traffic: the completion time is exact already.
		return now + s.cfg.L1HitLatency
	}
	s.pendMems = append(s.pendMems, memEv{
		slot: w.slot, base: now, off: off, n: len(s.pendTxns) - off, misses: missed,
	})
	return deferredReadyAt
}

// advance moves the warp past its current instruction, handling the loop
// back-edge, phase changes, reconvergence and warp completion.
func (s *SM) advance(now int64, w *Warp) {
	w.pc++
	if w.pc < len(w.body) {
		return
	}
	w.pc = 0
	w.iter++
	if w.iter >= w.kernel.Profile.Iterations {
		s.warpDone(now, w)
		return
	}
	w.body = w.kernel.BodyFor(w.iter)
	w.activeLanes = s.cfg.WarpSize // reconverge at the back-edge
}

// releaseBarrier wakes every warp of tb waiting at the barrier. The wait
// counter is cleared before advancing warps: advance may retire a warp,
// and a stale counter could otherwise re-trigger the release.
func (s *SM) releaseBarrier(now int64, tb *TB) {
	tb.BarrierWait = 0
	for _, w := range tb.Warps {
		if !w.atBarrier {
			continue
		}
		w.atBarrier = false
		w.readyAt = now + s.cfg.BarrierLat
		s.advance(now, w)
		s.enqueue(&s.scheds[w.schedIdx], w, now)
	}
	s.Wake(now + s.cfg.BarrierLat)
}

// warpDone retires a warp, possibly releasing a barrier its siblings wait
// at, and retires the TB when the last warp finishes.
func (s *SM) warpDone(now int64, w *Warp) {
	w.done = true
	sch := &s.scheds[w.schedIdx]
	s.removeReady(sch, w)
	sch.deadCnt++
	if sch.deadCnt > 16 && sch.deadCnt > len(sch.warps)/2 {
		s.compact(sch)
	}
	tb := w.tb
	tb.LiveWarps--
	if tb.LiveWarps == 0 {
		s.retireTB(now, tb)
		return
	}
	if tb.BarrierWait > 0 && tb.BarrierWait == tb.LiveWarps {
		s.releaseBarrier(now, tb)
	}
}

// retireTB frees the TB's static resources and notifies the dispatcher.
// In capture mode the notification is deferred to FlushDeferred so the
// GPU's shared launch state is only touched in the serial phase.
func (s *SM) retireTB(now int64, tb *TB) {
	s.freeTB(now, tb)
	s.kernels[tb.Slot].stats.TBsCompleted++
	if s.capturing {
		s.pendDones = append(s.pendDones, tb.Slot)
		return
	}
	if s.OnTBComplete != nil {
		s.OnTBComplete(s.ID, tb.Slot)
	}
}

// freeTB removes tb from the resident list and releases its resources.
func (s *SM) freeTB(now int64, tb *TB) {
	r := tb.Kernel.TBResources()
	s.usedThreads -= r.Threads
	s.usedRegs -= r.RegBytes
	s.usedShm -= r.ShmBytes
	s.usedTBSlots--
	s.kernels[tb.Slot].tbs--
	if s.kernels[tb.Slot].tbs == 0 {
		s.residentKernels--
		s.refreshTxnCap()
		// A larger per-kernel credit budget can unblock other kernels'
		// credit-stalled warps; force a rescan.
		s.Wake(now)
	}
	for i, t := range s.tbs {
		if t == tb {
			s.tbs = append(s.tbs[:i], s.tbs[i+1:]...)
			break
		}
	}
}

// compact drops finished warps from a scheduler's list, preserving age
// order. The ready cache and wake heap drop their references lazily.
func (s *SM) compact(sch *scheduler) {
	out := sch.warps[:0]
	for _, w := range sch.warps {
		if !w.done {
			out = append(out, w)
		}
	}
	for i := len(out); i < len(sch.warps); i++ {
		sch.warps[i] = nil
	}
	sch.warps = out
	sch.deadCnt = 0
}

// refreshTxnCap recomputes the cached per-kernel in-flight transaction
// budget: the SM total split across resident kernels, floored so a
// kernel is never locked out entirely. Called whenever the resident
// kernel count changes instead of dividing on every structural check.
// A budget change can turn a recorded credit block stale, so the
// structural-block memo is invalidated here too.
func (s *SM) refreshTxnCap() {
	n := s.residentKernels
	if n < 1 {
		n = 1
	}
	c := s.cfg.TxnFlightCapPerSM / n
	if c < 8 {
		c = 8
	}
	s.txnCapCache = c
	s.structEpoch++
}

// countTxn charges one of the slot's in-flight transaction credits
// without a completion time (capture mode; the heap entry is pushed by
// FlushDeferred once the shared memory system has been consulted).
func (s *SM) countTxn(slot int) {
	s.txnFlight[slot]++
	s.txnTotal++
}

// holdTxn charges one of the slot's in-flight transaction credits until
// time t.
func (s *SM) holdTxn(slot int, t int64) {
	pushHeap(&s.txnHeap[slot], t)
	s.txnFlight[slot]++
	s.txnTotal++
}

// ---- MSHR / credit min-heaps ----

func (s *SM) pushMiss(t int64) {
	pushHeap(&s.missHeap, t)
	s.outstanding++
}

func (s *SM) popMiss() {
	popHeap(&s.missHeap)
	s.outstanding--
}

// pushHeap inserts t into the min-heap h.
func pushHeap(h *[]int64, t int64) {
	a := append(*h, t)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

// popHeap removes the minimum of the min-heap h.
func popHeap(h *[]int64) {
	a := *h
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && a[l] < a[small] {
			small = l
		}
		if r < n && a[r] < a[small] {
			small = r
		}
		if small == i {
			break
		}
		a[i], a[small] = a[small], a[i]
		i = small
	}
	*h = a
}

// Op classes mirrored into ready-cache entries, so the scan's
// structural-block memo can classify an entry without dereferencing the
// warp context. The class describes the warp's *next* instruction; it is
// refreshed wherever readyAt is (insert and post-issue).
const (
	clsCompute = uint8(iota) // no SM-wide structural constraint
	clsLdGlobal              // port + MSHR + credit constrained
	clsStGlobal              // port + credit constrained
)

// opClass maps an opcode to its scan class.
func opClass(op isa.Op) uint8 {
	switch op {
	case isa.OpLdGlobal:
		return clsLdGlobal
	case isa.OpStGlobal:
		return clsStGlobal
	}
	return clsCompute
}

// readyEnt is one ready-cache entry: the warp plus mirrored slot, age,
// wake-time and op-class fields, so scan skip decisions read this
// contiguous slice instead of dereferencing scattered warp contexts.
// The mirrors are exact: every path that changes the warp's readyAt or
// advances its pc while the entry is cached refreshes them.
type readyEnt struct {
	w       *Warp
	age     int64
	readyAt int64
	slot    int32
	cls     uint8
}

// ---- wake-time min-heap (warp pointer payload) ----

// wakeEnt is one sleeping warp and the cycle its readyAt passes. Entries
// can go stale (the warp finished or was preempted while asleep); the
// pop loop in pick validates against the warp's live state.
type wakeEnt struct {
	at int64
	w  *Warp
}

// pushWake inserts e into the min-heap h (ordered by wake time).
func pushWake(h *[]wakeEnt, e wakeEnt) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].at <= a[i].at {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

// popWake removes the minimum of the min-heap h.
func popWake(h *[]wakeEnt) {
	a := *h
	n := len(a) - 1
	a[0] = a[n]
	a[n] = wakeEnt{}
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && a[l].at < a[small].at {
			small = l
		}
		if r < n && a[r].at < a[small].at {
			small = r
		}
		if small == i {
			break
		}
		a[i], a[small] = a[small], a[i]
		i = small
	}
	*h = a
}
