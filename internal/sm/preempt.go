package sm

// PreemptTB performs a partial context switch: it selects one resident TB
// of the given kernel slot, saves its architectural state and removes it
// from the SM. It returns the saved context and the number of context
// bytes moved (the preemption engine charges the time cost). The newest TB
// of the kernel is chosen so older TBs run to completion, minimizing
// wasted work — the paper swaps "idle TBs" when possible; a TB whose warps
// are all blocked is preferred over one actively issuing.
//
// ok is false when the kernel has no resident TB on this SM.
func (s *SM) PreemptTB(now int64, slot int) (ctx *TBContext, ctxBytes int, ok bool) {
	var victim *TB
	for i := len(s.tbs) - 1; i >= 0; i-- {
		tb := s.tbs[i]
		if tb.Slot != slot {
			continue
		}
		if victim == nil {
			victim = tb
		}
		// Prefer a TB with no warp ready to issue ("idle TB").
		if s.tbIdle(now, tb) {
			victim = tb
			break
		}
	}
	if victim == nil {
		return nil, 0, false
	}
	s.settleIdle()
	s.idleUntil = 0
	ctx = &TBContext{
		Kernel:  victim.Kernel,
		Slot:    victim.Slot,
		GridIdx: victim.GridIdx,
		Warps:   make([]WarpState, len(victim.Warps)),
	}
	for i, w := range victim.Warps {
		ctx.Warps[i] = WarpState{
			PC:          w.pc,
			Iter:        w.iter,
			ActiveLanes: w.activeLanes,
			AtBarrier:   w.atBarrier,
			Done:        w.done,
			DivState:    w.divState,
		}
		if !w.done {
			// Stop the warp. The age-ordered scheduler list compacts
			// lazily; the ready cache is purged now so scans never see
			// a dead warp, and any wake-heap entry drops at pop.
			w.done = true
			sch := &s.scheds[w.schedIdx]
			s.removeReady(sch, w)
			sch.deadCnt++
		}
		w.atBarrier = false
	}
	victim.LiveWarps = 0
	victim.BarrierWait = 0
	s.freeTB(now, victim)
	s.kernels[slot].stats.TBsPreempted++
	ctxBytes = victim.Kernel.TBResources().CtxBytes
	s.tracer.TBPreempt(now, s.ID, slot, victim.GridIdx, ctxBytes)
	return ctx, ctxBytes, true
}

// tbIdle reports whether no warp of tb can issue right now.
func (s *SM) tbIdle(now int64, tb *TB) bool {
	for _, w := range tb.Warps {
		if !w.done && !w.atBarrier && w.readyAt <= now {
			return false
		}
	}
	return true
}

// DrainAll preempts every resident TB (used by the spatial-partitioning
// baseline when an SM changes owner). Contexts are returned in eviction
// order together with the total context bytes moved.
func (s *SM) DrainAll(now int64) (ctxs []*TBContext, bytes int) {
	for len(s.tbs) > 0 {
		slot := s.tbs[len(s.tbs)-1].Slot
		ctx, b, ok := s.PreemptTB(now, slot)
		if !ok {
			break
		}
		ctxs = append(ctxs, ctx)
		bytes += b
	}
	if len(ctxs) > 0 {
		s.tracer.SMDrain(now, s.ID, len(ctxs), bytes)
	}
	return ctxs, bytes
}

// SampleIdleWarps counts, per kernel slot, warps that are ready to issue
// but exceed the SM's issue capacity this cycle — the paper's "idle
// warps" (IWs), Section 3.6. Quota-throttled warps are excluded: they are
// idle because of dynamic management, not because of excessive TLP.
// Counts are accumulated into out (len >= number of slots).
func (s *SM) SampleIdleWarps(now int64, out []int64) {
	if now < s.BlockedUntil {
		return
	}
	ready := s.sampleScratch
	for i := range ready {
		ready[i] = 0
	}
	total := 0
	for i := range s.scheds {
		for _, w := range s.scheds[i].warps {
			if w.done || w.atBarrier || w.readyAt > now {
				continue
			}
			if s.gate != nil && !s.gate.CanIssue(s.ID, w.slot) {
				continue
			}
			ready[w.slot]++
			total++
		}
	}
	excess := total - s.cfg.WarpSchedulers
	if excess <= 0 {
		return
	}
	// Attribute the excess proportionally to each kernel's ready share.
	for slot, r := range ready {
		out[slot] += int64(excess * r / total)
	}
}

// CheckInvariants validates SM-level structural invariants for tests:
// resource accounting matches resident TBs and no freed warp remains
// live. It returns a non-empty description on violation.
func (s *SM) CheckInvariants() string {
	threads, regs, shm := 0, 0, 0
	perKernel := make([]int, len(s.kernels))
	for _, tb := range s.tbs {
		r := tb.Kernel.TBResources()
		threads += r.Threads
		regs += r.RegBytes
		shm += r.ShmBytes
		perKernel[tb.Slot]++
	}
	switch {
	case threads != s.usedThreads:
		return "thread accounting mismatch"
	case regs != s.usedRegs:
		return "register accounting mismatch"
	case shm != s.usedShm:
		return "shared-memory accounting mismatch"
	case len(s.tbs) != s.usedTBSlots:
		return "TB slot accounting mismatch"
	case s.usedThreads > s.cfg.MaxThreadsPerSM:
		return "thread limit exceeded"
	case s.usedRegs > s.cfg.RegFileBytes:
		return "register file exceeded"
	case s.usedShm > s.cfg.SharedMemBytes:
		return "shared memory exceeded"
	case s.usedTBSlots > s.cfg.MaxTBsPerSM:
		return "TB slots exceeded"
	}
	for slot := range s.kernels {
		if perKernel[slot] != s.kernels[slot].tbs {
			return "per-kernel TB count mismatch"
		}
	}
	for _, tb := range s.tbs {
		live := 0
		bar := 0
		for _, w := range tb.Warps {
			if !w.done {
				live++
			}
			if w.atBarrier {
				bar++
			}
		}
		if live != tb.LiveWarps {
			return "live warp count mismatch"
		}
		if bar != tb.BarrierWait {
			return "barrier wait count mismatch"
		}
	}
	return ""
}
