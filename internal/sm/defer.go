package sm

import "repro/internal/mem"

// Sharded stepping splits a GPU cycle into a parallel phase A, where
// every SM runs Cycle touching only its own state, and a serial phase B,
// where each SM replays its captured shared-state effects in the same
// canonical SM order a serial run steps them in. Because the memory
// system is consulted only in phase B, and in the identical global call
// order, the sharded run is bit-identical to serial.

// txnReq is one deferred memory-system transaction.
type txnReq struct {
	addr uint64
	kind mem.AccessKind
}

// memEv groups the deferred transactions of one global-memory
// instruction: pendTxns[off:off+n], issued at cycle base by a warp of
// the given slot. warp is non-nil only when the issuing warp stalled on
// the placeholder completion time and must be re-filed once the real
// time is known. misses records that at least one read missed L1 (an
// MSHR was reserved at issue; the completion-heap entry is added here).
type memEv struct {
	slot   int
	warp   *Warp
	base   int64
	off, n int
	misses bool
}

// FlushDeferred replays the shared-state effects captured by the last
// Cycle in deferred mode: quota-stall trace edges, memory-system
// transactions (fixing up the issuing warps' wake times), and TB-retire
// notifications — in that order, which matches the order a serial Cycle
// interleaves them in (the gate loop precedes the scheduler loop, and
// within the scheduler loop accesses and retires touch disjoint shared
// state). The caller must invoke it for each SM in the same SM order
// the serial stepper uses.
func (s *SM) FlushDeferred(now int64) {
	for _, slot := range s.pendStalls {
		s.tracer.GateStall(now, s.ID, slot, -1)
	}
	s.pendStalls = s.pendStalls[:0]

	for i := range s.pendMems {
		ev := &s.pendMems[i]
		done := ev.base + s.cfg.L1HitLatency
		for _, tr := range s.pendTxns[ev.off : ev.off+ev.n] {
			c := s.memSys.Access(ev.base, tr.addr, tr.kind)
			// The credit was charged at issue; only the release time
			// was missing.
			pushHeap(&s.txnHeap[ev.slot], c)
			if tr.kind == mem.Read && c > done {
				done = c
			}
		}
		if ev.misses {
			// The MSHR was reserved at issue (outstanding++); file the
			// completion time.
			pushHeap(&s.missHeap, done)
		}
		if w := ev.warp; w != nil && !w.done && !w.atBarrier && w.readyAt == deferredReadyAt {
			w.readyAt = done
			sch := &s.scheds[w.schedIdx]
			s.enqueue(sch, w, now)
			if sch.nextWake > done {
				sch.nextWake = done
			}
		}
	}
	s.pendMems = s.pendMems[:0]
	s.pendTxns = s.pendTxns[:0]

	for _, slot := range s.pendDones {
		if s.OnTBComplete != nil {
			s.OnTBComplete(s.ID, slot)
		}
	}
	s.pendDones = s.pendDones[:0]
}
