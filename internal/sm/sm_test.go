package sm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// tinyCfg shrinks the device so single-SM tests stay fast.
func tinyCfg() config.GPU {
	cfg := config.Base()
	cfg.NumSMs = 1
	return cfg
}

// computeProfile is an ALU-only kernel: no memory, no barriers, so its
// execution time is a pure function of issue bandwidth and latencies.
func computeProfile() kern.Profile {
	return kern.Profile{
		Name: "alu", Class: kern.ClassCompute,
		BodyInstrs: 16, Iterations: 4,
		DepDensity:     0,
		CoalesceDegree: 1, ReuseFrac: 0,
		HotBytes: 1 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, SharedMemPerTB: 0, GridTBs: 4,
	}
}

func memProfile() kern.Profile {
	p := computeProfile()
	p.Name = "mem"
	p.Class = kern.ClassMemory
	p.FracGlobalMem = 0.5
	p.FracStore = 0.2
	p.ReuseFrac = 0
	return p
}

func barrierProfile() kern.Profile {
	p := computeProfile()
	p.Name = "barrier"
	p.BarrierEvery = 8
	return p
}

func newSM(t *testing.T, cfg config.GPU, profiles ...kern.Profile) (*SM, []*kern.Kernel, []*metrics.KernelStats) {
	t.Helper()
	s := New(0, cfg, mem.New(cfg))
	kernels := make([]*kern.Kernel, len(profiles))
	stats := make([]*metrics.KernelStats, len(profiles))
	for i, p := range profiles {
		k, err := kern.Build(i, p, 42)
		if err != nil {
			t.Fatal(err)
		}
		kernels[i] = k
		stats[i] = &metrics.KernelStats{}
	}
	s.Configure(kernels, stats, nil)
	return s, kernels, stats
}

func runSM(s *SM, from, to int64) {
	for now := from; now < to; now++ {
		s.Cycle(now)
	}
}

func TestDispatchAccounting(t *testing.T) {
	s, ks, _ := newSM(t, tinyCfg(), computeProfile())
	r := ks[0].TBResources()
	tb := s.Dispatch(0, 0, 0, nil)
	if tb == nil || tb.LiveWarps != 2 {
		t.Fatalf("dispatched TB has %d live warps, want 2", tb.LiveWarps)
	}
	if s.UsedThreads() != r.Threads || s.ResidentTBs(0) != 1 {
		t.Fatal("resource accounting wrong after dispatch")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestFreeForHonoursResources(t *testing.T) {
	cfg := tinyCfg()
	s, _, _ := newSM(t, cfg, computeProfile())
	n := 0
	for s.FreeFor(0) {
		s.Dispatch(0, 0, n, nil)
		n++
		if n > 100 {
			t.Fatal("FreeFor never became false")
		}
	}
	// 64-thread TBs on a 2048-thread SM, 16 regs/thread on 256KB: the
	// thread limit binds first at 32 TB slots.
	if n != cfg.MaxTBsPerSM {
		t.Fatalf("admitted %d TBs, want %d (TB-slot limited)", n, cfg.MaxTBsPerSM)
	}
}

func TestFreeForHonoursCap(t *testing.T) {
	s, _, _ := newSM(t, tinyCfg(), computeProfile())
	s.SetTBCap(0, 2)
	s.Dispatch(0, 0, 0, nil)
	s.Dispatch(0, 0, 1, nil)
	if s.FreeFor(0) {
		t.Fatal("FreeFor ignores the TB cap")
	}
	if !s.RoomWithoutCap(0) {
		t.Fatal("RoomWithoutCap should ignore the cap")
	}
}

func TestKernelRunsToCompletion(t *testing.T) {
	s, ks, stats := newSM(t, tinyCfg(), computeProfile())
	completed := 0
	s.OnTBComplete = func(smID, slot int) { completed++ }
	for i := 0; i < 4; i++ {
		s.Dispatch(0, 0, i, nil)
	}
	runSM(s, 0, 20_000)
	if completed != 4 {
		t.Fatalf("%d TBs completed, want 4", completed)
	}
	wantInstrs := ks[0].InstrsPerThread() * int64(ks[0].Profile.ThreadsPerTB) * 4
	if stats[0].ThreadInstrs != wantInstrs {
		t.Fatalf("executed %d thread instrs, want %d", stats[0].ThreadInstrs, wantInstrs)
	}
	if s.ResidentTBs(0) != 0 || s.UsedThreads() != 0 {
		t.Fatal("resources not released after completion")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestBarrierKernelCompletes(t *testing.T) {
	s, _, stats := newSM(t, tinyCfg(), barrierProfile())
	done := 0
	s.OnTBComplete = func(int, int) { done++ }
	s.Dispatch(0, 0, 0, nil)
	runSM(s, 0, 50_000)
	if done != 1 {
		t.Fatalf("barrier kernel did not finish (%d barriers executed)", stats[0].Barriers)
	}
	if stats[0].Barriers == 0 {
		t.Fatal("no barriers executed")
	}
}

func TestMemKernelCompletes(t *testing.T) {
	s, _, stats := newSM(t, tinyCfg(), memProfile())
	done := 0
	s.OnTBComplete = func(int, int) { done++ }
	s.Dispatch(0, 0, 0, nil)
	runSM(s, 0, 200_000)
	if done != 1 {
		t.Fatal("memory kernel did not finish")
	}
	if stats[0].MemTxns == 0 || stats[0].L1Accesses == 0 {
		t.Fatalf("memory counters empty: %+v", stats[0])
	}
	if s.Outstanding() != 0 {
		t.Fatal("MSHRs leaked after completion")
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() int64 {
		s, _, stats := newSM(t, tinyCfg(), memProfile(), barrierProfile())
		s.Dispatch(0, 0, 0, nil)
		s.Dispatch(0, 1, 0, nil)
		runSM(s, 0, 30_000)
		return stats[0].ThreadInstrs*1_000_003 + stats[1].ThreadInstrs
	}
	if run() != run() {
		t.Fatal("identical runs diverged")
	}
}

func TestIssueBoundedBySchedulers(t *testing.T) {
	cfg := tinyCfg()
	s, _, stats := newSM(t, cfg, computeProfile())
	for i := 0; i < 4; i++ {
		s.Dispatch(0, 0, i, nil)
	}
	const cycles = 5_000
	runSM(s, 0, cycles)
	if stats[0].WarpInstrs > int64(cycles*cfg.WarpSchedulers) {
		t.Fatalf("issued %d warp instrs in %d cycles with %d schedulers",
			stats[0].WarpInstrs, cycles, cfg.WarpSchedulers)
	}
}

func TestQuotaGateThrottles(t *testing.T) {
	s, _, stats := newSM(t, tinyCfg(), computeProfile())
	gate := &fixedGate{allow: false}
	s.SetGate(gate)
	s.Dispatch(0, 0, 0, nil)
	runSM(s, 0, 2_000)
	if stats[0].ThreadInstrs != 0 {
		t.Fatal("gated kernel executed instructions")
	}
	if stats[0].ThrottledCycles == 0 {
		t.Fatal("throttled cycles not counted")
	}
	gate.allow = true
	s.Wake(2_000)
	runSM(s, 2_000, 4_000)
	if stats[0].ThreadInstrs == 0 {
		t.Fatal("kernel did not resume after the gate opened")
	}
	if gate.issued == 0 {
		t.Fatal("OnIssue not called")
	}
}

// fixedGate is a QuotaGate with a global switch.
type fixedGate struct {
	allow  bool
	issued int64
}

func (g *fixedGate) CanIssue(smID, slot int) bool { return g.allow }
func (g *fixedGate) OnIssue(smID, slot, n int)    { g.issued += int64(n) }

func TestPreemptAndResumeSameWork(t *testing.T) {
	total := func(preempt bool) int64 {
		p := barrierProfile()
		p.Iterations = 64 // long enough to still be running at preemption
		s, _, stats := newSM(t, tinyCfg(), p)
		s.Dispatch(0, 0, 0, nil)
		runSM(s, 0, 300)
		if preempt {
			ctx, bytes, ok := s.PreemptTB(300, 0)
			if !ok || bytes <= 0 {
				t.Fatal("preemption failed")
			}
			if s.ResidentTBs(0) != 0 {
				t.Fatal("TB still resident after preemption")
			}
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatal(msg)
			}
			tb := s.Dispatch(400, 0, ctx.GridIdx, ctx)
			if tb.LiveWarps == 0 {
				t.Fatal("resumed TB has no live warps")
			}
		}
		runSM(s, 400, 60_000)
		return stats[0].ThreadInstrs
	}
	if total(true) != total(false) {
		t.Fatal("preempt+resume changed the total work executed")
	}
}

func TestPreemptMidBarrier(t *testing.T) {
	s, _, _ := newSM(t, tinyCfg(), barrierProfile())
	s.Dispatch(0, 0, 0, nil)
	// Find a moment when some warp waits at a barrier, then preempt.
	preempted := false
	for now := int64(0); now < 5_000 && !preempted; now++ {
		s.Cycle(now)
		if len(s.tbs) > 0 && s.tbs[0].BarrierWait > 0 {
			ctx, _, ok := s.PreemptTB(now, 0)
			if !ok {
				t.Fatal("preempt failed mid-barrier")
			}
			bar := 0
			for _, w := range ctx.Warps {
				if w.AtBarrier {
					bar++
				}
			}
			if bar == 0 {
				t.Fatal("saved context lost barrier state")
			}
			tb := s.Dispatch(now+10, 0, ctx.GridIdx, ctx)
			if tb.BarrierWait != bar {
				t.Fatalf("restored BarrierWait = %d, want %d", tb.BarrierWait, bar)
			}
			preempted = true
		}
	}
	if !preempted {
		t.Skip("no barrier wait observed in window")
	}
	done := 0
	s.OnTBComplete = func(int, int) { done++ }
	runSM(s, 5_010, 80_000)
	if done != 1 {
		t.Fatal("TB resumed mid-barrier never completed")
	}
}

func TestPreemptEmptyKernel(t *testing.T) {
	s, _, _ := newSM(t, tinyCfg(), computeProfile())
	if _, _, ok := s.PreemptTB(0, 0); ok {
		t.Fatal("preempted a TB from an empty kernel")
	}
}

func TestDrainAll(t *testing.T) {
	s, _, _ := newSM(t, tinyCfg(), computeProfile(), memProfile())
	s.Dispatch(0, 0, 0, nil)
	s.Dispatch(0, 0, 1, nil)
	s.Dispatch(0, 1, 0, nil)
	ctxs, bytes := s.DrainAll(10)
	if len(ctxs) != 3 || bytes <= 0 {
		t.Fatalf("drained %d contexts (%d bytes), want 3", len(ctxs), bytes)
	}
	if s.ResidentTBs(0)+s.ResidentTBs(1) != 0 {
		t.Fatal("TBs remain after DrainAll")
	}
}

func TestDeferTB(t *testing.T) {
	s, _, stats := newSM(t, tinyCfg(), computeProfile())
	tb := s.Dispatch(0, 0, 0, nil)
	s.DeferTB(tb, 1_000)
	runSM(s, 0, 999)
	if stats[0].ThreadInstrs != 0 {
		t.Fatal("deferred TB executed before its start time")
	}
	runSM(s, 999, 3_000)
	if stats[0].ThreadInstrs == 0 {
		t.Fatal("deferred TB never started")
	}
}

func TestSampleIdleWarpsExcess(t *testing.T) {
	s, _, _ := newSM(t, tinyCfg(), computeProfile())
	for i := 0; i < 8; i++ {
		s.Dispatch(0, 0, i, nil)
	}
	// At time 0 every warp is ready; with 4 schedulers the excess is
	// 16 warps - 4 slots = 12.
	out := make([]int64, 1)
	s.SampleIdleWarps(0, out)
	if out[0] != 12 {
		t.Fatalf("idle warps = %d, want 12", out[0])
	}
}

func TestBlockedSMDoesNothing(t *testing.T) {
	s, _, stats := newSM(t, tinyCfg(), computeProfile())
	s.Dispatch(0, 0, 0, nil)
	s.BlockedUntil = 500
	runSM(s, 0, 500)
	if stats[0].ThreadInstrs != 0 {
		t.Fatal("blocked SM issued instructions")
	}
	runSM(s, 500, 2_000)
	if stats[0].ThreadInstrs == 0 {
		t.Fatal("SM never resumed after BlockedUntil")
	}
}

func TestConfigureAfterDispatchPanics(t *testing.T) {
	s, ks, stats := newSM(t, tinyCfg(), computeProfile())
	s.Dispatch(0, 0, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Configure after dispatch did not panic")
		}
	}()
	s.Configure(ks, stats, nil)
}

func TestHeapOrdering(t *testing.T) {
	var h []int64
	in := []int64{5, 3, 9, 1, 7, 1, 8, 2}
	for _, v := range in {
		pushHeap(&h, v)
	}
	prev := int64(-1 << 62)
	for len(h) > 0 {
		if h[0] < prev {
			t.Fatalf("heap order violated: %d after %d", h[0], prev)
		}
		prev = h[0]
		popHeap(&h)
	}
}

func TestMSHRBound(t *testing.T) {
	cfg := tinyCfg()
	cfg.MSHRsPerSM = 4
	p := memProfile()
	p.FracStore = 0 // loads only
	p.GridTBs = 8
	s, _, _ := newSM(t, cfg, p)
	for i := 0; i < 8; i++ {
		s.Dispatch(0, 0, i, nil)
	}
	for now := int64(0); now < 5_000; now++ {
		s.Cycle(now)
		if s.Outstanding() > cfg.MSHRsPerSM {
			t.Fatalf("outstanding misses %d exceed MSHR cap %d", s.Outstanding(), cfg.MSHRsPerSM)
		}
	}
}
