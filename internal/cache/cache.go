// Package cache implements the set-associative caches used for the per-SM
// L1 data cache and the per-partition L2 slices.
//
// The model is a timing-free tag array: Access looks up a line, fills it
// on a miss (allocate-on-miss with LRU replacement), and reports hit or
// miss. Latency and bandwidth are charged by the caller (sm and mem), so
// the cache itself only has to be a correct and fast tag store.
package cache

import (
	"fmt"

	"repro/internal/config"
)

// Stats accumulates access counters for the power model and reports.
type Stats struct {
	Accesses int64
	Misses   int64
	Evicts   int64
}

// HitRate returns hits/accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Accesses-s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, allocate-on-miss tag array with true-LRU
// replacement. It is not safe for concurrent use; the simulator is
// single-threaded by design (deterministic cycle loop).
type Cache struct {
	cfg       config.Cache
	sets      int
	assoc     int
	lineShift uint
	setMask   uint64

	// tags[set*assoc+way]; valid bit is folded into tags via tag|1<<63
	// being impossible for our 50-bit address space, so we use tag==0 as
	// invalid only if never filled; an explicit valid slice is clearer
	// and costs one byte per line.
	tags  []uint64
	valid []bool
	// lruTick[idx] is the last-touch timestamp; the way with the lowest
	// tick in a set is the LRU victim. A uint32 wrap after 4G accesses
	// per cache would only perturb replacement, not correctness, but we
	// use uint64 to keep the invariant exact.
	lruTick []uint64
	tick    uint64

	Stats Stats
}

// New builds a cache from its geometry. It panics on invalid geometry;
// config.Validate should have been called first.
func New(cfg config.Cache) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	sets := cfg.Sets()
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	n := sets * cfg.Assoc
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		assoc:     cfg.Assoc,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		lruTick:   make([]uint64, n),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() config.Cache { return c.cfg }

// Access probes the cache for addr, filling the line on a miss. It
// returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.Stats.Accesses++
	c.tick++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> 0 // full line number doubles as the tag
	base := set * c.assoc

	victim := base
	victimTick := ^uint64(0)
	for i := base; i < base+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.lruTick[i] = c.tick
			return true
		}
		if !c.valid[i] {
			// Prefer an invalid way as the fill target.
			if victimTick != 0 {
				victim, victimTick = i, 0
			}
		} else if c.lruTick[i] < victimTick {
			victim, victimTick = i, c.lruTick[i]
		}
	}
	c.Stats.Misses++
	if c.valid[victim] {
		c.Stats.Evicts++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.lruTick[victim] = c.tick
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// filling. Used by tests and invariant checks.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line. Statistics are preserved.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Resident returns the number of valid lines (for tests/invariants).
func (c *Cache) Resident() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// CheckInvariants verifies structural invariants: no duplicate tags within
// a set and victim bookkeeping in range. It returns an error description
// or "" when healthy. Exposed for property-based tests.
func (c *Cache) CheckInvariants() string {
	for s := 0; s < c.sets; s++ {
		base := s * c.assoc
		seen := make(map[uint64]bool, c.assoc)
		for i := base; i < base+c.assoc; i++ {
			if !c.valid[i] {
				continue
			}
			if seen[c.tags[i]] {
				return fmt.Sprintf("duplicate tag %#x in set %d", c.tags[i], s)
			}
			seen[c.tags[i]] = true
			if int(c.tags[i]&c.setMask) != s {
				return fmt.Sprintf("tag %#x resident in wrong set %d", c.tags[i], s)
			}
		}
	}
	return ""
}
