package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func small() *Cache {
	return New(config.Cache{SizeBytes: 2048, LineBytes: 128, Assoc: 2}) // 8 sets
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Fatal("cold access reported a hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access to same line missed")
	}
	if !c.Access(0x1000 + 127) {
		t.Fatal("access within the same 128B line missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (8 sets * 128B line = 1KB stride).
	a, b, d := uint64(0), uint64(1024), uint64(2048)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	if c.Access(d) {
		t.Fatal("d should miss")
	}
	// d must have evicted b, not a.
	if !c.Probe(a) {
		t.Fatal("LRU evicted the MRU line")
	}
	if c.Probe(b) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Probe(d) {
		t.Fatal("filled line not resident")
	}
	if c.Stats.Evicts != 1 {
		t.Fatalf("evicts = %d, want 1", c.Stats.Evicts)
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := small()
	c.Access(0)
	c.Access(1024) // set now [0,1024], LRU=0
	c.Probe(0)     // must NOT refresh 0's recency
	c.Access(2048) // evicts true LRU: 0
	if c.Probe(0) {
		t.Fatal("Probe refreshed LRU state")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	for i := uint64(0); i < 16; i++ {
		c.Access(i * 128)
	}
	if c.Resident() == 0 {
		t.Fatal("nothing resident after fills")
	}
	c.Flush()
	if c.Resident() != 0 {
		t.Fatal("lines survive Flush")
	}
	if c.Access(0) {
		t.Fatal("hit after Flush")
	}
}

func TestCapacityBound(t *testing.T) {
	c := small()
	for i := uint64(0); i < 1000; i++ {
		c.Access(i * 128)
	}
	if got := c.Resident(); got > 16 {
		t.Fatalf("%d lines resident, capacity is 16", got)
	}
}

func TestHitRate(t *testing.T) {
	c := small()
	c.Access(0)
	c.Access(0)
	c.Access(0)
	c.Access(128)
	if got := c.Stats.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}

func TestWorkingSetFitsAllHitsSteadyState(t *testing.T) {
	c := New(config.Cache{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 4})
	// 16KB working set in a 32KB cache: after the first pass, all hits.
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 16<<10; a += 128 {
			c.Access(a)
		}
	}
	total := c.Stats.Accesses
	if c.Stats.Misses != 128 { // exactly one cold miss per line
		t.Fatalf("misses = %d of %d, want 128 cold misses only", c.Stats.Misses, total)
	}
}

func TestInvariantsUnderRandomStream(t *testing.T) {
	c := New(config.Cache{SizeBytes: 8 << 10, LineBytes: 128, Assoc: 4})
	src := rng.New(2024)
	for i := 0; i < 50000; i++ {
		c.Access(src.Uint64() % (1 << 20))
		if i%5000 == 0 {
			if msg := c.CheckInvariants(); msg != "" {
				t.Fatalf("invariant violated after %d accesses: %s", i, msg)
			}
		}
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestQuickHitAfterFill(t *testing.T) {
	c := New(config.Cache{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 8})
	f := func(addr uint64) bool {
		addr %= 1 << 40
		c.Access(addr)
		return c.Probe(addr) // immediately after a fill the line is resident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnInvalidGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid geometry")
		}
	}()
	New(config.Cache{SizeBytes: 1000, LineBytes: 100, Assoc: 3})
}
