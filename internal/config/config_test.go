package config

import "testing"

func TestBaseIsValid(t *testing.T) {
	if err := Base().Validate(); err != nil {
		t.Fatalf("Base() invalid: %v", err)
	}
}

func TestScale56IsValid(t *testing.T) {
	g := Scale56()
	if err := g.Validate(); err != nil {
		t.Fatalf("Scale56() invalid: %v", err)
	}
	if g.NumSMs != 56 || g.WarpSchedulers != 2 {
		t.Fatalf("Scale56 = %d SMs / %d schedulers, want 56/2", g.NumSMs, g.WarpSchedulers)
	}
}

func TestBaseMatchesTable1(t *testing.T) {
	g := Base()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"NumSMs", g.NumSMs, 16},
		{"MCs", g.NumMemControllers, 4},
		{"CoreClockMHz", g.CoreClockMHz, 1216},
		{"MemClockMHz", g.MemClockMHz, 7000},
		{"RegFileKB", g.RegFileBytes >> 10, 256},
		{"SharedMemKB", g.SharedMemBytes >> 10, 96},
		{"Threads", g.MaxThreadsPerSM, 2048},
		{"TBLimit", g.MaxTBsPerSM, 32},
		{"WarpSchedulers", g.WarpSchedulers, 4},
		{"EpochLength", int(g.EpochLength), 10_000},
		{"IdleWarpSamples", g.IdleWarpSamples, 100},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("Table 1 mismatch %s: got %d want %d", c.name, c.got, c.want)
		}
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*GPU)
	}{
		{"zero SMs", func(g *GPU) { g.NumSMs = 0 }},
		{"zero schedulers", func(g *GPU) { g.WarpSchedulers = 0 }},
		{"warp size 0", func(g *GPU) { g.WarpSize = 0 }},
		{"warp size 128", func(g *GPU) { g.WarpSize = 128 }},
		{"threads not warp multiple", func(g *GPU) { g.MaxThreadsPerSM = 2047 }},
		{"zero TB slots", func(g *GPU) { g.MaxTBsPerSM = 0 }},
		{"zero MCs", func(g *GPU) { g.NumMemControllers = 0 }},
		{"zero epoch", func(g *GPU) { g.EpochLength = 0 }},
		{"zero samples", func(g *GPU) { g.IdleWarpSamples = 0 }},
		{"samples exceed epoch", func(g *GPU) { g.IdleWarpSamples = int(g.EpochLength) + 1 }},
		{"zero MSHRs", func(g *GPU) { g.MSHRsPerSM = 0 }},
		{"zero mem ports", func(g *GPU) { g.MemPortsPerSM = 0 }},
		{"zero txn credits", func(g *GPU) { g.TxnFlightCapPerSM = 0 }},
		{"zero regfile", func(g *GPU) { g.RegFileBytes = 0 }},
		{"zero ctx bandwidth", func(g *GPU) { g.CtxSaveBWBytes = 0 }},
		{"odd L1 line", func(g *GPU) { g.L1.LineBytes = 100 }},
		{"L2 set count not pow2", func(g *GPU) { g.L2.SizeBytes = 3 * g.L2.LineBytes * g.L2.Assoc }},
	}
	for _, m := range muts {
		g := Base()
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", m.name)
		}
	}
}

func TestCacheGeometry(t *testing.T) {
	c := Cache{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 4}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Sets(); got != 64 {
		t.Fatalf("Sets() = %d, want 64", got)
	}
}

func TestDerivedLimits(t *testing.T) {
	g := Base()
	if got := g.MaxWarpsPerSM(); got != 64 {
		t.Fatalf("MaxWarpsPerSM = %d, want 64", got)
	}
	if got := g.PeakIssuePerCycle(); got != 64 {
		t.Fatalf("PeakIssuePerCycle = %d, want 64", got)
	}
}
