// Package config defines the simulated GPU configuration.
//
// The defaults in Base mirror Table 1 of the paper (ISCA'17): 16 SMs with
// four GTO warp schedulers each, 256KB of registers, 96KB of shared memory,
// 2048 threads and 32 thread blocks per SM, and 4 memory controllers each
// with an L2 slice. Scale56 is the 56-SM configuration used in the paper's
// scalability study (Section 4.6).
package config

import (
	"errors"
	"fmt"
)

// Cache describes one set-associative cache.
type Cache struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size
	Assoc     int // ways per set
}

// Sets returns the number of sets implied by the geometry.
func (c Cache) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate reports whether the cache geometry is internally consistent.
func (c Cache) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return errors.New("config: cache dimensions must be positive")
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("config: line size %d is not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("config: size %d not divisible by line*assoc", c.SizeBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("config: set count %d is not a power of two", c.Sets())
	}
	return nil
}

// GPU holds every architectural parameter of the simulated device.
type GPU struct {
	// Core organization (Table 1).
	NumSMs         int // streaming multiprocessors
	WarpSchedulers int // warp schedulers per SM
	WarpSize       int // threads per warp (SIMD width)

	// Per-SM static resources (Table 1).
	RegFileBytes    int // register file per SM (256KB)
	SharedMemBytes  int // shared memory per SM (96KB)
	MaxThreadsPerSM int // thread limit per SM (2048)
	MaxTBsPerSM     int // thread-block slots per SM (32)

	// Clocks, used only to translate between wall time and cycles when
	// converting application QoS goals (Section 3.2).
	CoreClockMHz int
	MemClockMHz  int

	// Memory system.
	NumMemControllers  int   // memory partitions, each with an L2 slice
	L1                 Cache // per-SM L1 data cache
	L2                 Cache // per-partition L2 slice
	L1HitLatency       int64 // cycles from issue to L1 hit data
	L2HitLatency       int64 // additional cycles at the partition for an L2 hit
	InterconnectDelay  int64 // one-way SM <-> partition latency
	DRAMRowHitLatency  int64 // DRAM access, row buffer hit
	DRAMRowMissLatency int64 // DRAM access, row buffer miss (activate+precharge)
	DRAMBanksPerMC     int   // banks per controller (row-buffer interleaving)
	MCServiceInterval  int64 // cycles between requests a controller can accept
	WriteLatency       int64 // latency charged to a warp for a store (posted)
	MSHRsPerSM         int   // max outstanding global-memory misses per SM
	MemPortsPerSM      int   // LD/ST instructions issuable per SM per cycle
	TxnFlightCapPerSM  int   // max in-flight 128B transactions per SM

	// Execution latencies by instruction class.
	ALULatency   int64 // integer/single-precision result latency
	SFULatency   int64 // special function unit result latency
	SharedMemLat int64 // shared-memory (scratchpad) access latency
	BarrierLat   int64 // cycles to release a barrier once all warps arrive
	IssueBackoff int64 // pipeline re-issue interval for independent instrs

	// QoS management (Section 3.3/4.1).
	EpochLength     int64 // quota epoch in cycles (10K in the paper)
	IdleWarpSamples int   // idle-warp samples per epoch (100 in the paper)

	// Preemption engine (partial context switch, Section 3.6/4.8).
	CtxBytesPerThread int   // architectural context per thread (regs + meta)
	CtxSaveBWBytes    int   // bytes/cycle the preemption engine can move
	KernelLaunchDelay int64 // cycles to relaunch a drained kernel

	// Spatial partitioning baseline (Spart).
	SpartDecisionEpochs int   // hill-climbing period, in quota epochs
	SMDrainPenalty      int64 // extra cycles to drain+switch one whole SM
}

// Base returns the paper's Table 1 configuration.
func Base() GPU {
	return GPU{
		NumSMs:         16,
		WarpSchedulers: 4,
		WarpSize:       32,

		RegFileBytes:    256 << 10,
		SharedMemBytes:  96 << 10,
		MaxThreadsPerSM: 2048,
		MaxTBsPerSM:     32,

		CoreClockMHz: 1216,
		MemClockMHz:  7000,

		NumMemControllers:  4,
		L1:                 Cache{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 4},
		L2:                 Cache{SizeBytes: 512 << 10, LineBytes: 128, Assoc: 8},
		L1HitLatency:       28,
		L2HitLatency:       96,
		InterconnectDelay:  16,
		DRAMRowHitLatency:  100,
		DRAMRowMissLatency: 220,
		DRAMBanksPerMC:     16,
		MCServiceInterval:  1,
		WriteLatency:       4,
		MSHRsPerSM:         64,
		MemPortsPerSM:      2,
		TxnFlightCapPerSM:  48,

		ALULatency:   10,
		SFULatency:   20,
		SharedMemLat: 24,
		BarrierLat:   4,
		IssueBackoff: 2,

		EpochLength:     10_000,
		IdleWarpSamples: 100,

		CtxBytesPerThread: 144, // ~32 regs * 4B + predicate/PC metadata
		CtxSaveBWBytes:    128,
		KernelLaunchDelay: 1_500,

		SpartDecisionEpochs: 1,
		SMDrainPenalty:      8_000,
	}
}

// Scale56 returns the Section 4.6 scalability configuration: 56 SMs with
// two warp schedulers each, other parameters unchanged. The memory system
// is widened to 8 controllers so per-SM bandwidth stays in a realistic
// range for a large die (the paper keeps "other parameters the same"; we
// scale controllers with SM count as any real part would and note it in
// EXPERIMENTS.md).
func Scale56() GPU {
	g := Base()
	g.NumSMs = 56
	g.WarpSchedulers = 2
	g.NumMemControllers = 8
	return g
}

// Validate checks the configuration for internal consistency.
func (g GPU) Validate() error {
	switch {
	case g.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case g.WarpSchedulers <= 0:
		return errors.New("config: WarpSchedulers must be positive")
	case g.WarpSize <= 0 || g.WarpSize > 64:
		return fmt.Errorf("config: WarpSize %d out of range", g.WarpSize)
	case g.MaxThreadsPerSM%g.WarpSize != 0:
		return fmt.Errorf("config: MaxThreadsPerSM %d not a multiple of warp size", g.MaxThreadsPerSM)
	case g.MaxTBsPerSM <= 0:
		return errors.New("config: MaxTBsPerSM must be positive")
	case g.NumMemControllers <= 0:
		return errors.New("config: NumMemControllers must be positive")
	case g.EpochLength <= 0:
		return errors.New("config: EpochLength must be positive")
	case g.IdleWarpSamples <= 0:
		return errors.New("config: IdleWarpSamples must be positive")
	case g.IdleWarpSamples > int(g.EpochLength):
		return errors.New("config: more idle-warp samples than cycles per epoch")
	case g.MSHRsPerSM <= 0:
		return errors.New("config: MSHRsPerSM must be positive")
	case g.MemPortsPerSM <= 0:
		return errors.New("config: MemPortsPerSM must be positive")
	case g.TxnFlightCapPerSM <= 0:
		return errors.New("config: TxnFlightCapPerSM must be positive")
	case g.RegFileBytes <= 0 || g.SharedMemBytes <= 0:
		return errors.New("config: per-SM resources must be positive")
	case g.CtxSaveBWBytes <= 0:
		return errors.New("config: CtxSaveBWBytes must be positive")
	}
	if err := g.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := g.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	return nil
}

// MaxWarpsPerSM returns the warp-context limit implied by the thread limit.
func (g GPU) MaxWarpsPerSM() int { return g.MaxThreadsPerSM / g.WarpSize }

// PeakIssuePerCycle returns the GPU-wide upper bound on warp instructions
// issued per cycle; thread-level IPC is bounded by WarpSize times this.
func (g GPU) PeakIssuePerCycle() int { return g.NumSMs * g.WarpSchedulers }
