package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	sentinel := errors.New("boom")
	err := Policy{}.Do(context.Background(), 0, func(attempt int) error {
		calls++
		if attempt != 1 {
			t.Fatalf("attempt = %d", attempt)
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), 7, func(attempt int) error {
		calls++
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), 0, func(int) error { calls++; return errors.New("always") })
	if err == nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoPermanentShortCircuits(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	base := errors.New("bad config")
	calls := 0
	err := p.Do(context.Background(), 0, func(int) error { calls++; return Permanent(base) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, base) || !IsPermanent(err) {
		t.Fatalf("err = %v", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDoStopsOnCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // would hang if backoff ran
	attemptErr := errors.New("transient")
	calls := 0
	err := p.Do(ctx, 0, func(int) error {
		calls++
		cancel() // canceled mid-attempt: no further attempts, no backoff wait
		return attemptErr
	})
	if !errors.Is(err, attemptErr) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Policy{MaxAttempts: 3}.Do(ctx, 0, func(int) error {
		t.Fatal("op ran on a pre-canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond}
	got := []time.Duration{p.Delay(1, nil), p.Delay(2, nil), p.Delay(3, nil), p.Delay(4, nil)}
	want := []time.Duration{10, 20, 40, 60} // milliseconds; doubled then capped
	for i := range got {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got[i], want[i]*time.Millisecond)
		}
	}
	if d := (Policy{}).Delay(1, nil); d != 0 {
		t.Fatalf("zero-policy delay = %v", d)
	}
}

func TestDelayJitterDeterministic(t *testing.T) {
	p := Policy{BaseDelay: time.Second, Jitter: 0.5, Seed: 42}
	a := p.Delay(1, rng.New(rng.Mix(42, 3)))
	b := p.Delay(1, rng.New(rng.Mix(42, 3)))
	if a != b {
		t.Fatalf("same seed/stream produced %v and %v", a, b)
	}
	c := p.Delay(1, rng.New(rng.Mix(42, 4)))
	if a == c {
		t.Fatal("distinct streams produced identical jitter (suspicious)")
	}
	lo, hi := time.Duration(float64(time.Second)*0.5), time.Duration(float64(time.Second)*1.5)
	if a < lo || a >= hi {
		t.Fatalf("jittered delay %v outside [%v, %v)", a, lo, hi)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep ignored cancellation")
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep err = %v", err)
	}
}
