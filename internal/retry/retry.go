// Package retry drives bounded re-execution of failed sweep cases:
// exponential backoff with a cap, deterministic jitter from a seeded RNG
// stream, and context-aware sleeping so a canceled sweep never blocks in
// a backoff wait.
//
// Jitter is a pure function of (Policy.Seed, stream, attempt): the sweep
// engine passes the deterministic case index as the stream id, so two
// runs of the same study back off identically regardless of worker
// scheduling — the same reproducibility discipline the simulator applies
// to its own stochastic decisions (internal/rng).
package retry

import (
	"context"
	"errors"
	"time"

	"repro/internal/rng"
)

// Policy describes how failed operations are retried. The zero value
// performs exactly one attempt with no backoff, which keeps retry logic
// inert unless a caller opts in.
type Policy struct {
	// MaxAttempts bounds total attempts (first try included). Values
	// below 1 mean 1: no retries.
	MaxAttempts int
	// BaseDelay is the backoff after the first failed attempt; 0 retries
	// immediately.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values below 1 mean 2.
	Multiplier float64
	// Jitter randomizes each delay into [1-Jitter, 1+Jitter) times its
	// nominal value (clamped to [0, 1]). 0 disables jitter.
	Jitter float64
	// Seed seeds the jitter stream (see package comment).
	Seed uint64
}

// attempts normalizes MaxAttempts.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff to wait after the attempt-th attempt failed
// (attempt counts from 1). Jitter, when enabled, is drawn from src; a nil
// src disables it.
func (p Policy) Delay(attempt int, src *rng.Source) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if j := p.Jitter; j > 0 && src != nil {
		if j > 1 {
			j = 1
		}
		d *= 1 - j + 2*j*src.Float64()
	}
	return time.Duration(d)
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do gives up immediately instead of burning the
// remaining attempts on a failure that cannot heal (for example a
// malformed configuration). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Sleep waits for d or until ctx is done, whichever comes first, and
// returns the context's error when interrupted.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, up to MaxAttempts times, backing off
// between attempts. op receives the attempt number starting at 1. Do
// returns nil on success and otherwise the error of the last attempt; it
// stops early — without consuming remaining attempts — when the error is
// Permanent or when ctx is done (a canceled sweep must release its worker
// slot immediately). stream disambiguates the jitter sequence between
// concurrent callers sharing one Policy.
func (p Policy) Do(ctx context.Context, stream uint64, op func(attempt int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	src := rng.New(rng.Mix(p.Seed, stream))
	max := p.attempts()
	var err error
	for attempt := 1; ; attempt++ {
		err = op(attempt)
		if err == nil || attempt >= max || IsPermanent(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		if Sleep(ctx, p.Delay(attempt, src)) != nil {
			return err
		}
	}
}
