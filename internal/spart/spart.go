// Package spart implements the paper's main baseline: QoS management for
// spatially partitioned multitasking (Aguilera et al., "QoS-aware dynamic
// resource allocation for spatial-multitasking GPUs"). Every SM is owned
// by exactly one kernel; a hill-climbing controller moves whole SMs
// between kernels to chase QoS goals. The granularity of one SM is the
// baseline's fundamental limitation the paper exploits (Sections 4.2-4.4):
// an SM cannot be divided between a QoS and a non-QoS kernel, and memory
// bandwidth is not partitioned at all.
package spart

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
)

// Controller hill-climbs an SM partition toward the QoS goals.
type Controller struct {
	g        *gpu.GPU
	goals    []float64
	isolated []float64 // isolated IPCs for the initial partition (may be nil)
	isQoS    []bool

	owner       []int // smID -> slot
	every       int   // decision period in epochs
	epochCount  int
	Moves       int64 // SMs reassigned (stats)
	GiveBacks   int64 // SMs returned to non-QoS kernels (stats)
	marginScale float64
}

// New builds a controller for g. goals[slot] is the absolute IPC goal
// (0 = non-QoS), mirroring qos.New. isolated[slot], when non-nil, is each
// kernel's isolated IPC: the controller seeds the initial partition
// proportionally to goal/isolated, the information the profiling-based
// baseline has (Aguilera et al. use offline profiles). Pass nil for an
// equal initial split.
func New(g *gpu.GPU, goals, isolated []float64) (*Controller, error) {
	if len(goals) != len(g.Kernels) {
		return nil, errors.New("spart: goals length must match kernels")
	}
	if isolated != nil && len(isolated) != len(goals) {
		return nil, errors.New("spart: isolated length must match goals")
	}
	c := &Controller{
		g:           g,
		goals:       append([]float64(nil), goals...),
		isolated:    append([]float64(nil), isolated...),
		isQoS:       make([]bool, len(goals)),
		owner:       make([]int, g.Cfg.NumSMs),
		every:       g.Cfg.SpartDecisionEpochs,
		marginScale: 1.02,
	}
	if c.every < 1 {
		c.every = 1
	}
	hasQoS := false
	for slot, goal := range goals {
		if goal < 0 {
			return nil, fmt.Errorf("spart: negative goal for slot %d", slot)
		}
		c.isQoS[slot] = goal > 0
		hasQoS = hasQoS || goal > 0
	}
	if !hasQoS {
		return nil, errors.New("spart: no QoS kernel among goals")
	}
	if len(goals) > g.Cfg.NumSMs {
		return nil, errors.New("spart: more kernels than SMs")
	}
	return c, nil
}

// Install partitions the SMs among the kernels and wires the controller
// into the GPU. No quota gate is used: within its partition a kernel runs
// unmanaged. With isolated IPCs available the initial split gives each
// QoS kernel roughly goal/isolated of the SMs (profile-seeded start);
// otherwise SMs are split equally. Every kernel keeps at least one SM.
func (c *Controller) Install() {
	n := len(c.goals)
	numSMs := c.g.Cfg.NumSMs
	want := make([]int, n)
	assigned := 0
	if len(c.isolated) == n {
		for slot, goal := range c.goals {
			if goal > 0 && c.isolated[slot] > 0 {
				frac := goal / c.isolated[slot]
				if frac > 1 {
					frac = 1
				}
				want[slot] = int(frac * float64(numSMs))
			}
		}
	}
	for slot := range want {
		if want[slot] < 1 {
			want[slot] = 1
		}
		assigned += want[slot]
	}
	// Scale down if oversubscribed; distribute any remainder equally.
	for assigned > numSMs {
		big := 0
		for slot := range want {
			if want[slot] > want[big] {
				big = slot
			}
		}
		want[big]--
		assigned--
	}
	for assigned < numSMs {
		// Prefer growing non-QoS kernels with the remainder, else the
		// smallest QoS kernel.
		best := -1
		for slot := range want {
			if !c.isQoS[slot] && (best < 0 || want[slot] < want[best]) {
				best = slot
			}
		}
		if best < 0 {
			for slot := range want {
				if best < 0 || want[slot] < want[best] {
					best = slot
				}
			}
		}
		want[best]++
		assigned++
	}
	i := 0
	for slot := range want {
		for j := 0; j < want[slot]; j++ {
			c.owner[i] = slot
			i++
		}
	}
	c.applyMasks()
	c.g.SetController(c)
}

// applyMasks projects the ownership vector onto per-kernel SM masks.
func (c *Controller) applyMasks() {
	for slot := range c.goals {
		mask := make([]bool, len(c.owner))
		for i, o := range c.owner {
			mask[i] = o == slot
		}
		c.g.SetMask(slot, mask)
	}
}

// SMsOf returns how many SMs slot currently owns.
func (c *Controller) SMsOf(slot int) int {
	n := 0
	for _, o := range c.owner {
		if o == slot {
			n++
		}
	}
	return n
}

// Owner returns the owning slot of smID (for tests).
func (c *Controller) Owner(smID int) int { return c.owner[smID] }

// OnCycle implements gpu.Controller; Spart has no per-cycle work.
func (c *Controller) OnCycle(now int64) {}

// NextControlEvent implements gpu.CycleScheduler: with no per-cycle
// work, Spart never schedules a control event — repartitioning decisions
// all happen in OnEpoch, which the event wheel always processes.
func (c *Controller) NextControlEvent(now int64) int64 { return gpu.NoEvent }

// OnEpoch runs one hill-climbing step every decision period: give an SM
// to the most deficient QoS kernel, or return an SM to a non-QoS kernel
// when every QoS kernel has margin to spare.
func (c *Controller) OnEpoch(now int64) {
	c.epochCount++
	if c.epochCount%c.every != 0 {
		return
	}
	if c.g.Engine.Pending(now) {
		return // a repartition is still draining
	}

	// Most deficient QoS kernel.
	needy, worst := -1, 1.0
	for slot, goal := range c.goals {
		if !c.isQoS[slot] || goal <= 0 {
			continue
		}
		ratio := c.g.IPC(slot) / goal
		if ratio < 1 && ratio < worst {
			needy, worst = slot, ratio
		}
	}
	if needy >= 0 {
		if donor := c.pickDonor(now, needy); donor >= 0 {
			c.moveSM(now, donor, needy)
			c.Moves++
		}
		return
	}

	// All QoS goals met: if a QoS kernel would still meet its goal with
	// one SM fewer, return an SM to the smallest non-QoS kernel.
	recv := c.smallestNonQoS()
	if recv < 0 {
		return
	}
	for slot, goal := range c.goals {
		if !c.isQoS[slot] {
			continue
		}
		n := c.SMsOf(slot)
		if n <= 1 {
			continue
		}
		hist := c.g.IPC(slot)
		if hist*float64(n-1)/float64(n) > goal*c.marginScale {
			c.moveSM(now, slot, recv)
			c.GiveBacks++
			return
		}
	}
}

// pickDonor chooses the kernel to shrink: the non-QoS kernel with the
// most SMs, else a QoS kernel whose margin survives losing one SM.
func (c *Controller) pickDonor(now int64, needy int) int {
	donor, most := -1, 1
	for slot := range c.goals {
		if slot == needy || c.isQoS[slot] {
			continue
		}
		if n := c.SMsOf(slot); n > most {
			donor, most = slot, n
		}
	}
	if donor >= 0 {
		return donor
	}
	for slot, goal := range c.goals {
		if slot == needy || !c.isQoS[slot] {
			continue
		}
		n := c.SMsOf(slot)
		if n <= 1 {
			continue
		}
		hist := c.g.IPC(slot)
		if hist*float64(n-1)/float64(n) > goal*c.marginScale {
			return slot
		}
	}
	return -1
}

// smallestNonQoS returns the non-QoS slot owning the fewest SMs, or -1.
func (c *Controller) smallestNonQoS() int {
	best, fewest := -1, 1<<30
	for slot := range c.goals {
		if c.isQoS[slot] {
			continue
		}
		if n := c.SMsOf(slot); n < fewest {
			best, fewest = slot, n
		}
	}
	return best
}

// moveSM transfers one SM from donor to recv: the donor's highest-index
// SM is drained (whole-SM context switch) and its mask flips to recv.
func (c *Controller) moveSM(now int64, donor, recv int) {
	for i := len(c.owner) - 1; i >= 0; i-- {
		if c.owner[i] != donor {
			continue
		}
		c.g.DrainSM(now, i)
		c.owner[i] = recv
		c.g.Tracer().SMMove(now, i, recv)
		c.applyMasks()
		return
	}
}
