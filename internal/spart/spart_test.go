package spart

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func smallCfg() config.GPU {
	cfg := config.Base()
	cfg.NumSMs = 8
	return cfg
}

func smallProfile(name string) kern.Profile {
	return kern.Profile{
		Name: name, Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 20,
		FracGlobalMem: 0.1, FracStore: 0.2,
		DepDensity:     0.2,
		CoalesceDegree: 1.5, ReuseFrac: 0.5,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, GridTBs: 96,
	}
}

func newGPU(t *testing.T, names ...string) *gpu.GPU {
	t.Helper()
	kernels := make([]*kern.Kernel, len(names))
	for i, n := range names {
		k, err := kern.Build(i, smallProfile(n), 23)
		if err != nil {
			t.Fatal(err)
		}
		kernels[i] = k
	}
	g, err := gpu.New(smallCfg(), kernels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := newGPU(t, "a", "b")
	if _, err := New(g, []float64{100}, nil); err == nil {
		t.Fatal("accepted wrong goals length")
	}
	if _, err := New(g, []float64{0, 0}, nil); err == nil {
		t.Fatal("accepted no QoS kernel")
	}
	if _, err := New(g, []float64{100, 0}, []float64{1}); err == nil {
		t.Fatal("accepted mismatched isolated slice")
	}
}

func TestInstallPartitionsEverySM(t *testing.T) {
	g := newGPU(t, "a", "b")
	c, err := New(g, []float64{100, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Install()
	owned := 0
	for slot := 0; slot < 2; slot++ {
		owned += c.SMsOf(slot)
	}
	if owned != g.Cfg.NumSMs {
		t.Fatalf("%d SMs owned, want %d", owned, g.Cfg.NumSMs)
	}
	// Each SM belongs to exactly one kernel's mask.
	for i := 0; i < g.Cfg.NumSMs; i++ {
		owners := 0
		for slot := 0; slot < 2; slot++ {
			if g.Allowed(slot, i) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("SM %d has %d owners", i, owners)
		}
	}
}

func TestSeededPartitionProportionalToGoal(t *testing.T) {
	g := newGPU(t, "a", "b")
	// Goal is 75% of isolated: the QoS kernel should start with about
	// three quarters of the SMs.
	c, _ := New(g, []float64{75, 0}, []float64{100, 100})
	c.Install()
	if got := c.SMsOf(0); got != 6 {
		t.Fatalf("QoS kernel seeded with %d of 8 SMs, want 6", got)
	}
	if c.SMsOf(1) != 2 {
		t.Fatalf("non-QoS kernel got %d SMs", c.SMsOf(1))
	}
}

func TestEveryKernelKeepsOneSM(t *testing.T) {
	g := newGPU(t, "a", "b")
	c, _ := New(g, []float64{1e9, 0}, []float64{1, 1}) // absurd goal
	c.Install()
	if c.SMsOf(1) < 1 {
		t.Fatal("non-QoS kernel left without any SM")
	}
	g.Run(100_000)
	if c.SMsOf(1) < 1 {
		t.Fatal("hill climbing starved the non-QoS kernel of its last SM")
	}
}

func TestHillClimbMovesTowardNeedyKernel(t *testing.T) {
	g := newGPU(t, "a", "b")
	iso := isolated(t)
	// Equal split but a high goal: the controller must take SMs from
	// the non-QoS kernel.
	c, _ := New(g, []float64{0.9 * iso, 0}, nil)
	c.Install()
	start := c.SMsOf(0)
	g.Run(120_000)
	if c.SMsOf(0) <= start {
		t.Fatalf("needy QoS kernel still at %d SMs (started with %d), moves=%d",
			c.SMsOf(0), start, c.Moves)
	}
	if c.Moves == 0 {
		t.Fatal("no hill-climbing moves recorded")
	}
}

func isolated(t *testing.T) float64 {
	g := newGPU(t, "solo")
	g.Run(60_000)
	return g.IPC(0)
}

func TestGiveBackWhenOverProvisioned(t *testing.T) {
	g := newGPU(t, "a", "b")
	iso := isolated(t)
	// Tiny goal with a fat seeded partition: SMs must flow back to the
	// non-QoS kernel.
	c, _ := New(g, []float64{0.1 * iso, 0}, []float64{iso, iso})
	// Manually seed the QoS kernel too large to force give-backs.
	for i := range c.owner {
		if i < 6 {
			c.owner[i] = 0
		} else {
			c.owner[i] = 1
		}
	}
	c.applyMasks()
	g.SetController(c)
	g.Run(120_000)
	if c.GiveBacks == 0 {
		t.Fatal("controller never returned surplus SMs")
	}
	if c.SMsOf(1) <= 2 {
		t.Fatalf("non-QoS kernel still at %d SMs", c.SMsOf(1))
	}
}

func TestOwnershipConsistentAfterRun(t *testing.T) {
	g := newGPU(t, "a", "b")
	iso := isolated(t)
	c, _ := New(g, []float64{0.6 * iso, 0}, []float64{iso, iso})
	c.Install()
	g.Run(100_000)
	for i := 0; i < g.Cfg.NumSMs; i++ {
		owner := c.Owner(i)
		for slot := 0; slot < 2; slot++ {
			if g.Allowed(slot, i) != (slot == owner) {
				t.Fatalf("mask of SM %d inconsistent with owner %d", i, owner)
			}
		}
		// No foreign TBs resident.
		for slot := 0; slot < 2; slot++ {
			if slot != owner && g.SMs[i].ResidentTBs(slot) > 0 {
				t.Fatalf("SM %d hosts TBs of non-owner %d", i, slot)
			}
		}
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestTooManyKernelsRejected(t *testing.T) {
	cfg := config.Base()
	cfg.NumSMs = 1
	k0, _ := kern.Build(0, smallProfile("a"), 1)
	k1, _ := kern.Build(1, smallProfile("b"), 1)
	g, err := gpu.New(cfg, []*kern.Kernel{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, []float64{10, 0}, nil); err == nil {
		t.Fatal("accepted more kernels than SMs")
	}
}
