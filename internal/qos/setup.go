package qos

import "repro/internal/gpu"

// SetupFineGrained applies the initial TB allocation for fine-grained
// sharing (Section 3.6):
//
//   - QoS kernels are distributed to every SM;
//   - non-QoS kernels split the SMs into equal partitions, one kernel per
//     partition (having too many kernels per SM is not beneficial);
//   - within an SM, resident kernels receive thread budgets weighted by
//     their QoS goals, expressed as per-kernel TB caps.
//
// fracs[i] is kernel i's goal as a fraction of its isolated IPC (0 for
// non-QoS kernels). The paper starts from an equal split and lets the
// run-time adjuster converge; with our shorter measurement windows the
// ramp would dominate, so the initial budget uses the same goal
// information the spatial baseline's seeded partition gets (both
// managers receive goals when the kernel is dispatched, Section 3.2).
// Pass nil fracs for the equal split. The caps are a starting point; the
// run-time adjuster moves them.
func SetupFineGrained(g *gpu.GPU, goals, fracs []float64) {
	n := len(g.Kernels)
	isQoS := make([]bool, n)
	var nonQoS []int
	for slot, goal := range goals {
		isQoS[slot] = goal > 0
		if goal <= 0 {
			nonQoS = append(nonQoS, slot)
		}
	}

	numSMs := g.Cfg.NumSMs
	// Owner of each SM among non-QoS kernels (-1: none).
	nqOwner := make([]int, numSMs)
	for i := range nqOwner {
		nqOwner[i] = -1
	}
	if len(nonQoS) > 0 {
		per := numSMs / len(nonQoS)
		if per == 0 {
			per = 1
		}
		for i := 0; i < numSMs; i++ {
			idx := i / per
			if idx >= len(nonQoS) {
				idx = len(nonQoS) - 1
			}
			nqOwner[i] = nonQoS[idx]
		}
	}

	for slot := range g.Kernels {
		mask := make([]bool, numSMs)
		for i := 0; i < numSMs; i++ {
			mask[i] = isQoS[slot] || nqOwner[i] == slot
		}
		g.SetMask(slot, mask)
	}

	for i, s := range g.SMs {
		// Thread-budget weights of the kernels resident on this SM.
		weights := make([]float64, n)
		sum := 0.0
		for slot := range g.Kernels {
			if !(isQoS[slot] || nqOwner[i] == slot) {
				continue
			}
			w := 1.0
			if fracs != nil {
				if isQoS[slot] {
					w = fracs[slot]
					if w < 0.15 {
						w = 0.15
					}
				} else {
					w = 0.25 // non-QoS starts small; the search grows it
				}
			}
			weights[slot] = w
			sum += w
		}
		if sum == 0 {
			continue
		}
		for slot, k := range g.Kernels {
			if weights[slot] == 0 {
				s.SetTBCap(slot, 0)
				continue
			}
			budget := int(float64(g.Cfg.MaxThreadsPerSM) * weights[slot] / sum)
			cap := budget / k.Profile.ThreadsPerTB
			if cap < 1 {
				cap = 1
			}
			s.SetTBCap(slot, cap)
		}
	}
	g.RequestDispatch()
}
