package qos

import (
	"testing"

	"repro/internal/kern"
)

// memSmallProfile is a memory-leaning variant of the test kernel, so a
// fairness test has genuinely asymmetric sharers.
func memSmallProfile(name string) kern.Profile {
	p := smallProfile(name)
	p.Class = kern.ClassMemory
	p.FracGlobalMem = 0.35
	p.CoalesceDegree = 3
	p.ReuseFrac = 0.1
	return p
}

func isolatedOf(t *testing.T, p kern.Profile, cycles int64) float64 {
	t.Helper()
	g := newGPUFromProfiles(t, p)
	g.Run(cycles)
	return g.IPC(0)
}

func TestFairValidation(t *testing.T) {
	g := newGPU(t, "a", "b")
	if _, err := NewFair(g, []float64{100}, Options{}); err == nil {
		t.Fatal("accepted wrong isolated length")
	}
	if _, err := NewFair(g, []float64{100, 0}, Options{}); err == nil {
		t.Fatal("accepted non-positive isolated IPC")
	}
}

func TestFairNarrowsProgressGap(t *testing.T) {
	pa, pb := smallProfile("a"), memSmallProfile("b")
	isoA := isolatedOf(t, pa, 60_000)
	isoB := isolatedOf(t, pb, 60_000)

	// Unmanaged sharing: measure the normalized-progress spread.
	g1 := newGPUFromProfiles(t, pa, pb)
	g1.Run(60_000)
	unmanaged := spread(g1.IPC(0)/isoA, g1.IPC(1)/isoB)

	// Fairness-managed sharing.
	g2 := newGPUFromProfiles(t, pa, pb)
	f, err := NewFair(g2, []float64{isoA, isoB}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Install()
	g2.Run(60_000)
	managed := f.Unfairness(g2.Now)

	if managed >= unmanaged {
		t.Fatalf("fairness controller did not narrow the gap: %.3f -> %.3f", unmanaged, managed)
	}
	// Both kernels must still make progress.
	if g2.IPC(0) <= 0 || g2.IPC(1) <= 0 {
		t.Fatal("a kernel starved under fairness management")
	}
}

func TestFairUnfairnessMetric(t *testing.T) {
	pa, pb := smallProfile("a"), smallProfile("b")
	isoA := isolatedOf(t, pa, 120_000)
	g := newGPUFromProfiles(t, pa, pb)
	f, err := NewFair(g, []float64{isoA, isoA}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Install()
	g.Run(120_000)
	// Identical kernels with identical isolated IPCs: the cumulative
	// normalized-progress spread must shrink to noise once the
	// controller has had a dozen epochs to ratchet.
	if got := f.Unfairness(g.Now); got > 0.15 {
		t.Fatalf("identical sharers diverge by %.3f", got)
	}
}

func spread(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
