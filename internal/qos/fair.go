package qos

import (
	"errors"

	"repro/internal/gpu"
)

// Fair is an extension beyond the paper's QoS schemes: the SMK-style
// fairness policy the paper positions itself against (Section 2.3 —
// "fine-grained sharing ... manages resources to achieve fair execution
// among sharer kernels, meaning that the kernel's performance in a
// shared mode degrades equally"). The paper notes the firmware can
// switch between fairness and QoS policies (Section 3.3); providing both
// on the same quota machinery demonstrates that compatibility.
//
// Mechanism: every epoch the manager measures each kernel's normalized
// progress (shared IPC over isolated IPC) and sets every kernel's quota
// to track the slowest kernel's normalized progress plus a small step,
// reusing the Rollover counters. Kernels that pull ahead are throttled;
// the freed cycles flow to the laggard.
type Fair struct {
	m        *Manager
	isolated []float64
	step     float64
}

// NewFair builds a fairness controller for g. isolated[slot] is each
// kernel's isolated IPC (all must be positive).
func NewFair(g *gpu.GPU, isolated []float64, opts Options) (*Fair, error) {
	if len(isolated) != len(g.Kernels) {
		return nil, errors.New("qos: isolated length must match kernels")
	}
	goals := make([]float64, len(isolated))
	for i, iso := range isolated {
		if iso <= 0 {
			return nil, errors.New("qos: fairness needs positive isolated IPCs")
		}
		// Start permissive; the controller ratchets goals to the
		// common achievable normalized progress.
		goals[i] = iso
	}
	// The fairness controller owns goal updates, so the history factor
	// (which assumes fixed goals) is disabled.
	opts.DisableHistory = true
	m, err := New(g, Rollover, goals, opts)
	if err != nil {
		return nil, err
	}
	return &Fair{m: m, isolated: append([]float64(nil), isolated...), step: 0.05}, nil
}

// Install wires the controller into the GPU.
func (f *Fair) Install() {
	f.m.g.SetController(f)
	f.m.g.SetGate(f.m)
	f.m.refreshQuotas(0)
	f.m.started = true
}

// CanIssue and OnIssue delegate to the quota machinery.
func (f *Fair) CanIssue(smID, slot int) bool         { return f.m.CanIssue(smID, slot) }
func (f *Fair) OnIssue(smID, slot, threadInstrs int) { f.m.OnIssue(smID, slot, threadInstrs) }

// OnCycle delegates mid-epoch replenishment.
func (f *Fair) OnCycle(now int64) { f.m.OnCycle(now) }

// NextControlEvent delegates the event-wheel schedule to the quota
// machinery (gpu.CycleScheduler).
func (f *Fair) NextControlEvent(now int64) int64 { return f.m.NextControlEvent(now) }

// OnEpoch retargets every kernel at the slowest kernel's normalized
// progress plus one step, then refreshes quotas.
func (f *Fair) OnEpoch(now int64) {
	for slot := range f.m.quota {
		f.m.g.Rec.AnnotateLast(slot, f.m.quota[slot], f.m.alpha[slot])
	}
	minNorm := 2.0
	for slot := range f.m.g.Stats {
		// Normalized progress over the kernel's active window, so a
		// relaunch gap does not read as unfairness.
		norm := f.m.g.IPC(slot) / f.isolated[slot]
		if norm < minNorm {
			minNorm = norm
		}
	}
	target := minNorm + f.step
	if target > 1 {
		target = 1
	}
	for slot := range f.m.goals {
		f.m.goals[slot] = f.isolated[slot] * target
		f.m.g.Tracer().GoalCheck(now, slot, f.m.g.IPC(slot), f.m.goals[slot])
	}
	dur := now - f.m.epochStartCycle
	if dur <= 0 {
		dur = f.m.epochLen
	}
	for slot, st := range f.m.g.Stats {
		f.m.lastEpoch[slot] = float64(st.LastEpochInstrs) / float64(dur)
	}
	f.m.snapshotExhaustion()
	f.m.refreshQuotas(now)
}

// Unfairness returns the current spread of normalized progress
// (max - min); 0 is perfectly fair.
func (f *Fair) Unfairness(now int64) float64 {
	lo, hi := 2.0, 0.0
	for slot := range f.m.g.Stats {
		norm := f.m.g.IPC(slot) / f.isolated[slot]
		if norm < lo {
			lo = norm
		}
		if norm > hi {
			hi = norm
		}
	}
	return hi - lo
}
