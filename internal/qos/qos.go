// Package qos implements the paper's contribution: cycle-level QoS
// management for fine-grained GPU sharing (Section 3).
//
// The Manager is both the gpu.Controller (epoch bookkeeping, quota
// refresh, static TB adjustment) and the sm.QuotaGate consulted by every
// warp scheduler on every issue attempt (the Enhanced Warp Scheduler).
// Quotas are expressed in thread instructions per epoch, derived from each
// QoS kernel's absolute IPC goal; non-QoS kernels receive a searched quota
// from an artificial IPC goal updated from how well the QoS kernels are
// doing (Section 3.5).
package qos

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
)

// Scheme selects the quota allocation policy (Section 3.4).
type Scheme int

const (
	// Naive allocates IPCgoal*Tepoch each epoch and discards leftovers.
	Naive Scheme = iota
	// NaiveHistory is Naive plus the history-based α adjustment
	// (Section 3.4.2, Figure 5).
	NaiveHistory
	// Elastic starts a new epoch immediately once every kernel's quota
	// is exhausted (Section 3.4.3). Includes history adjustment.
	Elastic
	// Rollover carries a QoS kernel's unused quota into the next epoch
	// (Section 3.4.4). Includes history adjustment. The paper's best.
	Rollover
	// RolloverTime is Rollover with CPU-style prioritization: non-QoS
	// kernels are blocked until every QoS kernel in the SM has consumed
	// its quota (Section 4.5, Figures 10-11).
	RolloverTime
)

// String returns the scheme name used in figures.
func (s Scheme) String() string {
	switch s {
	case Naive:
		return "Naive"
	case NaiveHistory:
		return "Naive+History"
	case Elastic:
		return "Elastic"
	case Rollover:
		return "Rollover"
	case RolloverTime:
		return "Rollover-Time"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// historyAdjusted reports whether the scheme scales quotas by α.
func (s Scheme) historyAdjusted() bool { return s != Naive }

// Options tunes the manager beyond the scheme choice; zero values give
// the paper's configuration.
type Options struct {
	// DisableHistory forces α=1 even for schemes that normally adjust
	// (the Section 4.8 history ablation).
	DisableHistory bool
	// DisableStaticAdjust turns off run-time TB re-allocation
	// (the Section 4.8 static-management ablation).
	DisableStaticAdjust bool
	// NonQoSInitIPC seeds the artificial IPC goal of non-QoS kernels;
	// the paper uses 1 (Section 3.5). 0 means 1.
	NonQoSInitIPC float64
	// AlphaCap bounds the history adjustment factor to keep quotas
	// finite when a goal is unreachable; 0 means 16.
	AlphaCap float64
	// QuotaMargin inflates QoS quotas by this fraction so kernels hold
	// a small buffer above the bare goal. The paper's Rollover lands
	// 2.8% above goals on average (Figure 9); without a buffer every
	// late-epoch interference burst turns into a sub-1%% miss. 0 means
	// 1.5%; negative disables.
	QuotaMargin float64
}

// Manager is the QoS Manager of Figure 3.
type Manager struct {
	g      *gpu.GPU
	scheme Scheme
	opts   Options

	goals []float64 // absolute GPU-wide IPC goals; 0 marks non-QoS
	isQoS []bool

	// Per-SM, per-slot quota counters (thread instructions remaining).
	counters [][]float64
	// exhaustAt[sm][slot]: cycle the counter first crossed zero this
	// epoch (-1: not yet). Drives the TLP give-back test.
	exhaustAt       [][]int64
	epochStartCycle int64
	// Per-slot GPU-wide quota for the current epoch.
	quota []float64
	alpha []float64
	// Artificial IPC goals for non-QoS kernels (Section 3.5).
	nonQoSGoal []float64

	epochLen      int64
	started       bool
	qosSlots      []int
	nonQoS        []int
	peakIPC       float64
	lastEpoch     []float64 // IPCepoch of the previous epoch per slot
	allowance     []float64 // quota+carry granted for the current epoch
	prevAlpha     []float64 // α in force during the previous epoch
	deficitStreak []int     // consecutive epochs a QoS kernel missed rate
	unexhausted   []int     // SMs that ended the last epoch with quota left
	epochCount    int       // epochs seen by the static adjuster
	lastSwap      []int     // epoch of the last TB move per slot (cooldown)
	carryScratch  []float64 // per-refresh pooled carry (reused each epoch)
	lastReclaim   int       // epoch of the last give-back move
	Replenish     int64     // mid-epoch non-QoS replenishments (stats)
	ElasticNew    int64     // elastic early-epoch starts (stats)
}

// New builds a manager for g. goals[slot] is the absolute thread-IPC goal
// for the kernel in that slot, or 0 for a non-QoS kernel. At least one
// QoS kernel is required.
func New(g *gpu.GPU, scheme Scheme, goals []float64, opts Options) (*Manager, error) {
	if len(goals) != len(g.Kernels) {
		return nil, errors.New("qos: goals length must match kernels")
	}
	m := &Manager{
		g:             g,
		scheme:        scheme,
		opts:          opts,
		goals:         append([]float64(nil), goals...),
		isQoS:         make([]bool, len(goals)),
		quota:         make([]float64, len(goals)),
		alpha:         make([]float64, len(goals)),
		nonQoSGoal:    make([]float64, len(goals)),
		lastEpoch:     make([]float64, len(goals)),
		allowance:     make([]float64, len(goals)),
		prevAlpha:     make([]float64, len(goals)),
		deficitStreak: make([]int, len(goals)),
		unexhausted:   make([]int, len(goals)),
		lastSwap:      make([]int, len(goals)),
		carryScratch:  make([]float64, len(goals)),
		lastReclaim:   -10,
		epochLen:      g.Cfg.EpochLength,
		peakIPC:       float64(g.Cfg.PeakIssuePerCycle() * g.Cfg.WarpSize),
	}
	if m.opts.NonQoSInitIPC <= 0 {
		m.opts.NonQoSInitIPC = 1
	}
	if m.opts.AlphaCap <= 0 {
		m.opts.AlphaCap = 16
	}
	switch {
	case m.opts.QuotaMargin == 0:
		m.opts.QuotaMargin = 0.015
	case m.opts.QuotaMargin < 0:
		m.opts.QuotaMargin = 0
	}
	for slot, goal := range goals {
		if goal < 0 {
			return nil, fmt.Errorf("qos: negative goal for slot %d", slot)
		}
		m.alpha[slot] = 1
		m.prevAlpha[slot] = 1
		if goal > 0 {
			m.isQoS[slot] = true
			m.qosSlots = append(m.qosSlots, slot)
		} else {
			m.nonQoS = append(m.nonQoS, slot)
			m.nonQoSGoal[slot] = m.opts.NonQoSInitIPC
		}
	}
	if len(m.qosSlots) == 0 {
		return nil, errors.New("qos: no QoS kernel among goals")
	}
	for i := range m.lastSwap {
		m.lastSwap[i] = -10
	}
	m.counters = make([][]float64, g.Cfg.NumSMs)
	m.exhaustAt = make([][]int64, g.Cfg.NumSMs)
	for i := range m.counters {
		m.counters[i] = make([]float64, len(goals))
		m.exhaustAt[i] = make([]int64, len(goals))
		for j := range m.exhaustAt[i] {
			m.exhaustAt[i][j] = -1
		}
	}
	return m, nil
}

// Scheme returns the active scheme.
func (m *Manager) Scheme() Scheme { return m.scheme }

// Goal returns the absolute IPC goal of slot (0 for non-QoS).
func (m *Manager) Goal(slot int) float64 { return m.goals[slot] }

// Alpha returns the current history adjustment of slot.
func (m *Manager) Alpha(slot int) float64 { return m.alpha[slot] }

// Install wires the manager into the GPU as controller and quota gate and
// performs the first epoch's quota allocation. Call once before Run.
func (m *Manager) Install() {
	m.g.SetController(m)
	m.g.SetGate(m)
	m.refreshQuotas(0)
	m.started = true
}

// ---- sm.QuotaGate ----

// CanIssue implements the Enhanced Warp Scheduler check (Section 3.3):
// a kernel may issue while its local counter is positive; under
// RolloverTime, non-QoS kernels additionally wait until every QoS kernel
// in the SM has consumed its quota.
func (m *Manager) CanIssue(smID, slot int) bool {
	c := m.counters[smID]
	if m.scheme == RolloverTime && !m.isQoS[slot] {
		for _, q := range m.qosSlots {
			if c[q] > 0 {
				return false
			}
		}
	}
	return c[slot] > 0
}

// OnIssue decrements the kernel's local counter by the executed thread
// instructions (<=32, fewer under divergence) and records the moment the
// quota ran out (the give-back test in the static adjuster needs it).
func (m *Manager) OnIssue(smID, slot int, threadInstrs int) {
	c := m.counters[smID]
	before := c[slot]
	c[slot] = before - float64(threadInstrs)
	if before > 0 && c[slot] <= 0 {
		m.exhaustAt[smID][slot] = m.g.Now
		// Exhaustion can unblock other kernels (the all-exhausted
		// replenish path, and non-QoS issue under RolloverTime), so the
		// SM's schedulers must rescan.
		m.g.SMs[smID].Wake(m.g.Now)
	}
}

// ---- gpu.Controller ----

// OnCycle handles mid-epoch quota events: replenishing non-QoS kernels
// once every QoS kernel has exhausted its quota (Section 3.4.1), or
// starting a new elastic epoch (Section 3.4.3).
//
// The exhaustion test is GPU-wide for QoS kernels, not per SM: per-SM
// progress is never perfectly even, and letting non-QoS kernels free-run
// on whichever SM drained first floods the *shared* memory system and
// starves the QoS kernel everywhere else (a positive-feedback failure
// observed with the literal per-SM reading of the paper's rule). The
// global test preserves the intent — non-QoS kernels use the cycles the
// QoS kernels no longer need this epoch.
func (m *Manager) OnCycle(now int64) {
	if !m.qosExhaustedEverywhere() {
		return
	}
	if m.scheme == Elastic {
		// Elastic starts the next epoch the moment every kernel's quota
		// is spent (Figure 4b) — as a real epoch roll, not a local
		// counter top-up. Routing the early start through the GPU's
		// ForceEpochRoll keeps the device's EpochRecords, the epoch
		// clock and this manager's OnEpoch observing the same interval;
		// the previous local top-up left the fixed epoch timer running,
		// so the boundary roll double-counted the shortened epoch and
		// attributed its instructions to a window the controller never
		// saw. Counters keep their negative remainders; refreshQuotas
		// pools them as debt.
		if now <= m.epochStartCycle {
			return
		}
		anyResident := false
		for smID := range m.counters {
			c := m.counters[smID]
			s := m.g.SMs[smID]
			for _, slot := range m.nonQoS {
				if c[slot] > 0 && s.ResidentTBs(slot) > 0 {
					return // unspent quota remains; no early epoch yet
				}
			}
			for slot := range c {
				if s.ResidentTBs(slot) > 0 {
					anyResident = true
				}
			}
		}
		if !anyResident {
			return
		}
		m.ElasticNew++
		m.g.Tracer().ElasticEpoch(now, now-m.epochStartCycle)
		m.g.ForceEpochRoll(now)
		return
	}
	for smID := range m.counters {
		c := m.counters[smID]
		s := m.g.SMs[smID]
		exhausted := true
		for _, slot := range m.nonQoS {
			if c[slot] > 0 && s.ResidentTBs(slot) > 0 {
				exhausted = false
				break
			}
		}
		if !exhausted {
			continue
		}
		// Top up only the non-QoS kernels so they keep the SM busy
		// until the epoch boundary.
		any := false
		for _, slot := range m.nonQoS {
			share := m.share(smID, slot)
			if share > 0 {
				c[slot] += share
				m.g.Tracer().Replenish(now, smID, slot, share)
				any = true
			}
		}
		if any {
			m.Replenish++
			s.Wake(now)
		}
	}
}

// NextControlEvent implements gpu.CycleScheduler for the event wheel.
// OnCycle acts only once every QoS kernel has exhausted its quota
// GPU-wide; until then it returns on its first check, and the exhaustion
// state cannot change across a skipped stretch — it is a function of the
// quota counters and TB residency, both frozen while every SM sleeps
// (the issue that crosses the final counter past zero wakes its SM, so
// the wheel re-evaluates at the very next cycle). Once exhausted, the
// manager runs per cycle: replenish timing and elastic epoch starts
// depend on state the hook itself mutates.
func (m *Manager) NextControlEvent(now int64) int64 {
	if m.qosExhaustedEverywhere() {
		return now
	}
	return gpu.NoEvent
}

// qosExhaustedEverywhere reports whether every QoS kernel has consumed
// its quota on every SM where it has warps.
func (m *Manager) qosExhaustedEverywhere() bool {
	for _, q := range m.qosSlots {
		for smID := range m.counters {
			if m.counters[smID][q] > 0 && m.g.SMs[smID].ResidentTBs(q) > 0 {
				return false
			}
		}
	}
	return true
}

// OnEpoch recomputes α, non-QoS artificial goals and quotas, then runs
// the static TB adjuster.
func (m *Manager) OnEpoch(now int64) {
	// Annotate the EpochRecords the GPU just closed with the quota and α
	// that were actually in force during that epoch (they were computed
	// at the previous refresh, so they are about to be overwritten).
	for slot := range m.quota {
		m.g.Rec.AnnotateLast(slot, m.quota[slot], m.alpha[slot])
	}
	// IPC of the epoch that just ended (the GPU rolled counters first).
	// The denominator is the epoch's actual duration: under Elastic an
	// epoch ends early via ForceEpochRoll, and dividing by the nominal
	// length would understate every shortened epoch's IPC.
	dur := now - m.epochStartCycle
	if dur <= 0 {
		dur = m.epochLen
	}
	for slot, st := range m.g.Stats {
		m.lastEpoch[slot] = float64(st.LastEpochInstrs) / float64(dur)
	}
	// Non-QoS artificial goal update (Section 3.5) uses how completely
	// each QoS kernel consumed its allowance (quota plus rolled-over
	// carry) in the finished epoch: a kernel that could not drain its
	// allowance is being squeezed by interference and the non-QoS goal
	// scales down proportionally; a kernel that drained it is
	// scheme-throttled and the non-QoS kernels may keep their level.
	// This is the paper's IPCepoch/(α·IPCgoal) factor with the carry
	// included in the denominator, which preserves the repayment margin
	// Rollover relies on. The raw update is smoothed (EWMA) so one
	// bursty epoch does not whipsaw the search.
	for _, slot := range m.nonQoS {
		factor := 1.0
		for _, q := range m.qosSlots {
			if m.allowance[q] <= 0 {
				continue
			}
			// Consumed fraction of the allowance, from the raw epoch
			// instruction count (duration-independent, so shortened
			// elastic epochs compare correctly).
			f := float64(m.g.Stats[q].LastEpochInstrs) / m.allowance[q]
			if f > 0.995 {
				f = 1
			}
			factor *= f
		}
		next := m.lastEpoch[slot] * factor
		if next < m.opts.NonQoSInitIPC {
			next = m.opts.NonQoSInitIPC
		}
		if next > m.peakIPC {
			next = m.peakIPC
		}
		prev := m.nonQoSGoal[slot]
		m.nonQoSGoal[slot] = 0.5*prev + 0.5*next
		m.g.Tracer().ArtificialGoal(now, slot, m.nonQoSGoal[slot], prev)
	}
	// History-based α for QoS kernels (Section 3.4.2). The α that was
	// in force during the finished epoch is kept for the static
	// adjuster's quota-consumption test.
	for _, q := range m.qosSlots {
		m.prevAlpha[q] = m.alpha[q]
		m.alpha[q] = 1
		// History uses the kernel's active-window IPC: a kernel held off
		// the SMs by a relaunch gate or a pending context restore was
		// previously judged on cycles it could not issue in, inflating α
		// (and therefore its quota) for scheduling artifacts rather than
		// genuine interference.
		hist := m.g.IPC(q)
		if m.scheme.historyAdjusted() && !m.opts.DisableHistory {
			if hist > 0 {
				if a := m.goals[q] / hist; a > 1 {
					m.alpha[q] = a
				}
			} else {
				m.alpha[q] = m.opts.AlphaCap
			}
			if m.alpha[q] > m.opts.AlphaCap {
				m.alpha[q] = m.opts.AlphaCap
			}
			if m.alpha[q] != m.prevAlpha[q] {
				m.g.Tracer().Alpha(now, q, m.alpha[q], m.prevAlpha[q])
			}
		}
		m.g.Tracer().GoalCheck(now, q, hist, m.goals[q])
	}
	// The static adjuster reads the finished epoch's exhaustion data, so
	// it runs before the quota refresh resets it; the refresh then sees
	// the post-adjustment TB residency when computing shares.
	m.snapshotExhaustion()
	if !m.opts.DisableStaticAdjust {
		m.adjustTBs(now)
	}
	m.refreshQuotas(now)
}

// snapshotExhaustion counts, per slot, the SMs that ended the epoch with
// unconsumed quota (TLP shortfall signal for the static adjuster).
func (m *Manager) snapshotExhaustion() {
	for slot := range m.unexhausted {
		m.unexhausted[slot] = 0
	}
	for smID := range m.counters {
		c := m.counters[smID]
		s := m.g.SMs[smID]
		for slot := range c {
			if c[slot] > 0 && s.ResidentTBs(slot) > 0 {
				m.unexhausted[slot]++
			}
		}
	}
}

// refreshQuotas computes per-slot epoch quotas and resets the per-SM
// counters according to the scheme's carry rule.
func (m *Manager) refreshQuotas(now int64) {
	tr := m.g.Tracer()
	// Consumption of the epoch that just ended, read off the counters
	// before they are reset. Leftover can be negative (overshoot past
	// zero within one warp instruction, or elastic debt).
	if m.started && tr.Enabled() {
		for slot := range m.quota {
			var leftover float64
			for smID := range m.counters {
				leftover += m.counters[smID][slot]
			}
			tr.QuotaConsumed(now, slot, m.allowance[slot]-leftover, leftover)
		}
	}
	for slot := range m.quota {
		if m.isQoS[slot] {
			m.quota[slot] = m.alpha[slot] * m.goals[slot] * float64(m.epochLen) * (1 + m.opts.QuotaMargin)
		} else {
			m.quota[slot] = m.nonQoSGoal[slot] * float64(m.epochLen)
		}
	}
	m.epochStartCycle = now
	// The paper's quotas are kernel-level (Quota_k), with the per-SM
	// split a distribution mechanism (Section 3.4.1). Carry is therefore
	// pooled GPU-wide before redistribution: Rollover keeps a QoS
	// kernel's total unused quota (Figure 4c), Elastic carries total
	// debt (Figure 4b). Pooling also prevents a slow SM from hoarding
	// quota that faster SMs could have consumed.
	carry := m.carryScratch
	for i := range carry {
		carry[i] = 0
	}
	for smID := range m.counters {
		for slot, v := range m.counters[smID] {
			switch {
			case m.scheme == Elastic:
				if v < 0 {
					carry[slot] += v
				}
			case (m.scheme == Rollover || m.scheme == RolloverTime) && m.isQoS[slot]:
				if v > 0 {
					carry[slot] += v
				}
			}
		}
	}
	// Bound the carry to one extra epoch per slot so an unreachable goal
	// cannot bank unlimited allowance.
	for slot := range carry {
		if carry[slot] > m.quota[slot] {
			carry[slot] = m.quota[slot]
		}
	}
	for slot := range m.allowance {
		m.allowance[slot] = m.quota[slot] + carry[slot]
		tr.QuotaGrant(now, slot, m.quota[slot], m.alpha[slot])
		if carry[slot] != 0 {
			tr.QuotaCarry(now, slot, carry[slot], m.allowance[slot])
		}
	}
	for smID := range m.counters {
		c := m.counters[smID]
		s := m.g.SMs[smID]
		for slot := range c {
			c[slot] = m.share(smID, slot) + m.shareOf(carry[slot], smID, slot)
			m.exhaustAt[smID][slot] = -1
		}
		s.Wake(now)
	}
}

// shareOf splits an amount across SMs with the same TB-proportional rule
// as share.
func (m *Manager) shareOf(amount float64, smID, slot int) float64 {
	if amount == 0 {
		return 0
	}
	total := m.g.TotalResidentTBs(slot)
	if total == 0 {
		return amount / float64(len(m.counters))
	}
	return amount * float64(m.g.SMs[smID].ResidentTBs(slot)) / float64(total)
}

// share returns slot's local quota on smID: the GPU-wide quota split
// proportionally to the TBs each SM hosts (Section 3.4.1). Before any TB
// is resident (initial allocation) the quota is split evenly so execution
// can start.
func (m *Manager) share(smID, slot int) float64 {
	total := m.g.TotalResidentTBs(slot)
	if total == 0 {
		return m.quota[slot] / float64(len(m.counters))
	}
	return m.quota[slot] * float64(m.g.SMs[smID].ResidentTBs(slot)) / float64(total)
}

// CounterFor exposes a local counter for tests.
func (m *Manager) CounterFor(smID, slot int) float64 { return m.counters[smID][slot] }

// Quota exposes the slot's current GPU-wide per-epoch quota (tests).
func (m *Manager) Quota(slot int) float64 { return m.quota[slot] }

// NonQoSGoal exposes the artificial IPC goal of a non-QoS slot (tests,
// debugging).
func (m *Manager) NonQoSGoal(slot int) float64 { return m.nonQoSGoal[slot] }

// LastEpochIPC exposes the previous epoch's measured IPC of a slot.
func (m *Manager) LastEpochIPC(slot int) float64 { return m.lastEpoch[slot] }
