package qos

import (
	"repro/internal/kern"
	"repro/internal/sm"
)

// adjustTBs implements the run-time static resource adjustment of
// Section 3.6. Once per epoch, for every QoS kernel that is behind its
// goal and has little idle TLP (at most one "idle TB"), the adjuster
// tries to add one TB — from free resources if possible, otherwise by
// preempting TBs of a victim kernel chosen by the paper's three rules.
// Swaps are skipped while preemption requests are pending.
func (m *Manager) adjustTBs(now int64) {
	m.epochCount++
	if m.g.Engine.Pending(now) {
		m.g.IdleWarpAverages() // still reset the sampling window
		return
	}
	idle := m.g.IdleWarpAverages()
	// Giving TBs back to non-QoS kernels requires every QoS kernel to
	// hold its goal with a little margin — releasing exactly at the
	// boundary keeps the QoS kernel orbiting the goal from below.
	release := true
	for _, q := range m.qosSlots {
		if m.g.IPC(q) < m.goals[q]*1.01 {
			release = false
			break
		}
	}
	for _, q := range m.qosSlots {
		hist := m.g.IPC(q)
		if hist >= m.goals[q] {
			m.deficitStreak[q] = 0
			continue
		}
		// Growing TLP helps only when the kernel could not consume the
		// quota it already had: a kernel that exhausted its quota on
		// every SM is throttled by the scheme, not short of warps. A
		// single bad epoch is often the disturbance of a preceding
		// swap, so the deficit must persist before TBs move again.
		if m.unexhausted[q] == 0 {
			m.deficitStreak[q] = 0
			continue
		}
		m.deficitStreak[q]++
		if m.deficitStreak[q] < 2 || m.epochCount < m.lastSwap[q]+2 {
			continue
		}
		m.deficitStreak[q] = 0 // cooldown: let the next epoch settle
		if m.addOneTB(now, q, idle) {
			m.lastSwap[q] = m.epochCount
		}
	}
	if release {
		m.releaseToNonQoS(idle)
	}
}

// releaseToNonQoS lets non-QoS kernels grow back once every QoS kernel is
// at its goal: into spare static resources when there are any, otherwise
// by reclaiming one TB per SM from a QoS kernel that has enough IPC
// margin to lose it (the inverse of the grow path — "QoS kernels receive
// just enough resources", Section 3). Without this path the TLP taken
// during catch-up would stay lost forever.
func (m *Manager) releaseToNonQoS(idle [][]float64) {
	now := m.g.Now
	moved := false
	defer func() {
		if moved {
			for _, q := range m.qosSlots {
				m.lastSwap[q] = m.epochCount
			}
		}
	}()
	for _, slot := range m.nonQoS {
		for smID, s := range m.g.SMs {
			if !m.g.Allowed(slot, smID) {
				continue
			}
			cap := s.TBCap(slot)
			if cap < 0 || s.ResidentTBs(slot) < cap {
				continue // still has headroom it is not using
			}
			switch {
			case s.RoomWithoutCap(slot):
			case m.epochCount >= m.lastReclaim+2 && m.reclaimFromQoS(now, smID, slot, idle):
				m.lastReclaim = m.epochCount
				moved = true
			default:
				continue
			}
			s.SetTBCap(slot, cap+1)
			m.g.Tracer().TBAdjust(now, smID, slot, cap+1, cap)
			m.g.RequestDispatch()
		}
	}
}

// reclaimFromQoS frees room for one TB of non-QoS kernel nq on smID by
// preempting TBs of a QoS kernel that can spare them under the paper's
// victim rules — idle TBs contribute no progress (rule 2), and a kernel
// with enough IPC margin survives the loss (rule 3). Returns true when
// room was freed.
func (m *Manager) reclaimFromQoS(now int64, smID, nq int, idle [][]float64) bool {
	s := m.g.SMs[smID]
	need := m.g.Kernels[nq].TBResources()
	for _, j := range m.qosSlots {
		resident := s.ResidentTBs(j)
		if resident == 0 || m.g.IPC(j) < m.goals[j]*1.02 {
			continue // never nibble a kernel sitting at its goal edge
		}
		n := tbsToEvict(s, need, m.g.Kernels[j].TBResources())
		if n <= 0 || n >= resident {
			continue
		}
		if !m.victimOK(now, smID, j, n, idle) && !m.spareAfterLoss(smID, j, n, resident) {
			continue
		}
		for i := 0; i < n; i++ {
			if !m.g.PreemptOneTB(now, smID, j) {
				return i > 0 && s.RoomWithoutCap(nq)
			}
		}
		prev := s.TBCap(j)
		s.SetTBCap(j, s.ResidentTBs(j))
		m.g.Tracer().TBAdjust(now, smID, j, s.TBCap(j), prev)
		return true
	}
	return false
}

// addOneTB attempts to grow kernel q by one TB on every SM where q's
// idle TLP is low — the paper's decision is per SM, per epoch
// (Section 3.6): "if for a QoS kernel the number of idle TBs is no more
// than one and IPChistory has not achieved its goal, one more TB will be
// allocated".
func (m *Manager) addOneTB(now int64, q int, idle [][]float64) bool {
	warpsPerTB := float64(m.g.Kernels[q].WarpsPerTB())
	any := false
	for smID, s := range m.g.SMs {
		if !m.g.Allowed(q, smID) {
			continue
		}
		idleTBs := idle[smID][q] / warpsPerTB
		if idleTBs > 1 {
			continue // enough spare TLP here already (Section 3.6)
		}
		switch {
		case s.RoomWithoutCap(q):
			m.raiseCap(s, q)
			m.g.RequestDispatch()
			any = true
		case m.evictForOne(now, smID, q, idle):
			m.raiseCap(s, q)
			m.g.RequestDispatch()
			any = true
		}
	}
	return any
}

// raiseCap lets one more TB of slot onto s (unlimited caps stay so).
func (m *Manager) raiseCap(s *sm.SM, slot int) {
	if cap := s.TBCap(slot); cap >= 0 {
		s.SetTBCap(slot, cap+1)
		m.g.Tracer().TBAdjust(m.g.Now, s.ID, slot, cap+1, cap)
	}
}

// evictForOne frees enough resources on smID for one TB of kernel q by
// preempting TBs of a victim kernel. Victims must satisfy one of the
// paper's rules: (1) be a non-QoS kernel, (2) have at least n+1 idle TBs
// when n must be vacated, or (3) have enough IPC margin that losing n of
// its N TBs keeps it above goal. Returns true when space was freed.
func (m *Manager) evictForOne(now int64, smID, q int, idle [][]float64) bool {
	s := m.g.SMs[smID]
	need := m.g.Kernels[q].TBResources()
	for j := range m.g.Kernels {
		if j == q || s.ResidentTBs(j) == 0 {
			continue
		}
		n := tbsToEvict(s, need, m.g.Kernels[j].TBResources())
		if n <= 0 || n > s.ResidentTBs(j) {
			continue
		}
		if !m.victimOK(now, smID, j, n, idle) {
			continue
		}
		for i := 0; i < n; i++ {
			if !m.g.PreemptOneTB(now, smID, j) {
				return i > 0 && s.RoomWithoutCap(q)
			}
		}
		// Pin the victim's cap so the dispatcher does not refill the
		// space before q claims it.
		prev := s.TBCap(j)
		s.SetTBCap(j, s.ResidentTBs(j))
		m.g.Tracer().TBAdjust(now, smID, j, s.TBCap(j), prev)
		return true
	}
	return false
}

// spareAfterLoss estimates whether QoS kernel j on smID would still
// exhaust its quota within an epoch after losing n of its resident TBs:
// a kernel that drained its quota at time t with N TBs is projected to
// need t*N/(N-n), with a 10% safety margin. A kernel that finishes its
// per-epoch work early is being deliberately throttled; its surplus TBs
// contribute nothing and can be returned to non-QoS kernels.
func (m *Manager) spareAfterLoss(smID, j, n, resident int) bool {
	at := m.exhaustAt[smID][j]
	if at < 0 || resident <= n {
		return false
	}
	t := float64(at - m.epochStartCycle)
	if t <= 0 {
		return true
	}
	projected := t * float64(resident) / float64(resident-n)
	return projected < 0.85*float64(m.epochLen)
}

// victimOK applies the paper's victim-selection rules to kernel j when n
// of its TBs must be vacated on smID. A QoS kernel below its own goal is
// never a victim: with two struggling QoS kernels, the idle-TB rule would
// otherwise let them evict each other in a mutually destructive loop
// (issue-queued warps look "idle" while the kernel is starved of
// something else entirely).
func (m *Manager) victimOK(now int64, smID, j, n int, idle [][]float64) bool {
	if !m.isQoS[j] {
		return true
	}
	hist := m.g.IPC(j)
	if hist < m.goals[j] {
		return false
	}
	idleTBs := idle[smID][j] / float64(m.g.Kernels[j].WarpsPerTB())
	if idleTBs >= float64(n+1) {
		return true
	}
	total := m.g.TotalResidentTBs(j)
	if total == 0 {
		return false
	}
	return hist*(1-float64(n)/float64(total)) > m.goals[j]
}

// tbsToEvict computes how many TBs of a victim (with per-TB resources v)
// must leave SM s so one TB with resources need fits. It returns 0 when
// the TB already fits and -1 when no count of victim TBs can make room.
func tbsToEvict(s *sm.SM, need, v kern.Resources) int {
	n := 0
	grow := func(deficit, per int) bool {
		if deficit <= 0 {
			return true
		}
		if per <= 0 {
			return false
		}
		k := (deficit + per - 1) / per
		if k > n {
			n = k
		}
		return true
	}
	if !grow(need.Threads-s.FreeThreads(), v.Threads) {
		return -1
	}
	if !grow(need.RegBytes-s.FreeRegBytes(), v.RegBytes) {
		return -1
	}
	if !grow(need.ShmBytes-s.FreeShmBytes(), v.ShmBytes) {
		return -1
	}
	if s.FreeTBSlots() < 1 && n < 1 {
		n = 1
	}
	return n
}
