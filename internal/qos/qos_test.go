package qos

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func smallCfg() config.GPU {
	cfg := config.Base()
	cfg.NumSMs = 4
	return cfg
}

func smallProfile(name string) kern.Profile {
	return kern.Profile{
		Name: name, Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 20,
		FracGlobalMem: 0.1, FracStore: 0.2,
		DepDensity:     0.2,
		CoalesceDegree: 1.5, ReuseFrac: 0.5,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, GridTBs: 48,
	}
}

func newGPUFromProfiles(t *testing.T, profiles ...kern.Profile) *gpu.GPU {
	t.Helper()
	kernels := make([]*kern.Kernel, len(profiles))
	for i, p := range profiles {
		k, err := kern.Build(i, p, 17)
		if err != nil {
			t.Fatal(err)
		}
		kernels[i] = k
	}
	g, err := gpu.New(smallCfg(), kernels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newGPU(t *testing.T, names ...string) *gpu.GPU {
	t.Helper()
	kernels := make([]*kern.Kernel, len(names))
	for i, n := range names {
		k, err := kern.Build(i, smallProfile(n), 17)
		if err != nil {
			t.Fatal(err)
		}
		kernels[i] = k
	}
	g, err := gpu.New(smallCfg(), kernels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// isolatedIPC measures the small profile alone on the small GPU.
func isolatedIPC(t *testing.T, cycles int64) float64 {
	g := newGPU(t, "iso")
	g.Run(cycles)
	return g.IPC(0)
}

func TestNewValidation(t *testing.T) {
	g := newGPU(t, "a", "b")
	if _, err := New(g, Rollover, []float64{100}, Options{}); err == nil {
		t.Fatal("accepted wrong goals length")
	}
	if _, err := New(g, Rollover, []float64{0, 0}, Options{}); err == nil {
		t.Fatal("accepted a run with no QoS kernel")
	}
	if _, err := New(g, Rollover, []float64{-1, 0}, Options{}); err == nil {
		t.Fatal("accepted a negative goal")
	}
	m, err := New(g, Rollover, []float64{50, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.isQoS[0] || m.isQoS[1] {
		t.Fatal("QoS classification wrong")
	}
	if m.Goal(0) != 50 || m.Goal(1) != 0 {
		t.Fatal("goals not retained")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range []Scheme{Naive, NaiveHistory, Elastic, Rollover, RolloverTime} {
		if s.String() == "" {
			t.Fatalf("scheme %d has empty name", int(s))
		}
	}
	if Naive.historyAdjusted() {
		t.Fatal("Naive must not history-adjust")
	}
	if !Rollover.historyAdjusted() {
		t.Fatal("Rollover must history-adjust")
	}
}

func TestQuotaCountersDecrement(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Rollover, []float64{100, 0}, Options{})
	m.Install()
	before := m.CounterFor(0, 0)
	if before <= 0 {
		t.Fatal("no initial quota allocated")
	}
	m.OnIssue(0, 0, 32)
	if got := m.CounterFor(0, 0); got != before-32 {
		t.Fatalf("counter = %v, want %v", got, before-32)
	}
}

func TestCanIssueFollowsCounter(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Rollover, []float64{100, 0}, Options{})
	m.Install()
	if !m.CanIssue(0, 0) {
		t.Fatal("QoS kernel blocked with positive counter")
	}
	for m.CounterFor(0, 0) > 0 {
		m.OnIssue(0, 0, 32)
	}
	if m.CanIssue(0, 0) {
		t.Fatal("QoS kernel issuable with exhausted counter")
	}
}

func TestRolloverTimePrioritizesQoS(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, RolloverTime, []float64{100, 0}, Options{})
	m.Install()
	if m.CanIssue(0, 1) {
		t.Fatal("non-QoS kernel issuable while QoS quota remains under RolloverTime")
	}
	for m.CounterFor(0, 0) > 0 {
		m.OnIssue(0, 0, 32)
	}
	if !m.CanIssue(0, 1) {
		t.Fatal("non-QoS kernel still blocked after QoS quota drained")
	}
}

func TestQoSGoalReached(t *testing.T) {
	iso := isolatedIPC(t, 60_000)
	for _, scheme := range []Scheme{Elastic, Rollover, RolloverTime} {
		g := newGPU(t, "a", "b")
		goals := []float64{0.5 * iso, 0}
		SetupFineGrained(g, goals, []float64{0.5, 0})
		m, _ := New(g, scheme, goals, Options{})
		m.Install()
		g.Run(60_000)
		if got := g.IPC(0); got < goals[0]*0.97 {
			t.Errorf("%v: QoS kernel at %.1f, goal %.1f", scheme, got, goals[0])
		}
		if msg := g.CheckInvariants(); msg != "" {
			t.Errorf("%v: %s", scheme, msg)
		}
	}
}

func TestRolloverThrottlesAtGoal(t *testing.T) {
	iso := isolatedIPC(t, 60_000)
	g := newGPU(t, "a", "b")
	goals := []float64{0.4 * iso, 0}
	SetupFineGrained(g, goals, []float64{0.4, 0})
	m, _ := New(g, Rollover, goals, Options{})
	m.Install()
	g.Run(60_000)
	// The QoS kernel must not grossly exceed its goal: excess cycles
	// belong to the non-QoS kernel (Figure 9: Rollover ~2.8% over).
	if ratio := g.IPC(0) / goals[0]; ratio > 1.10 {
		t.Fatalf("QoS kernel at %.2fx its goal; quota not throttling", ratio)
	}
	if g.Stats[0].ThrottledCycles == 0 {
		t.Fatal("no throttling recorded for a reachable goal")
	}
}

func TestNonQoSRunsInSlack(t *testing.T) {
	iso := isolatedIPC(t, 60_000)
	g := newGPU(t, "a", "b")
	goals := []float64{0.3 * iso, 0}
	SetupFineGrained(g, goals, []float64{0.3, 0})
	m, _ := New(g, Rollover, goals, Options{})
	m.Install()
	g.Run(60_000)
	if g.IPC(1) <= 0 {
		t.Fatal("non-QoS kernel made no progress despite slack")
	}
	if m.Replenish == 0 {
		t.Fatal("slack never replenished the non-QoS kernel")
	}
}

func TestElasticStartsEpochsEarly(t *testing.T) {
	iso := isolatedIPC(t, 40_000)
	g := newGPU(t, "a", "b")
	goals := []float64{0.3 * iso, 0}
	SetupFineGrained(g, goals, []float64{0.3, 0})
	m, _ := New(g, Elastic, goals, Options{})
	m.Install()
	g.Run(40_000)
	if m.ElasticNew == 0 {
		t.Fatal("elastic epoch never restarted early despite an easy goal")
	}
}

func TestAlphaRisesWhenBehind(t *testing.T) {
	iso := isolatedIPC(t, 40_000)
	g := newGPU(t, "a", "b")
	// An unreachable goal (1.0x isolated while sharing) keeps the
	// kernel behind, so α must rise above 1.
	goals := []float64{iso, 0}
	SetupFineGrained(g, goals, []float64{0.99, 0})
	m, _ := New(g, Rollover, goals, Options{})
	m.Install()
	g.Run(40_000)
	if m.Alpha(0) <= 1 {
		t.Fatalf("α = %v for an unreachable goal, want > 1", m.Alpha(0))
	}
	if m.Alpha(0) > m.opts.AlphaCap {
		t.Fatalf("α = %v exceeds cap %v", m.Alpha(0), m.opts.AlphaCap)
	}
}

func TestDisableHistoryKeepsAlphaOne(t *testing.T) {
	iso := isolatedIPC(t, 40_000)
	g := newGPU(t, "a", "b")
	goals := []float64{iso, 0}
	SetupFineGrained(g, goals, []float64{0.99, 0})
	m, _ := New(g, Rollover, goals, Options{DisableHistory: true})
	m.Install()
	g.Run(40_000)
	if m.Alpha(0) != 1 {
		t.Fatalf("α = %v with history disabled", m.Alpha(0))
	}
}

func TestNaiveDiscardsLeftovers(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Naive, []float64{1000, 0}, Options{})
	m.Install()
	// Manufacture a leftover and roll the epoch: Naive must reset, not
	// accumulate.
	base := m.CounterFor(0, 0)
	m.refreshQuotas(10_000)
	if got := m.CounterFor(0, 0); got != base {
		t.Fatalf("Naive carried leftover: %v -> %v", base, got)
	}
}

func TestRolloverCarriesLeftovers(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Rollover, []float64{1000, 0}, Options{})
	m.Install()
	base := m.CounterFor(0, 0)
	m.refreshQuotas(10_000)
	if got := m.CounterFor(0, 0); got <= base {
		t.Fatalf("Rollover did not carry unused quota: %v -> %v", base, got)
	}
}

func TestElasticCarriesDebt(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Elastic, []float64{1000, 0}, Options{})
	m.Install()
	base := m.CounterFor(0, 0)
	// Overconsume on SM0 only; the debt must reduce the next allocation.
	m.OnIssue(0, 0, int(base)+500)
	m.refreshQuotas(10_000)
	if got := m.CounterFor(0, 0); got >= base {
		t.Fatalf("Elastic dropped the debt: %v -> %v", base, got)
	}
}

func TestQuotaMarginApplied(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Rollover, []float64{1000, 0}, Options{QuotaMargin: 0.10})
	m.Install()
	want := 1000.0 * float64(g.Cfg.EpochLength) * 1.10
	if got := m.Quota(0); got != want {
		t.Fatalf("quota = %v, want %v", got, want)
	}
	m2, _ := New(g, Rollover, []float64{1000, 0}, Options{QuotaMargin: -1})
	m2.Install()
	if got := m2.Quota(0); got != 1000*float64(g.Cfg.EpochLength) {
		t.Fatalf("negative margin should disable: quota %v", got)
	}
}

func TestStaticAdjusterGrowsStarvedQoSKernel(t *testing.T) {
	iso := isolatedIPC(t, 60_000)
	g := newGPU(t, "a", "b")
	goals := []float64{0.9 * iso, 0}
	SetupFineGrained(g, goals, []float64{0.9, 0})
	// Pin the QoS kernel to a deliberately tiny allocation so only the
	// run-time adjuster can get it anywhere near its goal.
	for _, s := range g.SMs {
		s.SetTBCap(0, 2)
	}
	m, _ := New(g, Rollover, goals, Options{})
	m.Install()
	g.Run(100_000)
	grew := false
	for _, s := range g.SMs {
		if cap := s.TBCap(0); cap < 0 || cap > 2 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("static adjuster never raised the starved QoS kernel's caps")
	}
}

func TestDisableStaticAdjustFreezesCaps(t *testing.T) {
	iso := isolatedIPC(t, 40_000)
	g := newGPU(t, "a", "b")
	goals := []float64{0.9 * iso, 0}
	SetupFineGrained(g, goals, []float64{0.15, 0})
	caps := make([]int, len(g.SMs))
	for i, s := range g.SMs {
		caps[i] = s.TBCap(0)
	}
	m, _ := New(g, Rollover, goals, Options{DisableStaticAdjust: true})
	m.Install()
	g.Run(60_000)
	for i, s := range g.SMs {
		if s.TBCap(0) != caps[i] {
			t.Fatal("caps moved with the static adjuster disabled")
		}
	}
}

func TestSetupFineGrainedMasks(t *testing.T) {
	g := newGPU(t, "q", "n1", "n2")
	SetupFineGrained(g, []float64{100, 0, 0}, nil)
	// QoS kernel everywhere; the two non-QoS kernels split the SMs.
	for i := range g.SMs {
		if !g.Allowed(0, i) {
			t.Fatal("QoS kernel masked off an SM")
		}
		if g.Allowed(1, i) == g.Allowed(2, i) {
			t.Fatalf("SM %d not owned by exactly one non-QoS kernel", i)
		}
	}
}

func TestTbsToEvict(t *testing.T) {
	g := newGPU(t, "a", "b")
	s := g.SMs[0]
	// Fill the SM with kernel 1 TBs, then ask how many must leave for
	// one TB of kernel 0 (identical shapes → exactly one).
	for i := 0; s.FreeFor(1); i++ {
		s.Dispatch(0, 1, i, nil)
	}
	need := g.Kernels[0].TBResources()
	victim := g.Kernels[1].TBResources()
	if n := tbsToEvict(s, need, victim); n != 1 {
		t.Fatalf("tbsToEvict = %d, want 1 for identical TB shapes", n)
	}
}

func TestQosExhaustedEverywhere(t *testing.T) {
	g := newGPU(t, "a", "b")
	g.Run(100) // dispatch some TBs
	m, _ := New(g, Rollover, []float64{1000, 0}, Options{})
	m.Install()
	if m.qosExhaustedEverywhere() {
		t.Fatal("fresh quotas reported exhausted")
	}
	for sm := 0; sm < g.Cfg.NumSMs; sm++ {
		for m.CounterFor(sm, 0) > 0 {
			m.OnIssue(sm, 0, 1024)
		}
	}
	if !m.qosExhaustedEverywhere() {
		t.Fatal("drained quotas not reported exhausted")
	}
}

func TestQuickQuotaAccounting(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Rollover, []float64{5000, 0}, Options{})
	m.Install()
	// Property: between refreshes, a counter always equals its initial
	// value minus exactly the thread instructions reported to OnIssue.
	f := func(seed uint64, issues []uint8) bool {
		m.refreshQuotas(0)
		sm := int(seed % uint64(g.Cfg.NumSMs))
		start := m.CounterFor(sm, 0)
		var total float64
		for _, n := range issues {
			lanes := int(n%32) + 1
			m.OnIssue(sm, 0, lanes)
			total += float64(lanes)
		}
		return m.CounterFor(sm, 0) == start-total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanIssueMatchesCounterSign(t *testing.T) {
	g := newGPU(t, "a", "b")
	m, _ := New(g, Rollover, []float64{5000, 0}, Options{})
	m.Install()
	f := func(drain uint32) bool {
		m.refreshQuotas(0)
		m.OnIssue(0, 0, int(drain%200_000))
		return m.CanIssue(0, 0) == (m.CounterFor(0, 0) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
