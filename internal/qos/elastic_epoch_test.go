package qos

import (
	"testing"

	"repro/internal/trace"
)

// TestElasticEpochRecordsMatchElasticNew is the regression test for the
// epoch-roll accounting bug: Elastic used to restart epochs by topping up
// per-SM counters locally while the GPU kept rolling on its own fixed
// schedule, so the recorded epochs never lined up with the intervals the
// controller actually managed (and a forced restart landing near a
// boundary double-rolled). With ForceEpochRoll the GPU's EpochRecords,
// the scheduled epoch clock, and Elastic's early restarts must all
// describe the same intervals:
//
//   - scheduled rolls close an interval of exactly EpochLength cycles;
//   - every early restart closes a strictly shorter interval;
//   - the number of short intervals equals Manager.ElasticNew, which in
//     turn equals the tracer's epochs_forced counter;
//   - scheduled + forced rolls account for every EpochRecord.
func TestElasticEpochRecordsMatchElasticNew(t *testing.T) {
	iso := isolatedIPC(t, 40_000)
	g := newGPU(t, "a", "b")
	tr := trace.New(trace.DefaultRingSize)
	g.SetTracer(tr)
	goals := []float64{0.3 * iso, 0}
	SetupFineGrained(g, goals, []float64{0.3, 0})
	m, err := New(g, Elastic, goals, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Install()
	g.Run(40_000)

	if m.ElasticNew == 0 {
		t.Fatal("elastic never restarted an epoch early; test needs a forced roll")
	}
	recs := g.Rec.ByKernel[0]
	if len(recs) != g.EpochIndex() {
		t.Fatalf("slot 0 has %d epoch records, GPU rolled %d epochs", len(recs), g.EpochIndex())
	}

	epochLen := g.Cfg.EpochLength
	short, prev := 0, int64(0)
	for i, r := range recs {
		gap := r.EndCycle - prev
		if gap > epochLen {
			t.Fatalf("epoch %d spans %d cycles (> EpochLength %d): a forced roll failed to reset the epoch clock",
				i, gap, epochLen)
		}
		if gap < epochLen {
			short++
		}
		prev = r.EndCycle
	}
	if int64(short) != m.ElasticNew {
		t.Fatalf("%d short epochs recorded, but ElasticNew = %d: early restarts and epoch records disagree",
			short, m.ElasticNew)
	}

	forced := tr.Registry().Counter("epochs_forced").Value()
	scheduled := tr.Registry().Counter("epochs").Value()
	if int64(forced) != m.ElasticNew {
		t.Fatalf("epochs_forced counter = %v, ElasticNew = %d", forced, m.ElasticNew)
	}
	if int(forced+scheduled) != g.EpochIndex() {
		t.Fatalf("scheduled (%v) + forced (%v) rolls != %d total epochs", scheduled, forced, g.EpochIndex())
	}
}

// TestForcedRollDefersScheduledRoll pins the double-roll fix directly: a
// forced roll must push the next scheduled roll a full epoch out, so the
// two can never fire for the same interval.
func TestForcedRollDefersScheduledRoll(t *testing.T) {
	g := newGPU(t, "a", "b")
	epochLen := g.Cfg.EpochLength
	if g.NextEpochAt() != epochLen {
		t.Fatalf("fresh GPU schedules first roll at %d, want %d", g.NextEpochAt(), epochLen)
	}
	g.Run(100) // mid-epoch
	before := g.EpochIndex()
	g.ForceEpochRoll(g.Now)
	if g.EpochIndex() != before+1 {
		t.Fatal("ForceEpochRoll did not roll the epoch")
	}
	if want := g.Now + epochLen; g.NextEpochAt() != want {
		t.Fatalf("next scheduled roll at %d after a forced roll at %d, want %d",
			g.NextEpochAt(), g.Now, want)
	}
}
