package metrics

import (
	"reflect"
	"testing"
)

// Every KernelStats field must be classified here; the reflection walk
// below fails when a new field is added without deciding how the sharded
// stepping mode's drain treats it (silently dropping a counter in
// sharded runs is exactly the bug this guards against).
var (
	drainAdditive = map[string]bool{
		"ThreadInstrs": true, "WarpInstrs": true, "ALUInstrs": true,
		"SFUInstrs": true, "SharedInstrs": true, "GlobalLoads": true,
		"GlobalStores": true, "Barriers": true, "Branches": true,
		"L1Accesses": true, "L1Misses": true, "MemTxns": true,
		"TBsDispatched": true, "TBsCompleted": true, "TBsPreempted": true,
		"ThrottledCycles": true, "IdleWarpSamples": true,
	}
	drainWindow = map[string]bool{
		"HasIssued": true, "FirstIssueCycle": true, "LastIssueCycle": true,
	}
	drainMasterOnly = map[string]bool{
		"Launches": true, "EpochStartInstrs": true, "LastEpochInstrs": true,
		"StartCycle": true,
	}
)

func TestDrainClassificationCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(KernelStats{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		n := 0
		for _, m := range []map[string]bool{drainAdditive, drainWindow, drainMasterOnly} {
			if m[name] {
				n++
			}
		}
		if n != 1 {
			t.Errorf("field %s classified %d times; every field needs exactly one drain class", name, n)
		}
	}
}

// TestDrainIntoAdditive sets every additive field via reflection so a
// field missing from DrainInto's fold shows up as a lost count.
func TestDrainIntoAdditive(t *testing.T) {
	var src, dst KernelStats
	sv := reflect.ValueOf(&src).Elem()
	for name := range drainAdditive {
		sv.FieldByName(name).SetInt(7)
	}
	DrainInto(&dst, &src)
	dv := reflect.ValueOf(&dst).Elem()
	for name := range drainAdditive {
		if got := dv.FieldByName(name).Int(); got != 7 {
			t.Errorf("dst.%s = %d after drain, want 7", name, got)
		}
		if got := sv.FieldByName(name).Int(); got != 0 {
			t.Errorf("src.%s = %d after drain, want 0 (shard must reset)", name, got)
		}
	}
	// Draining twice must not double-count.
	DrainInto(&dst, &src)
	for name := range drainAdditive {
		if got := dv.FieldByName(name).Int(); got != 7 {
			t.Errorf("dst.%s = %d after second drain, want 7", name, got)
		}
	}
}

func TestDrainIntoWindowFold(t *testing.T) {
	dst := KernelStats{HasIssued: true, FirstIssueCycle: 100, LastIssueCycle: 200}
	src := KernelStats{HasIssued: true, FirstIssueCycle: 50, LastIssueCycle: 150}
	DrainInto(&dst, &src)
	if dst.FirstIssueCycle != 50 || dst.LastIssueCycle != 200 {
		t.Errorf("window fold = [%d,%d], want [50,200]", dst.FirstIssueCycle, dst.LastIssueCycle)
	}

	// A shard that never issued must not disturb the master window.
	dst = KernelStats{HasIssued: true, FirstIssueCycle: 100, LastIssueCycle: 200}
	src = KernelStats{}
	DrainInto(&dst, &src)
	if !dst.HasIssued || dst.FirstIssueCycle != 100 || dst.LastIssueCycle != 200 {
		t.Errorf("empty shard disturbed window: %+v", dst)
	}

	// First issue observed through a shard (master never issued).
	dst = KernelStats{}
	src = KernelStats{HasIssued: true, FirstIssueCycle: 0, LastIssueCycle: 9}
	DrainInto(&dst, &src)
	if !dst.HasIssued || dst.FirstIssueCycle != 0 || dst.LastIssueCycle != 9 {
		t.Errorf("first-issue-at-cycle-0 fold lost: %+v", dst)
	}
}

func TestDrainIntoLeavesMasterOnlyFields(t *testing.T) {
	dst := KernelStats{Launches: 3, EpochStartInstrs: 11, LastEpochInstrs: 22, StartCycle: 33}
	src := KernelStats{ThreadInstrs: 5}
	DrainInto(&dst, &src)
	if dst.Launches != 3 || dst.EpochStartInstrs != 11 || dst.LastEpochInstrs != 22 || dst.StartCycle != 33 {
		t.Errorf("master-only fields disturbed: %+v", dst)
	}
	if dst.ThreadInstrs != 5 {
		t.Errorf("ThreadInstrs = %d, want 5", dst.ThreadInstrs)
	}
}
