package metrics

// DrainInto folds a per-SM stats shard into the GPU-wide master record
// and resets the shard. The sharded stepping mode gives every SM a
// private KernelStats per kernel slot so the parallel phase never writes
// shared memory; the GPU drains the shards at every synchronization point
// a reader can observe (epoch rolls, run exit).
//
// Fields fall into three classes, and the drain_test reflection test
// fails compilation of intent — a newly added field must be filed into
// exactly one class there before the package builds green:
//
//   - additive counters: summed into the master, zeroed in the shard;
//   - window marks (HasIssued/FirstIssueCycle/LastIssueCycle): folded as
//     or/min/max, which commute across shards and drains;
//   - master-only bookkeeping (Launches, EpochStartInstrs,
//     LastEpochInstrs, StartCycle): maintained by the GPU loop directly
//     on the master record and never written through an SM, so the
//     drain must not touch them.
func DrainInto(dst, src *KernelStats) {
	dst.ThreadInstrs += src.ThreadInstrs
	dst.WarpInstrs += src.WarpInstrs
	dst.ALUInstrs += src.ALUInstrs
	dst.SFUInstrs += src.SFUInstrs
	dst.SharedInstrs += src.SharedInstrs
	dst.GlobalLoads += src.GlobalLoads
	dst.GlobalStores += src.GlobalStores
	dst.Barriers += src.Barriers
	dst.Branches += src.Branches
	dst.L1Accesses += src.L1Accesses
	dst.L1Misses += src.L1Misses
	dst.MemTxns += src.MemTxns
	dst.TBsDispatched += src.TBsDispatched
	dst.TBsCompleted += src.TBsCompleted
	dst.TBsPreempted += src.TBsPreempted
	dst.ThrottledCycles += src.ThrottledCycles
	dst.IdleWarpSamples += src.IdleWarpSamples
	if src.HasIssued {
		if !dst.HasIssued || src.FirstIssueCycle < dst.FirstIssueCycle {
			dst.FirstIssueCycle = src.FirstIssueCycle
		}
		if src.LastIssueCycle > dst.LastIssueCycle {
			dst.LastIssueCycle = src.LastIssueCycle
		}
		dst.HasIssued = true
	}
	launches, epochStart, lastEpoch, startCycle := src.Launches, src.EpochStartInstrs, src.LastEpochInstrs, src.StartCycle
	*src = KernelStats{
		Launches:         launches,
		EpochStartInstrs: epochStart,
		LastEpochInstrs:  lastEpoch,
		StartCycle:       startCycle,
	}
}
