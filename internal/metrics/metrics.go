// Package metrics collects per-kernel execution statistics: cumulative
// thread-instruction counts, per-epoch IPC, memory traffic and TB
// lifecycle events. The QoS manager (internal/qos), the Spart controller
// (internal/spart) and the experiment harness (internal/exp) all read
// these counters; they are the "profiling data" arrow in the paper's
// Figure 3.
package metrics

import "fmt"

// KernelStats accumulates one kernel's counters over a simulation.
type KernelStats struct {
	// ThreadInstrs counts executed thread instructions (<=32 per warp
	// instruction; inactive lanes don't count), the unit of the paper's
	// IPC goals and quotas.
	ThreadInstrs int64
	// WarpInstrs counts issued warp instructions.
	WarpInstrs int64
	// Instruction-class breakdown for the power model.
	ALUInstrs    int64
	SFUInstrs    int64
	SharedInstrs int64
	GlobalLoads  int64
	GlobalStores int64
	Barriers     int64
	Branches     int64

	// Memory behaviour.
	L1Accesses int64
	L1Misses   int64
	MemTxns    int64 // post-coalescing 128B transactions

	// TB lifecycle.
	TBsDispatched int64
	TBsCompleted  int64
	TBsPreempted  int64
	Launches      int64 // kernel (re-)launches, paper Section 4.1

	// Quota interaction (dynamic-resource management visibility).
	ThrottledCycles int64 // scheduler slots denied by the quota gate
	IdleWarpSamples int64 // accumulated idle-warp counts (static mgmt)

	// Epoch bookkeeping maintained by the GPU loop.
	EpochStartInstrs int64 // ThreadInstrs at the top of the epoch
	LastEpochInstrs  int64 // instructions executed in the previous epoch
	StartCycle       int64 // first cycle the kernel was resident

	// Active-window bookkeeping maintained by the SM issue path. A
	// kernel that launches late (relaunch delay, deferred context
	// restore) or drains early must not have its IPC diluted by cycles
	// it could not possibly issue in; goal-attainment checks use the
	// [FirstIssueCycle, LastIssueCycle] window instead of cumulative
	// elapsed cycles. HasIssued disambiguates a first issue at cycle 0
	// from "never issued".
	HasIssued       bool
	FirstIssueCycle int64 // cycle of the first issued warp instruction
	LastIssueCycle  int64 // cycle of the most recent issued warp instruction
}

// IPC returns the kernel's cumulative thread-IPC over elapsed cycles.
// This dilutes kernels that launched late or drained early; ActiveIPC is
// the window-corrected form the QoS controllers use.
func (k *KernelStats) IPC(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(k.ThreadInstrs) / float64(cycles)
}

// NoteIssue records an issued warp instruction at the given cycle for
// active-window accounting. The SM issue path calls this once per issue.
func (k *KernelStats) NoteIssue(now int64) {
	if !k.HasIssued {
		k.HasIssued = true
		k.FirstIssueCycle = now
	}
	k.LastIssueCycle = now
}

// ActiveWindow returns the kernel's active-cycle window: first issue
// through last issue, inclusive. Zero before the first issue.
func (k *KernelStats) ActiveWindow() int64 {
	if !k.HasIssued {
		return 0
	}
	return k.LastIssueCycle - k.FirstIssueCycle + 1
}

// ActiveIPC returns thread-IPC over the kernel's active-cycle window —
// the denominator excludes cycles before the kernel first issued and
// after it drained, so late launches and early completion do not dilute
// the measurement the goal checks consume.
func (k *KernelStats) ActiveIPC() float64 {
	w := k.ActiveWindow()
	if w <= 0 {
		return 0
	}
	return float64(k.ThreadInstrs) / float64(w)
}

// BeginEpoch snapshots the counters at an epoch boundary and returns the
// instruction count of the epoch that just ended.
func (k *KernelStats) BeginEpoch() int64 {
	k.LastEpochInstrs = k.ThreadInstrs - k.EpochStartInstrs
	k.EpochStartInstrs = k.ThreadInstrs
	return k.LastEpochInstrs
}

// L1MissRate returns the kernel's L1 miss ratio.
func (k *KernelStats) L1MissRate() float64 {
	if k.L1Accesses == 0 {
		return 0
	}
	return float64(k.L1Misses) / float64(k.L1Accesses)
}

// String summarizes the stats.
func (k *KernelStats) String() string {
	return fmt.Sprintf("instrs:%d warps:%d l1miss:%.1f%% txns:%d tb:%d/%d",
		k.ThreadInstrs, k.WarpInstrs, 100*k.L1MissRate(), k.MemTxns,
		k.TBsCompleted, k.TBsDispatched)
}

// EpochRecord captures one kernel's view of one epoch, retained by the
// Recorder for post-run analysis (Figure 5 style histograms need the
// whole trajectory, not just the final IPC).
type EpochRecord struct {
	Epoch    int
	EndCycle int64
	Instrs   int64   // thread instructions executed during the epoch
	Quota    float64 // quota allocated at the top of the epoch (0: none)
	Alpha    float64 // history adjustment factor in force
	TBsHeld  int     // resident TBs at the end of the epoch
}

// Recorder retains per-kernel epoch trajectories.
type Recorder struct {
	ByKernel [][]EpochRecord
}

// NewRecorder creates a recorder for n kernels.
func NewRecorder(n int) *Recorder {
	return &Recorder{ByKernel: make([][]EpochRecord, n)}
}

// Add appends an epoch record for kernel k.
func (r *Recorder) Add(k int, rec EpochRecord) {
	r.ByKernel[k] = append(r.ByKernel[k], rec)
}

// AnnotateLast fills the quota/α fields of kernel k's most recent epoch
// record. The GPU creates records at the roll (it does not know quotas);
// the QoS manager annotates them from its epoch hook with the values
// that were in force during the recorded epoch. No-op when the kernel
// has no records yet (the install-time quota refresh precedes epoch 1).
func (r *Recorder) AnnotateLast(k int, quota, alpha float64) {
	recs := r.ByKernel[k]
	if len(recs) == 0 {
		return
	}
	recs[len(recs)-1].Quota = quota
	recs[len(recs)-1].Alpha = alpha
}

// MeanEpochInstrs returns the mean per-epoch instruction count of kernel
// k, or 0 if no epochs were recorded.
func (r *Recorder) MeanEpochInstrs(k int) float64 {
	recs := r.ByKernel[k]
	if len(recs) == 0 {
		return 0
	}
	var sum int64
	for _, rec := range recs {
		sum += rec.Instrs
	}
	return float64(sum) / float64(len(recs))
}
