package metrics

import "testing"

func TestIPC(t *testing.T) {
	k := &KernelStats{ThreadInstrs: 3200}
	if got := k.IPC(100); got != 32 {
		t.Fatalf("IPC = %v, want 32", got)
	}
	if k.IPC(0) != 0 {
		t.Fatal("IPC with zero cycles should be 0")
	}
}

func TestBeginEpoch(t *testing.T) {
	k := &KernelStats{}
	k.ThreadInstrs = 100
	if got := k.BeginEpoch(); got != 100 {
		t.Fatalf("first epoch instrs = %d, want 100", got)
	}
	k.ThreadInstrs = 250
	if got := k.BeginEpoch(); got != 150 {
		t.Fatalf("second epoch instrs = %d, want 150", got)
	}
	if k.LastEpochInstrs != 150 {
		t.Fatalf("LastEpochInstrs = %d", k.LastEpochInstrs)
	}
	// An idle epoch reports zero.
	if got := k.BeginEpoch(); got != 0 {
		t.Fatalf("idle epoch instrs = %d, want 0", got)
	}
}

func TestL1MissRate(t *testing.T) {
	k := &KernelStats{L1Accesses: 10, L1Misses: 3}
	if got := k.L1MissRate(); got != 0.3 {
		t.Fatalf("miss rate %v", got)
	}
	if (&KernelStats{}).L1MissRate() != 0 {
		t.Fatal("zero-access miss rate should be 0")
	}
}

func TestString(t *testing.T) {
	k := &KernelStats{ThreadInstrs: 5}
	if k.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(2)
	r.Add(0, EpochRecord{Epoch: 1, Instrs: 10})
	r.Add(0, EpochRecord{Epoch: 2, Instrs: 30})
	r.Add(1, EpochRecord{Epoch: 1, Instrs: 7})
	if got := r.MeanEpochInstrs(0); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	if got := r.MeanEpochInstrs(1); got != 7 {
		t.Fatalf("mean = %v, want 7", got)
	}
	if len(r.ByKernel[0]) != 2 {
		t.Fatal("records not retained")
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder(1)
	if r.MeanEpochInstrs(0) != 0 {
		t.Fatal("empty recorder mean should be 0")
	}
}
