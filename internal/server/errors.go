package server

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/schema"
)

// Sentinels of the serving layer. Together with the core, exp and
// journal sentinels they form the daemon's error taxonomy; httpStatus is
// the single place any of them is translated to a status code.
var (
	// ErrQueueFull rejects a submission because the bounded admission
	// queue is at capacity. Clients should back off (429 + Retry-After).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrAdmissionRejected marks a job whose what-if co-run missed a QoS
	// goal: either the candidate cannot reach its own goal next to the
	// admitted mix, or admitting it would break an incumbent's goal.
	ErrAdmissionRejected = errors.New("server: admission rejected")
	// ErrUnknownJob is returned for job ids the store has never issued.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrDraining rejects work because the daemon is shutting down.
	ErrDraining = errors.New("server: draining")
	// ErrBadRequest wraps request validation failures (malformed JSON,
	// missing workload, conflicting goal fields).
	ErrBadRequest = errors.New("server: bad request")
	// ErrFleetDisabled rejects /v2 fleet requests on a daemon started
	// without a fleet (501: the capability is not configured here).
	ErrFleetDisabled = errors.New("server: fleet not configured")
)

// httpStatus maps every error the daemon can surface to its HTTP status
// code. This is the only place in the repository where errors become
// status codes; handlers must not hand-pick codes.
func httpStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrQueueFull), errors.Is(err, fleet.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrAdmissionRejected), errors.Is(err, fleet.ErrNoPlacement):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownJob),
		errors.Is(err, fleet.ErrUnknownJob),
		errors.Is(err, fleet.ErrUnknownNode):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining), errors.Is(err, fleet.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrFleetDisabled):
		return http.StatusNotImplemented
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, fleet.ErrBadRequest),
		errors.Is(err, core.ErrUnknownScheme),
		errors.Is(err, core.ErrUnknownWorkload),
		errors.Is(err, core.ErrBadGoal),
		errors.Is(err, schema.ErrBadGoal),
		errors.Is(err, schema.ErrVersion),
		errors.Is(err, journal.ErrVersion):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		// Simulator faults (exp.PanicError, exp.CaseError) and anything
		// unclassified are internal failures.
		return http.StatusInternalServerError
	}
}
