package server

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
)

// TestKernelRequestNewGoalForms round-trips the open-world goal forms
// (latency SLO, periodic deadline) through the v1 request decoder and
// the lowering to core.KernelSpec, exactly as a wire client would
// exercise them.
func TestKernelRequestNewGoalForms(t *testing.T) {
	cfg := cfg16(t)

	t.Run("latency", func(t *testing.T) {
		var req JobRequest
		body := `{"kernel":{"workload":"infer",
			"goal":{"latency":{"instrs":3000000,"seconds":0.0002,"percentile":0.99}}}}`
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		if req.Kernel.Goal == nil || req.Kernel.Goal.Kind != schema.GoalLatency {
			t.Fatalf("decoded goal = %+v, want latency form", req.Kernel.Goal)
		}
		spec, err := req.Kernel.spec(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The SLO lowers through the deadline translation plus the tail
		// headroom: an IPC target strictly above the plain-deadline one.
		base, err := core.IPCGoalForDeadline(cfg, 3_000_000, 0.0002)
		if err != nil {
			t.Fatal(err)
		}
		if spec.GoalIPC <= base {
			t.Fatalf("latency GoalIPC = %v, want > plain-deadline target %v (tail headroom)", spec.GoalIPC, base)
		}
		if want := base * core.LatencyTailHeadroom(0.99); spec.GoalIPC != want {
			t.Fatalf("latency GoalIPC = %v, want %v", spec.GoalIPC, want)
		}
	})

	t.Run("periodic", func(t *testing.T) {
		var req JobRequest
		body := `{"kernel":{"workload":"rtdet",
			"goal":{"periodic":{"instrs":2000000,"period_s":0.0005,"deadline_s":0.0002}}}}`
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		if req.Kernel.Goal == nil || req.Kernel.Goal.Kind != schema.GoalPeriodic {
			t.Fatalf("decoded goal = %+v, want periodic form", req.Kernel.Goal)
		}
		spec, err := req.Kernel.spec(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The constrained deadline (not the period) is the budget.
		want, err := core.IPCGoalForDeadline(cfg, 2_000_000, 0.0002)
		if err != nil {
			t.Fatal(err)
		}
		if spec.GoalIPC != want {
			t.Fatalf("periodic GoalIPC = %v, want %v (deadline_s budget)", spec.GoalIPC, want)
		}
	})

	t.Run("typed-goal-exclusive-with-legacy", func(t *testing.T) {
		var req JobRequest
		body := `{"kernel":{"workload":"infer","goal_frac":0.5,
			"goal":{"latency":{"instrs":1000,"seconds":0.001}}}}`
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		if _, err := req.Kernel.spec(cfg); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("typed+legacy goal: err = %v, want ErrBadRequest", err)
		}
	})

	t.Run("invalid-forms-are-400s", func(t *testing.T) {
		for _, body := range []string{
			`{"kernel":{"workload":"rtdet","goal":{"periodic":{"instrs":10,"period_s":0.01,"deadline_s":0.02}}}}`, // deadline > period
			`{"kernel":{"workload":"infer","goal":{"latency":{"instrs":10,"seconds":0.01,"percentile":0.1}}}}`,    // percentile < 0.5
			`{"kernel":{"workload":"infer","goal":{"latency":{"instrs":0,"seconds":0.01}}}}`,                      // no work
		} {
			var req JobRequest
			if err := json.Unmarshal([]byte(body), &req); err != nil {
				t.Fatalf("%s: decode: %v", body, err)
			}
			if _, err := req.Kernel.spec(cfg); !errors.Is(err, ErrBadRequest) {
				t.Fatalf("%s: err = %v, want ErrBadRequest", body, err)
			}
		}
	})
}

// TestAdmissionLatencyGoal pushes a latency-SLO job through a live
// decision loop: the verdict must carry the derived IPC target and the
// QoS flag, the same contract TestAdmissionDeadlineGoal pins for the
// legacy deadline triple.
func TestAdmissionLatencyGoal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := testServer(t, Config{})
	cfg := cfg16(t)
	g := schema.LatencyGoal(schema.Latency{Instrs: 3_000_000, Seconds: 200e-6})
	_, wantIPC, err := core.ResolveGoal(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	j := submitWait(t, s, JobRequest{Kernel: KernelRequest{Workload: "infer", Goal: &g}})
	if j.spec.GoalIPC != wantIPC {
		t.Fatalf("GoalIPC = %v, want %v", j.spec.GoalIPC, wantIPC)
	}
	v := j.view()
	if v.Verdict == nil || v.Verdict.Candidate.GoalIPC != wantIPC || !v.Verdict.Candidate.IsQoS {
		t.Fatalf("verdict = %+v", v.Verdict)
	}
}
