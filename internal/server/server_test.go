package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/schema"
)

// testServer builds a daemon on a small pool. The default device is the
// paper's 16-SM Table 1 GPU over a 30k-cycle window — the configuration
// the admission fixtures in admission_test.go were measured under.
func testServer(t *testing.T, cfg Config, ropts ...exp.Option) *Server {
	t.Helper()
	opts := append([]exp.Option{exp.WithSessionOptions(core.WithWindow(30_000))}, ropts...)
	workers := 2
	r, err := exp.NewRunner(workers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Runner = r
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// post submits a job body and decodes the response envelope.
func post(t *testing.T, ts *httptest.Server, body string) (int, jobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	return resp.StatusCode, jr
}

// wait blocks until the job has a verdict and returns the final view.
func wait(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Schema != schema.Version {
		t.Fatalf("job response schema = %d, want %d", jr.Schema, schema.Version)
	}
	return jr.Job
}

// TestHTTPStatusTaxonomy pins the one-place error-to-status mapping.
func TestHTTPStatusTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{ErrQueueFull, 429},
		{fmt.Errorf("wrapped: %w", ErrQueueFull), 429},
		{ErrAdmissionRejected, 409},
		{ErrUnknownJob, 404},
		{ErrDraining, 503},
		{ErrBadRequest, 400},
		{core.ErrUnknownScheme, 400},
		{core.ErrUnknownWorkload, 400},
		{core.ErrBadGoal, 400},
		{schema.ErrVersion, 400},
		{journal.ErrVersion, 400},
		{context.DeadlineExceeded, 504},
		{context.Canceled, 503},
		{errors.New("anything else"), 500},
		{&exp.PanicError{Value: "boom"}, 500},
	}
	for _, c := range cases {
		if got := httpStatus(c.err); got != c.want {
			t.Errorf("httpStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestEndpointsSmoke drives every endpoint once over real HTTP.
func TestEndpointsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz reports the configuration and schema version.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Schema != schema.Version || h.Status != "ok" || h.Scheme != "rollover" || h.MaxMix != 3 {
		t.Fatalf("healthz = %+v", h)
	}

	// Bad requests map through the taxonomy.
	for _, body := range []string{
		`{not json`,
		`{"kernel":{"workload":""}}`,
		`{"kernel":{"workload":"sgemm","goal_frac":1.5}}`,
		`{"kernel":{"workload":"sgemm","goal_frac":0.5,"goal_ipc":3}}`,
		`{"kernel":{"workload":"sgemm"},"scheme":"bogus"}`,
		`{"kernel":{"workload":"sgemm"},"scheme":"spart"}`,
	} {
		if code, _ := post(t, ts, body); code != 400 {
			t.Errorf("POST %s = %d, want 400", body, code)
		}
	}

	// An unknown workload passes validation but fails its evaluation.
	code, jr := post(t, ts, `{"kernel":{"workload":"nope"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST unknown workload = %d", code)
	}
	if v := wait(t, ts, jr.Job.ID); v.State != string(JobFailed) || v.Error == "" {
		t.Fatalf("unknown workload job = %+v", v)
	}

	// A plain submission is admitted and GET/list/metrics see it.
	code, jr = post(t, ts, `{"name":"svc","kernel":{"workload":"sgemm","goal_frac":0.95}}`)
	if code != http.StatusAccepted || jr.Schema != schema.Version {
		t.Fatalf("POST = %d %+v", code, jr)
	}
	v := wait(t, ts, jr.Job.ID)
	if v.State != string(JobAdmitted) || v.Verdict == nil || !v.Verdict.IsAdmitted() {
		t.Fatalf("job = %+v", v)
	}
	if v.Verdict.Candidate.Workload != "sgemm" || !v.Verdict.Candidate.Reached {
		t.Fatalf("verdict candidate = %+v", v.Verdict.Candidate)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list jobListResponse
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if list.Schema != schema.Version || len(list.Jobs) != 2 {
		t.Fatalf("list = %+v", list)
	}

	// 404 on unknown ids.
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET unknown job = %d", resp.StatusCode)
	}

	// SSE replays the full event history: evaluating, trace evidence,
	// admitted, verdict.
	sseResp, err := http.Get(ts.URL + "/v1/jobs/" + jr.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(sseResp.Body)
	for sc.Scan() {
		if after, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			kinds = append(kinds, after)
		}
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"state", "verdict", "epoch_roll"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("SSE events %v missing %q", kinds, want)
		}
	}

	// DELETE releases the mix slot; a second DELETE is a client error.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jr.Job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(s.Mix()) != 0 {
		t.Fatalf("DELETE = %d, mix = %v", resp.StatusCode, s.Mix())
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("second DELETE = %d, want 400", resp.StatusCode)
	}

	// /metrics exposes schema version, server counters and absorbed
	// simulator counters as plain text.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(strings.Builder)
	sc = bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text() + "\n")
	}
	resp.Body.Close()
	m := buf.String()
	for _, want := range []string{
		fmt.Sprintf("qosd_schema_version %d", schema.Version),
		"qosd_jobs_submitted 2",
		"qosd_jobs_admitted 1",
		"qosd_jobs_released 1",
		"qosd_jobs_failed 1",
		"qosd_sim_epochs ",
		"qosd_mix_size 0",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestQueueBackpressure deterministically overflows the admission queue:
// with the decision loop gated, one job sits at the gate, one fills the
// queue, and the third submission must get 429 with Retry-After.
func TestQueueBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := testServer(t, Config{QueueDepth: 1})
	s.gate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"kernel":{"workload":"sgemm","goal_frac":0.5}}`
	code1, jr1 := post(t, ts, body)
	if code1 != http.StatusAccepted {
		t.Fatalf("first POST = %d", code1)
	}
	// Wait until the decision loop has taken job 1 off the queue (it is
	// now parked at the gate), so job 2 deterministically fills the queue.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("decision loop never picked up job 1")
		}
		time.Sleep(time.Millisecond)
	}
	code2, jr2 := post(t, ts, body)
	if code2 != http.StatusAccepted {
		t.Fatalf("second POST = %d", code2)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	if er.Schema != schema.Version || er.Code != 429 {
		t.Fatalf("429 body = %+v", er)
	}

	// Release the gate twice: both queued jobs still get real verdicts
	// (the second may be rejected — two copies of the same QoS kernel
	// cannot both hold 50% — but it must be decided, not lost).
	s.gate <- struct{}{}
	s.gate <- struct{}{}
	for _, id := range []string{jr1.Job.ID, jr2.Job.ID} {
		v := wait(t, ts, id)
		if v.Verdict == nil || (v.State != string(JobAdmitted) && v.State != string(JobRejected)) {
			t.Fatalf("job %s = %+v", id, v)
		}
	}
}

// TestDrain checks the SIGTERM path cmd/qosd wires: draining refuses new
// submissions with 503 but still decides everything already queued.
func TestDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := testServer(t, Config{})
	s.gate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"kernel":{"workload":"sgemm","goal_frac":0.5}}`
	_, jr1 := post(t, ts, body)
	_, jr2 := post(t, ts, body)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Once draining, new work must be refused with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.drainMu.Lock()
		draining := s.draining
		s.drainMu.Unlock()
		if draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never flipped the draining flag")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := post(t, ts, body); code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", code)
	}
	s.gate <- struct{}{}
	s.gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("drain = %v", err)
	}
	for _, id := range []string{jr1.Job.ID, jr2.Job.ID} {
		v := wait(t, ts, id)
		if v.Verdict == nil || (v.State != string(JobAdmitted) && v.State != string(JobRejected)) {
			t.Fatalf("queued job %s did not get its verdict: %+v", id, v)
		}
	}
}

// cfg16 returns the paper's base device (compile-time guard that the
// fixtures really run on 16 SMs).
func cfg16(t *testing.T) config.GPU {
	t.Helper()
	c := config.Base()
	if c.NumSMs != 16 {
		t.Fatalf("config.Base() has %d SMs", c.NumSMs)
	}
	return c
}
