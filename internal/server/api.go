package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schema"
)

// The wire types of the /v1 API. Every response body carries the shared
// schema version (internal/schema) so clients and replay tooling can
// reject artifacts from an incompatible build, exactly like trace JSONL
// exports and checkpoint journals do.

// KernelRequest describes the kernel a client wants admitted. Exactly
// one goal form may be set: GoalFrac (fraction of isolated IPC, the
// paper's sweep axis), GoalIPC (absolute thread-IPC), or Deadline
// (application deadline translated via core.IPCGoalForDeadline). All
// zero means a non-QoS kernel (best effort).
type KernelRequest struct {
	// Workload names a benchmark from internal/workloads.
	Workload string `json:"workload"`
	// GoalFrac is the QoS goal as a fraction of isolated IPC (0,1].
	GoalFrac float64 `json:"goal_frac,omitempty"`
	// GoalIPC is an absolute thread-IPC goal.
	GoalIPC float64 `json:"goal_ipc,omitempty"`
	// Deadline derives GoalIPC from an application-level deadline.
	Deadline *DeadlineRequest `json:"deadline,omitempty"`
}

// DeadlineRequest is the OS-scheduler form of a QoS goal (paper Section
// 3.2): run Instrs thread instructions within Seconds of end-to-end
// time. When TransferBytes is set, the PCI-E transfer component
// (core.PCIeTransferSeconds) is subtracted from the budget first.
type DeadlineRequest struct {
	Instrs  int64   `json:"instrs"`
	Seconds float64 `json:"seconds"`
	// TransferBytes, PCIeGbps and PCIeLatency describe the input
	// transfer to subtract; Gbps defaults to 15.75 (PCIe 3.0 x16) and
	// latency to 10us when bytes are given.
	TransferBytes int64   `json:"transfer_bytes,omitempty"`
	PCIeGbps      float64 `json:"pcie_gbps,omitempty"`
	PCIeLatency   float64 `json:"pcie_latency_s,omitempty"`
}

// goalIPC resolves the deadline into the architectural IPC goal.
func (d *DeadlineRequest) goalIPC(cfg config.GPU) (float64, error) {
	budget := d.Seconds
	if d.TransferBytes > 0 {
		gbps := d.PCIeGbps
		if gbps == 0 {
			gbps = 15.75
		}
		lat := d.PCIeLatency
		if lat == 0 {
			lat = 10e-6
		}
		budget -= core.PCIeTransferSeconds(d.TransferBytes, gbps, lat)
	}
	if budget <= 0 {
		return 0, fmt.Errorf("%w: deadline consumed by PCI-E transfer", ErrBadRequest)
	}
	return core.IPCGoalForDeadline(cfg, d.Instrs, budget)
}

// spec validates the request and lowers it to a core.KernelSpec.
func (k *KernelRequest) spec(cfg config.GPU) (core.KernelSpec, error) {
	if k.Workload == "" {
		return core.KernelSpec{}, fmt.Errorf("%w: kernel.workload is required", ErrBadRequest)
	}
	forms := 0
	if k.GoalFrac != 0 {
		forms++
	}
	if k.GoalIPC != 0 {
		forms++
	}
	if k.Deadline != nil {
		forms++
	}
	if forms > 1 {
		return core.KernelSpec{}, fmt.Errorf("%w: set at most one of goal_frac, goal_ipc, deadline", ErrBadRequest)
	}
	spec := core.KernelSpec{Workload: k.Workload, GoalFrac: k.GoalFrac, GoalIPC: k.GoalIPC}
	if k.GoalFrac < 0 || k.GoalFrac > 1 {
		return core.KernelSpec{}, fmt.Errorf("%w: goal_frac %v outside (0,1]", ErrBadRequest, k.GoalFrac)
	}
	if k.Deadline != nil {
		ipc, err := k.Deadline.goalIPC(cfg)
		if err != nil {
			return core.KernelSpec{}, err
		}
		spec.GoalIPC = ipc
	}
	return spec, nil
}

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Name is an optional client label echoed back in views and events.
	Name   string        `json:"name,omitempty"`
	Kernel KernelRequest `json:"kernel"`
	// Scheme optionally pins the expected QoS scheme; it must match the
	// daemon's configured scheme (mixed-scheme co-runs are meaningless).
	Scheme string `json:"scheme,omitempty"`
}

// KernelOutcome is one kernel's result inside an admission verdict,
// mirroring core.KernelResult for the wire.
type KernelOutcome struct {
	JobID          string  `json:"job_id,omitempty"`
	Workload       string  `json:"workload"`
	IsQoS          bool    `json:"is_qos"`
	GoalIPC        float64 `json:"goal_ipc,omitempty"`
	IPC            float64 `json:"ipc"`
	IsolatedIPC    float64 `json:"isolated_ipc"`
	Reached        bool    `json:"reached"`
	GoalRatio      float64 `json:"goal_ratio,omitempty"`
	NormThroughput float64 `json:"norm_throughput,omitempty"`
}

// Verdict is the admission decision with its predicted-attainment
// evidence: the simulated what-if co-run of the admitted mix plus the
// candidate.
type Verdict struct {
	Admitted bool   `json:"admitted"`
	Reason   string `json:"reason"`
	Scheme   string `json:"scheme"`
	// MixBefore lists the ids of the jobs admitted when the what-if ran.
	MixBefore  []string        `json:"mix_before"`
	Candidate  KernelOutcome   `json:"candidate"`
	Incumbents []KernelOutcome `json:"incumbents,omitempty"`
	// Cycles is the simulated measurement window of the what-if run.
	Cycles int64 `json:"cycles"`
}

// JobView is the wire form of one job.
type JobView struct {
	ID       string        `json:"id"`
	Seq      uint64        `json:"seq"`
	Name     string        `json:"name,omitempty"`
	State    string        `json:"state"`
	Kernel   KernelRequest `json:"kernel"`
	GoalIPC  float64       `json:"goal_ipc,omitempty"`
	Verdict  *Verdict      `json:"verdict,omitempty"`
	Error    string        `json:"error,omitempty"`
	Released bool          `json:"released,omitempty"`
}

// jobResponse wraps a single job with the schema version.
type jobResponse struct {
	Schema int     `json:"schema"`
	Job    JobView `json:"job"`
}

// jobListResponse wraps the job listing.
type jobListResponse struct {
	Schema int       `json:"schema"`
	Jobs   []JobView `json:"jobs"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Schema   int    `json:"schema"`
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Scheme   string `json:"scheme"`
	Workers  int    `json:"workers"`
	MaxMix   int    `json:"max_mix"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Schema int    `json:"schema"`
	Error  string `json:"error"`
	Code   int    `json:"code"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeErr translates err through the taxonomy (httpStatus) and writes
// the uniform error body; 429s carry a Retry-After hint.
func writeErr(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	writeJSON(w, status, errorResponse{Schema: schema.Version, Error: err.Error(), Code: status})
}
