package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schema"
)

// The wire types of the /v1 API. Every response body carries the shared
// schema version (internal/schema) so clients and replay tooling can
// reject artifacts from an incompatible build, exactly like trace JSONL
// exports and checkpoint journals do.

// KernelRequest describes the kernel a client wants admitted. Exactly
// one goal form may be set: the typed Goal union (which carries every
// form, including the latency-SLO and periodic real-time goals), or one
// of the legacy v1 fields — GoalFrac (fraction of isolated IPC, the
// paper's sweep axis), GoalIPC (absolute thread-IPC), Deadline
// (application deadline translated via core.IPCGoalForDeadline). All
// zero means a non-QoS kernel (best effort).
type KernelRequest struct {
	// Workload names a benchmark from internal/workloads.
	Workload string `json:"workload"`
	// Goal is the typed QoS goal union (bare fraction, {"ipc":..},
	// {"deadline":{..}}, {"latency":{..}} or {"periodic":{..}}),
	// exclusive with the legacy triple below.
	Goal *schema.Goal `json:"goal,omitempty"`
	// GoalFrac is the QoS goal as a fraction of isolated IPC (0,1].
	GoalFrac float64 `json:"goal_frac,omitempty"`
	// GoalIPC is an absolute thread-IPC goal.
	GoalIPC float64 `json:"goal_ipc,omitempty"`
	// Deadline derives GoalIPC from an application-level deadline.
	Deadline *DeadlineRequest `json:"deadline,omitempty"`
}

// DeadlineRequest is the OS-scheduler form of a QoS goal (paper Section
// 3.2), now the schema-owned deadline payload of the Goal union. The
// alias keeps the v1 wire name.
type DeadlineRequest = schema.Deadline

// goal lifts the request's goal into the typed union: the typed Goal
// field passes through directly, the legacy v1 field triple goes via
// schema.GoalFromForms. Setting both is a client error. The "at most
// one form" rule and the per-form range checks live on schema.Goal; the
// server only translates the sentinel so clients keep seeing 400s.
func (k *KernelRequest) goal() (schema.Goal, error) {
	legacy, err := schema.GoalFromForms(k.GoalFrac, k.GoalIPC, k.Deadline)
	if err != nil {
		return schema.Goal{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if k.Goal != nil {
		if !legacy.IsZero() {
			return schema.Goal{}, fmt.Errorf("%w: goal is exclusive with goal_frac/goal_ipc/deadline", ErrBadRequest)
		}
		return *k.Goal, nil
	}
	return legacy, nil
}

// spec validates the request and lowers it to a core.KernelSpec via the
// shared goal union: validate the form (schema.Goal.Validate inside
// core.ResolveGoal), then resolve deadlines against this daemon's GPU
// config.
func (k *KernelRequest) spec(cfg config.GPU) (core.KernelSpec, error) {
	if k.Workload == "" {
		return core.KernelSpec{}, fmt.Errorf("%w: kernel.workload is required", ErrBadRequest)
	}
	g, err := k.goal()
	if err != nil {
		return core.KernelSpec{}, err
	}
	gf, gi, err := core.ResolveGoal(cfg, g)
	if err != nil {
		return core.KernelSpec{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return core.KernelSpec{Workload: k.Workload, GoalFrac: gf, GoalIPC: gi}, nil
}

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Name is an optional client label echoed back in views and events.
	Name   string        `json:"name,omitempty"`
	Kernel KernelRequest `json:"kernel"`
	// Scheme optionally pins the expected QoS scheme; it must match the
	// daemon's configured scheme (mixed-scheme co-runs are meaningless).
	Scheme string `json:"scheme,omitempty"`
}

// KernelOutcome and Verdict are the schema-owned first-class decision
// types (internal/schema), shared verbatim by job responses, SSE
// "verdict" events and the decision journal. The aliases keep the
// package-local names the rest of the server (and its tests) use.
type (
	KernelOutcome = schema.KernelOutcome
	Verdict       = schema.Verdict
)

// JobView is the wire form of one job.
type JobView struct {
	ID       string        `json:"id"`
	Seq      uint64        `json:"seq"`
	Name     string        `json:"name,omitempty"`
	State    string        `json:"state"`
	Kernel   KernelRequest `json:"kernel"`
	GoalIPC  float64       `json:"goal_ipc,omitempty"`
	Verdict  *Verdict      `json:"verdict,omitempty"`
	Error    string        `json:"error,omitempty"`
	Released bool          `json:"released,omitempty"`
}

// jobResponse wraps a single job with the schema version.
type jobResponse struct {
	Schema int     `json:"schema"`
	Job    JobView `json:"job"`
}

// jobListResponse wraps the job listing.
type jobListResponse struct {
	Schema int       `json:"schema"`
	Jobs   []JobView `json:"jobs"`
}

// healthResponse is the GET /healthz body. Status is "ok", "draining"
// or "stalled"; "stalled" (decision loop wedged past Config.StallAfter)
// is served with HTTP 503 so load balancers and orchestrators see a
// dead controller without parsing the body.
type healthResponse struct {
	Schema   int    `json:"schema"`
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Scheme   string `json:"scheme"`
	Workers  int    `json:"workers"`
	MaxMix   int    `json:"max_mix"`
	// Stalled reports a decision in flight longer than StallAfter.
	Stalled bool `json:"decision_loop_stalled"`
	// InFlightMs is how long the current decision has been running
	// (0 when the loop is idle).
	InFlightMs int64 `json:"decision_in_flight_ms,omitempty"`
	// LastProgressMs is the unix-milliseconds wall time the decision
	// loop last completed a decision (startup time before the first).
	LastProgressMs int64 `json:"last_progress_unix_ms"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Schema int    `json:"schema"`
	Error  string `json:"error"`
	Code   int    `json:"code"`
}

// tierStats is one tier's slice of the verdict statistics.
type tierStats struct {
	// Decisions counts verdicts this tier decided.
	Decisions int64 `json:"decisions"`
	// LatencyEWMANs is the exponentially weighted moving average of this
	// tier's decision latency in nanoseconds (0 until it decides once).
	LatencyEWMANs float64 `json:"latency_ewma_ns"`
}

// verdictStatsResponse is the GET /v1/verdicts/stats body. The same
// counters appear as qosd_* lines on /metrics.
type verdictStatsResponse struct {
	Schema   int  `json:"schema"`
	FastPath bool `json:"fast_path"`
	// Tiers maps "cache"/"model"/"sim" to per-tier decision counts and
	// latency EWMAs.
	Tiers map[string]tierStats `json:"tiers"`
	// CacheMisses counts decisions that missed the exact cache (fast
	// path only); CacheSize/CacheCapacity describe the cache itself.
	CacheMisses   int64 `json:"cache_misses"`
	CacheSize     int   `json:"cache_size"`
	CacheCapacity int   `json:"cache_capacity,omitempty"`
	// ModelEscapes counts decisions the model declined (coverage hole or
	// a prediction inside the uncertainty band).
	ModelEscapes int64 `json:"model_escapes"`
	// Coalesced counts batched decisions that shared another arrival's
	// what-if co-run instead of running their own.
	Coalesced       int64   `json:"coalesced"`
	ModelVersion    string  `json:"model_version,omitempty"`
	UncertaintyBand float64 `json:"uncertainty_band,omitempty"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeErr translates err through the taxonomy (httpStatus) and writes
// the uniform error body; 429s carry a Retry-After hint derived from
// the observed per-tier decision latencies (retryAfterSeconds), so
// fast-path-heavy loads don't over-back-off clients.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, status, errorResponse{Schema: schema.Version, Error: err.Error(), Code: status})
}

// retryAfterSeconds estimates how long a 429'd client should wait: the
// decision-count-weighted blend of the per-tier latency EWMAs times the
// work ahead of it (queue depth + 1), rounded up to whole seconds and
// clamped to [1, 600]. Tiers that have been counted but never measured
// are excluded from the blend; when no tier has a measurement yet the
// hint falls back to 1 second.
func (s *Server) retryAfterSeconds() int {
	var weightedNs, n float64
	s.statsMu.Lock()
	for _, tier := range []string{schema.TierCache, schema.TierModel, schema.TierSim} {
		c := float64(s.reg.Counter("verdicts_tier_" + tier).Value())
		ewma := s.reg.Gauge("latency_ewma_ns_" + tier).Value()
		// A tier can be counted before its first latency lands: the
		// verdict counter and the EWMA seed are separate critical
		// sections, and a journal-resumed daemon replays counters into
		// a process whose gauges start at zero. Blending such a tier at
		// 0ns drags the estimate toward zero, so a cold daemon's first
		// 429 would hand out a 1s hint against a queue of multi-second
		// sim decisions. Skip unmeasured (and non-finite) tiers from
		// both the numerator and the weight mass instead.
		if c <= 0 || ewma <= 0 || math.IsInf(ewma, 0) || math.IsNaN(ewma) {
			continue
		}
		weightedNs += c * ewma
		n += c
	}
	s.statsMu.Unlock()
	if n == 0 {
		return 1
	}
	// Clamp in the float domain: a pathological EWMA times a deep queue
	// can exceed the int64 range, and Go's float-to-int conversion of
	// such values is not a saturating clamp — it used to come back
	// negative and hit the 1s floor, the opposite of the right hint.
	secs := math.Ceil(weightedNs / n * float64(len(s.queue)+1) / 1e9)
	if math.IsNaN(secs) || secs < 1 {
		return 1
	}
	if secs > 600 {
		return 600
	}
	return int(secs)
}

// latencyEWMAAlpha is the smoothing factor of the per-tier decision
// latency averages.
const latencyEWMAAlpha = 0.3

// observeLatency folds one decision's wall-clock latency into its
// tier's EWMA gauge (exposed on /metrics and /v1/verdicts/stats).
func (s *Server) observeLatency(tier string, d time.Duration) {
	ns := float64(d.Nanoseconds())
	s.statsMu.Lock()
	g := s.reg.Gauge("latency_ewma_ns_" + tier)
	if prev := g.Value(); prev > 0 {
		ns = prev*(1-latencyEWMAAlpha) + ns*latencyEWMAAlpha
	}
	g.Set(ns)
	s.statsMu.Unlock()
}
