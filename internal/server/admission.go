package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// The admission controller. Decisions are made by ONE goroutine
// (decisionLoop) in strict submission order: given the same decision log
// (candidate + mix snapshot per entry), a serial replay of the what-if
// runs reproduces every verdict bit for bit, because the simulator is
// deterministic under a fixed seed. The soak test exploits exactly this.

// MixEntry is one kernel of an admission snapshot — enough to rebuild
// its core.KernelSpec for replay or journal recovery.
type MixEntry struct {
	JobID    string  `json:"job_id"`
	Workload string  `json:"workload"`
	GoalFrac float64 `json:"goal_frac,omitempty"`
	GoalIPC  float64 `json:"goal_ipc,omitempty"`
}

// Spec rebuilds the kernel spec the entry was evaluated with.
func (m MixEntry) Spec() core.KernelSpec {
	return core.KernelSpec{Workload: m.Workload, GoalFrac: m.GoalFrac, GoalIPC: m.GoalIPC}
}

func mixEntry(j *job) MixEntry {
	return MixEntry{JobID: j.id, Workload: j.spec.Workload, GoalFrac: j.spec.GoalFrac, GoalIPC: j.spec.GoalIPC}
}

// Decision is one entry of the decision log — the daemon's crash-safe
// record of every admission verdict and release, journaled under stage
// "jobs" keyed by Index. Kind "decision" entries carry the full what-if
// evidence; Kind "release" entries free the job's mix slot.
type Decision struct {
	Index     int        `json:"index"`
	Kind      string     `json:"kind"` // "decision" | "release"
	JobID     string     `json:"job_id"`
	JobSeq    uint64     `json:"job_seq"`
	Name      string     `json:"name,omitempty"`
	Candidate MixEntry   `json:"candidate"`
	Mix       []MixEntry `json:"mix,omitempty"`
	Admitted  bool       `json:"admitted,omitempty"`
	Verdict   *Verdict   `json:"verdict,omitempty"`
}

// decisionLoop is the admission controller: it serializes every decision
// so verdicts depend only on submission order, never on goroutine
// scheduling. It exits when the submit queue is closed (drain) and every
// queued job has been decided.
func (s *Server) decisionLoop() {
	defer close(s.loopDone)
	for j := range s.queue {
		if s.gate != nil {
			// Test hook: hold the next decision until the test releases it,
			// making queue-overflow (429) behavior deterministic.
			<-s.gate
		}
		if err := s.waitSlot(); err != nil {
			j.finish(JobFailed, nil, err)
			s.count("jobs_failed", 1)
			continue
		}
		s.evaluate(j)
	}
}

// waitSlot blocks until the admitted mix has room for one more kernel,
// consuming release signals. A forced shutdown aborts the wait.
func (s *Server) waitSlot() error {
	for {
		s.mixMu.Lock()
		free := len(s.mix) < s.maxMix
		s.mixMu.Unlock()
		if free {
			return nil
		}
		select {
		case <-s.slotFree:
		case <-s.baseCtx.Done():
			return fmt.Errorf("%w: no mix slot freed before shutdown", ErrDraining)
		}
	}
}

// evaluate runs the what-if co-run (admitted mix + candidate) on a
// pooled worker session and turns the result into an admission verdict.
func (s *Server) evaluate(j *job) {
	j.setState(JobEvaluating)
	s.mixMu.Lock()
	mix := append([]*job(nil), s.mix...)
	s.mixMu.Unlock()

	specs := make([]core.KernelSpec, 0, len(mix)+1)
	entries := make([]MixEntry, 0, len(mix))
	for _, m := range mix {
		specs = append(specs, m.spec)
		entries = append(entries, mixEntry(m))
	}
	specs = append(specs, j.spec)

	// A hypothetical mix with no QoS kernel has no contract to protect;
	// the QoS manager refuses goal-less co-runs, so the what-if runs
	// under unmanaged sharing and admits vacuously (AllReached is true
	// with zero QoS kernels) — still with real throughput evidence.
	scheme := s.scheme
	hasQoS := false
	for _, sp := range specs {
		if sp.GoalFrac > 0 || sp.GoalIPC > 0 {
			hasQoS = true
			break
		}
	}
	if !hasQoS {
		scheme = core.SchemeNone
	}

	var res *core.Result
	tr := trace.New(1 << 12)
	err := s.runner.Do(s.baseCtx, j.seq, func(ctx context.Context, sess *core.Session) error {
		r, rerr := sess.RunTraced(ctx, specs, scheme, tr)
		if rerr != nil {
			return rerr
		}
		res = r
		return nil
	})
	s.count("evaluations", 1)
	if err != nil {
		j.finish(JobFailed, nil, err)
		s.count("jobs_failed", 1)
		s.record(Decision{Kind: "decision", JobID: j.id, JobSeq: j.seq, Name: j.name,
			Candidate: mixEntry(j), Mix: entries})
		return
	}
	s.absorbRun(tr, res)
	s.forwardTrace(j, tr, len(specs)-1)

	v := s.verdict(j, mix, entries, res)
	s.record(Decision{Kind: "decision", JobID: j.id, JobSeq: j.seq, Name: j.name,
		Candidate: mixEntry(j), Mix: entries, Admitted: v.Admitted, Verdict: v})
	if v.Admitted {
		s.mixMu.Lock()
		s.mix = append(s.mix, j)
		n := len(s.mix)
		s.mixMu.Unlock()
		s.gauge("mix_size", float64(n))
		s.count("jobs_admitted", 1)
		j.finish(JobAdmitted, v, nil)
		return
	}
	s.count("jobs_rejected", 1)
	j.finish(JobRejected, v, fmt.Errorf("%w: %s", ErrAdmissionRejected, v.Reason))
}

// verdict scores the what-if result. The decision rule is the paper's
// QoS contract applied transitively: admit if and only if every QoS
// kernel of the hypothetical mix — the candidate and all incumbents —
// reaches its goal (Result.AllReached).
func (s *Server) verdict(j *job, mix []*job, entries []MixEntry, res *core.Result) *Verdict {
	outcome := func(kr core.KernelResult, jobID string) KernelOutcome {
		return KernelOutcome{
			JobID:          jobID,
			Workload:       kr.Name,
			IsQoS:          kr.IsQoS,
			GoalIPC:        kr.GoalIPC,
			IPC:            kr.IPC,
			IsolatedIPC:    kr.IsolatedIPC,
			Reached:        kr.Reached,
			GoalRatio:      kr.GoalRatio,
			NormThroughput: kr.NormThroughput,
		}
	}
	mixIDs := make([]string, len(entries))
	for i, e := range entries {
		mixIDs[i] = e.JobID
	}
	v := &Verdict{
		Admitted:  res.AllReached,
		Scheme:    res.Scheme.Name(),
		MixBefore: mixIDs,
		Candidate: outcome(res.Kernels[len(res.Kernels)-1], j.id),
		Cycles:    res.Cycles,
	}
	for i, kr := range res.Kernels[:len(res.Kernels)-1] {
		v.Incumbents = append(v.Incumbents, outcome(kr, mix[i].id))
	}
	if res.AllReached {
		v.Reason = "all QoS goals reached in the what-if co-run"
		return v
	}
	var missed []string
	for _, o := range append(v.Incumbents, v.Candidate) {
		if o.IsQoS && !o.Reached {
			missed = append(missed, fmt.Sprintf("%s (%s) at %.1f%% of goal", o.JobID, o.Workload, 100*o.GoalRatio))
		}
	}
	v.Reason = "QoS goal missed by " + strings.Join(missed, ", ")
	return v
}

// release frees an admitted job's mix slot (DELETE /v1/jobs/{id}). Only
// admitted jobs hold slots; anything else is a client error.
func (s *Server) release(id string) (*job, error) {
	j, err := s.store.get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	if j.state != JobAdmitted {
		st := j.state
		j.mu.Unlock()
		return nil, fmt.Errorf("%w: job %s is %s, only admitted jobs hold a mix slot", ErrBadRequest, id, st)
	}
	j.state = JobReleased
	j.mu.Unlock()

	s.mixMu.Lock()
	for i, m := range s.mix {
		if m.id == id {
			s.mix = append(s.mix[:i], s.mix[i+1:]...)
			break
		}
	}
	n := len(s.mix)
	s.mixMu.Unlock()
	s.gauge("mix_size", float64(n))
	select {
	case s.slotFree <- struct{}{}:
	default:
	}
	j.emit("state", map[string]string{"state": string(JobReleased)})
	s.count("jobs_released", 1)
	s.record(Decision{Kind: "release", JobID: j.id, JobSeq: j.seq, Candidate: mixEntry(j)})
	return j, nil
}

// record appends one entry to the decision log and, when a job log is
// configured, journals it. Journal write failures must not un-decide an
// admission that already happened; they are surfaced as a counter (and
// the next restart simply recovers less).
func (s *Server) record(d Decision) {
	s.decMu.Lock()
	d.Index = len(s.decisions)
	s.decisions = append(s.decisions, d)
	jnl := s.jnl
	s.decMu.Unlock()
	if jnl != nil {
		if err := jnl.Append(jobStage, d.Index, d); err != nil {
			s.count("journal_errors", 1)
		}
	}
}

// Decisions returns the decision log in order, including entries
// recovered from the journal at startup.
func (s *Server) Decisions() []Decision {
	s.decMu.Lock()
	defer s.decMu.Unlock()
	return append([]Decision(nil), s.decisions...)
}

// jobStage keys the daemon's entries inside the checkpoint journal.
const jobStage = "jobs"

// recoverJournal rebuilds the admitted mix from a prior process's
// decision log: decisions admitted and never released re-occupy their
// slots (states, verdicts and ids included), so a restarted daemon keeps
// honoring the QoS contracts it already accepted. Queued-but-undecided
// jobs are not recovered — they never received a verdict.
func (s *Server) recoverJournal() error {
	entries := s.jnl.Completed(jobStage)
	idxs := make([]int, 0, len(entries))
	for i := range entries {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	admitted := make(map[string]Decision)
	var order []string
	for _, i := range idxs {
		var d Decision
		if err := json.Unmarshal(entries[i], &d); err != nil {
			return fmt.Errorf("server: job log entry %d: %w", i, err)
		}
		s.decisions = append(s.decisions, d)
		s.store.reserve(d.JobSeq)
		switch d.Kind {
		case "decision":
			if d.Admitted {
				admitted[d.JobID] = d
				order = append(order, d.JobID)
			}
		case "release":
			delete(admitted, d.JobID)
		}
	}
	for _, id := range order {
		d, ok := admitted[id]
		if !ok {
			continue
		}
		req := KernelRequest{Workload: d.Candidate.Workload, GoalFrac: d.Candidate.GoalFrac, GoalIPC: d.Candidate.GoalIPC}
		j := newJob(d.JobSeq, d.Name, d.Candidate.Spec(), req)
		s.store.adopt(j)
		s.mix = append(s.mix, j)
		j.finish(JobAdmitted, d.Verdict, nil)
	}
	s.gauge("mix_size", float64(len(s.mix)))
	return nil
}

// absorbRun folds one what-if run's simulator counters into the
// server-wide registry (sim_ prefix), so /metrics exposes cumulative
// epoch counts etc. across all evaluations.
func (s *Server) absorbRun(tr *trace.Tracer, res *core.Result) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for _, c := range tr.Registry().Counters() {
		s.reg.Counter("sim_" + c.Name()).Add(c.Value())
	}
	s.reg.Counter("sim_cycles").Add(res.Cycles)
	s.reg.Counter("sim_trace_events").Add(int64(tr.Len()))
}

// maxForwardedEvents caps the epoch-level evidence forwarded onto a
// job's SSE stream per evaluation.
const maxForwardedEvents = 32

// forwardTrace turns the candidate slot's epoch-level control decisions
// (epoch rolls, quota grants, goal checks) into job events, so an SSE
// client watches its kernel's QoS trajectory inside the what-if run.
func (s *Server) forwardTrace(j *job, tr *trace.Tracer, slot int) {
	n := 0
	for _, ev := range tr.Events() {
		if int(ev.Slot) != slot {
			continue
		}
		switch ev.Kind {
		case trace.KindEpochRoll, trace.KindQuotaGrant, trace.KindGoalCheck:
		default:
			continue
		}
		if n++; n > maxForwardedEvents {
			break
		}
		j.emit(ev.Kind.String(), map[string]any{
			"cycle": ev.Cycle,
			"epoch": ev.Epoch,
			"a":     ev.A,
			"b":     ev.B,
		})
	}
}
