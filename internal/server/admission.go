package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/verdict"
)

// The admission controller. Decisions are made by ONE goroutine
// (decisionLoop) in strict submission order: given the same decision log
// (candidate + mix snapshot per entry), a serial replay through the same
// tiered decision path (see tiers.go and Replayer) reproduces every
// verdict — and its deciding tier — bit for bit, because the simulator
// is deterministic under a fixed seed and the verdict cache evolves
// through the same serial access sequence. The soak test exploits
// exactly this.

// MixEntry is one kernel of an admission snapshot — enough to rebuild
// its core.KernelSpec for replay or journal recovery.
type MixEntry struct {
	JobID    string  `json:"job_id"`
	Workload string  `json:"workload"`
	GoalFrac float64 `json:"goal_frac,omitempty"`
	GoalIPC  float64 `json:"goal_ipc,omitempty"`
}

// Spec rebuilds the kernel spec the entry was evaluated with.
func (m MixEntry) Spec() core.KernelSpec {
	return core.KernelSpec{Workload: m.Workload, GoalFrac: m.GoalFrac, GoalIPC: m.GoalIPC}
}

func mixEntry(j *job) MixEntry {
	return MixEntry{JobID: j.id, Workload: j.spec.Workload, GoalFrac: j.spec.GoalFrac, GoalIPC: j.spec.GoalIPC}
}

// Decision is one entry of the decision log — the daemon's crash-safe
// record of every admission verdict and release, journaled under stage
// "jobs" keyed by Index. Kind "decision" entries carry the full what-if
// evidence; Kind "release" entries free the job's mix slot.
type Decision struct {
	Index     int        `json:"index"`
	Kind      string     `json:"kind"` // "decision" | "release"
	JobID     string     `json:"job_id"`
	JobSeq    uint64     `json:"job_seq"`
	Name      string     `json:"name,omitempty"`
	Candidate MixEntry   `json:"candidate"`
	Mix       []MixEntry `json:"mix,omitempty"`
	Admitted  bool       `json:"admitted,omitempty"`
	Verdict   *Verdict   `json:"verdict,omitempty"`
}

// decisionLoop is the admission controller: it serializes every decision
// so verdicts depend only on submission order, never on goroutine
// scheduling. It exits when the submit queue is closed (drain) and every
// queued job has been decided.
func (s *Server) decisionLoop() {
	defer close(s.loopDone)
	for j := range s.queue {
		if s.processBatch(j) {
			return
		}
	}
}

// simShare is one batch-local memoized what-if run, shared between batch
// members whose hypothetical mixes are identical (same ordered specs and
// scheme): concurrent arrivals of the same request coalesce onto one
// simulation instead of each paying for their own.
type simShare struct {
	res *core.Result
	tr  *trace.Tracer
}

// maxBatch bounds how many queued arrivals one batch absorbs before the
// memo is discarded and a fresh batch starts (bounds memo memory; the
// remaining queue is simply the next batch).
const maxBatch = 1024

// processBatch decides first plus any submissions that arrive while the
// batch is being worked. Returns true when the queue closed during the
// batch (drain: every drained job is still decided before returning).
func (s *Server) processBatch(first *job) (closed bool) {
	batch := []*job{first}
	memo := make(map[string]*simShare)
	for bi := 0; bi < len(batch); bi++ {
		j := batch[bi]
		// Liveness: mark the decision in flight before anything that can
		// block (the test gate, the slot wait, the evaluation) so the
		// /healthz watchdog sees a wedged loop no matter where it wedged.
		s.decidingSinceNs.Store(time.Now().UnixNano())
		if s.gate != nil {
			// Test hook: hold the next decision until the test releases it,
			// making queue-overflow (429) behavior deterministic.
			<-s.gate
		}
		if !closed {
			// Opportunistically absorb queued arrivals into the batch
			// (after the gate, so tests can pin queue occupancy first).
		drain:
			for len(batch) < maxBatch {
				select {
				case k, ok := <-s.queue:
					if !ok {
						closed = true
						break drain
					}
					batch = append(batch, k)
				default:
					break drain
				}
			}
		}
		if err := s.waitSlot(); err != nil {
			j.finish(JobFailed, nil, err)
			s.count("jobs_failed", 1)
			s.markProgress()
			continue
		}
		s.evaluate(j, memo)
		s.markProgress()
	}
	return closed
}

// markProgress records a completed decision for the /healthz watchdog:
// the loop is idle again and last progress is now.
func (s *Server) markProgress() {
	s.lastProgressNs.Store(time.Now().UnixNano())
	s.decidingSinceNs.Store(0)
}

// waitSlot blocks until the admitted mix has room for one more kernel,
// consuming release signals. A forced shutdown aborts the wait.
func (s *Server) waitSlot() error {
	for {
		s.mixMu.Lock()
		free := len(s.mix) < s.maxMix
		s.mixMu.Unlock()
		if free {
			return nil
		}
		select {
		case <-s.slotFree:
		case <-s.baseCtx.Done():
			return fmt.Errorf("%w: no mix slot freed before shutdown", ErrDraining)
		}
	}
}

// evaluate decides one job through the tiered path: exact verdict
// cache, then the analytic model, then the what-if co-run (admitted mix
// + candidate) on a pooled worker session — with identical co-runs
// coalesced inside the batch via memo.
func (s *Server) evaluate(j *job, memo map[string]*simShare) {
	start := time.Now()
	j.setState(JobEvaluating)
	s.mixMu.Lock()
	mix := append([]*job(nil), s.mix...)
	s.mixMu.Unlock()

	specs := make([]core.KernelSpec, 0, len(mix)+1)
	entries := make([]MixEntry, 0, len(mix))
	ids := make([]string, 0, len(mix)+1)
	for _, m := range mix {
		specs = append(specs, m.spec)
		entries = append(entries, mixEntry(m))
		ids = append(ids, m.id)
	}
	specs = append(specs, j.spec)
	ids = append(ids, j.id)

	// A hypothetical mix with no QoS kernel has no contract to protect;
	// the QoS manager refuses goal-less co-runs, so the what-if runs
	// under unmanaged sharing and admits vacuously (AllReached is true
	// with zero QoS kernels) — still with real throughput evidence.
	scheme := verdict.EffectiveScheme(s.scheme, specs)
	sigs := verdict.KernelSigsOf(specs)
	sig := s.dec.SignatureFor(sigs, scheme.Name())

	fr := s.dec.TryFast(sig, sigs, ids, scheme.Name())
	if fr.CacheMiss {
		s.count("verdict_cache_misses", 1)
	}
	if fr.ModelEscape {
		s.count("model_escapes", 1)
	}
	v := fr.V
	if v == nil {
		// Tier 3: full simulation. The memo key is the ORDERED spec list
		// (not the canonical signature): slots are not interchangeable in
		// the simulator, so only bit-identical what-ifs may share a run —
		// which keeps coalesced verdicts reproducible by a serial replay
		// that simulates each decision individually.
		okey := orderedKey(specs, scheme)
		sh := memo[okey]
		if sh != nil {
			s.count("verdicts_coalesced", 1)
		} else {
			tr := trace.New(1 << 12)
			var res *core.Result
			err := s.runner.Do(s.baseCtx, j.seq, func(ctx context.Context, sess *core.Session) error {
				r, rerr := sess.RunTraced(ctx, specs, scheme, tr)
				if rerr != nil {
					return rerr
				}
				res = r
				return nil
			})
			s.count("evaluations", 1)
			if err != nil {
				j.finish(JobFailed, nil, err)
				s.count("jobs_failed", 1)
				s.record(Decision{Kind: "decision", JobID: j.id, JobSeq: j.seq, Name: j.name,
					Candidate: mixEntry(j), Mix: entries})
				return
			}
			s.absorbRun(tr, res)
			sh = &simShare{res: res, tr: tr}
			memo[okey] = sh
		}
		s.forwardTrace(j, sh.tr, len(specs)-1)
		v = verdict.SimVerdict(sh.res, ids, sig)
		s.dec.Store(sig, v, sigs)
	}
	s.count("verdicts_tier_"+v.Tier, 1)
	s.record(Decision{Kind: "decision", JobID: j.id, JobSeq: j.seq, Name: j.name,
		Candidate: mixEntry(j), Mix: entries, Admitted: v.IsAdmitted(), Verdict: v})
	s.observeLatency(v.Tier, time.Since(start))
	if v.IsAdmitted() {
		s.mixMu.Lock()
		s.mix = append(s.mix, j)
		n := len(s.mix)
		s.mixMu.Unlock()
		s.gauge("mix_size", float64(n))
		s.count("jobs_admitted", 1)
		j.finish(JobAdmitted, v, nil)
		return
	}
	s.count("jobs_rejected", 1)
	j.finish(JobRejected, v, fmt.Errorf("%w: %s", ErrAdmissionRejected, v.Reason))
}

// orderedKey keys the batch memo by the exact ordered what-if input.
func orderedKey(specs []core.KernelSpec, scheme core.Scheme) string {
	b, err := json.Marshal(struct {
		Specs  []core.KernelSpec
		Scheme string
	}{specs, scheme.Name()})
	if err != nil {
		return fmt.Sprintf("%v|%s", specs, scheme.Name())
	}
	return string(b)
}

// release frees an admitted job's mix slot (DELETE /v1/jobs/{id}). Only
// admitted jobs hold slots; anything else is a client error.
func (s *Server) release(id string) (*job, error) {
	j, err := s.store.get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	if j.state != JobAdmitted {
		st := j.state
		j.mu.Unlock()
		return nil, fmt.Errorf("%w: job %s is %s, only admitted jobs hold a mix slot", ErrBadRequest, id, st)
	}
	j.state = JobReleased
	j.mu.Unlock()

	s.mixMu.Lock()
	for i, m := range s.mix {
		if m.id == id {
			s.mix = append(s.mix[:i], s.mix[i+1:]...)
			break
		}
	}
	n := len(s.mix)
	s.mixMu.Unlock()
	s.gauge("mix_size", float64(n))
	select {
	case s.slotFree <- struct{}{}:
	default:
	}
	j.emit("state", map[string]string{"state": string(JobReleased)})
	s.count("jobs_released", 1)
	s.record(Decision{Kind: "release", JobID: j.id, JobSeq: j.seq, Candidate: mixEntry(j)})
	return j, nil
}

// record appends one entry to the decision log and, when a job log is
// configured, journals it. Journal write failures must not un-decide an
// admission that already happened; they are surfaced as a counter (and
// the next restart simply recovers less).
func (s *Server) record(d Decision) {
	s.decMu.Lock()
	d.Index = len(s.decisions)
	s.decisions = append(s.decisions, d)
	jnl := s.jnl
	s.decMu.Unlock()
	if jnl != nil {
		if err := jnl.Append(jobStage, d.Index, d); err != nil {
			s.count("journal_errors", 1)
		}
	}
}

// Decisions returns the decision log in order, including entries
// recovered from the journal at startup.
func (s *Server) Decisions() []Decision {
	s.decMu.Lock()
	defer s.decMu.Unlock()
	return append([]Decision(nil), s.decisions...)
}

// jobStage keys the daemon's entries inside the checkpoint journal.
const jobStage = "jobs"

// recoverJournal rebuilds the admitted mix from a prior process's
// decision log: decisions admitted and never released re-occupy their
// slots (states, verdicts and ids included), so a restarted daemon keeps
// honoring the QoS contracts it already accepted. Queued-but-undecided
// jobs are not recovered — they never received a verdict.
func (s *Server) recoverJournal() error {
	entries := s.jnl.Completed(jobStage)
	idxs := make([]int, 0, len(entries))
	for i := range entries {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	admitted := make(map[string]Decision)
	var order []string
	for _, i := range idxs {
		var d Decision
		if err := json.Unmarshal(entries[i], &d); err != nil {
			return fmt.Errorf("server: job log entry %d: %w", i, err)
		}
		s.decisions = append(s.decisions, d)
		s.store.reserve(d.JobSeq)
		switch d.Kind {
		case "decision":
			if d.Admitted {
				admitted[d.JobID] = d
				order = append(order, d.JobID)
			}
		case "release":
			delete(admitted, d.JobID)
		}
	}
	for _, id := range order {
		d, ok := admitted[id]
		if !ok {
			continue
		}
		req := KernelRequest{Workload: d.Candidate.Workload, GoalFrac: d.Candidate.GoalFrac, GoalIPC: d.Candidate.GoalIPC}
		j := newJob(d.JobSeq, d.Name, d.Candidate.Spec(), req)
		s.store.adopt(j)
		s.mix = append(s.mix, j)
		j.finish(JobAdmitted, d.Verdict, nil)
	}
	s.gauge("mix_size", float64(len(s.mix)))
	return nil
}

// absorbRun folds one what-if run's simulator counters into the
// server-wide registry (sim_ prefix), so /metrics exposes cumulative
// epoch counts etc. across all evaluations.
func (s *Server) absorbRun(tr *trace.Tracer, res *core.Result) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for _, c := range tr.Registry().Counters() {
		s.reg.Counter("sim_" + c.Name()).Add(c.Value())
	}
	s.reg.Counter("sim_cycles").Add(res.Cycles)
	s.reg.Counter("sim_trace_events").Add(int64(tr.Len()))
}

// maxForwardedEvents caps the epoch-level evidence forwarded onto a
// job's SSE stream per evaluation.
const maxForwardedEvents = 32

// forwardTrace turns the candidate slot's epoch-level control decisions
// (epoch rolls, quota grants, goal checks) into job events, so an SSE
// client watches its kernel's QoS trajectory inside the what-if run.
func (s *Server) forwardTrace(j *job, tr *trace.Tracer, slot int) {
	n := 0
	for _, ev := range tr.Events() {
		if int(ev.Slot) != slot {
			continue
		}
		switch ev.Kind {
		case trace.KindEpochRoll, trace.KindQuotaGrant, trace.KindGoalCheck:
		default:
			continue
		}
		if n++; n > maxForwardedEvents {
			break
		}
		j.emit(ev.Kind.String(), map[string]any{
			"cycle": ev.Cycle,
			"epoch": ev.Epoch,
			"a":     ev.A,
			"b":     ev.B,
		})
	}
}
