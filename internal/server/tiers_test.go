package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/perfmodel"
	"repro/internal/schema"
	"repro/internal/trace"
)

// counter reads a server counter (tests run these single-threaded).
func counter(s *Server, name string) int64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.reg.Counter(name).Value()
}

// TestCacheTierReproducesSimVerdict pins tier 1: an identical
// resubmission must be answered from the exact verdict cache with the
// same decision, numbers and reason as the simulation that seeded it —
// only the tier, confidence and job ids may differ.
func TestCacheTierReproducesSimVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := testServer(t, Config{FastPath: true, MaxMix: 1})

	first := submitWait(t, s, qos("sgemm", 0.5))
	v1 := first.view().Verdict
	if v1 == nil || v1.Tier != schema.TierSim || !v1.IsAdmitted() {
		t.Fatalf("first verdict = %+v, want admitted sim tier", v1)
	}
	if v1.Confidence != 1 || v1.EvidenceRef == "" || v1.Decision != schema.DecisionAdmit {
		t.Fatalf("sim verdict envelope: %+v", v1)
	}
	if _, err := s.release(first.id); err != nil {
		t.Fatal(err)
	}

	second := submitWait(t, s, qos("sgemm", 0.5))
	v2 := second.view().Verdict
	if v2 == nil || v2.Tier != schema.TierCache {
		t.Fatalf("second verdict = %+v, want cache tier", v2)
	}
	if v2.Decision != v1.Decision || v2.Cycles != v1.Cycles || v2.Reason != v1.Reason ||
		v2.Scheme != v1.Scheme || v2.EvidenceRef != v1.EvidenceRef || v2.Confidence != 1 {
		t.Fatalf("cache verdict diverges:\n sim   %+v\n cache %+v", v1, v2)
	}
	c1, c2 := v1.Candidate, v2.Candidate
	if c2.JobID != second.id {
		t.Fatalf("cached candidate job id = %q, want %q", c2.JobID, second.id)
	}
	c1.JobID, c2.JobID = "", ""
	if c1 != c2 {
		t.Fatalf("cached candidate numbers diverge:\n sim   %+v\n cache %+v", c1, c2)
	}
	if n := counter(s, "evaluations"); n != 1 {
		t.Fatalf("evaluations = %d, want 1 (cache hit must not simulate)", n)
	}
	if n := counter(s, "verdicts_tier_sim"); n != 1 {
		t.Fatalf("verdicts_tier_sim = %d", n)
	}
	if n := counter(s, "verdicts_tier_cache"); n != 1 {
		t.Fatalf("verdicts_tier_cache = %d", n)
	}
	if n := counter(s, "verdict_cache_misses"); n != 1 {
		t.Fatalf("verdict_cache_misses = %d", n)
	}
}

// modelFitFor hand-builds a finalized fit bound to sess covering sgemm
// in isolation only: a lone sgemm submission is model-decidable, any
// pair escapes.
func modelFitFor(t *testing.T, sess *core.Session) *perfmodel.Fit {
	t.Helper()
	cfgHash, err := perfmodel.ConfigHash(sess.Config(), sess.Seed())
	if err != nil {
		t.Fatal(err)
	}
	f := &perfmodel.Fit{
		Schema:     perfmodel.FitSchema,
		ConfigHash: cfgHash,
		Scheme:     "rollover",
		Isolated:   map[string]float64{"sgemm": 2.0},
		Pairs:      map[string][]perfmodel.PairPoint{},
	}
	if err := f.Finalize(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestModelTierDecidesAndEscapes pins tier 2 end to end: a covered mix
// is decided analytically without touching the simulator, an uncovered
// mix escapes to simulation, the stats endpoint accounts for both, and
// a serial Replayer reproduces every verdict (and tier) bit-identically.
func TestModelTierDecidesAndEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r, err := exp.NewRunner(2, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		t.Fatal(err)
	}
	fit := modelFitFor(t, r.Session())
	model, err := perfmodel.New(fit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Runner: r, FastPath: true, Model: model, MaxMix: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	// Lone sgemm at goal 0.5: predicted ratio 1/0.5 = 2.0, far outside
	// any band — the model admits without simulating.
	j1 := submitWait(t, s, qos("sgemm", 0.5))
	v1 := j1.view().Verdict
	if v1 == nil || v1.Tier != schema.TierModel || !v1.IsAdmitted() {
		t.Fatalf("verdict = %+v, want admitted model tier", v1)
	}
	if v1.ModelVersion != fit.Version {
		t.Fatalf("model version = %q, want %q", v1.ModelVersion, fit.Version)
	}
	if v1.Confidence <= 0 || v1.Confidence > 1 {
		t.Fatalf("model confidence = %v", v1.Confidence)
	}
	if n := counter(s, "evaluations"); n != 0 {
		t.Fatalf("evaluations = %d, want 0 (model tier must not simulate)", n)
	}

	// lbm is outside the fit: the pair escapes to simulation.
	j2 := submitWait(t, s, be("lbm"))
	v2 := j2.view().Verdict
	if v2 == nil || v2.Tier != schema.TierSim {
		t.Fatalf("uncovered mix verdict = %+v, want sim tier", v2)
	}
	if n := counter(s, "model_escapes"); n != 1 {
		t.Fatalf("model_escapes = %d", n)
	}
	if n := counter(s, "evaluations"); n != 1 {
		t.Fatalf("evaluations = %d, want 1", n)
	}

	// The stats endpoint reports the same story.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/verdicts/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st verdictStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != schema.Version || !st.FastPath {
		t.Fatalf("stats envelope: %+v", st)
	}
	if st.Tiers[schema.TierModel].Decisions != 1 || st.Tiers[schema.TierSim].Decisions != 1 {
		t.Fatalf("tier decisions: %+v", st.Tiers)
	}
	if st.Tiers[schema.TierModel].LatencyEWMANs <= 0 {
		t.Fatalf("model tier latency EWMA not observed: %+v", st.Tiers)
	}
	if st.ModelEscapes != 1 || st.ModelVersion != fit.Version {
		t.Fatalf("stats: %+v", st)
	}
	// Both decided verdicts are cached (model verdicts are cached too).
	if st.CacheSize != 2 || st.CacheCapacity != DefaultVerdictCacheSize {
		t.Fatalf("cache stats: size=%d cap=%d", st.CacheSize, st.CacheCapacity)
	}

	// Serial replay through an identical decider reproduces both
	// verdicts — including the deciding tier — bit for bit.
	sess, err := core.NewSession(core.WithWindow(30_000))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(sess, Config{FastPath: true, Model: model, MaxMix: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Decisions() {
		rv, err := rp.Replay(context.Background(), d)
		if err != nil {
			t.Fatalf("replay %d: %v", d.Index, err)
		}
		if d.Kind != "decision" {
			continue
		}
		got, _ := json.Marshal(d.Verdict)
		want, _ := json.Marshal(rv)
		if string(got) != string(want) {
			t.Fatalf("decision %d:\n served %s\n replay %s", d.Index, got, want)
		}
	}
}

// TestNewDeciderValidation pins the fast-path configuration errors: a
// model without the fast path, a fit bound to a different simulator
// configuration, and a fit swept under a different scheme are all
// refused at construction.
func TestNewDeciderValidation(t *testing.T) {
	r, err := exp.NewRunner(1, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		t.Fatal(err)
	}
	fit := modelFitFor(t, r.Session())
	model, err := perfmodel.New(fit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Runner: r, Model: model}); err == nil {
		t.Fatal("model without FastPath accepted")
	}

	foreign := modelFitFor(t, r.Session())
	foreign.ConfigHash = "0000deadbeef0000"
	if err := foreign.Finalize(); err != nil {
		t.Fatal(err)
	}
	fm, err := perfmodel.New(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Runner: r, FastPath: true, Model: fm}); err == nil {
		t.Fatal("model bound to a foreign config accepted")
	}

	wrongScheme := modelFitFor(t, r.Session())
	wrongScheme.Scheme = "equal"
	if err := wrongScheme.Finalize(); err != nil {
		t.Fatal(err)
	}
	sm, err := perfmodel.New(wrongScheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Runner: r, FastPath: true, Model: sm}); err == nil {
		t.Fatal("model swept under a different scheme accepted")
	}
}

// TestJournalRefusesFastPathChange: the fast-path parameters are part
// of the decision function, so a restart that toggles them must refuse
// the existing journal instead of extending it.
func TestJournalRefusesFastPathChange(t *testing.T) {
	path := t.TempDir() + "/jobs.log"
	s := testServer(t, Config{FastPath: true, JournalPath: path})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	r, err := exp.NewRunner(1, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Runner: r, JournalPath: path}); err == nil {
		t.Fatal("journal written with FastPath reopened without it")
	}
	// The matching configuration still resumes it.
	s2, err := New(Config{Runner: r, FastPath: true, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterSeconds pins the 429 backoff hint math: the
// decision-count-weighted EWMA blend scaled by queue depth, with the
// 1s floor, 600s ceiling, and 1s no-data default.
func TestRetryAfterSeconds(t *testing.T) {
	s := &Server{reg: &trace.Registry{}, queue: make(chan *job, 8)}
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("no data: %d, want 1", got)
	}
	// One sim decision at 2.5s: ceil(2.5) = 3.
	s.reg.Counter("verdicts_tier_sim").Add(1)
	s.reg.Gauge("latency_ewma_ns_sim").Set(2.5e9)
	if got := s.retryAfterSeconds(); got != 3 {
		t.Fatalf("sim-only: %d, want 3", got)
	}
	// 99 cache hits at 1µs drown the blend below a second: floor at 1.
	s.reg.Counter("verdicts_tier_cache").Add(99)
	s.reg.Gauge("latency_ewma_ns_cache").Set(1e3)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("cache-dominated: %d, want 1", got)
	}
	// Absurd latencies clamp at 600.
	s.reg.Gauge("latency_ewma_ns_sim").Set(1e15)
	if got := s.retryAfterSeconds(); got != 600 {
		t.Fatalf("clamp: %d, want 600", got)
	}
}

// TestRetryAfterSecondsColdStart covers the cold-start and degenerate
// EWMA states: tiers whose counters moved before their first latency
// observation landed (the counter bump and the EWMA seed are separate
// critical sections, and journal replay restores counters into a process
// with zeroed gauges) must not dilute the hint, and pathological EWMAs
// must clamp to the 600s ceiling instead of overflowing the int
// conversion into the 1s floor.
func TestRetryAfterSecondsColdStart(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   func(s *Server)
		queued int
		want   int
	}{
		{
			name: "empty registry",
			seed: func(s *Server) {},
			want: 1,
		},
		{
			name: "counters without measurements",
			// A resumed daemon that has decided nothing in this
			// process: replayed counters, zero gauges.
			seed: func(s *Server) {
				s.reg.Counter("verdicts_tier_cache").Add(5000)
				s.reg.Counter("verdicts_tier_sim").Add(40)
			},
			want: 1,
		},
		{
			name: "unmeasured tier does not dilute",
			// 5000 counted-but-unmeasured cache hits against one real
			// 2.5s sim decision: the blend must be 2.5s, not ~0.
			seed: func(s *Server) {
				s.reg.Counter("verdicts_tier_cache").Add(5000)
				s.reg.Counter("verdicts_tier_sim").Add(1)
				s.reg.Gauge("latency_ewma_ns_sim").Set(2.5e9)
			},
			want: 3,
		},
		{
			name: "single tier with saturated queue",
			// 2.5s per decision and 7 jobs already queued: 2.5 * 8.
			seed: func(s *Server) {
				s.reg.Counter("verdicts_tier_sim").Add(1)
				s.reg.Gauge("latency_ewma_ns_sim").Set(2.5e9)
			},
			queued: 7,
			want:   20,
		},
		{
			name: "absurd ewma clamps to ceiling not floor",
			// 1e30ns overflows int64 once multiplied out; the clamp
			// must happen before the integer conversion.
			seed: func(s *Server) {
				s.reg.Counter("verdicts_tier_sim").Add(1)
				s.reg.Gauge("latency_ewma_ns_sim").Set(1e30)
			},
			queued: 7,
			want:   600,
		},
		{
			name: "non-finite ewma ignored",
			seed: func(s *Server) {
				s.reg.Counter("verdicts_tier_model").Add(10)
				s.reg.Gauge("latency_ewma_ns_model").Set(math.Inf(1))
				s.reg.Counter("verdicts_tier_sim").Add(1)
				s.reg.Gauge("latency_ewma_ns_sim").Set(2.5e9)
			},
			want: 3,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := &Server{reg: &trace.Registry{}, queue: make(chan *job, 8)}
			tc.seed(s)
			for i := 0; i < tc.queued; i++ {
				s.queue <- &job{}
			}
			if got := s.retryAfterSeconds(); got != tc.want {
				t.Fatalf("retryAfterSeconds() = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestObserveLatencyEWMA pins the smoothing: first observation seeds
// the gauge, later ones fold in with alpha 0.3.
func TestObserveLatencyEWMA(t *testing.T) {
	s := &Server{reg: &trace.Registry{}}
	s.observeLatency(schema.TierSim, 1000*time.Nanosecond)
	if got := s.reg.Gauge("latency_ewma_ns_sim").Value(); got != 1000 {
		t.Fatalf("seed = %v, want 1000", got)
	}
	s.observeLatency(schema.TierSim, 2000*time.Nanosecond)
	if got, want := s.reg.Gauge("latency_ewma_ns_sim").Value(), 0.7*1000+0.3*2000; got != want {
		t.Fatalf("ewma = %v, want %v", got, want)
	}
}
