package server

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/schema"
	"repro/internal/verdict"
)

// The tiered decision path. Tier 1 is the exact verdict cache
// (internal/verdict): a canonical mix signature either hits a decided
// verdict or misses. Tier 2 is the analytic performance model
// (internal/perfmodel): an instant interpolated prediction, trusted only
// when every QoS goal ratio lands clearly outside the uncertainty band.
// Tier 3 is the full what-if simulation, exactly the pre-fast-path
// behavior — and the only tier when FastPath is off.
//
// The decider is shared verbatim between the live decision loop and the
// Replayer, which is what makes the determinism contract checkable: a
// serial replay of the decision log evolves the identical cache, takes
// the identical tier per decision, and reproduces every verdict bit for
// bit.

// DefaultVerdictCacheSize bounds the exact-verdict cache when the fast
// path is enabled and Config.VerdictCacheSize is zero.
const DefaultVerdictCacheSize = 4096

// DefaultUncertaintyBand is the model tier's goal-ratio margin when
// Config.UncertaintyBand is zero: predictions within ±5% of a goal
// boundary escape to simulation.
const DefaultUncertaintyBand = 0.05

// decider holds the fast-path state. All mutation happens on the
// decision loop (or the Replayer's single goroutine).
type decider struct {
	enabled bool
	cache   *verdict.Cache
	model   *perfmodel.Model
	band    float64
	// cfgHash binds signatures to the exact simulator configuration and
	// seed (perfmodel.ConfigHash).
	cfgHash string
}

// newDecider validates the fast-path half of a Config against the
// session it will decide for. cfg.Scheme must already be defaulted.
func newDecider(cfg Config, sess *core.Session) (*decider, error) {
	cfgHash, err := perfmodel.ConfigHash(sess.Config(), sess.Seed())
	if err != nil {
		return nil, err
	}
	d := &decider{enabled: cfg.FastPath, band: cfg.UncertaintyBand, cfgHash: cfgHash}
	if d.band <= 0 {
		d.band = DefaultUncertaintyBand
	}
	if !cfg.FastPath {
		if cfg.Model != nil {
			return nil, errors.New("server: Config.Model requires Config.FastPath")
		}
		return d, nil
	}
	size := cfg.VerdictCacheSize
	if size <= 0 {
		size = DefaultVerdictCacheSize
	}
	d.cache = verdict.NewCache(size)
	if cfg.Model != nil {
		if got := cfg.Model.ConfigHash(); got != cfgHash {
			return nil, fmt.Errorf("server: model fit bound to config %.12s…, daemon runs %.12s… (refit under this device/window/seed)",
				got, cfgHash)
		}
		if sc := cfg.Model.Scheme(); sc != "" && sc != cfg.Scheme.Name() {
			return nil, fmt.Errorf("server: model fit swept under scheme %q, daemon evaluates %q", sc, cfg.Scheme.Name())
		}
		d.model = cfg.Model
	}
	return d, nil
}

// cacheLen and cacheCap report the verdict cache's occupancy and
// capacity; both are 0 when the fast path is off.
func (d *decider) cacheLen() int {
	if d.cache == nil {
		return 0
	}
	return d.cache.Len()
}

func (d *decider) cacheCap() int {
	if d.cache == nil {
		return 0
	}
	return d.cache.Cap()
}

// effectiveScheme applies the goal-less-mix rule shared by evaluation
// and replay: a hypothetical mix with no QoS kernel has no contract to
// protect, so it runs (and is cached) under unmanaged sharing.
func effectiveScheme(scheme core.Scheme, specs []core.KernelSpec) core.Scheme {
	for _, sp := range specs {
		if sp.GoalFrac > 0 || sp.GoalIPC > 0 {
			return scheme
		}
	}
	return core.SchemeNone
}

// kernelSigs lowers ordered kernel specs to signature form.
func kernelSigs(specs []core.KernelSpec) []verdict.KernelSig {
	sigs := make([]verdict.KernelSig, len(specs))
	for i, sp := range specs {
		sigs[i] = verdict.KernelSig{Workload: sp.Workload, GoalFrac: sp.GoalFrac, GoalIPC: sp.GoalIPC}
	}
	return sigs
}

// evidenceRef renders the signature reference carried on verdicts.
func evidenceRef(sig string) string {
	if len(sig) > 16 {
		sig = sig[:16]
	}
	return "sig:" + sig
}

// fastResult reports what the fast tiers did for one decision, so the
// caller can maintain counters without the decider knowing about them.
type fastResult struct {
	v *Verdict
	// cacheMiss: the fast path is enabled and the exact cache missed.
	cacheMiss bool
	// modelEscape: the model was consulted but declined (coverage hole
	// or a prediction inside the uncertainty band).
	modelEscape bool
}

// tryFast runs tiers 1 and 2. ids lists the job ids in spec order
// (incumbents first, candidate last); schemeName is the effective
// scheme. A nil fastResult.v means the decision falls to simulation.
func (d *decider) tryFast(sig string, sigs []verdict.KernelSig, ids []string, schemeName string) fastResult {
	if !d.enabled {
		return fastResult{}
	}
	if cv, ok := d.cache.Get(sig); ok {
		return fastResult{v: cachedVerdict(cv, sigs, ids, sig)}
	}
	out := fastResult{cacheMiss: true}
	if d.model == nil {
		return out
	}
	v := d.modelVerdict(sig, sigs, ids, schemeName)
	if v == nil {
		out.modelEscape = true
		return out
	}
	// Model verdicts are cached too: the next identical mix is a tier-1
	// hit instead of a re-prediction.
	d.store(sig, v, sigs)
	out.v = v
	return out
}

// cachedVerdict maps a stored verdict's canonical-order outcomes back to
// the current request's kernel positions and job ids.
func cachedVerdict(cv verdict.Cached, sigs []verdict.KernelSig, ids []string, sig string) *Verdict {
	outs := make([]KernelOutcome, len(sigs))
	for ci, oi := range verdict.Canonical(sigs) {
		o := cv.Outcomes[ci]
		o.JobID = ids[oi]
		outs[oi] = o
	}
	v := newVerdict(cv.Admitted, schema.TierCache, cv.Confidence, cv.Scheme, ids, outs, sig)
	v.ModelVersion = cv.ModelVersion
	v.Cycles = cv.Cycles
	v.Reason = verdictReason(cv.Admitted, cv.Tier, cv.Confidence, outs)
	return v
}

// modelVerdict runs the analytic tier; nil means escape to simulation.
func (d *decider) modelVerdict(sig string, sigs []verdict.KernelSig, ids []string, schemeName string) *Verdict {
	mk := make([]perfmodel.Kernel, len(sigs))
	for i, ks := range sigs {
		mk[i] = perfmodel.Kernel{Workload: ks.Workload, GoalFrac: ks.GoalFrac, GoalIPC: ks.GoalIPC}
	}
	pred, ok := d.model.Predict(mk)
	if !ok {
		return nil
	}
	admit, clear := pred.Decide(d.band)
	if !clear {
		return nil
	}
	conf := pred.Confidence()
	outs := make([]KernelOutcome, len(sigs))
	for i, kp := range pred.Kernels {
		o := KernelOutcome{
			JobID:       ids[i],
			Workload:    kp.Workload,
			IsQoS:       kp.IsQoS,
			GoalIPC:     kp.GoalIPC,
			IPC:         kp.IPC,
			IsolatedIPC: kp.Isolated,
		}
		if kp.Isolated > 0 {
			o.NormThroughput = kp.IPC / kp.Isolated
		}
		if kp.IsQoS {
			o.GoalRatio = kp.Ratio
			o.Reached = kp.Ratio >= 1
		}
		outs[i] = o
	}
	v := newVerdict(admit, schema.TierModel, conf, schemeName, ids, outs, sig)
	v.ModelVersion = d.model.Version()
	v.Reason = verdictReason(admit, schema.TierModel, conf, outs)
	return v
}

// simVerdict scores a what-if simulation result (tier 3). The decision
// rule is the paper's QoS contract applied transitively: admit if and
// only if every QoS kernel of the hypothetical mix reaches its goal.
func simVerdict(res *core.Result, ids []string, sig string) *Verdict {
	outs := make([]KernelOutcome, len(res.Kernels))
	for i, kr := range res.Kernels {
		outs[i] = KernelOutcome{
			JobID:          ids[i],
			Workload:       kr.Name,
			IsQoS:          kr.IsQoS,
			GoalIPC:        kr.GoalIPC,
			IPC:            kr.IPC,
			IsolatedIPC:    kr.IsolatedIPC,
			Reached:        kr.Reached,
			GoalRatio:      kr.GoalRatio,
			NormThroughput: kr.NormThroughput,
		}
	}
	v := newVerdict(res.AllReached, schema.TierSim, 1, res.Scheme.Name(), ids, outs, sig)
	v.Cycles = res.Cycles
	v.Reason = verdictReason(res.AllReached, schema.TierSim, 1, outs)
	return v
}

// newVerdict assembles the shared envelope; outs is in request order
// with the candidate last.
func newVerdict(admitted bool, tier string, conf float64, schemeName string, ids []string, outs []KernelOutcome, sig string) *Verdict {
	n := len(outs)
	mixIDs := make([]string, n-1)
	copy(mixIDs, ids)
	v := &Verdict{
		Decision:    schema.Decision(admitted),
		Admitted:    admitted,
		Tier:        tier,
		Confidence:  conf,
		EvidenceRef: evidenceRef(sig),
		Scheme:      schemeName,
		MixBefore:   mixIDs,
		Candidate:   outs[n-1],
	}
	if n > 1 {
		v.Incumbents = outs[:n-1]
	}
	return v
}

// verdictReason renders the deterministic human-readable explanation.
// evidenceTier is the origin of the evidence ("sim" or "model"), which a
// cache hit inherits from the stored verdict.
func verdictReason(admitted bool, evidenceTier string, confidence float64, outs []KernelOutcome) string {
	if evidenceTier == schema.TierModel {
		if admitted {
			return fmt.Sprintf("analytic model predicts all QoS goals reached (confidence %.3f)", confidence)
		}
		return "analytic model predicts QoS goal missed by " + missedList(outs)
	}
	if admitted {
		return "all QoS goals reached in the what-if co-run"
	}
	return "QoS goal missed by " + missedList(outs)
}

// missedList names every QoS kernel below goal, in request order.
func missedList(outs []KernelOutcome) string {
	var missed []string
	for _, o := range outs {
		if o.IsQoS && !o.Reached {
			missed = append(missed, fmt.Sprintf("%s (%s) at %.1f%% of goal", o.JobID, o.Workload, 100*o.GoalRatio))
		}
	}
	return strings.Join(missed, ", ")
}

// store caches a decided verdict under its signature with outcomes in
// canonical order and job ids stripped. No-op when the fast path is off.
func (d *decider) store(sig string, v *Verdict, sigs []verdict.KernelSig) {
	if !d.enabled {
		return
	}
	outs := make([]KernelOutcome, 0, len(v.Incumbents)+1)
	outs = append(outs, v.Incumbents...)
	outs = append(outs, v.Candidate)
	canon := make([]KernelOutcome, len(outs))
	for ci, oi := range verdict.Canonical(sigs) {
		o := outs[oi]
		o.JobID = ""
		canon[ci] = o
	}
	d.cache.Put(sig, verdict.Cached{
		Admitted:     v.Admitted,
		Scheme:       v.Scheme,
		Cycles:       v.Cycles,
		Confidence:   v.Confidence,
		Tier:         v.Tier,
		ModelVersion: v.ModelVersion,
		Outcomes:     canon,
	})
}

// Replayer re-decides a decision log through the identical tiered logic
// on a single simulator session, in log order. It is the determinism
// contract made executable: with the same fast-path configuration as
// the daemon that wrote the log, Replay returns every verdict — and its
// deciding tier — bit-identically, because the cache and model evolve
// through the same serial sequence. Only the fast-path fields of cfg
// are read (FastPath, Model, UncertaintyBand, VerdictCacheSize, Scheme);
// Runner may be nil.
type Replayer struct {
	sess   *core.Session
	scheme core.Scheme
	dec    *decider
}

// NewReplayer builds a replayer for the given session, which must match
// the daemon's device, window and seed for signatures to line up.
func NewReplayer(sess *core.Session, cfg Config) (*Replayer, error) {
	if cfg.Scheme == core.SchemeNone {
		cfg.Scheme = core.SchemeRollover
	}
	dec, err := newDecider(cfg, sess)
	if err != nil {
		return nil, err
	}
	return &Replayer{sess: sess, scheme: cfg.Scheme, dec: dec}, nil
}

// Replay decides one log entry. Kind "release" entries return (nil,
// nil): releases carry no verdict, and the mix each decision saw is
// snapshotted on the decision itself.
func (r *Replayer) Replay(ctx context.Context, d Decision) (*Verdict, error) {
	if d.Kind != "decision" {
		return nil, nil
	}
	specs := make([]core.KernelSpec, 0, len(d.Mix)+1)
	ids := make([]string, 0, len(d.Mix)+1)
	for _, m := range d.Mix {
		specs = append(specs, m.Spec())
		ids = append(ids, m.JobID)
	}
	specs = append(specs, d.Candidate.Spec())
	ids = append(ids, d.JobID)
	scheme := effectiveScheme(r.scheme, specs)
	sigs := kernelSigs(specs)
	sig := verdict.Signature(sigs, scheme.Name(), r.dec.cfgHash)
	if fr := r.dec.tryFast(sig, sigs, ids, scheme.Name()); fr.v != nil {
		return fr.v, nil
	}
	res, err := r.sess.Run(ctx, specs, scheme)
	if err != nil {
		return nil, err
	}
	v := simVerdict(res, ids, sig)
	r.dec.store(sig, v, sigs)
	return v, nil
}
