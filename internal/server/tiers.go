package server

import (
	"context"

	"repro/internal/core"
	"repro/internal/verdict"
)

// The tiered decision path (cache → model → sim) lives in
// internal/verdict.Decider, shared verbatim by this daemon's decision
// loop, the serial Replayer below, and every node of a fleet
// (internal/fleet). Sharing one implementation is what makes the
// determinism contract checkable: a serial replay of the decision log
// evolves the identical cache, takes the identical tier per decision,
// and reproduces every verdict bit for bit.

// DefaultVerdictCacheSize bounds the exact-verdict cache when the fast
// path is enabled and Config.VerdictCacheSize is zero.
const DefaultVerdictCacheSize = verdict.DefaultCacheSize

// DefaultUncertaintyBand is the model tier's goal-ratio margin when
// Config.UncertaintyBand is zero: predictions within ±5% of a goal
// boundary escape to simulation.
const DefaultUncertaintyBand = verdict.DefaultUncertaintyBand

// newDecider lowers the fast-path half of a Config into the shared
// decider, bound to the session it will decide for. cfg.Scheme must
// already be defaulted.
func newDecider(cfg Config, sess *core.Session) (*verdict.Decider, error) {
	return verdict.NewDecider(sess, verdict.DeciderConfig{
		FastPath:        cfg.FastPath,
		Model:           cfg.Model,
		UncertaintyBand: cfg.UncertaintyBand,
		CacheSize:       cfg.VerdictCacheSize,
		SchemeName:      cfg.Scheme.Name(),
	})
}

// Replayer re-decides a decision log through the identical tiered logic
// on a single simulator session, in log order. It is the determinism
// contract made executable: with the same fast-path configuration as
// the daemon that wrote the log, Replay returns every verdict — and its
// deciding tier — bit-identically, because the cache and model evolve
// through the same serial sequence. Only the fast-path fields of cfg
// are read (FastPath, Model, UncertaintyBand, VerdictCacheSize, Scheme);
// Runner may be nil.
type Replayer struct {
	sess   *core.Session
	scheme core.Scheme
	dec    *verdict.Decider
}

// NewReplayer builds a replayer for the given session, which must match
// the daemon's device, window and seed for signatures to line up.
func NewReplayer(sess *core.Session, cfg Config) (*Replayer, error) {
	if cfg.Scheme == core.SchemeNone {
		cfg.Scheme = core.SchemeRollover
	}
	dec, err := newDecider(cfg, sess)
	if err != nil {
		return nil, err
	}
	return &Replayer{sess: sess, scheme: cfg.Scheme, dec: dec}, nil
}

// Replay decides one log entry. Kind "release" entries return (nil,
// nil): releases carry no verdict, and the mix each decision saw is
// snapshotted on the decision itself.
func (r *Replayer) Replay(ctx context.Context, d Decision) (*Verdict, error) {
	if d.Kind != "decision" {
		return nil, nil
	}
	specs := make([]core.KernelSpec, 0, len(d.Mix)+1)
	ids := make([]string, 0, len(d.Mix)+1)
	for _, m := range d.Mix {
		specs = append(specs, m.Spec())
		ids = append(ids, m.JobID)
	}
	specs = append(specs, d.Candidate.Spec())
	ids = append(ids, d.JobID)
	scheme := verdict.EffectiveScheme(r.scheme, specs)
	sigs := verdict.KernelSigsOf(specs)
	sig := r.dec.SignatureFor(sigs, scheme.Name())
	if fr := r.dec.TryFast(sig, sigs, ids, scheme.Name()); fr.V != nil {
		return fr.V, nil
	}
	res, err := r.sess.Run(ctx, specs, scheme)
	if err != nil {
		return nil, err
	}
	v := verdict.SimVerdict(res, ids, sig)
	r.dec.Store(sig, v, sigs)
	return v, nil
}
