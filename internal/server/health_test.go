package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/schema"
)

// getHealth fetches /healthz and decodes the body.
func getHealth(t *testing.T, ts *httptest.Server) (int, healthResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, hr
}

// TestHealthzStallWatchdog wedges the decision loop deterministically
// (via the test gate) and checks /healthz flips from 200 to a 503 with
// decision_loop_stalled once the in-flight decision exceeds StallAfter —
// then recovers to 200 with an advanced last-progress timestamp when the
// loop moves again. This is the liveness contract an orchestrator polls:
// a wedged controller must not keep answering "ok".
func TestHealthzStallWatchdog(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	const stallAfter = 50 * time.Millisecond
	s := testServer(t, Config{StallAfter: stallAfter})
	s.gate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, hr := getHealth(t, ts)
	if code != http.StatusOK || hr.Status != "ok" || hr.Stalled {
		t.Fatalf("idle healthz = %d %+v, want 200 ok", code, hr)
	}
	if hr.Schema != schema.Version {
		t.Fatalf("healthz schema = %d, want %d", hr.Schema, schema.Version)
	}
	if hr.LastProgressMs <= 0 {
		t.Fatalf("idle healthz last_progress_unix_ms = %d, want startup time", hr.LastProgressMs)
	}
	baseline := hr.LastProgressMs

	// Park the loop: it marks the decision in flight, then blocks on the
	// gate — indistinguishable, to the watchdog, from a wedged evaluation.
	if code, _ := post(t, ts, `{"kernel":{"workload":"sgemm","goal_frac":0.5}}`); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("decision loop never picked up the job")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * stallAfter)

	code, hr = getHealth(t, ts)
	if code != http.StatusServiceUnavailable || hr.Status != "stalled" || !hr.Stalled {
		t.Fatalf("wedged healthz = %d %+v, want 503 stalled", code, hr)
	}
	if hr.InFlightMs < stallAfter.Milliseconds() {
		t.Fatalf("decision_in_flight_ms = %d, want >= %d", hr.InFlightMs, stallAfter.Milliseconds())
	}
	if hr.LastProgressMs != baseline {
		t.Fatalf("last progress moved while wedged: %d -> %d", baseline, hr.LastProgressMs)
	}

	// Release the gate: the decision completes and the watchdog clears.
	s.gate <- struct{}{}
	var id string
	{
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var lr jobListResponse
		json.NewDecoder(resp.Body).Decode(&lr)
		resp.Body.Close()
		if len(lr.Jobs) != 1 {
			t.Fatalf("jobs = %+v", lr.Jobs)
		}
		id = lr.Jobs[0].ID
	}
	if v := wait(t, ts, id); v.Verdict == nil {
		t.Fatalf("job not decided after gate release: %+v", v)
	}
	code, hr = getHealth(t, ts)
	if code != http.StatusOK || hr.Status != "ok" || hr.Stalled {
		t.Fatalf("recovered healthz = %d %+v, want 200 ok", code, hr)
	}
	if hr.LastProgressMs < baseline {
		t.Fatalf("last progress did not advance: %d -> %d", baseline, hr.LastProgressMs)
	}
	if hr.InFlightMs != 0 {
		t.Fatalf("idle decision_in_flight_ms = %d, want 0", hr.InFlightMs)
	}
}
