// Package server exposes the QoS simulator as a long-running admission
// control daemon (cmd/qosd). Clients submit kernels with QoS goals
// (POST /v1/jobs); the controller runs a simulator-backed what-if co-run
// of the currently admitted mix plus the candidate on a shared
// exp.Runner worker pool and admits the kernel only when every QoS goal
// of the hypothetical mix is predicted to hold — the paper's QoS
// contract applied at admission time, before any kernel touches the
// device. Admitted jobs occupy a bounded mix until released; decisions
// are journaled so a restarted daemon keeps honoring contracts it
// already accepted.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/perfmodel"
	"repro/internal/schema"
	"repro/internal/trace"
	"repro/internal/verdict"
)

// Config assembles a Server. Runner is the only required field: the
// daemon borrows its worker sessions for what-if runs and inherits its
// fault policy (per-evaluation timeout, retries).
type Config struct {
	// Runner supplies pooled simulator sessions (exp.NewRunner).
	Runner *exp.Runner
	// Scheme is the QoS scheme every evaluation runs under. Zero value
	// (SchemeNone) is replaced by SchemeRollover, the paper's best.
	Scheme core.Scheme
	// MaxMix bounds the number of concurrently admitted kernels
	// (default 3: the simulator's co-run sizes of interest).
	MaxMix int
	// QueueDepth bounds submissions awaiting a decision (default 16);
	// beyond it, POST /v1/jobs returns 429.
	QueueDepth int
	// JournalPath, when set, enables the crash-safe job log. The file is
	// created on first start and resumed on restart; a journal written
	// under a different simulator configuration is refused.
	JournalPath string

	// FastPath enables the tiered decision path (exact verdict cache,
	// then the analytic model when one is loaded) in front of the what-if
	// simulation. Off, every decision simulates — the pre-v2 behavior.
	FastPath bool
	// Model is the optional tier-2 analytic performance model
	// (perfmodel.Load). Requires FastPath; its fit must be bound to this
	// runner's exact simulator configuration, seed and scheme.
	Model *perfmodel.Model
	// UncertaintyBand is the model tier's trust margin: a predicted QoS
	// goal ratio within ±band of 1.0 escapes to simulation (default
	// DefaultUncertaintyBand).
	UncertaintyBand float64
	// VerdictCacheSize bounds the exact verdict cache (default
	// DefaultVerdictCacheSize).
	VerdictCacheSize int

	// Fleet optionally attaches a multi-node placement scheduler
	// (fleet.New); when set, the /v2 fractional-GPU API is served.
	// The fleet's lifecycle belongs to the caller except for drain:
	// Server.Shutdown drains the fleet alongside the v1 decision loop.
	Fleet *fleet.Fleet

	// StallAfter is the decision-loop liveness threshold: when a single
	// decision has been in flight longer than this, GET /healthz reports
	// decision_loop_stalled and returns 503 so orchestrators can detect a
	// wedged loop instead of reading a bare 200 forever (default
	// DefaultStallAfter). It must comfortably exceed the runner's
	// per-evaluation timeout; a legitimate slow simulation is not a stall.
	StallAfter time.Duration
}

// DefaultStallAfter is the default decision-loop stall threshold.
const DefaultStallAfter = 2 * time.Minute

// Server is the admission-control daemon. Construct with New, mount
// Handler on an http.Server, stop with Shutdown.
type Server struct {
	runner *exp.Runner
	scheme core.Scheme
	maxMix int
	dec    *verdict.Decider
	fleet  *fleet.Fleet

	store    *jobStore
	queue    chan *job
	slotFree chan struct{}
	// gate, when non-nil (tests only), holds the decision loop before
	// each decision so queue states can be arranged deterministically.
	gate chan struct{}

	mixMu sync.Mutex
	mix   []*job

	decMu     sync.Mutex
	decisions []Decision
	jnl       *journal.Journal

	statsMu sync.Mutex
	reg     *trace.Registry

	// Decision-loop liveness (see Config.StallAfter). decidingSinceNs is
	// the wall time the in-flight decision started, 0 while the loop is
	// idle; lastProgressNs is the wall time the loop last completed a
	// decision (or started). Atomics: written by the decision loop, read
	// by /healthz.
	stallAfter      time.Duration
	decidingSinceNs atomic.Int64
	lastProgressNs  atomic.Int64

	baseCtx  context.Context
	stop     context.CancelFunc
	drainMu  sync.Mutex
	draining bool
	loopDone chan struct{}
}

// New validates the configuration, recovers the job log if one is
// configured, and starts the decision loop.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, errors.New("server: Config.Runner is required")
	}
	if cfg.Scheme == core.SchemeNone {
		cfg.Scheme = core.SchemeRollover
	}
	if cfg.MaxMix <= 0 {
		cfg.MaxMix = 3
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = DefaultStallAfter
	}
	dec, err := newDecider(cfg, cfg.Runner.Session())
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		runner:     cfg.Runner,
		scheme:     cfg.Scheme,
		maxMix:     cfg.MaxMix,
		dec:        dec,
		fleet:      cfg.Fleet,
		store:      newJobStore(),
		queue:      make(chan *job, cfg.QueueDepth),
		slotFree:   make(chan struct{}, 1),
		reg:        &trace.Registry{},
		baseCtx:    ctx,
		stop:       cancel,
		loopDone:   make(chan struct{}),
		stallAfter: cfg.StallAfter,
	}
	s.lastProgressNs.Store(time.Now().UnixNano())
	if cfg.JournalPath != "" {
		if err := s.openJournal(cfg.JournalPath); err != nil {
			cancel()
			return nil, err
		}
	}
	go s.decisionLoop()
	return s, nil
}

// openJournal opens (or creates) the job log. The header hash binds the
// file to the exact simulator configuration and admission parameters, so
// a daemon restarted with different settings can never resurrect
// contracts it would now evaluate differently.
func (s *Server) openJournal(path string) error {
	sess := s.runner.Session()
	var modelVersion string
	if m := s.dec.Model(); m != nil {
		modelVersion = m.Version()
	}
	hash, err := journal.Hash(struct {
		Config core.Config
		Seed   uint64
		Scheme string
		MaxMix int
		// The fast-path parameters are part of the decision function: a
		// daemon restarted with a different cache, model or band could
		// decide (or explain) the same submission differently, so such a
		// restart must refuse the log rather than extend it.
		FastPath        bool
		ModelVersion    string
		UncertaintyBand float64
		CacheSize       int
	}{sess.Config(), sess.Seed(), s.scheme.Name(), s.maxMix,
		s.dec.Enabled(), modelVersion, s.dec.Band(), s.dec.CacheCap()})
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		j, err := journal.Open(path, hash)
		if err != nil {
			return err
		}
		s.jnl = j
		return s.recoverJournal()
	}
	j, err := journal.Create(path, hash)
	if err != nil {
		return err
	}
	s.jnl = j
	return nil
}

// Registry exposes the daemon's run-level counters and gauges (the
// /metrics source) so embedding callers — the stream driver — can
// record their own series alongside the decision loop's.
func (s *Server) Registry() *trace.Registry { return s.reg }

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/verdicts/stats", s.handleVerdictStats)
	mux.HandleFunc("POST /v2/jobs", s.handleV2Submit)
	mux.HandleFunc("GET /v2/jobs", s.handleV2List)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleV2Get)
	mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleV2Release)
	mux.HandleFunc("GET /v2/nodes", s.handleV2Nodes)
	mux.HandleFunc("GET /v2/nodes/{id}", s.handleV2Node)
	mux.HandleFunc("GET /v2/placements", s.handleV2Placements)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// submit validates a request and enqueues the job for the decision
// loop. The drain lock spans creation and the queue send so a submit
// can never race Shutdown's close of the queue.
func (s *Server) submit(req JobRequest) (*job, error) {
	if req.Scheme != "" {
		sc, err := core.ParseScheme(req.Scheme)
		if err != nil {
			return nil, err
		}
		if sc != s.scheme {
			return nil, fmt.Errorf("%w: daemon evaluates scheme %q, request pinned %q",
				ErrBadRequest, s.scheme.Name(), sc.Name())
		}
	}
	spec, err := req.Kernel.spec(s.runner.GPUConfig())
	if err != nil {
		return nil, err
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return nil, fmt.Errorf("%w: not accepting new jobs", ErrDraining)
	}
	j := s.store.create(req.Name, spec, req.Kernel)
	select {
	case s.queue <- j:
	default:
		j.finish(JobFailed, nil, ErrQueueFull)
		s.count("queue_rejected", 1)
		return nil, fmt.Errorf("%w: %d decisions pending", ErrQueueFull, cap(s.queue))
	}
	s.count("jobs_submitted", 1)
	return j, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	j, err := s.submit(req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobResponse{Schema: schema.Version, Job: j.view()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// ?wait=1 blocks until the job has a verdict (or the client leaves).
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, jobResponse{Schema: schema.Version, Job: j.view()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.store.list()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	writeJSON(w, http.StatusOK, jobListResponse{Schema: schema.Version, Jobs: out})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	j, err := s.release(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{Schema: schema.Version, Job: j.view()})
}

// handleEvents streams a job's event log over SSE: the buffered events
// first (replay), then live events until the job reaches its verdict or
// the client disconnects. Event ids carry the per-job sequence so
// clients can detect gaps.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErr(w, errors.New("server: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch := make(chan Event, 64)
	replay := j.subscribe(ch)
	defer j.unsubscribe(ch)
	seen := -1
	write := func(ev Event) {
		if ev.Seq <= seen {
			return // already replayed
		}
		seen = ev.Seq
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
	}
	for _, ev := range replay {
		write(ev)
	}
	fl.Flush()
	for {
		select {
		case ev := <-ch:
			write(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-j.done:
			for {
				select {
				case ev := <-ch:
					write(ev)
				default:
					fl.Flush()
					return
				}
			}
		}
	}
}

// handleVerdictStats reports the tiered decision path's behavior:
// per-tier decision counts and latency EWMAs, cache occupancy, model
// escapes and batch coalescing. The same counters appear on /metrics.
func (s *Server) handleVerdictStats(w http.ResponseWriter, _ *http.Request) {
	resp := verdictStatsResponse{
		Schema:   schema.Version,
		FastPath: s.dec.Enabled(),
		Tiers:    make(map[string]tierStats, 3),
	}
	s.statsMu.Lock()
	for _, tier := range []string{schema.TierCache, schema.TierModel, schema.TierSim} {
		resp.Tiers[tier] = tierStats{
			Decisions:     s.reg.Counter("verdicts_tier_" + tier).Value(),
			LatencyEWMANs: s.reg.Gauge("latency_ewma_ns_" + tier).Value(),
		}
	}
	resp.CacheMisses = s.reg.Counter("verdict_cache_misses").Value()
	resp.ModelEscapes = s.reg.Counter("model_escapes").Value()
	resp.Coalesced = s.reg.Counter("verdicts_coalesced").Value()
	s.statsMu.Unlock()
	resp.CacheSize = s.dec.CacheLen()
	resp.CacheCapacity = s.dec.CacheCap()
	if s.dec.Enabled() {
		resp.UncertaintyBand = s.dec.Band()
	}
	if m := s.dec.Model(); m != nil {
		resp.ModelVersion = m.Version()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the server registry as plain "name value" lines
// (sorted), including the schema version and live queue/mix gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mixMu.Lock()
	mixN := len(s.mix)
	s.mixMu.Unlock()
	s.gauge("mix_size", float64(mixN))
	s.gauge("queue_depth", float64(len(s.queue)))

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "qosd_schema_version %d\n", schema.Version)
	fmt.Fprintf(w, "qosd_workers %d\n", s.runner.Workers())
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for _, c := range s.reg.Counters() {
		fmt.Fprintf(w, "qosd_%s %d\n", c.Name(), c.Value())
	}
	for _, g := range s.reg.Gauges() {
		fmt.Fprintf(w, "qosd_%s %g\n", g.Name(), g.Value())
	}
}

// handleHealthz reports liveness, not just reachability: beyond the
// drain flag it watches the decision loop itself. A decision in flight
// longer than StallAfter (runner deadlocked, simulation wedged past its
// timeout, slot wait that never resolves) flips decision_loop_stalled
// and the status code to 503, with the last-progress timestamp so an
// operator can see how long the loop has been dark — instead of a bare
// 200 from a daemon that will never decide another job.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	since := s.decidingSinceNs.Load()
	lastProgress := s.lastProgressNs.Load()
	var inflightMs int64
	stalled := false
	if since != 0 {
		inflight := time.Since(time.Unix(0, since))
		inflightMs = inflight.Milliseconds()
		stalled = inflight > s.stallAfter
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case stalled:
		status = "stalled"
		code = http.StatusServiceUnavailable
	case draining:
		status = "draining"
	}
	writeJSON(w, code, healthResponse{
		Schema:         schema.Version,
		Status:         status,
		Draining:       draining,
		Scheme:         s.scheme.Name(),
		Workers:        s.runner.Workers(),
		MaxMix:         s.maxMix,
		Stalled:        stalled,
		InFlightMs:     inflightMs,
		LastProgressMs: lastProgress / int64(time.Millisecond),
	})
}

// count bumps a server counter (statsMu-guarded: trace.Registry itself
// is unsynchronized by design).
func (s *Server) count(name string, delta int64) {
	s.statsMu.Lock()
	s.reg.Counter(name).Add(delta)
	s.statsMu.Unlock()
}

// gauge sets a server gauge.
func (s *Server) gauge(name string, v float64) {
	s.statsMu.Lock()
	s.reg.Gauge(name).Set(v)
	s.statsMu.Unlock()
}

// Mix returns the ids of the currently admitted jobs in admission order.
func (s *Server) Mix() []string {
	s.mixMu.Lock()
	defer s.mixMu.Unlock()
	out := make([]string, len(s.mix))
	for i, j := range s.mix {
		out[i] = j.id
	}
	return out
}

// Shutdown drains the daemon: new submissions are refused (503), every
// already-queued job still receives a real verdict, then the decision
// loop exits and the job log is closed. If ctx expires first the drain
// turns forced: in-flight evaluations are cancelled and undecided jobs
// fail with ErrDraining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.drainMu.Unlock()
	var err error
	select {
	case <-s.loopDone:
	case <-ctx.Done():
		s.stop() // force: abort evaluations and slot waits
		<-s.loopDone
		err = ctx.Err()
	}
	s.stop()
	if s.fleet != nil {
		if ferr := s.fleet.Shutdown(ctx); ferr != nil && err == nil {
			err = ferr
		}
	}
	s.decMu.Lock()
	jnl := s.jnl
	s.jnl = nil
	s.decMu.Unlock()
	if jnl != nil {
		if cerr := jnl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
