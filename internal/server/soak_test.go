package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/schema"
)

// TestSoakConcurrentAdmission is the daemon's acceptance test: 50
// concurrent HTTP clients against a 2-worker runner. Every job must
// reach a terminal state (zero lost), overload must never be silent, and
// every recorded verdict must be bit-identical to a serial replay of its
// decision — the determinism contract of the single-threaded decision
// loop over a seeded simulator.
func TestSoakConcurrentAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soak")
	}
	small := config.Base()
	small.NumSMs = 4
	sessOpts := []core.Option{core.WithGPU(small), core.WithWindow(30_000)}
	r, err := exp.NewRunner(2, exp.WithSessionOptions(sessOpts...))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Runner: r, MaxMix: 2, QueueDepth: 64, FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Each client submits one deterministic-by-index job, waits for the
	// verdict, and releases admitted jobs so the mix keeps cycling and
	// head-of-line waiters are never starved.
	workloadsByIdx := []string{"sgemm", "lbm", "mri-q", "stencil", "histo"}
	goalsByIdx := []float64{0, 0.3, 0.5, 0.7}
	const clients = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"name":"c%02d","kernel":{"workload":%q,"goal_frac":%g}}`,
				i, workloadsByIdx[i%len(workloadsByIdx)], goalsByIdx[i%len(goalsByIdx)])
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			code, jr := resp.StatusCode, decodeJob(resp)
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("client %d: POST = %d", i, code)
				return
			}
			v, err := waitJob(ts, jr.Job.ID)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			switch v.State {
			case string(JobAdmitted):
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jr.Job.ID, nil)
				dresp, derr := http.DefaultClient.Do(req)
				if derr != nil {
					errs <- derr
					return
				}
				dresp.Body.Close()
				if dresp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: release = %d", i, dresp.StatusCode)
				}
			case string(JobRejected):
				if v.Verdict == nil || v.Verdict.IsAdmitted() {
					errs <- fmt.Errorf("client %d: rejected without verdict: %+v", i, v)
				}
			default:
				errs <- fmt.Errorf("client %d: terminal state %q", i, v.State)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Drain: queued work is already decided, so this completes promptly.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain = %v", err)
	}

	// Zero lost jobs: every submission is on the log with a verdict.
	decs := s.Decisions()
	var decisions []Decision
	for _, d := range decs {
		if d.Kind == "decision" {
			decisions = append(decisions, d)
		}
	}
	if len(decisions) != clients {
		t.Fatalf("%d decisions for %d submissions", len(decisions), clients)
	}
	for _, j := range s.store.list() {
		st := j.view().State
		if st != string(JobReleased) && st != string(JobRejected) {
			t.Fatalf("job %s ended as %q", j.id, st)
		}
	}

	// Serial replay: re-decide every logged decision through an identical
	// tiered decider on a fresh single session (same device, window,
	// seed, fast-path settings) and demand the byte-identical verdict —
	// decision, deciding tier, reason, every kernel number. This is what
	// makes the daemon's concurrent fast-path answers trustworthy.
	sess, err := core.NewSession(sessOpts...)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(sess, Config{MaxMix: 2, FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[string]int{}
	for _, d := range decisions {
		if d.Verdict == nil {
			t.Fatalf("decision %d (%s) has no verdict", d.Index, d.JobID)
		}
		tiers[d.Verdict.Tier]++
		v, err := rp.Replay(context.Background(), d)
		if err != nil {
			t.Fatalf("replay decision %d: %v", d.Index, err)
		}
		got, _ := json.Marshal(d.Verdict)
		want, _ := json.Marshal(v)
		if string(got) != string(want) {
			t.Fatalf("decision %d (%s):\n served %s\n replay %s", d.Index, d.JobID, got, want)
		}
	}
	// Under 50 clients cycling 20 distinct (workload, goal) submissions
	// against a MaxMix-2 mix, the exact cache must actually carry load.
	if tiers[schema.TierCache] == 0 {
		t.Fatalf("no cache-tier verdicts in soak: %v", tiers)
	}
	t.Logf("verdicts by tier: %v", tiers)
}

// decodeJob decodes and closes a job response.
func decodeJob(resp *http.Response) jobResponse {
	defer resp.Body.Close()
	var jr jobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	return jr
}

// waitJob blocks on ?wait=1 until the job has a verdict. Unlike the
// wait helper it returns errors instead of failing the test, so client
// goroutines can use it.
func waitJob(ts *httptest.Server, id string) (JobView, error) {
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1")
	if err != nil {
		return JobView{}, err
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return JobView{}, err
	}
	return jr.Job, nil
}
