package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// JobState is the lifecycle of a submitted job:
//
//	queued -> evaluating -> admitted -> released
//	                     -> rejected
//	                     -> failed
//
// Admitted jobs occupy a mix slot (and constrain every later admission
// decision) until the client releases them with DELETE /v1/jobs/{id}.
type JobState string

const (
	JobQueued     JobState = "queued"
	JobEvaluating JobState = "evaluating"
	JobAdmitted   JobState = "admitted"
	JobRejected   JobState = "rejected"
	JobFailed     JobState = "failed"
	JobReleased   JobState = "released"
)

// Event is one entry of a job's progress stream, delivered over SSE in
// emission order. Type is "state" for lifecycle transitions, "verdict"
// for the final admission decision, or a simulator trace-event name
// (epoch_roll, goal_check, ...) for epoch-level evidence forwarded from
// the what-if run.
type Event struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// maxJobEvents caps each job's event buffer; the simulator can emit far
// more epoch events than any admission client wants to replay.
const maxJobEvents = 256

// job is the server-side record of one submission. Mutable state is
// guarded by mu; the identity fields are written once at submission (or
// journal recovery) and read freely.
type job struct {
	id   string
	seq  uint64
	name string
	spec core.KernelSpec
	req  KernelRequest

	mu      sync.Mutex
	state   JobState
	verdict *Verdict
	errMsg  string
	events  []Event
	subs    map[chan Event]struct{}
	// done closes when the job reaches a terminal decision (admitted,
	// rejected or failed), so clients can block instead of polling.
	done chan struct{}
}

func newJob(seq uint64, name string, spec core.KernelSpec, req KernelRequest) *job {
	return &job{
		id:    fmt.Sprintf("job-%06d", seq),
		seq:   seq,
		name:  name,
		spec:  spec,
		req:   req,
		state: JobQueued,
		subs:  make(map[chan Event]struct{}),
		done:  make(chan struct{}),
	}
}

// emit appends an event to the replay buffer (dropping oldest trace
// evidence beyond the cap, never the lifecycle events at the front) and
// fans it out to live subscribers. Slow subscribers lose events rather
// than stall the decision loop; SSE clients resync via the buffer.
func (j *job) emit(typ string, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		raw = json.RawMessage(`{}`)
	}
	j.mu.Lock()
	ev := Event{Seq: len(j.events), Type: typ, Data: raw}
	if len(j.events) < maxJobEvents {
		j.events = append(j.events, ev)
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// setState transitions the job and emits the matching "state" event.
func (j *job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
	j.emit("state", map[string]string{"state": string(s)})
}

// finish records the terminal decision and wakes waiters.
func (j *job) finish(s JobState, v *Verdict, err error) {
	j.mu.Lock()
	j.state = s
	j.verdict = v
	if err != nil {
		j.errMsg = err.Error()
	}
	j.mu.Unlock()
	j.emit("state", map[string]string{"state": string(s)})
	if v != nil {
		j.emit("verdict", v)
	}
	close(j.done)
}

// subscribe registers a live event channel and returns the replay
// snapshot taken atomically with the registration, so the caller sees
// every event exactly once (buffer first, then live).
func (j *job) subscribe(ch chan Event) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := append([]Event(nil), j.events...)
	j.subs[ch] = struct{}{}
	return snap
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// view renders the wire form.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:       j.id,
		Seq:      j.seq,
		Name:     j.name,
		State:    string(j.state),
		Kernel:   j.req,
		GoalIPC:  j.spec.GoalIPC,
		Verdict:  j.verdict,
		Error:    j.errMsg,
		Released: j.state == JobReleased,
	}
}

// jobStore indexes every job the daemon has ever seen this process
// lifetime (plus admitted jobs recovered from the journal).
type jobStore struct {
	mu   sync.Mutex
	byID map[string]*job
	next uint64
}

func newJobStore() *jobStore {
	return &jobStore{byID: make(map[string]*job), next: 1}
}

// create allocates the next sequence number and registers the job.
func (st *jobStore) create(name string, spec core.KernelSpec, req KernelRequest) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := newJob(st.next, name, spec, req)
	st.next++
	st.byID[j.id] = j
	return j
}

// adopt registers a recovered job and advances the sequence counter past
// it, so restarts never reuse ids.
func (st *jobStore) adopt(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.byID[j.id] = j
	if j.seq >= st.next {
		st.next = j.seq + 1
	}
}

// reserve advances the sequence counter past seq without registering a
// job. Recovery calls it for decided-but-not-admitted log entries so a
// restarted daemon never reissues their ids.
func (st *jobStore) reserve(seq uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq >= st.next {
		st.next = seq + 1
	}
}

func (st *jobStore) get(id string) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// list returns every job in sequence order.
func (st *jobStore) list() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*job, 0, len(st.byID))
	for _, j := range st.byID {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}
