// The /v2 API scales the daemon from one simulated GPU to a fleet:
// jobs carry fractional-GPU requests (gpu_fraction / vgpu_cores /
// vgpu_memory plus the typed goal union) and are bin-packed across N
// nodes by internal/fleet's deterministic placement scheduler, with
// per-node tiered admission and a nos-style repartitioning fallback.
//
//	POST   /v2/jobs        submit a fractional job (202 + job view)
//	GET    /v2/jobs        list jobs
//	GET    /v2/jobs/{id}   job view (?wait=1 blocks until placed)
//	DELETE /v2/jobs/{id}   release a placed job
//	GET    /v2/nodes       node registry with capacity + tier stats
//	GET    /v2/nodes/{id}  one node
//	GET    /v2/placements  the deterministic placement sequence
//
// On a daemon started without -fleet every /v2 route answers 501.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/fleet"
	"repro/internal/schema"
)

// v2JobResponse wraps a fleet job view in the versioned envelope.
type v2JobResponse struct {
	Schema int           `json:"schema"`
	Job    fleet.JobView `json:"job"`
}

type v2JobListResponse struct {
	Schema int             `json:"schema"`
	Jobs   []fleet.JobView `json:"jobs"`
}

type v2NodeListResponse struct {
	Schema int              `json:"schema"`
	Nodes  []fleet.NodeView `json:"nodes"`
}

type v2NodeResponse struct {
	Schema int            `json:"schema"`
	Node   fleet.NodeView `json:"node"`
}

type v2PlacementsResponse struct {
	Schema     int               `json:"schema"`
	Placements []fleet.Placement `json:"placements"`
}

// fleetOr501 returns the configured fleet or writes the 501 taxonomy
// error.
func (s *Server) fleetOr501(w http.ResponseWriter) *fleet.Fleet {
	if s.fleet == nil {
		s.writeErr(w, ErrFleetDisabled)
		return nil
	}
	return s.fleet
}

func (s *Server) handleV2Submit(w http.ResponseWriter, r *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	var req fleet.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	j, err := f.Submit(req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v2JobResponse{Schema: schema.Version, Job: j.View()})
}

func (s *Server) handleV2List(w http.ResponseWriter, _ *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	writeJSON(w, http.StatusOK, v2JobListResponse{Schema: schema.Version, Jobs: f.Jobs()})
}

func (s *Server) handleV2Get(w http.ResponseWriter, r *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	j, err := f.JobHandle(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// ?wait=1 blocks until placement resolves (or the client leaves).
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, v2JobResponse{Schema: schema.Version, Job: j.View()})
}

func (s *Server) handleV2Release(w http.ResponseWriter, r *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	id := r.PathValue("id")
	if err := f.Release(id); err != nil {
		s.writeErr(w, err)
		return
	}
	v, err := f.Job(id)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v2JobResponse{Schema: schema.Version, Job: v})
}

func (s *Server) handleV2Nodes(w http.ResponseWriter, _ *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	writeJSON(w, http.StatusOK, v2NodeListResponse{Schema: schema.Version, Nodes: f.Nodes()})
}

func (s *Server) handleV2Node(w http.ResponseWriter, r *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	n, err := f.Node(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v2NodeResponse{Schema: schema.Version, Node: n})
}

func (s *Server) handleV2Placements(w http.ResponseWriter, _ *http.Request) {
	f := s.fleetOr501(w)
	if f == nil {
		return
	}
	writeJSON(w, http.StatusOK, v2PlacementsResponse{Schema: schema.Version, Placements: f.Placements()})
}
