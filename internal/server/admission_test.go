package server

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

// submitWait drives one admission decision through the internal API and
// returns the job after its verdict.
func submitWait(t *testing.T, s *Server, req JobRequest) *job {
	t.Helper()
	j, err := s.submit(req)
	if err != nil {
		t.Fatalf("submit %+v: %v", req, err)
	}
	select {
	case <-j.done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s never decided", j.id)
	}
	return j
}

func qos(w string, frac float64) JobRequest {
	return JobRequest{Kernel: KernelRequest{Workload: w, GoalFrac: frac}}
}

func be(w string) JobRequest { // best effort (non-QoS)
	return JobRequest{Kernel: KernelRequest{Workload: w}}
}

// TestAdmissionTable walks known mixes through the controller. The
// expected verdicts come from measured simulator behavior on the paper's
// 16-SM device over a 30k-cycle window under rollover — the same
// config/scheme/seed the golden rollover trace fixture is generated
// from, where sgemm@0.95+lbm reaches its goal.
func TestAdmissionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg16(t)
	steps := []struct {
		name    string
		req     JobRequest
		admit   bool
		release []int // indices of earlier steps to release first
	}{
		// A demanding QoS kernel alone, then one best-effort co-runner:
		// both fit (the golden-fixture pair).
		{"sgemm95-alone", qos("sgemm", 0.95), true, nil},
		{"lbm-fits", be("lbm"), true, nil},
		// A second best-effort kernel steals enough bandwidth that the
		// incumbent's 95% goal breaks: reject, mix unchanged.
		{"histo-breaks-incumbent", be("histo"), false, nil},
		// A QoS candidate whose own admission would break the incumbent
		// is rejected even though it reaches its own goal.
		{"qos-candidate-breaks-incumbent", qos("lbm", 0.50), false, []int{1}},
		// With the demanding incumbent gone, a modest mix admits fully.
		{"sgemm50", qos("sgemm", 0.50), true, []int{0}},
		{"lbm-again", be("lbm"), true, nil},
		{"histo-fits-now", be("histo"), true, nil},
	}
	s := testServer(t, Config{})
	jobs := make([]*job, len(steps))
	for i, st := range steps {
		for _, r := range st.release {
			if _, err := s.release(jobs[r].id); err != nil {
				t.Fatalf("%s: release step %d: %v", st.name, r, err)
			}
		}
		j := submitWait(t, s, st.req)
		jobs[i] = j
		v := j.view()
		if (v.State == string(JobAdmitted)) != st.admit {
			t.Fatalf("%s: state %s (verdict %+v), want admitted=%v", st.name, v.State, v.Verdict, st.admit)
		}
		if v.Verdict == nil || v.Verdict.IsAdmitted() != st.admit {
			t.Fatalf("%s: verdict = %+v", st.name, v.Verdict)
		}
		if !st.admit && v.Verdict.Reason == "" {
			t.Fatalf("%s: rejection carries no reason", st.name)
		}
	}
	// Final mix: sgemm@0.50 + lbm + histo.
	if mix := s.Mix(); len(mix) != 3 {
		t.Fatalf("final mix = %v", mix)
	}
	// Every decision is on the log, in order, with evidence.
	decs := s.Decisions()
	if len(decs) != len(steps)+2 { // 7 decisions + 2 releases
		t.Fatalf("decision log has %d entries", len(decs))
	}
	for i, d := range decs {
		if d.Index != i {
			t.Fatalf("decision %d has index %d", i, d.Index)
		}
	}
}

// TestAdmissionDeadlineGoal submits a deadline-form job and checks the
// controller translated it through core.IPCGoalForDeadline.
func TestAdmissionDeadlineGoal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := testServer(t, Config{})
	cfg := cfg16(t)
	// A deadline chosen to land on a modest absolute IPC goal.
	instrs, seconds := int64(3_000_000), 200e-6
	wantIPC, err := core.IPCGoalForDeadline(cfg, instrs, seconds)
	if err != nil {
		t.Fatal(err)
	}
	j := submitWait(t, s, JobRequest{Kernel: KernelRequest{
		Workload: "sgemm",
		Deadline: &DeadlineRequest{Instrs: instrs, Seconds: seconds},
	}})
	if j.spec.GoalIPC != wantIPC {
		t.Fatalf("GoalIPC = %v, want %v", j.spec.GoalIPC, wantIPC)
	}
	v := j.view()
	if v.Verdict == nil || v.Verdict.Candidate.GoalIPC != wantIPC || !v.Verdict.Candidate.IsQoS {
		t.Fatalf("verdict = %+v", v.Verdict)
	}
}

// TestJournalRecovery restarts the daemon on its job log: the admitted
// mix must be re-occupied (same ids, verdicts preserved), the sequence
// counter must advance past recovered jobs, and a daemon configured
// differently must refuse the log.
func TestJournalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	path := filepath.Join(t.TempDir(), "qosd.journal")

	s1 := testServer(t, Config{JournalPath: path})
	a := submitWait(t, s1, qos("sgemm", 0.95))
	b := submitWait(t, s1, be("lbm"))
	rejected := submitWait(t, s1, be("histo"))
	if a.view().State != string(JobAdmitted) || b.view().State != string(JobAdmitted) ||
		rejected.view().State != string(JobRejected) {
		t.Fatalf("fixture states: %s %s %s", a.view().State, b.view().State, rejected.view().State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart: the admitted contracts come back, the rejected one stays
	// decided-but-gone from the mix.
	s2 := testServer(t, Config{JournalPath: path})
	if mix := s2.Mix(); len(mix) != 2 || mix[0] != a.id || mix[1] != b.id {
		t.Fatalf("recovered mix = %v, want [%s %s]", mix, a.id, b.id)
	}
	ra, err := s2.store.get(a.id)
	if err != nil {
		t.Fatal(err)
	}
	if v := ra.view(); v.State != string(JobAdmitted) || v.Verdict == nil || !v.Verdict.IsAdmitted() {
		t.Fatalf("recovered job = %+v", v)
	}
	if len(s2.Decisions()) != 3 {
		t.Fatalf("recovered %d decisions", len(s2.Decisions()))
	}
	// New submissions continue against the recovered mix with fresh ids:
	// histo must still be rejected by the same incumbents.
	again := submitWait(t, s2, be("histo"))
	if again.id == rejected.id || again.seq <= rejected.seq {
		t.Fatalf("recovered daemon reused id/seq: %s/%d vs %s/%d", again.id, again.seq, rejected.id, rejected.seq)
	}
	if again.view().State != string(JobRejected) {
		t.Fatalf("histo against recovered mix = %s", again.view().State)
	}
	// A released slot is recorded too: restart no. 3 must not resurrect it.
	if _, err := s2.release(a.id); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	s3 := testServer(t, Config{JournalPath: path})
	if mix := s3.Mix(); len(mix) != 1 || mix[0] != b.id {
		t.Fatalf("third-start mix = %v, want [%s]", mix, b.id)
	}

	// A daemon with different admission parameters must refuse the log
	// rather than resurrect contracts it would evaluate differently.
	r, err := exp.NewRunner(1, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Runner: r, MaxMix: 5, JournalPath: path}); err == nil {
		t.Fatal("mismatched configuration accepted the job log")
	}
}
