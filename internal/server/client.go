package server

import "context"

// In-process client surface: the stream driver (internal/stream) and
// embedding tests submit jobs to the decision loop directly, without a
// listener, sharing exactly the code path the HTTP handlers use — a
// drive through Drive/ReleaseJob writes the same decision journal, in
// the same order, as the same submissions over /v1.

// Drive submits one job and blocks until the decision loop reaches a
// terminal verdict (admitted, rejected or failed), returning the final
// view. Submission errors (draining, queue full, validation) are
// returned as-is from the shared error taxonomy; a rejected admission
// is not an error — it is a decided job whose view says so.
func (s *Server) Drive(ctx context.Context, req JobRequest) (JobView, error) {
	j, err := s.submit(req)
	if err != nil {
		return JobView{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	return j.view(), nil
}

// ReleaseJob frees an admitted job's mix slot, exactly like
// DELETE /v1/jobs/{id}.
func (s *Server) ReleaseJob(id string) (JobView, error) {
	j, err := s.release(id)
	if err != nil {
		return JobView{}, err
	}
	return j.view(), nil
}
