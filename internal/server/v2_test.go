package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/schema"
)

// TestV2ErrorTaxonomy pins the fleet sentinels' status codes: the /v2
// API routes every error through the same single httpStatus mapping as
// v1.
func TestV2ErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fleet.ErrQueueFull, http.StatusTooManyRequests},
		{fmt.Errorf("wrapped: %w", fleet.ErrQueueFull), http.StatusTooManyRequests},
		{fleet.ErrNoPlacement, http.StatusConflict},
		{fleet.ErrUnknownJob, http.StatusNotFound},
		{fleet.ErrUnknownNode, http.StatusNotFound},
		{fleet.ErrDraining, http.StatusServiceUnavailable},
		{fleet.ErrBadRequest, http.StatusBadRequest},
		{schema.ErrBadGoal, http.StatusBadRequest},
		{ErrFleetDisabled, http.StatusNotImplemented},
		{fmt.Errorf("outer: %w", ErrFleetDisabled), http.StatusNotImplemented},
	}
	for _, c := range cases {
		if got := httpStatus(c.err); got != c.want {
			t.Errorf("httpStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestV2DisabledReturns501 checks a fleetless daemon answers 501 on
// every /v2 route.
func TestV2DisabledReturns501(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ep := range []struct{ method, path string }{
		{"POST", "/v2/jobs"},
		{"GET", "/v2/jobs"},
		{"GET", "/v2/jobs/vjob-000000"},
		{"DELETE", "/v2/jobs/vjob-000000"},
		{"GET", "/v2/nodes"},
		{"GET", "/v2/nodes/node-0"},
		{"GET", "/v2/placements"},
	} {
		req, err := http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s %s = %d, want 501", ep.method, ep.path, resp.StatusCode)
		}
	}
}

// v2TestServer attaches a two-node fleet to a test daemon.
func v2TestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	fl, err := fleet.New(fleet.Config{
		Nodes: []fleet.NodeSpec{
			{Name: "a", GPU: config.Base()},
			{Name: "b", GPU: config.Base()},
		},
		Scheme:        core.SchemeRollover,
		Window:        20_000,
		MaxMixPerNode: 2,
		FastPath:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Fleet: fl})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func v2Post(t *testing.T, ts *httptest.Server, body string) (int, v2JobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr v2JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	return resp.StatusCode, jr
}

func v2Wait(t *testing.T, ts *httptest.Server, id string) fleet.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v2/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr v2JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Schema != schema.Version {
		t.Fatalf("v2 response schema = %d, want %d", jr.Schema, schema.Version)
	}
	return jr.Job
}

// TestV2EndpointsSmoke drives the whole /v2 surface over real HTTP:
// fractional submissions place across nodes, capacity exhaustion
// rejects, release frees, and request validation maps through the
// taxonomy.
func TestV2EndpointsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	_, ts := v2TestServer(t)

	// Validation errors are 400s with the envelope.
	for _, body := range []string{
		`{not json`,
		`{"workload":"sgemm","gpu_fraction":0.5,"bogus":1}`,
		`{"gpu_fraction":0.5}`,
		`{"workload":"sgemm"}`,
		`{"workload":"sgemm","gpu_fraction":0.5,"vgpu_cores":50}`,
		`{"workload":"sgemm","gpu_fraction":1.5}`,
		`{"workload":"sgemm","gpu_fraction":0.5,"goal":2.0}`,
		`{"workload":"sgemm","gpu_fraction":0.5,"goal":{"ipc":1,"deadline":{"instrs":1,"seconds":1}}}`,
		`{"workload":"sgemm","gpu_fraction":0.5,"scheme":"none"}`,
	} {
		if code, _ := v2Post(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, code)
		}
	}

	// A fractional QoS job places on some node.
	code, jr := v2Post(t, ts, `{"name":"q1","workload":"sgemm","gpu_fraction":0.6,"goal":0.5}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	j1 := v2Wait(t, ts, jr.Job.ID)
	if j1.State != fleet.StatePlaced || j1.Node == "" {
		t.Fatalf("job 1 = %+v, want placed", j1)
	}
	if j1.Verdict == nil || j1.Verdict.Decision != schema.DecisionAdmit {
		t.Fatalf("job 1 verdict = %+v, want admit", j1.Verdict)
	}

	// A whole-device job lands on the other node.
	_, jr2 := v2Post(t, ts, `{"name":"big","workload":"lbm","gpu_fraction":1.0}`)
	j2 := v2Wait(t, ts, jr2.Job.ID)
	if j2.State != fleet.StatePlaced || j2.Node == j1.Node {
		t.Fatalf("job 2 = %+v, want placed on the other node (job 1 on %s)", j2, j1.Node)
	}

	// Now the fleet is too full for another large job: rejected, and
	// the reject is journaled in the placement sequence.
	_, jr3 := v2Post(t, ts, `{"name":"over","workload":"spmv","gpu_fraction":0.9}`)
	j3 := v2Wait(t, ts, jr3.Job.ID)
	if j3.State != fleet.StateRejected {
		t.Fatalf("job 3 = %+v, want rejected", j3)
	}

	// Releasing an unplaced job is a request error; unknown ids are 404.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v2/jobs/"+jr3.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("DELETE rejected job = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v2/jobs/vjob-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", resp.StatusCode)
	}

	// Nodes report capacity and tier counters.
	resp, err = http.Get(ts.URL + "/v2/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nl v2NodeListResponse
	json.NewDecoder(resp.Body).Decode(&nl)
	resp.Body.Close()
	if nl.Schema != schema.Version || len(nl.Nodes) != 2 {
		t.Fatalf("nodes = %+v", nl)
	}
	var usedSM float64
	for _, n := range nl.Nodes {
		usedSM += n.UsedSM
	}
	if usedSM < 1.6-1e-9 { // 0.6 + 1.0
		t.Fatalf("total used SM = %v, want 1.6", usedSM)
	}
	resp, err = http.Get(ts.URL + "/v2/nodes/node-99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown node = %d, want 404", resp.StatusCode)
	}

	// The placement sequence records both places and the reject.
	resp, err = http.Get(ts.URL + "/v2/placements")
	if err != nil {
		t.Fatal(err)
	}
	var pl v2PlacementsResponse
	json.NewDecoder(resp.Body).Decode(&pl)
	resp.Body.Close()
	kinds := map[string]int{}
	for _, p := range pl.Placements {
		kinds[p.Kind]++
	}
	if kinds[fleet.KindPlace] != 2 || kinds[fleet.KindReject] != 1 {
		t.Fatalf("placement kinds = %v, want 2 places and 1 reject", kinds)
	}

	// Release frees the big job's device; the over job's twin now fits.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v2/jobs/"+jr2.Job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rel v2JobResponse
	json.NewDecoder(resp.Body).Decode(&rel)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rel.Job.State != fleet.StateReleased {
		t.Fatalf("release = %d %+v, want 200 released", resp.StatusCode, rel.Job)
	}
	_, jr4 := v2Post(t, ts, `{"name":"retry","workload":"spmv","gpu_fraction":0.9}`)
	if j4 := v2Wait(t, ts, jr4.Job.ID); j4.State != fleet.StatePlaced {
		t.Fatalf("job 4 after release = %+v, want placed", j4)
	}
}

// TestV2ShutdownDrainsFleet verifies Server.Shutdown drains the
// attached fleet too: v2 submissions after drain are 503s.
func TestV2ShutdownDrainsFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s, ts := v2TestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := v2Post(t, ts, `{"workload":"sgemm","gpu_fraction":0.5}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %d, want 503", code)
	}
}
