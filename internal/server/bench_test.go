package server

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

// benchServer is testServer for benchmarks: a daemon on the default
// 16-SM device over a 30k-cycle window.
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	r, err := exp.NewRunner(2, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		b.Fatal(err)
	}
	cfg.Runner = r
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// decideOnce drives one full admission round trip — submit, wait for
// the verdict, release if admitted — and returns the submit-to-verdict
// latency.
func decideOnce(b *testing.B, s *Server, req JobRequest) time.Duration {
	b.Helper()
	start := time.Now()
	j, err := s.submit(req)
	if err != nil {
		b.Fatal(err)
	}
	<-j.done
	d := time.Since(start)
	if j.view().State == string(JobAdmitted) {
		if _, err := s.release(j.id); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

func p50(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// BenchmarkAdmission measures the tiered fast path's submit-to-verdict
// latency on a cache-warm mixed stream and reports it against the
// simulate-every-request baseline:
//
//	p50-ns    — median fast-path decision latency
//	speedup-x — baseline sim-tier p50 over fast-path p50
//
// benchgate enforces a ceiling on p50-ns and the issue's ≥50× floor on
// speedup-x (BENCH_core.json).
func BenchmarkAdmission(b *testing.B) {
	reqs := []JobRequest{
		qos("sgemm", 0.5),
		qos("sgemm", 0.95),
		qos("lbm", 0.3),
		be("histo"),
	}

	// Baseline: the same stream with the fast path off simulates every
	// decision. A handful of rounds is enough for a stable median.
	base := benchServer(b, Config{MaxMix: 1})
	var baseLat []time.Duration
	for round := 0; round < 3; round++ {
		for _, req := range reqs {
			baseLat = append(baseLat, decideOnce(b, base, req))
		}
	}
	basePC := p50(baseLat)

	// Fast path: one warm-up pass seeds the verdict cache, then every
	// timed decision is an exact-cache hit.
	s := benchServer(b, Config{MaxMix: 1, FastPath: true})
	for _, req := range reqs {
		decideOnce(b, s, req)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat = append(lat, decideOnce(b, s, reqs[i%len(reqs)]))
	}
	b.StopTimer()
	fast := p50(lat)
	if fast <= 0 {
		fast = 1
	}
	b.ReportMetric(float64(fast.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(basePC)/float64(fast), "speedup-x")
}
