// Package journal implements the sweep checkpoint journal: a JSON-lines
// file that records every completed case of a study so an interrupted
// sweep (crash, Ctrl-C, power loss) resumes where it stopped instead of
// rerunning hundreds of simulations.
//
// Integrity model, outermost first:
//
//   - Every write replaces the whole file atomically (tmp + fsync +
//     rename), so a reader or a crash-recovery pass never observes a torn
//     line from our own writer.
//   - The first line is a header carrying the schema Version and a
//     configuration hash; Open refuses a journal whose hash differs from
//     the resuming study's, so a stale journal cannot silently splice
//     results from a different configuration into a new study.
//   - Every line carries a CRC of its payload, catching external
//     corruption (truncation, editor mangling, bit rot). Recovery stops
//     at the first damaged line and keeps everything before it.
//
// Case payloads are opaque JSON produced by the sweep engine. Go's JSON
// encoding of float64 is round-trip exact, so a case restored from the
// journal is bit-identical to the run that produced it.
package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/schema"
)

// Version is the on-disk schema version, shared with the trace JSONL
// exporter and the qosd v1 API via internal/schema. Bump schema.Version
// when the line layout changes; Open rejects journals written by other
// versions.
const Version = schema.Version

// Sentinel errors callers can test with errors.Is.
var (
	// ErrConfigMismatch marks a journal written by a study with a
	// different configuration hash.
	ErrConfigMismatch = errors.New("journal: config hash mismatch (journal belongs to a different study)")
	// ErrVersion marks a journal written by an unsupported schema
	// version. It wraps schema.ErrVersion, so both
	// errors.Is(err, journal.ErrVersion) and
	// errors.Is(err, schema.ErrVersion) hold.
	ErrVersion = fmt.Errorf("journal: unsupported schema version: %w", schema.ErrVersion)
	// ErrNoHeader marks a journal whose first line is missing or corrupt.
	ErrNoHeader = errors.New("journal: missing or corrupt header")
	// ErrClosed is returned by Append after Close.
	ErrClosed = errors.New("journal: closed")
)

// line is the on-disk representation of one record.
type line struct {
	V      int             `json:"v"`
	Kind   string          `json:"kind"` // "header" | "case"
	Config string          `json:"config,omitempty"`
	Stage  string          `json:"stage,omitempty"`
	Index  int             `json:"index,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
	CRC    uint32          `json:"crc"`
}

// payload returns the bytes the line's CRC covers.
func (l line) payload() []byte {
	if l.Kind == "header" {
		return []byte(l.Config)
	}
	return l.Data
}

// Record is one decoded journal line.
type Record struct {
	Header bool   // true for the header line
	Config string // header only: the study's configuration hash
	Stage  string // case only: sweep stage key
	Index  int    // case only: deterministic case index
	Data   json.RawMessage
}

// Decode parses and validates one journal line: JSON shape, schema
// version, field sanity and payload CRC. It is the single entry point for
// untrusted bytes (FuzzJournalDecode fuzzes it).
func Decode(b []byte) (Record, error) {
	var l line
	if err := json.Unmarshal(b, &l); err != nil {
		return Record{}, fmt.Errorf("journal: bad line: %w", err)
	}
	if l.V != Version {
		return Record{}, fmt.Errorf("%w: %d (want %d)", ErrVersion, l.V, Version)
	}
	switch l.Kind {
	case "header":
		if l.Config == "" {
			return Record{}, errors.New("journal: header without config hash")
		}
	case "case":
		if l.Stage == "" || l.Index < 0 || len(l.Data) == 0 {
			return Record{}, errors.New("journal: malformed case line")
		}
	default:
		return Record{}, fmt.Errorf("journal: unknown line kind %q", l.Kind)
	}
	if crc := crc32.ChecksumIEEE(l.payload()); crc != l.CRC {
		return Record{}, fmt.Errorf("journal: CRC mismatch (stored %08x, computed %08x)", l.CRC, crc)
	}
	return Record{
		Header: l.Kind == "header",
		Config: l.Config,
		Stage:  l.Stage,
		Index:  l.Index,
		Data:   l.Data,
	}, nil
}

// encode stamps version and CRC and serializes the line.
func encode(l line) ([]byte, error) {
	l.V = Version
	l.CRC = crc32.ChecksumIEEE(l.payload())
	return json.Marshal(l)
}

// Hash fingerprints a configuration value: SHA-256 over its JSON
// encoding, hex-encoded. Callers hash everything that determines sweep
// results (device config, window, seed, grids) so Open can reject stale
// journals. Struct fields encode in declaration order and maps sort by
// key, so equal values always hash equal.
func Hash(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("journal: hash config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// entryKey addresses one completed case.
type entryKey struct {
	stage string
	index int
}

// Journal is an open checkpoint journal. All methods are safe for
// concurrent use; the sweep engine appends from every worker goroutine.
type Journal struct {
	mu      sync.Mutex
	path    string
	lines   [][]byte // encoded records, header first
	entries map[entryKey]json.RawMessage
	closed  bool
}

// Create starts a fresh journal at path, truncating any existing file,
// and durably writes the header.
func Create(path, configHash string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	hl, err := encode(line{Kind: "header", Config: configHash})
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, lines: [][]byte{hl}, entries: make(map[entryKey]json.RawMessage)}
	if err := j.flushLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Open loads an existing journal for resume, verifying the schema version
// and that its header hash matches configHash. A missing file starts a
// fresh journal (resuming a study that never checkpointed is legal).
// Recovery stops at the first damaged line — everything before it is
// intact by construction — and the damaged tail is dropped on the next
// Append's rewrite.
func Open(path, configHash string) (*Journal, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path, configHash)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	j := &Journal{path: path, entries: make(map[entryKey]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	first := true
	for sc.Scan() {
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		rec, derr := Decode(b)
		if derr != nil {
			if first {
				if errors.Is(derr, ErrVersion) {
					return nil, derr
				}
				return nil, fmt.Errorf("%w: %v", ErrNoHeader, derr)
			}
			break
		}
		if first {
			if !rec.Header {
				return nil, ErrNoHeader
			}
			if rec.Config != configHash {
				return nil, fmt.Errorf("%w: journal %.12s… vs study %.12s…", ErrConfigMismatch, rec.Config, configHash)
			}
			first = false
		} else if !rec.Header {
			j.entries[entryKey{rec.Stage, rec.Index}] = rec.Data
		}
		j.lines = append(j.lines, append([]byte(nil), b...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, ErrNoHeader
	}
	return j, nil
}

// Append durably records one completed case. v is marshaled to JSON; the
// whole journal is rewritten to a temporary file and atomically renamed
// over path so a crash mid-write can never leave a torn line.
func (j *Journal) Append(stage string, index int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshal case %s/%d: %w", stage, index, err)
	}
	l, err := encode(line{Kind: "case", Stage: stage, Index: index, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.lines = append(j.lines, l)
	j.entries[entryKey{stage, index}] = data
	return j.flushLocked()
}

// flushLocked writes the journal via tmp+fsync+rename. Callers hold
// j.mu (or own the journal exclusively, as Create does).
func (j *Journal) flushLocked() error {
	var buf bytes.Buffer
	for _, l := range j.lines {
		buf.Write(l)
		buf.WriteByte('\n')
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, j.path)
}

// Lookup returns the journaled payload for one case.
func (j *Journal) Lookup(stage string, index int) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.entries[entryKey{stage, index}]
	return data, ok
}

// Completed returns every journaled case of a stage, keyed by case index.
func (j *Journal) Completed(stage string) map[int]json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[int]json.RawMessage)
	for k, v := range j.entries {
		if k.stage == stage {
			out[k.index] = v
		}
	}
	return out
}

// Len reports the number of journaled cases across all stages.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close marks the journal read-only. Every Append was already durable, so
// Close performs no IO; it exists to surface accidental use-after-close.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	return nil
}
