package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type fakeCase struct {
	Name string
	IPC  float64
	N    int64
}

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.journal")
}

func TestCreateAppendReopen(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]fakeCase{
		0: {Name: "sgemm+lbm", IPC: 123.456789012345, N: 42},
		3: {Name: "mri-q+sad", IPC: 0.1 + 0.2, N: -7}, // exercises float round-trip
	}
	for i, c := range want {
		if err := j.Append("pairs/rollover", i, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append("trios/spart", 0, fakeCase{Name: "other-stage"}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("pairs/rollover", 9, fakeCase{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	r, err := Open(path, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	got := r.Completed("pairs/rollover")
	if len(got) != len(want) {
		t.Fatalf("recovered %d cases, want %d", len(got), len(want))
	}
	for i, w := range want {
		var c fakeCase
		if err := json.Unmarshal(got[i], &c); err != nil {
			t.Fatal(err)
		}
		if c != w {
			t.Fatalf("case %d = %+v, want %+v (must be bit-identical)", i, c, w)
		}
	}
	if _, ok := r.Lookup("trios/spart", 0); !ok {
		t.Fatal("lost the other stage's entry")
	}
	if _, ok := r.Lookup("pairs/rollover", 99); ok {
		t.Fatal("found a case that was never journaled")
	}
}

func TestOpenMissingFileCreates(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("Len = %d", j.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("header not written: %v", err)
	}
}

func TestOpenConfigMismatch(t *testing.T) {
	path := tmpJournal(t)
	if _, err := Create(path, "cfg-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "cfg-b"); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("err = %v, want ErrConfigMismatch", err)
	}
}

func TestOpenRejectsForeignVersion(t *testing.T) {
	path := tmpJournal(t)
	hl, err := encode(line{Kind: "header", Config: "cfg"})
	if err != nil {
		t.Fatal(err)
	}
	future := bytes.Replace(hl, []byte(fmt.Sprintf(`"v":%d`, Version)), []byte(`"v":99`), 1)
	if err := os.WriteFile(path, append(future, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "cfg"); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestOpenRejectsHeaderless(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "cfg"); !errors.Is(err, ErrNoHeader) {
		t.Fatalf("garbage file: err = %v, want ErrNoHeader", err)
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "cfg"); !errors.Is(err, ErrNoHeader) {
		t.Fatalf("empty file: err = %v, want ErrNoHeader", err)
	}
}

// TestOpenDropsTornTail simulates a crash that tore the last line: the
// intact prefix must survive, the torn line must be dropped.
func TestOpenDropsTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append("s", i, fakeCase{N: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := raw[:len(raw)-15] // cut into the final line
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	got := r.Completed("s")
	if len(got) != 2 {
		t.Fatalf("recovered %d cases, want 2 (torn tail dropped)", len(got))
	}
	for _, i := range []int{0, 1} {
		if _, ok := got[i]; !ok {
			t.Fatalf("case %d lost", i)
		}
	}
}

// TestOpenStopsAtCorruptLine flips payload bytes mid-file: the CRC must
// catch it and recovery must keep only the prefix.
func TestOpenStopsAtCorruptLine(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append("s", i, fakeCase{Name: fmt.Sprintf("case-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	lines[2] = strings.Replace(lines[2], "case-1", "case-X", 1) // corrupt line for index 1
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	got := r.Completed("s")
	if len(got) != 1 {
		t.Fatalf("recovered %d cases, want 1 (corruption stops recovery)", len(got))
	}
	if _, ok := got[0]; !ok {
		t.Fatal("intact prefix case 0 lost")
	}
}

// TestAppendAfterRecoveryCompactsDamage checks a resumed journal rewrites
// itself cleanly: after recovering past damage, the next Append leaves a
// fully valid file.
func TestAppendAfterRecoveryCompactsDamage(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("s", 0, fakeCase{N: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"kind":"case","torn...`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append("s", 1, fakeCase{N: 2}); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("after compaction Len = %d, want 2", r2.Len())
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append("s", i, fakeCase{N: int64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	r, err := Open(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != n {
		t.Fatalf("recovered %d cases, want %d", r.Len(), n)
	}
}

func TestHashStable(t *testing.T) {
	type cfg struct {
		A int
		B string
		C []float64
	}
	a, err := Hash(cfg{1, "x", []float64{0.5, 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Hash(cfg{1, "x", []float64{0.5, 0.95}})
	if a != b {
		t.Fatal("equal values hashed differently")
	}
	c, _ := Hash(cfg{2, "x", []float64{0.5, 0.95}})
	if a == c {
		t.Fatal("different values collided (suspicious)")
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a))
	}
	if _, err := Hash(func() {}); err == nil {
		t.Fatal("unmarshalable value must error")
	}
}

// FuzzJournalDecode hardens the line parser: Decode must never panic on
// arbitrary bytes, and every accepted line must survive a re-encode ->
// re-decode round trip with its fields intact.
func FuzzJournalDecode(f *testing.F) {
	if hl, err := encode(line{Kind: "header", Config: "abcdef"}); err == nil {
		f.Add(hl)
	}
	if cl, err := encode(line{Kind: "case", Stage: "pairs/rollover", Index: 3, Data: json.RawMessage(`{"x":1.5}`)}); err == nil {
		f.Add(cl)
	}
	f.Add([]byte(`{"v":1,"kind":"case","stage":"s","index":0,"data":{},"crc":0}`))
	f.Add([]byte(`{"v":99,"kind":"header","config":"x","crc":0}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := Decode(b)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		kind := "case"
		if rec.Header {
			kind = "header"
		}
		enc, err := encode(line{Kind: kind, Config: rec.Config, Stage: rec.Stage, Index: rec.Index, Data: rec.Data})
		if err != nil {
			t.Fatalf("accepted line failed to re-encode: %v", err)
		}
		rec2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded line failed to decode: %v", err)
		}
		if rec2.Header != rec.Header || rec2.Config != rec.Config ||
			rec2.Stage != rec.Stage || rec2.Index != rec.Index {
			t.Fatalf("round trip changed fields: %+v -> %+v", rec, rec2)
		}
		if len(rec.Data) > 0 {
			var a, b bytes.Buffer
			if json.Compact(&a, rec.Data) == nil && json.Compact(&b, rec2.Data) == nil &&
				a.String() != b.String() {
				t.Fatalf("round trip changed payload: %s -> %s", a.String(), b.String())
			}
		}
	})
}
