// Package core is the library's public facade. It assembles a simulated
// GPU, translates application QoS goals into architectural IPC goals
// (Section 3.2 of the paper), installs the selected management scheme and
// runs the co-execution, returning per-kernel results.
//
// Typical use:
//
//	s, _ := core.NewSession()
//	res, _ := s.Run(ctx, []core.KernelSpec{
//	    {Workload: "sgemm", GoalFrac: 0.8}, // QoS kernel: 80% of isolated
//	    {Workload: "lbm"},                  // non-QoS kernel
//	}, core.SchemeRollover)
//	fmt.Println(res.Kernels[0].Reached)
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/qos"
	"repro/internal/spart"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Sentinel errors callers can test with errors.Is instead of matching
// error text.
var (
	// ErrUnknownScheme is returned by ParseScheme for unrecognized names.
	ErrUnknownScheme = errors.New("core: unknown scheme")
	// ErrUnknownWorkload is returned when a KernelSpec names a benchmark
	// that is not in the workloads suite.
	ErrUnknownWorkload = errors.New("core: unknown workload")
	// ErrBadGoal is returned for malformed QoS goals (negative values or
	// fractions above 1).
	ErrBadGoal = errors.New("core: bad QoS goal")
)

// Scheme selects the sharing/QoS management policy for a run.
type Scheme int

const (
	// SchemeNone runs unmanaged fine-grained sharing (no QoS control).
	SchemeNone Scheme = iota
	// SchemeNaive is quota allocation without history adjustment.
	SchemeNaive
	// SchemeNaiveHistory adds the α history adjustment (Figure 5).
	SchemeNaiveHistory
	// SchemeElastic is the elastic-epoch scheme.
	SchemeElastic
	// SchemeRollover is the paper's best scheme.
	SchemeRollover
	// SchemeRolloverTime is the CPU-style prioritized variant.
	SchemeRolloverTime
	// SchemeSpart is the spatial-partitioning baseline with hill
	// climbing.
	SchemeSpart
	// SchemeFair is an extension: SMK-style fairness on the same quota
	// machinery (equal normalized progress for every sharer; goals are
	// ignored). The paper's firmware can switch between fairness and
	// QoS policies (Section 3.3).
	SchemeFair
)

// String returns the display name used in figures.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "Unmanaged"
	case SchemeNaive:
		return "Naive"
	case SchemeNaiveHistory:
		return "Naive+History"
	case SchemeElastic:
		return "Elastic"
	case SchemeRollover:
		return "Rollover"
	case SchemeRolloverTime:
		return "Rollover-Time"
	case SchemeSpart:
		return "Spart"
	case SchemeFair:
		return "Fair"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Name returns the canonical lowercase identifier ParseScheme accepts,
// the form used by command-line flags and CSV output.
func (s Scheme) Name() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeNaive:
		return "naive"
	case SchemeNaiveHistory:
		return "naive-history"
	case SchemeElastic:
		return "elastic"
	case SchemeRollover:
		return "rollover"
	case SchemeRolloverTime:
		return "rollover-time"
	case SchemeSpart:
		return "spart"
	case SchemeFair:
		return "fair"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Schemes returns every scheme in declaration order.
func Schemes() []Scheme {
	return []Scheme{SchemeNone, SchemeNaive, SchemeNaiveHistory, SchemeElastic,
		SchemeRollover, SchemeRolloverTime, SchemeSpart, SchemeFair}
}

// ParseScheme resolves a scheme name (case-insensitive; both the
// canonical Name form and the display String form are accepted). Unknown
// names return an error wrapping ErrUnknownScheme.
func ParseScheme(name string) (Scheme, error) {
	needle := strings.ToLower(strings.TrimSpace(name))
	for _, s := range Schemes() {
		if needle == s.Name() || needle == strings.ToLower(s.String()) {
			return s, nil
		}
	}
	names := make([]string, 0, len(Schemes()))
	for _, s := range Schemes() {
		names = append(names, s.Name())
	}
	return 0, fmt.Errorf("%w %q (known: %s)", ErrUnknownScheme, name, strings.Join(names, ", "))
}

// qosScheme maps facade schemes to qos package schemes.
func (s Scheme) qosScheme() (qos.Scheme, bool) {
	switch s {
	case SchemeNaive:
		return qos.Naive, true
	case SchemeNaiveHistory:
		return qos.NaiveHistory, true
	case SchemeElastic:
		return qos.Elastic, true
	case SchemeRollover:
		return qos.Rollover, true
	case SchemeRolloverTime:
		return qos.RolloverTime, true
	}
	return 0, false
}

// KernelSpec names one kernel of a co-run and its QoS goal.
type KernelSpec struct {
	// Workload is a benchmark name from internal/workloads. Leave empty
	// and set Profile for a custom kernel.
	Workload string
	// Profile is a custom kernel profile (ignored when Workload is set).
	Profile *kern.Profile

	// GoalFrac expresses the QoS goal as a fraction of the kernel's
	// isolated IPC (the paper sweeps 0.50..0.95). 0 means non-QoS.
	GoalFrac float64
	// GoalIPC is an absolute thread-IPC goal; it overrides GoalFrac
	// when positive.
	GoalIPC float64
}

// name returns the display name of the spec.
func (ks KernelSpec) name() string {
	if ks.Workload != "" {
		return ks.Workload
	}
	if ks.Profile != nil {
		return ks.Profile.Name
	}
	return "?"
}

// Config is a Session's resolved configuration, assembled by the
// functional options (WithGPU, WithWindow, WithQoSOptions,
// WithPowerCosts). Sessions are constructed with NewSession(opts...);
// Config exists as a value type so Session.Config() can expose the
// resolved settings for hashing (checkpoint journals, the qosd job log)
// and inspection.
type Config struct {
	// GPU is the device configuration; the zero value means
	// config.Base() (the paper's Table 1).
	GPU config.GPU
	// WindowCycles is the measurement window per run. 0 means 200000.
	// The paper simulates 2M cycles; shorter windows trade fidelity for
	// speed and are recorded in EXPERIMENTS.md.
	WindowCycles int64
	// QoSOptions tunes the QoS manager (ablations).
	QoSOptions qos.Options
	// PowerCosts overrides the energy table; nil means defaults.
	PowerCosts *power.Costs
	// Shards selects the simulator stepping mode: <=1 steps the SMs
	// serially; larger values step them in that many shards on a worker
	// pool with a deterministic barrier (gpu.SetShards). Results are
	// bit-identical either way, so the fields are excluded from journal
	// hashes — a checkpointed sweep may resume under different shard
	// settings.
	Shards int `json:"-"`
	// ShardWorkers overrides the sharded-mode worker count (0 = derive
	// from GOMAXPROCS). Mainly a test hook.
	ShardWorkers int `json:"-"`
	// DisableEventWheel pins the stepper to per-cycle ticking instead of
	// event-wheel skipping (gpu.SetEventWheel). Wheel runs are
	// bit-identical to per-cycle runs, so — like the shard fields — the
	// switch is excluded from journal hashes; it exists as a debugging
	// escape hatch and for the equivalence tests.
	DisableEventWheel bool `json:"-"`
}

// Session runs simulations under one fixed configuration and caches
// isolated-IPC measurements. A Session is safe for concurrent use; the
// parallel sweep runner nevertheless gives each worker its own Session
// (sharing only the synchronized isolated-IPC cache) so no simulation
// state is ever shared between goroutines.
type Session struct {
	cfg      Config
	seed     uint64
	isolated *IsolatedCache
	faults   FaultInjector
}

// NewSession applies the options, validates the resulting configuration
// and returns a Session. With no options it models the paper's Table 1
// GPU over a 200000-cycle window.
func NewSession(opts ...Option) (*Session, error) {
	st := defaultSettings()
	for _, o := range opts {
		o(&st)
	}
	cfg := st.cfg
	if cfg.GPU.NumSMs == 0 {
		cfg.GPU = config.Base()
	}
	if err := cfg.GPU.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowCycles == 0 {
		cfg.WindowCycles = 200_000
	}
	if cfg.WindowCycles < 2*cfg.GPU.EpochLength {
		return nil, errors.New("core: window must cover at least two epochs")
	}
	cache := st.cache
	if cache == nil {
		cache = NewIsolatedCache()
	}
	return &Session{cfg: cfg, seed: st.seed, isolated: cache, faults: st.faults}, nil
}

// GPUConfig returns the session's device configuration.
func (s *Session) GPUConfig() config.GPU { return s.cfg.GPU }

// Config returns a copy of the session's resolved configuration. The
// checkpoint journal hashes it (together with the seed) to key sweep
// stages, so a resumed study can never splice in results produced under
// different settings.
func (s *Session) Config() Config { return s.cfg }

// Window returns the measurement window in cycles.
func (s *Session) Window() int64 { return s.cfg.WindowCycles }

// Seed returns the profile-expansion seed.
func (s *Session) Seed() uint64 { return s.seed }

// buildKernel materializes a spec into a kernel with runtime slot id.
func (s *Session) buildKernel(spec KernelSpec, slot int) (*kern.Kernel, error) {
	if spec.Workload != "" {
		p, err := workloads.ByName(spec.Workload)
		if err != nil {
			return nil, fmt.Errorf("%w %q", ErrUnknownWorkload, spec.Workload)
		}
		return kern.Build(slot, p, s.seed)
	}
	if spec.Profile != nil {
		return kern.Build(slot, *spec.Profile, s.seed)
	}
	return nil, errors.New("core: spec needs Workload or Profile")
}

// IsolatedIPC measures (and caches) the kernel's thread-IPC when running
// alone on the whole GPU for the session window. Concurrent requests for
// the same kernel measure it once (singleflight); the cache may be shared
// across sessions via WithIsolatedCache. The context cancels the
// underlying simulation at epoch granularity.
func (s *Session) IsolatedIPC(ctx context.Context, spec KernelSpec) (float64, error) {
	return s.isolated.ipc(spec.name(), func() (float64, error) {
		k, err := s.buildKernel(spec, 0)
		if err != nil {
			return 0, err
		}
		g, err := gpu.New(s.cfg.GPU, []*kern.Kernel{k})
		if err != nil {
			return 0, err
		}
		s.applyStepping(g)
		if err := g.RunCtx(ctx, s.cfg.WindowCycles); err != nil {
			return 0, err
		}
		return g.IPC(0), nil
	})
}

// KernelResult reports one kernel's outcome in a co-run.
type KernelResult struct {
	Name        string
	IsQoS       bool
	GoalIPC     float64 // absolute goal (0 for non-QoS)
	IPC         float64 // achieved thread-IPC
	IsolatedIPC float64
	// Reached reports whether a QoS kernel met its goal.
	Reached bool
	// NormThroughput is IPC / IsolatedIPC (the paper's normalized
	// throughput for non-QoS kernels, Figure 8).
	NormThroughput float64
	// GoalRatio is IPC / GoalIPC for QoS kernels (Figure 9 overshoot).
	GoalRatio float64
	Stats     metrics.KernelStats
}

// Result reports a complete co-run.
type Result struct {
	Scheme  Scheme
	Cycles  int64
	Kernels []KernelResult
	// AllReached is true when every QoS kernel met its goal.
	AllReached bool
	Power      power.Report
	// TotalIPC is the combined thread-IPC of all kernels.
	TotalIPC float64
}

// Run co-executes the specs under the given scheme for the session
// window and reports per-kernel outcomes. Isolated IPCs are measured (or
// taken from cache) first to resolve fractional goals. Cancellation of
// ctx is honored at epoch boundaries of the cycle loop and returns the
// context's error.
func (s *Session) Run(ctx context.Context, specs []KernelSpec, scheme Scheme) (*Result, error) {
	return s.RunTraced(ctx, specs, scheme, nil)
}

// RunTraced is Run with an observability tracer attached to the simulated
// device for the whole co-run: every layer (TB scheduler, SMs, QoS
// manager, spatial controller) emits its control decisions into tr, which
// the caller exports afterwards (trace.Export / trace.WriteFile). A nil
// tracer makes RunTraced identical to Run.
func (s *Session) RunTraced(ctx context.Context, specs []KernelSpec, scheme Scheme, tr *trace.Tracer) (*Result, error) {
	if len(specs) == 0 {
		return nil, errors.New("core: no kernels")
	}
	if s.faults != nil {
		// Testing hook: a configured injector may error, stall or panic
		// here to emulate a failing case (see FaultInjector).
		if err := s.faults.Inject(ctx); err != nil {
			return nil, err
		}
	}
	kernels := make([]*kern.Kernel, len(specs))
	goals := make([]float64, len(specs))
	isolated := make([]float64, len(specs))
	for i, spec := range specs {
		k, err := s.buildKernel(spec, i)
		if err != nil {
			return nil, err
		}
		kernels[i] = k
		if spec.GoalFrac < 0 || spec.GoalIPC < 0 {
			return nil, fmt.Errorf("%w: negative goal for %s", ErrBadGoal, spec.name())
		}
		iso, err := s.IsolatedIPC(ctx, spec)
		if err != nil {
			return nil, err
		}
		isolated[i] = iso
		switch {
		case spec.GoalIPC > 0:
			goals[i] = spec.GoalIPC
		case spec.GoalFrac > 0:
			if spec.GoalFrac > 1 {
				return nil, fmt.Errorf("%w: GoalFrac %.2f > 1 for %s", ErrBadGoal, spec.GoalFrac, spec.name())
			}
			goals[i] = spec.GoalFrac * iso
		}
	}

	g, err := gpu.New(s.cfg.GPU, kernels)
	if err != nil {
		return nil, err
	}
	s.applyStepping(g)
	if tr != nil {
		// Attach before the scheme installs so the first quota
		// allocation (epoch 0, cycle 0) is captured too.
		g.SetTracer(tr)
	}
	if err := installScheme(g, scheme, goals, isolated, s.cfg.QoSOptions); err != nil {
		return nil, err
	}
	if err := g.RunCtx(ctx, s.cfg.WindowCycles); err != nil {
		return nil, err
	}

	costs := power.DefaultCosts()
	if s.cfg.PowerCosts != nil {
		costs = *s.cfg.PowerCosts
	}
	res := &Result{
		Scheme:     scheme,
		Cycles:     g.Now,
		AllReached: true,
		Power:      power.Measure(g, costs),
	}
	for i, spec := range specs {
		kr := KernelResult{
			Name:        spec.name(),
			IsQoS:       goals[i] > 0,
			GoalIPC:     goals[i],
			IPC:         g.IPC(i),
			IsolatedIPC: isolated[i],
			Stats:       *g.Stats[i],
		}
		if kr.IsolatedIPC > 0 {
			kr.NormThroughput = kr.IPC / kr.IsolatedIPC
		}
		if kr.IsQoS {
			kr.GoalRatio = kr.IPC / kr.GoalIPC
			kr.Reached = kr.IPC >= kr.GoalIPC
			if !kr.Reached {
				res.AllReached = false
			}
		}
		res.TotalIPC += kr.IPC
		res.Kernels = append(res.Kernels, kr)
	}
	return res, nil
}

// applyStepping configures the session's stepping mode (serial or
// sharded) on a freshly built device.
func (s *Session) applyStepping(g *gpu.GPU) {
	g.SetShardWorkers(s.cfg.ShardWorkers)
	g.SetShards(s.cfg.Shards)
	g.SetEventWheel(!s.cfg.DisableEventWheel)
}

// installScheme wires the chosen management policy into the GPU.
func installScheme(g *gpu.GPU, scheme Scheme, goals, isolated []float64, opts qos.Options) error {
	switch scheme {
	case SchemeNone:
		return nil
	case SchemeFair:
		f, err := qos.NewFair(g, isolated, opts)
		if err != nil {
			return err
		}
		f.Install()
		return nil
	case SchemeSpart:
		c, err := spart.New(g, goals, isolated)
		if err != nil {
			return err
		}
		c.Install()
		return nil
	default:
		qs, ok := scheme.qosScheme()
		if !ok {
			return fmt.Errorf("core: unknown scheme %v", scheme)
		}
		fracs := make([]float64, len(goals))
		for i, goal := range goals {
			if goal > 0 && isolated[i] > 0 {
				fracs[i] = goal / isolated[i]
			}
		}
		qos.SetupFineGrained(g, goals, fracs)
		m, err := qos.New(g, qs, goals, opts)
		if err != nil {
			return err
		}
		m.Install()
		return nil
	}
}

// IPCGoalForDeadline translates an application-level requirement —
// "execute instrs thread instructions within seconds of pure kernel time"
// — into the architectural IPC goal the QoS manager enforces
// (Section 3.2: IPC = Instructions / (Frequency * KernelExecutionTime)).
func IPCGoalForDeadline(cfg config.GPU, instrs int64, seconds float64) (float64, error) {
	if instrs <= 0 || seconds <= 0 {
		return 0, errors.New("core: instrs and seconds must be positive")
	}
	freq := float64(cfg.CoreClockMHz) * 1e6
	return float64(instrs) / (freq * seconds), nil
}

// PCIeTransferSeconds estimates the PCI-E transfer component an OS
// scheduler must subtract from an end-to-end deadline before calling
// IPCGoalForDeadline (Section 3.2 discusses this accounting): fixed
// per-transfer latency plus size over bandwidth.
func PCIeTransferSeconds(bytes int64, gbps float64, fixedLatency float64) float64 {
	if bytes <= 0 || gbps <= 0 {
		return fixedLatency
	}
	return fixedLatency + float64(bytes)/(gbps*1e9)
}
