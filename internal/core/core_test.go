package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kern"
)

// fastConfig is a small device + short window for facade tests.
func fastConfig() Config {
	cfg := config.Base()
	cfg.NumSMs = 4
	return Config{GPU: cfg, WindowCycles: 40_000}
}

func customProfile(name string) *kern.Profile {
	return &kern.Profile{
		Name: name, Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 400,
		FracGlobalMem: 0.1, FracStore: 0.2,
		DepDensity:     0.2,
		CoalesceDegree: 1.5, ReuseFrac: 0.5,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, GridTBs: 192,
	}
}

func TestNewSessionDefaults(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.GPUConfig().NumSMs != 16 {
		t.Fatal("zero config did not default to Table 1")
	}
	if s.Window() != 200_000 {
		t.Fatalf("default window = %d", s.Window())
	}
}

func TestNewSessionRejectsShortWindow(t *testing.T) {
	if _, err := NewSession(Config{WindowCycles: 100}); err == nil {
		t.Fatal("accepted a window shorter than two epochs")
	}
}

func TestIsolatedIPCCached(t *testing.T) {
	s, _ := NewSession(fastConfig())
	spec := KernelSpec{Profile: customProfile("c")}
	a, err := s.IsolatedIPC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatal("no isolated progress")
	}
	b, _ := s.IsolatedIPC(spec)
	if a != b {
		t.Fatal("isolated IPC changed between calls (cache broken)")
	}
}

func TestRunValidation(t *testing.T) {
	s, _ := NewSession(fastConfig())
	if _, err := s.Run(nil, SchemeRollover); err == nil {
		t.Fatal("accepted empty spec list")
	}
	if _, err := s.Run([]KernelSpec{{}}, SchemeRollover); err == nil {
		t.Fatal("accepted spec without workload or profile")
	}
	if _, err := s.Run([]KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 1.5},
		{Profile: customProfile("b")},
	}, SchemeRollover); err == nil {
		t.Fatal("accepted GoalFrac > 1")
	}
}

func TestRunReachesEasyGoal(t *testing.T) {
	s, _ := NewSession(fastConfig())
	res, err := s.Run([]KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.4},
		{Profile: customProfile("b")},
	}, SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Kernels[0]
	if !q.IsQoS || q.GoalIPC <= 0 {
		t.Fatal("QoS kernel not classified")
	}
	if !q.Reached {
		t.Fatalf("easy 40%% goal missed: IPC %.1f of %.1f", q.IPC, q.GoalIPC)
	}
	if !res.AllReached {
		t.Fatal("AllReached false with all QoS goals met")
	}
	nq := res.Kernels[1]
	if nq.IsQoS || nq.GoalIPC != 0 {
		t.Fatal("non-QoS kernel misclassified")
	}
	if res.TotalIPC < q.IPC {
		t.Fatal("TotalIPC less than one kernel's IPC")
	}
	if res.Power.ThreadInstrs == 0 {
		t.Fatal("power report empty")
	}
}

func TestRunAllSchemes(t *testing.T) {
	s, _ := NewSession(fastConfig())
	specs := []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.5},
		{Profile: customProfile("b")},
	}
	for _, scheme := range []Scheme{SchemeNone, SchemeNaive, SchemeNaiveHistory,
		SchemeElastic, SchemeRollover, SchemeRolloverTime, SchemeSpart} {
		res, err := s.Run(specs, scheme)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Cycles != s.Window() {
			t.Fatalf("%v: ran %d cycles", scheme, res.Cycles)
		}
		if res.Kernels[0].IPC <= 0 {
			t.Fatalf("%v: QoS kernel made no progress", scheme)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	specs := []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.5},
		{Profile: customProfile("b")},
	}
	run := func() float64 {
		s, _ := NewSession(fastConfig())
		res, err := s.Run(specs, SchemeRollover)
		if err != nil {
			t.Fatal(err)
		}
		return res.Kernels[0].IPC*1e6 + res.Kernels[1].IPC
	}
	if run() != run() {
		t.Fatal("identical sessions produced different results")
	}
}

func TestWorkloadSpecsResolve(t *testing.T) {
	s, _ := NewSession(fastConfig())
	res, err := s.Run([]KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.3},
		{Workload: "lbm"},
	}, SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].Name != "sgemm" || res.Kernels[1].Name != "lbm" {
		t.Fatal("workload names not carried through")
	}
}

func TestAbsoluteGoalOverridesFraction(t *testing.T) {
	s, _ := NewSession(fastConfig())
	res, err := s.Run([]KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.9, GoalIPC: 12.5},
		{Profile: customProfile("b")},
	}, SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].GoalIPC != 12.5 {
		t.Fatalf("GoalIPC = %v, want the absolute 12.5", res.Kernels[0].GoalIPC)
	}
}

func TestSchemeStrings(t *testing.T) {
	for s := SchemeNone; s <= SchemeSpart; s++ {
		if s.String() == "" {
			t.Fatalf("scheme %d has no name", int(s))
		}
	}
}

func TestIPCGoalForDeadline(t *testing.T) {
	cfg := config.Base()
	// 1216 MHz, 1.216e9 instrs in 1 second → IPC goal of exactly 1.
	goal, err := IPCGoalForDeadline(cfg, 1_216_000_000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if goal < 0.999 || goal > 1.001 {
		t.Fatalf("goal = %v, want 1.0", goal)
	}
	if _, err := IPCGoalForDeadline(cfg, 0, 1); err == nil {
		t.Fatal("accepted zero instructions")
	}
	if _, err := IPCGoalForDeadline(cfg, 100, 0); err == nil {
		t.Fatal("accepted zero deadline")
	}
}

func TestPCIeTransferSeconds(t *testing.T) {
	// 16 GB/s, 16 GB payload → 1 second plus fixed latency.
	got := PCIeTransferSeconds(16<<30, 16*(1<<30)/1e9, 0.001)
	if got < 1.0 || got > 1.1 {
		t.Fatalf("transfer time %v, want ~1s", got)
	}
	if PCIeTransferSeconds(0, 16, 0.002) != 0.002 {
		t.Fatal("zero-byte transfer should cost only fixed latency")
	}
}

func TestSchemeFairRunsWithoutGoals(t *testing.T) {
	s, _ := NewSession(fastConfig())
	res, err := s.Run([]KernelSpec{
		{Profile: customProfile("a")},
		{Profile: customProfile("b")},
	}, SchemeFair)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].IPC <= 0 || res.Kernels[1].IPC <= 0 {
		t.Fatal("fairness-managed kernels made no progress")
	}
	if res.Kernels[0].IsQoS || res.Kernels[1].IsQoS {
		t.Fatal("fairness run should have no QoS kernels")
	}
}
