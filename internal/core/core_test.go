package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/kern"
)

// fastOpts is a small device + short window for facade tests.
func fastOpts() []Option {
	cfg := config.Base()
	cfg.NumSMs = 4
	return []Option{WithGPU(cfg), WithWindow(40_000)}
}

func fastSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func customProfile(name string) *kern.Profile {
	return &kern.Profile{
		Name: name, Class: kern.ClassCompute,
		BodyInstrs: 12, Iterations: 400,
		FracGlobalMem: 0.1, FracStore: 0.2,
		DepDensity:     0.2,
		CoalesceDegree: 1.5, ReuseFrac: 0.5,
		HotBytes: 4 << 10, FootprintBytes: 1 << 20,
		ThreadsPerTB: 64, RegsPerThread: 16, GridTBs: 192,
	}
}

func TestNewSessionDefaults(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.GPUConfig().NumSMs != 16 {
		t.Fatal("optionless session did not default to Table 1")
	}
	if s.Window() != 200_000 {
		t.Fatalf("default window = %d", s.Window())
	}
}

func TestNewSessionRejectsShortWindow(t *testing.T) {
	if _, err := NewSession(WithWindow(100)); err == nil {
		t.Fatal("accepted a window shorter than two epochs")
	}
}

// TestSessionConfigExposesResolvedSettings checks Session.Config returns
// the post-validation configuration (the value the checkpoint journal
// and the qosd job log hash), including applied defaults.
func TestSessionConfigExposesResolvedSettings(t *testing.T) {
	cfg := config.Base()
	cfg.NumSMs = 4
	s, err := NewSession(WithGPU(cfg), WithWindow(40_000))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Config()
	if got.GPU != cfg || got.WindowCycles != 40_000 {
		t.Fatalf("resolved config diverged: %+v", got)
	}
	def, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if def.Config().WindowCycles != 200_000 || def.Config().GPU.NumSMs != 16 {
		t.Fatalf("defaults not resolved into Config: %+v", def.Config())
	}
}

// TestOptionOrder checks later options override earlier ones — the
// property Runner.With relies on to derive ablation runners.
func TestOptionOrder(t *testing.T) {
	small := config.Base()
	small.NumSMs = 4
	s, err := NewSession(WithGPU(config.Base()), WithGPU(small), WithWindow(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if s.GPUConfig().NumSMs != 4 {
		t.Fatalf("later WithGPU did not win: %d SMs", s.GPUConfig().NumSMs)
	}
}

func TestWithSeed(t *testing.T) {
	a, err := NewSession(append(fastOpts(), WithSeed(1))...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed() != 1 {
		t.Fatalf("Seed() = %d", a.Seed())
	}
	b := fastSession(t)
	ctx := context.Background()
	spec := KernelSpec{Workload: "lbm"}
	x, err := a.IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	y, err := b.IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if x == y {
		t.Fatal("different seeds produced identical isolated IPC")
	}
}

func TestIsolatedIPCCached(t *testing.T) {
	s := fastSession(t)
	ctx := context.Background()
	spec := KernelSpec{Profile: customProfile("c")}
	a, err := s.IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatal("no isolated progress")
	}
	b, _ := s.IsolatedIPC(ctx, spec)
	if a != b {
		t.Fatal("isolated IPC changed between calls (cache broken)")
	}
}

// TestSharedIsolatedCacheSingleflight checks that sessions sharing one
// IsolatedCache compute each baseline exactly once, even when many
// goroutines ask concurrently — the property the sweep runner relies on.
func TestSharedIsolatedCacheSingleflight(t *testing.T) {
	var computes atomic.Int64
	cache := NewIsolatedCache()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := cache.ipc("k", func() (float64, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("ipc = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("baseline computed %d times, want 1", n)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

// TestIsolatedCacheEvictsErrors checks a failed (e.g. canceled)
// computation does not poison the cache: the next caller retries.
func TestIsolatedCacheEvictsErrors(t *testing.T) {
	cache := NewIsolatedCache()
	boom := errors.New("boom")
	if _, err := cache.ipc("k", func() (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if cache.Len() != 0 {
		t.Fatal("failed entry not evicted")
	}
	v, err := cache.ipc("k", func() (float64, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after failure: %v, %v", v, err)
	}
}

func TestSessionsShareIsolatedCache(t *testing.T) {
	cache := NewIsolatedCache()
	a, err := NewSession(append(fastOpts(), WithIsolatedCache(cache))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(append(fastOpts(), WithIsolatedCache(cache))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := KernelSpec{Workload: "sgemm"}
	x, err := a.IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	y, err := b.IsolatedIPC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if x != y {
		t.Fatal("sessions sharing a cache disagree on the isolated baseline")
	}
	if cache.Len() != 1 {
		t.Fatalf("shared cache holds %d entries, want 1", cache.Len())
	}
}

func TestRunValidation(t *testing.T) {
	s := fastSession(t)
	ctx := context.Background()
	if _, err := s.Run(ctx, nil, SchemeRollover); err == nil {
		t.Fatal("accepted empty spec list")
	}
	if _, err := s.Run(ctx, []KernelSpec{{}}, SchemeRollover); err == nil {
		t.Fatal("accepted spec without workload or profile")
	}
	if _, err := s.Run(ctx, []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 1.5},
		{Profile: customProfile("b")},
	}, SchemeRollover); !errors.Is(err, ErrBadGoal) {
		t.Fatalf("GoalFrac > 1: err = %v, want ErrBadGoal", err)
	}
	if _, err := s.Run(ctx, []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: -0.5},
		{Profile: customProfile("b")},
	}, SchemeRollover); !errors.Is(err, ErrBadGoal) {
		t.Fatalf("negative GoalFrac: err = %v, want ErrBadGoal", err)
	}
	if _, err := s.Run(ctx, []KernelSpec{
		{Workload: "no-such-kernel"},
		{Profile: customProfile("b")},
	}, SchemeRollover); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("unknown workload: err = %v, want ErrUnknownWorkload", err)
	}
}

// TestRunCanceled checks ctx cancellation aborts a run promptly with
// context.Canceled instead of returning a partial Result.
func TestRunCanceled(t *testing.T) {
	s := fastSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Run(ctx, []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.5},
		{Profile: customProfile("b")},
	}, SchemeRollover)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := s.IsolatedIPC(ctx, KernelSpec{Profile: customProfile("a")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("IsolatedIPC err = %v, want context.Canceled", err)
	}
}

func TestRunReachesEasyGoal(t *testing.T) {
	s := fastSession(t)
	res, err := s.Run(context.Background(), []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.4},
		{Profile: customProfile("b")},
	}, SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Kernels[0]
	if !q.IsQoS || q.GoalIPC <= 0 {
		t.Fatal("QoS kernel not classified")
	}
	if !q.Reached {
		t.Fatalf("easy 40%% goal missed: IPC %.1f of %.1f", q.IPC, q.GoalIPC)
	}
	if !res.AllReached {
		t.Fatal("AllReached false with all QoS goals met")
	}
	nq := res.Kernels[1]
	if nq.IsQoS || nq.GoalIPC != 0 {
		t.Fatal("non-QoS kernel misclassified")
	}
	if res.TotalIPC < q.IPC {
		t.Fatal("TotalIPC less than one kernel's IPC")
	}
	if res.Power.ThreadInstrs == 0 {
		t.Fatal("power report empty")
	}
}

func TestRunAllSchemes(t *testing.T) {
	s := fastSession(t)
	specs := []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.5},
		{Profile: customProfile("b")},
	}
	for _, scheme := range []Scheme{SchemeNone, SchemeNaive, SchemeNaiveHistory,
		SchemeElastic, SchemeRollover, SchemeRolloverTime, SchemeSpart} {
		res, err := s.Run(context.Background(), specs, scheme)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Cycles != s.Window() {
			t.Fatalf("%v: ran %d cycles", scheme, res.Cycles)
		}
		if res.Kernels[0].IPC <= 0 {
			t.Fatalf("%v: QoS kernel made no progress", scheme)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	specs := []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.5},
		{Profile: customProfile("b")},
	}
	run := func() float64 {
		s, _ := NewSession(fastOpts()...)
		res, err := s.Run(context.Background(), specs, SchemeRollover)
		if err != nil {
			t.Fatal(err)
		}
		return res.Kernels[0].IPC*1e6 + res.Kernels[1].IPC
	}
	if run() != run() {
		t.Fatal("identical sessions produced different results")
	}
}

func TestWorkloadSpecsResolve(t *testing.T) {
	s := fastSession(t)
	res, err := s.Run(context.Background(), []KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.3},
		{Workload: "lbm"},
	}, SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].Name != "sgemm" || res.Kernels[1].Name != "lbm" {
		t.Fatal("workload names not carried through")
	}
}

func TestAbsoluteGoalOverridesFraction(t *testing.T) {
	s := fastSession(t)
	res, err := s.Run(context.Background(), []KernelSpec{
		{Profile: customProfile("a"), GoalFrac: 0.9, GoalIPC: 12.5},
		{Profile: customProfile("b")},
	}, SchemeRollover)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].GoalIPC != 12.5 {
		t.Fatalf("GoalIPC = %v, want the absolute 12.5", res.Kernels[0].GoalIPC)
	}
}

func TestSchemeStrings(t *testing.T) {
	for s := SchemeNone; s <= SchemeSpart; s++ {
		if s.String() == "" {
			t.Fatalf("scheme %d has no name", int(s))
		}
	}
}

// TestParseSchemeRoundTrip checks every scheme parses from both its
// canonical Name and its String form.
func TestParseSchemeRoundTrip(t *testing.T) {
	all := Schemes()
	if len(all) != 8 {
		t.Fatalf("Schemes() lists %d schemes", len(all))
	}
	for _, sc := range all {
		got, err := ParseScheme(sc.Name())
		if err != nil || got != sc {
			t.Fatalf("ParseScheme(%q) = %v, %v", sc.Name(), got, err)
		}
		got, err = ParseScheme(sc.String())
		if err != nil || got != sc {
			t.Fatalf("ParseScheme(%q) = %v, %v", sc.String(), got, err)
		}
	}
}

func TestParseSchemeUnknown(t *testing.T) {
	if _, err := ParseScheme("quantum"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
}

func TestIPCGoalForDeadline(t *testing.T) {
	cfg := config.Base()
	// 1216 MHz, 1.216e9 instrs in 1 second → IPC goal of exactly 1.
	goal, err := IPCGoalForDeadline(cfg, 1_216_000_000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if goal < 0.999 || goal > 1.001 {
		t.Fatalf("goal = %v, want 1.0", goal)
	}
	if _, err := IPCGoalForDeadline(cfg, 0, 1); err == nil {
		t.Fatal("accepted zero instructions")
	}
	if _, err := IPCGoalForDeadline(cfg, 100, 0); err == nil {
		t.Fatal("accepted zero deadline")
	}
}

func TestPCIeTransferSeconds(t *testing.T) {
	// 16 GB/s, 16 GB payload → 1 second plus fixed latency.
	got := PCIeTransferSeconds(16<<30, 16*(1<<30)/1e9, 0.001)
	if got < 1.0 || got > 1.1 {
		t.Fatalf("transfer time %v, want ~1s", got)
	}
	if PCIeTransferSeconds(0, 16, 0.002) != 0.002 {
		t.Fatal("zero-byte transfer should cost only fixed latency")
	}
}

func TestSchemeFairRunsWithoutGoals(t *testing.T) {
	s := fastSession(t)
	res, err := s.Run(context.Background(), []KernelSpec{
		{Profile: customProfile("a")},
		{Profile: customProfile("b")},
	}, SchemeFair)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].IPC <= 0 || res.Kernels[1].IPC <= 0 {
		t.Fatal("fairness-managed kernels made no progress")
	}
	if res.Kernels[0].IsQoS || res.Kernels[1].IsQoS {
		t.Fatal("fairness run should have no QoS kernels")
	}
}
