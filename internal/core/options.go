package core

import (
	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/qos"
	"repro/internal/workloads"
)

// settings collects everything an Option can configure before validation.
type settings struct {
	cfg    Config
	seed   uint64
	cache  *IsolatedCache
	faults FaultInjector
}

// Option configures a Session (see NewSession). Options apply in order,
// so a later WithGPU overrides an earlier one — derived sessions (for
// example an ablation that changes one knob) can append to a base option
// list.
type Option func(*settings)

// WithGPU selects the device configuration. The default is config.Base()
// (the paper's Table 1).
func WithGPU(cfg config.GPU) Option {
	return func(s *settings) { s.cfg.GPU = cfg }
}

// WithWindow sets the measurement window per run in cycles. The default
// is 200000. The paper simulates 2M cycles; shorter windows trade
// fidelity for speed and are recorded in EXPERIMENTS.md.
func WithWindow(cycles int64) Option {
	return func(s *settings) { s.cfg.WindowCycles = cycles }
}

// WithQoSOptions tunes the QoS manager (used by the ablation studies).
func WithQoSOptions(opts qos.Options) Option {
	return func(s *settings) { s.cfg.QoSOptions = opts }
}

// WithPowerCosts overrides the event-energy table of the power model.
func WithPowerCosts(costs power.Costs) Option {
	return func(s *settings) { s.cfg.PowerCosts = &costs }
}

// WithShards selects the simulator stepping mode for every run of the
// session: n <= 1 (the default) steps the SMs serially; n > 1 steps them
// in n shards on a small worker pool with a deterministic two-phase
// barrier. Sharded runs are bit-identical to serial ones — the option
// only trades goroutines for wall-clock time on multi-core hosts.
func WithShards(n int) Option {
	return func(s *settings) { s.cfg.Shards = n }
}

// WithShardWorkers overrides the sharded-mode worker-pool size (the
// default derives it from GOMAXPROCS). Tests force a value above the
// machine's CPU count so the race detector sees real goroutine
// interleavings; 0 restores the default.
func WithShardWorkers(w int) Option {
	return func(s *settings) { s.cfg.ShardWorkers = w }
}

// WithEventWheel turns event-wheel stepping on or off for every run of
// the session (the default is on). The wheel jumps the main loop between
// the next scheduled events — SM wake-ups, quota events, sample
// boundaries, epoch rolls — instead of ticking every cycle; runs are
// bit-identical either way, so the switch is purely a debugging escape
// hatch and the lever the wheel-equivalence tests pull.
func WithEventWheel(on bool) Option {
	return func(s *settings) { s.cfg.DisableEventWheel = !on }
}

// WithSeed sets the deterministic seed used to expand kernel profiles.
// The default is workloads.Seed; every stochastic decision in a run is a
// pure function of this seed, so two sessions with equal configuration
// and seed produce bit-identical results.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithIsolatedCache shares an isolated-IPC cache between sessions. All
// sessions sharing a cache MUST be built with identical configuration and
// seed (isolated IPC depends on both); the parallel sweep runner uses
// this so the per-workload isolated baselines are measured exactly once
// across its worker pool.
func WithIsolatedCache(c *IsolatedCache) Option {
	return func(s *settings) { s.cache = c }
}

// WithFaultInjector installs a deterministic fault injector consulted at
// the top of every Session.Run (see FaultInjector). It exists for testing
// the fault-tolerant sweep engine: injected panics, delays and transient
// errors prove that panic isolation, per-case deadlines, retries and
// journal resume behave — production sessions leave it nil.
func WithFaultInjector(fi FaultInjector) Option {
	return func(s *settings) { s.faults = fi }
}

// defaultSettings returns the option state before user options apply.
func defaultSettings() settings {
	return settings{seed: workloads.Seed}
}
