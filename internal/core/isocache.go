package core

import "sync"

// IsolatedCache memoizes isolated-IPC measurements by workload name with
// singleflight semantics: when several goroutines ask for the same
// kernel's baseline concurrently, exactly one measures it and the rest
// wait for the result. A cache is private to one Session by default;
// WithIsolatedCache shares it across sessions with identical
// configuration so a worker pool computes each baseline once.
type IsolatedCache struct {
	mu      sync.Mutex
	entries map[string]*isoEntry
}

type isoEntry struct {
	once sync.Once
	val  float64
	err  error
}

// NewIsolatedCache returns an empty cache ready for sharing.
func NewIsolatedCache() *IsolatedCache {
	return &IsolatedCache{entries: make(map[string]*isoEntry)}
}

// Len reports how many baselines have been requested so far (including
// in-flight measurements).
func (c *IsolatedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ipc returns the cached value for key, computing it via compute on the
// first request. Failed computations (for example a canceled context) are
// evicted so a later request retries instead of caching the error
// forever; concurrent waiters of the failed flight still observe the
// error.
func (c *IsolatedCache) ipc(key string, compute func() (float64, error)) (float64, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &isoEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = compute() })
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return 0, e.err
	}
	return e.val, nil
}
