package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/schema"
)

// ResolveGoal lowers a typed schema.Goal to the (GoalFrac, GoalIPC)
// pair a KernelSpec carries. Fraction and IPC goals pass through;
// deadline goals are resolved against the node's GPU config — subtract
// the PCI-E input-transfer component from the budget, then derive the
// architectural IPC target (IPCGoalForDeadline). Because the lowering
// depends on cfg, a deadline goal can resolve to a different IPC target
// on every node of a heterogeneous fleet; callers re-resolve per node.
func ResolveGoal(cfg config.GPU, g schema.Goal) (goalFrac, goalIPC float64, err error) {
	if err := g.Validate(); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadGoal, err)
	}
	switch g.Kind {
	case schema.GoalNone:
		return 0, 0, nil
	case schema.GoalFrac:
		return g.Frac, 0, nil
	case schema.GoalIPC:
		return 0, g.IPC, nil
	}
	d := g.Deadline
	budget := d.Seconds
	if d.TransferBytes > 0 {
		gbps := d.PCIeGbps
		if gbps == 0 {
			gbps = 15.75 // PCIe 3.0 x16
		}
		lat := d.PCIeLatency
		if lat == 0 {
			lat = 10e-6
		}
		budget -= PCIeTransferSeconds(d.TransferBytes, gbps, lat)
	}
	if budget <= 0 {
		return 0, 0, fmt.Errorf("%w: deadline consumed by PCI-E transfer", ErrBadGoal)
	}
	ipc, err := IPCGoalForDeadline(cfg, d.Instrs, budget)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadGoal, err)
	}
	return 0, ipc, nil
}
