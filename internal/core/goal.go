package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/schema"
)

// ResolveGoal lowers a typed schema.Goal to the (GoalFrac, GoalIPC)
// pair a KernelSpec carries. Fraction and IPC goals pass through; the
// time-based forms (deadline, latency, periodic) are resolved against
// the node's GPU config into an architectural IPC target
// (IPCGoalForDeadline). Because the lowering depends on cfg, a
// time-based goal can resolve to a different IPC target on every node
// of a heterogeneous fleet; callers re-resolve per node.
//
//   - deadline: subtract the PCI-E input-transfer component from the
//     budget, then derive the IPC that retires Instrs in what remains.
//   - latency: derive the IPC that retires one request's Instrs within
//     the SLO bound, scaled up by LatencyTailHeadroom for the tail
//     percentile — a mean-IPC contract equal to the bound would miss
//     the tail under epoch-to-epoch IPC variance (the variance the
//     paper's Section 3.4 schemes exist to absorb).
//   - periodic: derive the IPC that retires one activation's Instrs
//     within its relative deadline (the period when DeadlineS is 0).
func ResolveGoal(cfg config.GPU, g schema.Goal) (goalFrac, goalIPC float64, err error) {
	if err := g.Validate(); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadGoal, err)
	}
	switch g.Kind {
	case schema.GoalNone:
		return 0, 0, nil
	case schema.GoalFrac:
		return g.Frac, 0, nil
	case schema.GoalIPC:
		return 0, g.IPC, nil
	case schema.GoalLatency:
		l := g.Latency
		ipc, err := IPCGoalForDeadline(cfg, l.Instrs, l.Seconds)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %v", ErrBadGoal, err)
		}
		return 0, ipc * LatencyTailHeadroom(l.Percentile), nil
	case schema.GoalPeriodic:
		p := g.Periodic
		budget := p.DeadlineS
		if budget == 0 {
			budget = p.PeriodS
		}
		ipc, err := IPCGoalForDeadline(cfg, p.Instrs, budget)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %v", ErrBadGoal, err)
		}
		return 0, ipc, nil
	}
	d := g.Deadline
	budget := d.Seconds
	if d.TransferBytes > 0 {
		gbps := d.PCIeGbps
		if gbps == 0 {
			gbps = 15.75 // PCIe 3.0 x16
		}
		lat := d.PCIeLatency
		if lat == 0 {
			lat = 10e-6
		}
		budget -= PCIeTransferSeconds(d.TransferBytes, gbps, lat)
	}
	if budget <= 0 {
		return 0, 0, fmt.Errorf("%w: deadline consumed by PCI-E transfer", ErrBadGoal)
	}
	ipc, err := IPCGoalForDeadline(cfg, d.Instrs, budget)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadGoal, err)
	}
	return 0, ipc, nil
}

// LatencyTailHeadroom is the factor a latency-SLO goal's mean-IPC
// target is raised above the per-request bound to cover the requested
// tail percentile. Up to p90 the mean suffices (epoch IPC under the
// QoS schemes is roughly symmetric around its mean); past p90 the
// allowance grows linearly — p99 enforces ~22.5% above the bound,
// p99.9 ~25% — a deliberately simple piecewise model of the
// epoch-level IPC spread the history/elastic/rollover machinery
// leaves behind. Percentile 0 means the default p99.
func LatencyTailHeadroom(percentile float64) float64 {
	if percentile == 0 {
		percentile = 0.99
	}
	if percentile <= 0.9 {
		return 1
	}
	return 1 + 2.5*(percentile-0.9)
}
