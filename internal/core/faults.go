package core

import "context"

// FaultInjector deterministically injects failures into Session.Run, the
// hook the fault-tolerant sweep engine's tests use to prove the engine
// survives misbehaving cases. Inject is consulted at the top of every
// Run; an implementation may
//
//   - return an error — the run fails as if the simulation had,
//   - sleep in a context-aware way — a slow or hung case, which a
//     per-case deadline must reap,
//   - panic — a crashing case, which the sweep engine's panic isolation
//     must convert into a reported CaseError instead of a dead process.
//
// Implementations must be safe for concurrent use: the whole worker pool
// shares one injector. To stay deterministic regardless of worker
// scheduling, key decisions on the case index from CaseIndexFromContext,
// never on call order.
type FaultInjector interface {
	Inject(ctx context.Context) error
}

// caseIndexKey tags a context with the sweep case index.
type caseIndexKey struct{}

// ContextWithCaseIndex tags ctx with the deterministic sweep case index.
// The sweep runner applies it before every case so fault injectors can
// target chosen indices.
func ContextWithCaseIndex(ctx context.Context, index int) context.Context {
	return context.WithValue(ctx, caseIndexKey{}, index)
}

// CaseIndexFromContext returns the case index tagged by
// ContextWithCaseIndex, or ok=false outside a sweep.
func CaseIndexFromContext(ctx context.Context) (index int, ok bool) {
	index, ok = ctx.Value(caseIndexKey{}).(int)
	return index, ok
}
