package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestIsolatedCacheCancelDuringFill cancels a baseline measurement while
// it is in flight on the singleflight cache: the computing goroutine and
// every waiter joined to the same flight must observe the error promptly
// (no deadlock), and the failed entry must be evicted — not poisoned — so
// the next request recomputes and succeeds.
func TestIsolatedCacheCancelDuringFill(t *testing.T) {
	c := NewIsolatedCache()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var startedOnce sync.Once
	// compute may legitimately run more than once: if one waiter's failed
	// flight is already evicted before the other waiter arrives, the
	// second waiter starts a fresh flight (that is the evict-not-poison
	// semantics under test), so the start signal must be idempotent.
	compute := func() (float64, error) {
		startedOnce.Do(func() { close(started) })
		// Stand-in for gpu.RunCtx blocking until epoch-boundary
		// cancellation: wait for the context, then surface its error.
		<-ctx.Done()
		return 0, ctx.Err()
	}

	type res struct {
		v   float64
		err error
	}
	results := make(chan res, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.ipc("sgemm", compute)
			results <- res{v, err}
		}()
	}
	<-started
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: singleflight waiters never returned after cancellation")
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("waiter %d: err = %v, want Canceled", i, r.err)
		}
	}

	// The failed flight must have been evicted, not cached as an error.
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after a failed fill, want 0", c.Len())
	}
	v, err := c.ipc("sgemm", func() (float64, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("recompute after eviction = (%v, %v), want (42, nil)", v, err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache Len = %d after successful recompute", c.Len())
	}
}

// TestSessionIsolatedIPCCancelThenRetry is the same scenario through the
// Session facade with a real simulation: a canceled IsolatedIPC must not
// poison the shared cache for a later successful call.
func TestSessionIsolatedIPCCancelThenRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cache := NewIsolatedCache()
	opts := append(fastOpts(), WithIsolatedCache(cache))
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.IsolatedIPC(ctx, KernelSpec{Workload: "sgemm"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("failed baseline left %d cache entries", cache.Len())
	}
	ipc, err := s.IsolatedIPC(context.Background(), KernelSpec{Workload: "sgemm"})
	if err != nil || ipc <= 0 {
		t.Fatalf("retry after cancellation = (%v, %v)", ipc, err)
	}
}
