package stream

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/schema"
)

// Trace is one arrival stream: the (defaulted) spec that produced it
// and its events in time order. The serialized form is JSONL — a
// header line binding the schema version and spec, then one line per
// arrival — and the trace's identity is the SHA-256 over exactly those
// bytes, so a replayed result can name the traffic it was measured
// under the same way journals name their config.
type Trace struct {
	Spec   GenSpec
	Events []Arrival
}

// traceHeader is the first JSONL line.
type traceHeader struct {
	Schema int     `json:"schema"`
	Kind   string  `json:"kind"`
	Spec   GenSpec `json:"spec"`
}

const traceKind = "arrival-trace"

// Encode renders the canonical JSONL bytes.
func (tr *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(traceHeader{Schema: schema.Version, Kind: traceKind, Spec: tr.Spec}); err != nil {
		return nil, err
	}
	for i := range tr.Events {
		if err := enc.Encode(&tr.Events[i]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Hash returns the trace's content hash: hex SHA-256 over Encode().
func (tr *Trace) Hash() (string, error) {
	b, err := tr.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Decode parses a serialized trace, checking the schema version, the
// header kind, the spec's invariants, and event ordering (sequential
// seq, non-decreasing t_us).
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty trace", ErrBadSpec)
	}
	var hdr traceHeader
	if err := schema.DecodeStrict(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("%w: bad header: %v", ErrBadSpec, err)
	}
	if err := schema.Check(hdr.Schema); err != nil {
		return nil, err
	}
	if hdr.Kind != traceKind {
		return nil, fmt.Errorf("%w: kind %q, want %q", ErrBadSpec, hdr.Kind, traceKind)
	}
	spec := hdr.Spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Spec: spec}
	var lastUs int64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Arrival
		if err := schema.DecodeStrict(line, &ev); err != nil {
			return nil, fmt.Errorf("%w: event %d: %v", ErrBadSpec, len(tr.Events), err)
		}
		if ev.Seq != len(tr.Events) {
			return nil, fmt.Errorf("%w: event seq %d, want %d", ErrBadSpec, ev.Seq, len(tr.Events))
		}
		if ev.TUs < lastUs {
			return nil, fmt.Errorf("%w: event %d goes back in time (%dus < %dus)", ErrBadSpec, ev.Seq, ev.TUs, lastUs)
		}
		lastUs = ev.TUs
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteFile atomically writes the serialized trace (tmp + rename, like
// the journals).
func (tr *Trace) WriteFile(path string) error {
	b, err := tr.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile reads and decodes a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("stream: %s: %w", path, err)
	}
	return tr, nil
}
