package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/fleet"
	"repro/internal/server"
)

// HTTPBackend submits arrivals to a live qosd over its HTTP API:
// POST + wait-GET + DELETE against /v1/jobs (single-device admission)
// or, with V2 set, /v2/jobs (fleet placement with fractional-GPU
// shares). This is `stream -mode replay`'s backend.
type HTTPBackend struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8715".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// V2 targets the fleet API; arrivals then submit their
	// gpu_fraction (DefaultGPUFraction when an arrival carries none).
	V2 bool
	// DefaultGPUFraction backs arrivals without a gpu_fraction on /v2
	// (a /v2 submission must request some share); 0 means 0.25.
	DefaultGPUFraction float64
}

func (b HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

// do issues one request and decodes the enveloped job payload into out,
// translating the admission-relevant status codes: 429 means throttled
// (nil error, ok=false), 409 means the fleet rejected placement
// synchronously. Other non-2xx statuses are errors.
func (b HTTPBackend) do(ctx context.Context, method, path string, body, out any) (throttled, rejected bool, err error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return false, false, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.BaseURL+path, rd)
	if err != nil {
		return false, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return true, false, nil
	case resp.StatusCode == http.StatusConflict:
		return false, true, nil
	case resp.StatusCode < 200 || resp.StatusCode > 299:
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return false, false, fmt.Errorf("stream: %s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, false, fmt.Errorf("stream: %s %s: decode: %w", method, path, err)
		}
	}
	return false, false, nil
}

// v1Envelope mirrors the /v1 single-job response body.
type v1Envelope struct {
	Schema int            `json:"schema"`
	Job    server.JobView `json:"job"`
}

// v2Envelope mirrors the /v2 single-job response body.
type v2Envelope struct {
	Schema int           `json:"schema"`
	Job    fleet.JobView `json:"job"`
}

// Submit submits one arrival and blocks (?wait=1) until its verdict.
func (b HTTPBackend) Submit(ctx context.Context, a Arrival) (Outcome, error) {
	if b.V2 {
		return b.submitV2(ctx, a)
	}
	body := server.JobRequest{
		Name:   a.Tenant,
		Kernel: server.KernelRequest{Workload: a.Workload},
	}
	if !a.Goal.IsZero() {
		g := a.Goal
		body.Kernel.Goal = &g
	}
	var env v1Envelope
	throttled, _, err := b.do(ctx, http.MethodPost, "/v1/jobs", body, &env)
	if err != nil {
		return Outcome{}, err
	}
	if throttled {
		return Outcome{State: StateThrottled}, nil
	}
	for env.Job.State == string(server.JobQueued) || env.Job.State == string(server.JobEvaluating) {
		if _, _, err := b.do(ctx, http.MethodGet, "/v1/jobs/"+env.Job.ID+"?wait=1", nil, &env); err != nil {
			return Outcome{}, err
		}
	}
	return outcomeFromStates(env.Job.ID, env.Job.State, env.Job.Verdict), nil
}

func (b HTTPBackend) submitV2(ctx context.Context, a Arrival) (Outcome, error) {
	frac := a.GPUFraction
	if frac == 0 {
		frac = b.DefaultGPUFraction
	}
	if frac == 0 {
		frac = 0.25
	}
	body := fleet.Request{
		Name:        a.Tenant,
		Workload:    a.Workload,
		GPUFraction: frac,
	}
	if !a.Goal.IsZero() {
		g := a.Goal
		body.Goal = &g
	}
	var env v2Envelope
	throttled, rejected, err := b.do(ctx, http.MethodPost, "/v2/jobs", body, &env)
	if err != nil {
		return Outcome{}, err
	}
	if throttled {
		return Outcome{State: StateThrottled}, nil
	}
	if rejected {
		return Outcome{State: StateRejected}, nil
	}
	for env.Job.State == fleet.StateQueued || env.Job.State == fleet.StatePlacing {
		if _, _, err := b.do(ctx, http.MethodGet, "/v2/jobs/"+env.Job.ID+"?wait=1", nil, &env); err != nil {
			return Outcome{}, err
		}
	}
	switch env.Job.State {
	case fleet.StatePlaced:
		return Outcome{JobID: env.Job.ID, State: StateAdmitted, Verdict: env.Job.Verdict}, nil
	case fleet.StateRejected:
		return Outcome{JobID: env.Job.ID, State: StateRejected, Verdict: env.Job.Verdict}, nil
	default:
		return Outcome{JobID: env.Job.ID, State: StateFailed, Verdict: env.Job.Verdict}, nil
	}
}

// Release frees an admitted job.
func (b HTTPBackend) Release(ctx context.Context, jobID string) error {
	path := "/v1/jobs/" + jobID
	if b.V2 {
		path = "/v2/jobs/" + jobID
	}
	_, _, err := b.do(ctx, http.MethodDelete, path, nil, nil)
	return err
}
