package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/trace"
)

// fakeBackend scripts outcomes by arrival seq and records the exact
// interleaving of submits and releases.
type fakeBackend struct {
	outcomes map[int]Outcome // by seq; missing = admitted
	log      []string
	nextID   int
	failOn   int // seq whose Submit returns an error; -1 = never
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{outcomes: map[int]Outcome{}, failOn: -1}
}

func (f *fakeBackend) Submit(_ context.Context, a Arrival) (Outcome, error) {
	if a.Seq == f.failOn {
		return Outcome{}, fmt.Errorf("backend down")
	}
	f.log = append(f.log, fmt.Sprintf("submit:%d", a.Seq))
	out, ok := f.outcomes[a.Seq]
	if !ok {
		out = Outcome{State: StateAdmitted}
	}
	if out.State == StateAdmitted && out.JobID == "" {
		f.nextID++
		out.JobID = fmt.Sprintf("job-%d", a.Seq)
	}
	return out, nil
}

func (f *fakeBackend) Release(_ context.Context, jobID string) error {
	f.log = append(f.log, "release:"+strings.TrimPrefix(jobID, "job-"))
	return nil
}

// handTrace builds a trace directly (no generator) for scripted tests.
func handTrace(events []Arrival) *Trace {
	return &Trace{
		Spec: GenSpec{
			Process: ProcessPoisson, RatePerSec: 1, DurationMs: 1_000_000, Seed: 1,
			Tenants: []TenantSpec{
				{Name: "a", Weight: 1, Workload: "sgemm", Goal: schema.FracGoal(0.5)},
				{Name: "b", Weight: 1, Workload: "lbm"},
			},
		},
		Events: events,
	}
}

func rejectWith(isQoS, reached bool) Outcome {
	return Outcome{State: StateRejected, Verdict: &schema.Verdict{
		Candidate: schema.KernelOutcome{IsQoS: isQoS, Reached: reached},
	}}
}

func TestStreamDriverStats(t *testing.T) {
	fb := newFakeBackend()
	fb.outcomes[1] = rejectWith(true, false)  // own-goal miss
	fb.outcomes[3] = rejectWith(false, false) // collateral (best-effort candidate)
	fb.outcomes[4] = Outcome{State: StateThrottled}
	fb.outcomes[5] = Outcome{State: StateFailed}
	tr := handTrace([]Arrival{
		{Seq: 0, TUs: 0, Tenant: "a", Workload: "sgemm", Goal: schema.FracGoal(0.5), HoldUs: 100},
		{Seq: 1, TUs: 10, Tenant: "a", Workload: "sgemm", Goal: schema.FracGoal(0.5)},
		{Seq: 2, TUs: 20, Tenant: "b", Workload: "lbm", HoldUs: 50},
		{Seq: 3, TUs: 30, Tenant: "b", Workload: "lbm"},
		{Seq: 4, TUs: 40, Tenant: "a", Workload: "sgemm"},
		{Seq: 5, TUs: 50, Tenant: "b", Workload: "lbm"},
	})
	reg := &trace.Registry{}
	d := &Driver{Backend: fb, Registry: reg}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Arrivals != 6 || rep.Totals.Arrivals != 6 {
		t.Errorf("arrivals %d/%d, want 6/6", rep.Arrivals, rep.Totals.Arrivals)
	}
	if rep.Totals.Admitted != 2 || rep.Totals.Rejected != 2 || rep.Totals.Throttled != 1 || rep.Totals.Failed != 1 {
		t.Errorf("totals %+v", rep.Totals)
	}
	if rep.Totals.OwnGoalMisses != 1 || rep.Totals.CollateralRejects != 1 {
		t.Errorf("reject split %d/%d, want 1/1", rep.Totals.OwnGoalMisses, rep.Totals.CollateralRejects)
	}
	if rep.Totals.Released != 2 {
		t.Errorf("released %d, want 2", rep.Totals.Released)
	}
	if rep.Totals.AdmitRate != 0.5 || rep.Totals.ViolationRate != 0.25 {
		t.Errorf("rates %v/%v, want 0.5/0.25", rep.Totals.AdmitRate, rep.Totals.ViolationRate)
	}
	if rep.TraceHash == "" || rep.Process != ProcessPoisson {
		t.Errorf("report identity %q/%q", rep.Process, rep.TraceHash)
	}

	// Tenant rows are name-ordered with per-tenant splits.
	if len(rep.Tenants) != 2 || rep.Tenants[0].Name != "a" || rep.Tenants[1].Name != "b" {
		t.Fatalf("tenant rows %+v", rep.Tenants)
	}
	a, b := rep.Tenants[0].TenantStats, rep.Tenants[1].TenantStats
	if a.Arrivals != 3 || a.Admitted != 1 || a.Rejected != 1 || a.Throttled != 1 || a.OwnGoalMisses != 1 {
		t.Errorf("tenant a %+v", a)
	}
	if b.Arrivals != 3 || b.Admitted != 1 || b.Rejected != 1 || b.Failed != 1 || b.CollateralRejects != 1 {
		t.Errorf("tenant b %+v", b)
	}
	if a.VerdictP50Ns <= 0 || a.VerdictP99Ns < a.VerdictP50Ns {
		t.Errorf("tenant a verdict percentiles %d/%d", a.VerdictP50Ns, a.VerdictP99Ns)
	}

	// Registry counters mirror the totals; gauges carry the rates.
	for name, want := range map[string]int64{
		"stream_arrivals": 6, "stream_admitted": 2, "stream_rejected": 2,
		"stream_throttled": 1, "stream_failed": 1, "stream_released": 2,
		"stream_own_goal_misses": 1, "stream_collateral_rejects": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("stream_admit_rate_a").Value(); got != 0.5 {
		t.Errorf("admit rate gauge a = %v, want 0.5", got)
	}
}

func TestStreamDriverReleaseOrdering(t *testing.T) {
	fb := newFakeBackend()
	tr := handTrace([]Arrival{
		{Seq: 0, TUs: 0, Tenant: "a", Workload: "sgemm", HoldUs: 250},  // due 250
		{Seq: 1, TUs: 100, Tenant: "a", Workload: "sgemm", HoldUs: 50}, // due 150
		{Seq: 2, TUs: 200, Tenant: "b", Workload: "lbm", HoldUs: 50},   // due 250 (tie -> seq order)
		{Seq: 3, TUs: 300, Tenant: "b", Workload: "lbm"},               // never released: HoldUs 0
		{Seq: 4, TUs: 400, Tenant: "a", Workload: "sgemm", HoldUs: 1},  // drained at end
	})
	d := &Driver{Backend: fb}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"submit:0", "submit:1",
		"release:1", // due 150 <= arrival t 200
		"submit:2",
		"release:0", "release:2", // both due 250 <= t 300; seq tiebreak
		"submit:3", "submit:4",
		"release:4", // final drain
	}
	if got := strings.Join(fb.log, ","); got != strings.Join(want, ",") {
		t.Errorf("interleaving\n got %s\nwant %s", got, strings.Join(want, ","))
	}
	if rep.Totals.Released != 4 {
		t.Errorf("released %d, want 4 (HoldUs 0 stays admitted)", rep.Totals.Released)
	}
}

func TestStreamDriverMixSlotsEarlyRelease(t *testing.T) {
	fb := newFakeBackend()
	// Three arrivals in one burst, capacity 2: the third submit must be
	// preceded by an early release of the earliest-due held job (seq 0,
	// due 1000) even though virtual time is still 20.
	tr := handTrace([]Arrival{
		{Seq: 0, TUs: 0, Tenant: "a", Workload: "sgemm", HoldUs: 1000},
		{Seq: 1, TUs: 10, Tenant: "a", Workload: "sgemm", HoldUs: 2000},
		{Seq: 2, TUs: 20, Tenant: "b", Workload: "lbm", HoldUs: 1000},
	})
	d := &Driver{Backend: fb, MixSlots: 2}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Final drain is due-time ordered: seq 2 (due 1020) before seq 1
	// (due 2010).
	want := "submit:0,submit:1,release:0,submit:2,release:2,release:1"
	if got := strings.Join(fb.log, ","); got != want {
		t.Errorf("interleaving\n got %s\nwant %s", got, want)
	}
	if rep.Totals.Released != 3 {
		t.Errorf("released %d, want 3", rep.Totals.Released)
	}
}

func TestStreamDriverMixDeadlock(t *testing.T) {
	fb := newFakeBackend()
	// Capacity 1 and a permanently-held admit (HoldUs 0): the second
	// submit could never be decided — the driver must say so instead of
	// hanging.
	tr := handTrace([]Arrival{
		{Seq: 0, TUs: 0, Tenant: "a", Workload: "sgemm"},
		{Seq: 1, TUs: 10, Tenant: "b", Workload: "lbm"},
	})
	d := &Driver{Backend: fb, MixSlots: 1}
	_, err := d.Run(context.Background(), tr)
	if !errors.Is(err, ErrMixDeadlock) {
		t.Fatalf("err = %v, want ErrMixDeadlock", err)
	}
}

func TestStreamDriverBackendError(t *testing.T) {
	fb := newFakeBackend()
	fb.failOn = 2
	tr := handTrace([]Arrival{
		{Seq: 0, TUs: 0, Tenant: "a", Workload: "sgemm"},
		{Seq: 1, TUs: 1, Tenant: "a", Workload: "sgemm"},
		{Seq: 2, TUs: 2, Tenant: "b", Workload: "lbm"},
	})
	d := &Driver{Backend: fb}
	_, err := d.Run(context.Background(), tr)
	if err == nil {
		t.Fatal("driver swallowed a backend error")
	}
	if !strings.Contains(err.Error(), "arrival 2") || !strings.Contains(err.Error(), "tenant b") {
		t.Errorf("error %q lacks arrival context", err)
	}
}

func TestStreamDriverNeedsBackend(t *testing.T) {
	d := &Driver{}
	if _, err := d.Run(context.Background(), handTrace(nil)); err == nil {
		t.Fatal("nil backend accepted")
	}
}

func TestStreamDriverContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &Driver{Backend: newFakeBackend()}
	_, err := d.Run(ctx, handTrace([]Arrival{{Seq: 0, Tenant: "a", Workload: "sgemm"}}))
	if err == nil {
		t.Fatal("cancelled context not honored")
	}
}
