package stream

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/schema"
	"repro/internal/trace"
)

// Outcome states a Backend reports for one arrival. Rejections and
// throttles are outcomes, not errors: the stream keeps flowing, the
// stats record them. A Backend error aborts the drive (infrastructure
// failure, not an admission decision).
const (
	StateAdmitted  = "admitted"
	StateRejected  = "rejected"
	StateThrottled = "throttled"
	StateFailed    = "failed"
)

// Outcome is one arrival's admission result.
type Outcome struct {
	// JobID is the backend's id for the job (release handle).
	JobID string
	// State is StateAdmitted, StateRejected, StateThrottled or
	// StateFailed.
	State string
	// Verdict is the admission verdict when the backend surfaced one
	// (nil for throttles and transport-less failures).
	Verdict *schema.Verdict
}

// Backend accepts stream submissions. Implementations: ServerBackend
// (the in-process qosd decision loop) and HTTPBackend (a live daemon's
// /v1 or /v2 API).
type Backend interface {
	// Submit submits one arrival and blocks until its terminal verdict.
	Submit(ctx context.Context, a Arrival) (Outcome, error)
	// Release frees an admitted job's slot.
	Release(ctx context.Context, jobID string) error
}

// Driver replays a Trace against a Backend in virtual-time order:
// arrivals submit serially (each waits for its verdict — qosd's
// decision loop is serial anyway), and admitted jobs are released when
// virtual time passes their arrival time plus hold. Because every
// interaction is ordered by the trace alone, the backend's decision
// sequence — and therefore its journal — is a deterministic function
// of the trace.
type Driver struct {
	Backend Backend
	// Registry optionally receives stream_* counters and per-tenant
	// admit-rate gauges (the same registry qosd exports on /metrics).
	Registry *trace.Registry
	// Pace > 0 replays arrivals in wall-clock time scaled by 1/Pace
	// (1.0 = real time, 2.0 = twice as fast). 0 submits back-to-back.
	Pace float64
	// MixSlots is the backend's admitted-mix capacity (qosd's MaxMix).
	// The decision loop holds every decision — reject included — until
	// the mix has a free slot, so a serial driver submitting into a full
	// mix would deadlock against its own pending releases. With MixSlots
	// set, the driver instead advances virtual time to the earliest
	// pending release before such a submit (deterministically: due-time
	// then seq order). 0 disables the guard; Run then fails with
	// ErrMixDeadlock if a full mix leaves nothing releasable.
	MixSlots int
}

// ErrMixDeadlock reports a drive wedged on capacity: every mix slot is
// held by a job with no scheduled release, so the next submission could
// never be decided.
var ErrMixDeadlock = errors.New("stream: admitted mix is full with no pending release; decision would block forever (set MixSlots or give tenants hold_ms)")

// TenantStats aggregates one tenant's (or the whole stream's) results.
type TenantStats struct {
	Arrivals  int `json:"arrivals"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Throttled int `json:"throttled"`
	Failed    int `json:"failed"`
	Released  int `json:"released"`
	// OwnGoalMisses counts rejections where the candidate itself could
	// not reach its goal next to the incumbent mix; CollateralRejects
	// counts rejections protecting an incumbent's goal. Together they
	// split "rejected" by whose contract would have broken.
	OwnGoalMisses     int `json:"own_goal_misses"`
	CollateralRejects int `json:"collateral_rejects"`
	// AdmitRate is Admitted over decided arrivals (admitted+rejected);
	// ViolationRate is OwnGoalMisses over the same denominator.
	AdmitRate     float64 `json:"admit_rate"`
	ViolationRate float64 `json:"violation_rate"`
	// Time-to-verdict wall-clock percentiles (nearest-rank) across this
	// tenant's decided arrivals.
	VerdictP50Ns int64 `json:"verdict_p50_ns"`
	VerdictP90Ns int64 `json:"verdict_p90_ns"`
	VerdictP99Ns int64 `json:"verdict_p99_ns"`
}

// TenantReport is one tenant's stats with its identity.
type TenantReport struct {
	Name string `json:"name"`
	TenantStats
}

// Report is one drive's result.
type Report struct {
	Process   string         `json:"process"`
	TraceHash string         `json:"trace_hash"`
	Arrivals  int            `json:"arrivals"`
	WallMs    int64          `json:"wall_ms"`
	Totals    TenantStats    `json:"totals"`
	Tenants   []TenantReport `json:"tenants"`
}

// tenantAcc accumulates one tenant's raw observations during a drive.
type tenantAcc struct {
	stats TenantStats
	lats  []time.Duration
}

// pendingRelease is one admitted job awaiting its virtual release time.
type pendingRelease struct {
	dueUs  int64
	seq    int
	jobID  string
	tenant string
}

// releaseHeap orders releases by (dueUs, seq) — the seq tiebreak keeps
// same-instant releases in submission order, deterministically.
type releaseHeap []pendingRelease

func (h releaseHeap) Len() int { return len(h) }
func (h releaseHeap) Less(i, j int) bool {
	if h[i].dueUs != h[j].dueUs {
		return h[i].dueUs < h[j].dueUs
	}
	return h[i].seq < h[j].seq
}
func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)   { *h = append(*h, x.(pendingRelease)) }
func (h *releaseHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run drives the trace to completion (including releasing every still-
// held job at the end, so a fresh backend ends the drive empty) and
// returns the per-tenant report.
func (d *Driver) Run(ctx context.Context, tr *Trace) (*Report, error) {
	if d.Backend == nil {
		return nil, fmt.Errorf("%w: driver needs a backend", ErrBadSpec)
	}
	hash, err := tr.Hash()
	if err != nil {
		return nil, err
	}
	accs := make(map[string]*tenantAcc)
	acc := func(name string) *tenantAcc {
		a := accs[name]
		if a == nil {
			a = &tenantAcc{}
			accs[name] = a
		}
		return a
	}
	var rel releaseHeap
	active := 0 // admitted and not yet released (mix occupancy)
	releaseOne := func() error {
		r := heap.Pop(&rel).(pendingRelease)
		if err := d.Backend.Release(ctx, r.jobID); err != nil {
			return fmt.Errorf("stream: release %s (tenant %s): %w", r.jobID, r.tenant, err)
		}
		active--
		acc(r.tenant).stats.Released++
		d.count("stream_released", 1)
		return nil
	}
	drainUntil := func(cutUs int64) error {
		for len(rel) > 0 && rel[0].dueUs <= cutUs {
			if err := releaseOne(); err != nil {
				return err
			}
		}
		return nil
	}
	// ensureSlot keeps the serial submit from deadlocking against its
	// own pending releases: with the mix at capacity, virtual time jumps
	// to the earliest release so the next decision can run.
	ensureSlot := func() error {
		if d.MixSlots <= 0 {
			return nil
		}
		for active >= d.MixSlots {
			if len(rel) == 0 {
				return ErrMixDeadlock
			}
			if err := releaseOne(); err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	for i := range tr.Events {
		ev := &tr.Events[i]
		if err := drainUntil(ev.TUs); err != nil {
			return nil, err
		}
		if err := ensureSlot(); err != nil {
			return nil, err
		}
		if d.Pace > 0 {
			due := start.Add(time.Duration(float64(ev.TUs) / d.Pace * float64(time.Microsecond)))
			if wait := time.Until(due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		out, err := d.Backend.Submit(ctx, *ev)
		lat := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("stream: arrival %d (tenant %s): %w", ev.Seq, ev.Tenant, err)
		}
		a := acc(ev.Tenant)
		a.stats.Arrivals++
		d.count("stream_arrivals", 1)
		switch out.State {
		case StateAdmitted:
			a.stats.Admitted++
			a.lats = append(a.lats, lat)
			d.count("stream_admitted", 1)
			active++
			if ev.HoldUs > 0 {
				heap.Push(&rel, pendingRelease{dueUs: ev.TUs + ev.HoldUs, seq: ev.Seq, jobID: out.JobID, tenant: ev.Tenant})
			}
		case StateRejected:
			a.stats.Rejected++
			a.lats = append(a.lats, lat)
			d.count("stream_rejected", 1)
			if v := out.Verdict; v != nil && v.Candidate.IsQoS && !v.Candidate.Reached {
				a.stats.OwnGoalMisses++
				d.count("stream_own_goal_misses", 1)
			} else {
				a.stats.CollateralRejects++
				d.count("stream_collateral_rejects", 1)
			}
		case StateThrottled:
			a.stats.Throttled++
			d.count("stream_throttled", 1)
		default:
			a.stats.Failed++
			d.count("stream_failed", 1)
		}
	}
	// Release everything still held so the backend ends the drive with
	// an empty mix (and the journal records the full lifecycle).
	if err := drainUntil(int64(1) << 62); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	rep := &Report{
		Process:   tr.Spec.Process,
		TraceHash: hash,
		Arrivals:  len(tr.Events),
		WallMs:    wall.Milliseconds(),
	}
	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	var totalLats []time.Duration
	for _, name := range names {
		a := accs[name]
		finalize(&a.stats, a.lats)
		rep.Tenants = append(rep.Tenants, TenantReport{Name: name, TenantStats: a.stats})
		rep.Totals.Arrivals += a.stats.Arrivals
		rep.Totals.Admitted += a.stats.Admitted
		rep.Totals.Rejected += a.stats.Rejected
		rep.Totals.Throttled += a.stats.Throttled
		rep.Totals.Failed += a.stats.Failed
		rep.Totals.Released += a.stats.Released
		rep.Totals.OwnGoalMisses += a.stats.OwnGoalMisses
		rep.Totals.CollateralRejects += a.stats.CollateralRejects
		totalLats = append(totalLats, a.lats...)
		if d.Registry != nil {
			d.Registry.Gauge("stream_admit_rate_" + name).Set(a.stats.AdmitRate)
			d.Registry.Gauge("stream_violation_rate_" + name).Set(a.stats.ViolationRate)
		}
	}
	finalize(&rep.Totals, totalLats)
	return rep, nil
}

// finalize computes the derived rates and latency percentiles.
func finalize(s *TenantStats, lats []time.Duration) {
	if decided := s.Admitted + s.Rejected; decided > 0 {
		s.AdmitRate = float64(s.Admitted) / float64(decided)
		s.ViolationRate = float64(s.OwnGoalMisses) / float64(decided)
	}
	if len(lats) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.VerdictP50Ns = percentile(sorted, 0.50).Nanoseconds()
	s.VerdictP90Ns = percentile(sorted, 0.90).Nanoseconds()
	s.VerdictP99Ns = percentile(sorted, 0.99).Nanoseconds()
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (d *Driver) count(name string, n int64) {
	if d.Registry != nil {
		d.Registry.Counter(name).Add(n)
	}
}
