package stream

import "strconv"

// CSV rendering of stream reports, one row per tenant plus an "ALL"
// totals row, for `sweep -mode stream`'s output. trace_hash on every
// row binds the measurement to the exact traffic it was taken under,
// the same contract journal headers give simulation results.

// CSVHeader is the column list of stream-report rows.
func CSVHeader() []string {
	return []string{
		"process", "tenant", "workload", "goal_kind",
		"arrivals", "admitted", "rejected", "throttled", "failed", "released",
		"admit_rate", "own_goal_misses", "collateral_rejects", "violation_rate",
		"p50_verdict_ns", "p99_verdict_ns", "trace_hash",
	}
}

// CSVRows renders the report: tenant rows in name order, then the ALL
// totals row. tenantMeta maps tenant name to (workload, goal kind) for
// the identity columns; unknown tenants get empty identity cells.
func CSVRows(rep *Report, spec GenSpec) [][]string {
	meta := make(map[string]TenantSpec, len(spec.Tenants))
	for _, t := range spec.Tenants {
		meta[t.Name] = t
	}
	row := func(name, workload, goalKind string, s TenantStats) []string {
		return []string{
			rep.Process, name, workload, goalKind,
			strconv.Itoa(s.Arrivals), strconv.Itoa(s.Admitted), strconv.Itoa(s.Rejected),
			strconv.Itoa(s.Throttled), strconv.Itoa(s.Failed), strconv.Itoa(s.Released),
			strconv.FormatFloat(s.AdmitRate, 'f', 4, 64),
			strconv.Itoa(s.OwnGoalMisses), strconv.Itoa(s.CollateralRejects),
			strconv.FormatFloat(s.ViolationRate, 'f', 4, 64),
			strconv.FormatInt(s.VerdictP50Ns, 10), strconv.FormatInt(s.VerdictP99Ns, 10),
			rep.TraceHash,
		}
	}
	var out [][]string
	for _, t := range rep.Tenants {
		m := meta[t.Name]
		goalKind := m.Goal.Kind
		if goalKind == "" {
			goalKind = "none"
		}
		out = append(out, row(t.Name, m.Workload, goalKind, t.TenantStats))
	}
	out = append(out, row("ALL", "", "", rep.Totals))
	return out
}
