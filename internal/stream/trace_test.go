package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestStreamTraceRoundTrip(t *testing.T) {
	tr, err := Generate(specFor(ProcessBursty))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Spec, tr.Spec) {
		t.Errorf("spec did not round-trip:\n got %+v\nwant %+v", got.Spec, tr.Spec)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Error("events did not round-trip")
	}
	// Re-encoding the decoded trace yields identical bytes and hash.
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("decode/encode is not byte-stable")
	}
	h1, _ := tr.Hash()
	h2, _ := got.Hash()
	if h1 != h2 {
		t.Errorf("hash changed across round trip: %s vs %s", h1, h2)
	}
}

func TestStreamTraceFileRoundTrip(t *testing.T) {
	tr, err := Generate(specFor(ProcessPoisson))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("got %d events, want %d", len(got.Events), len(tr.Events))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
}

func TestStreamTraceDecodeErrors(t *testing.T) {
	tr, err := Generate(GenSpec{
		Process: ProcessPoisson, RatePerSec: 500, DurationMs: 100, Seed: 7,
		Tenants: []TenantSpec{{Name: "a", Weight: 1, Workload: "sgemm"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(good), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short for surgery: %d lines", len(lines))
	}

	cases := []struct {
		name string
		mut  func([]string) string
		want string
	}{
		{"empty", func([]string) string { return "" }, "empty trace"},
		{"wrong kind", func(ls []string) string {
			ls[0] = strings.Replace(ls[0], traceKind, "journal", 1)
			return strings.Join(ls, "\n")
		}, "kind"},
		{"future schema", func(ls []string) string {
			ls[0] = strings.Replace(ls[0], `"schema":3`, `"schema":99`, 1)
			return strings.Join(ls, "\n")
		}, "schema"},
		{"unknown field", func(ls []string) string {
			ls[1] = strings.Replace(ls[1], `"seq"`, `"sneq"`, 1)
			return strings.Join(ls, "\n")
		}, "unknown field"},
		{"seq gap", func(ls []string) string {
			return strings.Join(append(ls[:2], ls[3:]...), "\n")
		}, "seq"},
		{"time reversal", func(ls []string) string {
			ls[1], ls[2] = ls[2], ls[1]
			return strings.Join(ls, "\n")
		}, ""},
	}
	for _, tc := range cases {
		ls := append([]string(nil), lines...)
		_, err := Decode(strings.NewReader(tc.mut(ls)))
		if err == nil {
			t.Errorf("%s: Decode accepted a corrupted trace", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestStreamTraceHashMovesWithContent(t *testing.T) {
	tr, err := Generate(specFor(ProcessPoisson))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := tr.Hash()
	if err != nil {
		t.Fatal(err)
	}
	tr.Events[0].Tenant = "mallory"
	h2, err := tr.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("hash did not change when an event changed")
	}
	if len(h1) != 64 {
		t.Errorf("hash %q is not hex sha-256", h1)
	}
}
