package stream

import "repro/internal/schema"

// DefaultTenants is the built-in four-tenant open-world mix `stream`
// and `sweep -mode stream` use when no tenant file is given. The goal
// values are calibrated against the Base device config (1216 MHz):
// the derived IPC targets sit at roughly 60-70% of each workload's
// isolated IPC, the regime where admission decisions are genuinely
// load-dependent — light mixes admit, saturated mixes reject — so
// arrival dynamics show up in the admit rate.
//
//   - llm:   serving-style inference ("infer") under a 100ms p99
//     latency SLO (13G instructions per request -> ~131 mean-IPC
//     target after tail headroom, ~60% of isolated ~220).
//   - rt:    periodic real-time detection ("rtdet"), 33ms period with
//     a constrained 25ms deadline (5.5G instructions per activation
//     -> ~181 IPC target, ~65% of isolated ~276).
//   - batch: throughput batch work ("sgemm") pinned to the paper's
//     sweep axis at 70% of isolated IPC.
//   - bg:    best-effort background streaming ("lbm"), no goal.
func DefaultTenants() []TenantSpec {
	return []TenantSpec{
		{
			Name: "llm", Weight: 3, Workload: "infer",
			Goal:   schema.LatencyGoal(schema.Latency{Instrs: 13_000_000_000, Seconds: 0.1}),
			HoldMs: 400, GPUFraction: 0.5,
		},
		{
			Name: "rt", Weight: 2, Workload: "rtdet",
			Goal:   schema.PeriodicGoal(schema.Periodic{Instrs: 5_500_000_000, PeriodS: 0.033, DeadlineS: 0.025}),
			HoldMs: 300, GPUFraction: 0.25,
		},
		{
			Name: "batch", Weight: 3, Workload: "sgemm",
			Goal:   schema.FracGoal(0.7),
			HoldMs: 600, GPUFraction: 0.5,
		},
		{
			Name: "bg", Weight: 2, Workload: "lbm",
			HoldMs: 500, GPUFraction: 0.25,
		},
	}
}
