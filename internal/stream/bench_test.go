package stream

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/server"
)

// BenchmarkStreamAdmission measures sustained decision throughput: a
// seeded Poisson stream over the default four-tenant mix driven
// back-to-back (no pacing) into a cache-warm tiered fast path, holds
// and releases included. It reports
//
//	decisions/s — arrivals decided per wall second
//
// which benchgate gates against the BENCH_core.json floor: a regression
// anywhere on the stream path (driver bookkeeping, submit queue,
// verdict cache, release path) shows up here even if the single-shot
// admission latency of BenchmarkAdmission stays flat.
func BenchmarkStreamAdmission(b *testing.B) {
	spec := GenSpec{
		Process:    ProcessPoisson,
		RatePerSec: 50,
		DurationMs: 2_000,
		Seed:       7,
		Tenants:    DefaultTenants(),
	}
	tr, err := Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.NewRunner(2, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		b.Fatal(err)
	}
	// MaxMix 1 bounds the what-if signature space so the warm-up pass
	// simulates a handful of pairings instead of every 3-way mix; the
	// timed drives hit the verdict cache either way, and the cache-warm
	// decision path is the gated quantity.
	s, err := server.New(server.Config{Runner: r, MaxMix: 1, FastPath: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	d := &Driver{Backend: ServerBackend{Server: s}, MixSlots: 1}

	// One warm-up drive seeds the verdict cache with every mix signature
	// the trace churns through; timed drives then measure the sustained
	// fast path, which is what production streams see.
	if _, err := d.Run(context.Background(), tr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(context.Background(), tr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	decisions := float64(len(tr.Events)) * float64(b.N)
	b.ReportMetric(decisions/b.Elapsed().Seconds(), "decisions/s")
}
