package stream

import (
	"context"
	"errors"

	"repro/internal/schema"
	"repro/internal/server"
)

// ServerBackend submits arrivals to an in-process qosd decision loop
// via server.Drive — no listener, no transport, same decision path and
// journal as /v1. This is the offline-sweep backend (`sweep -mode
// stream`, `stream -mode drive`) and the replay-determinism gate's.
type ServerBackend struct {
	Server *server.Server
}

// Submit drives one arrival through the decision loop.
func (b ServerBackend) Submit(ctx context.Context, a Arrival) (Outcome, error) {
	req := server.JobRequest{
		Name:   a.Tenant,
		Kernel: server.KernelRequest{Workload: a.Workload},
	}
	if !a.Goal.IsZero() {
		g := a.Goal
		req.Kernel.Goal = &g
	}
	view, err := b.Server.Drive(ctx, req)
	switch {
	case err == nil:
	case errors.Is(err, server.ErrQueueFull):
		return Outcome{State: StateThrottled}, nil
	default:
		return Outcome{}, err
	}
	return outcomeFromStates(view.ID, view.State, view.Verdict), nil
}

// Release frees an admitted job's slot.
func (b ServerBackend) Release(ctx context.Context, jobID string) error {
	_, err := b.Server.ReleaseJob(jobID)
	return err
}

// outcomeFromStates maps a v1 job state (or the fleet's equivalent) to
// an Outcome.
func outcomeFromStates(id, state string, v *schema.Verdict) Outcome {
	out := Outcome{JobID: id, Verdict: v}
	switch state {
	case string(server.JobAdmitted), "placed":
		out.State = StateAdmitted
	case string(server.JobRejected):
		out.State = StateRejected
	default:
		out.State = StateFailed
	}
	return out
}
