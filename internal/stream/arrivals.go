package stream

import (
	"math"

	"repro/internal/rng"
)

// rng stream ids forked off the spec seed. Distinct sub-streams keep
// the draws of one concern (arrival times, tenant picks, thinning,
// MMPP state flips) independent of how many draws another concern
// makes, so e.g. changing the tenant mix never shifts arrival times.
const (
	streamTimes  = 1
	streamTenant = 2
	streamMod    = 3
)

// Generate expands a spec into a Trace. The result is a pure function
// of the spec (including its seed): same spec, same trace bytes, same
// content hash.
func Generate(spec GenSpec) (*Trace, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(spec.Seed)
	times := src.Fork(streamTimes)
	pick := src.Fork(streamTenant)
	mod := src.Fork(streamMod)

	var timesUs []int64
	switch spec.Process {
	case ProcessPoisson:
		timesUs = poissonTimes(times, spec.RatePerSec, spec.DurationMs)
	case ProcessDiurnal:
		timesUs = diurnalTimes(times, mod, spec)
	case ProcessBursty:
		timesUs = burstyTimes(times, mod, spec)
	}

	var total float64
	for _, t := range spec.Tenants {
		total += t.Weight
	}
	events := make([]Arrival, len(timesUs))
	for i, tUs := range timesUs {
		ten := pickTenant(pick, spec.Tenants, total)
		events[i] = Arrival{
			Seq:         i,
			TUs:         tUs,
			Tenant:      ten.Name,
			Workload:    ten.Workload,
			Goal:        ten.Goal,
			HoldUs:      ten.HoldMs * 1000,
			GPUFraction: ten.GPUFraction,
		}
	}
	return &Trace{Spec: spec, Events: events}, nil
}

// expo draws an exponential inter-arrival time (seconds) at rate/sec.
func expo(src *rng.Source, rate float64) float64 {
	// 1-u is in (0,1]: Float64 returns [0,1), so the log argument is
	// never zero.
	return -math.Log(1-src.Float64()) / rate
}

// pickTenant draws a tenant by cumulative weight.
func pickTenant(src *rng.Source, tenants []TenantSpec, total float64) TenantSpec {
	u := src.Float64() * total
	var cum float64
	for _, t := range tenants {
		cum += t.Weight
		if u < cum {
			return t
		}
	}
	return tenants[len(tenants)-1]
}

// poissonTimes draws a homogeneous Poisson arrival sequence.
func poissonTimes(src *rng.Source, rate float64, durationMs int64) []int64 {
	horizon := float64(durationMs) / 1000
	var out []int64
	for t := expo(src, rate); t < horizon; t += expo(src, rate) {
		out = append(out, int64(t*1e6))
	}
	return out
}

// diurnalTimes draws a sinusoid-modulated Poisson sequence by thinning:
// candidates arrive at the peak rate rate*(1+amp); each survives with
// probability lambda(t)/peak where lambda(t) = rate*(1+amp*sin(2*pi*
// t/period)). Thinning keeps the time stream independent of the accept
// stream.
func diurnalTimes(times, mod *rng.Source, spec GenSpec) []int64 {
	horizon := float64(spec.DurationMs) / 1000
	period := float64(spec.DiurnalPeriodMs) / 1000
	rate, amp := spec.RatePerSec, spec.DiurnalAmp
	peak := rate * (1 + amp)
	var out []int64
	for t := expo(times, peak); t < horizon; t += expo(times, peak) {
		lambda := rate * (1 + amp*math.Sin(2*math.Pi*t/period))
		if mod.Float64()*peak < lambda {
			out = append(out, int64(t*1e6))
		}
	}
	return out
}

// burstyTimes draws a 2-state MMPP sequence. The burst-state rate is
// rate*BurstFactor; the calm-state rate is derived so the duty-weighted
// mean stays at rate (equal mean load vs. poisson): with
// fb = BurstMs/(BurstMs+CalmMs),
//
//	rate_calm = rate * (1 - BurstFactor*fb) / (1 - fb).
//
// State sojourns are exponential with means BurstMs/CalmMs; the walk
// starts calm (deterministic). An arrival candidate that would land
// past the current sojourn's end is re-drawn from the next state's
// rate at the boundary — the standard memoryless restart.
func burstyTimes(times, mod *rng.Source, spec GenSpec) []int64 {
	horizon := float64(spec.DurationMs) / 1000
	fb := spec.BurstMs / (spec.BurstMs + spec.CalmMs)
	rateBurst := spec.RatePerSec * spec.BurstFactor
	rateCalm := spec.RatePerSec * (1 - spec.BurstFactor*fb) / (1 - fb)

	var out []int64
	burst := false
	t := 0.0
	stateEnd := expo(mod, 1/(spec.CalmMs/1000))
	for {
		rate := rateCalm
		if burst {
			rate = rateBurst
		}
		next := t + expo(times, rate)
		if next >= stateEnd {
			// No arrival before the state flips; restart from the
			// boundary in the other state (exponential memorylessness
			// makes the discard exact, not an approximation).
			t = stateEnd
			if t >= horizon {
				return out
			}
			burst = !burst
			mean := spec.CalmMs / 1000
			if burst {
				mean = spec.BurstMs / 1000
			}
			stateEnd = t + expo(mod, 1/mean)
			continue
		}
		if next >= horizon {
			return out
		}
		t = next
		out = append(out, int64(t*1e6))
	}
}
