package stream

import (
	"math"
	"strings"
	"testing"

	"repro/internal/schema"
)

func specFor(process string) GenSpec {
	return GenSpec{
		Process:    process,
		RatePerSec: 200,
		DurationMs: 60_000,
		Seed:       42,
		Tenants:    DefaultTenants(),
	}
}

func TestStreamGenerateDeterministic(t *testing.T) {
	for _, proc := range Processes() {
		a, err := Generate(specFor(proc))
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		b, err := Generate(specFor(proc))
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		ab, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(ab) != string(bb) {
			t.Errorf("%s: same spec produced different traces", proc)
		}
		ha, _ := a.Hash()
		hb, _ := b.Hash()
		if ha != hb || ha == "" {
			t.Errorf("%s: hash mismatch %q vs %q", proc, ha, hb)
		}
		// A different seed must move the arrivals.
		spec := specFor(proc)
		spec.Seed = 43
		c, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cb, _ := c.Encode()
		if string(ab) == string(cb) {
			t.Errorf("%s: different seeds produced identical traces", proc)
		}
	}
}

func TestStreamGenerateMeanRate(t *testing.T) {
	// All three processes are normalized to the same mean load. The
	// bursty process needs a longer horizon for the law of large numbers
	// to bite: bursts carry ~80% of its arrivals and the total burst
	// occupancy over only ~30 sojourn cycles has ~15% relative std.
	for _, proc := range Processes() {
		spec := specFor(proc)
		if proc == ProcessBursty {
			spec.DurationMs = 600_000
		}
		tr, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		got := float64(len(tr.Events))
		want := spec.RatePerSec * float64(spec.DurationMs) / 1000
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: %v arrivals, want within 10%% of %v", proc, got, want)
		}
		// Events are ordered and sequentially numbered.
		var lastUs int64
		for i, ev := range tr.Events {
			if ev.Seq != i {
				t.Fatalf("%s: event %d has seq %d", proc, i, ev.Seq)
			}
			if ev.TUs < lastUs {
				t.Fatalf("%s: event %d goes back in time", proc, i)
			}
			lastUs = ev.TUs
		}
	}
}

// squaredCV computes the squared coefficient of variation of the
// inter-arrival times — 1 for Poisson, >1 for bursty processes.
func squaredCV(tr *Trace) float64 {
	var gaps []float64
	last := int64(0)
	for _, ev := range tr.Events {
		gaps = append(gaps, float64(ev.TUs-last))
		last = ev.TUs
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	return varsum / float64(len(gaps)) / (mean * mean)
}

func TestStreamBurstyIsBurstier(t *testing.T) {
	pois, err := Generate(specFor(ProcessPoisson))
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Generate(specFor(ProcessBursty))
	if err != nil {
		t.Fatal(err)
	}
	cvP, cvB := squaredCV(pois), squaredCV(burst)
	if cvP < 0.8 || cvP > 1.25 {
		t.Errorf("poisson squared CV %.2f, want ~1", cvP)
	}
	// The default MMPP (8x bursts, 10% duty) has a squared CV well
	// above 2; anything close to 1 means the modulation is broken.
	if cvB < 2 {
		t.Errorf("bursty squared CV %.2f, want >= 2", cvB)
	}
}

func TestStreamDiurnalModulates(t *testing.T) {
	spec := specFor(ProcessDiurnal)
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One sinusoid cycle over the duration: the first half (rising
	// sine) must carry clearly more arrivals than the second.
	mid := spec.DurationMs * 1000 / 2
	var first, second int
	for _, ev := range tr.Events {
		if ev.TUs < mid {
			first++
		} else {
			second++
		}
	}
	if first <= second {
		t.Errorf("diurnal first half %d <= second half %d; no modulation", first, second)
	}
}

func TestStreamTenantWeights(t *testing.T) {
	tr, err := Generate(specFor(ProcessPoisson))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range tr.Events {
		counts[ev.Tenant]++
	}
	total := float64(len(tr.Events))
	// Weights 3/2/3/2 over 10.
	for name, wantFrac := range map[string]float64{"llm": 0.3, "rt": 0.2, "batch": 0.3, "bg": 0.2} {
		got := float64(counts[name]) / total
		if math.Abs(got-wantFrac) > 0.05 {
			t.Errorf("tenant %s got %.3f of arrivals, want ~%.2f", name, got, wantFrac)
		}
	}
	// Tenant identity flows through to the events.
	for _, ev := range tr.Events {
		if ev.Tenant == "llm" {
			if ev.Workload != "infer" || ev.Goal.Kind != schema.GoalLatency {
				t.Fatalf("llm arrival carries %q/%q", ev.Workload, ev.Goal.Kind)
			}
		}
	}
}

func TestStreamSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*GenSpec)
		want string
	}{
		{"unknown process", func(s *GenSpec) { s.Process = "lunar" }, "unknown process"},
		{"zero rate", func(s *GenSpec) { s.RatePerSec = 0 }, "rate_per_sec"},
		{"zero duration", func(s *GenSpec) { s.DurationMs = 0 }, "duration_ms"},
		{"no tenants", func(s *GenSpec) { s.Tenants = nil }, "tenant"},
		{"dup tenant", func(s *GenSpec) { s.Tenants = append(s.Tenants, s.Tenants[0]) }, "duplicate"},
		{"bad goal", func(s *GenSpec) { s.Tenants[0].Goal = schema.FracGoal(1.5) }, "goal"},
		{"negative hold", func(s *GenSpec) { s.Tenants[0].HoldMs = -1 }, "hold_ms"},
		{"explosive burst", func(s *GenSpec) {
			s.Process = ProcessBursty
			s.BurstFactor = 100
			s.BurstMs = 1000
			s.CalmMs = 1000
		}, "calm rate"},
	}
	for _, tc := range cases {
		spec := specFor(ProcessPoisson)
		tc.mut(&spec)
		_, err := Generate(spec)
		if err == nil {
			t.Errorf("%s: Generate accepted an invalid spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
