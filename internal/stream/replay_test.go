package stream

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/server"
)

// -update regenerates the committed golden arrival trace from
// goldenSpec. Run `go test ./internal/stream -run TestStreamGoldenTrace
// -update` after changing the spec, the generator, or the trace format.
var update = flag.Bool("update", false, "rewrite the golden arrival trace")

const goldenTracePath = "testdata/golden_bursty.jsonl"

// goldenSpec is the committed CI replay workload: a bursty (MMPP)
// stream over the default four-tenant mix, small enough to drive
// through a live decision loop twice in a CI run but busy enough that
// the mix churns (admits, holds, releases, rejects) while it plays.
func goldenSpec() GenSpec {
	return GenSpec{
		Process:    ProcessBursty,
		RatePerSec: 4,
		DurationMs: 15_000,
		Seed:       1917,
		Tenants:    DefaultTenants(),
	}
}

// TestStreamGoldenTrace pins the committed golden trace to the
// generator: regenerating from the spec must reproduce the committed
// bytes exactly. A failure means generation changed — deliberate
// changes rerun with -update (and retire the old replay journals).
func TestStreamGoldenTrace(t *testing.T) {
	tr, err := Generate(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteFile(goldenTracePath); err != nil {
			t.Fatal(err)
		}
		hash, _ := tr.Hash()
		t.Logf("rewrote %s (%d events, sha256 %s)", goldenTracePath, len(tr.Events), hash)
		return
	}
	got, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s does not match the generator's output for its spec; rerun with -update if the change is deliberate", goldenTracePath)
	}
}

// replayJournal drives the golden trace through a fresh daemon (fast
// path on, fresh journal) and returns the journal bytes.
func replayJournal(t *testing.T, tr *Trace, dir, name string) []byte {
	t.Helper()
	r, err := exp.NewRunner(2, exp.WithSessionOptions(core.WithWindow(30_000)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	s, err := server.New(server.Config{
		Runner:      r,
		JournalPath: path,
		FastPath:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// MixSlots mirrors the daemon's default MaxMix (3): at traffic peaks
	// the driver advances virtual time to the next release instead of
	// deadlocking the serial decision loop against its own held jobs.
	d := &Driver{Backend: ServerBackend{Server: s}, MixSlots: 3}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Admitted == 0 || rep.Totals.Rejected == 0 {
		t.Fatalf("golden replay is degenerate (admitted %d, rejected %d): the gate needs both outcomes exercised",
			rep.Totals.Admitted, rep.Totals.Rejected)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamReplayDeterminism is the CI replay gate: the committed
// golden trace driven through two fresh daemons must produce
// byte-identical decision journals. Any nondeterminism in the decision
// path — map-order iteration, wall-clock leakage into verdicts, rng
// shared across concerns — breaks the byte equality long before it
// would surface as a flaky admission decision.
func TestStreamReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replay gate runs full simulations")
	}
	tr, err := ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("%v (run TestStreamGoldenTrace with -update to create it)", err)
	}
	dir := t.TempDir()
	j1 := replayJournal(t, tr, dir, "run1.journal")
	j2 := replayJournal(t, tr, dir, "run2.journal")
	if !bytes.Equal(j1, j2) {
		// CI uploads the diverging journals as failure artifacts.
		if adir := os.Getenv("STREAM_ARTIFACT_DIR"); adir != "" {
			os.MkdirAll(adir, 0o755)
			os.WriteFile(filepath.Join(adir, "replay_run1.journal"), j1, 0o644)
			os.WriteFile(filepath.Join(adir, "replay_run2.journal"), j2, 0o644)
		}
		t.Fatalf("decision journals diverge across identical replays (%d vs %d bytes)", len(j1), len(j2))
	}
	if len(j1) == 0 {
		t.Fatal("replay produced an empty journal")
	}
}
